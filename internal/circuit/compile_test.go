package circuit

// Differential tests for the compiled execution plan: every netlist is
// built twice, one copy settled by the compiled engine (Settle) and one by
// the retained reference sweep (RefSettle), and every net is compared
// bit for bit after every stimulus — the repository's standard
// reference-implementation discipline.

import (
	"math/rand"
	"testing"
)

// netlistBuilder builds the same netlist into any circuit so compiled and
// reference copies are structurally identical.
type netlistBuilder func(c *Circuit) (inputs []NetID)

// diffSettle drives both circuits with the same stimulus and compares all
// nets. setNets lists which inputs change this round (partial stimulus
// exercises the event-driven path).
func diffSettle(t *testing.T, cc, cr *Circuit, setNets []NetID, setVals []bool) {
	t.Helper()
	for i, id := range setNets {
		if err := cc.Set(id, setVals[i]); err != nil {
			t.Fatal(err)
		}
		if err := cr.Set(id, setVals[i]); err != nil {
			t.Fatal(err)
		}
	}
	errC := cc.Settle()
	errR := cr.RefSettle()
	if (errC == nil) != (errR == nil) {
		t.Fatalf("settle error mismatch: compiled %v, reference %v", errC, errR)
	}
	if errC != nil {
		return
	}
	if cc.NumNets() != cr.NumNets() {
		t.Fatalf("net counts differ: %d vs %d", cc.NumNets(), cr.NumNets())
	}
	for id := 0; id < cc.NumNets(); id++ {
		if cc.Get(NetID(id)) != cr.Get(NetID(id)) {
			t.Fatalf("net %d: compiled %v, reference %v", id, cc.Get(NetID(id)), cr.Get(NetID(id)))
		}
	}
}

// randomDAG returns a builder for a random acyclic netlist: numIn input
// pins followed by numGates gates whose inputs are drawn from all earlier
// nets, plus occasional forward-declared nets driven later via GateInto
// (acyclic, but inserted out of topological order).
func randomDAG(rng *rand.Rand, numIn, numGates int) netlistBuilder {
	type gspec struct {
		kind    GateKind
		nin     int
		forward bool
	}
	specs := make([]gspec, numGates)
	for i := range specs {
		k := GateKind(rng.Intn(8))
		nin := 1
		if k != NOT && k != BUF {
			nin = 2 + rng.Intn(3)
		}
		specs[i] = gspec{kind: k, nin: nin, forward: rng.Intn(8) == 0}
	}
	// Input choices are made against the deterministic net-count sequence,
	// so both copies wire identically.
	choices := make([][]int, numGates)
	nets := numIn
	forwards := 0
	for i, s := range specs {
		if s.forward {
			forwards++ // reserve a forward net now, drive it later
			nets++
		}
		choices[i] = make([]int, s.nin)
		for j := range choices[i] {
			choices[i][j] = rng.Intn(nets)
		}
		if !s.forward {
			nets++
		}
	}
	return func(c *Circuit) []NetID {
		ids := make([]NetID, 0, nets)
		for i := 0; i < numIn; i++ {
			ids = append(ids, c.Input(""))
		}
		for i, s := range specs {
			var out NetID
			if s.forward {
				out = c.NewNet()
				ids = append(ids, out)
			}
			in := make([]NetID, s.nin)
			for j, pick := range choices[i] {
				in[j] = ids[pick]
			}
			if s.forward {
				c.GateInto(out, s.kind, in...)
			} else {
				ids = append(ids, c.Gate(s.kind, in...))
			}
		}
		return ids[:numIn]
	}
}

func TestRandomDAGDifferential(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		build := randomDAG(rng, 6, 40)
		cc, cr := New(), New()
		inC := build(cc)
		inR := build(cr)
		if len(inC) != len(inR) {
			t.Fatal("builder not deterministic")
		}
		for round := 0; round < 12; round++ {
			// Partial stimulus: change a random subset of inputs.
			n := 1 + rng.Intn(len(inC))
			setN := make([]NetID, n)
			setV := make([]bool, n)
			for i := 0; i < n; i++ {
				setN[i] = inC[rng.Intn(len(inC))]
				setV[i] = rng.Intn(2) == 0
			}
			diffSettle(t, cc, cr, setN, setV)
		}
	}
}

// TestLatchDifferential drives the sequential builders through
// order-sensitive sequences — including the forbidden R=S=1 state and its
// release, whose outcome depends on last-written-wins sweep order — and
// checks the compiled island evaluation matches the reference bit for bit.
func TestLatchDifferential(t *testing.T) {
	t.Run("rs-latch", func(t *testing.T) {
		build := func(c *Circuit) []NetID {
			r := c.Input("r")
			s := c.Input("s")
			q, nq := RSLatch(c, r, s)
			c.Name("q", q)
			c.Name("nq", nq)
			return []NetID{r, s}
		}
		cc, cr := New(), New()
		inC := build(cc)
		build(cr)
		seq := [][2]bool{
			{false, true},  // set
			{false, false}, // hold
			{true, false},  // reset
			{false, false}, // hold
			{true, true},   // forbidden: both outputs low
			{false, false}, // release: resolution is order-defined
			{false, true},
			{true, true},
			{true, false},
			{false, false},
		}
		for _, rs := range seq {
			diffSettle(t, cc, cr, inC, rs[:])
		}
	})
	t.Run("d-latch", func(t *testing.T) {
		build := func(c *Circuit) []NetID {
			d := c.Input("d")
			en := c.Input("en")
			q, _ := DLatch(c, d, en)
			c.Name("q", q)
			return []NetID{d, en}
		}
		cc, cr := New(), New()
		inC := build(cc)
		build(cr)
		seq := [][2]bool{
			{true, true}, {true, false}, {false, false}, // latch 1, hold through D change
			{false, true}, {false, false}, // latch 0
			{true, false}, {true, true}, {false, true}, // transparent follow
		}
		for _, de := range seq {
			diffSettle(t, cc, cr, inC, de[:])
		}
	})
	t.Run("register-file", func(t *testing.T) {
		build := func(c *Circuit) *RegisterFile {
			return NewRegisterFile(c, 2, 4)
		}
		cc, cr := New(), New()
		rfC := build(cc)
		rfR := build(cr)
		step := func(f func(rf *RegisterFile, c *Circuit) error) {
			t.Helper()
			if err := f(rfC, cc); err != nil {
				t.Fatal(err)
			}
			if err := f(rfR, cr); err != nil {
				t.Fatal(err)
			}
			for id := 0; id < cc.NumNets(); id++ {
				if cc.Get(NetID(id)) != cr.Get(NetID(id)) {
					t.Fatalf("net %d: compiled %v, reference %v", id, cc.Get(NetID(id)), cr.Get(NetID(id)))
				}
			}
		}
		// The reference copy must settle with RefSettle; RegisterFile's
		// helpers call Settle, so drive the reference pins manually.
		writeRef := func(rf *RegisterFile, c *Circuit, reg int, v uint64) error {
			for i, id := range rf.WriteSel {
				if err := c.Set(id, reg&(1<<uint(i)) != 0); err != nil {
					return err
				}
			}
			if err := c.SetBus(rf.WriteData, v); err != nil {
				return err
			}
			if err := c.Set(rf.WriteEnable, true); err != nil {
				return err
			}
			if err := c.RefSettle(); err != nil {
				return err
			}
			if err := c.Set(rf.WriteEnable, false); err != nil {
				return err
			}
			return c.RefSettle()
		}
		readRef := func(rf *RegisterFile, c *Circuit, reg int) (uint64, error) {
			for i, id := range rf.ReadSel {
				if err := c.Set(id, reg&(1<<uint(i)) != 0); err != nil {
					return 0, err
				}
			}
			if err := c.RefSettle(); err != nil {
				return 0, err
			}
			return c.GetBus(rf.ReadData), nil
		}
		ops := []struct {
			write bool
			reg   int
			val   uint64
		}{
			{true, 0, 0xa}, {true, 1, 0x5}, {true, 3, 0xf},
			{false, 0, 0xa}, {false, 1, 0x5}, {false, 3, 0xf},
			{true, 0, 0x3}, {false, 0, 0x3}, {true, 3, 0x0}, {false, 3, 0x0},
			{true, 2, 0x6}, {false, 2, 0x6},
		}
		for _, op := range ops {
			op := op
			if op.write {
				step(func(rf *RegisterFile, c *Circuit) error {
					if c == cr {
						return writeRef(rf, c, op.reg, op.val)
					}
					return rf.Write(c, op.reg, op.val)
				})
				continue
			}
			var gotC, gotR uint64
			step(func(rf *RegisterFile, c *Circuit) error {
				var err error
				if c == cr {
					gotR, err = readRef(rf, c, op.reg)
				} else {
					gotC, err = rf.Read(c, op.reg)
				}
				return err
			})
			if gotC != op.val || gotR != op.val {
				t.Fatalf("read r%d: compiled %#x, reference %#x, want %#x", op.reg, gotC, gotR, op.val)
			}
		}
	})
}

// TestALUDifferentialExhaustive checks the width-4 ALU exhaustively on both
// engines against the functional reference.
func TestALUDifferentialExhaustive(t *testing.T) {
	cc, cr := New(), New()
	aluC := NewALU(cc, 4)
	aluR := NewALU(cr, 4)
	for op := ALUOp(0); op < 8; op++ {
		for a := uint64(0); a < 16; a++ {
			for b := uint64(0); b < 16; b++ {
				want, wf := RefALU(op, a, b, 4)
				gotC, fC, err := aluC.Run(cc, op, a, b)
				if err != nil {
					t.Fatal(err)
				}
				if gotC != want || fC != wf {
					t.Fatalf("compiled %v(%d,%d) = %#x %+v, want %#x %+v", op, a, b, gotC, fC, want, wf)
				}
				if err := cr.SetBus(aluR.A, a); err != nil {
					t.Fatal(err)
				}
				if err := cr.SetBus(aluR.B, b); err != nil {
					t.Fatal(err)
				}
				if err := cr.SetBus(aluR.Op, uint64(op)); err != nil {
					t.Fatal(err)
				}
				if err := cr.RefSettle(); err != nil {
					t.Fatal(err)
				}
				if got := cr.GetBus(aluR.Result); got != want {
					t.Fatalf("reference %v(%d,%d) = %#x, want %#x", op, a, b, got, want)
				}
			}
		}
	}
}

// TestSettleRefSettleInterleavedDifferential mixes the two engines on one
// circuit: RefSettle bypasses the plan's change tracking, so the next
// compiled Settle must re-evaluate everything rather than trust stale
// pending state.
func TestSettleRefSettleInterleavedDifferential(t *testing.T) {
	c := New()
	alu := NewALU(c, 8)
	check := func(op ALUOp, a, b uint64) {
		t.Helper()
		if err := c.SetBus(alu.A, a); err != nil {
			t.Fatal(err)
		}
		if err := c.SetBus(alu.B, b); err != nil {
			t.Fatal(err)
		}
		if err := c.SetBus(alu.Op, uint64(op)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 16; i++ {
		a, b := uint64(i*37%256), uint64(i*91%256)
		op := ALUOp(i % 8)
		want, _ := RefALU(op, a, b, 8)
		check(op, a, b)
		var err error
		if i%3 == 1 {
			err = c.RefSettle()
		} else {
			err = c.Settle()
		}
		if err != nil {
			t.Fatal(err)
		}
		if got := c.GetBus(alu.Result); got != want {
			t.Fatalf("step %d: %v(%d,%d) = %#x, want %#x", i, op, a, b, got, want)
		}
	}
}

// TestPlanInvalidationOnMutation grows a circuit between settles: mutating
// the netlist must discard the plan and the next Settle must cover the new
// gates.
func TestPlanInvalidationOnMutation(t *testing.T) {
	c := New()
	a := c.Input("a")
	b := c.Input("b")
	x := c.Gate(AND, a, b)
	if err := c.Set(a, true); err != nil {
		t.Fatal(err)
	}
	if err := c.Set(b, true); err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	if _, _, compiled := c.PlanStats(); !compiled {
		t.Fatal("expected a compiled plan after Settle")
	}
	if !c.Get(x) {
		t.Fatal("AND(1,1) = 0")
	}
	y := c.Gate(XOR, x, b) // mutation: plan must be invalidated
	if _, _, compiled := c.PlanStats(); compiled {
		t.Fatal("plan survived a netlist mutation")
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	if c.Get(y) != false { // 1 XOR 1
		t.Fatalf("XOR(x,b) = %v, want false", c.Get(y))
	}
	if err := c.Set(b, false); err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	if c.Get(x) != false || c.Get(y) != false {
		t.Fatalf("after b=0: x=%v y=%v, want false false", c.Get(x), c.Get(y))
	}
}

// TestPlanStatsShape sanity-checks the plan classifier: the ALU is pure
// combinational logic (no island), the register file keeps its latches in
// an island.
func TestPlanStatsShape(t *testing.T) {
	c := New()
	NewALU(c, 8)
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	levels, island, compiled := c.PlanStats()
	if !compiled || levels < 4 || island != 0 {
		t.Fatalf("ALU plan: levels=%d island=%d compiled=%v", levels, island, compiled)
	}

	c2 := New()
	NewRegisterFile(c2, 2, 4)
	if err := c2.Settle(); err != nil {
		t.Fatal(err)
	}
	_, island2, _ := c2.PlanStats()
	// 4 registers x 4 bits, each D latch a 2-gate cross-coupled NOR pair.
	if island2 != 32 {
		t.Fatalf("register-file island gates = %d, want 32", island2)
	}
}

// TestOscillationDetectedCompiled: unstable feedback must surface as
// ErrUnstable from the island's bounded fixed point, as it does from the
// reference sweep, including when the oscillator hides behind stable logic.
func TestOscillationDetectedCompiled(t *testing.T) {
	c := New()
	a := c.Input("a")
	stable := c.Gate(AND, a, a) // acyclic prefix
	loop := c.NewNet()
	c.GateInto(loop, NOT, loop)
	_ = c.Gate(OR, stable, loop) // suffix depends on the oscillator
	if err := c.Set(a, true); err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(); err != ErrUnstable {
		t.Fatalf("Settle = %v, want ErrUnstable", err)
	}
}

// TestSetConstantGuarded: a stray Set must not overwrite a Constant net
// (regression: it used to silently mutate it).
func TestSetConstantGuarded(t *testing.T) {
	c := New()
	one := c.Constant(true)
	c.Name("one", one)
	if err := c.Set(one, false); err == nil {
		t.Fatal("Set on a constant net should fail")
	}
	if err := c.SetByName("one", false); err == nil {
		t.Fatal("SetByName on a constant net should fail")
	}
	if !c.Get(one) {
		t.Fatal("constant value was mutated")
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	if !c.Get(one) {
		t.Fatal("constant value lost after Settle")
	}
}

// TestEvalIntoZeroAlloc: EvalInto with reused maps must not allocate in
// steady state.
func TestEvalIntoZeroAlloc(t *testing.T) {
	c := New()
	a := c.Input("a")
	b := c.Input("b")
	_ = a
	_ = b
	c.Name("y", c.Gate(XOR, a, b))
	in := map[string]bool{"a": true, "b": false}
	out := make(map[string]bool, 1)
	if err := c.EvalInto(out, in, "y"); err != nil { // warm: compile + map growth
		t.Fatal(err)
	}
	flip := false
	allocs := testing.AllocsPerRun(100, func() {
		flip = !flip
		in["a"] = flip
		if err := c.EvalInto(out, in, "y"); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("EvalInto allocated %.1f per run, want 0", allocs)
	}
}

// TestSettleZeroAllocSteadyState: the compiled Set+Settle+GetBus hot path
// must be allocation-free once warm — the property the bench harness
// hard-gates.
func TestSettleZeroAllocSteadyState(t *testing.T) {
	c := New()
	alu := NewALU(c, 16)
	if err := c.Settle(); err != nil { // warm: compile, grow dirty list
		t.Fatal(err)
	}
	i := uint64(0)
	var sink uint64
	allocs := testing.AllocsPerRun(200, func() {
		i++
		if err := c.SetBus(alu.A, i*0x9e37); err != nil {
			t.Fatal(err)
		}
		if err := c.SetBus(alu.B, i*0x79b1); err != nil {
			t.Fatal(err)
		}
		if err := c.SetBus(alu.Op, i%8); err != nil {
			t.Fatal(err)
		}
		if err := c.Settle(); err != nil {
			t.Fatal(err)
		}
		sink ^= c.GetBus(alu.Result)
	})
	_ = sink
	if allocs != 0 {
		t.Fatalf("steady-state Settle allocated %.1f per run, want 0", allocs)
	}
}
