package circuit

import (
	"testing"
	"testing/quick"
)

func TestSynthesizeSoPMajority(t *testing.T) {
	// 3-input majority function.
	rows := make([]bool, 8)
	for v := 0; v < 8; v++ {
		ones := v&4>>2 + v&2>>1 + v&1
		rows[v] = ones >= 2
	}
	c := New()
	ins, out, err := SynthesizeSoP(c, 3, rows)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 8; v++ {
		for i := range ins {
			c.Set(ins[i], v&(1<<uint(len(ins)-1-i)) != 0)
		}
		if err := c.Settle(); err != nil {
			t.Fatal(err)
		}
		if c.Get(out) != rows[v] {
			t.Errorf("majority(%03b) = %v, want %v", v, c.Get(out), rows[v])
		}
	}
}

func TestSynthesizeSoPConstants(t *testing.T) {
	// All-false table yields constant 0.
	c := New()
	_, out, err := SynthesizeSoP(c, 2, []bool{false, false, false, false})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	if c.Get(out) {
		t.Error("all-false table should synthesize constant 0")
	}
	// Single-minterm table.
	c2 := New()
	ins, out2, err := SynthesizeSoP(c2, 2, []bool{false, false, true, false})
	if err != nil {
		t.Fatal(err)
	}
	c2.Set(ins[0], true)
	c2.Set(ins[1], false)
	if err := c2.Settle(); err != nil {
		t.Fatal(err)
	}
	if !c2.Get(out2) {
		t.Error("minterm 10 should fire on inputs 1,0")
	}
}

func TestSynthesizeSoPOneInput(t *testing.T) {
	c := New()
	ins, out, err := SynthesizeSoP(c, 1, []bool{true, false}) // NOT
	if err != nil {
		t.Fatal(err)
	}
	c.Set(ins[0], false)
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	if !c.Get(out) {
		t.Error("NOT(0) should be 1")
	}
	c.Set(ins[0], true)
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	if c.Get(out) {
		t.Error("NOT(1) should be 0")
	}
}

func TestSynthesizeSoPErrors(t *testing.T) {
	if _, _, err := SynthesizeSoP(New(), 0, nil); err == nil {
		t.Error("0 inputs should fail")
	}
	if _, _, err := SynthesizeSoP(New(), 17, nil); err == nil {
		t.Error("17 inputs should fail")
	}
	if _, _, err := SynthesizeSoP(New(), 2, []bool{true}); err == nil {
		t.Error("wrong row count should fail")
	}
}

// Property: synthesize a random 3-input truth table, then extract the truth
// table of the synthesized circuit and verify it matches the specification
// (round-trip through synthesis and analysis, the two homework directions).
func TestSynthesisRoundTrip(t *testing.T) {
	f := func(spec uint8) bool {
		rows := make([]bool, 8)
		for i := range rows {
			rows[i] = spec&(1<<uint(i)) != 0
		}
		c := New()
		_, _, err := SynthesizeSoP(c, 3, rows)
		if err != nil {
			return false
		}
		tt, err := c.BuildTruthTable([]string{"in0", "in1", "in2"}, []string{"out"})
		if err != nil {
			return false
		}
		for i, row := range tt.Rows {
			if row.Out[0] != rows[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 64}); err != nil {
		t.Error(err)
	}
}
