package circuit

import (
	"testing"
	"testing/quick"
)

func TestALUKnownCases(t *testing.T) {
	c := New()
	alu := NewALU(c, 8)
	if alu.Width() != 8 {
		t.Fatalf("width = %d", alu.Width())
	}
	cases := []struct {
		op       ALUOp
		a, b     uint64
		want     uint64
		zero     bool
		sign     bool
		carry    bool
		overflow bool
		equal    bool
	}{
		{OpAdd, 1, 2, 3, false, false, false, false, false},
		{OpAdd, 0xff, 1, 0, true, false, true, false, false},
		{OpAdd, 0x7f, 1, 0x80, false, true, false, true, false},
		{OpSub, 5, 5, 0, true, false, true, false, true},
		{OpSub, 3, 5, 0xfe, false, true, false, false, false},
		{OpSub, 0x80, 1, 0x7f, false, false, true, true, false},
		{OpAnd, 0xcc, 0xaa, 0x88, false, true, false, false, false},
		{OpOr, 0xc0, 0x0c, 0xcc, false, true, false, false, false},
		{OpXor, 0xff, 0xff, 0, true, false, false, false, true},
		{OpNotA, 0x0f, 0, 0xf0, false, true, false, false, false},
		{OpShl, 0x81, 0, 0x02, false, false, true, false, false},
		{OpShr, 0x81, 0, 0x40, false, false, true, false, false},
	}
	for _, tc := range cases {
		got, flags, err := alu.Run(c, tc.op, tc.a, tc.b)
		if err != nil {
			t.Fatalf("%v(%#x, %#x): %v", tc.op, tc.a, tc.b, err)
		}
		if got != tc.want {
			t.Errorf("%v(%#x, %#x) = %#x, want %#x", tc.op, tc.a, tc.b, got, tc.want)
		}
		wantFlags := Flags{Zero: tc.zero, Sign: tc.sign, Carry: tc.carry,
			Overflow: tc.overflow, Equal: tc.equal}
		if flags != wantFlags {
			t.Errorf("%v(%#x, %#x) flags = %+v, want %+v", tc.op, tc.a, tc.b, flags, wantFlags)
		}
	}
}

func TestALUInvalidOp(t *testing.T) {
	c := New()
	alu := NewALU(c, 4)
	if _, _, err := alu.Run(c, ALUOp(8), 0, 0); err == nil {
		t.Error("op 8 should be rejected")
	}
	if _, _, err := alu.Run(c, ALUOp(-1), 0, 0); err == nil {
		t.Error("op -1 should be rejected")
	}
}

func TestNewALUWidthPanics(t *testing.T) {
	mustPanic(t, "width 0", func() { NewALU(New(), 0) })
	mustPanic(t, "width 65", func() { NewALU(New(), 65) })
	mustPanic(t, "RefALU width", func() { RefALU(OpAdd, 0, 0, 0) })
	mustPanic(t, "RefALU op", func() { RefALU(ALUOp(9), 0, 0, 8) })
}

// The lab's central deliverable check: the gate-level ALU agrees with the
// functional specification on every op for random operands.
func TestALUMatchesReference(t *testing.T) {
	c := New()
	const width = 8
	alu := NewALU(c, width)
	f := func(a, b uint8, opRaw uint8) bool {
		op := ALUOp(opRaw % 8)
		got, gotFlags, err := alu.Run(c, op, uint64(a), uint64(b))
		if err != nil {
			return false
		}
		want, wantFlags := RefALU(op, uint64(a), uint64(b), width)
		return got == want && gotFlags == wantFlags
	}
	cfg := &quick.Config{MaxCount: 400}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Exhaustive agreement at width 4: all 8 ops x 16 x 16 operand pairs.
func TestALUExhaustiveWidth4(t *testing.T) {
	c := New()
	alu := NewALU(c, 4)
	for op := ALUOp(0); op < 8; op++ {
		for a := uint64(0); a < 16; a++ {
			for b := uint64(0); b < 16; b++ {
				got, gotFlags, err := alu.Run(c, op, a, b)
				if err != nil {
					t.Fatal(err)
				}
				want, wantFlags := RefALU(op, a, b, 4)
				if got != want || gotFlags != wantFlags {
					t.Fatalf("%v(%#x, %#x) = %#x %+v, want %#x %+v",
						op, a, b, got, gotFlags, want, wantFlags)
				}
			}
		}
	}
}

func TestRefALU64BitEdges(t *testing.T) {
	res, f := RefALU(OpAdd, ^uint64(0), 1, 64)
	if res != 0 || !f.Carry || !f.Zero {
		t.Errorf("max+1 at 64 bits: res=%d flags=%+v", res, f)
	}
	res, f = RefALU(OpSub, 0, 1, 64)
	if res != ^uint64(0) || f.Carry {
		t.Errorf("0-1 at 64 bits: res=%d flags=%+v", res, f)
	}
	res, f = RefALU(OpSub, 5, 3, 64)
	if res != 2 || !f.Carry {
		t.Errorf("5-3 at 64 bits: res=%d flags=%+v", res, f)
	}
}

func TestALUOpString(t *testing.T) {
	if OpAdd.String() != "ADD" || OpShr.String() != "SHR" {
		t.Error("ALUOp names wrong")
	}
	if ALUOp(42).String() != "ALUOp(42)" {
		t.Error("out-of-range op name wrong")
	}
	if AND.String() != "AND" || GateKind(99).String() != "GateKind(99)" {
		t.Error("GateKind names wrong")
	}
}

func BenchmarkALUGateLevel(b *testing.B) {
	c := New()
	alu := NewALU(c, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := alu.Run(c, ALUOp(i%8), uint64(i), uint64(i>>3)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkALUReference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		RefALU(ALUOp(i%8), uint64(i), uint64(i>>3), 8)
	}
}
