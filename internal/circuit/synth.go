package circuit

import "fmt"

// Synthesis from truth tables — the second half of the circuits homework
// ("creating a circuit given a logic table") — via sum-of-products: one AND
// minterm per true row, ORed together.

// SynthesizeSoP builds a sum-of-products circuit computing the given truth
// table column over fresh input pins named in0..in{n-1} (in0 is the
// leftmost/most-significant table column, matching BuildTruthTable's row
// order). rows must have length 2^n for some n <= 16; rows[i] is the output
// for the input assignment whose bits spell i (in0 the high bit). The output
// net is named "out".
func SynthesizeSoP(c *Circuit, numInputs int, rows []bool) ([]NetID, NetID, error) {
	if numInputs < 1 || numInputs > 16 {
		return nil, 0, fmt.Errorf("circuit: SoP over %d inputs unsupported", numInputs)
	}
	if len(rows) != 1<<uint(numInputs) {
		return nil, 0, fmt.Errorf("circuit: need %d rows for %d inputs, got %d",
			1<<uint(numInputs), numInputs, len(rows))
	}
	ins := make([]NetID, numInputs)
	for i := range ins {
		ins[i] = c.Input(fmt.Sprintf("in%d", i))
	}
	negs := make([]NetID, numInputs)
	for i, in := range ins {
		negs[i] = c.Gate(NOT, in)
	}
	var minterms []NetID
	for rowIdx, v := range rows {
		if !v {
			continue
		}
		terms := make([]NetID, numInputs)
		for i := 0; i < numInputs; i++ {
			// in0 is the high-order bit of the row index.
			if rowIdx&(1<<uint(numInputs-1-i)) != 0 {
				terms[i] = ins[i]
			} else {
				terms[i] = negs[i]
			}
		}
		var mt NetID
		if numInputs == 1 {
			mt = c.Gate(BUF, terms[0])
		} else {
			mt = c.Gate(AND, terms...)
		}
		minterms = append(minterms, mt)
	}
	var out NetID
	switch len(minterms) {
	case 0:
		out = c.Constant(false)
	case 1:
		out = c.Gate(BUF, minterms[0])
	default:
		out = c.Gate(OR, minterms...)
	}
	c.Name("out", out)
	return ins, out, nil
}
