package circuit

import "fmt"

// ALUOp selects one of the eight operations the Lab 3 ALU supports.
type ALUOp int

// The eight ALU operations, in opcode order (the 3-bit select input).
const (
	OpAdd  ALUOp = iota // A + B
	OpSub               // A - B (via A + ~B + 1)
	OpAnd               // A & B
	OpOr                // A | B
	OpXor               // A ^ B
	OpNotA              // ~A
	OpShl               // A << 1
	OpShr               // A >> 1 (logical)
)

var aluOpNames = [...]string{"ADD", "SUB", "AND", "OR", "XOR", "NOT", "SHL", "SHR"}

func (op ALUOp) String() string {
	if op >= 0 && int(op) < len(aluOpNames) {
		return aluOpNames[op]
	}
	return fmt.Sprintf("ALUOp(%d)", int(op))
}

// Flags are the five ALU status outputs the lab requires.
type Flags struct {
	Zero     bool // result is all zeros
	Sign     bool // top bit of result (negative if signed)
	Carry    bool // carry out of adder, or bit shifted out
	Overflow bool // signed overflow (adder ops only)
	Equal    bool // A == B bitwise
}

// ALU is a gate-level arithmetic-logic unit: two input buses, a 3-bit
// operation select, a result bus, and five flag nets. Every output is
// computed by gates; the op select muxes between the units' results.
type ALU struct {
	A, B   []NetID // operand input pins, LSB first
	Op     []NetID // 3-bit op select input pins, LSB first
	Result []NetID // result bus

	ZeroFlag, SignFlag, CarryFlag, OverflowFlag, EqualFlag NetID

	width int
}

// NewALU builds a width-bit ALU into c. All operand and select nets are
// fresh input pins.
func NewALU(c *Circuit, width int) *ALU {
	if width < 1 || width > 64 {
		panic(fmt.Sprintf("circuit: ALU width %d out of range", width))
	}
	alu := &ALU{
		A:     c.Inputs("a", width),
		B:     c.Inputs("b", width),
		Op:    c.Inputs("op", 3),
		width: width,
	}
	zero := c.Constant(false)
	one := c.Constant(true)

	// Adder/subtractor: SUB inverts B and injects carry-in 1. The op-select
	// bit pattern for SUB is 001, so "isSub" is decoded from the op bus.
	nop2 := c.Gate(NOT, alu.Op[2])
	nop1 := c.Gate(NOT, alu.Op[1])
	isSub := c.Gate(AND, nop2, nop1, alu.Op[0]) // op == 001
	bMux := make([]NetID, width)
	for i := range bMux {
		bMux[i] = Mux2(c, isSub, alu.B[i], c.Gate(NOT, alu.B[i]))
	}
	cin := Mux2(c, isSub, zero, one)
	sumBus, cout, cinTop := RippleCarryAdder(c, alu.A, bMux, cin)
	addOverflow := c.Gate(XOR, cout, cinTop)

	// Logic units.
	andBus := BitwiseGate(c, AND, alu.A, alu.B)
	orBus := BitwiseGate(c, OR, alu.A, alu.B)
	xorBus := BitwiseGate(c, XOR, alu.A, alu.B)
	notBus := BitwiseNot(c, alu.A)

	// Shifters.
	shlBus, shlOut := ShiftLeft1(c, alu.A)
	shrBus, shrOut := ShiftRight1(c, alu.A)

	// Result mux: opcode order ADD, SUB, AND, OR, XOR, NOT, SHL, SHR.
	alu.Result = MuxBusN(c, alu.Op,
		sumBus, sumBus, andBus, orBus, xorBus, notBus, shlBus, shrBus)

	// Carry: adder carry for ADD/SUB, shifted-out bit for shifts, else 0.
	alu.CarryFlag = MuxN(c, alu.Op, []NetID{
		cout, cout, zero, zero, zero, zero, shlOut, shrOut})

	// Overflow is meaningful for ADD/SUB only.
	alu.OverflowFlag = MuxN(c, alu.Op, []NetID{
		addOverflow, addOverflow, zero, zero, zero, zero, zero, zero})

	alu.ZeroFlag = IsZero(c, alu.Result)
	alu.SignFlag = c.Gate(BUF, alu.Result[width-1])
	alu.EqualFlag = EqualComparator(c, alu.A, alu.B)

	c.Name("result0", alu.Result[0])
	c.Name("zf", alu.ZeroFlag)
	c.Name("sf", alu.SignFlag)
	c.Name("cf", alu.CarryFlag)
	c.Name("of", alu.OverflowFlag)
	c.Name("eq", alu.EqualFlag)
	return alu
}

// Width reports the ALU's operand width in bits.
func (alu *ALU) Width() int { return alu.width }

// Run drives the operand and op-select pins, settles the netlist, and
// returns the result and flags.
func (alu *ALU) Run(c *Circuit, op ALUOp, a, b uint64) (uint64, Flags, error) {
	if op < 0 || op > 7 {
		return 0, Flags{}, fmt.Errorf("circuit: invalid ALU op %d", int(op))
	}
	if err := c.SetBus(alu.A, a); err != nil {
		return 0, Flags{}, err
	}
	if err := c.SetBus(alu.B, b); err != nil {
		return 0, Flags{}, err
	}
	if err := c.SetBus(alu.Op, uint64(op)); err != nil {
		return 0, Flags{}, err
	}
	if err := c.Settle(); err != nil {
		return 0, Flags{}, err
	}
	return c.GetBus(alu.Result), Flags{
		Zero:     c.Get(alu.ZeroFlag),
		Sign:     c.Get(alu.SignFlag),
		Carry:    c.Get(alu.CarryFlag),
		Overflow: c.Get(alu.OverflowFlag),
		Equal:    c.Get(alu.EqualFlag),
	}, nil
}

// RunBatch drives up to 64 operand pairs through the gate-level ALU in one
// 64-lane settle: lane l computes op(as[l], bs[l]). Results land in
// res[:len(as)] and, when flags is non-nil, flags[:len(as)]; the caller
// provides both so the exhaustive-verify hot loop performs no allocations.
// The batch must belong to the ALU's circuit.
func (alu *ALU) RunBatch(b *Batch, op ALUOp, as, bs []uint64, res []uint64, flags []Flags) error {
	k := len(as)
	if k == 0 || k > BatchLanes {
		return fmt.Errorf("circuit: batch of %d operand pairs out of range 1..%d", k, BatchLanes)
	}
	if len(bs) != k {
		return fmt.Errorf("circuit: operand slices differ: %d vs %d", k, len(bs))
	}
	if len(res) < k {
		return fmt.Errorf("circuit: result slice of %d too short for %d lanes", len(res), k)
	}
	if flags != nil && len(flags) < k {
		return fmt.Errorf("circuit: flags slice of %d too short for %d lanes", len(flags), k)
	}
	if op < 0 || op > 7 {
		return fmt.Errorf("circuit: invalid ALU op %d", int(op))
	}
	// Same op select on every lane.
	for i, id := range alu.Op {
		var m uint64
		if uint64(op)&(1<<uint(i)) != 0 {
			m = ^uint64(0)
		}
		if err := b.Set(id, m); err != nil {
			return err
		}
	}
	// Transpose lane-major operands into the engine's bit-major masks.
	for i := 0; i < alu.width; i++ {
		var ma, mb uint64
		for l := 0; l < k; l++ {
			ma |= as[l] >> uint(i) & 1 << uint(l)
			mb |= bs[l] >> uint(i) & 1 << uint(l)
		}
		if err := b.Set(alu.A[i], ma); err != nil {
			return err
		}
		if err := b.Set(alu.B[i], mb); err != nil {
			return err
		}
	}
	if err := b.Settle(); err != nil {
		return err
	}
	for l := 0; l < k; l++ {
		res[l] = 0
	}
	for i, id := range alu.Result {
		m := b.Get(id)
		for l := 0; l < k; l++ {
			res[l] |= m >> uint(l) & 1 << uint(i)
		}
	}
	if flags != nil {
		zf, sf := b.Get(alu.ZeroFlag), b.Get(alu.SignFlag)
		cf, of := b.Get(alu.CarryFlag), b.Get(alu.OverflowFlag)
		eq := b.Get(alu.EqualFlag)
		for l := 0; l < k; l++ {
			bit := uint(l)
			flags[l] = Flags{
				Zero:     zf>>bit&1 != 0,
				Sign:     sf>>bit&1 != 0,
				Carry:    cf>>bit&1 != 0,
				Overflow: of>>bit&1 != 0,
				Equal:    eq>>bit&1 != 0,
			}
		}
	}
	return nil
}

// RefALU computes the same operation and flags functionally; it is the
// specification the gate-level ALU is tested against, and it serves the
// rest of the repository (the CPU and asm machine) as a fast ALU.
func RefALU(op ALUOp, a, b uint64, width int) (uint64, Flags) {
	if width < 1 || width > 64 {
		panic(fmt.Sprintf("circuit: ALU width %d out of range", width))
	}
	var m uint64
	if width == 64 {
		m = ^uint64(0)
	} else {
		m = (uint64(1) << uint(width)) - 1
	}
	a &= m
	b &= m
	signBit := uint64(1) << uint(width-1)
	var res uint64
	var f Flags
	switch op {
	case OpAdd:
		wide := a + b
		res = wide & m
		if width == 64 {
			f.Carry = wide < a
		} else {
			f.Carry = wide > m
		}
		f.Overflow = (a&signBit) == (b&signBit) && (res&signBit) != (a&signBit)
	case OpSub:
		nb := (^b) & m
		wide := a + nb + 1
		res = wide & m
		if width == 64 {
			f.Carry = a >= b
		} else {
			f.Carry = wide > m
		}
		f.Overflow = (a&signBit) != (b&signBit) && (res&signBit) == (b&signBit)
	case OpAnd:
		res = a & b
	case OpOr:
		res = a | b
	case OpXor:
		res = a ^ b
	case OpNotA:
		res = (^a) & m
	case OpShl:
		res = (a << 1) & m
		f.Carry = a&signBit != 0
	case OpShr:
		res = a >> 1
		f.Carry = a&1 != 0
	default:
		panic(fmt.Sprintf("circuit: invalid ALU op %d", int(op)))
	}
	f.Zero = res == 0
	f.Sign = res&signBit != 0
	f.Equal = a == b
	return res, f
}
