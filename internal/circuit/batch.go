package circuit

import (
	"errors"
	"fmt"
)

// BatchLanes is the number of independent stimulus lanes a Batch evaluates
// per settle: net values are uint64 bitmasks, bit l belonging to lane l, so
// every gate visit computes 64 input vectors at once (SWAR bit-level data
// parallelism). Exhaustive sweeps — the logisim -verify workload — pay one
// gate evaluation per 64 vectors instead of one per vector.
const BatchLanes = 64

// ErrBatchStale is returned by Batch.Settle after the underlying circuit's
// netlist was mutated; create a new batch with NewBatch.
var ErrBatchStale = errors.New("circuit: batch is stale (netlist was modified); create a new Batch")

// Batch is a 64-lane bit-parallel evaluation context over a compiled
// circuit. It owns its own value array, so batches and the scalar engine
// never interfere; latch lanes start from the circuit's current scalar
// state (see Reset).
type Batch struct {
	c    *Circuit
	p    *plan
	vals []uint64
}

// NewBatch compiles the circuit (if needed) and returns a lane engine with
// every lane loaded from the circuit's current scalar values.
func (c *Circuit) NewBatch() *Batch {
	c.Compile()
	b := &Batch{c: c, p: c.plan, vals: make([]uint64, len(c.vals))}
	b.Reset()
	return b
}

// Reset reloads all 64 lanes of every net from the circuit's current
// scalar values: a true net becomes an all-ones mask. Gate-driven nets are
// recomputed by the next Settle; for latch nets this seeds each lane's
// stored state.
func (b *Batch) Reset() {
	for id, v := range b.c.vals {
		if v {
			b.vals[id] = ^uint64(0)
		} else {
			b.vals[id] = 0
		}
	}
}

// Set drives all 64 lanes of an input net from a mask (bit l = lane l).
// Setting a gate-driven or constant net is an error, as with Circuit.Set.
func (b *Batch) Set(id NetID, lanes uint64) error {
	if b.c.driven[id] {
		return fmt.Errorf("circuit: net %d is gate-driven; cannot set externally", id)
	}
	if b.c.consts[id] {
		return fmt.Errorf("circuit: net %d is a constant; cannot set externally", id)
	}
	b.vals[id] = lanes
	return nil
}

// Get reads all 64 lanes of a net as a mask.
func (b *Batch) Get(id NetID) uint64 { return b.vals[id] }

// GetLane reads one lane of a net.
func (b *Batch) GetLane(id NetID, lane int) bool {
	return b.vals[id]>>(uint(lane)&63)&1 != 0
}

// SetBusLane drives a bus (bit 0 first) in a single lane from the low bits
// of v, leaving the other lanes untouched.
func (b *Batch) SetBusLane(bus []NetID, lane int, v uint64) error {
	l := uint(lane) & 63
	for i, id := range bus {
		if b.c.driven[id] {
			return fmt.Errorf("circuit: net %d is gate-driven; cannot set externally", id)
		}
		if b.c.consts[id] {
			return fmt.Errorf("circuit: net %d is a constant; cannot set externally", id)
		}
		b.vals[id] = b.vals[id]&^(1<<l) | (v >> uint(i) & 1 << l)
	}
	return nil
}

// BusLane reads a bus (bit 0 first) in a single lane as an integer.
func (b *Batch) BusLane(bus []NetID, lane int) uint64 {
	l := uint(lane) & 63
	var v uint64
	for i, id := range bus {
		v |= b.vals[id] >> l & 1 << uint(i)
	}
	return v
}

// Settle propagates all 64 lanes to a fixed point on the compiled plan:
// the levelized acyclic region is evaluated once per gate, and feedback
// islands are swept in insertion order until no lane changes, preserving
// per-lane last-written-wins latch resolution. Every lane's settled values
// are bit-for-bit what the scalar engine would produce for that lane's
// stimulus.
func (b *Batch) Settle() error {
	p := b.p
	if p != b.c.plan {
		return ErrBatchStale
	}
	vals, extra := b.vals, p.extra
	for pos := 0; pos < p.islandLo; pos++ {
		g := &p.gates[pos]
		vals[g.out] = g.evalMask(vals, extra)
	}
	if p.islandHi > p.islandLo {
		limit := len(vals) + 2
		if limit > maxSettleIterations {
			limit = maxSettleIterations
		}
		for sweep := 0; ; sweep++ {
			changed := false
			for pos := p.islandLo; pos < p.islandHi; pos++ {
				g := &p.gates[pos]
				v := g.evalMask(vals, extra)
				if vals[g.out] != v {
					vals[g.out] = v
					changed = true
				}
			}
			if !changed {
				break
			}
			if sweep >= limit {
				return ErrUnstable
			}
		}
	}
	for pos := p.islandHi; pos < len(p.gates); pos++ {
		g := &p.gates[pos]
		vals[g.out] = g.evalMask(vals, extra)
	}
	return nil
}

// EvalBatch is the lane-parallel analogue of Eval: each named input is
// driven with a 64-lane mask (bit l = lane l), all lanes settle together,
// and each named output comes back as a mask. The batch context is cached
// on the circuit and rebuilt automatically after mutations.
func (c *Circuit) EvalBatch(inputs map[string]uint64, outputs ...string) (map[string]uint64, error) {
	if c.evalBatch == nil || c.evalBatch.p != c.plan || c.plan == nil {
		c.Compile()
		c.evalBatch = c.NewBatch()
	}
	b := c.evalBatch
	for name, m := range inputs {
		id, ok := c.names[name]
		if !ok {
			return nil, fmt.Errorf("circuit: no net named %q", name)
		}
		if err := b.Set(id, m); err != nil {
			return nil, err
		}
	}
	if err := b.Settle(); err != nil {
		return nil, err
	}
	res := make(map[string]uint64, len(outputs))
	for _, name := range outputs {
		id, ok := c.names[name]
		if !ok {
			return nil, fmt.Errorf("circuit: no net named %q", name)
		}
		res[name] = b.vals[id]
	}
	return res, nil
}
