package circuit

import (
	"math/rand"
	"testing"
)

// TestBatchLanesIndependent drives 64 distinct stimuli through one batch
// settle and checks every lane against the scalar engine run one vector at
// a time.
func TestBatchLanesIndependent(t *testing.T) {
	build := func(c *Circuit) *ALU { return NewALU(c, 6) }
	cb, cs := New(), New()
	alub := build(cb)
	alus := build(cs)
	b := cb.NewBatch()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 4; trial++ {
		op := ALUOp(trial * 3 % 8)
		as := make([]uint64, BatchLanes)
		bs := make([]uint64, BatchLanes)
		for l := range as {
			as[l] = uint64(rng.Intn(64))
			bs[l] = uint64(rng.Intn(64))
			if err := b.SetBusLane(alub.A, l, as[l]); err != nil {
				t.Fatal(err)
			}
			if err := b.SetBusLane(alub.B, l, bs[l]); err != nil {
				t.Fatal(err)
			}
		}
		for i, id := range alub.Op {
			var m uint64
			if uint64(op)&(1<<uint(i)) != 0 {
				m = ^uint64(0)
			}
			if err := b.Set(id, m); err != nil {
				t.Fatal(err)
			}
		}
		if err := b.Settle(); err != nil {
			t.Fatal(err)
		}
		for l := 0; l < BatchLanes; l++ {
			want, wf, err := alus.Run(cs, op, as[l], bs[l])
			if err != nil {
				t.Fatal(err)
			}
			if got := b.BusLane(alub.Result, l); got != want {
				t.Fatalf("lane %d: %v(%d,%d) = %#x, want %#x", l, op, as[l], bs[l], got, want)
			}
			if got := b.GetLane(alub.ZeroFlag, l); got != wf.Zero {
				t.Fatalf("lane %d: zero flag %v, want %v", l, got, wf.Zero)
			}
		}
	}
}

// TestBatchALUExhaustiveWidth8 verifies the width-8 gate-level ALU
// exhaustively — all 8 ops x 256 x 256 operand pairs — through the 64-lane
// batch engine against the functional reference. This is the acceptance
// workload for cmd/logisim -verify.
func TestBatchALUExhaustiveWidth8(t *testing.T) {
	c := New()
	alu := NewALU(c, 8)
	b := c.NewBatch()
	as := make([]uint64, BatchLanes)
	bs := make([]uint64, BatchLanes)
	res := make([]uint64, BatchLanes)
	flags := make([]Flags, BatchLanes)
	for op := ALUOp(0); op < 8; op++ {
		for base := 0; base < 65536; base += BatchLanes {
			for l := 0; l < BatchLanes; l++ {
				as[l] = uint64(base+l) >> 8
				bs[l] = uint64(base+l) & 0xff
			}
			if err := alu.RunBatch(b, op, as, bs, res, flags); err != nil {
				t.Fatal(err)
			}
			for l := 0; l < BatchLanes; l++ {
				want, wf := RefALU(op, as[l], bs[l], 8)
				if res[l] != want || flags[l] != wf {
					t.Fatalf("%v(%d,%d) = %#x %+v, want %#x %+v",
						op, as[l], bs[l], res[l], flags[l], want, wf)
				}
			}
		}
	}
}

// TestBatchRunBatchPartial covers k < 64 lanes and argument validation.
func TestBatchRunBatchPartial(t *testing.T) {
	c := New()
	alu := NewALU(c, 4)
	b := c.NewBatch()
	as := []uint64{1, 2, 3}
	bs := []uint64{4, 5, 6}
	res := make([]uint64, 3)
	if err := alu.RunBatch(b, OpAdd, as, bs, res, nil); err != nil {
		t.Fatal(err)
	}
	for l := range as {
		want, _ := RefALU(OpAdd, as[l], bs[l], 4)
		if res[l] != want {
			t.Fatalf("lane %d: got %#x, want %#x", l, res[l], want)
		}
	}
	if err := alu.RunBatch(b, OpAdd, as, bs[:2], res, nil); err == nil {
		t.Fatal("mismatched operand lengths accepted")
	}
	if err := alu.RunBatch(b, OpAdd, as, bs, res[:2], nil); err == nil {
		t.Fatal("short result slice accepted")
	}
	if err := alu.RunBatch(b, 9, as, bs, res, nil); err == nil {
		t.Fatal("invalid op accepted")
	}
	if err := alu.RunBatch(b, OpAdd, nil, nil, res, nil); err == nil {
		t.Fatal("empty batch accepted")
	}
}

// TestBatchLatchState checks per-lane latch behaviour: each lane of a D
// latch holds its own stored bit across enable-low settles.
func TestBatchLatchState(t *testing.T) {
	c := New()
	d := c.Input("d")
	en := c.Input("en")
	q, _ := DLatch(c, d, en)
	b := c.NewBatch()
	// Lanes alternate data: even lanes latch 0, odd lanes latch 1.
	odd := uint64(0xaaaaaaaaaaaaaaaa)
	if err := b.Set(d, odd); err != nil {
		t.Fatal(err)
	}
	if err := b.Set(en, ^uint64(0)); err != nil {
		t.Fatal(err)
	}
	if err := b.Settle(); err != nil {
		t.Fatal(err)
	}
	if got := b.Get(q); got != odd {
		t.Fatalf("transparent q = %#x, want %#x", got, odd)
	}
	// Close the latch, invert d: q must hold.
	if err := b.Set(en, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.Set(d, ^odd); err != nil {
		t.Fatal(err)
	}
	if err := b.Settle(); err != nil {
		t.Fatal(err)
	}
	if got := b.Get(q); got != odd {
		t.Fatalf("held q = %#x, want %#x", got, odd)
	}
	// Open only the low 32 lanes: they follow the inverted data, the high
	// lanes keep holding.
	if err := b.Set(en, 0xffffffff); err != nil {
		t.Fatal(err)
	}
	if err := b.Settle(); err != nil {
		t.Fatal(err)
	}
	want := ^odd&0xffffffff | odd&^uint64(0xffffffff)
	if got := b.Get(q); got != want {
		t.Fatalf("split-enable q = %#x, want %#x", got, want)
	}
}

// TestBatchResetSeedsFromScalar: NewBatch/Reset broadcast the circuit's
// scalar latch state into every lane.
func TestBatchResetSeedsFromScalar(t *testing.T) {
	c := New()
	d := c.Input("d")
	en := c.Input("en")
	q, _ := DLatch(c, d, en)
	// Latch a 1 in the scalar engine.
	for _, step := range [][2]bool{{true, true}, {true, false}, {false, false}} {
		if err := c.Set(d, step[0]); err != nil {
			t.Fatal(err)
		}
		if err := c.Set(en, step[1]); err != nil {
			t.Fatal(err)
		}
		if err := c.Settle(); err != nil {
			t.Fatal(err)
		}
	}
	if !c.Get(q) {
		t.Fatal("scalar latch did not store 1")
	}
	b := c.NewBatch()
	if err := b.Settle(); err != nil {
		t.Fatal(err)
	}
	if got := b.Get(q); got != ^uint64(0) {
		t.Fatalf("seeded q = %#x, want all-ones", got)
	}
}

// TestBatchStaleAfterMutation: mutating the netlist invalidates existing
// batches.
func TestBatchStaleAfterMutation(t *testing.T) {
	c := New()
	a := c.Input("a")
	_ = c.Gate(NOT, a)
	b := c.NewBatch()
	if err := b.Settle(); err != nil {
		t.Fatal(err)
	}
	_ = c.Gate(BUF, a) // mutation
	if err := b.Settle(); err != ErrBatchStale {
		t.Fatalf("Settle on stale batch = %v, want ErrBatchStale", err)
	}
	// A fresh batch works again.
	if err := c.NewBatch().Settle(); err != nil {
		t.Fatal(err)
	}
}

// TestBatchSetGuards: lane sets obey the same driven/constant rules as the
// scalar engine.
func TestBatchSetGuards(t *testing.T) {
	c := New()
	a := c.Input("a")
	g := c.Gate(NOT, a)
	k := c.Constant(true)
	b := c.NewBatch()
	if err := b.Set(g, 1); err == nil {
		t.Fatal("Set on gate-driven net accepted")
	}
	if err := b.Set(k, 0); err == nil {
		t.Fatal("Set on constant net accepted")
	}
	if err := b.SetBusLane([]NetID{g}, 0, 1); err == nil {
		t.Fatal("SetBusLane on gate-driven net accepted")
	}
}

// TestEvalBatchNamed exercises the named-pin convenience wrapper, including
// transparent rebuild after a mutation.
func TestEvalBatchNamed(t *testing.T) {
	c := New()
	a := c.Input("a")
	bIn := c.Input("b")
	c.Name("and", c.Gate(AND, a, bIn))
	out, err := c.EvalBatch(map[string]uint64{"a": 0xff00, "b": 0xf0f0}, "and")
	if err != nil {
		t.Fatal(err)
	}
	if out["and"] != 0xf000 {
		t.Fatalf("and = %#x, want 0xf000", out["and"])
	}
	c.Name("or", c.Gate(OR, a, bIn)) // mutation: wrapper must rebuild
	out, err = c.EvalBatch(map[string]uint64{"a": 0xff00, "b": 0xf0f0}, "and", "or")
	if err != nil {
		t.Fatal(err)
	}
	if out["and"] != 0xf000 || out["or"] != 0xfff0 {
		t.Fatalf("and=%#x or=%#x, want 0xf000 0xfff0", out["and"], out["or"])
	}
	if _, err := c.EvalBatch(map[string]uint64{"nope": 1}); err == nil {
		t.Fatal("unknown input name accepted")
	}
	if _, err := c.EvalBatch(nil, "nope"); err == nil {
		t.Fatal("unknown output name accepted")
	}
}

// TestBatchOscillationDetected: an unstable loop is reported from the lane
// engine too.
func TestBatchOscillationDetected(t *testing.T) {
	c := New()
	loop := c.NewNet()
	c.GateInto(loop, NOT, loop)
	if err := c.NewBatch().Settle(); err != ErrUnstable {
		t.Fatalf("Settle = %v, want ErrUnstable", err)
	}
}
