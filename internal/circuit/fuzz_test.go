package circuit

// FuzzCircuitSettle interprets the fuzz input as a netlist-construction
// program plus a stimulus script, builds the same netlist into two
// circuits, and differentially settles one with the compiled plan and one
// with the reference sweep. Any divergence on any net, any error mismatch,
// or any panic is a bug in the compiled engine.

import (
	"testing"
)

// buildFuzzNetlist decodes gate-construction opcodes from data until it is
// exhausted or the gate budget runs out, returning the input pins and how
// many bytes were consumed. Opcode byte b: b%10 in 0..7 adds that GateKind
// fed from existing nets picked by follow-up bytes; 8 adds an RSLatch; 9
// adds a DLatch. The construction is fully determined by data, so calling
// it twice yields structurally identical netlists.
func buildFuzzNetlist(c *Circuit, data []byte) (inputs []NetID, consumed int) {
	const maxGates = 200
	inputs = make([]NetID, 4)
	for i := range inputs {
		inputs[i] = c.Input("")
	}
	nets := append([]NetID(nil), inputs...)
	pick := func(b byte) NetID { return nets[int(b)%len(nets)] }
	i := 0
	gates := 0
	for gates < maxGates && i < len(data) {
		op := int(data[i]) % 10
		i++
		switch {
		case op < 8:
			kind := GateKind(op)
			nin := 1
			if kind != NOT && kind != BUF {
				if i >= len(data) {
					return inputs, i
				}
				nin = 2 + int(data[i])%3
				i++
			}
			if i+nin > len(data) {
				return inputs, i
			}
			in := make([]NetID, nin)
			for j := range in {
				in[j] = pick(data[i])
				i++
			}
			nets = append(nets, c.Gate(kind, in...))
			gates++
		case op == 8:
			if i+2 > len(data) {
				return inputs, i
			}
			q, nq := RSLatch(c, pick(data[i]), pick(data[i+1]))
			i += 2
			nets = append(nets, q, nq)
			gates += 2
		default:
			if i+2 > len(data) {
				return inputs, i
			}
			q, nq := DLatch(c, pick(data[i]), pick(data[i+1]))
			i += 2
			nets = append(nets, q, nq)
			gates += 5
		}
	}
	return inputs, i
}

func FuzzCircuitSettle(f *testing.F) {
	f.Add([]byte{0x00})
	f.Add([]byte{0x02, 0x00, 0x00, 0x01, 0x05, 0x03, 0xff, 0x0f})             // AND+NOT then stimulus
	f.Add([]byte{0x08, 0x00, 0x01, 0x11, 0x22, 0x33, 0x00, 0x0f, 0xf0})       // RS latch, order-sensitive drive
	f.Add([]byte{0x09, 0x02, 0x03, 0x09, 0x00, 0x01, 0xaa, 0x55, 0x3c, 0xc3}) // two D latches
	f.Add([]byte{0x04, 0x00, 0x01, 0x02, 0x06, 0x04, 0x08, 0x05, 0x06, 0x77}) // XOR fan-in, latch on gate outputs
	f.Fuzz(func(t *testing.T, data []byte) {
		cc, cr := New(), New()
		inC, used := buildFuzzNetlist(cc, data)
		inR, _ := buildFuzzNetlist(cr, data)
		if cc.NumNets() != cr.NumNets() {
			t.Fatalf("builder not deterministic: %d vs %d nets", cc.NumNets(), cr.NumNets())
		}
		// Remaining bytes are stimulus rounds: each byte's low 4 bits are
		// the input-pin values, its high 4 bits select which pins change.
		script := data[used:]
		rounds := len(script)
		if rounds > 32 {
			rounds = 32
		}
		for r := 0; r < rounds; r++ {
			b := script[r]
			for bit := 0; bit < 4; bit++ {
				if b>>(4+uint(bit))&1 == 0 {
					continue // this pin unchanged: partial stimulus
				}
				v := b>>uint(bit)&1 != 0
				if err := cc.Set(inC[bit], v); err != nil {
					t.Fatal(err)
				}
				if err := cr.Set(inR[bit], v); err != nil {
					t.Fatal(err)
				}
			}
			errC := cc.Settle()
			errR := cr.RefSettle()
			if (errC == nil) != (errR == nil) {
				t.Fatalf("round %d: compiled err %v, reference err %v", r, errC, errR)
			}
			if errC != nil {
				return // both oscillate: consistent, nothing more to compare
			}
			for id := 0; id < cc.NumNets(); id++ {
				if cc.Get(NetID(id)) != cr.Get(NetID(id)) {
					t.Fatalf("round %d net %d: compiled %v, reference %v",
						r, id, cc.Get(NetID(id)), cr.Get(NetID(id)))
				}
			}
		}
	})
}
