package circuit

import "testing"

func TestRSLatch(t *testing.T) {
	c := New()
	r := c.Input("r")
	s := c.Input("s")
	q, notQ := RSLatch(c, r, s)

	// Set.
	c.Set(s, true)
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	c.Set(s, false)
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	if !c.Get(q) || c.Get(notQ) {
		t.Errorf("after set: q=%v notQ=%v", c.Get(q), c.Get(notQ))
	}

	// Hold (R=S=0): q stays 1.
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	if !c.Get(q) {
		t.Error("latch lost state on hold")
	}

	// Reset.
	c.Set(r, true)
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	c.Set(r, false)
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	if c.Get(q) || !c.Get(notQ) {
		t.Errorf("after reset: q=%v notQ=%v", c.Get(q), c.Get(notQ))
	}

	// Forbidden input R=S=1: both outputs low (NOR latch behaviour).
	c.Set(r, true)
	c.Set(s, true)
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	if c.Get(q) || c.Get(notQ) {
		t.Errorf("forbidden input: q=%v notQ=%v", c.Get(q), c.Get(notQ))
	}
}

func TestDLatch(t *testing.T) {
	c := New()
	d := c.Input("d")
	en := c.Input("en")
	q, notQ := DLatch(c, d, en)

	// Enabled: q follows d.
	c.Set(en, true)
	for _, v := range []bool{true, false, true} {
		c.Set(d, v)
		if err := c.Settle(); err != nil {
			t.Fatal(err)
		}
		if c.Get(q) != v || c.Get(notQ) != !v {
			t.Errorf("enabled d=%v: q=%v", v, c.Get(q))
		}
	}

	// Disabled: q holds while d changes.
	c.Set(en, false)
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	held := c.Get(q)
	c.Set(d, !held)
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	if c.Get(q) != held {
		t.Error("disabled latch did not hold")
	}
}

func TestRegister(t *testing.T) {
	c := New()
	d := c.Inputs("d", 8)
	we := c.Input("we")
	q := Register(c, d, we)

	c.SetBus(d, 0x5a)
	c.Set(we, true)
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	c.Set(we, false)
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	if got := c.GetBus(q); got != 0x5a {
		t.Fatalf("register holds %#x, want 0x5a", got)
	}

	// With write enable low, changing D must not disturb the register.
	c.SetBus(d, 0xff)
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	if got := c.GetBus(q); got != 0x5a {
		t.Errorf("register overwritten while disabled: %#x", got)
	}
}

func TestRegisterFile(t *testing.T) {
	c := New()
	rf := NewRegisterFile(c, 2, 8) // 4 registers x 8 bits
	values := []uint64{0x11, 0x22, 0x33, 0x44}
	for r, v := range values {
		if err := rf.Write(c, r, v); err != nil {
			t.Fatalf("write r%d: %v", r, err)
		}
	}
	for r, want := range values {
		got, err := rf.Read(c, r)
		if err != nil {
			t.Fatalf("read r%d: %v", r, err)
		}
		if got != want {
			t.Errorf("r%d = %#x, want %#x", r, got, want)
		}
	}
	// Overwrite one register; the others must be untouched.
	if err := rf.Write(c, 2, 0xee); err != nil {
		t.Fatal(err)
	}
	for r, want := range []uint64{0x11, 0x22, 0xee, 0x44} {
		got, err := rf.Read(c, r)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("after overwrite, r%d = %#x, want %#x", r, got, want)
		}
	}
}
