package circuit

import "fmt"

// HalfAdder wires a half adder from an XOR and an AND gate, returning the
// sum and carry nets.
func HalfAdder(c *Circuit, a, b NetID) (sum, carry NetID) {
	return c.Gate(XOR, a, b), c.Gate(AND, a, b)
}

// FullAdder wires a one-bit full adder (the Lab 3 warm-up circuit) from two
// half adders and an OR gate.
func FullAdder(c *Circuit, a, b, cin NetID) (sum, cout NetID) {
	s1, c1 := HalfAdder(c, a, b)
	s2, c2 := HalfAdder(c, s1, cin)
	return s2, c.Gate(OR, c1, c2)
}

// RippleCarryAdder chains full adders to add two n-bit buses, returning the
// sum bus, the final carry out, and the carry into the top bit (needed for
// the ALU's overflow flag: OF = carryIntoTop XOR carryOut).
func RippleCarryAdder(c *Circuit, a, b []NetID, cin NetID) (sum []NetID, cout, cinTop NetID) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("circuit: adder bus widths differ: %d vs %d", len(a), len(b)))
	}
	if len(a) == 0 {
		panic("circuit: adder needs at least one bit")
	}
	carry := cin
	sum = make([]NetID, len(a))
	for i := range a {
		cinTop = carry
		sum[i], carry = FullAdder(c, a[i], b[i], carry)
	}
	return sum, carry, cinTop
}

// SignExtender widens bus from to extra bits by replicating its top bit
// (the other Lab 3 warm-up circuit). The result reuses the original nets
// for the low bits and buffers the sign bit into the new high bits.
func SignExtender(c *Circuit, bus []NetID, to int) []NetID {
	if len(bus) == 0 {
		panic("circuit: sign extender needs at least one input bit")
	}
	if to < len(bus) {
		panic(fmt.Sprintf("circuit: cannot sign-extend %d bits to %d", len(bus), to))
	}
	out := make([]NetID, to)
	copy(out, bus)
	sign := bus[len(bus)-1]
	for i := len(bus); i < to; i++ {
		out[i] = c.Gate(BUF, sign)
	}
	return out
}

// Mux2 selects between a (sel=0) and b (sel=1) with AND/OR/NOT gates.
func Mux2(c *Circuit, sel, a, b NetID) NetID {
	nsel := c.Gate(NOT, sel)
	return c.Gate(OR, c.Gate(AND, nsel, a), c.Gate(AND, sel, b))
}

// MuxN selects inputs[sel] using a tree of Mux2 gates. The number of inputs
// must be a power of two and sel supplies the select bits, LSB first.
func MuxN(c *Circuit, sel []NetID, inputs []NetID) NetID {
	if len(inputs) != 1<<uint(len(sel)) {
		panic(fmt.Sprintf("circuit: MuxN needs %d inputs for %d select bits, got %d",
			1<<uint(len(sel)), len(sel), len(inputs)))
	}
	if len(sel) == 0 {
		return inputs[0]
	}
	// Recurse on the high select bit last: pair inputs on the low bit.
	lower := make([]NetID, 0, len(inputs)/2)
	for i := 0; i < len(inputs); i += 2 {
		lower = append(lower, Mux2(c, sel[0], inputs[i], inputs[i+1]))
	}
	return MuxN(c, sel[1:], lower)
}

// MuxBusN selects one of several equal-width buses.
func MuxBusN(c *Circuit, sel []NetID, buses ...[]NetID) []NetID {
	if len(buses) == 0 {
		panic("circuit: MuxBusN needs at least one bus")
	}
	width := len(buses[0])
	for _, b := range buses {
		if len(b) != width {
			panic("circuit: MuxBusN buses must share a width")
		}
	}
	out := make([]NetID, width)
	for bit := 0; bit < width; bit++ {
		column := make([]NetID, len(buses))
		for i, b := range buses {
			column[i] = b[bit]
		}
		out[bit] = MuxN(c, sel, column)
	}
	return out
}

// Decoder produces 2^n one-hot outputs from an n-bit select bus (LSB first),
// the building block for the register file's write enable.
func Decoder(c *Circuit, sel []NetID) []NetID {
	n := len(sel)
	outs := make([]NetID, 1<<uint(n))
	nsel := make([]NetID, n)
	for i, s := range sel {
		nsel[i] = c.Gate(NOT, s)
	}
	for v := range outs {
		terms := make([]NetID, n)
		for i := 0; i < n; i++ {
			if v&(1<<uint(i)) != 0 {
				terms[i] = sel[i]
			} else {
				terms[i] = nsel[i]
			}
		}
		if n == 1 {
			outs[v] = c.Gate(BUF, terms[0])
		} else {
			outs[v] = c.Gate(AND, terms...)
		}
	}
	return outs
}

// EqualComparator outputs 1 when two buses carry identical bit patterns,
// built from XNOR gates feeding an AND.
func EqualComparator(c *Circuit, a, b []NetID) NetID {
	if len(a) != len(b) {
		panic("circuit: comparator bus widths differ")
	}
	if len(a) == 0 {
		panic("circuit: comparator needs at least one bit")
	}
	eqs := make([]NetID, len(a))
	for i := range a {
		eqs[i] = c.Gate(XNOR, a[i], b[i])
	}
	if len(eqs) == 1 {
		return eqs[0]
	}
	return c.Gate(AND, eqs...)
}

// IsZero outputs 1 when every bit of the bus is 0 (a NOR reduction); it
// drives the ALU's zero flag.
func IsZero(c *Circuit, bus []NetID) NetID {
	if len(bus) == 0 {
		panic("circuit: IsZero needs at least one bit")
	}
	if len(bus) == 1 {
		return c.Gate(NOT, bus[0])
	}
	return c.Gate(NOR, bus...)
}

// ShiftLeft1 returns bus shifted left by one bit: out[0] = 0, out[i] =
// in[i-1]; the shifted-out top bit is returned separately for the carry flag.
func ShiftLeft1(c *Circuit, bus []NetID) (out []NetID, shiftedOut NetID) {
	out = make([]NetID, len(bus))
	out[0] = c.Constant(false)
	for i := 1; i < len(bus); i++ {
		out[i] = c.Gate(BUF, bus[i-1])
	}
	return out, c.Gate(BUF, bus[len(bus)-1])
}

// ShiftRight1 returns bus logically shifted right by one bit; the shifted-out
// bit 0 is returned separately for the carry flag.
func ShiftRight1(c *Circuit, bus []NetID) (out []NetID, shiftedOut NetID) {
	out = make([]NetID, len(bus))
	for i := 0; i < len(bus)-1; i++ {
		out[i] = c.Gate(BUF, bus[i+1])
	}
	out[len(bus)-1] = c.Constant(false)
	return out, c.Gate(BUF, bus[0])
}

// BitwiseGate applies a two-input gate bit by bit across two buses.
func BitwiseGate(c *Circuit, kind GateKind, a, b []NetID) []NetID {
	if len(a) != len(b) {
		panic("circuit: bitwise bus widths differ")
	}
	out := make([]NetID, len(a))
	for i := range a {
		out[i] = c.Gate(kind, a[i], b[i])
	}
	return out
}

// BitwiseNot inverts every bit of a bus.
func BitwiseNot(c *Circuit, a []NetID) []NetID {
	out := make([]NetID, len(a))
	for i := range a {
		out[i] = c.Gate(NOT, a[i])
	}
	return out
}
