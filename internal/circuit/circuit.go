// Package circuit is a gate-level digital logic simulator standing in for
// Logisim in CS 31's Lab 3 and the circuits homework. Circuits are netlists
// of primitive gates (AND, OR, NOT, ...) connected by single-bit nets.
// Evaluation runs to a fixed point, so feedback circuits such as the
// cross-coupled R-S latch and the gated D latch work exactly as they do on
// the Logisim canvas. Builders compose the lab's deliverables from gates:
// one-bit adders, ripple-carry adders, sign extenders, multiplexers,
// decoders, latches, registers, and the 8-operation ALU with five status
// flags.
package circuit

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// NetID identifies a single-bit net (wire) within a Circuit.
type NetID int

// ErrUnstable is returned by Settle when the circuit oscillates instead of
// reaching a fixed point (e.g., a NOT gate feeding itself).
var ErrUnstable = errors.New("circuit: did not settle (oscillation)")

// GateKind enumerates the primitive gate types.
type GateKind int

// Primitive gates available on the canvas.
const (
	AND GateKind = iota
	OR
	NOT
	NAND
	NOR
	XOR
	XNOR
	BUF // buffer: output follows single input
)

var gateNames = map[GateKind]string{
	AND: "AND", OR: "OR", NOT: "NOT", NAND: "NAND",
	NOR: "NOR", XOR: "XOR", XNOR: "XNOR", BUF: "BUF",
}

func (k GateKind) String() string {
	if n, ok := gateNames[k]; ok {
		return n
	}
	return fmt.Sprintf("GateKind(%d)", int(k))
}

// gate is one primitive component: a kind, input nets, and one output net.
type gate struct {
	kind GateKind
	in   []NetID
	out  NetID
}

func (g gate) eval(vals []bool) bool {
	switch g.kind {
	case AND, NAND:
		v := true
		for _, in := range g.in {
			v = v && vals[in]
		}
		if g.kind == NAND {
			return !v
		}
		return v
	case OR, NOR:
		v := false
		for _, in := range g.in {
			v = v || vals[in]
		}
		if g.kind == NOR {
			return !v
		}
		return v
	case XOR, XNOR:
		v := false
		for _, in := range g.in {
			v = v != vals[in]
		}
		if g.kind == XNOR {
			return !v
		}
		return v
	case NOT:
		return !vals[g.in[0]]
	case BUF:
		return vals[g.in[0]]
	default:
		panic("circuit: unknown gate kind")
	}
}

// Circuit is a mutable netlist under construction and simulation.
type Circuit struct {
	gates  []gate
	vals   []bool
	names  map[string]NetID
	inputs map[NetID]bool // nets driven externally, not by a gate
	driven map[NetID]bool // nets driven by a gate output
	consts map[NetID]bool // nets held at a fixed value by Constant

	// Compiled execution plan (see compile.go). The plan is built lazily on
	// the first Settle and invalidated by any netlist mutation; between
	// settles, Set records which input nets changed so Settle re-evaluates
	// only the affected cone.
	plan      *plan
	dirty     []NetID
	allDirty  bool
	evalBatch *Batch // cached lane engine backing EvalBatch
}

// New returns an empty circuit.
func New() *Circuit {
	return &Circuit{
		names:  make(map[string]NetID),
		inputs: make(map[NetID]bool),
		driven: make(map[NetID]bool),
		consts: make(map[NetID]bool),
	}
}

// invalidate discards the compiled plan after a netlist mutation.
func (c *Circuit) invalidate() {
	c.plan = nil
	c.dirty = c.dirty[:0]
	c.allDirty = false
	c.evalBatch = nil
}

// NewNet allocates an anonymous net, initially false.
func (c *Circuit) NewNet() NetID {
	c.invalidate()
	id := NetID(len(c.vals))
	c.vals = append(c.vals, false)
	return id
}

// Input allocates a named externally-driven net (an input pin).
func (c *Circuit) Input(name string) NetID {
	id := c.NewNet()
	c.inputs[id] = true
	if name != "" {
		c.names[name] = id
	}
	return id
}

// Inputs allocates n input pins named prefix0..prefix{n-1} (bit 0 is least
// significant) and returns them in ascending bit order.
func (c *Circuit) Inputs(prefix string, n int) []NetID {
	ids := make([]NetID, n)
	for i := range ids {
		ids[i] = c.Input(fmt.Sprintf("%s%d", prefix, i))
	}
	return ids
}

// Name attaches a label to an existing net (e.g., to mark an output pin).
func (c *Circuit) Name(name string, id NetID) {
	c.names[name] = id
}

// Net looks up a net by name.
func (c *Circuit) Net(name string) (NetID, bool) {
	id, ok := c.names[name]
	return id, ok
}

// Gate adds a primitive gate driving a fresh net and returns that net.
func (c *Circuit) Gate(kind GateKind, in ...NetID) NetID {
	if kind == NOT || kind == BUF {
		if len(in) != 1 {
			panic(fmt.Sprintf("circuit: %v takes exactly 1 input, got %d", kind, len(in)))
		}
	} else if len(in) < 2 {
		panic(fmt.Sprintf("circuit: %v needs at least 2 inputs, got %d", kind, len(in)))
	}
	out := c.NewNet()
	c.gates = append(c.gates, gate{kind: kind, in: in, out: out})
	c.driven[out] = true
	return out
}

// GateInto adds a primitive gate driving an existing net. It is used to
// close feedback loops (latches). A net may have only one driver.
func (c *Circuit) GateInto(out NetID, kind GateKind, in ...NetID) {
	if c.driven[out] {
		panic(fmt.Sprintf("circuit: net %d already has a driver", out))
	}
	if kind == NOT || kind == BUF {
		if len(in) != 1 {
			panic(fmt.Sprintf("circuit: %v takes exactly 1 input, got %d", kind, len(in)))
		}
	} else if len(in) < 2 {
		panic(fmt.Sprintf("circuit: %v needs at least 2 inputs, got %d", kind, len(in)))
	}
	c.invalidate()
	c.gates = append(c.gates, gate{kind: kind, in: in, out: out})
	c.driven[out] = true
}

// Constant returns a net held at the given value. It is an input pin set
// once and locked: Settle never overwrites it, and Set rejects it.
func (c *Circuit) Constant(v bool) NetID {
	id := c.NewNet()
	c.inputs[id] = true
	c.consts[id] = true
	c.vals[id] = v
	return id
}

// Set drives an input net to a value. Setting a gate-driven or constant net
// is an error.
func (c *Circuit) Set(id NetID, v bool) error {
	if c.driven[id] {
		return fmt.Errorf("circuit: net %d is gate-driven; cannot set externally", id)
	}
	if c.consts[id] {
		return fmt.Errorf("circuit: net %d is a constant; cannot set externally", id)
	}
	if c.vals[id] == v {
		return nil
	}
	c.vals[id] = v
	if c.plan != nil && !c.allDirty {
		c.dirty = append(c.dirty, id)
	}
	return nil
}

// SetByName drives a named input net.
func (c *Circuit) SetByName(name string, v bool) error {
	id, ok := c.names[name]
	if !ok {
		return fmt.Errorf("circuit: no net named %q", name)
	}
	return c.Set(id, v)
}

// Get reads a net's current value.
func (c *Circuit) Get(id NetID) bool { return c.vals[id] }

// GetByName reads a named net's current value.
func (c *Circuit) GetByName(name string) (bool, error) {
	id, ok := c.names[name]
	if !ok {
		return false, fmt.Errorf("circuit: no net named %q", name)
	}
	return c.vals[id], nil
}

// SetBus drives a slice of nets (bit 0 first) from the low bits of v.
func (c *Circuit) SetBus(bus []NetID, v uint64) error {
	for i, id := range bus {
		if err := c.Set(id, v&(1<<uint(i)) != 0); err != nil {
			return err
		}
	}
	return nil
}

// GetBus reads a slice of nets (bit 0 first) into an integer.
func (c *Circuit) GetBus(bus []NetID) uint64 {
	var v uint64
	for i, id := range bus {
		if c.vals[id] {
			v |= 1 << uint(i)
		}
	}
	return v
}

// NumGates reports the number of primitive gates, the "cost" metric the lab
// uses to compare designs.
func (c *Circuit) NumGates() int { return len(c.gates) }

// NumNets reports the number of nets.
func (c *Circuit) NumNets() int { return len(c.vals) }

// maxSettleIterations bounds fixed-point iteration; each pass evaluates all
// gates once, so any settling circuit converges within #nets passes.
const maxSettleIterations = 10000

// Settle propagates values through the netlist until no net changes,
// returning ErrUnstable if the circuit oscillates. It runs on the compiled
// execution plan (built lazily, invalidated by netlist mutation): the
// acyclic region is evaluated once in levelized order, feedback loops
// (latches) are confined to bounded fixed-point islands swept in insertion
// order, and only gates whose inputs changed since the last Settle are
// re-evaluated. The settled values are bit-for-bit those of RefSettle, the
// retained teaching-fidelity sweep.
func (c *Circuit) Settle() error {
	p := c.plan
	switch {
	case p == nil:
		p = c.compile()
	case c.allDirty:
		p.markAll()
		c.allDirty = false
		c.dirty = c.dirty[:0]
	default:
		for _, id := range c.dirty {
			p.markNet(id)
		}
		c.dirty = c.dirty[:0]
	}
	return p.settle(c.vals)
}

// RefSettle is the original fixed-point sweep: every gate is re-evaluated,
// in insertion order, on every pass until a pass changes nothing. It is the
// reference the compiled Settle is differentially tested against, kept for
// teaching fidelity — this loop is exactly Logisim's propagation as the
// course presents it.
func (c *Circuit) RefSettle() error {
	// The sweep bypasses the plan's change tracking, so force the next
	// compiled Settle to re-evaluate everything.
	c.allDirty = c.plan != nil
	limit := len(c.vals) + 2
	if limit > maxSettleIterations {
		limit = maxSettleIterations
	}
	for iter := 0; iter < limit; iter++ {
		changed := false
		for _, g := range c.gates {
			v := g.eval(c.vals)
			if c.vals[g.out] != v {
				c.vals[g.out] = v
				changed = true
			}
		}
		if !changed {
			return nil
		}
	}
	return ErrUnstable
}

// Eval sets the named inputs, settles, and reads the named outputs — the
// one-shot "poke and probe" workflow of the circuits homework.
func (c *Circuit) Eval(inputs map[string]bool, outputs ...string) (map[string]bool, error) {
	res := make(map[string]bool, len(outputs))
	if err := c.EvalInto(res, inputs, outputs...); err != nil {
		return nil, err
	}
	return res, nil
}

// EvalInto is Eval writing its results into dst instead of allocating a map
// per call; with a reused dst it performs no allocations in steady state.
func (c *Circuit) EvalInto(dst map[string]bool, inputs map[string]bool, outputs ...string) error {
	for name, v := range inputs {
		if err := c.SetByName(name, v); err != nil {
			return err
		}
	}
	if err := c.Settle(); err != nil {
		return err
	}
	for _, name := range outputs {
		v, err := c.GetByName(name)
		if err != nil {
			return err
		}
		dst[name] = v
	}
	return nil
}

// TruthTable enumerates all assignments of the given input nets (first input
// is the most significant column, matching how tables are written on the
// homework) and records the value of each output net after settling.
// It restores nothing: the circuit is left at the final row's state.
type TruthTable struct {
	Inputs  []string
	Outputs []string
	Rows    []TruthRow
}

// TruthRow is one line of a truth table.
type TruthRow struct {
	In  []bool
	Out []bool
}

// BuildTruthTable produces the truth table of a combinational circuit over
// the named inputs and outputs. Sequential circuits return ErrUnstable only
// if they oscillate; latches simply show their settled state.
func (c *Circuit) BuildTruthTable(inputs, outputs []string) (*TruthTable, error) {
	if len(inputs) > 16 {
		return nil, fmt.Errorf("circuit: truth table over %d inputs is too large", len(inputs))
	}
	tt := &TruthTable{Inputs: inputs, Outputs: outputs}
	n := len(inputs)
	assign := make(map[string]bool, n)
	outMap := make(map[string]bool, len(outputs))
	for row := 0; row < 1<<uint(n); row++ {
		inVals := make([]bool, n)
		for i, name := range inputs {
			// Leftmost input is the high-order bit of the row index.
			bit := row&(1<<uint(n-1-i)) != 0
			assign[name] = bit
			inVals[i] = bit
		}
		if err := c.EvalInto(outMap, assign, outputs...); err != nil {
			return nil, err
		}
		outVals := make([]bool, len(outputs))
		for i, name := range outputs {
			outVals[i] = outMap[name]
		}
		tt.Rows = append(tt.Rows, TruthRow{In: inVals, Out: outVals})
	}
	return tt, nil
}

// String renders the table in the homework's column format.
func (tt *TruthTable) String() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(tt.Inputs, " "))
	sb.WriteString(" | ")
	sb.WriteString(strings.Join(tt.Outputs, " "))
	sb.WriteByte('\n')
	for _, r := range tt.Rows {
		for i, v := range r.In {
			if i > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(pad(bitChar(v), len(tt.Inputs[i])))
		}
		sb.WriteString(" | ")
		for i, v := range r.Out {
			if i > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(pad(bitChar(v), len(tt.Outputs[i])))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func bitChar(v bool) string {
	if v {
		return "1"
	}
	return "0"
}

func pad(s string, w int) string {
	for len(s) < w {
		s += " "
	}
	return s
}

// InputNames returns the sorted names of all named externally-driven nets.
func (c *Circuit) InputNames() []string {
	var out []string
	for name, id := range c.names {
		if c.inputs[id] && !c.driven[id] {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
