package circuit

import (
	"testing"
	"testing/quick"
)

func TestFullAdderTable(t *testing.T) {
	c := New()
	a := c.Input("a")
	b := c.Input("b")
	cin := c.Input("cin")
	sum, cout := FullAdder(c, a, b, cin)
	for v := 0; v < 8; v++ {
		c.Set(a, v&4 != 0)
		c.Set(b, v&2 != 0)
		c.Set(cin, v&1 != 0)
		if err := c.Settle(); err != nil {
			t.Fatal(err)
		}
		ones := v&4>>2 + v&2>>1 + v&1
		if c.Get(sum) != (ones%2 == 1) || c.Get(cout) != (ones >= 2) {
			t.Errorf("inputs %03b: sum=%v cout=%v", v, c.Get(sum), c.Get(cout))
		}
	}
}

// Property: the gate-level ripple-carry adder matches native addition at
// width 16, including carry out.
func TestRippleCarryAdderProperty(t *testing.T) {
	c := New()
	a := c.Inputs("a", 16)
	b := c.Inputs("b", 16)
	cin := c.Input("cin")
	sum, cout, _ := RippleCarryAdder(c, a, b, cin)
	f := func(x, y uint16, carry bool) bool {
		c.SetBus(a, uint64(x))
		c.SetBus(b, uint64(y))
		c.Set(cin, carry)
		if err := c.Settle(); err != nil {
			return false
		}
		wide := uint64(x) + uint64(y)
		if carry {
			wide++
		}
		return c.GetBus(sum) == wide&0xffff && c.Get(cout) == (wide > 0xffff)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRippleCarryAdderPanics(t *testing.T) {
	c := New()
	mustPanic(t, "width mismatch", func() {
		RippleCarryAdder(c, c.Inputs("a", 2), c.Inputs("b", 3), c.Input("cin"))
	})
	mustPanic(t, "empty", func() {
		RippleCarryAdder(c, nil, nil, c.Input("c2"))
	})
}

func TestSignExtender(t *testing.T) {
	c := New()
	in := c.Inputs("in", 4)
	out := SignExtender(c, in, 8)
	cases := []struct{ in, want uint64 }{
		{0x7, 0x07}, {0x8, 0xf8}, {0xf, 0xff}, {0x0, 0x00},
	}
	for _, tc := range cases {
		c.SetBus(in, tc.in)
		if err := c.Settle(); err != nil {
			t.Fatal(err)
		}
		if got := c.GetBus(out); got != tc.want {
			t.Errorf("SignExtend(%#x) = %#x, want %#x", tc.in, got, tc.want)
		}
	}
	mustPanic(t, "narrowing", func() { SignExtender(c, in, 2) })
	mustPanic(t, "empty", func() { SignExtender(c, nil, 4) })
}

func TestMux2AndMuxN(t *testing.T) {
	c := New()
	sel := c.Inputs("s", 2)
	ins := c.Inputs("i", 4)
	out := MuxN(c, sel, ins)
	c.SetBus(ins, 0b0110) // i1 and i2 high
	for s := uint64(0); s < 4; s++ {
		c.SetBus(sel, s)
		if err := c.Settle(); err != nil {
			t.Fatal(err)
		}
		want := 0b0110&(1<<s) != 0
		if c.Get(out) != want {
			t.Errorf("sel=%d: got %v want %v", s, c.Get(out), want)
		}
	}
	mustPanic(t, "input count", func() { MuxN(c, sel, ins[:3]) })
}

func TestMuxBusN(t *testing.T) {
	c := New()
	sel := c.Inputs("s", 1)
	a := c.Inputs("a", 4)
	b := c.Inputs("b", 4)
	out := MuxBusN(c, sel, a, b)
	c.SetBus(a, 0x3)
	c.SetBus(b, 0xc)
	c.SetBus(sel, 0)
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	if got := c.GetBus(out); got != 0x3 {
		t.Errorf("sel=0: %#x", got)
	}
	c.SetBus(sel, 1)
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	if got := c.GetBus(out); got != 0xc {
		t.Errorf("sel=1: %#x", got)
	}
	mustPanic(t, "no buses", func() { MuxBusN(c, sel) })
	mustPanic(t, "width mismatch", func() { MuxBusN(c, sel, a, b[:2]) })
}

func TestDecoder(t *testing.T) {
	c := New()
	sel := c.Inputs("s", 3)
	outs := Decoder(c, sel)
	if len(outs) != 8 {
		t.Fatalf("decoder outputs = %d", len(outs))
	}
	for v := uint64(0); v < 8; v++ {
		c.SetBus(sel, v)
		if err := c.Settle(); err != nil {
			t.Fatal(err)
		}
		for i, o := range outs {
			want := uint64(i) == v
			if c.Get(o) != want {
				t.Errorf("sel=%d out[%d]=%v", v, i, c.Get(o))
			}
		}
	}
}

func TestDecoder1Bit(t *testing.T) {
	c := New()
	sel := c.Inputs("s", 1)
	outs := Decoder(c, sel)
	c.SetBus(sel, 1)
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	if c.Get(outs[0]) || !c.Get(outs[1]) {
		t.Error("1-bit decoder wrong")
	}
}

func TestEqualComparatorAndIsZero(t *testing.T) {
	c := New()
	a := c.Inputs("a", 8)
	b := c.Inputs("b", 8)
	eq := EqualComparator(c, a, b)
	z := IsZero(c, a)
	cases := []struct {
		x, y       uint64
		equal, zer bool
	}{
		{5, 5, true, false}, {5, 6, false, false}, {0, 0, true, true}, {0, 1, false, true},
	}
	for _, tc := range cases {
		c.SetBus(a, tc.x)
		c.SetBus(b, tc.y)
		if err := c.Settle(); err != nil {
			t.Fatal(err)
		}
		if c.Get(eq) != tc.equal || c.Get(z) != tc.zer {
			t.Errorf("a=%d b=%d: eq=%v zero=%v", tc.x, tc.y, c.Get(eq), c.Get(z))
		}
	}
	mustPanic(t, "cmp width", func() { EqualComparator(c, a, b[:3]) })
	mustPanic(t, "cmp empty", func() { EqualComparator(c, nil, nil) })
	mustPanic(t, "zero empty", func() { IsZero(c, nil) })
}

func TestShifters(t *testing.T) {
	c := New()
	in := c.Inputs("in", 8)
	shl, shlOut := ShiftLeft1(c, in)
	shr, shrOut := ShiftRight1(c, in)
	c.SetBus(in, 0x81)
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	if got := c.GetBus(shl); got != 0x02 {
		t.Errorf("0x81 << 1 = %#x", got)
	}
	if !c.Get(shlOut) {
		t.Error("shl should shift out the top bit")
	}
	if got := c.GetBus(shr); got != 0x40 {
		t.Errorf("0x81 >> 1 = %#x", got)
	}
	if !c.Get(shrOut) {
		t.Error("shr should shift out bit 0")
	}
}

func TestBitwiseHelpers(t *testing.T) {
	c := New()
	a := c.Inputs("a", 4)
	b := c.Inputs("b", 4)
	andB := BitwiseGate(c, AND, a, b)
	notB := BitwiseNot(c, a)
	c.SetBus(a, 0xc)
	c.SetBus(b, 0xa)
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	if got := c.GetBus(andB); got != 0x8 {
		t.Errorf("0xc AND 0xa = %#x", got)
	}
	if got := c.GetBus(notB); got != 0x3 {
		t.Errorf("NOT 0xc = %#x", got)
	}
	mustPanic(t, "bitwise width", func() { BitwiseGate(c, AND, a, b[:1]) })
}
