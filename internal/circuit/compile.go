package circuit

import "math/bits"

// The execution-plan compiler. A finished netlist is turned into a plan
// once, then every Settle runs on the plan instead of sweeping the whole
// gate list to a fixed point:
//
//   - Nets are classified (externally driven vs. gate-driven) and a per-net
//     fanout list maps each net to the gates that consume it.
//   - The acyclic region is levelized with Kahn's algorithm over the gate
//     graph, so one visit per gate in level order is guaranteed to settle
//     it — no verification pass, no re-evaluation.
//   - Feedback loops (the latches) are confined to a bounded fixed-point
//     island evaluated in insertion order, preserving the reference
//     sweep's last-written-wins latch resolution bit for bit. The island
//     sits between the prefix (gates it depends on) and the suffix (gates
//     that depend on it), each levelized independently.
//   - Settling is event-driven: Set records which input nets changed, and
//     only gates in the affected cone are re-evaluated. The pending set is
//     a position-indexed bitset scanned word by word, so a settle's cost is
//     proportional to the active cone, not the netlist.
//
// The plan is invalidated by any netlist mutation (NewNet, Gate, GateInto)
// and rebuilt lazily on the next Settle.

// Normalized gate bases: the eight GateKinds collapse to four base
// operations plus an output inversion, which keeps the hot evaluation
// switch small for both the scalar and the 64-lane engines.
const (
	baseAnd uint8 = iota
	baseOr
	baseXor
	baseBuf
)

// cgate is one compiled gate: its first two input nets inline (the common
// case — b duplicates a for single-input gates), any further inputs in the
// plan's extra pool, and the normalized operation.
type cgate struct {
	a, b int32
	out  int32
	xOff int32 // extras start: plan.extra[xOff : xOff+xN]
	xN   int32
	base uint8
	inv  bool
}

// plan is the compiled execution schedule for one netlist snapshot.
type plan struct {
	gates   []cgate  // evaluation order: levelized prefix, island, levelized suffix
	extra   []int32  // input nets beyond the first two, pooled
	fanIdx  []int32  // net -> offset into fanout (len = nets+1)
	fanout  []int32  // consumer gate positions, grouped by net
	pending []uint64 // bitset over gate positions awaiting evaluation

	islandLo, islandHi int // position range of the feedback island
	levels             int // levels in the acyclic region (diagnostics)
}

// eval computes the gate's output from scalar net values.
func (g *cgate) eval(vals []bool, extra []int32) bool {
	var v bool
	switch g.base {
	case baseAnd:
		v = vals[g.a] && vals[g.b]
		for _, x := range extra[g.xOff : g.xOff+g.xN] {
			if !v {
				break
			}
			v = vals[x]
		}
	case baseOr:
		v = vals[g.a] || vals[g.b]
		for _, x := range extra[g.xOff : g.xOff+g.xN] {
			if v {
				break
			}
			v = vals[x]
		}
	case baseXor:
		v = vals[g.a] != vals[g.b]
		for _, x := range extra[g.xOff : g.xOff+g.xN] {
			v = v != vals[x]
		}
	default: // baseBuf
		v = vals[g.a]
	}
	if g.inv {
		return !v
	}
	return v
}

// evalMask computes the gate's output on 64 lanes at once: bit l of every
// mask is stimulus lane l, so one visit evaluates 64 input vectors.
func (g *cgate) evalMask(vals []uint64, extra []int32) uint64 {
	var v uint64
	switch g.base {
	case baseAnd:
		v = vals[g.a] & vals[g.b]
		for _, x := range extra[g.xOff : g.xOff+g.xN] {
			v &= vals[x]
		}
	case baseOr:
		v = vals[g.a] | vals[g.b]
		for _, x := range extra[g.xOff : g.xOff+g.xN] {
			v |= vals[x]
		}
	case baseXor:
		v = vals[g.a] ^ vals[g.b]
		for _, x := range extra[g.xOff : g.xOff+g.xN] {
			v ^= vals[x]
		}
	default: // baseBuf
		v = vals[g.a]
	}
	if g.inv {
		return ^v
	}
	return v
}

// normalize collapses a GateKind onto a base operation plus inversion.
// Single-input gates become buffers (1-input AND/OR/XOR all pass through).
func normalize(kind GateKind, n int) (base uint8, inv bool) {
	if n == 1 {
		switch kind {
		case NOT, NAND, NOR, XNOR:
			return baseBuf, true
		default:
			return baseBuf, false
		}
	}
	switch kind {
	case AND:
		return baseAnd, false
	case NAND:
		return baseAnd, true
	case OR:
		return baseOr, false
	case NOR:
		return baseOr, true
	case XOR:
		return baseXor, false
	case XNOR:
		return baseXor, true
	case NOT:
		return baseBuf, true
	case BUF:
		return baseBuf, false
	default:
		panic("circuit: unknown gate kind")
	}
}

// Compile builds the execution plan now instead of on the next Settle; the
// cpu datapath and machine use it to front-load the one-time cost.
func (c *Circuit) Compile() {
	if c.plan == nil {
		c.compile()
	}
}

// PlanStats reports the compiled plan's shape: the number of levels in the
// acyclic region and the number of gates confined to the feedback island.
// compiled is false when no plan is current (before the first Settle or
// after a mutation).
func (c *Circuit) PlanStats() (levels, islandGates int, compiled bool) {
	if c.plan == nil {
		return 0, 0, false
	}
	return c.plan.levels, c.plan.islandHi - c.plan.islandLo, true
}

// compile levelizes the netlist and installs a fresh plan with every gate
// pending, so the first settle evaluates the whole circuit once.
func (c *Circuit) compile() *plan {
	n := len(c.gates)
	nets := len(c.vals)

	// Per-net driver, and the gate graph (producer -> consumer edges,
	// duplicates kept so degree counts stay consistent).
	driver := make([]int32, nets)
	for i := range driver {
		driver[i] = -1
	}
	for gi, g := range c.gates {
		driver[g.out] = int32(gi)
	}
	indeg := make([]int32, n)
	consCnt := make([]int32, n)
	for _, g := range c.gates {
		for _, in := range g.in {
			if d := driver[in]; d >= 0 {
				consCnt[d]++
			}
		}
	}
	consIdx := make([]int32, n+1)
	for i := 0; i < n; i++ {
		consIdx[i+1] = consIdx[i] + consCnt[i]
	}
	cons := make([]int32, consIdx[n])
	fill := make([]int32, n)
	copy(fill, consIdx[:n])
	for gi, g := range c.gates {
		for _, in := range g.in {
			if d := driver[in]; d >= 0 {
				cons[fill[d]] = int32(gi)
				fill[d]++
				indeg[gi]++
			}
		}
	}

	// Kahn's algorithm peels the acyclic prefix — every gate that does not
	// depend on a feedback loop — and assigns it levels.
	level := make([]int32, n)
	deg := make([]int32, n)
	copy(deg, indeg)
	prefix := make([]int32, 0, n)
	for gi := 0; gi < n; gi++ {
		if deg[gi] == 0 {
			prefix = append(prefix, int32(gi))
		}
	}
	inPrefix := make([]bool, n)
	maxLevel := int32(-1)
	for head := 0; head < len(prefix); head++ {
		gi := prefix[head]
		inPrefix[gi] = true
		if level[gi] > maxLevel {
			maxLevel = level[gi]
		}
		for _, q := range cons[consIdx[gi]:consIdx[gi+1]] {
			if lv := level[gi] + 1; lv > level[q] {
				level[q] = lv
			}
			deg[q]--
			if deg[q] == 0 {
				prefix = append(prefix, q)
			}
		}
	}

	// Reverse peel on the remainder separates the suffix — gates downstream
	// of feedback but not inside it — from the island core.
	inSuffix := make([]bool, n)
	var suffix []int32
	if len(prefix) < n {
		outdeg := make([]int32, n)
		for gi := 0; gi < n; gi++ {
			if inPrefix[gi] {
				continue
			}
			for _, q := range cons[consIdx[gi]:consIdx[gi+1]] {
				if !inPrefix[q] {
					outdeg[gi]++
				}
			}
		}
		for gi := 0; gi < n; gi++ {
			if !inPrefix[gi] && outdeg[gi] == 0 {
				suffix = append(suffix, int32(gi))
			}
		}
		for head := 0; head < len(suffix); head++ {
			gi := suffix[head]
			inSuffix[gi] = true
			for _, in := range c.gates[gi].in {
				if d := driver[in]; d >= 0 && !inPrefix[d] {
					outdeg[d]--
					if outdeg[d] == 0 {
						suffix = append(suffix, d)
					}
				}
			}
		}
		// Levelize the suffix over its internal dependencies only (island
		// and prefix producers are settled by the time it runs).
		sdeg := make([]int32, n)
		for gi := 0; gi < n; gi++ {
			if !inSuffix[gi] {
				continue
			}
			level[gi] = 0
			for _, in := range c.gates[gi].in {
				if d := driver[in]; d >= 0 && inSuffix[d] {
					sdeg[gi]++
				}
			}
		}
		order := suffix[:0]
		for gi := 0; gi < n; gi++ {
			if inSuffix[gi] && sdeg[gi] == 0 {
				order = append(order, int32(gi))
			}
		}
		for head := 0; head < len(order); head++ {
			gi := order[head]
			for _, q := range cons[consIdx[gi]:consIdx[gi+1]] {
				if !inSuffix[q] {
					continue
				}
				if lv := level[gi] + 1; lv > level[q] {
					level[q] = lv
				}
				sdeg[q]--
				if sdeg[q] == 0 {
					order = append(order, q)
				}
			}
		}
		suffix = order
	}

	// Assemble the evaluation order: prefix by (level, insertion index),
	// island core in insertion order (last-written-wins, as the reference
	// sweeps it), suffix by (level, insertion index). Counting sort keeps
	// insertion order stable within a level.
	p := &plan{levels: int(maxLevel + 1)}
	orderOf := make([]int32, n)
	ordered := make([]int32, 0, n)
	sortByLevel := func(member func(gi int) bool) {
		lo := len(ordered)
		for gi := 0; gi < n; gi++ {
			if member(gi) {
				ordered = append(ordered, int32(gi))
			}
		}
		seg := ordered[lo:]
		// Stable counting sort by level (members were appended in
		// insertion order).
		if len(seg) > 1 {
			maxLv := int32(0)
			for _, gi := range seg {
				if level[gi] > maxLv {
					maxLv = level[gi]
				}
			}
			cnt := make([]int32, maxLv+1)
			for _, gi := range seg {
				cnt[level[gi]]++
			}
			off := make([]int32, maxLv+1)
			for i := int32(1); i <= maxLv; i++ {
				off[i] = off[i-1] + cnt[i-1]
			}
			tmp := make([]int32, len(seg))
			for _, gi := range seg {
				tmp[off[level[gi]]] = gi
				off[level[gi]]++
			}
			copy(seg, tmp)
		}
	}
	sortByLevel(func(gi int) bool { return inPrefix[gi] })
	p.islandLo = len(ordered)
	for gi := 0; gi < n; gi++ {
		if !inPrefix[gi] && !inSuffix[gi] {
			ordered = append(ordered, int32(gi))
		}
	}
	p.islandHi = len(ordered)
	sortByLevel(func(gi int) bool { return inSuffix[gi] })
	for i, gi := range ordered {
		orderOf[gi] = int32(i)
	}

	// Compile gates in evaluation order and build per-net fanout position
	// lists for event-driven marking.
	p.gates = make([]cgate, n)
	for i, gi := range ordered {
		g := &c.gates[gi]
		base, inv := normalize(g.kind, len(g.in))
		cg := cgate{out: int32(g.out), base: base, inv: inv}
		cg.a = int32(g.in[0])
		if len(g.in) >= 2 {
			cg.b = int32(g.in[1])
		} else {
			cg.b = cg.a
		}
		if len(g.in) > 2 {
			cg.xOff = int32(len(p.extra))
			cg.xN = int32(len(g.in) - 2)
			for _, in := range g.in[2:] {
				p.extra = append(p.extra, int32(in))
			}
		}
		p.gates[i] = cg
	}
	fanCnt := make([]int32, nets)
	countInput := func(in NetID) { fanCnt[in]++ }
	for _, g := range c.gates {
		for _, in := range g.in {
			countInput(in)
		}
	}
	p.fanIdx = make([]int32, nets+1)
	for i := 0; i < nets; i++ {
		p.fanIdx[i+1] = p.fanIdx[i] + fanCnt[i]
	}
	p.fanout = make([]int32, p.fanIdx[nets])
	fill2 := make([]int32, nets)
	copy(fill2, p.fanIdx[:nets])
	for gi, g := range c.gates {
		for _, in := range g.in {
			p.fanout[fill2[in]] = orderOf[gi]
			fill2[in]++
		}
	}
	p.pending = make([]uint64, (n+63)/64)
	p.markAll()

	c.plan = p
	c.dirty = c.dirty[:0]
	c.allDirty = false
	return p
}

// markAll flags every gate pending, for the first settle after compile and
// after a RefSettle bypassed change tracking.
func (p *plan) markAll() {
	n := len(p.gates)
	for i := range p.pending {
		p.pending[i] = ^uint64(0)
	}
	if tail := uint(n) & 63; tail != 0 && len(p.pending) > 0 {
		p.pending[len(p.pending)-1] = ^uint64(0) >> (64 - tail)
	}
}

// markNet flags every consumer of a changed net pending.
func (p *plan) markNet(id NetID) {
	for _, q := range p.fanout[p.fanIdx[id]:p.fanIdx[id+1]] {
		p.pending[q>>6] |= 1 << (uint(q) & 63)
	}
}

// anyPending reports whether any gate position in [lo, hi) is pending.
func (p *plan) anyPending(lo, hi int) bool {
	if lo >= hi {
		return false
	}
	wLo, wHi := lo>>6, (hi-1)>>6
	loMask := ^uint64(0) << (uint(lo) & 63)
	hiMask := ^uint64(0) >> (63 - uint(hi-1)&63)
	for w := wLo; w <= wHi; w++ {
		m := ^uint64(0)
		if w == wLo {
			m &= loMask
		}
		if w == wHi {
			m &= hiMask
		}
		if p.pending[w]&m != 0 {
			return true
		}
	}
	return false
}

// settle runs the plan to a fixed point over the scalar values: prefix
// once, island to a bounded fixed point, suffix once. Only pending gates
// are evaluated.
func (p *plan) settle(vals []bool) error {
	p.run(vals, 0, p.islandLo)
	if p.islandHi > p.islandLo {
		limit := len(vals) + 2
		if limit > maxSettleIterations {
			limit = maxSettleIterations
		}
		sweeps := 0
		for p.anyPending(p.islandLo, p.islandHi) {
			if sweeps >= limit {
				return ErrUnstable
			}
			sweeps++
			p.run(vals, p.islandLo, p.islandHi)
		}
	}
	p.run(vals, p.islandHi, len(p.gates))
	return nil
}

// run performs one strict forward sweep over pending gates in [lo, hi):
// gates are evaluated in ascending position order, and a gate marked
// pending at or before the current position is left for the next sweep —
// exactly the reference sweep's per-pass discipline, which is what makes
// island (latch) resolution order-identical to RefSettle.
func (p *plan) run(vals []bool, lo, hi int) {
	if lo >= hi {
		return
	}
	wLo, wHi := lo>>6, (hi-1)>>6
	loMask := ^uint64(0) << (uint(lo) & 63)
	hiMask := ^uint64(0) >> (63 - uint(hi-1)&63)
	for w := wLo; w <= wHi; w++ {
		rangeMask := ^uint64(0)
		if w == wLo {
			rangeMask &= loMask
		}
		if w == wHi {
			rangeMask &= hiMask
		}
		var passed uint64
		for {
			bitsW := p.pending[w] & rangeMask &^ passed
			if bitsW == 0 {
				break
			}
			bit := uint(bits.TrailingZeros64(bitsW))
			p.pending[w] &^= 1 << bit
			// Everything at or below this position is behind the sweep
			// front now; re-marks there wait for the next sweep.
			passed |= uint64(2)<<bit - 1
			g := &p.gates[w<<6|int(bit)]
			v := g.eval(vals, p.extra)
			if vals[g.out] != v {
				vals[g.out] = v
				for _, q := range p.fanout[p.fanIdx[g.out]:p.fanIdx[g.out+1]] {
					p.pending[q>>6] |= 1 << (uint(q) & 63)
				}
			}
		}
	}
}
