package circuit

import (
	"strings"
	"testing"
)

func TestPrimitiveGates(t *testing.T) {
	cases := []struct {
		kind GateKind
		a, b bool
		want bool
	}{
		{AND, true, true, true}, {AND, true, false, false},
		{OR, false, false, false}, {OR, true, false, true},
		{NAND, true, true, false}, {NAND, false, true, true},
		{NOR, false, false, true}, {NOR, true, false, false},
		{XOR, true, false, true}, {XOR, true, true, false},
		{XNOR, true, true, true}, {XNOR, true, false, false},
	}
	for _, tc := range cases {
		c := New()
		a := c.Input("a")
		b := c.Input("b")
		out := c.Gate(tc.kind, a, b)
		c.Set(a, tc.a)
		c.Set(b, tc.b)
		if err := c.Settle(); err != nil {
			t.Fatal(err)
		}
		if got := c.Get(out); got != tc.want {
			t.Errorf("%v(%v, %v) = %v, want %v", tc.kind, tc.a, tc.b, got, tc.want)
		}
	}
}

func TestNotAndBuf(t *testing.T) {
	c := New()
	a := c.Input("a")
	n := c.Gate(NOT, a)
	buf := c.Gate(BUF, a)
	for _, v := range []bool{false, true} {
		c.Set(a, v)
		if err := c.Settle(); err != nil {
			t.Fatal(err)
		}
		if c.Get(n) != !v || c.Get(buf) != v {
			t.Errorf("v=%v: NOT=%v BUF=%v", v, c.Get(n), c.Get(buf))
		}
	}
}

func TestMultiInputGates(t *testing.T) {
	c := New()
	ins := c.Inputs("x", 3)
	and3 := c.Gate(AND, ins...)
	or3 := c.Gate(OR, ins...)
	xor3 := c.Gate(XOR, ins...)
	for v := uint64(0); v < 8; v++ {
		c.SetBus(ins, v)
		if err := c.Settle(); err != nil {
			t.Fatal(err)
		}
		wantAnd := v == 7
		wantOr := v != 0
		wantXor := (v&1)^(v>>1&1)^(v>>2&1) == 1
		if c.Get(and3) != wantAnd || c.Get(or3) != wantOr || c.Get(xor3) != wantXor {
			t.Errorf("v=%03b: and=%v or=%v xor=%v", v, c.Get(and3), c.Get(or3), c.Get(xor3))
		}
	}
}

func TestGatePanics(t *testing.T) {
	c := New()
	a := c.Input("a")
	mustPanic(t, "NOT with 2 inputs", func() { c.Gate(NOT, a, a) })
	mustPanic(t, "AND with 1 input", func() { c.Gate(AND, a) })
	out := c.Gate(BUF, a)
	mustPanic(t, "double driver", func() { c.GateInto(out, BUF, a) })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestSetGateDrivenNet(t *testing.T) {
	c := New()
	a := c.Input("a")
	out := c.Gate(NOT, a)
	if err := c.Set(out, true); err == nil {
		t.Error("setting gate-driven net should fail")
	}
	if err := c.SetByName("missing", true); err == nil {
		t.Error("setting unknown name should fail")
	}
	if _, err := c.GetByName("missing"); err == nil {
		t.Error("getting unknown name should fail")
	}
}

func TestOscillationDetected(t *testing.T) {
	c := New()
	loop := c.NewNet()
	c.GateInto(loop, NOT, loop) // inverter feeding itself
	if err := c.Settle(); err == nil {
		t.Error("self-inverting loop should not settle")
	}
}

func TestConstant(t *testing.T) {
	c := New()
	one := c.Constant(true)
	zero := c.Constant(false)
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	if !c.Get(one) || c.Get(zero) {
		t.Error("constants lost their values after Settle")
	}
}

func TestEvalAndNames(t *testing.T) {
	c := New()
	a := c.Input("a")
	b := c.Input("b")
	c.Name("y", c.Gate(AND, a, b))
	got, err := c.Eval(map[string]bool{"a": true, "b": true}, "y")
	if err != nil {
		t.Fatal(err)
	}
	if !got["y"] {
		t.Error("a AND b with both true should be true")
	}
	if _, err := c.Eval(map[string]bool{"nope": true}); err == nil {
		t.Error("unknown input name should error")
	}
	if _, err := c.Eval(nil, "nope"); err == nil {
		t.Error("unknown output name should error")
	}
	names := c.InputNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("InputNames = %v", names)
	}
}

func TestBuildTruthTableXor(t *testing.T) {
	c := New()
	a := c.Input("a")
	b := c.Input("b")
	c.Name("y", c.Gate(XOR, a, b))
	tt, err := c.BuildTruthTable([]string{"a", "b"}, []string{"y"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tt.Rows) != 4 {
		t.Fatalf("expected 4 rows, got %d", len(tt.Rows))
	}
	want := []bool{false, true, true, false}
	for i, row := range tt.Rows {
		if row.Out[0] != want[i] {
			t.Errorf("row %d: out=%v want %v", i, row.Out[0], want[i])
		}
	}
	s := tt.String()
	if !strings.HasPrefix(s, "a b | y") {
		t.Errorf("table header: %q", s)
	}
}

func TestBuildTruthTableTooWide(t *testing.T) {
	c := New()
	names := make([]string, 17)
	for i := range names {
		names[i] = string(rune('a' + i))
		c.Input(names[i])
	}
	if _, err := c.BuildTruthTable(names, nil); err == nil {
		t.Error("17-input table should be rejected")
	}
}

func TestBusHelpers(t *testing.T) {
	c := New()
	bus := c.Inputs("d", 8)
	if err := c.SetBus(bus, 0xa5); err != nil {
		t.Fatal(err)
	}
	if got := c.GetBus(bus); got != 0xa5 {
		t.Errorf("GetBus = %#x", got)
	}
	if c.NumNets() != 8 || c.NumGates() != 0 {
		t.Errorf("nets=%d gates=%d", c.NumNets(), c.NumGates())
	}
}
