package circuit

// Sequential storage elements built the way the course presents them:
// an R-S latch from cross-coupled NOR gates, a gated D latch from the R-S
// latch plus steering logic, and multi-bit registers from D latches.

// RSLatch wires a cross-coupled NOR R-S latch and returns the Q and notQ
// nets. Driving R resets Q to 0; driving S sets Q to 1; R=S=1 is the
// forbidden input (both outputs 0); R=S=0 holds state.
func RSLatch(c *Circuit, r, s NetID) (q, notQ NetID) {
	q = c.NewNet()
	notQ = c.NewNet()
	c.GateInto(q, NOR, r, notQ)
	c.GateInto(notQ, NOR, s, q)
	return q, notQ
}

// DLatch wires a gated D latch: when enable (the clock gate) is high, Q
// follows D; when enable is low, Q holds. Built from an R-S latch with
// steering ANDs, exactly as drawn in the textbook.
func DLatch(c *Circuit, d, enable NetID) (q, notQ NetID) {
	nd := c.Gate(NOT, d)
	s := c.Gate(AND, d, enable)
	r := c.Gate(AND, nd, enable)
	return RSLatch(c, r, s)
}

// Register wires an n-bit register from gated D latches sharing one write
// enable, returning the Q bus (bit 0 first).
func Register(c *Circuit, d []NetID, writeEnable NetID) []NetID {
	q := make([]NetID, len(d))
	for i := range d {
		q[i], _ = DLatch(c, d[i], writeEnable)
	}
	return q
}

// RegisterFile wires 2^selBits registers of the given width with one write
// port and one read port, from a decoder, per-register D latches, and an
// output mux — the datapath core of the lab CPU.
type RegisterFile struct {
	WriteSel    []NetID // write register select, LSB first
	WriteData   []NetID // data to write
	WriteEnable NetID   // global write enable
	ReadSel     []NetID // read register select, LSB first
	ReadData    []NetID // selected register contents

	registers [][]NetID // Q buses, indexed by register number
}

// NewRegisterFile builds a register file with 2^selBits registers of width
// bits each. All control nets are fresh input pins owned by the caller.
func NewRegisterFile(c *Circuit, selBits, width int) *RegisterFile {
	rf := &RegisterFile{
		WriteSel:    make([]NetID, selBits),
		WriteData:   make([]NetID, width),
		ReadSel:     make([]NetID, selBits),
		WriteEnable: c.Input(""),
	}
	for i := range rf.WriteSel {
		rf.WriteSel[i] = c.Input("")
	}
	for i := range rf.ReadSel {
		rf.ReadSel[i] = c.Input("")
	}
	for i := range rf.WriteData {
		rf.WriteData[i] = c.Input("")
	}
	oneHot := Decoder(c, rf.WriteSel)
	n := 1 << uint(selBits)
	rf.registers = make([][]NetID, n)
	for r := 0; r < n; r++ {
		we := c.Gate(AND, rf.WriteEnable, oneHot[r])
		rf.registers[r] = Register(c, rf.WriteData, we)
	}
	rf.ReadData = MuxBusN(c, rf.ReadSel, rf.registers...)
	return rf
}

// Write drives the write port and pulses the enable: set, settle, clear,
// settle — the two-phase clocking discipline the lab teaches.
func (rf *RegisterFile) Write(c *Circuit, reg int, value uint64) error {
	for i, id := range rf.WriteSel {
		if err := c.Set(id, reg&(1<<uint(i)) != 0); err != nil {
			return err
		}
	}
	if err := c.SetBus(rf.WriteData, value); err != nil {
		return err
	}
	if err := c.Set(rf.WriteEnable, true); err != nil {
		return err
	}
	if err := c.Settle(); err != nil {
		return err
	}
	if err := c.Set(rf.WriteEnable, false); err != nil {
		return err
	}
	return c.Settle()
}

// Read drives the read select and returns the selected register's value.
func (rf *RegisterFile) Read(c *Circuit, reg int) (uint64, error) {
	for i, id := range rf.ReadSel {
		if err := c.Set(id, reg&(1<<uint(i)) != 0); err != nil {
			return 0, err
		}
	}
	if err := c.Settle(); err != nil {
		return 0, err
	}
	return c.GetBus(rf.ReadData), nil
}
