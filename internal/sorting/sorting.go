// Package sorting implements Lab 2's O(N²) sorting algorithms (the ones
// students bring from CS1) plus a parallel merge sort built on the pthread
// package, used by the speedup benchmarks to contrast algorithmic and
// parallel improvements.
package sorting

import (
	"fmt"
	"sort"

	"cs31/internal/pthread"
)

// ThreadCountError reports a non-positive thread count passed to
// ParallelMerge. Surplus threads are clamped, not rejected, so this is
// the only thread-count condition callers can hit.
type ThreadCountError struct {
	Threads int
}

func (e *ThreadCountError) Error() string {
	return fmt.Sprintf("sorting: thread count %d is not positive", e.Threads)
}

// Bubble sorts in place with adjacent swaps, O(N²) with early exit.
func Bubble(a []int) {
	for n := len(a); n > 1; {
		swapped := 0
		for i := 1; i < n; i++ {
			if a[i-1] > a[i] {
				a[i-1], a[i] = a[i], a[i-1]
				swapped = i
			}
		}
		n = swapped
	}
}

// Insertion sorts in place by insertion, O(N²).
func Insertion(a []int) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// Selection sorts in place by repeated minimum selection, O(N²).
func Selection(a []int) {
	for i := 0; i < len(a)-1; i++ {
		m := i
		for j := i + 1; j < len(a); j++ {
			if a[j] < a[m] {
				m = j
			}
		}
		a[i], a[m] = a[m], a[i]
	}
}

// Merge sorts in place via top-down merge sort with a scratch buffer.
func Merge(a []int) {
	scratch := make([]int, len(a))
	mergeSort(a, scratch)
}

func mergeSort(a, scratch []int) {
	if len(a) < 32 {
		Insertion(a)
		return
	}
	mid := len(a) / 2
	mergeSort(a[:mid], scratch[:mid])
	mergeSort(a[mid:], scratch[mid:])
	merge(a, mid, scratch)
}

func merge(a []int, mid int, scratch []int) {
	copy(scratch, a)
	i, j := 0, mid
	for k := 0; k < len(a); k++ {
		switch {
		case i >= mid:
			a[k] = scratch[j]
			j++
		case j >= len(a):
			a[k] = scratch[i]
			i++
		case scratch[i] <= scratch[j]:
			a[k] = scratch[i]
			i++
		default:
			a[k] = scratch[j]
			j++
		}
	}
}

// ParallelMerge sorts using threads worker threads: the slice is block-
// partitioned, each block sorted in its own thread, then blocks are merged
// pairwise in parallel rounds — a straightforward data-parallel
// decomposition in the style of the course's Game of Life lab.
//
// threads <= 0 returns a *ThreadCountError; threads beyond len(a) is
// clamped (same surplus-clamp discipline as pthread.ParallelRunner),
// since a block partition can give at most one element per thread.
func ParallelMerge(a []int, threads int) error {
	if threads <= 0 {
		return &ThreadCountError{Threads: threads}
	}
	if threads > len(a) {
		threads = len(a)
	}
	if threads <= 1 || len(a) < 2*threads {
		Merge(a)
		return nil
	}
	// Sort each block concurrently.
	type span struct{ lo, hi int }
	spans := make([]span, 0, threads)
	ts := make([]*pthread.Thread, 0, threads)
	for id := 0; id < threads; id++ {
		lo, hi := pthread.BlockRange(id, threads, len(a))
		if lo == hi {
			continue
		}
		spans = append(spans, span{lo, hi})
		block := a[lo:hi]
		ts = append(ts, pthread.Create(func() interface{} {
			Merge(block)
			return nil
		}))
	}
	for _, t := range ts {
		if _, err := t.Join(); err != nil {
			return err
		}
	}
	// Merge adjacent sorted runs in parallel rounds.
	scratch := make([]int, len(a))
	for len(spans) > 1 {
		next := make([]span, 0, (len(spans)+1)/2)
		round := make([]*pthread.Thread, 0, len(spans)/2)
		for i := 0; i+1 < len(spans); i += 2 {
			left, right := spans[i], spans[i+1]
			merged := span{left.lo, right.hi}
			next = append(next, merged)
			seg := a[merged.lo:merged.hi]
			segScratch := scratch[merged.lo:merged.hi]
			mid := left.hi - left.lo
			round = append(round, pthread.Create(func() interface{} {
				merge(seg, mid, segScratch)
				return nil
			}))
		}
		if len(spans)%2 == 1 {
			next = append(next, spans[len(spans)-1])
		}
		for _, t := range round {
			if _, err := t.Join(); err != nil {
				return err
			}
		}
		spans = next
	}
	return nil
}

// IsSorted reports whether a is in nondecreasing order.
func IsSorted(a []int) bool { return sort.IntsAreSorted(a) }
