package sorting

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

var algorithms = map[string]func([]int){
	"bubble":    Bubble,
	"insertion": Insertion,
	"selection": Selection,
	"merge":     Merge,
}

func TestAlgorithmsOnFixedCases(t *testing.T) {
	cases := [][]int{
		{},
		{1},
		{2, 1},
		{3, 1, 2},
		{5, 4, 3, 2, 1},
		{1, 2, 3, 4, 5},
		{2, 2, 2},
		{7, -3, 0, 7, -3, 12, 5},
	}
	for name, f := range algorithms {
		for _, c := range cases {
			in := append([]int(nil), c...)
			want := append([]int(nil), c...)
			sort.Ints(want)
			f(in)
			if !equal(in, want) {
				t.Errorf("%s(%v) = %v, want %v", name, c, in, want)
			}
		}
	}
}

func equal(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Property: every algorithm matches sort.Ints on random inputs.
func TestAlgorithmsMatchStdlib(t *testing.T) {
	for name, f := range algorithms {
		f := f
		prop := func(in []int) bool {
			if len(in) > 300 {
				in = in[:300]
			}
			got := append([]int(nil), in...)
			want := append([]int(nil), in...)
			f(got)
			sort.Ints(want)
			return equal(got, want)
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestParallelMergeMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, threads := range []int{1, 2, 3, 4, 8} {
		for _, n := range []int{0, 1, 5, 100, 1000, 4096} {
			in := make([]int, n)
			for i := range in {
				in[i] = rng.Intn(10000) - 5000
			}
			want := append([]int(nil), in...)
			sort.Ints(want)
			if err := ParallelMerge(in, threads); err != nil {
				t.Fatalf("threads=%d n=%d: %v", threads, n, err)
			}
			if !equal(in, want) {
				t.Errorf("threads=%d n=%d: not sorted", threads, n)
			}
		}
	}
	if err := ParallelMerge([]int{1}, 0); err == nil {
		t.Error("0 threads should fail")
	}
}

// Regression: non-positive thread counts return the typed error, and
// thread counts beyond len(a) are clamped rather than spawning threads
// with empty block ranges.
func TestParallelMergeThreadBounds(t *testing.T) {
	for _, threads := range []int{0, -1, -100} {
		err := ParallelMerge([]int{3, 1, 2}, threads)
		var tce *ThreadCountError
		if !errors.As(err, &tce) {
			t.Fatalf("threads=%d: err = %v, want *ThreadCountError", threads, err)
		}
		if tce.Threads != threads {
			t.Errorf("threads=%d: error carries %d", threads, tce.Threads)
		}
	}

	// Surplus threads: more threads than elements must clamp and sort.
	for _, tc := range []struct {
		n, threads int
	}{{0, 5}, {1, 8}, {3, 64}, {7, 7}, {10, 1 << 20}} {
		rng := rand.New(rand.NewSource(int64(tc.n)))
		in := make([]int, tc.n)
		for i := range in {
			in[i] = rng.Intn(100)
		}
		want := append([]int(nil), in...)
		sort.Ints(want)
		if err := ParallelMerge(in, tc.threads); err != nil {
			t.Fatalf("n=%d threads=%d: %v", tc.n, tc.threads, err)
		}
		if !equal(in, want) {
			t.Errorf("n=%d threads=%d: not sorted: %v", tc.n, tc.threads, in)
		}
	}
}

// Property: parallel merge sort is a permutation sorter for any thread
// count.
func TestParallelMergeProperty(t *testing.T) {
	f := func(in []int16, tRaw uint8) bool {
		threads := int(tRaw%8) + 1
		a := make([]int, len(in))
		for i, v := range in {
			a[i] = int(v)
		}
		want := append([]int(nil), a...)
		sort.Ints(want)
		if err := ParallelMerge(a, threads); err != nil {
			return false
		}
		return equal(a, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestIsSorted(t *testing.T) {
	if !IsSorted([]int{1, 2, 2, 3}) || IsSorted([]int{2, 1}) {
		t.Error("IsSorted wrong")
	}
}

func benchData(n int) []int {
	rng := rand.New(rand.NewSource(42))
	a := make([]int, n)
	for i := range a {
		a[i] = rng.Int()
	}
	return a
}

func BenchmarkBubble1k(b *testing.B) {
	data := benchData(1000)
	buf := make([]int, len(data))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, data)
		Bubble(buf)
	}
}

func BenchmarkMerge1k(b *testing.B) {
	data := benchData(1000)
	buf := make([]int, len(data))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, data)
		Merge(buf)
	}
}

func BenchmarkParallelMerge100k4(b *testing.B) {
	data := benchData(100000)
	buf := make([]int, len(data))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, data)
		if err := ParallelMerge(buf, 4); err != nil {
			b.Fatal(err)
		}
	}
}
