// Package labd is the lab-service daemon: it exposes the course's
// simulators (asm machine, mini-C compiler, cache, VM, Game of Life,
// homework generator, survey exhibits) as HTTP/JSON job endpoints served
// by a bounded queue and a fixed worker pool. The daemon is the repo's
// third theme turned inward — the parallel substrate students study
// (worker pools, bounded buffers, barriers, graceful teardown) is the
// thing that serves the course content.
package labd

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cs31/internal/obs"
)

// Scheduler errors, mapped to HTTP statuses by the server.
var (
	// ErrQueueFull means the bounded queue rejected the job (HTTP 429).
	ErrQueueFull = errors.New("labd: job queue full")
	// ErrShuttingDown means the scheduler no longer accepts work (HTTP 503).
	ErrShuttingDown = errors.New("labd: shutting down")
)

// job is one unit of queued work. done is closed exactly once, after the
// job has either run to completion or been skipped because its context
// expired while it waited in the queue.
type job struct {
	ctx      context.Context
	run      func(ctx context.Context)
	done     chan struct{}
	skipped  bool      // set before done is closed when the job never ran
	enqueued time.Time // stamped at submit only while instrumentation is attached
}

// SchedStats is a point-in-time snapshot of scheduler counters. The
// invariant the load test asserts: Submitted == Completed + Skipped +
// queued-but-unfinished, and every submitted job is eventually exactly one
// of Completed or Skipped — nothing lost, nothing double-served.
type SchedStats struct {
	Submitted int64 // jobs accepted into the queue
	Rejected  int64 // jobs refused with ErrQueueFull
	Completed int64 // jobs a worker ran to completion
	Skipped   int64 // jobs whose context expired before a worker got to them
	Active    int64 // jobs a worker is running right now (live gauge)
	QueueHWM  int64 // deepest the queue has ever been (high-watermark)
	Workers   int
	QueueCap  int
	QueueLen  int
}

// Scheduler runs jobs on a fixed pool of workers fed by a bounded queue —
// the producer/consumer bounded buffer of the course's Lab 10, serving
// production traffic.
type Scheduler struct {
	queue   chan *job
	workers int

	mu     sync.RWMutex // guards closed vs. queue sends
	closed bool

	wg sync.WaitGroup // running workers

	submitted atomic.Int64
	rejected  atomic.Int64
	completed atomic.Int64
	skipped   atomic.Int64
	active    atomic.Int64 // jobs currently executing on a worker
	queueHWM  atomic.Int64 // deepest observed queue length

	// obs, when non-nil, routes queue-wait and handler timings into the
	// observability layer. The disabled path costs one atomic load per
	// dequeue and nothing per submit.
	obs atomic.Pointer[schedObs]
}

// schedObs is the scheduler's instrumentation bundle: latency
// histograms sharded by worker id and (when tracing) one timeline lane
// per worker carrying queue-wait and handler X spans.
type schedObs struct {
	queueWait *obs.Histogram // submit -> dequeue
	handler   *obs.Histogram // handler run time on the worker
	lanes     []*obs.Lane    // per worker; nil when tracing is off
	nWait     obs.Name
	nHandler  obs.Name
}

// instrument attaches metrics and/or trace recording to the pool. Safe
// to call before any traffic; jobs already queued keep their zero
// enqueued stamp and are recorded without a queue-wait sample.
func (s *Scheduler) instrument(reg *obs.Registry, trace *obs.Trace) {
	if reg == nil && trace == nil {
		return
	}
	o := &schedObs{}
	if reg != nil {
		o.queueWait = reg.Histogram("labd_queue_wait_seconds",
			"Time a job spent in the bounded queue before a worker dequeued it.", "", s.workers)
		o.handler = reg.Histogram("labd_handler_duration_seconds",
			"Time a worker spent running a job's handler.", "", s.workers)
	}
	if trace != nil {
		o.nWait = trace.Name("queue-wait")
		o.nHandler = trace.Name("handler")
		o.lanes = make([]*obs.Lane, s.workers)
		for i := range o.lanes {
			o.lanes[i] = trace.Lane(fmt.Sprintf("worker %d", i))
		}
	}
	s.obs.Store(o)
}

// NewScheduler starts `workers` goroutines behind a queue of depth
// `depth`. Both must be >= 1.
func NewScheduler(workers, depth int) *Scheduler {
	if workers < 1 {
		workers = 1
	}
	if depth < 1 {
		depth = 1
	}
	s := &Scheduler{
		queue:   make(chan *job, depth),
		workers: workers,
	}
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go s.worker(i)
	}
	return s
}

func (s *Scheduler) worker(id int) {
	defer s.wg.Done()
	for j := range s.queue {
		// A job that timed out or whose client vanished while it sat in
		// the queue is skipped, not run: the waiter has already gone.
		select {
		case <-j.ctx.Done():
			j.skipped = true
			s.skipped.Add(1)
		default:
			s.active.Add(1)
			if o := s.obs.Load(); o != nil {
				s.runObserved(o, id, j)
			} else {
				j.run(j.ctx)
			}
			s.active.Add(-1)
			s.completed.Add(1)
		}
		close(j.done)
	}
}

// runObserved is the instrumented dequeue: record how long the job
// queued (submit stamped enqueued only under instrumentation, so a
// zero stamp — a job queued before instrument — yields no sample),
// then time the handler, each as a histogram sample and, when tracing,
// an X span on this worker's lane.
func (s *Scheduler) runObserved(o *schedObs, id int, j *job) {
	var lane *obs.Lane
	if o.lanes != nil {
		lane = o.lanes[id]
	}
	if !j.enqueued.IsZero() {
		o.queueWait.ObserveShard(id, int64(time.Since(j.enqueued)))
		lane.Complete(o.nWait, j.enqueued)
	}
	t0 := time.Now()
	j.run(j.ctx)
	o.handler.ObserveShard(id, int64(time.Since(t0)))
	lane.Complete(o.nHandler, t0)
}

// Submit enqueues fn and blocks until a worker has run it or ctx is done.
// It returns nil when fn ran to completion, ErrQueueFull when the bounded
// queue was full (backpressure), ErrShuttingDown after Shutdown, or the
// context's error when the caller gave up first. A job whose submitter
// gave up may still be skipped by a worker later; it is never run after
// its context is done.
func (s *Scheduler) Submit(ctx context.Context, fn func(ctx context.Context)) error {
	j := &job{ctx: ctx, run: fn, done: make(chan struct{})}
	if s.obs.Load() != nil {
		j.enqueued = time.Now()
	}

	// The read lock pins the queue open: Shutdown takes the write lock
	// before closing the channel, so a send can never hit a closed queue.
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return ErrShuttingDown
	}
	select {
	case s.queue <- j:
		s.submitted.Add(1)
		// Ratchet the queue high-watermark (monotonic CAS-max): a post-send
		// len is a depth the queue really reached, so operators can tell a
		// queue that has been deep from one that is merely deep right now.
		depth := int64(len(s.queue))
		for {
			cur := s.queueHWM.Load()
			if depth <= cur || s.queueHWM.CompareAndSwap(cur, depth) {
				break
			}
		}
		s.mu.RUnlock()
	default:
		s.mu.RUnlock()
		s.rejected.Add(1)
		return ErrQueueFull
	}

	select {
	case <-j.done:
		if j.skipped {
			// The worker observed our expired context before running.
			if err := ctx.Err(); err != nil {
				return err
			}
			return context.Canceled
		}
		return nil
	case <-ctx.Done():
		// The job stays in the queue; a worker will skip it. Wait for the
		// skip/completion so the caller knows the job can no longer touch
		// its response buffers... unless a worker is mid-run, in which
		// case the handler's fn closes over its own locals and the HTTP
		// layer reports the timeout.
		return ctx.Err()
	}
}

// Shutdown stops accepting new jobs, lets the workers drain everything
// already queued, and returns once the pool has exited or ctx is done.
// It is idempotent.
func (s *Scheduler) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()

	finished := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// RetryAfter estimates, in whole seconds, how long a client rejected with
// ErrQueueFull should wait before retrying — the value the server puts in
// the 429 response's Retry-After header. The estimate is queue depth plus
// the in-flight jobs, spread over the worker pool, assuming roughly a
// second per job (generous for most endpoints); it is clamped to [1, 30]
// so a deep queue never tells a client to go away for minutes.
func (s *Scheduler) RetryAfter() int {
	backlog := int64(len(s.queue)) + s.active.Load()
	secs := (backlog + int64(s.workers) - 1) / int64(s.workers)
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return int(secs)
}

// Stats snapshots the scheduler counters.
func (s *Scheduler) Stats() SchedStats {
	return SchedStats{
		Submitted: s.submitted.Load(),
		Rejected:  s.rejected.Load(),
		Completed: s.completed.Load(),
		Skipped:   s.skipped.Load(),
		Active:    s.active.Load(),
		QueueHWM:  s.queueHWM.Load(),
		Workers:   s.workers,
		QueueCap:  cap(s.queue),
		QueueLen:  len(s.queue),
	}
}
