package labd

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"sort"
	"strings"
	"time"

	"cs31/internal/memo"
)

// DefaultCacheBytes is the total memoization budget when Config.Cache
// leaves MaxBytes zero, split evenly across the cached endpoints.
const DefaultCacheBytes = 32 << 20

// cacheHeader reports how the memoization layer served a request:
// "hit" (pre-encoded bytes, no compute), "miss" (this request computed
// and populated the cache), "coalesced" (this request waited on another
// request's in-flight computation), or "bypass" (the request asked to
// skip the cache, or its response is not cacheable). The header is absent
// entirely when the endpoint has no cache configured.
const cacheHeader = "X-Labd-Cache"

// cachedEndpoints names every deterministic endpoint, in route order.
// These are the keys of Config.Cache.DisableEndpoints/EndpointBytes and
// of the labd.cache.* debug vars.
var cachedEndpoints = []string{"asm", "minic", "cache", "vm", "life", "homework", "survey"}

// CacheConfig sizes the response memoization layer.
type CacheConfig struct {
	// Disable turns memoization off entirely (every request computes).
	// A negative MaxBytes does the same, mirroring "-cache-bytes 0".
	Disable bool
	// MaxBytes is the total resident-byte budget, split evenly across
	// the enabled endpoints. Zero selects DefaultCacheBytes.
	MaxBytes int64
	// Shards is the shard count per endpoint cache (rounded up to a
	// power of two; zero selects memo's default of 8).
	Shards int
	// DisableEndpoints lists endpoint names (see cachedEndpoints) to
	// serve uncached while the rest stay memoized.
	DisableEndpoints []string
	// EndpointBytes overrides the per-endpoint byte budget by name.
	EndpointBytes map[string]int64
}

func (c *CacheConfig) fillDefaults() {
	if c.MaxBytes == 0 {
		c.MaxBytes = DefaultCacheBytes
	}
}

// initCaches builds one memo.Cache per enabled endpoint. Separate caches
// (rather than one shared keyspace) give per-endpoint capacity, per-
// endpoint hit ratios, and freedom to disable one endpoint without
// touching the rest.
func (s *Server) initCaches() {
	cc := s.cfg.Cache
	if cc.Disable || cc.MaxBytes < 0 {
		return
	}
	disabled := make(map[string]bool, len(cc.DisableEndpoints))
	for _, name := range cc.DisableEndpoints {
		disabled[strings.TrimSpace(name)] = true
	}
	var enabled []string
	for _, name := range cachedEndpoints {
		if !disabled[name] {
			enabled = append(enabled, name)
		}
	}
	if len(enabled) == 0 {
		return
	}
	share := cc.MaxBytes / int64(len(enabled))
	for _, name := range enabled {
		budget := share
		if v, ok := cc.EndpointBytes[name]; ok {
			budget = v
		}
		if budget < 0 {
			continue
		}
		s.caches[name] = memo.New(budget, cc.Shards)
	}
}

// bypassRequested honors the standard client opt-outs: Cache-Control
// no-cache (don't serve from cache) and no-store (don't populate it).
// labd treats both as a full bypass — the request neither reads nor
// writes the cache.
func bypassRequested(r *http.Request) bool {
	cc := r.Header.Get("Cache-Control")
	if cc == "" {
		return false
	}
	for _, directive := range strings.Split(cc, ",") {
		switch strings.TrimSpace(strings.ToLower(directive)) {
		case "no-cache", "no-store":
			return true
		}
	}
	return false
}

// encodeBody renders v exactly as writeJSON would put it on the wire
// (two-space indent, trailing newline), so cached bytes are bit-for-bit
// identical to a cold response.
func encodeBody(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// serveCached is the memoized sibling of schedule: a resident key is
// written straight to the wire (no scheduler submit, no handler run, no
// re-encode), a missing key computes through the worker pool exactly as
// the uncached path would and caches the encoded bytes, and concurrent
// identical requests coalesce onto one in-flight computation — the
// waiters block here, in their own HTTP goroutines, never submitting to
// the scheduler, so they hold no worker slot while they wait.
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, endpoint string, key uint64, cacheable bool, fn func(ctx context.Context) (any, error)) {
	c := s.caches[endpoint]
	if c == nil {
		s.schedule(w, r, fn)
		return
	}
	if !cacheable || bypassRequested(r) {
		w.Header().Set(cacheHeader, "bypass")
		s.schedule(w, r, fn)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.DefaultTimeout)
	defer cancel()
	t0 := time.Now()
	body, outcome, err := c.Do(ctx, key, func() ([]byte, error) {
		var resp any
		var jobErr error
		err := s.sched.Submit(ctx, func(ctx context.Context) {
			resp, jobErr = fn(ctx)
		})
		if err == nil {
			err = jobErr
		}
		if err != nil {
			return nil, err
		}
		if s.obs == nil {
			return encodeBody(resp)
		}
		m0 := time.Now()
		b, encErr := encodeBody(resp)
		s.obs.observeMarshal(m0)
		return b, encErr
	})
	w.Header().Set(cacheHeader, outcome.String())
	if s.obs != nil && err == nil {
		s.obs.observeCacheOutcome(endpoint, outcome, time.Since(t0))
	}
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// CacheSnapshot is one endpoint's memoization counters as exposed under
// labd.cache.* in /debug/vars.
type CacheSnapshot struct {
	Endpoint  string `json:"endpoint"`
	Hits      int64  `json:"hits"`
	Misses    int64  `json:"misses"`
	Coalesced int64  `json:"coalesced"`
	Evictions int64  `json:"evictions"`
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	Capacity  int64  `json:"capacity"`
	// HitRatio counts coalesced waiters as hits — they were served
	// without running the computation — over all requests that consulted
	// the cache.
	HitRatio float64 `json:"hit_ratio"`
}

// CacheStats snapshots every endpoint cache, sorted by endpoint name.
// Empty when memoization is disabled.
func (s *Server) CacheStats() []CacheSnapshot {
	snaps := make([]CacheSnapshot, 0, len(s.caches))
	for name, c := range s.caches {
		st := c.Stats()
		snap := CacheSnapshot{
			Endpoint:  name,
			Hits:      st.Hits,
			Misses:    st.Misses,
			Coalesced: st.Coalesced,
			Evictions: st.Evictions,
			Entries:   st.Entries,
			Bytes:     st.Bytes,
			Capacity:  st.Capacity,
		}
		if total := st.Hits + st.Misses + st.Coalesced; total > 0 {
			snap.HitRatio = float64(st.Hits+st.Coalesced) / float64(total)
		}
		snaps = append(snaps, snap)
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].Endpoint < snaps[j].Endpoint })
	return snaps
}
