package labd

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// latencyBuckets are the histogram upper bounds. Requests slower than the
// last bound land in the implicit +Inf bucket.
var latencyBuckets = []time.Duration{
	100 * time.Microsecond,
	500 * time.Microsecond,
	1 * time.Millisecond,
	5 * time.Millisecond,
	25 * time.Millisecond,
	100 * time.Millisecond,
	500 * time.Millisecond,
	2 * time.Second,
	10 * time.Second,
}

// endpointMetrics accumulates one endpoint's counters under its own lock
// so hot endpoints don't contend with each other.
type endpointMetrics struct {
	mu       sync.Mutex
	requests int64         // every request routed to the endpoint
	byStatus map[int]int64 // HTTP status -> count
	buckets  []int64       // latency histogram, len(latencyBuckets)+1
	totalDur time.Duration // sum of latencies, for the mean
	maxDur   time.Duration
}

// EndpointSnapshot is the exported view of one endpoint's counters.
type EndpointSnapshot struct {
	Endpoint  string           `json:"endpoint"`
	Requests  int64            `json:"requests"`
	ByStatus  map[string]int64 `json:"by_status"`
	LatencyMs LatencySnapshot  `json:"latency_ms"`
}

// LatencySnapshot summarizes an endpoint's latency histogram in
// milliseconds.
type LatencySnapshot struct {
	MeanMs  float64          `json:"mean"`
	MaxMs   float64          `json:"max"`
	Buckets map[string]int64 `json:"buckets"` // "le_5ms" -> count, "inf" tail
}

// Metrics is the daemon's observability state: per-endpoint request
// counters keyed by final HTTP status plus latency histograms. It is
// deliberately not registered with the global expvar registry so that
// many servers (one per test) can coexist; the server renders it at
// GET /debug/vars in expvar's JSON shape instead.
type Metrics struct {
	mu        sync.Mutex
	endpoints map[string]*endpointMetrics
	start     time.Time
}

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics {
	return &Metrics{endpoints: make(map[string]*endpointMetrics), start: time.Now()}
}

func (m *Metrics) endpoint(name string) *endpointMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	em, ok := m.endpoints[name]
	if !ok {
		em = &endpointMetrics{
			byStatus: make(map[int]int64),
			buckets:  make([]int64, len(latencyBuckets)+1),
		}
		m.endpoints[name] = em
	}
	return em
}

// Observe records one served request: its endpoint, final HTTP status, and
// wall-clock latency.
func (m *Metrics) Observe(endpoint string, status int, d time.Duration) {
	em := m.endpoint(endpoint)
	em.mu.Lock()
	defer em.mu.Unlock()
	em.requests++
	em.byStatus[status]++
	i := sort.Search(len(latencyBuckets), func(i int) bool { return d <= latencyBuckets[i] })
	em.buckets[i]++
	em.totalDur += d
	if d > em.maxDur {
		em.maxDur = d
	}
}

func bucketLabel(i int) string {
	if i >= len(latencyBuckets) {
		return "inf"
	}
	b := latencyBuckets[i]
	if b < time.Millisecond {
		return fmt.Sprintf("le_%dus", b.Microseconds())
	}
	return fmt.Sprintf("le_%dms", b.Milliseconds())
}

// Snapshot returns every endpoint's counters, sorted by endpoint name.
func (m *Metrics) Snapshot() []EndpointSnapshot {
	m.mu.Lock()
	names := make([]string, 0, len(m.endpoints))
	for n := range m.endpoints {
		names = append(names, n)
	}
	m.mu.Unlock()
	sort.Strings(names)

	out := make([]EndpointSnapshot, 0, len(names))
	for _, n := range names {
		em := m.endpoint(n)
		em.mu.Lock()
		snap := EndpointSnapshot{
			Endpoint: n,
			Requests: em.requests,
			ByStatus: make(map[string]int64, len(em.byStatus)),
		}
		for st, c := range em.byStatus {
			snap.ByStatus[fmt.Sprintf("%d", st)] = c
		}
		snap.LatencyMs = LatencySnapshot{
			MaxMs:   float64(em.maxDur) / float64(time.Millisecond),
			Buckets: make(map[string]int64, len(em.buckets)),
		}
		if em.requests > 0 {
			snap.LatencyMs.MeanMs = float64(em.totalDur) / float64(em.requests) / float64(time.Millisecond)
		}
		for i, c := range em.buckets {
			if c > 0 {
				snap.LatencyMs.Buckets[bucketLabel(i)] = c
			}
		}
		em.mu.Unlock()
		out = append(out, snap)
	}
	return out
}

// TotalRequests sums request counts across endpoints — the number the
// load test reconciles against its own client-side tally.
func (m *Metrics) TotalRequests() int64 {
	var total int64
	for _, s := range m.Snapshot() {
		total += s.Requests
	}
	return total
}

// Uptime reports how long the registry (and so the server) has existed.
func (m *Metrics) Uptime() time.Duration { return time.Since(m.start) }

// endpointKey normalizes a method+pattern pair into a metric name like
// "POST /v1/asm/run".
func endpointKey(method, pattern string) string {
	return strings.TrimSpace(method + " " + pattern)
}
