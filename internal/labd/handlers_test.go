package labd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, ts
}

// newUnmanagedServer serves s without registering a scheduler shutdown —
// for tests that drive the drain themselves.
func newUnmanagedServer(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func getURL(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func decode[T any](t *testing.T, raw []byte) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("decode %T from %s: %v", v, raw, err)
	}
	return v
}

func TestAsmRunEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, raw := postJSON(t, ts.URL+"/v1/asm/run", AsmRunRequest{
		Source: "main:\n    movl $7, %ebx\n    movl $1, %eax\n    int $0x80\n",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	out := decode[AsmRunResponse](t, raw)
	if out.ExitStatus != 7 {
		t.Errorf("exit = %d, want 7", out.ExitStatus)
	}
	if out.Steps == 0 {
		t.Error("steps not reported")
	}
}

func TestAsmRunRejectsBadSource(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, raw := postJSON(t, ts.URL+"/v1/asm/run", AsmRunRequest{Source: "not a program @@@"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if body := decode[errorBody](t, raw); body.Error == "" {
		t.Error("error body empty")
	}
}

func TestAsmRunStepBudget(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, raw := postJSON(t, ts.URL+"/v1/asm/run", AsmRunRequest{
		Source:   "main:\nloop:\n    jmp loop\n",
		MaxSteps: 100,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if body := decode[errorBody](t, raw); !strings.Contains(body.Error, "step budget") {
		t.Errorf("error %q does not mention the step budget", body.Error)
	}
}

func TestMinicCompileEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, raw := postJSON(t, ts.URL+"/v1/minic/compile", MinicCompileRequest{
		Source: "int main() { print_int(6 * 7); return 0; }",
		Run:    true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	out := decode[MinicCompileResponse](t, raw)
	if !strings.Contains(out.Assembly, "main:") {
		t.Error("assembly missing main label")
	}
	if out.Stdout != "42" {
		t.Errorf("stdout = %q, want 42", out.Stdout)
	}
	if out.ExitStatus == nil || *out.ExitStatus != 0 {
		t.Errorf("exit status = %v, want 0", out.ExitStatus)
	}
}

func TestMinicCompileError(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, _ := postJSON(t, ts.URL+"/v1/minic/compile", MinicCompileRequest{
		Source: "int main() { this is not C",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestCacheSimEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Two accesses to the same block: miss then hit.
	resp, raw := postJSON(t, ts.URL+"/v1/cache/sim", CacheSimRequest{
		SizeBytes: 1024, BlockSize: 64, Assoc: 1,
		Trace: []TraceAccess{{Addr: 0x100}, {Addr: 0x104}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	out := decode[CacheSimResponse](t, raw)
	if out.Stats.Hits != 1 || out.Stats.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", out.Stats.Hits, out.Stats.Misses)
	}
	if out.NumSets != 16 || out.OffsetBits != 6 {
		t.Errorf("organization: sets=%d offset=%d", out.NumSets, out.OffsetBits)
	}
}

func TestCacheSimWorkloadContrast(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	rates := map[string]float64{}
	for _, wl := range []string{"rowmajor", "colmajor"} {
		resp, raw := postJSON(t, ts.URL+"/v1/cache/sim", CacheSimRequest{
			SizeBytes: 1024, BlockSize: 64, Workload: wl, Rows: 64, Cols: 64,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", wl, resp.StatusCode, raw)
		}
		rates[wl] = decode[CacheSimResponse](t, raw).HitRate
	}
	if rates["rowmajor"] <= rates["colmajor"] {
		t.Errorf("row-major (%v) should beat column-major (%v)", rates["rowmajor"], rates["colmajor"])
	}
}

func TestCacheSimBadConfig(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, _ := postJSON(t, ts.URL+"/v1/cache/sim", CacheSimRequest{
		SizeBytes: 100, BlockSize: 7, // not powers of two
		Trace: []TraceAccess{{Addr: 0}},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestVMSimEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	trace := []VMAccess{}
	// Two processes touching the same virtual pages, with switches.
	for round := 0; round < 2; round++ {
		for pid := 1; pid <= 2; pid++ {
			for pg := uint64(0); pg < 4; pg++ {
				trace = append(trace, VMAccess{Pid: pid, Addr: pg * 256})
			}
		}
	}
	resp, raw := postJSON(t, ts.URL+"/v1/vm/sim", VMSimRequest{
		PageSize: 256, NumFrames: 8, TLBSize: 4, NumPages: 64, Trace: trace,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	out := decode[VMSimResponse](t, raw)
	if out.Stats.Accesses != int64(len(trace)) {
		t.Errorf("accesses = %d, want %d", out.Stats.Accesses, len(trace))
	}
	if out.Stats.PageFaults == 0 || out.ContextSwitches == 0 {
		t.Errorf("faults=%d switches=%d, want both > 0", out.Stats.PageFaults, out.ContextSwitches)
	}
}

func TestLifeRunEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// The serial and 4-thread runs of the same seed must agree — the
	// Lab 10 correctness invariant.
	var pops [2]int
	for i, threads := range []int{1, 4} {
		resp, raw := postJSON(t, ts.URL+"/v1/life/run", LifeRunRequest{
			Rows: 48, Cols: 48, Iters: 16, Seed: 7, Threads: threads,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("threads=%d: status %d: %s", threads, resp.StatusCode, raw)
		}
		out := decode[LifeRunResponse](t, raw)
		if out.Generations != 16 {
			t.Errorf("threads=%d: generations = %d, want 16", threads, out.Generations)
		}
		pops[i] = out.Population
	}
	if pops[0] != pops[1] {
		t.Errorf("serial population %d != parallel population %d", pops[0], pops[1])
	}
}

func TestLifeRunSpeedupReport(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, raw := postJSON(t, ts.URL+"/v1/life/run", LifeRunRequest{
		Rows: 64, Cols: 64, Iters: 8, Threads: 4, Speedup: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	out := decode[LifeRunResponse](t, raw)
	if len(out.Scaling) < 2 {
		t.Fatalf("scaling table has %d rows, want >= 2", len(out.Scaling))
	}
	if out.Scaling[0].Threads != 1 || out.Scaling[len(out.Scaling)-1].Threads != 4 {
		t.Errorf("scaling thread counts: %+v", out.Scaling)
	}
}

// TestLifeRunDistEngine: the message-passing engine behind the endpoint
// must agree with the serial and shared-memory runs of the same seed, and
// its speedup table measures rank scaling.
func TestLifeRunDistEngine(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var pops [2]int
	var lives [2]int64
	for i, engine := range []string{"parallel", "dist"} {
		resp, raw := postJSON(t, ts.URL+"/v1/life/run", LifeRunRequest{
			Rows: 48, Cols: 48, Iters: 16, Seed: 7, Threads: 4, Engine: engine,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("engine=%s: status %d: %s", engine, resp.StatusCode, raw)
		}
		out := decode[LifeRunResponse](t, raw)
		pops[i] = out.Population
		lives[i] = out.LiveUpdates
	}
	if pops[0] != pops[1] {
		t.Errorf("parallel population %d != dist population %d", pops[0], pops[1])
	}
	if lives[0] != lives[1] {
		t.Errorf("parallel live updates %d != dist live updates %d", lives[0], lives[1])
	}

	resp, raw := postJSON(t, ts.URL+"/v1/life/run", LifeRunRequest{
		Rows: 64, Cols: 64, Iters: 8, Threads: 4, Engine: "dist", Speedup: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dist speedup: status %d: %s", resp.StatusCode, raw)
	}
	out := decode[LifeRunResponse](t, raw)
	if len(out.Scaling) < 2 {
		t.Fatalf("dist scaling table has %d rows, want >= 2", len(out.Scaling))
	}

	// Bad engine configurations are client errors.
	for _, req := range []LifeRunRequest{
		{Engine: "mpi"},
		{Engine: "dist", Partition: "cols", Threads: 2},
	} {
		resp, raw := postJSON(t, ts.URL+"/v1/life/run", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%+v: status %d, want 400: %s", req, resp.StatusCode, raw)
		}
	}
}

// TestLifeRunPacked: packed:true must agree with the byte kernel for every
// engine — population, generations, and live updates on the same seed.
func TestLifeRunPacked(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	run := func(req LifeRunRequest) LifeRunResponse {
		t.Helper()
		resp, raw := postJSON(t, ts.URL+"/v1/life/run", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%+v: status %d: %s", req, resp.StatusCode, raw)
		}
		return decode[LifeRunResponse](t, raw)
	}
	base := LifeRunRequest{Rows: 48, Cols: 70, Iters: 16, Seed: 7}
	byteOut := run(base)
	for _, req := range []LifeRunRequest{
		{Rows: 48, Cols: 70, Iters: 16, Seed: 7, Packed: true},
		{Rows: 48, Cols: 70, Iters: 16, Seed: 7, Packed: true, Threads: 4},
		{Rows: 48, Cols: 70, Iters: 16, Seed: 7, Packed: true, Threads: 4, Engine: "dist"},
	} {
		out := run(req)
		if out.Population != byteOut.Population || out.Generations != byteOut.Generations {
			t.Errorf("%+v: population %d gen %d, byte kernel got %d / %d",
				req, out.Population, out.Generations, byteOut.Population, byteOut.Generations)
		}
	}
	// Packed speedup tables work too: Clone preserves the representation.
	out := run(LifeRunRequest{Rows: 64, Cols: 64, Iters: 8, Threads: 4, Packed: true, Speedup: true})
	if len(out.Scaling) < 2 {
		t.Fatalf("packed scaling table has %d rows, want >= 2", len(out.Scaling))
	}
}

func TestHomeworkEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, raw := getURL(t, ts.URL+"/v1/homework")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	topics := decode[HomeworkResponse](t, raw).Topics
	if len(topics) == 0 {
		t.Fatal("no topics listed")
	}

	resp, raw = getURL(t, fmt.Sprintf("%s/v1/homework?topic=%s&n=2&seed=42", ts.URL, topics[0]))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	out := decode[HomeworkResponse](t, raw)
	if len(out.Problems) != 2 {
		t.Fatalf("got %d problems, want 2", len(out.Problems))
	}
	if out.Problems[0].Prompt == "" || out.Problems[0].Solution == "" {
		t.Error("problem missing prompt or solution")
	}

	// Student version must omit the answer key.
	resp, raw = getURL(t, fmt.Sprintf("%s/v1/homework?topic=%s&answers=false", ts.URL, topics[0]))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	out = decode[HomeworkResponse](t, raw)
	if len(out.Problems) != 1 || out.Problems[0].Solution != "" {
		t.Errorf("answers=false still leaked a solution: %+v", out.Problems)
	}

	resp, _ = getURL(t, ts.URL+"/v1/homework?topic=no-such-topic")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown topic: status %d, want 400", resp.StatusCode)
	}

	// Malformed numeric query params are client errors, not silent defaults.
	resp, raw = getURL(t, fmt.Sprintf("%s/v1/homework?topic=%s&n=abc", ts.URL, topics[0]))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("n=abc: status %d, want 400 (%s)", resp.StatusCode, raw)
	}
	resp, _ = getURL(t, ts.URL+"/v1/survey/figure1?students=lots")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("students=lots: status %d, want 400", resp.StatusCode)
	}
}

func TestSurveyFigure1Endpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, raw := getURL(t, ts.URL+"/v1/survey/figure1?students=80&seed=2022")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	out := decode[SurveyFigureResponse](t, raw)
	if len(out.Stats) == 0 {
		t.Fatal("no topic stats")
	}
	if !strings.Contains(out.Figure, "Figure 1") {
		t.Error("figure text missing header")
	}
	if len(out.ShapeProblems) != 0 {
		t.Errorf("default cohort violates the paper shape: %v", out.ShapeProblems)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 3, QueueDepth: 9})
	resp, raw := getURL(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	out := decode[healthzBody](t, raw)
	if out.Status != "ok" || out.Workers != 3 || out.QueueCap != 9 {
		t.Errorf("healthz = %+v", out)
	}
}

func TestDebugVarsAndMetrics(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	for i := 0; i < 3; i++ {
		postJSON(t, ts.URL+"/v1/cache/sim", CacheSimRequest{
			Trace: []TraceAccess{{Addr: 0x40}},
		})
	}
	getURL(t, ts.URL+"/v1/homework")

	resp, raw := getURL(t, ts.URL+"/debug/vars")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	vars := decode[map[string]json.RawMessage](t, raw)
	for _, key := range []string{"labd.scheduler", "labd.total_requests", "labd.endpoint.POST /v1/cache/sim",
		"labd.active_jobs", "labd.queue_hwm"} {
		if _, ok := vars[key]; !ok {
			t.Errorf("debug vars missing %q in %s", key, raw)
		}
	}
	// The debug snapshot runs outside the worker pool, so nothing is active
	// while it renders; the gauge must read 0 between requests.
	var active int64
	if err := json.Unmarshal(vars["labd.active_jobs"], &active); err != nil {
		t.Fatalf("labd.active_jobs: %v", err)
	}
	if active != 0 {
		t.Errorf("active_jobs = %d between requests, want 0", active)
	}

	snaps := s.Metrics().Snapshot()
	byName := map[string]EndpointSnapshot{}
	for _, ep := range snaps {
		byName[ep.Endpoint] = ep
	}
	if got := byName["POST /v1/cache/sim"].Requests; got != 3 {
		t.Errorf("cache/sim requests = %d, want 3", got)
	}
	if got := byName["POST /v1/cache/sim"].ByStatus["200"]; got != 3 {
		t.Errorf("cache/sim 200s = %d, want 3", got)
	}
}

func TestUnknownRouteIs404(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, _ := getURL(t, ts.URL+"/v1/nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

func TestShutdownRefusesNewWork(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, raw := postJSON(t, ts.URL+"/v1/cache/sim", CacheSimRequest{
		Trace: []TraceAccess{{Addr: 0}},
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d (%s), want 503", resp.StatusCode, raw)
	}
}

func TestRequestTimeoutMapsTo504(t *testing.T) {
	// A step cap far beyond what 50ms can execute, so the context deadline,
	// not the step budget, ends the unbounded spin below.
	_, ts := newTestServer(t, Config{DefaultTimeout: 50 * time.Millisecond, MaxSteps: 9_000_000_000})
	resp, raw := postJSON(t, ts.URL+"/v1/asm/run", AsmRunRequest{
		Source:   "main:\nloop:\n    jmp loop\n",
		MaxSteps: 9_000_000_000,
	})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504", resp.StatusCode, raw)
	}
}
