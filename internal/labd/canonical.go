package labd

import "cs31/internal/memo"

// Canonical request keys. Every deterministic endpoint hashes its request
// into a 64-bit memo key via a canonical encoding: fields in a fixed
// order, defaults normalized to exactly the values the handler would fill
// in, and nothing more normalized than that — a field the handler still
// validates (an engine name, a partition) stays in the key verbatim, so a
// request that would be rejected can never alias one that succeeds.
//
// Each key space is salted with the endpoint name and cacheKeyVersion.
// Bump the version whenever any simulator kernel changes observable
// output; old entries then miss by construction instead of serving stale
// bytes.
const cacheKeyVersion = "1"

func saltFor(endpoint string) string {
	return "labd/" + endpoint + "/" + cacheKeyVersion
}

// Each keyFn returns (key, cacheable). Requests whose responses are not
// deterministic functions of the request report cacheable=false and are
// served on the uncached path. Invalid requests may still produce keys:
// they compute to errors, and errors are never cached.

func asmKey(s *Server, req AsmRunRequest) (uint64, bool) {
	steps := s.cfg.MaxSteps
	if req.MaxSteps > 0 && req.MaxSteps < steps {
		steps = req.MaxSteps
	}
	k := memo.NewKey(saltFor("asm"))
	k.Str("source", req.Source)
	k.Str("stdin", req.Stdin)
	k.Int("steps", steps)
	return k.Sum(), true
}

func minicKey(s *Server, req MinicCompileRequest) (uint64, bool) {
	k := memo.NewKey(saltFor("minic"))
	k.Str("source", req.Source)
	k.Bool("run", req.Run)
	if req.Run {
		// Stdin and the step budget only shape the response when the
		// program actually executes.
		steps := s.cfg.MaxSteps
		if req.MaxSteps > 0 && req.MaxSteps < steps {
			steps = req.MaxSteps
		}
		k.Str("stdin", req.Stdin)
		k.Int("steps", steps)
	}
	return k.Sum(), true
}

func cacheSimKey(_ *Server, req CacheSimRequest) (uint64, bool) {
	size, block, assoc := req.SizeBytes, req.BlockSize, req.Assoc
	if size == 0 {
		size = 1024
	}
	if block == 0 {
		block = 16
	}
	if assoc == 0 {
		assoc = 1
	}
	write, alloc, repl := req.Write, req.Alloc, req.Repl
	if write == "" {
		write = "back"
	}
	if alloc == "" {
		alloc = "allocate"
	}
	if repl == "" {
		repl = "lru"
	}
	k := memo.NewKey(saltFor("cache"))
	k.Int("size", int64(size))
	k.Int("block", int64(block))
	k.Int("assoc", int64(assoc))
	k.Str("write", write)
	k.Str("alloc", alloc)
	k.Str("repl", repl)
	k.Str("workload", req.Workload)
	if req.Workload == "" {
		// Explicit trace: rows/cols are ignored by the handler, so they
		// stay out of the key.
		k.Int("trace", int64(len(req.Trace)))
		for _, a := range req.Trace {
			k.Elem(a.Addr)
			k.Elem(boolWord(a.Write))
		}
	} else {
		// Built-in workload: the trace field is ignored by the handler.
		rows, cols := req.Rows, req.Cols
		if rows == 0 {
			rows = 64
		}
		if cols == 0 {
			cols = 64
		}
		k.Int("rows", int64(rows))
		k.Int("cols", int64(cols))
	}
	k.Int("table_n", int64(req.TableN))
	return k.Sum(), true
}

func vmSimKey(_ *Server, req VMSimRequest) (uint64, bool) {
	page, frames, tlb, pages := req.PageSize, req.NumFrames, req.TLBSize, req.NumPages
	if page == 0 {
		page = 256
	}
	if frames == 0 {
		frames = 8
	}
	if tlb == 0 {
		tlb = 4
	}
	if pages == 0 {
		pages = 64
	}
	k := memo.NewKey(saltFor("vm"))
	k.Uint("page_size", page)
	k.Int("frames", int64(frames))
	k.Int("tlb", int64(tlb))
	k.Uint("pages", pages)
	k.Int("trace", int64(len(req.Trace)))
	for _, a := range req.Trace {
		k.Elem(uint64(a.Pid))
		k.Elem(a.Addr)
		k.Elem(boolWord(a.Write))
	}
	return k.Sum(), true
}

func lifeKey(_ *Server, req LifeRunRequest) (uint64, bool) {
	threads := req.Threads
	if threads < 1 {
		// threads 0 and negatives all select the serial engine, exactly
		// like threads 1.
		threads = 1
	}
	if req.Speedup && threads > 1 {
		// The scaling table contains wall-clock timings: not a
		// deterministic function of the request.
		return 0, false
	}
	rows, cols, iters := req.Rows, req.Cols, req.Iters
	if rows == 0 {
		rows = 32
	}
	if cols == 0 {
		cols = 32
	}
	if iters == 0 {
		iters = 20
	}
	seed := req.Seed
	if seed == 0 {
		seed = 31
	}
	density := req.Density
	if density == 0 {
		density = 0.3
	}
	k := memo.NewKey(saltFor("life"))
	k.Int("rows", int64(rows))
	k.Int("cols", int64(cols))
	k.Int("iters", int64(iters))
	k.Int("seed", seed)
	k.Float("density", density)
	k.Int("threads", int64(threads))
	k.Str("partition", req.Partition)
	k.Str("engine", req.Engine)
	k.Bool("packed", req.Packed)
	return k.Sum(), true
}

func homeworkKey(topic string, seed int64, n int, answers bool) uint64 {
	k := memo.NewKey(saltFor("homework"))
	k.Str("topic", topic)
	if topic != "" {
		// The topic listing ignores every other parameter.
		k.Int("seed", seed)
		k.Int("n", int64(n))
		k.Bool("answers", answers)
	}
	return k.Sum()
}

func surveyKey(seed int64, students int) uint64 {
	k := memo.NewKey(saltFor("survey"))
	k.Int("seed", seed)
	k.Int("students", int64(students))
	return k.Sum()
}

func boolWord(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
