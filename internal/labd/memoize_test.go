package labd

// The memoization layer's acceptance suite: per-endpoint differentials
// proving hit, miss, bypass, and coalesced responses are byte-identical
// to cold recompute, the singleflight guarantees (one compute, no worker
// slots held by waiters), and the observability surface.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"
)

// doRequest issues one request with an optional Cache-Control header and
// returns the response plus its full body.
func doRequest(t *testing.T, method, url string, body []byte, cacheControl string) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if cacheControl != "" {
		req.Header.Set("Cache-Control", cacheControl)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

// endpointProbes is one deterministic request per cached endpoint.
var endpointProbes = []struct {
	endpoint string
	method   string
	path     string
	body     string
}{
	{"asm", "POST", "/v1/asm/run", `{"source":"main:\n    movl $7, %ebx\n    movl $1, %eax\n    int $0x80\n"}`},
	{"minic", "POST", "/v1/minic/compile", `{"source":"int main() { return 3; }","run":true}`},
	{"cache", "POST", "/v1/cache/sim", `{"workload":"rowmajor","rows":8,"cols":8,"table_n":4}`},
	{"vm", "POST", "/v1/vm/sim", `{"trace":[{"pid":1,"addr":0},{"pid":1,"addr":256},{"pid":2,"addr":0}]}`},
	{"life", "POST", "/v1/life/run", `{"rows":16,"cols":16,"iters":4,"threads":2}`},
	{"homework", "GET", "/v1/homework?topic=binary-conversion&n=2&seed=5", ""},
	{"survey", "GET", "/v1/survey/figure1?students=25&seed=7", ""},
}

// TestCacheDifferentialAllEndpoints: for every endpoint, the miss that
// populates the cache, the hits that follow, a no-cache bypass, and a
// cache-disabled twin server all produce byte-identical responses.
func TestCacheDifferentialAllEndpoints(t *testing.T) {
	_, cached := newTestServer(t, Config{Workers: 2, DefaultTimeout: 30 * time.Second})
	_, twin := newTestServer(t, Config{Workers: 2, DefaultTimeout: 30 * time.Second,
		Cache: CacheConfig{Disable: true}})

	for _, probe := range endpointProbes {
		var body []byte
		if probe.body != "" {
			body = []byte(probe.body)
		}
		resp, miss := doRequest(t, probe.method, cached.URL+probe.path, body, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: miss status %d: %s", probe.endpoint, resp.StatusCode, miss)
		}
		if got := resp.Header.Get(cacheHeader); got != "miss" {
			t.Errorf("%s: first request %s = %q, want miss", probe.endpoint, cacheHeader, got)
		}
		for i := 0; i < 2; i++ {
			resp, hit := doRequest(t, probe.method, cached.URL+probe.path, body, "")
			if got := resp.Header.Get(cacheHeader); got != "hit" {
				t.Errorf("%s: repeat %d %s = %q, want hit", probe.endpoint, i, cacheHeader, got)
			}
			if !bytes.Equal(hit, miss) {
				t.Errorf("%s: hit body diverges from miss body:\n hit: %s\nmiss: %s", probe.endpoint, hit, miss)
			}
		}
		resp, bypass := doRequest(t, probe.method, cached.URL+probe.path, body, "no-cache")
		if got := resp.Header.Get(cacheHeader); got != "bypass" {
			t.Errorf("%s: no-cache %s = %q, want bypass", probe.endpoint, cacheHeader, got)
		}
		if !bytes.Equal(bypass, miss) {
			t.Errorf("%s: bypass body diverges from miss body", probe.endpoint)
		}
		resp, cold := doRequest(t, probe.method, twin.URL+probe.path, body, "")
		if got := resp.Header.Get(cacheHeader); got != "" {
			t.Errorf("%s: cache-disabled twin sent %s = %q, want none", probe.endpoint, cacheHeader, got)
		}
		if !bytes.Equal(cold, miss) {
			t.Errorf("%s: twin recompute diverges from cached response:\ntwin: %s\ncache: %s", probe.endpoint, cold, miss)
		}
	}
}

// TestCacheNormalizesDefaults: a request spelling out the documented
// defaults hits the entry populated by the all-defaults request — the
// canonical keys normalize before hashing.
func TestCacheNormalizesDefaults(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, DefaultTimeout: 30 * time.Second})
	pairs := []struct {
		endpoint     string
		method       string
		implicit     string
		implicitBody string
		explicit     string
		explicitBody string
	}{
		{"life", "POST", "/v1/life/run", `{}`,
			"/v1/life/run", `{"rows":32,"cols":32,"iters":20,"seed":31,"density":0.3,"threads":1}`},
		{"cache", "POST", "/v1/cache/sim", `{"workload":"colmajor"}`,
			"/v1/cache/sim", `{"workload":"colmajor","size_bytes":1024,"block_size":16,"assoc":1,"write":"back","alloc":"allocate","repl":"lru","rows":64,"cols":64}`},
		{"homework", "GET", "/v1/homework?topic=binary-conversion", "",
			"/v1/homework?topic=binary-conversion&seed=31&n=1", ""},
		{"survey", "GET", "/v1/survey/figure1", "",
			"/v1/survey/figure1?seed=2022&students=120", ""},
	}
	for _, p := range pairs {
		var implicitBody, explicitBody []byte
		if p.implicitBody != "" {
			implicitBody = []byte(p.implicitBody)
		}
		if p.explicitBody != "" {
			explicitBody = []byte(p.explicitBody)
		}
		resp, first := doRequest(t, p.method, ts.URL+p.implicit, implicitBody, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", p.endpoint, resp.StatusCode, first)
		}
		resp, second := doRequest(t, p.method, ts.URL+p.explicit, explicitBody, "")
		if got := resp.Header.Get(cacheHeader); got != "hit" {
			t.Errorf("%s: explicit-defaults request %s = %q, want hit", p.endpoint, cacheHeader, got)
		}
		if !bytes.Equal(first, second) {
			t.Errorf("%s: default-normalized responses diverge", p.endpoint)
		}
	}
}

// TestCacheCoalescing is the worker-slot proof: a pool of one worker and
// a one-deep queue serves 8 concurrent identical requests, which is only
// possible if the 7 waiters coalesce in their HTTP goroutines instead of
// submitting — scheduler stats must show exactly one submit, one compute.
func TestCacheCoalescing(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, DefaultTimeout: 30 * time.Second})

	// ~100ms of serial life keeps the flight open while the waiters pile
	// on; correctness does not depend on the timing, only the coalesced
	// count does, and that is asserted as hits+coalesced.
	body := []byte(`{"rows":32,"cols":32,"iters":2000,"seed":5}`)

	leaderDone := make(chan []byte, 1)
	go func() {
		_, raw := doRequest(t, "POST", ts.URL+"/v1/life/run", body, "")
		leaderDone <- raw
	}()
	waitFor(t, func() bool {
		for _, cs := range s.CacheStats() {
			if cs.Endpoint == "life" && cs.Misses == 1 {
				return true
			}
		}
		return false
	})

	const waiters = 7
	var wg sync.WaitGroup
	bodies := make([][]byte, waiters)
	statuses := make([]int, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, raw := doRequest(t, "POST", ts.URL+"/v1/life/run", body, "")
			statuses[i] = resp.StatusCode
			bodies[i] = raw
		}(i)
	}
	wg.Wait()
	leaderBody := <-leaderDone

	for i := 0; i < waiters; i++ {
		if statuses[i] != http.StatusOK {
			t.Errorf("waiter %d: status %d (a queued waiter would have hit 429)", i, statuses[i])
		}
		if !bytes.Equal(bodies[i], leaderBody) {
			t.Errorf("waiter %d: body diverges from leader's", i)
		}
	}
	st := s.SchedStats()
	if st.Submitted != 1 || st.Completed != 1 {
		t.Errorf("scheduler saw %d submits / %d completions, want exactly 1 compute", st.Submitted, st.Completed)
	}
	for _, cs := range s.CacheStats() {
		if cs.Endpoint != "life" {
			continue
		}
		if cs.Misses != 1 {
			t.Errorf("life misses = %d, want 1", cs.Misses)
		}
		if cs.Hits+cs.Coalesced != waiters {
			t.Errorf("life hits %d + coalesced %d != %d waiters", cs.Hits, cs.Coalesced, waiters)
		}
	}
}

// TestCacheErrorsNotCached: a failing request recomputes every time and
// leaves nothing resident.
func TestCacheErrorsNotCached(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	bad := []byte(`{"partition":"diagonal"}`)
	for i := 0; i < 2; i++ {
		resp, _ := doRequest(t, "POST", ts.URL+"/v1/life/run", bad, "")
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("request %d: status %d, want 400", i, resp.StatusCode)
		}
		if got := resp.Header.Get(cacheHeader); got != "miss" {
			t.Errorf("request %d: %s = %q, want miss (errors never become hits)", i, cacheHeader, got)
		}
	}
	for _, cs := range s.CacheStats() {
		if cs.Endpoint == "life" {
			if cs.Entries != 0 || cs.Bytes != 0 {
				t.Errorf("error response resident: %+v", cs)
			}
			if cs.Misses != 2 {
				t.Errorf("misses = %d, want 2 (each error recomputes)", cs.Misses)
			}
		}
	}
}

// TestCacheSpeedupRequestsBypass: a life request with a timing table is
// not a deterministic function of the request, so it never caches.
func TestCacheSpeedupRequestsBypass(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, DefaultTimeout: 30 * time.Second})
	body := []byte(`{"rows":16,"cols":16,"iters":2,"threads":2,"speedup":true}`)
	for i := 0; i < 2; i++ {
		resp, _ := doRequest(t, "POST", ts.URL+"/v1/life/run", body, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		if got := resp.Header.Get(cacheHeader); got != "bypass" {
			t.Errorf("speedup request %d: %s = %q, want bypass", i, cacheHeader, got)
		}
	}
	for _, cs := range s.CacheStats() {
		if cs.Endpoint == "life" && (cs.Hits != 0 || cs.Misses != 0 || cs.Entries != 0) {
			t.Errorf("speedup requests touched the cache: %+v", cs)
		}
	}
}

// TestCacheNoStoreBypasses: no-store is honored like no-cache — the
// request neither reads a primed entry nor stores a new one.
func TestCacheNoStoreBypasses(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	body := []byte(`{"rows":8,"cols":8,"iters":2}`)
	resp, _ := doRequest(t, "POST", ts.URL+"/v1/life/run", body, "no-store")
	if got := resp.Header.Get(cacheHeader); got != "bypass" {
		t.Errorf("%s = %q, want bypass", cacheHeader, got)
	}
	for _, cs := range s.CacheStats() {
		if cs.Endpoint == "life" && cs.Entries != 0 {
			t.Errorf("no-store populated the cache: %+v", cs)
		}
	}
}

// TestCacheDisabledEndpoint: per-endpoint disable leaves that endpoint
// uncached (no header) while the others stay memoized.
func TestCacheDisabledEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2,
		Cache: CacheConfig{DisableEndpoints: []string{"life"}}})
	body := []byte(`{"rows":8,"cols":8,"iters":2}`)
	for i := 0; i < 2; i++ {
		resp, _ := doRequest(t, "POST", ts.URL+"/v1/life/run", body, "")
		if got := resp.Header.Get(cacheHeader); got != "" {
			t.Errorf("disabled endpoint sent %s = %q", cacheHeader, got)
		}
	}
	asmBody := []byte(endpointProbes[0].body)
	doRequest(t, "POST", ts.URL+"/v1/asm/run", asmBody, "")
	resp, _ := doRequest(t, "POST", ts.URL+"/v1/asm/run", asmBody, "")
	if got := resp.Header.Get(cacheHeader); got != "hit" {
		t.Errorf("asm stayed uncached alongside disabled life: %s = %q", cacheHeader, got)
	}
}

// TestCacheFullyDisabled: Disable and negative MaxBytes both turn the
// layer off entirely.
func TestCacheFullyDisabled(t *testing.T) {
	for name, cc := range map[string]CacheConfig{
		"disable-flag":   {Disable: true},
		"negative-bytes": {MaxBytes: -1},
	} {
		s := New(Config{Workers: 1, Cache: cc})
		if got := len(s.CacheStats()); got != 0 {
			t.Errorf("%s: %d endpoint caches, want 0", name, got)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		s.Shutdown(ctx)
		cancel()
	}
}

// TestPprofGatedByFlag: the profiling routes exist only when EnablePprof
// is set; off (the default) they 404 like any unknown path.
func TestPprofGatedByFlag(t *testing.T) {
	_, off := newTestServer(t, Config{Workers: 1})
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline"} {
		resp, _ := getURL(t, off.URL+path)
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("pprof disabled: GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
	_, on := newTestServer(t, Config{Workers: 1, EnablePprof: true})
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline"} {
		resp, _ := getURL(t, on.URL+path)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("pprof enabled: GET %s = %d, want 200", path, resp.StatusCode)
		}
	}
}

// TestDebugVarsCacheSection: /debug/vars carries per-endpoint cache
// counters plus the aggregate, and they reconcile with the requests made.
func TestDebugVarsCacheSection(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	body := []byte(`{"rows":8,"cols":8,"iters":2}`)
	for i := 0; i < 3; i++ {
		doRequest(t, "POST", ts.URL+"/v1/life/run", body, "")
	}
	resp, raw := getURL(t, ts.URL+"/debug/vars")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/vars status %d", resp.StatusCode)
	}
	var vars map[string]any
	if err := json.Unmarshal(raw, &vars); err != nil {
		t.Fatalf("parse /debug/vars: %v", err)
	}
	if vars["labd.cache_enabled"] != true {
		t.Error("labd.cache_enabled missing or false")
	}
	lifeVars, ok := vars["labd.cache.life"].(map[string]any)
	if !ok {
		t.Fatalf("labd.cache.life missing: %v", vars)
	}
	if hits, misses := lifeVars["hits"].(float64), lifeVars["misses"].(float64); hits != 2 || misses != 1 {
		t.Errorf("life hits/misses = %v/%v, want 2/1", hits, misses)
	}
	if ratio := lifeVars["hit_ratio"].(float64); ratio < 0.6 || ratio > 0.7 {
		t.Errorf("life hit_ratio = %v, want 2/3", ratio)
	}
	if _, ok := vars["labd.cache"].(map[string]any); !ok {
		t.Error("aggregate labd.cache var missing")
	}
}
