package labd

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSchedulerRunsJobs(t *testing.T) {
	s := NewScheduler(4, 8)
	defer s.Shutdown(context.Background())

	var ran atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := s.Submit(context.Background(), func(context.Context) {
				ran.Add(1)
			})
			if err != nil && !errors.Is(err, ErrQueueFull) {
				t.Errorf("submit: %v", err)
			}
		}()
	}
	wg.Wait()
	st := s.Stats()
	if ran.Load() != st.Completed {
		t.Errorf("ran %d but completed counter says %d", ran.Load(), st.Completed)
	}
	if st.Submitted != st.Completed {
		t.Errorf("submitted %d != completed %d with no cancellations", st.Submitted, st.Completed)
	}
	if got := ran.Load() + st.Rejected; got != 50 {
		t.Errorf("completed+rejected = %d, want 50", got)
	}
}

func TestSchedulerQueueFull(t *testing.T) {
	s := NewScheduler(1, 1)
	defer s.Shutdown(context.Background())

	// Wedge the single worker.
	block := make(chan struct{})
	started := make(chan struct{})
	go s.Submit(context.Background(), func(context.Context) {
		close(started)
		<-block
	})
	<-started

	// Fill the queue's single slot.
	done := make(chan struct{})
	go func() {
		s.Submit(context.Background(), func(context.Context) {})
		close(done)
	}()
	// Wait until the filler job is actually queued.
	deadline := time.After(2 * time.Second)
	for s.Stats().QueueLen == 0 {
		select {
		case <-deadline:
			t.Fatal("filler job never queued")
		case <-time.After(time.Millisecond):
		}
	}

	// The next submit must bounce.
	if err := s.Submit(context.Background(), func(context.Context) {}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
	if s.Stats().Rejected != 1 {
		t.Errorf("rejected = %d, want 1", s.Stats().Rejected)
	}

	close(block)
	<-done
}

// TestSchedulerGauges pins the live load gauges: a wedged worker shows up
// in Active, a queued job ratchets the high-watermark, and both settle once
// the work drains (Active back to 0, QueueHWM sticky).
func TestSchedulerGauges(t *testing.T) {
	s := NewScheduler(1, 2)
	defer s.Shutdown(context.Background())

	if st := s.Stats(); st.Active != 0 || st.QueueHWM != 0 {
		t.Fatalf("idle gauges %+v, want Active=0 QueueHWM=0", st)
	}

	// Wedge the single worker so it registers as an active job.
	block := make(chan struct{})
	started := make(chan struct{})
	go s.Submit(context.Background(), func(context.Context) {
		close(started)
		<-block
	})
	<-started
	if got := s.Stats().Active; got != 1 {
		t.Errorf("active = %d with a wedged worker, want 1", got)
	}

	// Queue one more job behind it; the watermark must record the depth.
	done := make(chan struct{})
	go func() {
		s.Submit(context.Background(), func(context.Context) {})
		close(done)
	}()
	deadline := time.After(2 * time.Second)
	for s.Stats().QueueLen == 0 {
		select {
		case <-deadline:
			t.Fatal("second job never queued")
		case <-time.After(time.Millisecond):
		}
	}
	if got := s.Stats().QueueHWM; got < 1 {
		t.Errorf("queue high-watermark = %d with a queued job, want >= 1", got)
	}

	close(block)
	<-done
	st := s.Stats()
	if st.Active != 0 {
		t.Errorf("active = %d after drain, want 0", st.Active)
	}
	if st.QueueHWM < 1 {
		t.Errorf("queue high-watermark reset to %d after drain; it must be sticky", st.QueueHWM)
	}
}

func TestSchedulerSkipsExpiredJobs(t *testing.T) {
	s := NewScheduler(1, 4)
	defer s.Shutdown(context.Background())

	block := make(chan struct{})
	started := make(chan struct{})
	go s.Submit(context.Background(), func(context.Context) {
		close(started)
		<-block
	})
	<-started

	// Queue a job whose context is already canceled; the worker must skip
	// it, never run it.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ranCanceled := make(chan struct{})
	err := s.Submit(ctx, func(context.Context) { close(ranCanceled) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	close(block)

	// Give the worker a chance to (incorrectly) run it.
	waitFor(t, func() bool { return s.Stats().Skipped == 1 })
	select {
	case <-ranCanceled:
		t.Fatal("worker ran a job whose context was canceled")
	default:
	}
}

func TestSchedulerShutdownDrains(t *testing.T) {
	s := NewScheduler(2, 16)

	var ran atomic.Int64
	var wg sync.WaitGroup
	gate := make(chan struct{})
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Submit(context.Background(), func(context.Context) {
				<-gate
				ran.Add(1)
			})
		}()
	}
	// Wait until all 10 are admitted (some queued, some in workers).
	waitFor(t, func() bool { return s.Stats().Submitted == 10 })

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- s.Shutdown(context.Background()) }()

	// New work is eventually refused outright. Until the shutdown lock
	// lands, a probe may be admitted (then expire and be skipped) or
	// bounce off the full queue; give each probe a short deadline so it
	// never blocks on the wedged workers.
	waitFor(t, func() bool {
		probeCtx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
		defer cancel()
		err := s.Submit(probeCtx, func(context.Context) {})
		return errors.Is(err, ErrShuttingDown)
	})

	close(gate) // release the jobs; shutdown must now drain all 10
	wg.Wait()
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if ran.Load() != 10 {
		t.Errorf("drained %d jobs, want all 10", ran.Load())
	}
	if st := s.Stats(); st.Completed != 10 {
		t.Errorf("completed = %d, want 10", st.Completed)
	}
}

func TestSchedulerShutdownIdempotent(t *testing.T) {
	s := NewScheduler(1, 1)
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// waitFor polls cond until it holds or the test deadline approaches.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}
