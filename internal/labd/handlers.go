package labd

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"cs31/internal/asm"
	"cs31/internal/cache"
	"cs31/internal/homework"
	"cs31/internal/life"
	"cs31/internal/memhier"
	"cs31/internal/minic"
	"cs31/internal/survey"
	"cs31/internal/sweep"
	"cs31/internal/vm"
)

// Request-size guardrails: the daemon serves an open classroom, so every
// dimension a request controls is bounded before work is queued.
const (
	maxSourceBytes = 1 << 20 // asm / mini-C source
	maxTraceLen    = 1 << 20 // cache / VM trace entries
	maxGridCells   = 1 << 20 // life rows*cols
	maxLifeIters   = 10_000
	maxLifeThreads = 64
	maxProblems    = 100
	maxStudents    = 10_000
)

// errBadRequest marks simulator/validation failures that map to HTTP 400.
type errBadRequest struct{ err error }

func (e errBadRequest) Error() string { return e.err.Error() }
func (e errBadRequest) Unwrap() error { return e.err }

func badReqf(format string, args ...any) error {
	return errBadRequest{fmt.Errorf(format, args...)}
}

// runMachine executes m within maxSteps instructions, polling ctx between
// chunks so a deadline or client disconnect stops a runaway program.
func runMachine(ctx context.Context, m *asm.Machine, maxSteps int64) error {
	const chunk = 4096
	for done := int64(0); done < maxSteps; done++ {
		if done%chunk == 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			default:
			}
		}
		if err := m.Step(); err != nil {
			if errors.Is(err, asm.ErrExited) {
				return nil
			}
			return err
		}
		if m.Exited {
			return nil
		}
	}
	return fmt.Errorf("exceeded step budget of %d", maxSteps)
}

// --- POST /v1/asm/run -------------------------------------------------

// AsmRunRequest assembles and executes an IA-32-subset program.
type AsmRunRequest struct {
	Source   string `json:"source"`
	Stdin    string `json:"stdin,omitempty"`
	MaxSteps int64  `json:"max_steps,omitempty"` // 0 = server default
}

// AsmRunResponse reports the machine's observable outcome.
type AsmRunResponse struct {
	ExitStatus int32  `json:"exit_status"`
	Stdout     string `json:"stdout"`
	Steps      int64  `json:"steps"`
}

func (s *Server) asmRun(ctx context.Context, req AsmRunRequest) (AsmRunResponse, error) {
	var resp AsmRunResponse
	if req.Source == "" {
		return resp, badReqf("source is required")
	}
	if len(req.Source) > maxSourceBytes {
		return resp, badReqf("source exceeds %d bytes", maxSourceBytes)
	}
	steps := s.cfg.MaxSteps
	if req.MaxSteps > 0 && req.MaxSteps < steps {
		steps = req.MaxSteps
	}
	prog, err := asm.Assemble(req.Source)
	if err != nil {
		return resp, errBadRequest{err}
	}
	m, err := asm.NewMachine(prog)
	if err != nil {
		return resp, errBadRequest{err}
	}
	var out strings.Builder
	m.Stdin = strings.NewReader(req.Stdin)
	m.Stdout = &out
	if err := runMachine(ctx, m, steps); err != nil {
		if ctx.Err() != nil {
			return resp, ctx.Err()
		}
		return resp, errBadRequest{err}
	}
	resp.ExitStatus = m.ExitStatus
	resp.Stdout = out.String()
	resp.Steps = m.Steps
	return resp, nil
}

// --- POST /v1/minic/compile -------------------------------------------

// MinicCompileRequest compiles mini-C source; with Run set it also
// executes the program.
type MinicCompileRequest struct {
	Source   string `json:"source"`
	Run      bool   `json:"run,omitempty"`
	Stdin    string `json:"stdin,omitempty"`
	MaxSteps int64  `json:"max_steps,omitempty"`
}

// MinicCompileResponse carries the generated assembly and, when requested,
// the execution result.
type MinicCompileResponse struct {
	Assembly   string `json:"assembly"`
	ExitStatus *int32 `json:"exit_status,omitempty"`
	Stdout     string `json:"stdout,omitempty"`
	Steps      int64  `json:"steps,omitempty"`
}

func (s *Server) minicCompile(ctx context.Context, req MinicCompileRequest) (MinicCompileResponse, error) {
	var resp MinicCompileResponse
	if req.Source == "" {
		return resp, badReqf("source is required")
	}
	if len(req.Source) > maxSourceBytes {
		return resp, badReqf("source exceeds %d bytes", maxSourceBytes)
	}
	asmSrc, err := minic.Compile(req.Source)
	if err != nil {
		return resp, errBadRequest{err}
	}
	resp.Assembly = asmSrc
	if req.Run {
		run, err := s.asmRun(ctx, AsmRunRequest{
			Source: asmSrc, Stdin: req.Stdin, MaxSteps: req.MaxSteps,
		})
		if err != nil {
			return resp, err
		}
		resp.ExitStatus = &run.ExitStatus
		resp.Stdout = run.Stdout
		resp.Steps = run.Steps
	}
	return resp, nil
}

// --- POST /v1/cache/sim -----------------------------------------------

// TraceAccess is one memory access of a cache trace.
type TraceAccess struct {
	Addr  uint64 `json:"addr"`
	Write bool   `json:"write,omitempty"`
}

// CacheSimRequest replays a trace (explicit or a built-in matrix
// workload) through a configured cache.
type CacheSimRequest struct {
	SizeBytes int    `json:"size_bytes,omitempty"` // default 1024
	BlockSize int    `json:"block_size,omitempty"` // default 16
	Assoc     int    `json:"assoc,omitempty"`      // default 1
	Write     string `json:"write,omitempty"`      // back|through
	Alloc     string `json:"alloc,omitempty"`      // allocate|noallocate
	Repl      string `json:"repl,omitempty"`       // lru|fifo

	Trace    []TraceAccess `json:"trace,omitempty"`
	Workload string        `json:"workload,omitempty"` // rowmajor|colmajor
	Rows     int           `json:"rows,omitempty"`
	Cols     int           `json:"cols,omitempty"`

	TableN int `json:"table_n,omitempty"` // include the first-N access table
}

// CacheSimResponse reports organization and replay statistics.
type CacheSimResponse struct {
	NumSets    int         `json:"num_sets"`
	TagBits    int         `json:"tag_bits"`
	IndexBits  int         `json:"index_bits"`
	OffsetBits int         `json:"offset_bits"`
	Stats      cache.Stats `json:"stats"`
	HitRate    float64     `json:"hit_rate"`
	Table      string      `json:"table,omitempty"`
}

func (s *Server) cacheSim(_ context.Context, req CacheSimRequest) (CacheSimResponse, error) {
	var resp CacheSimResponse
	cfg := cache.Config{SizeBytes: req.SizeBytes, BlockSize: req.BlockSize, Assoc: req.Assoc}
	if cfg.SizeBytes == 0 {
		cfg.SizeBytes = 1024
	}
	if cfg.BlockSize == 0 {
		cfg.BlockSize = 16
	}
	if cfg.Assoc == 0 {
		cfg.Assoc = 1
	}
	switch req.Write {
	case "", "back":
		cfg.Write = cache.WriteBack
	case "through":
		cfg.Write = cache.WriteThrough
	default:
		return resp, badReqf("unknown write policy %q", req.Write)
	}
	switch req.Alloc {
	case "", "allocate":
		cfg.Alloc = cache.WriteAllocate
	case "noallocate":
		cfg.Alloc = cache.NoWriteAllocate
	default:
		return resp, badReqf("unknown alloc policy %q", req.Alloc)
	}
	switch req.Repl {
	case "", "lru":
		cfg.Repl = cache.LRU
	case "fifo":
		cfg.Repl = cache.FIFO
	default:
		return resp, badReqf("unknown replacement policy %q", req.Repl)
	}

	trace, err := buildTrace(req)
	if err != nil {
		return resp, err
	}

	c, err := cache.New(cfg)
	if err != nil {
		return resp, errBadRequest{err}
	}
	if req.TableN > 0 {
		table, err := cache.TraceTable(cfg, trace, req.TableN)
		if err != nil {
			return resp, errBadRequest{err}
		}
		resp.Table = table
	}
	resp.Stats = c.RunTrace(trace)
	resp.HitRate = resp.Stats.HitRate()
	resp.NumSets = cfg.NumSets()
	resp.IndexBits = cfg.IndexBits()
	resp.OffsetBits = cfg.OffsetBits()
	resp.TagBits = 32 - resp.IndexBits - resp.OffsetBits
	return resp, nil
}

func buildTrace(req CacheSimRequest) ([]memhier.Access, error) {
	switch req.Workload {
	case "":
		if len(req.Trace) == 0 {
			return nil, badReqf("provide a trace or a workload")
		}
		if len(req.Trace) > maxTraceLen {
			return nil, badReqf("trace exceeds %d accesses", maxTraceLen)
		}
		trace := make([]memhier.Access, len(req.Trace))
		for i, a := range req.Trace {
			trace[i] = memhier.Access{Addr: a.Addr, Write: a.Write}
		}
		return trace, nil
	case "rowmajor", "colmajor":
		rows, cols := req.Rows, req.Cols
		if rows == 0 {
			rows = 64
		}
		if cols == 0 {
			cols = 64
		}
		if rows < 1 || cols < 1 || rows*cols > maxTraceLen {
			return nil, badReqf("matrix %dx%d out of range", rows, cols)
		}
		if req.Workload == "rowmajor" {
			return memhier.MatrixTraceRowMajor(0, rows, cols, 4), nil
		}
		return memhier.MatrixTraceColMajor(0, rows, cols, 4), nil
	default:
		return nil, badReqf("unknown workload %q", req.Workload)
	}
}

// --- POST /v1/vm/sim --------------------------------------------------

// VMAccess is one per-process virtual access of a VM trace.
type VMAccess struct {
	Pid   int    `json:"pid"`
	Addr  uint64 `json:"addr"`
	Write bool   `json:"write,omitempty"`
}

// VMSimRequest replays a multi-process trace through the VM simulator.
type VMSimRequest struct {
	PageSize  uint64     `json:"page_size,omitempty"`  // default 256
	NumFrames int        `json:"num_frames,omitempty"` // default 8
	TLBSize   int        `json:"tlb_size,omitempty"`   // default 4
	NumPages  uint64     `json:"num_pages,omitempty"`  // default 64
	Trace     []VMAccess `json:"trace"`
}

// VMSimResponse reports translation statistics and the cost model.
type VMSimResponse struct {
	Stats             vm.Stats `json:"stats"`
	FaultRate         float64  `json:"fault_rate"`
	TLBHitRate        float64  `json:"tlb_hit_rate"`
	ContextSwitches   int64    `json:"context_switches"`
	EffectiveAccessNs float64  `json:"effective_access_ns"` // RAM 100ns, fault 8ms
}

func (s *Server) vmSim(_ context.Context, req VMSimRequest) (VMSimResponse, error) {
	var resp VMSimResponse
	cfg := vm.Config{
		PageSize: req.PageSize, NumFrames: req.NumFrames,
		TLBSize: req.TLBSize, NumPages: req.NumPages,
	}
	if cfg.PageSize == 0 {
		cfg.PageSize = 256
	}
	if cfg.NumFrames == 0 {
		cfg.NumFrames = 8
	}
	if cfg.TLBSize == 0 {
		cfg.TLBSize = 4
	}
	if cfg.NumPages == 0 {
		cfg.NumPages = 64
	}
	if len(req.Trace) == 0 {
		return resp, badReqf("trace is required")
	}
	if len(req.Trace) > maxTraceLen {
		return resp, badReqf("trace exceeds %d accesses", maxTraceLen)
	}
	sys, err := vm.New(cfg)
	if err != nil {
		return resp, errBadRequest{err}
	}
	known := map[vm.Pid]bool{}
	for i, a := range req.Trace {
		pid := vm.Pid(a.Pid)
		if !known[pid] {
			if err := sys.AddProcess(pid); err != nil {
				return resp, badReqf("access %d: %v", i, err)
			}
			known[pid] = true
		}
		if sys.Current() != pid {
			if err := sys.Switch(pid); err != nil {
				return resp, badReqf("access %d: %v", i, err)
			}
		}
		if _, err := sys.Access(a.Addr, a.Write); err != nil {
			return resp, badReqf("access %d: %v", i, err)
		}
	}
	resp.Stats = sys.Stats()
	resp.FaultRate = resp.Stats.FaultRate()
	resp.TLBHitRate = resp.Stats.TLBHitRate()
	resp.ContextSwitches = int64(sys.ContextSwitches)
	resp.EffectiveAccessNs = sys.EffectiveAccessTime(100, 8_000_000)
	return resp, nil
}

// --- POST /v1/life/run ------------------------------------------------

// LifeRunRequest advances a random Game of Life grid, serially or on a
// worker pool, optionally measuring the Lab 10 speedup table. Engine
// "dist" runs the message-passing DistRunner (Threads become ranks), so
// the speedup table measures rank scaling with halo-exchange costs in.
type LifeRunRequest struct {
	Rows      int     `json:"rows,omitempty"`      // default 32
	Cols      int     `json:"cols,omitempty"`      // default 32
	Iters     int     `json:"iters,omitempty"`     // default 20
	Seed      int64   `json:"seed,omitempty"`      // default 31
	Density   float64 `json:"density,omitempty"`   // default 0.3
	Threads   int     `json:"threads,omitempty"`   // <=1 runs the serial engine
	Partition string  `json:"partition,omitempty"` // rows|cols
	Engine    string  `json:"engine,omitempty"`    // parallel (default) | dist
	Packed    bool    `json:"packed,omitempty"`    // advance through the bit-packed SWAR kernel
	Speedup   bool    `json:"speedup,omitempty"`   // measure 1..Threads scaling
}

// LifeScalingPoint is one row of the speedup report.
type LifeScalingPoint struct {
	Threads    int     `json:"threads"`
	ElapsedMs  float64 `json:"elapsed_ms"`
	Speedup    float64 `json:"speedup"`
	Efficiency float64 `json:"efficiency"`
}

// LifeRunResponse reports the final generation and, when measured, the
// scaling table.
type LifeRunResponse struct {
	Rows        int                `json:"rows"`
	Cols        int                `json:"cols"`
	Generations int                `json:"generations"`
	Population  int                `json:"population"`
	LiveUpdates int64              `json:"live_updates,omitempty"`
	Scaling     []LifeScalingPoint `json:"scaling,omitempty"`
}

func (s *Server) lifeRun(ctx context.Context, req LifeRunRequest) (LifeRunResponse, error) {
	var resp LifeRunResponse
	rows, cols, iters := req.Rows, req.Cols, req.Iters
	if rows == 0 {
		rows = 32
	}
	if cols == 0 {
		cols = 32
	}
	if iters == 0 {
		iters = 20
	}
	seed := req.Seed
	if seed == 0 {
		seed = 31
	}
	density := req.Density
	if density == 0 {
		density = 0.3
	}
	if rows < 1 || cols < 1 || rows*cols > maxGridCells {
		return resp, badReqf("grid %dx%d out of range (max %d cells)", rows, cols, maxGridCells)
	}
	if iters < 1 || iters > maxLifeIters {
		return resp, badReqf("iters %d out of range [1,%d]", iters, maxLifeIters)
	}
	if req.Threads > maxLifeThreads {
		return resp, badReqf("threads %d exceeds max %d", req.Threads, maxLifeThreads)
	}
	if density < 0 || density > 1 {
		return resp, badReqf("density %v outside [0,1]", density)
	}
	part := life.ByRows
	switch req.Partition {
	case "", "rows":
	case "cols":
		part = life.ByCols
	default:
		return resp, badReqf("unknown partition %q", req.Partition)
	}
	var dist bool
	switch req.Engine {
	case "", "parallel":
	case "dist":
		if part != life.ByRows {
			return resp, badReqf("dist engine shards by rows only")
		}
		dist = true
	default:
		return resp, badReqf("unknown engine %q", req.Engine)
	}

	g, err := life.NewGrid(rows, cols, life.Torus)
	if err != nil {
		return resp, errBadRequest{err}
	}
	g.Randomize(seed, density)
	if req.Packed {
		// Randomize fills the byte board first, so packed and byte requests
		// with the same seed share a starting board; Clone preserves the
		// representation, so the speedup series below inherits it.
		g.SetPacked(true)
	}

	if req.Speedup && req.Threads > 1 {
		counts := []int{1}
		for t := 2; t < req.Threads; t *= 2 {
			counts = append(counts, t)
		}
		counts = append(counts, req.Threads)
		template := g.Clone()
		// The timed series runs through the sweep engine, which sequences
		// the points (overlapping measurements would contend) and polls ctx
		// between them, so a canceled request stops mid-series.
		points, err := sweep.MeasureScaling(ctx, counts, func(ctx context.Context, threads int) error {
			gg := template.Clone()
			_, err := runLifeCtx(ctx, gg, threads, part, dist, iters)
			return err
		})
		if err != nil {
			if ctx.Err() != nil {
				return resp, ctx.Err()
			}
			return resp, errBadRequest{err}
		}
		for _, p := range points {
			resp.Scaling = append(resp.Scaling, LifeScalingPoint{
				Threads:    p.Threads,
				ElapsedMs:  float64(p.Elapsed) / float64(time.Millisecond),
				Speedup:    p.Speedup,
				Efficiency: p.Efficiency,
			})
		}
	}

	live, err := runLifeCtx(ctx, g, req.Threads, part, dist, iters)
	if err != nil {
		if ctx.Err() != nil {
			return resp, ctx.Err()
		}
		return resp, errBadRequest{err}
	}
	resp.LiveUpdates = live
	resp.Rows, resp.Cols = rows, cols
	resp.Generations = g.Generation
	resp.Population = g.Population()
	return resp, nil
}

// runLifeCtx advances the grid by iters generations under the request
// context. The parallel and dist engines take ctx directly — a timed-out
// or canceled request aborts their worlds mid-run and joins every rank and
// worker goroutine before returning, so the daemon sheds the whole
// goroutine tree within roughly one generation of the deadline. The serial
// engine has no internal cancellation points, so it still runs in chunks
// with a ctx poll between them. Returns accumulated live updates
// (parallel/dist runs only; the serial engine doesn't track them).
func runLifeCtx(ctx context.Context, g *life.Grid, threads int, part life.Partition, dist bool, iters int) (int64, error) {
	switch {
	case threads <= 1:
		const chunk = 8
		for done := 0; done < iters; {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			n := chunk
			if iters-done < n {
				n = iters - done
			}
			g.Run(n)
			done += n
		}
		return 0, nil
	case dist:
		dr := &life.DistRunner{G: g, Ranks: threads, Partition: part}
		st, err := dr.RunCtx(ctx, iters)
		if err != nil {
			return 0, err
		}
		return st.LiveUpdates, nil
	default:
		pr := &life.ParallelRunner{G: g, Threads: threads, Partition: part}
		st, err := pr.RunCtx(ctx, iters)
		if err != nil {
			return 0, err
		}
		return st.LiveUpdates, nil
	}
}

// --- GET /v1/homework -------------------------------------------------

// HomeworkProblem is one generated problem with its computed answer key.
type HomeworkProblem struct {
	Topic    string `json:"topic"`
	Prompt   string `json:"prompt"`
	Solution string `json:"solution,omitempty"`
}

// HomeworkResponse lists topics (no topic given) or generated problems.
type HomeworkResponse struct {
	Topics   []string          `json:"topics,omitempty"`
	Problems []HomeworkProblem `json:"problems,omitempty"`
}

func (s *Server) homeworkGen(_ context.Context, topic string, seed int64, n int, answers bool) (HomeworkResponse, error) {
	var resp HomeworkResponse
	if topic == "" {
		resp.Topics = homework.Topics()
		return resp, nil
	}
	if n < 1 || n > maxProblems {
		return resp, badReqf("n %d out of range [1,%d]", n, maxProblems)
	}
	probs, err := homework.Generate(topic, seed, n)
	if err != nil {
		return resp, errBadRequest{err}
	}
	for _, p := range probs {
		hp := HomeworkProblem{Topic: p.Topic, Prompt: p.Prompt}
		if answers {
			hp.Solution = p.Solution
		}
		resp.Problems = append(resp.Problems, hp)
	}
	return resp, nil
}

// --- GET /v1/survey/figure1 -------------------------------------------

// SurveyFigureResponse reproduces Figure 1 for a synthetic cohort.
type SurveyFigureResponse struct {
	Students      int                `json:"students"`
	Seed          int64              `json:"seed"`
	Stats         []survey.TopicStat `json:"stats"`
	Figure        string             `json:"figure"`
	ShapeProblems []string           `json:"shape_problems,omitempty"`
}

func (s *Server) surveyFigure1(_ context.Context, seed int64, students int) (SurveyFigureResponse, error) {
	var resp SurveyFigureResponse
	if students < 1 || students > maxStudents {
		return resp, badReqf("students %d out of range [1,%d]", students, maxStudents)
	}
	cohort := survey.SyntheticCohort(seed, students)
	stats, err := cohort.Aggregate()
	if err != nil {
		return resp, errBadRequest{err}
	}
	resp.Students = students
	resp.Seed = seed
	resp.Stats = stats
	resp.Figure = survey.RenderFigure1(stats)
	resp.ShapeProblems = survey.CheckPaperShape(cohort.Topics, stats)
	return resp, nil
}
