package labd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"time"

	"cs31/internal/memo"
	"cs31/internal/obs"
)

// Config parameterizes the daemon. Zero values select defaults sized to
// the host: GOMAXPROCS workers, a queue 4x as deep, 10s request budget,
// a DefaultCacheBytes memoization budget.
type Config struct {
	Workers        int           // worker pool size
	QueueDepth     int           // bounded queue capacity
	DefaultTimeout time.Duration // per-request deadline when the client sets none
	MaxSteps       int64         // hard cap on machine instruction budgets
	Logger         *slog.Logger  // structured request log; nil disables
	Cache          CacheConfig   // response memoization sizing
	EnablePprof    bool          // mount net/http/pprof under /debug/pprof/

	// Trace, when non-nil, records request/marshal spans on an "http"
	// lane and per-worker queue-wait/handler spans, exportable as a
	// Chrome trace-event timeline via obs.Trace.WriteChromeTrace.
	Trace *obs.Trace

	// DisableMetrics turns off the Prometheus registry and the
	// GET /metrics endpoint (trace recording, if configured, stays on).
	DisableMetrics bool
}

func (c *Config) fillDefaults() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxSteps <= 0 {
		c.MaxSteps = 10_000_000
	}
	c.Cache.fillDefaults()
}

// Server is the lab-service daemon: an http.Handler whose /v1 endpoints
// funnel simulator jobs through the bounded queue into the worker pool.
type Server struct {
	cfg     Config
	sched   *Scheduler
	metrics *Metrics
	mux     *http.ServeMux
	caches  map[string]*memo.Cache // per-endpoint response memoization
	obs     *serverObs             // nil when metrics and tracing are both off
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	cfg.fillDefaults()
	s := &Server{
		cfg:     cfg,
		sched:   NewScheduler(cfg.Workers, cfg.QueueDepth),
		metrics: NewMetrics(),
		mux:     http.NewServeMux(),
		caches:  make(map[string]*memo.Cache),
	}
	s.initCaches()
	s.obs = newServerObs(&s.cfg)
	if s.obs != nil {
		s.registerScrapeFuncs()
		s.sched.instrument(s.obs.reg, s.obs.trace)
	}
	s.routes()
	return s
}

func (s *Server) routes() {
	registerJSON(s, "POST /v1/asm/run", "asm", asmKey, s.asmRun)
	registerJSON(s, "POST /v1/minic/compile", "minic", minicKey, s.minicCompile)
	registerJSON(s, "POST /v1/cache/sim", "cache", cacheSimKey, s.cacheSim)
	registerJSON(s, "POST /v1/vm/sim", "vm", vmSimKey, s.vmSim)
	registerJSON(s, "POST /v1/life/run", "life", lifeKey, s.lifeRun)
	s.mux.HandleFunc("GET /v1/homework", func(w http.ResponseWriter, r *http.Request) {
		markPattern(w, "GET /v1/homework")
		q := r.URL.Query()
		topic := q.Get("topic")
		seed, err := queryInt64("seed", q.Get("seed"), 31)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
			return
		}
		n64, err := queryInt64("n", q.Get("n"), 1)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
			return
		}
		answers := q.Get("answers") != "false"
		key := homeworkKey(topic, seed, int(n64), answers)
		s.serveCached(w, r, "homework", key, true, func(ctx context.Context) (any, error) {
			return s.homeworkGen(ctx, topic, seed, int(n64), answers)
		})
	})
	s.mux.HandleFunc("GET /v1/survey/figure1", func(w http.ResponseWriter, r *http.Request) {
		markPattern(w, "GET /v1/survey/figure1")
		seed, err := queryInt64("seed", r.URL.Query().Get("seed"), 2022)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
			return
		}
		st64, err := queryInt64("students", r.URL.Query().Get("students"), 120)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
			return
		}
		key := surveyKey(seed, int(st64))
		s.serveCached(w, r, "survey", key, true, func(ctx context.Context) (any, error) {
			return s.surveyFigure1(ctx, seed, int(st64))
		})
	})
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		markPattern(w, "GET /healthz")
		s.healthz(w, r)
	})
	s.mux.HandleFunc("GET /debug/vars", func(w http.ResponseWriter, r *http.Request) {
		markPattern(w, "GET /debug/vars")
		s.debugVars(w, r)
	})
	if s.obs != nil && s.obs.reg != nil {
		s.mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
			markPattern(w, "GET /metrics")
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			_ = s.obs.reg.WritePrometheus(w)
		})
	}
	if s.cfg.EnablePprof {
		// Profiling is opt-in (-pprof): the handlers expose goroutine
		// dumps and CPU profiles, which an open classroom deployment
		// should not serve by default. Unregistered routes 404.
		s.mux.HandleFunc("GET /debug/pprof/", func(w http.ResponseWriter, r *http.Request) {
			markPattern(w, "GET /debug/pprof/")
			pprof.Index(w, r)
		})
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
}

// queryInt64 parses an optional integer query parameter. A missing or
// empty value selects the default; a present-but-malformed one is a
// client error, not a silent fallback.
func queryInt64(name, s string, def int64) (int64, error) {
	if s == "" {
		return def, nil
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, badReqf("query parameter %q: %q is not an integer", name, s)
	}
	return v, nil
}

// Handler returns the daemon's root handler with metrics and logging
// middleware applied.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		var reqNum uint64
		var reqID string
		if s.obs != nil {
			// Stamp the ID before the handler runs so cached responses
			// carry it too and the log line, the response header, and
			// the trace span all agree.
			reqNum, reqID = s.obs.nextRequestID()
			w.Header().Set(requestIDHeader, reqID)
		}
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		s.mux.ServeHTTP(rec, r)
		d := time.Since(start)

		// Metrics are keyed by the route pattern that matched, so
		// /v1/asm/run and /v1/asm/run?x=y aggregate together and unknown
		// paths roll up under one bucket.
		pattern := rec.pattern
		if pattern == "" {
			pattern = "(unmatched)"
		}
		s.metrics.Observe(pattern, rec.status, d)
		if s.obs != nil {
			s.obs.observeRequest(pattern, rec.status, start, reqNum)
		}
		if s.cfg.Logger != nil {
			s.cfg.Logger.Info("request",
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.String("route", pattern),
				slog.Int("status", rec.status),
				slog.Int64("bytes", rec.bytes),
				slog.Float64("duration_ms", float64(d)/float64(time.Millisecond)),
				slog.String("remote", r.RemoteAddr),
				slog.String("request_id", reqID),
				slog.String("cache", rec.Header().Get(cacheHeader)),
			)
		}
	})
}

// Shutdown stops accepting jobs and drains the queue and workers.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.sched.Shutdown(ctx)
}

// Metrics exposes the server's counters (for tests and embedders).
func (s *Server) Metrics() *Metrics { return s.metrics }

// SchedStats snapshots the scheduler counters.
func (s *Server) SchedStats() SchedStats { return s.sched.Stats() }

// statusRecorder captures the status code, byte count, and matched route
// of a served request.
type statusRecorder struct {
	http.ResponseWriter
	status  int
	bytes   int64
	pattern string
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	n, err := r.ResponseWriter.Write(b)
	r.bytes += int64(n)
	return n, err
}

// errorBody is the JSON error envelope every non-2xx response carries.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// httpStatusFor maps handler/scheduler errors onto HTTP statuses.
func httpStatusFor(err error) int {
	var br errBadRequest
	switch {
	case errors.As(err, &br):
		return http.StatusBadRequest
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrShuttingDown):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// Client went away; nobody reads this, but the log should not
		// claim success.
		return 499
	default:
		return http.StatusInternalServerError
	}
}

// schedule funnels prepared work through the bounded queue into the
// worker pool and renders the outcome. fn closes only over values decoded
// in the HTTP goroutine — never the live *http.Request — because on a
// timeout the worker may still be running after ServeHTTP returns.
func (s *Server) schedule(w http.ResponseWriter, r *http.Request, fn func(ctx context.Context) (any, error)) {
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.DefaultTimeout)
	defer cancel()

	var resp any
	var jobErr error
	err := s.sched.Submit(ctx, func(ctx context.Context) {
		resp, jobErr = fn(ctx)
	})
	if err == nil {
		err = jobErr
	}
	if err != nil {
		s.writeError(w, err)
		return
	}
	if s.obs != nil {
		t0 := time.Now()
		writeJSON(w, http.StatusOK, resp)
		s.obs.observeMarshal(t0)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// writeError renders err with its mapped status; queue-full responses
// carry backpressure guidance: the retry hint derives from the actual
// backlog so clients spread out proportionally to load instead of
// hammering back in lockstep one second later.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	status := httpStatusFor(err)
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", strconv.Itoa(s.sched.RetryAfter()))
	}
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// markPattern records the matched route on the middleware's recorder so
// metrics aggregate by pattern instead of raw path.
func markPattern(w http.ResponseWriter, pattern string) {
	if sr, ok := w.(*statusRecorder); ok {
		sr.pattern = pattern
	}
}

// registerJSON adapts a typed request/response handler onto the memoized
// queued path: decode the JSON body (1 MiB cap) up front, derive the
// request's canonical cache key, then serve from cache or run the
// simulator work through the pool and encode the reply.
func registerJSON[Req, Resp any](s *Server, pattern, endpoint string, keyFn func(*Server, Req) (uint64, bool), fn func(ctx context.Context, req Req) (Resp, error)) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		markPattern(w, pattern)
		var req Req
		body := http.MaxBytesReader(nil, r.Body, 1<<20)
		dec := json.NewDecoder(body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			status := http.StatusBadRequest
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				status = http.StatusRequestEntityTooLarge
			}
			writeJSON(w, status, errorBody{Error: "decode request: " + err.Error()})
			return
		}
		key, cacheable := keyFn(s, req)
		s.serveCached(w, r, endpoint, key, cacheable, func(ctx context.Context) (any, error) {
			return fn(ctx, req)
		})
	})
}

// healthzBody is the GET /healthz response.
type healthzBody struct {
	Status   string `json:"status"`
	Workers  int    `json:"workers"`
	QueueLen int    `json:"queue_len"`
	QueueCap int    `json:"queue_cap"`
	UptimeMs int64  `json:"uptime_ms"`
}

func (s *Server) healthz(w http.ResponseWriter, _ *http.Request) {
	st := s.sched.Stats()
	writeJSON(w, http.StatusOK, healthzBody{
		Status:   "ok",
		Workers:  st.Workers,
		QueueLen: st.QueueLen,
		QueueCap: st.QueueCap,
		UptimeMs: s.metrics.Uptime().Milliseconds(),
	})
}

// debugVars renders the daemon's counters in expvar's flat-JSON shape:
// one "labd.*" key per var. The registry is per-server rather than
// process-global so concurrent servers (tests) don't collide.
func (s *Server) debugVars(w http.ResponseWriter, _ *http.Request) {
	sched := s.sched.Stats()
	vars := map[string]any{
		"labd.scheduler": map[string]int64{
			"submitted": sched.Submitted,
			"rejected":  sched.Rejected,
			"completed": sched.Completed,
			"skipped":   sched.Skipped,
		},
		"labd.workers":        sched.Workers,
		"labd.queue_cap":      sched.QueueCap,
		"labd.queue_len":      sched.QueueLen,
		"labd.queue_hwm":      sched.QueueHWM,
		"labd.active_jobs":    sched.Active,
		"labd.uptime_ms":      s.metrics.Uptime().Milliseconds(),
		"labd.total_requests": s.metrics.TotalRequests(),
	}
	for _, ep := range s.metrics.Snapshot() {
		vars[fmt.Sprintf("labd.endpoint.%s", ep.Endpoint)] = ep
	}
	vars["labd.cache_enabled"] = len(s.caches) > 0
	if snaps := s.CacheStats(); len(snaps) > 0 {
		var total CacheSnapshot
		for _, cs := range snaps {
			vars["labd.cache."+cs.Endpoint] = cs
			total.Hits += cs.Hits
			total.Misses += cs.Misses
			total.Coalesced += cs.Coalesced
			total.Evictions += cs.Evictions
			total.Entries += cs.Entries
			total.Bytes += cs.Bytes
			total.Capacity += cs.Capacity
		}
		if n := total.Hits + total.Misses + total.Coalesced; n > 0 {
			total.HitRatio = float64(total.Hits+total.Coalesced) / float64(n)
		}
		total.Endpoint = "(all)"
		vars["labd.cache"] = total
	}
	writeJSON(w, http.StatusOK, vars)
}
