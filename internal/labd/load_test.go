package labd

// The capstone test: the daemon is itself the course's parallel program,
// and this is its Lab 10 stress harness. Hundreds of concurrent mixed
// requests hit a small worker pool behind a small bounded queue, and the
// accounting must reconcile exactly: every request is answered exactly
// once, queue-full requests get 429, the expvar counters sum to the
// requests served, and shutdown drains everything in flight. Run with
// -race; the scheduler, metrics, and handlers are all exercised in
// parallel here.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// loadRequest issues one request of the given kind and returns the final
// HTTP status plus the endpoint metric key it should be accounted under.
func loadRequest(t *testing.T, baseURL string, kind int) (status int, endpoint string) {
	t.Helper()
	switch kind % 7 {
	case 0:
		resp, _ := postJSON(t, baseURL+"/v1/asm/run", AsmRunRequest{
			Source: "main:\n    movl $0, %ebx\n    movl $1, %eax\n    int $0x80\n",
		})
		return resp.StatusCode, "POST /v1/asm/run"
	case 1:
		resp, _ := postJSON(t, baseURL+"/v1/minic/compile", MinicCompileRequest{
			Source: "int main() { return 3; }",
		})
		return resp.StatusCode, "POST /v1/minic/compile"
	case 2:
		resp, _ := postJSON(t, baseURL+"/v1/cache/sim", CacheSimRequest{
			SizeBytes: 1024, BlockSize: 64, Workload: "colmajor", Rows: 32, Cols: 32,
		})
		return resp.StatusCode, "POST /v1/cache/sim"
	case 3:
		resp, _ := postJSON(t, baseURL+"/v1/vm/sim", VMSimRequest{
			Trace: []VMAccess{{Pid: 1, Addr: 0}, {Pid: 2, Addr: 512}, {Pid: 1, Addr: 1024}},
		})
		return resp.StatusCode, "POST /v1/vm/sim"
	case 4:
		resp, _ := postJSON(t, baseURL+"/v1/life/run", LifeRunRequest{
			Rows: 24, Cols: 24, Iters: 6, Threads: 2,
		})
		return resp.StatusCode, "POST /v1/life/run"
	case 5:
		resp, _ := getURL(t, baseURL+"/v1/homework?topic=binary-conversion&n=1&seed=9")
		return resp.StatusCode, "GET /v1/homework"
	default:
		resp, _ := getURL(t, baseURL+"/v1/survey/figure1?students=30")
		return resp.StatusCode, "GET /v1/survey/figure1"
	}
}

func TestLoadMixedConcurrentRequests(t *testing.T) {
	const totalRequests = 280

	// Memoization off: this test's claims are about the scheduler — every
	// request submits or is rejected, the queue overflows under pressure —
	// and a cache would collapse the 7 identical request groups into 7
	// computes. TestLoadCachedMixedRequests covers the memoized path.
	s, ts := newTestServer(t, Config{
		Workers:        4,
		QueueDepth:     8,
		DefaultTimeout: 30 * time.Second,
		Cache:          CacheConfig{Disable: true},
	})

	type tally struct {
		mu       sync.Mutex
		byStatus map[int]int
		byEP     map[string]map[int]int
	}
	tl := &tally{byStatus: map[int]int{}, byEP: map[string]map[int]int{}}

	var wg sync.WaitGroup
	for i := 0; i < totalRequests; i++ {
		wg.Add(1)
		go func(kind int) {
			defer wg.Done()
			status, ep := loadRequest(t, ts.URL, kind)
			tl.mu.Lock()
			defer tl.mu.Unlock()
			tl.byStatus[status]++
			if tl.byEP[ep] == nil {
				tl.byEP[ep] = map[int]int{}
			}
			tl.byEP[ep][status]++
		}(i)
	}
	wg.Wait()

	// Every request was answered exactly once, with 200 or 429 only.
	answered := 0
	for status, n := range tl.byStatus {
		answered += n
		if status != http.StatusOK && status != http.StatusTooManyRequests {
			t.Errorf("unexpected status %d x%d", status, n)
		}
	}
	if answered != totalRequests {
		t.Fatalf("answered %d requests, want %d", answered, totalRequests)
	}
	if tl.byStatus[http.StatusOK] == 0 {
		t.Error("no request succeeded")
	}
	if tl.byStatus[http.StatusTooManyRequests] == 0 {
		t.Error("queue never overflowed — backpressure untested; shrink the pool")
	}

	// Scheduler accounting: nothing lost, nothing double-served. Each
	// request was either admitted (and, with no timeouts, completed) or
	// rejected with 429.
	st := s.SchedStats()
	if st.Submitted+st.Rejected != totalRequests {
		t.Errorf("submitted %d + rejected %d != %d", st.Submitted, st.Rejected, totalRequests)
	}
	if st.Skipped != 0 {
		t.Errorf("skipped = %d, want 0 (no request timed out)", st.Skipped)
	}
	if st.Completed != st.Submitted {
		t.Errorf("completed %d != submitted %d", st.Completed, st.Submitted)
	}
	if int(st.Completed) != tl.byStatus[http.StatusOK] {
		t.Errorf("completed %d != client-observed 200s %d", st.Completed, tl.byStatus[http.StatusOK])
	}
	if int(st.Rejected) != tl.byStatus[http.StatusTooManyRequests] {
		t.Errorf("rejected %d != client-observed 429s %d", st.Rejected, tl.byStatus[http.StatusTooManyRequests])
	}

	// The metrics layer saw exactly the issued requests.
	if got := s.Metrics().TotalRequests(); got != totalRequests {
		t.Errorf("metrics total = %d, want %d", got, totalRequests)
	}

	// The expvar surface reconciles too: per-endpoint counters summed
	// across /v1 routes equal the requests served, and per-status counts
	// match what the clients saw.
	resp, raw := getURL(t, ts.URL+"/debug/vars")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/vars status %d", resp.StatusCode)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(raw, &vars); err != nil {
		t.Fatalf("parse /debug/vars: %v", err)
	}
	var expvarTotal int64
	for key, v := range vars {
		name, ok := strings.CutPrefix(key, "labd.endpoint.")
		if !ok || !strings.Contains(name, "/v1/") {
			continue
		}
		var ep EndpointSnapshot
		if err := json.Unmarshal(v, &ep); err != nil {
			t.Fatalf("parse %s: %v", key, err)
		}
		expvarTotal += ep.Requests
		for status, clientCount := range tl.byEP[name] {
			if got := ep.ByStatus[fmt.Sprint(status)]; got != int64(clientCount) {
				t.Errorf("%s status %d: expvar %d, clients saw %d", name, status, got, clientCount)
			}
		}
	}
	if expvarTotal != totalRequests {
		t.Errorf("expvar endpoint counters sum to %d, want %d", expvarTotal, totalRequests)
	}
}

func TestShutdownDrainsInFlightJobs(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 16, DefaultTimeout: 30 * time.Second})
	ts := newUnmanagedServer(t, s)

	// A program slow enough (~600k steps) that jobs are still queued and
	// running when shutdown begins.
	slow := AsmRunRequest{Source: `main:
    movl $200000, %ecx
loop:
    decl %ecx
    cmpl $0, %ecx
    jne loop
    movl $1, %eax
    movl $0, %ebx
    int $0x80
`}

	const jobs = 10
	statuses := make(chan int, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// A distinct step budget per job keeps the memoization layer
			// from coalescing them: the drain claim is about ten separate
			// jobs in the scheduler, not one flight with nine waiters.
			req := slow
			req.MaxSteps = int64(700_000 + i)
			resp, _ := postJSON(t, ts.URL+"/v1/asm/run", req)
			statuses <- resp.StatusCode
		}(i)
	}

	// Wait until every job is inside the scheduler, then pull the plug.
	waitFor(t, func() bool { return s.SchedStats().Submitted == jobs })
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	wg.Wait()
	close(statuses)
	for status := range statuses {
		if status != http.StatusOK {
			t.Errorf("in-flight job answered %d during drain, want 200", status)
		}
	}
	st := s.SchedStats()
	if st.Completed != jobs {
		t.Errorf("drained %d of %d in-flight jobs", st.Completed, jobs)
	}

	// After the drain, new work is refused with 503.
	resp, _ := postJSON(t, ts.URL+"/v1/asm/run", slow)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain status %d, want 503", resp.StatusCode)
	}
}

// cachedLoadRequest issues one request of the given kind against baseURL.
// Repeats (unique=false) use one fixed request per kind — the classroom
// pattern of whole sections submitting identical work — while unique
// requests fold the discriminator d into a request field so every one is
// a genuine cache miss. Returns the HTTP status, the response body, and a
// replay key identifying the request for the twin-server differential.
func cachedLoadRequest(t *testing.T, baseURL string, kind int, unique bool, d int) (int, []byte, string) {
	t.Helper()
	post := func(path string, body any) (int, []byte, string) {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, got := postJSON(t, baseURL+path, body)
		return resp.StatusCode, got, "POST " + path + " " + string(raw)
	}
	get := func(path string) (int, []byte, string) {
		resp, got := getURL(t, baseURL+path)
		return resp.StatusCode, got, "GET " + path
	}
	if !unique {
		d = 0
	}
	switch kind % 7 {
	case 0:
		return post("/v1/asm/run", AsmRunRequest{
			Source: fmt.Sprintf("main:\n    movl $%d, %%ebx\n    movl $1, %%eax\n    int $0x80\n", d%100),
		})
	case 1:
		return post("/v1/minic/compile", MinicCompileRequest{
			Source: fmt.Sprintf("int main() { return %d; }", d%100), Run: true,
		})
	case 2:
		return post("/v1/cache/sim", CacheSimRequest{
			Workload: "colmajor", Rows: 16 + d, Cols: 16,
		})
	case 3:
		// d folds into the page index (64-page default address space).
		return post("/v1/vm/sim", VMSimRequest{
			Trace: []VMAccess{{Pid: 1, Addr: uint64(d%64) * 256}, {Pid: 2, Addr: 512}, {Pid: 1, Addr: 1024}},
		})
	case 4:
		return post("/v1/life/run", LifeRunRequest{
			Rows: 16, Cols: 16, Iters: 4, Threads: 2, Seed: int64(1000 + d),
		})
	case 5:
		return get(fmt.Sprintf("/v1/homework?topic=binary-conversion&n=1&seed=%d", 1000+d))
	default:
		return get(fmt.Sprintf("/v1/survey/figure1?students=20&seed=%d", 1000+d))
	}
}

// TestLoadCachedMixedRequests is the memoized counterpart of the mixed
// load test: 280 concurrent requests, ~70% of them repeats of 7 fixed
// requests, against a cache-enabled server. Every response must be
// byte-identical to a cache-disabled twin's answer for the same request,
// the aggregate hit ratio must clear 0.5, and the /debug/vars cache
// counters must reconcile exactly with the requests issued.
func TestLoadCachedMixedRequests(t *testing.T) {
	const totalRequests = 280

	// Queues deep enough that nothing bounces: this test's claims are
	// about cache correctness under concurrency, and a 429 has no body to
	// compare. Backpressure is TestLoadMixedConcurrentRequests's job.
	s, ts := newTestServer(t, Config{
		Workers: 4, QueueDepth: totalRequests, DefaultTimeout: 30 * time.Second,
	})
	_, twin := newTestServer(t, Config{
		Workers: 4, QueueDepth: totalRequests, DefaultTimeout: 30 * time.Second,
		Cache: CacheConfig{Disable: true},
	})

	type result struct {
		key  string
		body []byte
	}
	results := make([]result, totalRequests)
	var wg sync.WaitGroup
	for i := 0; i < totalRequests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			unique := i%10 >= 7 // ~70% repeats
			status, body, key := cachedLoadRequest(t, ts.URL, i%7, unique, i)
			if status != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, status, body)
				return
			}
			results[i] = result{key: key, body: body}
		}(i)
	}
	wg.Wait()

	// Zero byte-level divergence: replay each distinct request once
	// against the cache-disabled twin and hold every cached-server
	// response to the twin's bytes.
	reference := make(map[string][]byte)
	for i := 0; i < totalRequests; i++ {
		r := results[i]
		if r.key == "" {
			continue // already reported as a failed request
		}
		if _, ok := reference[r.key]; !ok {
			unique := i%10 >= 7
			status, body, _ := cachedLoadRequest(t, twin.URL, i%7, unique, i)
			if status != http.StatusOK {
				t.Fatalf("twin request %d: status %d: %s", i, status, body)
			}
			reference[r.key] = body
		}
		if !bytes.Equal(r.body, reference[r.key]) {
			t.Errorf("request %d (%s): cached response diverges from twin recompute", i, r.key)
		}
	}

	// Counters reconcile: every request consulted exactly one endpoint
	// cache, so hits+misses+coalesced across /debug/vars equals the
	// requests issued, and the hit ratio clears the repeat rate's floor.
	resp, raw := getURL(t, ts.URL+"/debug/vars")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/vars status %d", resp.StatusCode)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(raw, &vars); err != nil {
		t.Fatalf("parse /debug/vars: %v", err)
	}
	var agg CacheSnapshot
	if err := json.Unmarshal(vars["labd.cache"], &agg); err != nil {
		t.Fatalf("parse labd.cache: %v", err)
	}
	if total := agg.Hits + agg.Misses + agg.Coalesced; total != totalRequests {
		t.Errorf("hits %d + misses %d + coalesced %d = %d, want %d",
			agg.Hits, agg.Misses, agg.Coalesced, total, totalRequests)
	}
	if agg.HitRatio <= 0.5 {
		t.Errorf("aggregate hit ratio %.3f, want > 0.5 with ~70%% repeats", agg.HitRatio)
	}

	// The snapshot API agrees with the expvar surface.
	var fromStats CacheSnapshot
	for _, cs := range s.CacheStats() {
		fromStats.Hits += cs.Hits
		fromStats.Misses += cs.Misses
		fromStats.Coalesced += cs.Coalesced
	}
	if fromStats.Hits != agg.Hits || fromStats.Misses != agg.Misses || fromStats.Coalesced != agg.Coalesced {
		t.Errorf("CacheStats %+v disagrees with /debug/vars %+v", fromStats, agg)
	}
}
