package labd

// The capstone test: the daemon is itself the course's parallel program,
// and this is its Lab 10 stress harness. Hundreds of concurrent mixed
// requests hit a small worker pool behind a small bounded queue, and the
// accounting must reconcile exactly: every request is answered exactly
// once, queue-full requests get 429, the expvar counters sum to the
// requests served, and shutdown drains everything in flight. Run with
// -race; the scheduler, metrics, and handlers are all exercised in
// parallel here.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// loadRequest issues one request of the given kind and returns the final
// HTTP status plus the endpoint metric key it should be accounted under.
func loadRequest(t *testing.T, baseURL string, kind int) (status int, endpoint string) {
	t.Helper()
	switch kind % 7 {
	case 0:
		resp, _ := postJSON(t, baseURL+"/v1/asm/run", AsmRunRequest{
			Source: "main:\n    movl $0, %ebx\n    movl $1, %eax\n    int $0x80\n",
		})
		return resp.StatusCode, "POST /v1/asm/run"
	case 1:
		resp, _ := postJSON(t, baseURL+"/v1/minic/compile", MinicCompileRequest{
			Source: "int main() { return 3; }",
		})
		return resp.StatusCode, "POST /v1/minic/compile"
	case 2:
		resp, _ := postJSON(t, baseURL+"/v1/cache/sim", CacheSimRequest{
			SizeBytes: 1024, BlockSize: 64, Workload: "colmajor", Rows: 32, Cols: 32,
		})
		return resp.StatusCode, "POST /v1/cache/sim"
	case 3:
		resp, _ := postJSON(t, baseURL+"/v1/vm/sim", VMSimRequest{
			Trace: []VMAccess{{Pid: 1, Addr: 0}, {Pid: 2, Addr: 512}, {Pid: 1, Addr: 1024}},
		})
		return resp.StatusCode, "POST /v1/vm/sim"
	case 4:
		resp, _ := postJSON(t, baseURL+"/v1/life/run", LifeRunRequest{
			Rows: 24, Cols: 24, Iters: 6, Threads: 2,
		})
		return resp.StatusCode, "POST /v1/life/run"
	case 5:
		resp, _ := getURL(t, baseURL+"/v1/homework?topic=binary-conversion&n=1&seed=9")
		return resp.StatusCode, "GET /v1/homework"
	default:
		resp, _ := getURL(t, baseURL+"/v1/survey/figure1?students=30")
		return resp.StatusCode, "GET /v1/survey/figure1"
	}
}

func TestLoadMixedConcurrentRequests(t *testing.T) {
	const totalRequests = 280

	s, ts := newTestServer(t, Config{
		Workers:        4,
		QueueDepth:     8,
		DefaultTimeout: 30 * time.Second,
	})

	type tally struct {
		mu       sync.Mutex
		byStatus map[int]int
		byEP     map[string]map[int]int
	}
	tl := &tally{byStatus: map[int]int{}, byEP: map[string]map[int]int{}}

	var wg sync.WaitGroup
	for i := 0; i < totalRequests; i++ {
		wg.Add(1)
		go func(kind int) {
			defer wg.Done()
			status, ep := loadRequest(t, ts.URL, kind)
			tl.mu.Lock()
			defer tl.mu.Unlock()
			tl.byStatus[status]++
			if tl.byEP[ep] == nil {
				tl.byEP[ep] = map[int]int{}
			}
			tl.byEP[ep][status]++
		}(i)
	}
	wg.Wait()

	// Every request was answered exactly once, with 200 or 429 only.
	answered := 0
	for status, n := range tl.byStatus {
		answered += n
		if status != http.StatusOK && status != http.StatusTooManyRequests {
			t.Errorf("unexpected status %d x%d", status, n)
		}
	}
	if answered != totalRequests {
		t.Fatalf("answered %d requests, want %d", answered, totalRequests)
	}
	if tl.byStatus[http.StatusOK] == 0 {
		t.Error("no request succeeded")
	}
	if tl.byStatus[http.StatusTooManyRequests] == 0 {
		t.Error("queue never overflowed — backpressure untested; shrink the pool")
	}

	// Scheduler accounting: nothing lost, nothing double-served. Each
	// request was either admitted (and, with no timeouts, completed) or
	// rejected with 429.
	st := s.SchedStats()
	if st.Submitted+st.Rejected != totalRequests {
		t.Errorf("submitted %d + rejected %d != %d", st.Submitted, st.Rejected, totalRequests)
	}
	if st.Skipped != 0 {
		t.Errorf("skipped = %d, want 0 (no request timed out)", st.Skipped)
	}
	if st.Completed != st.Submitted {
		t.Errorf("completed %d != submitted %d", st.Completed, st.Submitted)
	}
	if int(st.Completed) != tl.byStatus[http.StatusOK] {
		t.Errorf("completed %d != client-observed 200s %d", st.Completed, tl.byStatus[http.StatusOK])
	}
	if int(st.Rejected) != tl.byStatus[http.StatusTooManyRequests] {
		t.Errorf("rejected %d != client-observed 429s %d", st.Rejected, tl.byStatus[http.StatusTooManyRequests])
	}

	// The metrics layer saw exactly the issued requests.
	if got := s.Metrics().TotalRequests(); got != totalRequests {
		t.Errorf("metrics total = %d, want %d", got, totalRequests)
	}

	// The expvar surface reconciles too: per-endpoint counters summed
	// across /v1 routes equal the requests served, and per-status counts
	// match what the clients saw.
	resp, raw := getURL(t, ts.URL+"/debug/vars")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/vars status %d", resp.StatusCode)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(raw, &vars); err != nil {
		t.Fatalf("parse /debug/vars: %v", err)
	}
	var expvarTotal int64
	for key, v := range vars {
		name, ok := strings.CutPrefix(key, "labd.endpoint.")
		if !ok || !strings.Contains(name, "/v1/") {
			continue
		}
		var ep EndpointSnapshot
		if err := json.Unmarshal(v, &ep); err != nil {
			t.Fatalf("parse %s: %v", key, err)
		}
		expvarTotal += ep.Requests
		for status, clientCount := range tl.byEP[name] {
			if got := ep.ByStatus[fmt.Sprint(status)]; got != int64(clientCount) {
				t.Errorf("%s status %d: expvar %d, clients saw %d", name, status, got, clientCount)
			}
		}
	}
	if expvarTotal != totalRequests {
		t.Errorf("expvar endpoint counters sum to %d, want %d", expvarTotal, totalRequests)
	}
}

func TestShutdownDrainsInFlightJobs(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 16, DefaultTimeout: 30 * time.Second})
	ts := newUnmanagedServer(t, s)

	// A program slow enough (~600k steps) that jobs are still queued and
	// running when shutdown begins.
	slow := AsmRunRequest{Source: `main:
    movl $200000, %ecx
loop:
    decl %ecx
    cmpl $0, %ecx
    jne loop
    movl $1, %eax
    movl $0, %ebx
    int $0x80
`}

	const jobs = 10
	statuses := make(chan int, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := postJSON(t, ts.URL+"/v1/asm/run", slow)
			statuses <- resp.StatusCode
		}()
	}

	// Wait until every job is inside the scheduler, then pull the plug.
	waitFor(t, func() bool { return s.SchedStats().Submitted == jobs })
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	wg.Wait()
	close(statuses)
	for status := range statuses {
		if status != http.StatusOK {
			t.Errorf("in-flight job answered %d during drain, want 200", status)
		}
	}
	st := s.SchedStats()
	if st.Completed != jobs {
		t.Errorf("drained %d of %d in-flight jobs", st.Completed, jobs)
	}

	// After the drain, new work is refused with 503.
	resp, _ := postJSON(t, ts.URL+"/v1/asm/run", slow)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain status %d, want 503", resp.StatusCode)
	}
}
