package labd

// Tests for the daemon's fault behaviour: backpressure that tells clients
// how long to back off, and request deadlines that actually tear down the
// parallel machinery they started.

import (
	"context"
	"errors"
	"net/http"
	"strconv"
	"sync"
	"testing"
	"time"

	"cs31/internal/pthread"
)

// TestRetryAfterFromBacklog pins the Retry-After arithmetic at the
// scheduler level: backlog (queued + running) spread over the workers,
// clamped to [1, 30].
func TestRetryAfterFromBacklog(t *testing.T) {
	s := NewScheduler(2, 8)
	defer s.Shutdown(context.Background())

	if got := s.RetryAfter(); got != 1 {
		t.Errorf("idle RetryAfter = %d, want 1", got)
	}

	// Wedge both workers, then fill the queue completely.
	block := make(chan struct{})
	started := make(chan struct{}, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Submit(context.Background(), func(context.Context) {
				started <- struct{}{}
				<-block
			})
		}()
	}
	<-started
	<-started
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Submit(context.Background(), func(context.Context) {})
		}()
	}
	deadline := time.After(5 * time.Second)
	for s.Stats().QueueLen < 8 {
		select {
		case <-deadline:
			t.Fatalf("queue never filled: %+v", s.Stats())
		case <-time.After(time.Millisecond):
		}
	}

	// Backlog = 8 queued + 2 active over 2 workers = 5 seconds.
	if got := s.RetryAfter(); got != 5 {
		t.Errorf("saturated RetryAfter = %d, want 5 (stats %+v)", got, s.Stats())
	}

	close(block)
	wg.Wait()
}

// TestQueueFull429CarriesRetryAfter is the handler-level regression test:
// a bounced request must carry HTTP 429 with a Retry-After header derived
// from the live backlog, not a constant.
func TestQueueFull429CarriesRetryAfter(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1, DefaultTimeout: time.Second, MaxSteps: 9_000_000_000})
	ts := newUnmanagedServer(t, s)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})

	// Wedge the single worker with a slow asm request, fill the queue's
	// single slot with another, then watch the third bounce. The spinners
	// end at their own 1s deadline, so the test drains quickly afterwards.
	// Distinct step budgets (below the server cap, so normalization keeps
	// them distinct) stop the memoization layer from coalescing the
	// spinners: saturating the pool takes three separate jobs, not one
	// flight with two waiters.
	spinReq := func(i int64) AsmRunRequest {
		return AsmRunRequest{Source: "main:\nloop:\n    jmp loop\n", MaxSteps: 8_000_000_000 + i}
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			postJSON(t, ts.URL+"/v1/asm/run", spinReq(int64(i)))
		}(i)
	}
	deadline := time.After(10 * time.Second)
	for {
		st := s.SchedStats()
		if st.Active >= 1 && st.QueueLen >= 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("server never saturated: %+v", st)
		case <-time.After(time.Millisecond):
		}
	}

	resp, raw := postJSON(t, ts.URL+"/v1/asm/run", spinReq(2))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d (%s), want 429", resp.StatusCode, raw)
	}
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatal("429 without Retry-After header")
	}
	secs, err := strconv.Atoi(ra)
	if err != nil {
		t.Fatalf("Retry-After %q is not an integer", ra)
	}
	// Backlog at bounce time: 1 queued + 1 active over 1 worker = 2; the
	// exact figure can wobble by one if a worker picks up between the 429
	// and the header read, so accept the clamp range but reject the old
	// constant behaviour of always-1 under a visibly saturated pool.
	if secs < 2 || secs > 30 {
		t.Errorf("Retry-After = %d, want a backlog-derived value in [2, 30]", secs)
	}
	wg.Wait()
}

// TestLifeDistCancelTearsDownWorld is the acceptance check for deadline
// cancellation through the whole stack: a dist-engine life request whose
// deadline expires mid-run must return 504 within 100ms of the deadline,
// and the msgpass rank goroutines it spawned must all be gone.
func TestLifeDistCancelTearsDownWorld(t *testing.T) {
	baseline := pthread.Live()
	const timeout = 80 * time.Millisecond
	_, ts := newTestServer(t, Config{Workers: 2, DefaultTimeout: timeout})

	start := time.Now()
	resp, raw := postJSON(t, ts.URL+"/v1/life/run", LifeRunRequest{
		Rows: 512, Cols: 512, Iters: maxLifeIters,
		Threads: 8, Engine: "dist",
	})
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504", resp.StatusCode, raw)
	}
	if elapsed > timeout+100*time.Millisecond {
		t.Errorf("504 took %v, want within 100ms of the %v deadline", elapsed, timeout)
	}

	// Zero live msgpass goroutines: the world joined every rank before the
	// handler returned. The gauge may lag the HTTP response by the skipped
	// job's bookkeeping, so poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for pthread.Live() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("%d rank goroutines still live after canceled dist request (baseline %d)",
				pthread.Live(), baseline)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestLifeParallelCancel504 is the same deadline check for the
// shared-memory engine: cancellation is uniform across barrier rounds, so
// the workers tear down instead of stranding each other.
func TestLifeParallelCancel504(t *testing.T) {
	baseline := pthread.Live()
	const timeout = 80 * time.Millisecond
	_, ts := newTestServer(t, Config{Workers: 2, DefaultTimeout: timeout})

	resp, raw := postJSON(t, ts.URL+"/v1/life/run", LifeRunRequest{
		Rows: 512, Cols: 512, Iters: maxLifeIters,
		Threads: 8, Engine: "parallel",
	})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504", resp.StatusCode, raw)
	}
	deadline := time.Now().Add(5 * time.Second)
	for pthread.Live() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("%d worker goroutines still live after canceled parallel request (baseline %d)",
				pthread.Live(), baseline)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestLifeRunCancelErrorClass: the handler maps the engines' wrapped
// context errors onto the timeout status, not a 400 — the structured error
// must survive the trip through runLifeCtx.
func TestLifeRunCancelErrorClass(t *testing.T) {
	s := New(Config{Workers: 1, DefaultTimeout: time.Hour})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := s.lifeRun(ctx, LifeRunRequest{
		Rows: 512, Cols: 512, Iters: maxLifeIters, Threads: 4, Engine: "dist",
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
}
