package labd

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cs31/internal/memo"
	"cs31/internal/obs"
)

// requestIDHeader carries the per-request ID the access-log line also
// records, so a log entry, a trace span, and a client-side error report
// all join on one value.
const requestIDHeader = "X-Labd-Request-Id"

// serverObs bundles the daemon's observability state: a Prometheus-style
// registry (nil when Config.DisableMetrics) and a trace recorder (nil
// unless Config.Trace is set). The whole struct is nil when both are
// off, so the request path pays a single pointer check.
type serverObs struct {
	reg   *obs.Registry
	trace *obs.Trace

	reqSeq atomic.Uint64 // request-ID source

	// httpLane is the shared request timeline: every HTTP goroutine
	// records Complete (X) events on it — the one event kind the MPSC
	// lane supports from many writers (B/E nesting needs a single
	// owner; see internal/obs).
	httpLane *obs.Lane
	nRequest obs.Name // "request", args: status, id
	nMarshal obs.Name // "marshal"

	marshal *obs.Histogram // encode+write time of cold responses

	mu        sync.RWMutex
	endpoints map[string]*endpointObs // by route pattern
	outcomes  map[string]*cacheObs    // by cached-endpoint name
}

// endpointObs is one route's request-duration histogram plus response
// counters by status class.
type endpointObs struct {
	dur    *obs.Histogram
	status [6]*obs.Counter // index = status/100, clamped to [1,5]
}

// cacheObs is one cached endpoint's per-outcome latency histograms:
// how long a hit, a miss, and a coalesced wait each take end to end.
type cacheObs struct {
	byOutcome [3]*obs.Histogram // indexed by memo.Outcome
}

func newServerObs(cfg *Config) *serverObs {
	if cfg.DisableMetrics && cfg.Trace == nil {
		return nil
	}
	o := &serverObs{
		trace:     cfg.Trace,
		endpoints: make(map[string]*endpointObs),
		outcomes:  make(map[string]*cacheObs),
	}
	if !cfg.DisableMetrics {
		o.reg = obs.NewRegistry()
		o.marshal = o.reg.Histogram("labd_marshal_duration_seconds",
			"Time to encode and write a cold response body.", "", 4)
	}
	if o.trace != nil {
		o.httpLane = o.trace.Lane("http")
		o.nRequest = o.trace.Name("request", "status", "id")
		o.nMarshal = o.trace.Name("marshal")
	}
	return o
}

// nextRequestID mints the request's ID: a process-unique hex counter,
// cheap enough to stamp on every request including cache hits.
func (o *serverObs) nextRequestID() (uint64, string) {
	n := o.reqSeq.Add(1)
	return n, strconv.FormatUint(n, 16)
}

// endpoint returns (creating on first use) the route's metric series.
// The read-locked fast path is one map lookup; creation registers the
// duration histogram and the five status-class counters so scrapes see
// every class from the first request on.
func (o *serverObs) endpoint(pattern string) *endpointObs {
	o.mu.RLock()
	eo := o.endpoints[pattern]
	o.mu.RUnlock()
	if eo != nil {
		return eo
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if eo = o.endpoints[pattern]; eo != nil {
		return eo
	}
	eo = &endpointObs{}
	route := obs.Label("route", pattern)
	eo.dur = o.reg.Histogram("labd_request_duration_seconds",
		"End-to-end request latency by route.", route, 4)
	for c := 1; c <= 5; c++ {
		eo.status[c] = o.reg.Counter("labd_responses_total",
			"Responses by route and status class.",
			route+","+obs.Label("status", strconv.Itoa(c)+"xx"))
	}
	o.endpoints[pattern] = eo
	return eo
}

// observeRequest records one finished request: duration histogram,
// status-class counter, and (when tracing) an X span on the shared
// http lane carrying the status and request ID.
func (o *serverObs) observeRequest(pattern string, status int, start time.Time, id uint64) {
	if o.reg != nil {
		eo := o.endpoint(pattern)
		eo.dur.Observe(int64(time.Since(start)))
		c := status / 100
		if c < 1 {
			c = 1
		}
		if c > 5 {
			c = 5
		}
		eo.status[c].Inc()
	}
	o.httpLane.CompleteArgs(o.nRequest, start, int64(status), int64(id))
}

// observeMarshal records the encode+write time of a cold response.
func (o *serverObs) observeMarshal(start time.Time) {
	o.marshal.Observe(int64(time.Since(start)))
	o.httpLane.Complete(o.nMarshal, start)
}

// observeCacheOutcome records how long a memoized request took, split
// by how the cache served it (hit / miss / coalesced).
func (o *serverObs) observeCacheOutcome(endpoint string, out memo.Outcome, d time.Duration) {
	if o.reg == nil || out > memo.Coalesced {
		return
	}
	o.mu.RLock()
	co := o.outcomes[endpoint]
	o.mu.RUnlock()
	if co == nil {
		o.mu.Lock()
		if co = o.outcomes[endpoint]; co == nil {
			co = &cacheObs{}
			for i, name := range []string{"miss", "hit", "coalesced"} {
				co.byOutcome[i] = o.reg.Histogram("labd_cache_request_duration_seconds",
					"Memoized request latency by endpoint and cache outcome.",
					obs.Label("endpoint", endpoint)+","+obs.Label("outcome", name), 4)
			}
			o.outcomes[endpoint] = co
		}
		o.mu.Unlock()
	}
	co.byOutcome[out].Observe(int64(d))
}

// registerScrapeFuncs exposes the daemon's existing counters — the same
// numbers /debug/vars reports — as scrape-time Prometheus series, read
// fresh on every GET /metrics with zero per-request cost.
func (s *Server) registerScrapeFuncs() {
	r := s.obs.reg
	if r == nil {
		return
	}
	sc := s.sched
	r.CounterFunc("labd_scheduler_submitted_total", "Jobs accepted into the bounded queue.", "",
		func() int64 { return sc.submitted.Load() })
	r.CounterFunc("labd_scheduler_rejected_total", "Jobs refused with queue-full backpressure.", "",
		func() int64 { return sc.rejected.Load() })
	r.CounterFunc("labd_scheduler_completed_total", "Jobs a worker ran to completion.", "",
		func() int64 { return sc.completed.Load() })
	r.CounterFunc("labd_scheduler_skipped_total", "Jobs whose context expired while queued.", "",
		func() int64 { return sc.skipped.Load() })
	r.GaugeFunc("labd_scheduler_active_jobs", "Jobs executing on a worker right now.", "",
		func() int64 { return sc.active.Load() })
	r.GaugeFunc("labd_queue_len", "Jobs waiting in the bounded queue.", "",
		func() int64 { return int64(len(sc.queue)) })
	r.GaugeFunc("labd_queue_cap", "Bounded queue capacity.", "",
		func() int64 { return int64(cap(sc.queue)) })
	r.GaugeFunc("labd_queue_hwm", "Deepest the queue has ever been.", "",
		func() int64 { return sc.queueHWM.Load() })
	r.GaugeFunc("labd_workers", "Worker pool size.", "",
		func() int64 { return int64(sc.workers) })
	r.CounterFunc("labd_requests_total", "HTTP requests served.", "",
		func() int64 { return s.metrics.TotalRequests() })
	r.GaugeFunc("labd_uptime_seconds", "Seconds since the server started.", "",
		func() int64 { return int64(s.metrics.Uptime() / time.Second) })
	for name, c := range s.caches {
		c := c
		ep := obs.Label("endpoint", name)
		r.CounterFunc("labd_cache_hits_total", "Memoization hits by endpoint.", ep,
			func() int64 { return c.Stats().Hits })
		r.CounterFunc("labd_cache_misses_total", "Memoization misses by endpoint.", ep,
			func() int64 { return c.Stats().Misses })
		r.CounterFunc("labd_cache_coalesced_total", "Requests that waited on another's computation.", ep,
			func() int64 { return c.Stats().Coalesced })
		r.CounterFunc("labd_cache_evictions_total", "LRU evictions by endpoint.", ep,
			func() int64 { return c.Stats().Evictions })
		r.GaugeFunc("labd_cache_entries", "Resident cache entries by endpoint.", ep,
			func() int64 { return int64(c.Stats().Entries) })
		r.GaugeFunc("labd_cache_bytes", "Resident cache bytes by endpoint.", ep,
			func() int64 { return c.Stats().Bytes })
	}
}
