package labd

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"cs31/internal/obs"
)

// TestMetricsEndpoint scrapes GET /metrics after real traffic and checks
// the Prometheus text exposition: content type, the core families, label
// plumbing, and that the scheduler/cache scrape funcs report the same
// numbers as the existing stats snapshots.
func TestMetricsEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8})

	// Traffic: two identical homework requests (miss then hit) and one
	// asm run, so request, cache, and scheduler series all have data.
	for i := 0; i < 2; i++ {
		resp, _ := getURL(t, ts.URL+"/v1/homework?topic=circuits&seed=1&n=2")
		if resp.StatusCode != 200 {
			t.Fatalf("homework: status %d", resp.StatusCode)
		}
	}
	resp, body := getURL(t, ts.URL+"/metrics")
	if resp.StatusCode != 200 {
		t.Fatalf("metrics: status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("metrics content type %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE labd_request_duration_seconds histogram",
		`labd_request_duration_seconds_bucket{route="GET /v1/homework",le="+Inf"}`,
		`labd_responses_total{route="GET /v1/homework",status="2xx"} 2`,
		"# TYPE labd_scheduler_submitted_total counter",
		`labd_cache_hits_total{endpoint="homework"} 1`,
		`labd_cache_misses_total{endpoint="homework"} 1`,
		`labd_cache_request_duration_seconds_count{endpoint="homework",outcome="hit"} 1`,
		`labd_cache_request_duration_seconds_count{endpoint="homework",outcome="miss"} 1`,
		"# TYPE labd_queue_wait_seconds histogram",
		"labd_marshal_duration_seconds_count 1",
		"# TYPE labd_workers gauge",
		"labd_workers 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	// Scrape funcs agree with the stats snapshot taken now.
	st := s.SchedStats()
	if want := fmt.Sprintf("labd_scheduler_completed_total %d", st.Completed); !strings.Contains(text, want) {
		t.Errorf("metrics output missing %q\n%s", want, text)
	}
}

// TestMetricsDisabled checks that DisableMetrics unmounts the endpoint
// and that requests still serve (the obs layer may be entirely absent).
func TestMetricsDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, DisableMetrics: true})
	resp, _ := getURL(t, ts.URL+"/metrics")
	if resp.StatusCode != 404 {
		t.Fatalf("disabled /metrics: status %d, want 404", resp.StatusCode)
	}
	resp, _ = getURL(t, ts.URL+"/healthz")
	if resp.StatusCode != 200 {
		t.Fatalf("healthz with metrics disabled: status %d", resp.StatusCode)
	}
	if resp.Header.Get(requestIDHeader) != "" {
		t.Fatalf("request-id header present with obs disabled")
	}
}

// TestRequestIDHeader checks every response carries a distinct
// X-Labd-Request-Id — including cache hits, whose bodies never touch a
// handler — so access-log lines join to responses one-to-one.
func TestRequestIDHeader(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	seen := map[string]bool{}
	for i := 0; i < 3; i++ {
		resp, _ := getURL(t, ts.URL+"/v1/homework?topic=circuits&seed=9&n=1")
		if resp.StatusCode != 200 {
			t.Fatalf("status %d", resp.StatusCode)
		}
		id := resp.Header.Get(requestIDHeader)
		if id == "" {
			t.Fatalf("request %d: no %s header", i, requestIDHeader)
		}
		if seen[id] {
			t.Fatalf("request id %q repeated", id)
		}
		seen[id] = true
		if i > 0 && resp.Header.Get(cacheHeader) != "hit" {
			t.Fatalf("request %d: cache %q, want hit", i, resp.Header.Get(cacheHeader))
		}
	}
}

// TestServerTrace runs traffic with a Trace attached and validates the
// exported timeline: an "http" lane of request/marshal X spans and one
// lane per scheduler worker carrying queue-wait/handler spans.
func TestServerTrace(t *testing.T) {
	tr := obs.New()
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8, Trace: tr})

	for i := 0; i < 3; i++ {
		resp, _ := getURL(t, ts.URL+fmt.Sprintf("/v1/homework?topic=circuits&seed=%d&n=1", i))
		if resp.StatusCode != 200 {
			t.Fatalf("status %d", resp.StatusCode)
		}
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	sum, err := obs.ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("trace failed validation: %v", err)
	}
	httpSeq := sum.PerLane["http"]
	if len(httpSeq) == 0 {
		t.Fatalf("no http lane (lanes: %v)", sum.Lanes)
	}
	var requests, marshals int
	for _, e := range httpSeq {
		switch e {
		case "request/X":
			requests++
		case "marshal/X":
			marshals++
		default:
			t.Fatalf("unexpected http-lane event %q", e)
		}
	}
	if requests != 3 || marshals != 3 {
		t.Fatalf("http lane has %d request and %d marshal spans, want 3 and 3", requests, marshals)
	}
	// Worker lanes: every handler ran somewhere, with a queue-wait span
	// preceding it on the same lane.
	var handlers int
	for lane, seq := range sum.PerLane {
		if !strings.HasPrefix(lane, "worker ") {
			continue
		}
		for _, e := range seq {
			if e == "handler/X" {
				handlers++
			}
		}
	}
	if handlers != 3 {
		t.Fatalf("worker lanes carry %d handler spans, want 3", handlers)
	}
}
