// Package homework generates the course's weekly written homework
// problems (paper §III-B) with worked solutions. Every solution is
// computed by the corresponding simulator — numrep for conversions and
// arithmetic, circuit for logic tracing, asm for assembly tracing, cache
// for address division and hit/miss tables, vm for page-table walks, and
// kernel for "possible outputs" fork questions — so the generated answer
// keys are correct by construction. Generation is deterministic per seed.
package homework

import (
	"fmt"
	"math/rand"
	"strings"

	"cs31/internal/asm"
	"cs31/internal/cache"
	"cs31/internal/circuit"
	"cs31/internal/kernel"
	"cs31/internal/memhier"
	"cs31/internal/numrep"
	"cs31/internal/vm"
)

// Problem is one homework question with its answer key.
type Problem struct {
	Topic    string
	Prompt   string
	Solution string
}

func (p Problem) String() string {
	return fmt.Sprintf("[%s]\n%s\n--- solution ---\n%s", p.Topic, p.Prompt, p.Solution)
}

// Generator produces problems for one homework topic.
type Generator func(rng *rand.Rand) (Problem, error)

// Generators is the catalog, keyed by the homework names of §III-B.
var Generators = map[string]Generator{
	"binary-conversion": ConversionProblem,
	"binary-arithmetic": ArithmeticProblem,
	"circuits":          CircuitProblem,
	"assembly-trace":    AssemblyTraceProblem,
	"cache-division":    CacheDivisionProblem,
	"cache-trace":       CacheTraceProblem,
	"processes":         ProcessOutputsProblem,
	"virtual-memory":    PageTableProblem,
}

// Topics lists the available topics in a stable order.
func Topics() []string {
	return []string{
		"binary-conversion", "binary-arithmetic", "circuits",
		"assembly-trace", "cache-division", "cache-trace",
		"processes", "virtual-memory",
	}
}

// Generate produces n problems for the topic, deterministically per seed.
func Generate(topic string, seed int64, n int) ([]Problem, error) {
	gen, ok := Generators[topic]
	if !ok {
		return nil, fmt.Errorf("homework: unknown topic %q (have %v)", topic, Topics())
	}
	if n < 1 {
		return nil, fmt.Errorf("homework: need at least one problem")
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]Problem, 0, n)
	for i := 0; i < n; i++ {
		p, err := gen(rng)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// ConversionProblem: convert a value between decimal, binary, and hex at a
// fixed width, with the powers-of-two working shown.
func ConversionProblem(rng *rand.Rand) (Problem, error) {
	widths := []int{8, 12, 16}
	width := widths[rng.Intn(len(widths))]
	v := uint64(rng.Intn(1 << uint(width)))
	conv, err := numrep.Convert(v, width)
	if err != nil {
		return Problem{}, err
	}
	var sol strings.Builder
	fmt.Fprintf(&sol, "%s\n", conv)
	fmt.Fprintf(&sol, "working: %s\n", numrep.PowersOfTwoTable(v, width))
	sol.WriteString("decimal -> binary by repeated division:\n")
	for _, step := range numrep.RepeatedDivision(v, numrep.Binary) {
		sol.WriteString("  " + step + "\n")
	}
	return Problem{
		Topic: "binary-conversion",
		Prompt: fmt.Sprintf(
			"Convert %d to %d-bit binary and hexadecimal, and give its value\n"+
				"when the same bit pattern is interpreted as a signed (two's\n"+
				"complement) number.", v, width),
		Solution: sol.String(),
	}, nil
}

// ArithmeticProblem: add two signed values at a narrow width and report
// the result, carry, and overflow — the flag-reasoning drill.
func ArithmeticProblem(rng *rand.Rand) (Problem, error) {
	const width = 8
	a := uint64(rng.Intn(256))
	b := uint64(rng.Intn(256))
	res, err := numrep.Add(a, b, width)
	if err != nil {
		return Problem{}, err
	}
	sa, _ := numrep.DecodeSigned(a, width)
	sb, _ := numrep.DecodeSigned(b, width)
	return Problem{
		Topic: "binary-arithmetic",
		Prompt: fmt.Sprintf(
			"Compute %s + %s at 8 bits. Give the result bits, and state\n"+
				"whether unsigned overflow (carry out) and signed overflow occur.\n"+
				"(Unsigned values %d + %d; signed values %d + %d.)",
			numrep.FormatBits(a, width), numrep.FormatBits(b, width), a, b, sa, sb),
		Solution: fmt.Sprintf(
			"result %s = %s\nunsigned: %d (carry out: %v)\nsigned: %d (overflow: %v)",
			numrep.FormatBits(res.Pattern, width), numrep.FormatHex(res.Pattern, width),
			res.Unsigned, res.CarryOut, res.Signed, res.Overflow),
	}, nil
}

// CircuitProblem: derive the truth table of a randomly synthesized
// three-input circuit — the "trace the circuit" direction.
func CircuitProblem(rng *rand.Rand) (Problem, error) {
	spec := uint8(rng.Intn(255) + 1) // avoid the all-false circuit
	rows := make([]bool, 8)
	var minterms []string
	for i := range rows {
		rows[i] = spec&(1<<uint(i)) != 0
		if rows[i] {
			minterms = append(minterms, fmt.Sprintf("m%d", i))
		}
	}
	c := circuit.New()
	if _, _, err := circuit.SynthesizeSoP(c, 3, rows); err != nil {
		return Problem{}, err
	}
	tt, err := c.BuildTruthTable([]string{"in0", "in1", "in2"}, []string{"out"})
	if err != nil {
		return Problem{}, err
	}
	return Problem{
		Topic: "circuits",
		Prompt: fmt.Sprintf(
			"A sum-of-products circuit over inputs in0 in1 in2 implements the\n"+
				"minterms %s (%d gates). Fill in its full truth table.",
			strings.Join(minterms, ", "), c.NumGates()),
		Solution: tt.String(),
	}, nil
}

// AssemblyTraceProblem: trace a short straight-line IA-32 snippet and give
// the final registers — solved by running the machine.
func AssemblyTraceProblem(rng *rand.Rand) (Problem, error) {
	regs := []string{"%eax", "%ebx", "%ecx"}
	var src strings.Builder
	src.WriteString("main:\n")
	for i, r := range regs {
		fmt.Fprintf(&src, "    movl $%d, %s\n", rng.Intn(20)+1, r)
		_ = i
	}
	binOps := []string{"addl", "subl", "imull", "andl", "orl", "xorl"}
	for i := 0; i < 4; i++ {
		op := binOps[rng.Intn(len(binOps))]
		a := regs[rng.Intn(len(regs))]
		bReg := regs[rng.Intn(len(regs))]
		fmt.Fprintf(&src, "    %s %s, %s\n", op, a, bReg)
	}
	src.WriteString("    ret\n")

	prog, err := asm.Assemble(src.String())
	if err != nil {
		return Problem{}, err
	}
	m, err := asm.NewMachine(prog)
	if err != nil {
		return Problem{}, err
	}
	if err := m.Run(100); err != nil {
		return Problem{}, err
	}
	sol := fmt.Sprintf("eax = %d, ebx = %d, ecx = %d\nflags: ZF=%v SF=%v CF=%v OF=%v",
		int32(m.Regs[asm.EAX]), int32(m.Regs[asm.EBX]), int32(m.Regs[asm.ECX]),
		m.Flags.ZF, m.Flags.SF, m.Flags.CF, m.Flags.OF)
	return Problem{
		Topic: "assembly-trace",
		Prompt: "Trace this IA-32 snippet and give the final values of eax, ebx,\n" +
			"and ecx (as signed numbers) and the condition flags:\n\n" + src.String(),
		Solution: sol,
	}, nil
}

// CacheDivisionProblem: divide addresses into tag/index/offset for a random
// cache organization.
func CacheDivisionProblem(rng *rand.Rand) (Problem, error) {
	blockSizes := []int{8, 16, 32, 64}
	cfg := cache.Config{
		BlockSize: blockSizes[rng.Intn(len(blockSizes))],
		Assoc:     1 << uint(rng.Intn(3)),
	}
	cfg.SizeBytes = cfg.BlockSize * cfg.Assoc * (1 << uint(rng.Intn(4)+2))
	if err := cfg.Validate(); err != nil {
		return Problem{}, err
	}
	addr := uint64(rng.Intn(1 << 16))
	p := cfg.Split(addr)
	return Problem{
		Topic: "cache-division",
		Prompt: fmt.Sprintf(
			"A %d-byte, %d-way cache has %d-byte blocks (%d sets).\n"+
				"Divide the address %#x into tag, index, and offset, and give\n"+
				"the field widths.",
			cfg.SizeBytes, cfg.Assoc, cfg.BlockSize, cfg.NumSets(), addr),
		Solution: fmt.Sprintf(
			"offset %d bits = %#x, index %d bits = %#x, tag = %#x",
			cfg.OffsetBits(), p.Offset, cfg.IndexBits(), p.Index, p.Tag),
	}, nil
}

// CacheTraceProblem: classify a short access sequence as hits and misses —
// solved by the simulator's TraceTable.
func CacheTraceProblem(rng *rand.Rand) (Problem, error) {
	cfg := cache.Config{SizeBytes: 64, BlockSize: 16, Assoc: 1 + rng.Intn(2)}
	if cfg.Assoc == 2 {
		cfg.SizeBytes = 128
	}
	if err := cfg.Validate(); err != nil {
		return Problem{}, err
	}
	var trace []memhier.Access
	var lines []string
	for i := 0; i < 8; i++ {
		addr := uint64(rng.Intn(16)) * 16
		if rng.Intn(3) == 0 && len(trace) > 0 {
			addr = trace[rng.Intn(len(trace))].Addr // encourage reuse
		}
		write := rng.Intn(4) == 0
		rw := "read"
		if write {
			rw = "write"
		}
		trace = append(trace, memhier.Access{Addr: addr, Write: write})
		lines = append(lines, fmt.Sprintf("  %s %#x", rw, addr))
	}
	table, err := cache.TraceTable(cfg, trace, len(trace))
	if err != nil {
		return Problem{}, err
	}
	return Problem{
		Topic: "cache-trace",
		Prompt: fmt.Sprintf(
			"For a %d-byte %d-way cache with %d-byte blocks (LRU), classify\n"+
				"each access as a hit or miss, noting evictions:\n%s",
			cfg.SizeBytes, cfg.Assoc, cfg.BlockSize, strings.Join(lines, "\n")),
		Solution: table,
	}, nil
}

// ProcessOutputsProblem: list all possible outputs of a small fork
// program — solved exhaustively by the kernel's interleaving search.
func ProcessOutputsProblem(rng *rand.Rand) (Problem, error) {
	letters := []string{"A", "B", "C", "D"}
	rng.Shuffle(len(letters), func(i, j int) { letters[i], letters[j] = letters[j], letters[i] })
	withWait := rng.Intn(2) == 0
	prog := []kernel.Op{
		kernel.Print{Text: letters[0]},
		kernel.Fork{Child: []kernel.Op{kernel.Print{Text: letters[1]}}},
	}
	src := fmt.Sprintf("printf(%q);\nif (fork() == 0) {\n    printf(%q);\n    exit(0);\n}\n",
		letters[0], letters[1])
	if withWait {
		prog = append(prog, kernel.Wait{}, kernel.Print{Text: letters[2]})
		src += fmt.Sprintf("wait(NULL);\nprintf(%q);\n", letters[2])
	} else {
		prog = append(prog, kernel.Print{Text: letters[2]}, kernel.Wait{})
		src += fmt.Sprintf("printf(%q);\nwait(NULL);\n", letters[2])
	}
	res, err := kernel.EnumerateOutputs(prog, 0)
	if err != nil {
		return Problem{}, err
	}
	return Problem{
		Topic:    "processes",
		Prompt:   "List ALL possible outputs of this program:\n\n" + src,
		Solution: fmt.Sprintf("%d possible: %s", len(res.Outputs), strings.Join(res.Outputs, ", ")),
	}, nil
}

// PageTableProblem: walk a sequence of virtual accesses through a small
// paged memory and report faults and final mappings — solved by the vm
// simulator.
func PageTableProblem(rng *rand.Rand) (Problem, error) {
	cfg := vm.Config{PageSize: 256, NumFrames: 2 + rng.Intn(2), NumPages: 8}
	sys, err := vm.New(cfg)
	if err != nil {
		return Problem{}, err
	}
	if err := sys.AddProcess(1); err != nil {
		return Problem{}, err
	}
	if err := sys.Switch(1); err != nil {
		return Problem{}, err
	}
	var promptLines, solLines []string
	for i := 0; i < 6; i++ {
		vaddr := uint64(rng.Intn(5)) * cfg.PageSize
		write := rng.Intn(3) == 0
		rw := "read"
		if write {
			rw = "write"
		}
		res, err := sys.Access(vaddr, write)
		if err != nil {
			return Problem{}, err
		}
		promptLines = append(promptLines, fmt.Sprintf("  %s %#06x", rw, vaddr))
		outcome := "hit"
		if res.PageFault {
			outcome = "PAGE FAULT"
			if res.Evicted {
				outcome += fmt.Sprintf(" (evicts page %d)", res.EvictedPg)
			}
		}
		solLines = append(solLines, fmt.Sprintf(
			"  %s %#06x -> page %d, frame %d, paddr %#06x  [%s]",
			rw, vaddr, res.Page, res.Frame, res.PhysAddr, outcome))
	}
	st := sys.Stats()
	solLines = append(solLines, fmt.Sprintf("total faults: %d, evictions: %d",
		st.PageFaults, st.Evictions))
	return Problem{
		Topic: "virtual-memory",
		Prompt: fmt.Sprintf(
			"A process on a machine with %d-byte pages and %d physical frames\n"+
				"(LRU replacement) performs these accesses. For each, give the\n"+
				"page number, the frame, the physical address, and whether it\n"+
				"faults:\n%s",
			cfg.PageSize, cfg.NumFrames, strings.Join(promptLines, "\n")),
		Solution: strings.Join(solLines, "\n"),
	}, nil
}
