package homework

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"cs31/internal/numrep"
)

func TestAllTopicsGenerate(t *testing.T) {
	for _, topic := range Topics() {
		probs, err := Generate(topic, 7, 3)
		if err != nil {
			t.Fatalf("%s: %v", topic, err)
		}
		if len(probs) != 3 {
			t.Fatalf("%s: %d problems", topic, len(probs))
		}
		for i, p := range probs {
			if p.Topic != topic {
				t.Errorf("%s[%d]: topic %q", topic, i, p.Topic)
			}
			if strings.TrimSpace(p.Prompt) == "" || strings.TrimSpace(p.Solution) == "" {
				t.Errorf("%s[%d]: empty prompt or solution", topic, i)
			}
			if !strings.Contains(p.String(), "--- solution ---") {
				t.Errorf("%s[%d]: String() missing solution divider", topic, i)
			}
		}
	}
}

func TestGenerationDeterministic(t *testing.T) {
	for _, topic := range Topics() {
		a, err := Generate(topic, 42, 2)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(topic, 42, 2)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i].Prompt != b[i].Prompt || a[i].Solution != b[i].Solution {
				t.Errorf("%s: seed 42 not deterministic", topic)
			}
		}
		c, err := Generate(topic, 43, 2)
		if err != nil {
			t.Fatal(err)
		}
		if a[0].Prompt == c[0].Prompt {
			t.Errorf("%s: different seeds gave identical problems", topic)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate("no-such-topic", 1, 1); err == nil {
		t.Error("unknown topic should fail")
	}
	if _, err := Generate("processes", 1, 0); err == nil {
		t.Error("zero problems should fail")
	}
}

// The arithmetic answer key must agree with an independent recomputation.
func TestArithmeticSolutionsVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 20; i++ {
		p, err := ArithmeticProblem(rng)
		if err != nil {
			t.Fatal(err)
		}
		// Parse "unsigned: N (carry out: ...)" back out and recompute.
		var unsignedVal int
		for _, line := range strings.Split(p.Solution, "\n") {
			if strings.HasPrefix(line, "unsigned: ") {
				numStr := strings.TrimPrefix(line, "unsigned: ")
				numStr = strings.Split(numStr, " ")[0]
				v, err := strconv.Atoi(numStr)
				if err != nil {
					t.Fatalf("bad solution line %q", line)
				}
				unsignedVal = v
			}
		}
		// Recover operands from the prompt's "(Unsigned values A + B; ...)".
		start := strings.Index(p.Prompt, "(Unsigned values ")
		if start < 0 {
			t.Fatalf("prompt format: %q", p.Prompt)
		}
		rest := p.Prompt[start+len("(Unsigned values "):]
		var a, b int
		if _, err := sscanTwo(rest, &a, &b); err != nil {
			t.Fatalf("parse operands from %q: %v", rest, err)
		}
		want := (a + b) % 256
		if unsignedVal != want {
			t.Errorf("solution says %d, expected %d for %d+%d", unsignedVal, want, a, b)
		}
	}
}

func sscanTwo(s string, a, b *int) (int, error) {
	s = strings.ReplaceAll(s, ";", " ")
	fields := strings.Fields(s)
	if len(fields) < 3 {
		return 0, strconv.ErrSyntax
	}
	v1, err := strconv.Atoi(fields[0])
	if err != nil {
		return 0, err
	}
	v2, err := strconv.Atoi(fields[2])
	if err != nil {
		return 0, err
	}
	*a, *b = v1, v2
	return 2, nil
}

// Conversion solutions must round-trip through numrep's parser.
func TestConversionSolutionsVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 20; i++ {
		p, err := ConversionProblem(rng)
		if err != nil {
			t.Fatal(err)
		}
		// The first solution line is the Conversion string:
		// "bits = 0xhex = U (unsigned) = S (signed, W-bit)".
		line := strings.SplitN(p.Solution, "\n", 2)[0]
		parts := strings.Split(line, " = ")
		if len(parts) < 3 {
			t.Fatalf("solution line %q", line)
		}
		pat, width, err := numrep.ParseBits(parts[0])
		if err != nil {
			t.Fatal(err)
		}
		hexPat, _, err := numrep.ParseHex(parts[1])
		if err != nil {
			t.Fatal(err)
		}
		if pat != hexPat {
			t.Errorf("binary %#x != hex %#x in %q", pat, hexPat, line)
		}
		_ = width
	}
}

// Process problems' enumerated outputs must each contain every printed
// letter exactly once.
func TestProcessSolutionsWellFormed(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10; i++ {
		p, err := ProcessOutputsProblem(rng)
		if err != nil {
			t.Fatal(err)
		}
		colon := strings.Index(p.Solution, ": ")
		if colon < 0 {
			t.Fatalf("solution %q", p.Solution)
		}
		outputs := strings.Split(p.Solution[colon+2:], ", ")
		if len(outputs) < 1 || len(outputs) > 3 {
			t.Errorf("%d outputs in %q", len(outputs), p.Solution)
		}
		for _, o := range outputs {
			if len(o) != 3 {
				t.Errorf("output %q should have exactly 3 letters", o)
			}
		}
	}
}

func TestCacheTraceSolutionHasAllRows(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p, err := CacheTraceProblem(rng)
	if err != nil {
		t.Fatal(err)
	}
	// Header + 8 access rows.
	rows := strings.Split(strings.TrimSpace(p.Solution), "\n")
	if len(rows) != 9 {
		t.Errorf("solution rows = %d:\n%s", len(rows), p.Solution)
	}
}
