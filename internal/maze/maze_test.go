package maze

import (
	"strconv"
	"strings"
	"testing"

	"cs31/internal/asm"
	"cs31/internal/debug"
)

func TestGenerateAndEscape(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		m, err := Generate(seed, 4)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(m.Floors) != 4 {
			t.Fatalf("seed %d: %d floors", seed, len(m.Floors))
		}
		status, out, err := m.Run(m.Answers())
		if err != nil {
			t.Fatalf("seed %d: run: %v\noutput: %s", seed, err, out)
		}
		if status != ExitEscaped {
			t.Errorf("seed %d: status %d with correct answers\noutput: %s", seed, status, out)
		}
		if got := strings.Count(out, "floor passed"); got != 4 {
			t.Errorf("seed %d: %d floors passed in output %q", seed, got, out)
		}
	}
}

func TestWrongAnswerTraps(t *testing.T) {
	m, err := Generate(7, 4)
	if err != nil {
		t.Fatal(err)
	}
	status, out, err := m.Run("0\n0\n0\nwrong\n")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if status != ExitTrapped {
		t.Errorf("status %d, want %d (trapped)\noutput: %s", status, ExitTrapped, out)
	}
	if !strings.Contains(out, "BOOM") {
		t.Errorf("output missing BOOM: %q", out)
	}
}

func TestPartialProgressThenTrap(t *testing.T) {
	m, err := Generate(11, 4)
	if err != nil {
		t.Fatal(err)
	}
	// First two answers right, third wrong.
	input := m.Floors[0].Answer + "\n" + m.Floors[1].Answer + "\n999999\nx\n"
	status, out, err := m.Run(input)
	if err != nil {
		t.Fatal(err)
	}
	if status != ExitTrapped {
		t.Errorf("status = %d", status)
	}
	if got := strings.Count(out, "floor passed"); got != 2 {
		t.Errorf("passed %d floors, want 2: %q", got, out)
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(1, 0); err == nil {
		t.Error("0 floors should fail")
	}
	if _, err := Generate(1, 9); err == nil {
		t.Error("9 floors should fail")
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a, err := Generate(42, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(42, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.Source != b.Source {
		t.Error("same seed should generate identical mazes")
	}
	if a.Answers() != b.Answers() {
		t.Error("same seed should have identical answers")
	}
	c, err := Generate(43, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.Source == c.Source {
		t.Error("different seeds should differ")
	}
}

func TestAllFloorKinds(t *testing.T) {
	m, err := Generate(3, 8)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[FloorKind]bool)
	for _, f := range m.Floors {
		seen[f.Kind] = true
		if f.Answer == "" {
			t.Errorf("floor %v has empty answer", f.Kind)
		}
	}
	for k := FloorConstant; k <= FloorXorString; k++ {
		if !seen[k] {
			t.Errorf("kind %v not generated in 8 floors", k)
		}
	}
	status, out, err := m.Run(m.Answers())
	if err != nil {
		t.Fatalf("8-floor run: %v\n%s", err, out)
	}
	if status != ExitEscaped {
		t.Errorf("8-floor escape failed: status %d\n%s", status, out)
	}
}

// The lab's actual workflow: solve a floor by inspecting memory with the
// debugger instead of being told the answer.
func TestSolveConstantFloorWithDebugger(t *testing.T) {
	m, err := Generate(99, 1) // floor 0 is always FloorConstant
	if err != nil {
		t.Fatal(err)
	}
	if m.Floors[0].Kind != FloorConstant {
		t.Fatalf("floor 0 kind %v", m.Floors[0].Kind)
	}
	mach, err := asm.NewMachine(m.Prog)
	if err != nil {
		t.Fatal(err)
	}
	d := debug.New(mach, 0)
	// "x/1w &secret_0" reveals the answer without running anything.
	words, err := d.Examine(m.Prog.Symbols["secret_0"], 1)
	if err != nil {
		t.Fatal(err)
	}
	discovered := words[0]
	status, _, err := m.Run(strconv.Itoa(int(discovered)) + "\n")
	if err != nil {
		t.Fatal(err)
	}
	if status != ExitEscaped {
		t.Errorf("debugger-discovered answer %d did not escape", discovered)
	}
}

func TestFloorKindString(t *testing.T) {
	if FloorConstant.String() != "constant" || FloorXorString.String() != "xor-string" {
		t.Error("FloorKind names")
	}
}
