// Package maze generates Lab 5's "binary maze": an assembly program of
// successive floors, each demanding a specific input on stdin. Students (or
// the test suite) escape by disassembling the floors and tracing them with
// the debug package, exactly as the lab has students do with GDB on the
// binary bomb-style maze. Each maze is generated deterministically from a
// seed, and the generator knows the expected inputs so tests can verify
// both escape and failure paths.
package maze

import (
	"fmt"
	"math/rand"
	"strings"

	"cs31/internal/asm"
)

// FloorKind enumerates the challenge types, in increasing difficulty.
type FloorKind int

// The floor kinds, mirroring the lab's progression from direct comparison
// to arithmetic, loops, and string obfuscation.
const (
	FloorConstant   FloorKind = iota // enter a constant stored in .data
	FloorArithmetic                  // enter x with a*x + b == target
	FloorSum                         // enter x equal to the sum of an array
	FloorXorString                   // enter the string stored XOR-encoded
)

func (k FloorKind) String() string {
	return [...]string{"constant", "arithmetic", "array-sum", "xor-string"}[k]
}

// Floor is one challenge with its secret answer.
type Floor struct {
	Kind   FloorKind
	Answer string // the exact line of input that passes the floor
}

// Maze is a generated maze: the assembly source, the assembled program, and
// the per-floor answers.
type Maze struct {
	Floors []Floor
	Source string
	Prog   *asm.Program
}

// Exit statuses reported by the maze program.
const (
	ExitEscaped = 0  // all floors passed
	ExitTrapped = 13 // wrong input
)

// Generate builds a maze with the given number of floors (1..8) from a
// deterministic seed.
func Generate(seed int64, floors int) (*Maze, error) {
	if floors < 1 || floors > 8 {
		return nil, fmt.Errorf("maze: floor count %d out of range [1,8]", floors)
	}
	rng := rand.New(rand.NewSource(seed))
	m := &Maze{}
	var data, text strings.Builder

	data.WriteString(".data\n")
	data.WriteString("welcome: .asciz \"maze: enter inputs to escape\\n\"\n")
	data.WriteString("goodmsg: .asciz \"floor passed\\n\"\n")
	data.WriteString("badmsg:  .asciz \"BOOM: wrong turn\\n\"\n")
	data.WriteString("strbuf:  .space 64\n")

	text.WriteString(".text\n")
	text.WriteString("main:\n")
	emitWrite(&text, "welcome", 29)

	for i := 0; i < floors; i++ {
		kind := FloorKind(i % 4)
		floor, err := emitFloor(&data, &text, rng, i, kind)
		if err != nil {
			return nil, err
		}
		m.Floors = append(m.Floors, floor)
		emitWrite(&text, "goodmsg", 13)
	}

	// Escape: exit(0).
	text.WriteString("    movl $1, %eax\n    movl $0, %ebx\n    int $0x80\n")
	// Trap: print BOOM, exit(13).
	text.WriteString("trap:\n")
	emitWrite(&text, "badmsg", 17)
	fmt.Fprintf(&text, "    movl $1, %%eax\n    movl $%d, %%ebx\n    int $0x80\n", ExitTrapped)
	// Shared helper: read a newline-terminated string into strbuf,
	// NUL-terminating it (reads one byte at a time).
	text.WriteString(`readline:
    pushl %ebp
    movl %esp, %ebp
    movl $strbuf, %esi
rl_loop:
    movl $3, %eax
    movl $0, %ebx
    movl %esi, %ecx
    movl $1, %edx
    int $0x80
    cmpl $1, %eax
    jne rl_done
    movzbl (%esi), %eax
    cmpl $10, %eax
    jne rl_store
    cmpl $strbuf, %esi    # leading newline left over from read_int? skip it
    je rl_loop
    jmp rl_done
rl_store:
    incl %esi
    movl $strbuf, %eax
    addl $63, %eax
    cmpl %eax, %esi
    jb rl_loop
rl_done:
    movb $0, (%esi)
    leave
    ret
`)

	m.Source = data.String() + text.String()
	p, err := asm.Assemble(m.Source)
	if err != nil {
		return nil, fmt.Errorf("maze: generated source failed to assemble: %w", err)
	}
	m.Prog = p
	return m, nil
}

func emitWrite(text *strings.Builder, sym string, n int) {
	fmt.Fprintf(text, "    movl $4, %%eax\n    movl $1, %%ebx\n    movl $%s, %%ecx\n    movl $%d, %%edx\n    int $0x80\n", sym, n)
}

func emitFloor(data, text *strings.Builder, rng *rand.Rand, idx int, kind FloorKind) (Floor, error) {
	f := Floor{Kind: kind}
	fmt.Fprintf(text, "floor_%d:\n", idx)
	switch kind {
	case FloorConstant:
		secret := rng.Intn(9000) + 1000
		fmt.Fprintf(data, "secret_%d: .long %d\n", idx, secret)
		f.Answer = fmt.Sprintf("%d", secret)
		fmt.Fprintf(text, `    movl $6, %%eax
    int $0x80
    cmpl secret_%d, %%eax
    jne trap
`, idx)

	case FloorArithmetic:
		a := rng.Intn(9) + 2
		x := rng.Intn(500) + 1
		b := rng.Intn(100)
		target := a*x + b
		f.Answer = fmt.Sprintf("%d", x)
		fmt.Fprintf(text, `    movl $6, %%eax
    int $0x80
    imull $%d, %%eax
    addl $%d, %%eax
    cmpl $%d, %%eax
    jne trap
`, a, b, target)

	case FloorSum:
		n := rng.Intn(4) + 3
		sum := 0
		vals := make([]string, n)
		for i := range vals {
			v := rng.Intn(100) + 1
			sum += v
			vals[i] = fmt.Sprintf("%d", v)
		}
		fmt.Fprintf(data, "arr_%d: .long %s\n", idx, strings.Join(vals, ", "))
		f.Answer = fmt.Sprintf("%d", sum)
		fmt.Fprintf(text, `    movl $6, %%eax
    int $0x80
    movl %%eax, %%edi
    movl $0, %%eax
    movl $0, %%ecx
sumloop_%d:
    cmpl $%d, %%ecx
    jge sumdone_%d
    movl $arr_%d, %%esi
    addl (%%esi,%%ecx,4), %%eax
    incl %%ecx
    jmp sumloop_%d
sumdone_%d:
    cmpl %%edi, %%eax
    jne trap
`, idx, n, idx, idx, idx, idx)

	case FloorXorString:
		words := []string{"parallel", "pthread", "barrier", "mutex", "speedup", "deadlock"}
		secret := words[rng.Intn(len(words))]
		key := byte(rng.Intn(200) + 20)
		enc := make([]string, len(secret)+1)
		for i := 0; i < len(secret); i++ {
			enc[i] = fmt.Sprintf("%d", secret[i]^key)
		}
		enc[len(secret)] = fmt.Sprintf("%d", key) // terminator encodes to key^key=0... store key^0=key
		fmt.Fprintf(data, "enc_%d: .byte %s\n", idx, strings.Join(enc, ", "))
		f.Answer = secret
		// Decode loop: compare strbuf[i] against enc[i]^key until the
		// decoded NUL.
		fmt.Fprintf(text, `    call readline
    movl $strbuf, %%esi
    movl $enc_%d, %%edi
cmp_%d:
    movzbl (%%edi), %%eax
    xorl $%d, %%eax
    movzbl (%%esi), %%ebx
    cmpl %%ebx, %%eax
    jne trap
    cmpl $0, %%eax
    je cmpdone_%d
    incl %%esi
    incl %%edi
    jmp cmp_%d
cmpdone_%d:
`, idx, idx, key, idx, idx, idx)
	}
	return f, nil
}

// Answers returns the newline-joined input that escapes the maze.
func (m *Maze) Answers() string {
	parts := make([]string, len(m.Floors))
	for i, f := range m.Floors {
		parts[i] = f.Answer
	}
	return strings.Join(parts, "\n") + "\n"
}

// Run executes the maze with the given stdin text and returns the exit
// status (ExitEscaped or ExitTrapped) and the program's output.
func (m *Maze) Run(input string) (int32, string, error) {
	mach, err := asm.NewMachine(m.Prog)
	if err != nil {
		return 0, "", err
	}
	var out strings.Builder
	mach.Stdin = strings.NewReader(input)
	mach.Stdout = &out
	if err := mach.Run(5_000_000); err != nil {
		return 0, out.String(), err
	}
	return mach.ExitStatus, out.String(), nil
}
