// Package survey reproduces the evaluation instruments of the paper's
// Section IV: the Table I taxonomy of TCPP topics CS 31 covers, the
// five-point Bloom's-taxonomy rating scale of the upper-level student
// survey, a deterministic synthetic-cohort generator standing in for the
// (non-public) student responses, the average/median aggregation Figure 1
// plots, and text renderers that regenerate both exhibits.
//
// Substitution note: the real per-student responses from CS 87 (Fall 2021)
// and CS 43 (Spring 2022) are not published. The generator models what the
// paper reports qualitatively — every topic is at least recognized, topics
// the course emphasizes heavily rate at deeper Bloom levels, and ratings
// decay with time since CS 31 ("for some of the students ... up to two
// years") — so the reproduced Figure 1 preserves the shape of the
// original: all bars above "recognize", emphasized topics near
// "analyze"/"apply".
package survey

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// BloomLevel is the survey's five-point scale.
type BloomLevel int

// The rating scale, verbatim from the paper.
const (
	NotRecognize BloomLevel = iota // 0: do not recognize the topic
	Recognize                      // 1: recognize the topic/concept/term
	Define                         // 2: could define it
	Analyze                        // 3: could analyze/understand it in a given solution
	Apply                          // 4: could apply it to a problem
)

var bloomNames = [...]string{
	"do not recognize", "recognize", "define", "analyze", "apply",
}

func (b BloomLevel) String() string {
	if b >= 0 && int(b) < len(bloomNames) {
		return bloomNames[b]
	}
	return fmt.Sprintf("level(%d)", int(b))
}

// TCPPCategory is one row group of Table I.
type TCPPCategory struct {
	Name   string
	Topics []string
}

// Table1 is the paper's Table I: the main TCPP topics covered in CS 31.
var Table1 = []TCPPCategory{
	{
		Name: "Pervasive",
		Topics: []string{
			"concurrency", "asynchrony", "locality", "performance in many contexts",
		},
	},
	{
		Name: "Architecture",
		Topics: []string{
			"multicore", "caching", "latency", "bandwidth", "atomicity",
			"consistency", "coherency", "pipelining", "instruction execution",
			"memory hierarchy", "multithreading", "buses", "process ID", "interrupts",
		},
	},
	{
		Name: "Programming",
		Topics: []string{
			"shared memory parallelization", "pthreads", "critical sections",
			"producer-consumer", "performance improvement", "synchronization",
			"deadlock", "race conditions", "memory data layout",
			"spatial and temporal locality", "signals",
		},
	},
	{
		Name: "Algorithms",
		Topics: []string{
			"dependencies", "space/memory", "speedup", "Amdahl's Law",
			"synchronization", "efficiency",
		},
	},
}

// RenderTable1 regenerates Table I as text.
func RenderTable1() string {
	var sb strings.Builder
	sb.WriteString("Table I: Main TCPP topics covered in CS 31\n")
	sb.WriteString(fmt.Sprintf("%-14s %s\n", "TCPP Category", "CS 31 Topics"))
	sb.WriteString(strings.Repeat("-", 72) + "\n")
	for _, cat := range Table1 {
		sb.WriteString(fmt.Sprintf("%-14s %s\n", cat.Name, strings.Join(cat.Topics, ", ")))
	}
	return sb.String()
}

// Topic is one x-axis entry of Figure 1 with the course-emphasis weight
// that drives the synthetic cohort. Emphasis in [0,1]: 1 = the course
// drills it heavily (memory hierarchy, C programming, pthreads, races,
// synchronization per §IV), 0 = mentioned only in passing.
type Topic struct {
	Name     string
	Emphasis float64
}

// Figure1Topics is the topic list of the survey. The paper's figure axis
// labels are not machine-readable in the source; this list is assembled
// from the topics §IV names explicitly plus the Table I programming and
// algorithms rows the survey draws from.
var Figure1Topics = []Topic{
	{Name: "C programming", Emphasis: 1.0},
	{Name: "memory hierarchy", Emphasis: 1.0},
	{Name: "caching", Emphasis: 0.85},
	{Name: "race conditions", Emphasis: 0.95},
	{Name: "synchronization", Emphasis: 0.95},
	{Name: "pthreads programming", Emphasis: 0.9},
	{Name: "threads vs processes", Emphasis: 0.85},
	{Name: "processes/fork/wait", Emphasis: 0.85},
	{Name: "virtual memory", Emphasis: 0.75},
	{Name: "concurrency", Emphasis: 0.8},
	{Name: "multicore architecture", Emphasis: 0.7},
	{Name: "speedup", Emphasis: 0.7},
	{Name: "Amdahl's Law", Emphasis: 0.4},
	{Name: "deadlock", Emphasis: 0.6},
	{Name: "producer-consumer", Emphasis: 0.6},
	{Name: "locality", Emphasis: 0.8},
	{Name: "atomicity", Emphasis: 0.5},
	{Name: "cache coherency", Emphasis: 0.3},
}

// Response is one student's rating for every topic (indexed as
// Figure1Topics).
type Response struct {
	Student    int
	YearsSince float64 // time since taking CS 31, up to ~2 years
	Ratings    []BloomLevel
}

// Cohort is a set of responses plus the topic list they rate.
type Cohort struct {
	Topics    []Topic
	Responses []Response
}

// SyntheticCohort generates n deterministic student responses. Each
// student has an aptitude offset and a time-since-course retention decay;
// each topic's expected rating is 1 + 3*emphasis (so nothing falls below
// "recognize" on average), then noise, decay, and clamping to [0,4] apply.
func SyntheticCohort(seed int64, n int) *Cohort {
	rng := rand.New(rand.NewSource(seed))
	c := &Cohort{Topics: Figure1Topics}
	for s := 0; s < n; s++ {
		years := rng.Float64() * 2 // "up to two years since they took CS 31"
		aptitude := rng.NormFloat64() * 0.5
		resp := Response{Student: s, YearsSince: years,
			Ratings: make([]BloomLevel, len(c.Topics))}
		for i, topic := range c.Topics {
			expected := 1.0 + 3.0*topic.Emphasis
			decay := 0.35 * years * (1.2 - topic.Emphasis) // emphasized topics stick
			noise := rng.NormFloat64() * 0.6
			v := expected - decay + aptitude + noise
			r := int(v + 0.5)
			if r < 0 {
				r = 0
			}
			if r > 4 {
				r = 4
			}
			resp.Ratings[i] = BloomLevel(r)
		}
		c.Responses = append(c.Responses, resp)
	}
	return c
}

// TopicStat is one bar of Figure 1.
type TopicStat struct {
	Topic  string
	Mean   float64
	Median float64
}

// Aggregate computes the per-topic mean and median Figure 1 plots.
func (c *Cohort) Aggregate() ([]TopicStat, error) {
	if len(c.Responses) == 0 {
		return nil, fmt.Errorf("survey: empty cohort")
	}
	stats := make([]TopicStat, len(c.Topics))
	for i, topic := range c.Topics {
		vals := make([]int, 0, len(c.Responses))
		sum := 0
		for _, r := range c.Responses {
			if len(r.Ratings) != len(c.Topics) {
				return nil, fmt.Errorf("survey: student %d rated %d of %d topics",
					r.Student, len(r.Ratings), len(c.Topics))
			}
			v := int(r.Ratings[i])
			vals = append(vals, v)
			sum += v
		}
		sort.Ints(vals)
		var median float64
		mid := len(vals) / 2
		if len(vals)%2 == 1 {
			median = float64(vals[mid])
		} else {
			median = float64(vals[mid-1]+vals[mid]) / 2
		}
		stats[i] = TopicStat{
			Topic:  topic.Name,
			Mean:   float64(sum) / float64(len(vals)),
			Median: median,
		}
	}
	return stats, nil
}

// RenderFigure1 draws the figure as a horizontal ASCII bar chart: one row
// per topic, '#' bars scaled to the 0..4 Bloom axis, mean value and median
// marker annotated — the same information as the paper's Figure 1.
func RenderFigure1(stats []TopicStat) string {
	const width = 40 // chart columns for the 0..4 axis
	var sb strings.Builder
	sb.WriteString("Figure 1: Upper-level students' rating of their understanding of\n")
	sb.WriteString("PDC topics introduced in CS 31 (0=not recognize .. 4=apply)\n\n")
	for _, s := range stats {
		bar := int(s.Mean / 4 * width)
		if bar > width {
			bar = width
		}
		med := int(s.Median / 4 * float64(width))
		if med >= width {
			med = width - 1
		}
		line := []byte(strings.Repeat("#", bar) + strings.Repeat(" ", width-bar))
		if med >= 0 && med < len(line) {
			line[med] = '|'
		}
		sb.WriteString(fmt.Sprintf("%-24s [%s] mean %.2f median %.1f\n",
			s.Topic, string(line), s.Mean, s.Median))
	}
	sb.WriteString("\n('|' marks the median; bars show the mean)\n")
	return sb.String()
}

// CheckPaperShape validates that aggregated stats reproduce the paper's
// qualitative findings: (1) every topic is recognized on average
// (mean >= 1); (2) the heavily-emphasized topics (emphasis >= 0.9) rate at
// least "define" on average and outscore the de-emphasized tail
// (emphasis <= 0.5); (3) no topic averages a perfect 4 ("expected results
// are not all 4s"). It returns a list of violations, empty when the shape
// holds.
func CheckPaperShape(topics []Topic, stats []TopicStat) []string {
	var problems []string
	if len(topics) != len(stats) {
		return []string{"topic/stat length mismatch"}
	}
	var hiSum, hiN, loSum, loN float64
	for i, topic := range topics {
		s := stats[i]
		if s.Mean < 1 {
			problems = append(problems,
				fmt.Sprintf("%s: mean %.2f below 'recognize'", s.Topic, s.Mean))
		}
		if s.Mean >= 3.999 {
			problems = append(problems,
				fmt.Sprintf("%s: mean %.2f is a perfect score", s.Topic, s.Mean))
		}
		if topic.Emphasis >= 0.9 {
			hiSum += s.Mean
			hiN++
			if s.Mean < 2 {
				problems = append(problems,
					fmt.Sprintf("%s: emphasized topic below 'define' (%.2f)", s.Topic, s.Mean))
			}
		}
		if topic.Emphasis <= 0.5 {
			loSum += s.Mean
			loN++
		}
	}
	if hiN > 0 && loN > 0 && hiSum/hiN <= loSum/loN {
		problems = append(problems, "emphasized topics do not outscore de-emphasized ones")
	}
	return problems
}

// PostCourseCohort derives the end-of-semester reflection cohort the paper
// planned for CS 43 ("we plan to run it again at the end of the semester
// as a post-course reflection"): the same students after a semester of
// upper-level work plus the "lab 0" refresher the paper describes, which
// restores decayed skills. Each rating recovers toward the course-emphasis
// ceiling.
func PostCourseCohort(pre *Cohort, seed int64) *Cohort {
	rng := rand.New(rand.NewSource(seed))
	post := &Cohort{Topics: pre.Topics}
	for _, r := range pre.Responses {
		nr := Response{Student: r.Student, YearsSince: r.YearsSince,
			Ratings: make([]BloomLevel, len(r.Ratings))}
		for i, v := range r.Ratings {
			ceiling := 1.0 + 3.0*pre.Topics[i].Emphasis
			recovered := float64(v) + (ceiling-float64(v))*0.6 + rng.NormFloat64()*0.3
			nv := int(recovered + 0.5)
			if nv < int(v) {
				nv = int(v) // refreshed skills do not regress
			}
			if nv > 4 {
				nv = 4
			}
			nr.Ratings[i] = BloomLevel(nv)
		}
		post.Responses = append(post.Responses, nr)
	}
	return post
}

// CompareCohorts renders a per-topic pre/post mean comparison.
func CompareCohorts(pre, post *Cohort) (string, error) {
	preStats, err := pre.Aggregate()
	if err != nil {
		return "", err
	}
	postStats, err := post.Aggregate()
	if err != nil {
		return "", err
	}
	if len(preStats) != len(postStats) {
		return "", fmt.Errorf("survey: cohorts rate different topic lists")
	}
	var sb strings.Builder
	sb.WriteString("pre- vs post-course self-ratings (mean, 0-4 Bloom scale)\n\n")
	fmt.Fprintf(&sb, "%-24s %6s %6s %7s\n", "topic", "pre", "post", "change")
	for i := range preStats {
		fmt.Fprintf(&sb, "%-24s %6.2f %6.2f %+7.2f\n",
			preStats[i].Topic, preStats[i].Mean, postStats[i].Mean,
			postStats[i].Mean-preStats[i].Mean)
	}
	return sb.String(), nil
}
