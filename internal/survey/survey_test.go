package survey

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestBloomScale(t *testing.T) {
	if NotRecognize != 0 || Apply != 4 {
		t.Error("scale endpoints")
	}
	if Recognize.String() != "recognize" || Apply.String() != "apply" {
		t.Error("level names")
	}
	if BloomLevel(9).String() != "level(9)" {
		t.Error("out-of-range name")
	}
}

func TestTable1Contents(t *testing.T) {
	if len(Table1) != 4 {
		t.Fatalf("Table I has %d categories, want 4", len(Table1))
	}
	names := []string{"Pervasive", "Architecture", "Programming", "Algorithms"}
	for i, cat := range Table1 {
		if cat.Name != names[i] {
			t.Errorf("category %d = %q", i, cat.Name)
		}
		if len(cat.Topics) == 0 {
			t.Errorf("category %q empty", cat.Name)
		}
	}
	out := RenderTable1()
	for _, want := range []string{"Pervasive", "pthreads", "Amdahl's Law", "memory hierarchy"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestSyntheticCohortDeterministic(t *testing.T) {
	a := SyntheticCohort(31, 60)
	b := SyntheticCohort(31, 60)
	if len(a.Responses) != 60 {
		t.Fatalf("cohort size %d", len(a.Responses))
	}
	for i := range a.Responses {
		for j := range a.Responses[i].Ratings {
			if a.Responses[i].Ratings[j] != b.Responses[i].Ratings[j] {
				t.Fatal("same seed should reproduce identical cohorts")
			}
		}
	}
	c := SyntheticCohort(32, 60)
	same := true
	for i := range a.Responses {
		for j := range a.Responses[i].Ratings {
			if a.Responses[i].Ratings[j] != c.Responses[i].Ratings[j] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestRatingsInRange(t *testing.T) {
	c := SyntheticCohort(7, 100)
	for _, r := range c.Responses {
		if len(r.Ratings) != len(c.Topics) {
			t.Fatalf("student %d rated %d topics", r.Student, len(r.Ratings))
		}
		if r.YearsSince < 0 || r.YearsSince > 2 {
			t.Errorf("years since course: %v", r.YearsSince)
		}
		for _, v := range r.Ratings {
			if v < 0 || v > 4 {
				t.Fatalf("rating %d out of scale", v)
			}
		}
	}
}

func TestAggregateAndShape(t *testing.T) {
	// The paper's cohort: ~60 students per course, two courses surveyed.
	c := SyntheticCohort(2022, 120)
	stats, err := c.Aggregate()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != len(Figure1Topics) {
		t.Fatalf("stats for %d topics", len(stats))
	}
	if problems := CheckPaperShape(c.Topics, stats); len(problems) != 0 {
		t.Errorf("shape violations: %v", problems)
	}
}

// Property: the paper's shape holds across seeds — the reproduction is not
// an artifact of one lucky cohort.
func TestShapeAcrossSeeds(t *testing.T) {
	f := func(seed int64) bool {
		c := SyntheticCohort(seed, 100)
		stats, err := c.Aggregate()
		if err != nil {
			return false
		}
		return len(CheckPaperShape(c.Topics, stats)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestAggregateErrors(t *testing.T) {
	empty := &Cohort{Topics: Figure1Topics}
	if _, err := empty.Aggregate(); err == nil {
		t.Error("empty cohort should fail")
	}
	bad := &Cohort{
		Topics:    Figure1Topics,
		Responses: []Response{{Ratings: []BloomLevel{1}}},
	}
	if _, err := bad.Aggregate(); err == nil {
		t.Error("short rating vector should fail")
	}
}

func TestMedianEvenCohort(t *testing.T) {
	c := &Cohort{
		Topics: []Topic{{Name: "x", Emphasis: 1}},
		Responses: []Response{
			{Ratings: []BloomLevel{2}},
			{Ratings: []BloomLevel{3}},
		},
	}
	stats, err := c.Aggregate()
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].Median != 2.5 || stats[0].Mean != 2.5 {
		t.Errorf("stats: %+v", stats[0])
	}
}

func TestRenderFigure1(t *testing.T) {
	c := SyntheticCohort(1, 60)
	stats, err := c.Aggregate()
	if err != nil {
		t.Fatal(err)
	}
	out := RenderFigure1(stats)
	for _, want := range []string{"Figure 1", "C programming", "mean", "median", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure missing %q", want)
		}
	}
	lines := strings.Split(out, "\n")
	if len(lines) < len(Figure1Topics)+3 {
		t.Errorf("figure too short: %d lines", len(lines))
	}
}

func TestCheckPaperShapeDetectsViolations(t *testing.T) {
	topics := []Topic{{Name: "hi", Emphasis: 1}, {Name: "lo", Emphasis: 0.2}}
	bad := []TopicStat{
		{Topic: "hi", Mean: 0.5, Median: 0}, // below recognize, below define
		{Topic: "lo", Mean: 4.0, Median: 4}, // perfect score, beats emphasized
	}
	problems := CheckPaperShape(topics, bad)
	if len(problems) < 3 {
		t.Errorf("violations: %v", problems)
	}
	if got := CheckPaperShape(topics, bad[:1]); len(got) != 1 || got[0] != "topic/stat length mismatch" {
		t.Errorf("mismatch check: %v", got)
	}
}

func TestPostCourseCohortRecovers(t *testing.T) {
	pre := SyntheticCohort(2022, 100)
	post := PostCourseCohort(pre, 2023)
	preStats, err := pre.Aggregate()
	if err != nil {
		t.Fatal(err)
	}
	postStats, err := post.Aggregate()
	if err != nil {
		t.Fatal(err)
	}
	improved := 0
	for i := range preStats {
		if postStats[i].Mean < preStats[i].Mean-1e-9 {
			t.Errorf("%s: post %.2f below pre %.2f", preStats[i].Topic,
				postStats[i].Mean, preStats[i].Mean)
		}
		if postStats[i].Mean > preStats[i].Mean {
			improved++
		}
	}
	if improved < len(preStats)/2 {
		t.Errorf("only %d/%d topics improved after the course", improved, len(preStats))
	}
	// Per-student monotonicity: the refresher never regresses a rating.
	for i, r := range pre.Responses {
		for j := range r.Ratings {
			if post.Responses[i].Ratings[j] < r.Ratings[j] {
				t.Fatalf("student %d topic %d regressed", i, j)
			}
		}
	}
}

func TestCompareCohorts(t *testing.T) {
	pre := SyntheticCohort(1, 60)
	post := PostCourseCohort(pre, 2)
	out, err := CompareCohorts(pre, post)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"pre", "post", "change", "C programming", "+"} {
		if !strings.Contains(out, want) {
			t.Errorf("comparison missing %q:\n%s", want, out)
		}
	}
	empty := &Cohort{Topics: Figure1Topics}
	if _, err := CompareCohorts(empty, post); err == nil {
		t.Error("empty pre cohort should fail")
	}
	if _, err := CompareCohorts(pre, empty); err == nil {
		t.Error("empty post cohort should fail")
	}
}
