package memcheck

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCleanRun(t *testing.T) {
	h := NewHeap(1 << 16)
	a, err := h.Malloc(64, "main.c:10")
	if err != nil {
		t.Fatal(err)
	}
	h.Write(a, 64)
	h.Read(a, 64)
	h.Free(a)
	if !h.Clean() {
		t.Errorf("clean run flagged:\n%s", h.Report())
	}
	if !strings.Contains(h.Report(), "no leaks are possible") {
		t.Errorf("report:\n%s", h.Report())
	}
	if h.Allocs != 1 || h.Frees != 1 || h.Bytes != 0 || h.Peak != 64 {
		t.Errorf("stats: allocs=%d frees=%d bytes=%d peak=%d", h.Allocs, h.Frees, h.Bytes, h.Peak)
	}
}

func TestLeakDetection(t *testing.T) {
	h := NewHeap(1 << 16)
	h.Malloc(100, "leaky.c:5")
	a2, _ := h.Malloc(50, "ok.c:6")
	h.Free(a2)
	leaks := h.LeakCheck()
	if len(leaks) != 1 {
		t.Fatalf("leaks: %v", leaks)
	}
	if leaks[0].Size != 100 || leaks[0].Label != "leaky.c:5" {
		t.Errorf("leak: %+v", leaks[0])
	}
	if h.Clean() {
		t.Error("leaky heap reported clean")
	}
	if !strings.Contains(h.Report(), "definitely lost") {
		t.Errorf("report:\n%s", h.Report())
	}
}

func TestDoubleFree(t *testing.T) {
	h := NewHeap(1 << 16)
	a, _ := h.Malloc(8, "x")
	h.Free(a)
	h.Free(a)
	errs := h.Errors()
	if len(errs) != 1 || errs[0].Kind != DoubleFree {
		t.Errorf("errors: %v", errs)
	}
}

func TestInvalidFree(t *testing.T) {
	h := NewHeap(1 << 16)
	h.Free(0x9999)
	errs := h.Errors()
	if len(errs) != 1 || errs[0].Kind != InvalidFree {
		t.Errorf("errors: %v", errs)
	}
}

func TestUseAfterFree(t *testing.T) {
	h := NewHeap(1 << 16)
	a, _ := h.Malloc(16, "x")
	h.Write(a, 16)
	h.Free(a)
	h.Read(a, 4)
	h.Write(a, 4)
	errs := h.Errors()
	if len(errs) != 2 {
		t.Fatalf("errors: %v", errs)
	}
	for _, e := range errs {
		if e.Kind != UseAfterFree {
			t.Errorf("kind: %v", e)
		}
	}
}

func TestOutOfBounds(t *testing.T) {
	h := NewHeap(1 << 16)
	a, _ := h.Malloc(8, "buf")
	h.Write(a, 8)
	h.Write(a+4, 8) // 4 bytes past the end
	errs := h.Errors()
	if len(errs) != 1 || errs[0].Kind != OutOfBounds {
		t.Errorf("errors: %v", errs)
	}
	// Read entirely outside any block.
	h.Read(0xf000, 4)
	if got := h.Errors(); len(got) != 2 || got[1].Kind != OutOfBounds {
		t.Errorf("errors: %v", got)
	}
}

func TestUninitializedRead(t *testing.T) {
	h := NewHeap(1 << 16)
	a, _ := h.Malloc(8, "u")
	h.Read(a, 4)
	errs := h.Errors()
	if len(errs) != 1 || errs[0].Kind != UninitializedRead {
		t.Errorf("errors: %v", errs)
	}
	// Calloc memory reads clean.
	b, err := h.Calloc(4, 2, "c")
	if err != nil {
		t.Fatal(err)
	}
	h.Read(b, 8)
	if len(h.Errors()) != 1 {
		t.Errorf("calloc read flagged: %v", h.Errors())
	}
}

func TestPartialInitRead(t *testing.T) {
	h := NewHeap(1 << 16)
	a, _ := h.Malloc(8, "p")
	h.Write(a, 4)
	h.Read(a, 4) // initialized half: fine
	if len(h.Errors()) != 0 {
		t.Errorf("errors: %v", h.Errors())
	}
	h.Read(a, 8) // crosses into uninitialized bytes
	if len(h.Errors()) != 1 {
		t.Errorf("errors: %v", h.Errors())
	}
}

func TestCallocOverflow(t *testing.T) {
	h := NewHeap(1 << 16)
	if _, err := h.Calloc(1<<16, 1<<17, "o"); err == nil {
		t.Error("calloc overflow should fail")
	}
}

func TestOutOfMemory(t *testing.T) {
	h := NewHeap(128)
	if _, err := h.Malloc(1024, "big"); err == nil {
		t.Error("allocation beyond capacity should fail")
	}
}

func TestMallocZero(t *testing.T) {
	h := NewHeap(1 << 16)
	a, err := h.Malloc(0, "z")
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Malloc(0, "z2")
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("malloc(0) should return distinct pointers")
	}
	h.Free(a)
	h.Free(b)
	if !h.Clean() {
		t.Error("zero-size blocks should free cleanly")
	}
}

// Property: any sequence of valid alloc/write/read/free pairs is clean, and
// blocks never overlap.
func TestDisjointAllocationsProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		h := NewHeap(1 << 20)
		type span struct{ lo, hi uint32 }
		var spans []span
		var addrs []uint32
		for _, s := range sizes {
			size := uint32(s) + 1
			a, err := h.Malloc(size, "p")
			if err != nil {
				return true // heap full is fine
			}
			for _, sp := range spans {
				if a < sp.hi && a+size > sp.lo {
					return false // overlap
				}
			}
			spans = append(spans, span{a, a + size})
			addrs = append(addrs, a)
			h.Write(a, size)
			h.Read(a, size)
		}
		for _, a := range addrs {
			h.Free(a)
		}
		return h.Clean()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestReportFormat(t *testing.T) {
	h := NewHeap(1 << 16)
	a, _ := h.Malloc(32, "lab7.c:42")
	h.Free(a)
	h.Free(a)
	h.Malloc(16, "lab7.c:50")
	rep := h.Report()
	for _, want := range []string{"HEAP SUMMARY", "double free", "definitely lost", "ERROR SUMMARY: 2 errors"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestErrorKindStrings(t *testing.T) {
	if Leak.String() != "definitely lost (leak)" || UseAfterFree.String() != "use after free" {
		t.Error("kind names")
	}
	e := MemError{Kind: DoubleFree, Addr: 0x10, Size: 4, Label: "x"}
	if !strings.Contains(e.String(), "double free") {
		t.Error("error string")
	}
}
