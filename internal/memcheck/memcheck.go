// Package memcheck is the course's Valgrind stand-in: a simulated heap
// allocator whose Malloc/Free/Read/Write operations detect the memory
// errors CS 31 teaches students to find — leaks, double frees, frees of
// non-heap pointers, use after free, and out-of-bounds access caught by
// red zones around every block. A final Report lists everything, like
// "valgrind --leak-check=full".
package memcheck

import (
	"fmt"
	"sort"
	"strings"
)

// ErrorKind classifies a detected memory error.
type ErrorKind int

// The detectable error kinds.
const (
	Leak ErrorKind = iota
	DoubleFree
	InvalidFree
	UseAfterFree
	OutOfBounds
	UninitializedRead
)

func (k ErrorKind) String() string {
	return [...]string{
		"definitely lost (leak)", "double free", "invalid free",
		"use after free", "out-of-bounds access", "uninitialized read",
	}[k]
}

// MemError is one detected error.
type MemError struct {
	Kind  ErrorKind
	Addr  uint32
	Size  uint32
	Label string // allocation site label
}

func (e MemError) String() string {
	return fmt.Sprintf("%v: address %#x (%d bytes, allocated at %q)",
		e.Kind, e.Addr, e.Size, e.Label)
}

// redZone is the guard band around each allocation.
const redZone = 16

// block is one heap allocation's metadata.
type block struct {
	addr  uint32 // address of the user region
	size  uint32
	label string
	freed bool
	init  []bool // per-byte initialized flags
}

// Heap is the simulated checked heap.
type Heap struct {
	brk    uint32
	limit  uint32
	blocks map[uint32]*block // by user address
	order  []uint32          // allocation order for reporting
	errs   []MemError

	Allocs int64
	Frees  int64
	Bytes  int64 // bytes currently allocated
	Peak   int64
}

// NewHeap creates a heap of the given capacity in bytes, with addresses
// starting near zero.
func NewHeap(capacity uint32) *Heap {
	return NewHeapRange(0, capacity)
}

// NewHeapRange creates a heap managing the address range [base, limit) —
// used by the asm machine to check its own heap segment, so that reported
// addresses are real machine addresses.
func NewHeapRange(base, limit uint32) *Heap {
	return &Heap{
		brk:    base + redZone,
		limit:  limit,
		blocks: make(map[uint32]*block),
	}
}

// record logs an error.
func (h *Heap) record(kind ErrorKind, addr, size uint32, label string) {
	h.errs = append(h.errs, MemError{Kind: kind, Addr: addr, Size: size, Label: label})
}

// Malloc allocates size bytes tagged with a label (the "file:line" of the
// allocation site). The memory is uninitialized, and reads before writes
// are reported.
func (h *Heap) Malloc(size uint32, label string) (uint32, error) {
	if size == 0 {
		size = 1 // C malloc(0) returns a unique pointer
	}
	aligned := (size + 7) &^ 7
	if h.brk+aligned+redZone > h.limit || h.brk+aligned+redZone < h.brk {
		return 0, fmt.Errorf("memcheck: out of memory (%d bytes requested)", size)
	}
	addr := h.brk
	h.brk += aligned + redZone
	b := &block{addr: addr, size: size, label: label, init: make([]bool, size)}
	h.blocks[addr] = b
	h.order = append(h.order, addr)
	h.Allocs++
	h.Bytes += int64(size)
	if h.Bytes > h.Peak {
		h.Peak = h.Bytes
	}
	return addr, nil
}

// Calloc is Malloc plus zero initialization.
func (h *Heap) Calloc(n, size uint32, label string) (uint32, error) {
	total := n * size
	if n != 0 && total/n != size {
		return 0, fmt.Errorf("memcheck: calloc overflow")
	}
	addr, err := h.Malloc(total, label)
	if err != nil {
		return 0, err
	}
	b := h.blocks[addr]
	for i := range b.init {
		b.init[i] = true // zeroed = initialized
	}
	return addr, nil
}

// Free releases an allocation, reporting double frees and invalid frees.
func (h *Heap) Free(addr uint32) {
	b, ok := h.blocks[addr]
	if !ok {
		h.record(InvalidFree, addr, 0, "?")
		return
	}
	if b.freed {
		h.record(DoubleFree, addr, b.size, b.label)
		return
	}
	b.freed = true
	h.Frees++
	h.Bytes -= int64(b.size)
}

// find locates the live or freed block containing addr, if any.
func (h *Heap) find(addr uint32) *block {
	for _, b := range h.blocks {
		if addr >= b.addr && addr < b.addr+b.size {
			return b
		}
	}
	return nil
}

// Write stores to [addr, addr+n), reporting use-after-free and
// out-of-bounds errors. The write proceeds (as it would in C) so downstream
// effects are observable.
func (h *Heap) Write(addr, n uint32) {
	b := h.find(addr)
	if b == nil {
		h.record(OutOfBounds, addr, n, "?")
		return
	}
	if b.freed {
		h.record(UseAfterFree, addr, n, b.label)
		return
	}
	if addr+n > b.addr+b.size {
		h.record(OutOfBounds, addr, n, b.label)
		n = b.addr + b.size - addr
	}
	for i := uint32(0); i < n; i++ {
		b.init[addr-b.addr+i] = true
	}
}

// Read loads from [addr, addr+n) with the same checks plus
// uninitialized-read detection.
func (h *Heap) Read(addr, n uint32) {
	b := h.find(addr)
	if b == nil {
		h.record(OutOfBounds, addr, n, "?")
		return
	}
	if b.freed {
		h.record(UseAfterFree, addr, n, b.label)
		return
	}
	if addr+n > b.addr+b.size {
		h.record(OutOfBounds, addr, n, b.label)
		n = b.addr + b.size - addr
	}
	for i := uint32(0); i < n; i++ {
		if !b.init[addr-b.addr+i] {
			h.record(UninitializedRead, addr+i, 1, b.label)
			return
		}
	}
}

// Errors returns all errors detected so far (not including leaks, which are
// computed by Report).
func (h *Heap) Errors() []MemError { return append([]MemError(nil), h.errs...) }

// LeakCheck returns one Leak error per unfreed block.
func (h *Heap) LeakCheck() []MemError {
	var leaks []MemError
	for _, addr := range h.order {
		b := h.blocks[addr]
		if !b.freed {
			leaks = append(leaks, MemError{Kind: Leak, Addr: b.addr, Size: b.size, Label: b.label})
		}
	}
	return leaks
}

// Report renders the valgrind-style summary: heap usage, every error, and
// the leak check.
func (h *Heap) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "HEAP SUMMARY:\n")
	fmt.Fprintf(&sb, "  in use at exit: %d bytes in %d blocks\n",
		h.Bytes, int64(len(h.LeakCheck())))
	fmt.Fprintf(&sb, "  total heap usage: %d allocs, %d frees, peak %d bytes\n",
		h.Allocs, h.Frees, h.Peak)
	all := append(h.Errors(), h.LeakCheck()...)
	sort.SliceStable(all, func(i, j int) bool { return all[i].Addr < all[j].Addr })
	if len(all) == 0 {
		sb.WriteString("\nAll heap blocks were freed -- no leaks are possible\n")
		sb.WriteString("ERROR SUMMARY: 0 errors\n")
		return sb.String()
	}
	sb.WriteString("\n")
	for _, e := range all {
		fmt.Fprintf(&sb, "  %s\n", e)
	}
	fmt.Fprintf(&sb, "ERROR SUMMARY: %d errors\n", len(all))
	return sb.String()
}

// Clean reports whether the heap finished with no errors and no leaks.
func (h *Heap) Clean() bool {
	return len(h.errs) == 0 && len(h.LeakCheck()) == 0
}
