package numrep

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestDecomposeFloat32Known(t *testing.T) {
	cases := []struct {
		f     float32
		sign  uint64
		exp   uint64
		class string
	}{
		{1.0, 0, 127, "normal"},
		{-2.0, 1, 128, "normal"},
		{0.0, 0, 0, "zero"},
		{float32(math.Inf(1)), 0, 255, "inf"},
		{float32(math.Inf(-1)), 1, 255, "inf"},
		{float32(math.NaN()), 0, 255, "nan"},
		{math.SmallestNonzeroFloat32, 0, 0, "subnormal"},
	}
	for _, c := range cases {
		p := DecomposeFloat32(c.f)
		if p.Sign != c.sign || p.Exponent != c.exp || p.Class != c.class {
			t.Errorf("DecomposeFloat32(%v) = %+v, want sign=%d exp=%d class=%s",
				c.f, p, c.sign, c.exp, c.class)
		}
	}
}

func TestDecomposeFloat64Known(t *testing.T) {
	p := DecomposeFloat64(1.0)
	if p.Sign != 0 || p.Exponent != 1023 || p.Mantissa != 0 || p.Class != "normal" {
		t.Errorf("DecomposeFloat64(1.0) = %+v", p)
	}
	if p.UnbiasedExponent() != 0 {
		t.Errorf("1.0 unbiased exponent = %d", p.UnbiasedExponent())
	}
	p = DecomposeFloat64(0.5)
	if p.UnbiasedExponent() != -1 {
		t.Errorf("0.5 unbiased exponent = %d", p.UnbiasedExponent())
	}
	p = DecomposeFloat64(math.SmallestNonzeroFloat64)
	if p.Class != "subnormal" || p.UnbiasedExponent() != -1022 {
		t.Errorf("subnormal: %+v unbiased=%d", p, p.UnbiasedExponent())
	}
}

func TestFloatPartsString(t *testing.T) {
	s := DecomposeFloat32(1.0).String()
	for _, want := range []string{"sign=0", "[normal]", "unbiased 0"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

// Property: decompose/recompose round-trips for float32.
func TestFloat32RoundTrip(t *testing.T) {
	f := func(v float32) bool {
		p := DecomposeFloat32(v)
		back := Recompose32(p.Sign, p.Exponent, p.Mantissa)
		return math.Float32bits(back) == math.Float32bits(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: decompose/recompose round-trips for float64.
func TestFloat64RoundTrip(t *testing.T) {
	f := func(v float64) bool {
		p := DecomposeFloat64(v)
		back := Recompose64(p.Sign, p.Exponent, p.Mantissa)
		return math.Float64bits(back) == math.Float64bits(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the value equals (-1)^sign * 1.mantissa * 2^unbiased for normal
// float64 values.
func TestFloat64ValueFormula(t *testing.T) {
	f := func(v float64) bool {
		p := DecomposeFloat64(v)
		if p.Class != "normal" {
			return true // formula applies to normals only
		}
		significand := 1.0 + float64(p.Mantissa)/math.Pow(2, 52)
		val := significand * math.Pow(2, float64(p.UnbiasedExponent()))
		if p.Sign == 1 {
			val = -val
		}
		diff := math.Abs(val - v)
		scale := math.Abs(v)
		return diff <= scale*1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
