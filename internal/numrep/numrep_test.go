package numrep

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUnsignedMax(t *testing.T) {
	cases := []struct {
		width int
		want  uint64
	}{
		{1, 1}, {4, 15}, {8, 255}, {16, 65535}, {32, 4294967295}, {64, ^uint64(0)},
	}
	for _, c := range cases {
		got, err := UnsignedMax(c.width)
		if err != nil {
			t.Fatalf("UnsignedMax(%d): %v", c.width, err)
		}
		if got != c.want {
			t.Errorf("UnsignedMax(%d) = %d, want %d", c.width, got, c.want)
		}
	}
}

func TestSignedRange(t *testing.T) {
	cases := []struct {
		width    int
		min, max int64
	}{
		{1, -1, 0},
		{4, -8, 7},
		{8, -128, 127},
		{16, -32768, 32767},
		{32, math.MinInt32, math.MaxInt32},
		{64, math.MinInt64, math.MaxInt64},
	}
	for _, c := range cases {
		mn, err := SignedMin(c.width)
		if err != nil {
			t.Fatalf("SignedMin(%d): %v", c.width, err)
		}
		mx, err := SignedMax(c.width)
		if err != nil {
			t.Fatalf("SignedMax(%d): %v", c.width, err)
		}
		if mn != c.min || mx != c.max {
			t.Errorf("width %d: range [%d, %d], want [%d, %d]", c.width, mn, mx, c.min, c.max)
		}
	}
}

func TestWidthValidation(t *testing.T) {
	for _, w := range []int{0, -1, 65, 100} {
		if _, err := UnsignedMax(w); err == nil {
			t.Errorf("UnsignedMax(%d): expected error", w)
		}
		if _, err := EncodeSigned(0, w); err == nil {
			t.Errorf("EncodeSigned(0, %d): expected error", w)
		}
		if _, err := Add(0, 0, w); err == nil {
			t.Errorf("Add(0,0,%d): expected error", w)
		}
	}
}

func TestEncodeDecodeSignedKnown(t *testing.T) {
	cases := []struct {
		v       int64
		width   int
		pattern uint64
	}{
		{-1, 8, 0xff},
		{-128, 8, 0x80},
		{127, 8, 0x7f},
		{-1, 4, 0xf},
		{5, 4, 0x5},
		{-6, 4, 0xa},
		{-1, 64, ^uint64(0)},
	}
	for _, c := range cases {
		got, err := EncodeSigned(c.v, c.width)
		if err != nil {
			t.Fatalf("EncodeSigned(%d, %d): %v", c.v, c.width, err)
		}
		if got != c.pattern {
			t.Errorf("EncodeSigned(%d, %d) = %#x, want %#x", c.v, c.width, got, c.pattern)
		}
		back, err := DecodeSigned(got, c.width)
		if err != nil {
			t.Fatalf("DecodeSigned: %v", err)
		}
		if back != c.v {
			t.Errorf("DecodeSigned(%#x, %d) = %d, want %d", got, c.width, back, c.v)
		}
	}
}

func TestEncodeSignedOutOfRange(t *testing.T) {
	if _, err := EncodeSigned(128, 8); err == nil {
		t.Error("EncodeSigned(128, 8): expected range error")
	}
	if _, err := EncodeSigned(-129, 8); err == nil {
		t.Error("EncodeSigned(-129, 8): expected range error")
	}
	if _, err := EncodeUnsigned(256, 8); err == nil {
		t.Error("EncodeUnsigned(256, 8): expected range error")
	}
}

// Property: EncodeSigned/DecodeSigned round-trip at every width for values
// reduced into range.
func TestSignedRoundTripProperty(t *testing.T) {
	f := func(v int64, w uint8) bool {
		width := int(w%64) + 1
		var reduced int64
		if width == 64 {
			reduced = v // every int64 fits
		} else {
			lo, _ := SignedMin(width)
			hi, _ := SignedMax(width)
			span := uint64(hi-lo) + 1
			reduced = lo + int64(uint64(v)%span)
		}
		pat, err := EncodeSigned(reduced, width)
		if err != nil {
			return false
		}
		back, err := DecodeSigned(pat, width)
		return err == nil && back == reduced
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: width-64 Add agrees with native uint64 wrapping addition.
func TestAdd64MatchesNative(t *testing.T) {
	f := func(a, b uint64) bool {
		r, err := Add(a, b, 64)
		if err != nil {
			return false
		}
		return r.Pattern == a+b && r.CarryOut == (a+b < a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: width-8 signed Add agrees with int8 wrapping semantics.
func TestAdd8MatchesInt8(t *testing.T) {
	f := func(a, b int8) bool {
		pa, _ := EncodeSigned(int64(a), 8)
		pb, _ := EncodeSigned(int64(b), 8)
		r, err := Add(pa, pb, 8)
		if err != nil {
			return false
		}
		want := int64(int8(a + b)) // Go wraps int8 addition
		wide := int64(a) + int64(b)
		wantOverflow := wide > 127 || wide < -128
		return r.Signed == want && r.Overflow == wantOverflow
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Sub(a, b) == Add(a, Negate(b)) pattern-wise at width 16.
func TestSubViaNegation(t *testing.T) {
	f := func(a, b uint16) bool {
		nb, _ := Negate(uint64(b), 16)
		viaAdd, _ := Add(uint64(a), nb, 16)
		direct, err := Sub(uint64(a), uint64(b), 16)
		return err == nil && direct.Pattern == viaAdd.Pattern
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSubFlags(t *testing.T) {
	// 5 - 3 at width 8: result 2, carry (no borrow), no overflow.
	r, err := Sub(5, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r.Pattern != 2 || !r.CarryOut || r.Overflow {
		t.Errorf("5-3: got %+v", r)
	}
	// 3 - 5 at width 8: result 0xfe (-2), borrow (no carry), no overflow.
	r, err = Sub(3, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r.Pattern != 0xfe || r.CarryOut || r.Overflow {
		t.Errorf("3-5: got %+v", r)
	}
	// -128 - 1 at width 8 overflows signed.
	pa, _ := EncodeSigned(-128, 8)
	r, err = Sub(pa, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Overflow {
		t.Errorf("-128-1 should set signed overflow: %+v", r)
	}
	if r.Signed != 127 {
		t.Errorf("-128-1 wraps to 127, got %d", r.Signed)
	}
}

func TestAddSignedOverflowCases(t *testing.T) {
	cases := []struct {
		a, b     int64
		width    int
		want     int64
		overflow bool
	}{
		{127, 1, 8, -128, true},
		{-128, -1, 8, 127, true},
		{100, 27, 8, 127, false},
		{-100, -28, 8, -128, false},
		{32767, 1, 16, -32768, true},
		{0, 0, 1, 0, false},
	}
	for _, c := range cases {
		got, ov, err := AddSigned(c.a, c.b, c.width)
		if err != nil {
			t.Fatalf("AddSigned(%d,%d,%d): %v", c.a, c.b, c.width, err)
		}
		if got != c.want || ov != c.overflow {
			t.Errorf("AddSigned(%d,%d,%d) = (%d,%v), want (%d,%v)",
				c.a, c.b, c.width, got, ov, c.want, c.overflow)
		}
	}
}

func TestAddUnsignedCarry(t *testing.T) {
	got, carry, err := AddUnsigned(255, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 || !carry {
		t.Errorf("255+1 (8-bit) = (%d, %v), want (0, true)", got, carry)
	}
	got, carry, err = AddUnsigned(200, 55, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got != 255 || carry {
		t.Errorf("200+55 (8-bit) = (%d, %v), want (255, false)", got, carry)
	}
}

func TestNegate(t *testing.T) {
	cases := []struct {
		in, want uint64
		width    int
	}{
		{1, 0xff, 8},
		{0, 0, 8},
		{0x80, 0x80, 8}, // most negative value negates to itself
		{5, 0xb, 4},
	}
	for _, c := range cases {
		got, err := Negate(c.in, c.width)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("Negate(%#x, %d) = %#x, want %#x", c.in, c.width, got, c.want)
		}
	}
}

func TestSignExtend(t *testing.T) {
	cases := []struct {
		pattern    uint64
		from, to   int
		want       uint64
		shouldFail bool
	}{
		{0xf, 4, 8, 0xff, false},
		{0x7, 4, 8, 0x07, false},
		{0x80, 8, 16, 0xff80, false},
		{0x7f, 8, 16, 0x007f, false},
		{0xff, 8, 64, ^uint64(0), false},
		{0xff, 8, 4, 0, true},
	}
	for _, c := range cases {
		got, err := SignExtend(c.pattern, c.from, c.to)
		if c.shouldFail {
			if err == nil {
				t.Errorf("SignExtend(%#x, %d, %d): expected error", c.pattern, c.from, c.to)
			}
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("SignExtend(%#x, %d, %d) = %#x, want %#x", c.pattern, c.from, c.to, got, c.want)
		}
	}
}

// Property: sign extension preserves the signed value.
func TestSignExtendPreservesValue(t *testing.T) {
	f := func(v int8, toRaw uint8) bool {
		to := 8 + int(toRaw%57) // 8..64
		pat, _ := EncodeSigned(int64(v), 8)
		ext, err := SignExtend(pat, 8, to)
		if err != nil {
			return false
		}
		back, err := DecodeSigned(ext, to)
		return err == nil && back == int64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZeroExtend(t *testing.T) {
	got, err := ZeroExtend(0xff, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0x00ff {
		t.Errorf("ZeroExtend(0xff, 8, 16) = %#x, want 0x00ff", got)
	}
	if _, err := ZeroExtend(0, 16, 8); err == nil {
		t.Error("ZeroExtend narrowing: expected error")
	}
}

func TestCTypeCatalog(t *testing.T) {
	intT, ok := TypeByName("int")
	if !ok {
		t.Fatal("int missing from catalog")
	}
	if intT.Bytes != 4 || !intT.Signed {
		t.Errorf("int: %+v", intT)
	}
	if intT.MaxSigned() != math.MaxInt32 || intT.Min() != math.MinInt32 {
		t.Errorf("int range: [%d, %d]", intT.Min(), intT.MaxSigned())
	}
	uc, ok := TypeByName("unsigned char")
	if !ok {
		t.Fatal("unsigned char missing")
	}
	if uc.MaxUnsigned() != 255 || uc.Min() != 0 {
		t.Errorf("unsigned char range: [%d, %d]", uc.Min(), uc.MaxUnsigned())
	}
	if _, ok := TypeByName("quux"); ok {
		t.Error("TypeByName(quux) should miss")
	}
	if uc.Width() != 8 {
		t.Errorf("unsigned char width = %d", uc.Width())
	}
}
