package numrep

import (
	"fmt"
	"strings"
)

// Base identifies a positional numeral base used in the conversion drills.
type Base int

// The three bases CS 31 drills conversions between.
const (
	Binary      Base = 2
	Decimal     Base = 10
	Hexadecimal Base = 16
)

func (b Base) String() string {
	switch b {
	case Binary:
		return "binary"
	case Decimal:
		return "decimal"
	case Hexadecimal:
		return "hexadecimal"
	default:
		return fmt.Sprintf("base-%d", int(b))
	}
}

const digits = "0123456789abcdef"

// FormatBits renders the low width bits of pattern as a binary string with a
// space every four bits (the grouping used on course handouts), most
// significant bit first.
func FormatBits(pattern uint64, width int) string {
	if width < 1 {
		return ""
	}
	if width > MaxWidth {
		width = MaxWidth
	}
	var sb strings.Builder
	for i := width - 1; i >= 0; i-- {
		if pattern&(1<<uint(i)) != 0 {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
		if i > 0 && i%4 == 0 {
			sb.WriteByte(' ')
		}
	}
	return sb.String()
}

// FormatHex renders the low width bits as 0x-prefixed hexadecimal padded to
// the width (rounded up to a whole nibble).
func FormatHex(pattern uint64, width int) string {
	if width < 1 {
		return "0x0"
	}
	if width > MaxWidth {
		width = MaxWidth
	}
	nibbles := (width + 3) / 4
	pattern &= mask(width)
	buf := make([]byte, nibbles)
	for i := nibbles - 1; i >= 0; i-- {
		buf[i] = digits[pattern&0xf]
		pattern >>= 4
	}
	return "0x" + string(buf)
}

// ParseBits parses a binary string (spaces and underscores permitted) into a
// bit pattern, reporting the number of digits consumed as the width.
func ParseBits(s string) (pattern uint64, width int, err error) {
	for _, r := range s {
		switch r {
		case '0', '1':
			if width == MaxWidth {
				return 0, 0, fmt.Errorf("numrep: binary literal %q longer than %d bits", s, MaxWidth)
			}
			pattern = pattern<<1 | uint64(r-'0')
			width++
		case ' ', '_':
			// grouping separators are ignored
		default:
			return 0, 0, fmt.Errorf("numrep: invalid binary digit %q in %q", r, s)
		}
	}
	if width == 0 {
		return 0, 0, fmt.Errorf("numrep: empty binary literal")
	}
	return pattern, width, nil
}

// ParseHex parses a hexadecimal string (optional 0x/0X prefix, spaces and
// underscores permitted) into a bit pattern, reporting the width in bits
// (4 per digit).
func ParseHex(s string) (pattern uint64, width int, err error) {
	t := strings.TrimSpace(s)
	if strings.HasPrefix(t, "0x") || strings.HasPrefix(t, "0X") {
		t = t[2:]
	}
	for _, r := range t {
		var d uint64
		switch {
		case r >= '0' && r <= '9':
			d = uint64(r - '0')
		case r >= 'a' && r <= 'f':
			d = uint64(r-'a') + 10
		case r >= 'A' && r <= 'F':
			d = uint64(r-'A') + 10
		case r == ' ' || r == '_':
			continue
		default:
			return 0, 0, fmt.Errorf("numrep: invalid hex digit %q in %q", r, s)
		}
		if width+4 > MaxWidth {
			return 0, 0, fmt.Errorf("numrep: hex literal %q longer than %d bits", s, MaxWidth)
		}
		pattern = pattern<<4 | d
		width += 4
	}
	if width == 0 {
		return 0, 0, fmt.Errorf("numrep: empty hex literal")
	}
	return pattern, width, nil
}

// Conversion is a worked decimal/binary/hexadecimal conversion of a single
// value at a fixed width — the artifact students produce in the Lab 1
// written questions.
type Conversion struct {
	Width    int
	Pattern  uint64
	Binary   string
	Hex      string
	Unsigned uint64
	Signed   int64
}

// Convert produces all representations of the low width bits of pattern.
func Convert(pattern uint64, width int) (Conversion, error) {
	if err := checkWidth(width); err != nil {
		return Conversion{}, err
	}
	pattern &= mask(width)
	s, _ := DecodeSigned(pattern, width)
	return Conversion{
		Width:    width,
		Pattern:  pattern,
		Binary:   FormatBits(pattern, width),
		Hex:      FormatHex(pattern, width),
		Unsigned: pattern,
		Signed:   s,
	}, nil
}

// String renders the conversion as a single worked line.
func (c Conversion) String() string {
	return fmt.Sprintf("%s = %s = %d (unsigned) = %d (signed, %d-bit)",
		c.Binary, c.Hex, c.Unsigned, c.Signed, c.Width)
}

// PowersOfTwoTable returns the expansion of the low width bits of pattern as
// a sum of powers of two, e.g. "1101 = 8 + 4 + 1 = 13" — the method taught
// for binary→decimal conversion.
func PowersOfTwoTable(pattern uint64, width int) string {
	if width < 1 || width > MaxWidth {
		return ""
	}
	pattern &= mask(width)
	var terms []string
	var sum uint64
	for i := width - 1; i >= 0; i-- {
		if pattern&(1<<uint(i)) != 0 {
			terms = append(terms, fmt.Sprintf("2^%d", i))
			sum += 1 << uint(i)
		}
	}
	if len(terms) == 0 {
		return fmt.Sprintf("%s = 0", FormatBits(pattern, width))
	}
	return fmt.Sprintf("%s = %s = %d", FormatBits(pattern, width), strings.Join(terms, " + "), sum)
}

// RepeatedDivision shows the repeated-division-by-base steps for converting
// a decimal value to the target base, returning each step as "q r d" lines —
// the other conversion method taught in the course.
func RepeatedDivision(v uint64, base Base) []string {
	if base < 2 || int(base) > len(digits) {
		return nil
	}
	if v == 0 {
		return []string{"0 / " + fmt.Sprint(int(base)) + " = 0 remainder 0 -> digit 0"}
	}
	var steps []string
	for v > 0 {
		q := v / uint64(base)
		r := v % uint64(base)
		steps = append(steps, fmt.Sprintf("%d / %d = %d remainder %d -> digit %c", v, int(base), q, r, digits[r]))
		v = q
	}
	return steps
}
