// Package numrep implements the binary data representation module of CS 31
// (Lab 1 and the "binary and arithmetic" homework): two's-complement encoding
// and decoding, signed and unsigned fixed-width arithmetic with carry and
// overflow detection, conversions between decimal, binary, and hexadecimal,
// and the sizes and value ranges of the C integer types.
//
// All arithmetic operates on an explicit bit width (1..64) so that the
// overflow behaviour students study on 8-, 16-, and 32-bit values is
// observable directly rather than hidden inside Go's fixed-size types.
package numrep

import (
	"errors"
	"fmt"
)

// MaxWidth is the largest supported bit width.
const MaxWidth = 64

// ErrWidth is returned when a bit width is outside [1, MaxWidth].
var ErrWidth = errors.New("numrep: width must be in [1, 64]")

// ErrRange is returned when a value cannot be represented at a given width.
var ErrRange = errors.New("numrep: value out of range for width")

func checkWidth(width int) error {
	if width < 1 || width > MaxWidth {
		return fmt.Errorf("%w: %d", ErrWidth, width)
	}
	return nil
}

// mask returns a bit mask with the low width bits set.
func mask(width int) uint64 {
	if width >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(width)) - 1
}

// UnsignedMax returns the largest unsigned value representable in width bits.
func UnsignedMax(width int) (uint64, error) {
	if err := checkWidth(width); err != nil {
		return 0, err
	}
	return mask(width), nil
}

// SignedMax returns the largest two's-complement value representable in
// width bits.
func SignedMax(width int) (int64, error) {
	if err := checkWidth(width); err != nil {
		return 0, err
	}
	if width == 64 {
		return int64(^uint64(0) >> 1), nil
	}
	return int64(uint64(1)<<uint(width-1)) - 1, nil
}

// SignedMin returns the smallest (most negative) two's-complement value
// representable in width bits.
func SignedMin(width int) (int64, error) {
	if err := checkWidth(width); err != nil {
		return 0, err
	}
	if width == 64 {
		return -1 << 63, nil
	}
	return -int64(uint64(1) << uint(width-1)), nil
}

// EncodeSigned encodes v as a width-bit two's-complement bit pattern.
// The result has all bits above width cleared.
func EncodeSigned(v int64, width int) (uint64, error) {
	if err := checkWidth(width); err != nil {
		return 0, err
	}
	lo, _ := SignedMin(width)
	hi, _ := SignedMax(width)
	if v < lo || v > hi {
		return 0, fmt.Errorf("%w: %d does not fit in %d signed bits", ErrRange, v, width)
	}
	return uint64(v) & mask(width), nil
}

// DecodeSigned interprets the low width bits of pattern as a two's-complement
// signed value.
func DecodeSigned(pattern uint64, width int) (int64, error) {
	if err := checkWidth(width); err != nil {
		return 0, err
	}
	pattern &= mask(width)
	signBit := uint64(1) << uint(width-1)
	if pattern&signBit != 0 {
		// Sign-extend: subtract 2^width.
		if width == 64 {
			return int64(pattern), nil
		}
		return int64(pattern) - int64(uint64(1)<<uint(width)), nil
	}
	return int64(pattern), nil
}

// EncodeUnsigned validates that v fits in width bits and returns it masked.
func EncodeUnsigned(v uint64, width int) (uint64, error) {
	if err := checkWidth(width); err != nil {
		return 0, err
	}
	if v > mask(width) {
		return 0, fmt.Errorf("%w: %d does not fit in %d unsigned bits", ErrRange, v, width)
	}
	return v, nil
}

// Negate returns the two's-complement negation of the low width bits of
// pattern (invert the bits and add one), masked to width.
func Negate(pattern uint64, width int) (uint64, error) {
	if err := checkWidth(width); err != nil {
		return 0, err
	}
	return (^pattern + 1) & mask(width), nil
}

// ArithResult describes the outcome of a fixed-width binary arithmetic
// operation the way the course presents it: the resulting bit pattern plus
// the carry-out and overflow condition flags, and both the unsigned and
// signed interpretations of the result.
type ArithResult struct {
	Pattern  uint64 // result bits, masked to the operation width
	Width    int    // operation width in bits
	CarryOut bool   // unsigned overflow: carry out of the top bit
	Overflow bool   // signed overflow: result sign inconsistent with operands
	Unsigned uint64 // unsigned interpretation of Pattern
	Signed   int64  // two's-complement interpretation of Pattern
}

// Add performs width-bit addition of two bit patterns, reporting carry-out
// (unsigned overflow) and signed overflow, exactly as Lab 1 asks students to
// compute by hand.
func Add(a, b uint64, width int) (ArithResult, error) {
	if err := checkWidth(width); err != nil {
		return ArithResult{}, err
	}
	m := mask(width)
	a &= m
	b &= m
	sum := a + b // cannot wrap uint64 when width < 64; handle 64 specially
	var carry bool
	if width == 64 {
		carry = sum < a
	} else {
		carry = sum > m
	}
	res := sum & m
	signBit := uint64(1) << uint(width-1)
	// Signed overflow: operands share a sign and the result sign differs.
	overflow := (a&signBit) == (b&signBit) && (res&signBit) != (a&signBit)
	s, _ := DecodeSigned(res, width)
	return ArithResult{
		Pattern:  res,
		Width:    width,
		CarryOut: carry,
		Overflow: overflow,
		Unsigned: res,
		Signed:   s,
	}, nil
}

// Sub performs width-bit subtraction a-b via two's-complement addition
// (a + ^b + 1). CarryOut reports the adder's carry-out, which for
// subtraction means "no borrow" (set when a >= b unsigned).
func Sub(a, b uint64, width int) (ArithResult, error) {
	if err := checkWidth(width); err != nil {
		return ArithResult{}, err
	}
	m := mask(width)
	a &= m
	b &= m
	nb := (^b) & m
	// a + ~b + 1 with explicit carry chain through two additions.
	first, err := Add(a, nb, width)
	if err != nil {
		return ArithResult{}, err
	}
	second, err := Add(first.Pattern, 1, width)
	if err != nil {
		return ArithResult{}, err
	}
	res := second.Pattern
	carry := first.CarryOut || second.CarryOut
	signBit := uint64(1) << uint(width-1)
	// Signed overflow for a-b: operands have different signs and the result
	// sign matches b's sign.
	overflow := (a&signBit) != (b&signBit) && (res&signBit) == (b&signBit)
	s, _ := DecodeSigned(res, width)
	return ArithResult{
		Pattern:  res,
		Width:    width,
		CarryOut: carry,
		Overflow: overflow,
		Unsigned: res,
		Signed:   s,
	}, nil
}

// AddSigned adds two signed values at the given width and reports whether
// signed overflow occurred, returning the wrapped two's-complement result.
func AddSigned(a, b int64, width int) (result int64, overflow bool, err error) {
	pa, err := EncodeSigned(a, width)
	if err != nil {
		return 0, false, err
	}
	pb, err := EncodeSigned(b, width)
	if err != nil {
		return 0, false, err
	}
	r, err := Add(pa, pb, width)
	if err != nil {
		return 0, false, err
	}
	return r.Signed, r.Overflow, nil
}

// AddUnsigned adds two unsigned values at the given width and reports whether
// unsigned overflow (carry out) occurred, returning the wrapped result.
func AddUnsigned(a, b uint64, width int) (result uint64, carry bool, err error) {
	pa, err := EncodeUnsigned(a, width)
	if err != nil {
		return 0, false, err
	}
	pb, err := EncodeUnsigned(b, width)
	if err != nil {
		return 0, false, err
	}
	r, err := Add(pa, pb, width)
	if err != nil {
		return 0, false, err
	}
	return r.Unsigned, r.CarryOut, nil
}

// SignExtend widens the low from bits of pattern to the low to bits,
// replicating the sign bit — the operation students implement as a Logisim
// circuit in Lab 3.
func SignExtend(pattern uint64, from, to int) (uint64, error) {
	if err := checkWidth(from); err != nil {
		return 0, err
	}
	if err := checkWidth(to); err != nil {
		return 0, err
	}
	if from > to {
		return 0, fmt.Errorf("numrep: cannot sign-extend from %d to narrower %d bits", from, to)
	}
	pattern &= mask(from)
	signBit := uint64(1) << uint(from-1)
	if pattern&signBit != 0 {
		pattern |= mask(to) &^ mask(from)
	}
	return pattern, nil
}

// ZeroExtend widens the low from bits of pattern to to bits with zeros.
func ZeroExtend(pattern uint64, from, to int) (uint64, error) {
	if err := checkWidth(from); err != nil {
		return 0, err
	}
	if err := checkWidth(to); err != nil {
		return 0, err
	}
	if from > to {
		return 0, fmt.Errorf("numrep: cannot zero-extend from %d to narrower %d bits", from, to)
	}
	return pattern & mask(from), nil
}

// CType describes one of the C integer types the course catalogs: its name,
// storage size in bytes, and signedness.
type CType struct {
	Name   string
	Bytes  int
	Signed bool
}

// Width returns the type's width in bits.
func (t CType) Width() int { return t.Bytes * 8 }

// Min returns the smallest representable value (0 for unsigned types).
func (t CType) Min() int64 {
	if !t.Signed {
		return 0
	}
	v, _ := SignedMin(t.Width())
	return v
}

// MaxSigned returns the largest value for signed types; call MaxUnsigned for
// unsigned types wider than 63 bits.
func (t CType) MaxSigned() int64 {
	if t.Signed {
		v, _ := SignedMax(t.Width())
		return v
	}
	v, _ := SignedMax(t.Width() + 1) // fits for widths <= 32
	if t.Width() >= 64 {
		v, _ = SignedMax(64)
	}
	return v
}

// MaxUnsigned returns the largest representable value as a uint64.
func (t CType) MaxUnsigned() uint64 {
	if t.Signed {
		v, _ := SignedMax(t.Width())
		return uint64(v)
	}
	v, _ := UnsignedMax(t.Width())
	return v
}

// CTypes is the catalog of C integer types discussed in the course, using
// the ILP32 model of the course's 32-bit x86 target.
var CTypes = []CType{
	{Name: "char", Bytes: 1, Signed: true},
	{Name: "unsigned char", Bytes: 1, Signed: false},
	{Name: "short", Bytes: 2, Signed: true},
	{Name: "unsigned short", Bytes: 2, Signed: false},
	{Name: "int", Bytes: 4, Signed: true},
	{Name: "unsigned int", Bytes: 4, Signed: false},
	{Name: "long long", Bytes: 8, Signed: true},
	{Name: "unsigned long long", Bytes: 8, Signed: false},
}

// TypeByName looks up a C type from the catalog.
func TypeByName(name string) (CType, bool) {
	for _, t := range CTypes {
		if t.Name == name {
			return t, true
		}
	}
	return CType{}, false
}
