package numrep

import (
	"fmt"
	"math"
)

// FloatParts is the field decomposition of an IEEE-754 value. The course
// "briefly discusses" floating point: students learn the sign/exponent/
// mantissa layout but are not asked to convert by hand, so this type exposes
// the decomposition and classification rather than arithmetic.
type FloatParts struct {
	Bits     uint64 // raw bit pattern
	Sign     uint64 // 1 bit
	Exponent uint64 // biased exponent field
	Mantissa uint64 // fraction field (without the implicit leading 1)

	ExpBits  int // width of the exponent field
	FracBits int // width of the fraction field
	Bias     int // exponent bias

	Class string // "zero", "subnormal", "normal", "inf", "nan"
}

// DecomposeFloat32 splits a float32 into its IEEE-754 single-precision
// fields (1 sign, 8 exponent, 23 fraction bits, bias 127).
func DecomposeFloat32(f float32) FloatParts {
	bits := uint64(math.Float32bits(f))
	p := FloatParts{
		Bits:     bits,
		Sign:     bits >> 31 & 1,
		Exponent: bits >> 23 & 0xff,
		Mantissa: bits & ((1 << 23) - 1),
		ExpBits:  8,
		FracBits: 23,
		Bias:     127,
	}
	p.Class = classify(p.Exponent, p.Mantissa, 0xff)
	return p
}

// DecomposeFloat64 splits a float64 into its IEEE-754 double-precision
// fields (1 sign, 11 exponent, 52 fraction bits, bias 1023).
func DecomposeFloat64(f float64) FloatParts {
	bits := math.Float64bits(f)
	p := FloatParts{
		Bits:     bits,
		Sign:     bits >> 63 & 1,
		Exponent: bits >> 52 & 0x7ff,
		Mantissa: bits & ((1 << 52) - 1),
		ExpBits:  11,
		FracBits: 52,
		Bias:     1023,
	}
	p.Class = classify(p.Exponent, p.Mantissa, 0x7ff)
	return p
}

func classify(exp, mant, expMax uint64) string {
	switch {
	case exp == 0 && mant == 0:
		return "zero"
	case exp == 0:
		return "subnormal"
	case exp == expMax && mant == 0:
		return "inf"
	case exp == expMax:
		return "nan"
	default:
		return "normal"
	}
}

// UnbiasedExponent returns the true exponent after removing the bias.
// For subnormals it returns 1-Bias per the IEEE-754 convention.
func (p FloatParts) UnbiasedExponent() int {
	if p.Exponent == 0 {
		return 1 - p.Bias
	}
	return int(p.Exponent) - p.Bias
}

// String renders the decomposition in the layout diagram form used in class.
func (p FloatParts) String() string {
	total := 1 + p.ExpBits + p.FracBits
	return fmt.Sprintf("%s: sign=%d exp=%s (unbiased %d) frac=%s [%s]",
		FormatHex(p.Bits, total), p.Sign,
		FormatBits(p.Exponent, p.ExpBits), p.UnbiasedExponent(),
		FormatBits(p.Mantissa, p.FracBits), p.Class)
}

// Recompose32 reassembles single-precision fields into a float32; it is the
// inverse of DecomposeFloat32 and exists so tests can verify the round trip.
func Recompose32(sign, exponent, mantissa uint64) float32 {
	bits := uint32(sign&1)<<31 | uint32(exponent&0xff)<<23 | uint32(mantissa&((1<<23)-1))
	return math.Float32frombits(bits)
}

// Recompose64 reassembles double-precision fields into a float64.
func Recompose64(sign, exponent, mantissa uint64) float64 {
	bits := (sign&1)<<63 | (exponent&0x7ff)<<52 | mantissa&((1<<52)-1)
	return math.Float64frombits(bits)
}
