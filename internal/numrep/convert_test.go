package numrep

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestFormatBits(t *testing.T) {
	cases := []struct {
		pattern uint64
		width   int
		want    string
	}{
		{0xa5, 8, "1010 0101"},
		{0x5, 4, "0101"},
		{0x1, 1, "1"},
		{0x0, 8, "0000 0000"},
		{0xdead, 16, "1101 1110 1010 1101"},
		{0x3, 3, "011"},
	}
	for _, c := range cases {
		if got := FormatBits(c.pattern, c.width); got != c.want {
			t.Errorf("FormatBits(%#x, %d) = %q, want %q", c.pattern, c.width, got, c.want)
		}
	}
	if FormatBits(1, 0) != "" {
		t.Error("FormatBits width 0 should be empty")
	}
}

func TestFormatHex(t *testing.T) {
	cases := []struct {
		pattern uint64
		width   int
		want    string
	}{
		{0xa5, 8, "0xa5"},
		{0x5, 4, "0x5"},
		{0x5, 3, "0x5"},
		{0xdead, 16, "0xdead"},
		{0xf, 8, "0x0f"},
		{0x12345678, 32, "0x12345678"},
	}
	for _, c := range cases {
		if got := FormatHex(c.pattern, c.width); got != c.want {
			t.Errorf("FormatHex(%#x, %d) = %q, want %q", c.pattern, c.width, got, c.want)
		}
	}
}

func TestParseBits(t *testing.T) {
	pat, width, err := ParseBits("1010 0101")
	if err != nil {
		t.Fatal(err)
	}
	if pat != 0xa5 || width != 8 {
		t.Errorf("ParseBits = (%#x, %d), want (0xa5, 8)", pat, width)
	}
	if _, _, err := ParseBits("10x1"); err == nil {
		t.Error("ParseBits(10x1): expected error")
	}
	if _, _, err := ParseBits(""); err == nil {
		t.Error("ParseBits(empty): expected error")
	}
	if _, _, err := ParseBits(strings.Repeat("1", 65)); err == nil {
		t.Error("ParseBits(65 bits): expected error")
	}
}

func TestParseHex(t *testing.T) {
	cases := []struct {
		in      string
		pattern uint64
		width   int
	}{
		{"0xa5", 0xa5, 8},
		{"A5", 0xa5, 8},
		{"0XDEad", 0xdead, 16},
		{"dead_beef", 0xdeadbeef, 32},
	}
	for _, c := range cases {
		pat, width, err := ParseHex(c.in)
		if err != nil {
			t.Fatalf("ParseHex(%q): %v", c.in, err)
		}
		if pat != c.pattern || width != c.width {
			t.Errorf("ParseHex(%q) = (%#x, %d), want (%#x, %d)", c.in, pat, width, c.pattern, c.width)
		}
	}
	if _, _, err := ParseHex("0xzz"); err == nil {
		t.Error("ParseHex(0xzz): expected error")
	}
	if _, _, err := ParseHex(""); err == nil {
		t.Error("ParseHex(empty): expected error")
	}
	if _, _, err := ParseHex(strings.Repeat("f", 17)); err == nil {
		t.Error("ParseHex(17 digits): expected error")
	}
}

// Property: FormatBits/ParseBits round-trip.
func TestBitsRoundTrip(t *testing.T) {
	f := func(v uint64, w uint8) bool {
		width := int(w%64) + 1
		s := FormatBits(v, width)
		pat, gotWidth, err := ParseBits(s)
		return err == nil && gotWidth == width && pat == v&mask(width)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: FormatHex/ParseHex round-trip at nibble-aligned widths.
func TestHexRoundTrip(t *testing.T) {
	f := func(v uint64, w uint8) bool {
		width := (int(w%16) + 1) * 4
		s := FormatHex(v, width)
		pat, gotWidth, err := ParseHex(s)
		return err == nil && gotWidth == width && pat == v&mask(width)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConvert(t *testing.T) {
	c, err := Convert(0xff, 8)
	if err != nil {
		t.Fatal(err)
	}
	if c.Unsigned != 255 || c.Signed != -1 || c.Hex != "0xff" {
		t.Errorf("Convert(0xff, 8) = %+v", c)
	}
	if !strings.Contains(c.String(), "255 (unsigned)") || !strings.Contains(c.String(), "-1 (signed") {
		t.Errorf("Convert String: %q", c.String())
	}
	if _, err := Convert(0, 0); err == nil {
		t.Error("Convert width 0: expected error")
	}
}

func TestPowersOfTwoTable(t *testing.T) {
	got := PowersOfTwoTable(0xd, 4)
	if !strings.Contains(got, "2^3 + 2^2 + 2^0") || !strings.HasSuffix(got, "= 13") {
		t.Errorf("PowersOfTwoTable(0xd, 4) = %q", got)
	}
	if got := PowersOfTwoTable(0, 4); !strings.HasSuffix(got, "= 0") {
		t.Errorf("PowersOfTwoTable(0, 4) = %q", got)
	}
	if PowersOfTwoTable(1, 0) != "" {
		t.Error("width 0 should be empty")
	}
}

func TestRepeatedDivision(t *testing.T) {
	steps := RepeatedDivision(13, Binary)
	if len(steps) != 4 {
		t.Fatalf("13 in binary needs 4 steps, got %d: %v", len(steps), steps)
	}
	// Remainders bottom-up spell 1101.
	wantDigits := []byte{'1', '0', '1', '1'}
	for i, s := range steps {
		if s[len(s)-1] != wantDigits[i] {
			t.Errorf("step %d: %q, want digit %c", i, s, wantDigits[i])
		}
	}
	if steps := RepeatedDivision(0, Hexadecimal); len(steps) != 1 {
		t.Errorf("0 should give one step, got %v", steps)
	}
	if RepeatedDivision(10, 1) != nil {
		t.Error("base 1 should return nil")
	}
}

func TestBaseString(t *testing.T) {
	if Binary.String() != "binary" || Decimal.String() != "decimal" ||
		Hexadecimal.String() != "hexadecimal" || Base(7).String() != "base-7" {
		t.Error("Base.String mismatch")
	}
}
