package cstats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestComputeKnown(t *testing.T) {
	s, err := FromString("1 2 3 4 5")
	if err != nil {
		t.Fatal(err)
	}
	if s.Count != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("stats: %+v", s)
	}
}

func TestEvenMedian(t *testing.T) {
	s, err := FromString("4 1 3 2")
	if err != nil {
		t.Fatal(err)
	}
	if s.Median != 2.5 {
		t.Errorf("median = %v", s.Median)
	}
}

func TestNegativeAndFloatValues(t *testing.T) {
	s, err := FromString("-1.5 2.5 0")
	if err != nil {
		t.Fatal(err)
	}
	if s.Min != -1.5 || s.Max != 2.5 || math.Abs(s.Mean-1.0/3.0) > 1e-12 {
		t.Errorf("stats: %+v", s)
	}
}

func TestErrors(t *testing.T) {
	if _, err := FromString(""); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := FromString("1 two 3"); err == nil {
		t.Error("bad token should fail")
	}
	if _, err := Compute(nil); err == nil {
		t.Error("empty slice should fail")
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("Median mutated its input")
	}
	if Median(nil) != 0 {
		t.Error("empty median should be 0")
	}
}

func TestReadValuesWhitespaceForms(t *testing.T) {
	vals, err := ReadValues(strings.NewReader("1\n2\t3   4\r\n5"))
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 5 {
		t.Errorf("vals = %v", vals)
	}
}

func TestStringFormat(t *testing.T) {
	s, _ := FromString("1 2 3")
	out := s.String()
	for _, want := range []string{"n=3", "mean=2", "median=2", "min=1", "max=3"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() = %q missing %q", out, want)
		}
	}
}

// Property: min <= median <= max and min <= mean <= max.
func TestStatsOrderingProperty(t *testing.T) {
	f := func(in []float64) bool {
		clean := in[:0:0]
		for _, v := range in {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s, err := Compute(clean)
		if err != nil {
			return false
		}
		return s.Min <= s.Median && s.Median <= s.Max &&
			s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: median matches the sorted middle element.
func TestMedianMatchesSort(t *testing.T) {
	f := func(in []float64) bool {
		clean := in[:0:0]
		for _, v := range in {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		got := Median(clean)
		sorted := append([]float64(nil), clean...)
		sort.Float64s(sorted)
		mid := len(sorted) / 2
		var want float64
		if len(sorted)%2 == 1 {
			want = sorted[mid]
		} else {
			want = (sorted[mid-1] + sorted[mid]) / 2
		}
		return got == want || (math.IsNaN(got) && math.IsNaN(want))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
