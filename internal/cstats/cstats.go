// Package cstats implements Lab 4 part 1: computing basic statistics
// (count, mean, median, min, max) over input files holding a number of
// values unknown until read — the exercise that teaches dynamic allocation
// and growing arrays.
package cstats

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Stats summarizes a dataset.
type Stats struct {
	Count  int
	Mean   float64
	Median float64
	Min    float64
	Max    float64
}

// ReadValues reads whitespace-separated numbers from r, growing the slice
// as it goes (the dynamic-allocation lesson of the lab).
func ReadValues(r io.Reader) ([]float64, error) {
	sc := bufio.NewScanner(r)
	sc.Split(bufio.ScanWords)
	var vals []float64
	for sc.Scan() {
		tok := sc.Text()
		v, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			return nil, fmt.Errorf("cstats: bad value %q", tok)
		}
		vals = append(vals, v)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("cstats: read: %w", err)
	}
	return vals, nil
}

// Compute calculates the lab's statistics. The input is not modified.
func Compute(vals []float64) (Stats, error) {
	if len(vals) == 0 {
		return Stats{}, fmt.Errorf("cstats: no values")
	}
	s := Stats{Count: len(vals), Min: vals[0], Max: vals[0]}
	sum := 0.0
	for _, v := range vals {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(len(vals))
	s.Median = Median(vals)
	return s, nil
}

// Median returns the median (average of middle two for even counts)
// without modifying the input.
func Median(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		return sorted[mid]
	}
	return (sorted[mid-1] + sorted[mid]) / 2
}

// FromString is ReadValues plus Compute over a string, for convenience.
func FromString(s string) (Stats, error) {
	vals, err := ReadValues(strings.NewReader(s))
	if err != nil {
		return Stats{}, err
	}
	return Compute(vals)
}

// String renders the stats the way the lab's reference binary prints them.
func (s Stats) String() string {
	return fmt.Sprintf("n=%d mean=%.4g median=%.4g min=%.4g max=%.4g",
		s.Count, s.Mean, s.Median, s.Min, s.Max)
}
