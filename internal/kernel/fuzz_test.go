package kernel

// Robustness: the fork-program parser must never panic, whatever source
// it is fed — malformed programs must surface as errors. Mirrors
// internal/asm/fuzz_test.go: deterministic random-input tests that run on
// every `go test`, plus a native fuzz target (`go test -fuzz=FuzzParse`)
// seeded from testdata/fuzz/FuzzParseProgram.

import (
	"math/rand"
	"strings"
	"testing"
)

// randomProgram emits a syntactically plausible but frequently invalid
// program: real keywords with wrong arities, unbalanced braces, junk
// arguments.
func randomProgram(rng *rand.Rand) string {
	keywords := []string{
		"print", "fork", "exec", "wait", "exit", "compute",
		"install", "signal", "}", "{", "#",
	}
	args := []string{
		"A", "3", "-1", "SIGCHLD", "SIGKILL", "parent", "{", "}", "99999999999999999999", "",
	}
	var sb strings.Builder
	n := rng.Intn(20)
	for i := 0; i < n; i++ {
		sb.WriteString(keywords[rng.Intn(len(keywords))])
		for j := rng.Intn(3); j > 0; j-- {
			sb.WriteByte(' ')
			sb.WriteString(args[rng.Intn(len(args))])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func TestParseProgramNeverPanics(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		src := randomProgram(rng)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("seed %d: parser panicked: %v\nprogram:\n%s", seed, r, src)
				}
			}()
			_, _ = ParseProgram(src)
		}()
	}
}

// TestParserNeverPanicsOnByteSoup lexes random bytes, the asm pattern.
func TestParserNeverPanicsOnByteSoup(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	alphabet := "abcdefgh{}# \n\t0123456789printforkwaitexitcomputeinstallsignalSIGCHLD-"
	for i := 0; i < 300; i++ {
		n := rng.Intn(160)
		buf := make([]byte, n)
		for j := range buf {
			buf[j] = alphabet[rng.Intn(len(alphabet))]
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("parser panicked on %q: %v", buf, r)
				}
			}()
			_, _ = ParseProgram(string(buf))
		}()
	}
}

// FuzzParseProgram is the native fuzz target: parse arbitrary input, and
// when it parses, run it on the simulated kernel with a small step budget
// — neither stage may panic, and parsing must be deterministic.
func FuzzParseProgram(f *testing.F) {
	seeds := []string{
		"print A\nfork {\n    print B\n}\nprint C\nwait\nprint D\n",
		"install SIGCHLD {\n    print !\n}\nfork {\n    exit 3\n}\ncompute 2\nwait\n",
		"exec {\n    print X\n}\nsignal SIGTERM parent\n",
		"fork {\n    fork {\n        print deep\n    }\n    wait\n}\nwait\nexit 0\n",
		"# just a comment\n\nprint hello # trailing\n",
		"fork {\nprint unterminated\n",
		"}\nwait\n",
		"compute nope\nsignal WHAT 12\nexit 4294967296\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			return // keep the kernel run bounded
		}
		ops, err := ParseProgram(src)
		ops2, err2 := ParseProgram(src)
		if (err == nil) != (err2 == nil) || len(ops) != len(ops2) {
			t.Fatalf("non-deterministic parse: %d ops/%v vs %d ops/%v", len(ops), err, len(ops2), err2)
		}
		if err != nil {
			return
		}
		// A program that parses must be executable without panicking;
		// runtime errors (budget exhaustion, deadlock) are legitimate.
		k := New()
		k.Spawn(ops)
		_ = k.Run(2000)
	})
}
