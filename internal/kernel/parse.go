package kernel

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseProgram reads the small process-program DSL used by the interleave
// tool, which mirrors the fork-trace homework problems:
//
//	print A          # print the text "A"
//	fork {           # child runs the block, then exits
//	    print B
//	}
//	compute 3        # burn 3 scheduler steps
//	wait             # reap one child (blocks until one exits)
//	exit 0           # exit with a status
//	install SIGCHLD {  # run a handler block on the signal
//	    print !
//	}
//
// '#' starts a comment. Indentation is free-form; blocks are brace
// delimited with '{' ending a line and '}' alone on a line.
func ParseProgram(src string) ([]Op, error) {
	lines := strings.Split(src, "\n")
	ops, rest, err := parseBlock(lines, 0)
	if err != nil {
		return nil, err
	}
	for _, l := range lines[rest:] {
		if strings.TrimSpace(stripLineComment(l)) != "" {
			return nil, fmt.Errorf("kernel: unexpected %q after program end", strings.TrimSpace(l))
		}
	}
	return ops, nil
}

func stripLineComment(l string) string {
	if i := strings.IndexByte(l, '#'); i >= 0 {
		return l[:i]
	}
	return l
}

// parseBlock parses ops until a lone '}' or end of input, returning the
// next unconsumed line index.
func parseBlock(lines []string, start int) ([]Op, int, error) {
	var ops []Op
	i := start
	for i < len(lines) {
		line := strings.TrimSpace(stripLineComment(lines[i]))
		lineNo := i + 1
		i++
		if line == "" {
			continue
		}
		if line == "}" {
			return ops, i, nil
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "print":
			text := strings.TrimSpace(strings.TrimPrefix(line, "print"))
			if text == "" {
				return nil, 0, fmt.Errorf("kernel: line %d: print needs text", lineNo)
			}
			ops = append(ops, Print{Text: text})
		case "fork", "exec":
			if len(fields) != 2 || fields[1] != "{" {
				return nil, 0, fmt.Errorf("kernel: line %d: %s must be followed by '{'", lineNo, fields[0])
			}
			body, next, err := parseBlock(lines, i)
			if err != nil {
				return nil, 0, err
			}
			if next > len(lines) {
				return nil, 0, fmt.Errorf("kernel: line %d: unterminated block", lineNo)
			}
			i = next
			if fields[0] == "fork" {
				ops = append(ops, Fork{Child: body})
			} else {
				ops = append(ops, Exec{Prog: body})
			}
		case "wait":
			ops = append(ops, Wait{})
		case "exit":
			status := 0
			if len(fields) == 2 {
				v, err := strconv.Atoi(fields[1])
				if err != nil {
					return nil, 0, fmt.Errorf("kernel: line %d: bad exit status %q", lineNo, fields[1])
				}
				status = v
			}
			ops = append(ops, Exit{Status: status})
		case "compute":
			if len(fields) != 2 {
				return nil, 0, fmt.Errorf("kernel: line %d: compute needs a count", lineNo)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 1 {
				return nil, 0, fmt.Errorf("kernel: line %d: bad compute count %q", lineNo, fields[1])
			}
			ops = append(ops, Compute{N: n})
		case "install":
			if len(fields) != 3 || fields[2] != "{" {
				return nil, 0, fmt.Errorf("kernel: line %d: install <signal> {", lineNo)
			}
			sig, err := parseSignal(fields[1])
			if err != nil {
				return nil, 0, fmt.Errorf("kernel: line %d: %v", lineNo, err)
			}
			body, next, err := parseBlock(lines, i)
			if err != nil {
				return nil, 0, err
			}
			i = next
			ops = append(ops, Install{Sig: sig, Handler: body})
		case "signal":
			if len(fields) != 3 {
				return nil, 0, fmt.Errorf("kernel: line %d: signal <signal> parent|<pid>", lineNo)
			}
			sig, err := parseSignal(fields[1])
			if err != nil {
				return nil, 0, fmt.Errorf("kernel: line %d: %v", lineNo, err)
			}
			op := SignalOp{Sig: sig}
			if fields[2] == "parent" {
				op.ToParent = true
			} else {
				pid, err := strconv.Atoi(fields[2])
				if err != nil {
					return nil, 0, fmt.Errorf("kernel: line %d: bad target %q", lineNo, fields[2])
				}
				op.Target = PID(pid)
			}
			ops = append(ops, op)
		default:
			return nil, 0, fmt.Errorf("kernel: line %d: unknown op %q", lineNo, fields[0])
		}
	}
	return ops, i, nil
}

func parseSignal(name string) (Signal, error) {
	switch strings.ToUpper(name) {
	case "SIGCHLD":
		return SIGCHLD, nil
	case "SIGTERM":
		return SIGTERM, nil
	case "SIGINT":
		return SIGINT, nil
	case "SIGUSR1":
		return SIGUSR1, nil
	default:
		return 0, fmt.Errorf("unknown signal %q", name)
	}
}
