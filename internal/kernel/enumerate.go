package kernel

import (
	"fmt"
	"sort"
	"strings"
)

// This file answers the processes homework's signature question: "list all
// possible outputs of this fork program". It explores every scheduler
// interleaving of a program by depth-first search over nondeterministic
// single-op steps, deduplicating identical intermediate states.

// clone deep-copies the kernel state for search branching. Op slices are
// immutable and shared; per-process mutable state is copied.
func (k *Kernel) clone() *Kernel {
	nk := &Kernel{
		procs:   make(map[PID]*Process, len(k.procs)),
		nextPID: k.nextPID,
		Quantum: k.Quantum,
		lastRun: k.lastRun,
	}
	nk.output.WriteString(k.output.String())
	for pid, p := range k.procs {
		np := &Process{
			PID: p.PID, Parent: p.Parent, State: p.State, ExitCode: p.ExitCode,
			ops: p.ops, ip: p.ip, compute: p.compute,
			handlers: make(map[Signal][]Op, len(p.handlers)),
			pending:  append([]Signal(nil), p.pending...),
			children: append([]PID(nil), p.children...),
		}
		for s, h := range p.handlers {
			np.handlers[s] = h
		}
		nk.procs[pid] = np
	}
	nk.ready = append([]PID(nil), k.ready...)
	return nk
}

// runnablePIDs lists processes that can take a step right now: ready or
// running processes, plus blocked waiters with a zombie child or a pending
// signal.
func (k *Kernel) runnablePIDs() []PID {
	var out []PID
	for pid, p := range k.procs {
		if pid == InitPID {
			continue
		}
		switch p.State {
		case Ready, Running:
			out = append(out, pid)
		case Blocked:
			if k.hasZombieChild(p) || len(p.pending) > 0 {
				out = append(out, pid)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// stepPID runs exactly one op of the given process.
func (k *Kernel) stepPID(pid PID) error {
	p, ok := k.procs[pid]
	if !ok {
		return fmt.Errorf("kernel: no process %d", pid)
	}
	if p.State == Blocked {
		// A blocked waiter steps by retrying its Wait (or handling a
		// signal); mark it runnable first.
		p.State = Running
	} else if p.State != Ready && p.State != Running {
		return fmt.Errorf("kernel: process %d not runnable (%v)", pid, p.State)
	}
	p.State = Running
	k.step(p)
	if p.State == Running {
		p.State = Ready
	}
	return nil
}

// key encodes the scheduling-relevant state for deduplication.
func (k *Kernel) key() string {
	var sb strings.Builder
	sb.WriteString(k.output.String())
	sb.WriteByte('|')
	pids := make([]PID, 0, len(k.procs))
	for pid := range k.procs {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	for _, pid := range pids {
		p := k.procs[pid]
		fmt.Fprintf(&sb, "%d:%d:%d:%d:%d:%v;", pid, p.Parent, p.State, p.ip, p.compute, p.pending)
	}
	return sb.String()
}

// EnumerateResult reports the exploration outcome.
type EnumerateResult struct {
	Outputs  []string // every distinct final output, sorted
	States   int      // distinct states explored
	Deadlock bool     // some interleaving ends with blocked processes
}

// EnumerateOutputs explores all interleavings of prog (spawned as one
// process under init) and returns every possible final output. stateCap
// bounds the search (0 means 100000 states).
func EnumerateOutputs(prog []Op, stateCap int) (*EnumerateResult, error) {
	if stateCap <= 0 {
		stateCap = 100000
	}
	k0 := New()
	k0.Spawn(prog)

	res := &EnumerateResult{}
	outputs := make(map[string]bool)
	seen := make(map[string]bool)

	var dfs func(k *Kernel) error
	dfs = func(k *Kernel) error {
		k.reapInitZombies()
		key := k.key()
		if seen[key] {
			return nil
		}
		seen[key] = true
		if len(seen) > stateCap {
			return fmt.Errorf("kernel: interleaving search exceeded %d states", stateCap)
		}
		runnable := k.runnablePIDs()
		if len(runnable) == 0 {
			if k.liveCount() == 0 {
				outputs[k.Output()] = true
			} else {
				res.Deadlock = true
			}
			return nil
		}
		for _, pid := range runnable {
			branch := k.clone()
			if err := branch.stepPID(pid); err != nil {
				return err
			}
			if err := dfs(branch); err != nil {
				return err
			}
		}
		return nil
	}
	if err := dfs(k0); err != nil {
		return nil, err
	}
	for o := range outputs {
		res.Outputs = append(res.Outputs, o)
	}
	sort.Strings(res.Outputs)
	res.States = len(seen)
	return res, nil
}

// RunnablePIDs is the exported form of runnablePIDs, for cooperating
// drivers such as the shell that interleave processes themselves. Init's
// zombies are reaped first, as they would be by a running init.
func (k *Kernel) RunnablePIDs() []PID {
	k.reapInitZombies()
	return k.runnablePIDs()
}

// StepPID is the exported form of stepPID: run exactly one op of pid, then
// let init reap any of its newly dead children.
func (k *Kernel) StepPID(pid PID) error {
	err := k.stepPID(pid)
	k.reapInitZombies()
	return err
}
