package kernel

import (
	"strings"
	"testing"
)

func TestParseProgramBasic(t *testing.T) {
	ops, err := ParseProgram(`
# a comment
print A
fork {
    print B
    exit 1
}
compute 2
wait
exit 0
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 5 {
		t.Fatalf("ops: %#v", ops)
	}
	if p, ok := ops[0].(Print); !ok || p.Text != "A" {
		t.Errorf("op 0: %#v", ops[0])
	}
	f, ok := ops[1].(Fork)
	if !ok || len(f.Child) != 2 {
		t.Fatalf("op 1: %#v", ops[1])
	}
	if e, ok := f.Child[1].(Exit); !ok || e.Status != 1 {
		t.Errorf("child exit: %#v", f.Child[1])
	}
	if c, ok := ops[2].(Compute); !ok || c.N != 2 {
		t.Errorf("compute: %#v", ops[2])
	}
	if _, ok := ops[3].(Wait); !ok {
		t.Errorf("wait: %#v", ops[3])
	}
	if e, ok := ops[4].(Exit); !ok || e.Status != 0 {
		t.Errorf("exit: %#v", ops[4])
	}
}

func TestParseProgramNestedAndSignals(t *testing.T) {
	ops, err := ParseProgram(`
install SIGCHLD {
    print got-child
}
fork {
    fork {
        print deep
    }
    wait
}
signal SIGUSR1 parent
signal SIGTERM 3
exec {
    print replaced
}
wait
`)
	if err != nil {
		t.Fatal(err)
	}
	inst, ok := ops[0].(Install)
	if !ok || inst.Sig != SIGCHLD || len(inst.Handler) != 1 {
		t.Fatalf("install: %#v", ops[0])
	}
	outer, ok := ops[1].(Fork)
	if !ok {
		t.Fatalf("fork: %#v", ops[1])
	}
	if _, ok := outer.Child[0].(Fork); !ok {
		t.Errorf("nested fork: %#v", outer.Child[0])
	}
	sp, ok := ops[2].(SignalOp)
	if !ok || !sp.ToParent || sp.Sig != SIGUSR1 {
		t.Errorf("signal parent: %#v", ops[2])
	}
	st, ok := ops[3].(SignalOp)
	if !ok || st.Target != 3 || st.Sig != SIGTERM {
		t.Errorf("signal pid: %#v", ops[3])
	}
	if ex, ok := ops[4].(Exec); !ok || len(ex.Prog) != 1 {
		t.Errorf("exec: %#v", ops[4])
	}
}

func TestParseProgramErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"unknown op", "frobnicate"},
		{"print empty", "print"},
		{"fork no brace", "fork"},
		{"bad exit", "exit x"},
		{"bad compute", "compute zero"},
		{"compute negative", "compute -1"},
		{"install bad signal", "install SIGWHAT {\n}"},
		{"signal bad target", "signal SIGTERM someone"},
		{"signal arity", "signal SIGTERM"},
		{"stray close", "print A\n}\nprint B"},
	}
	for _, c := range cases {
		if _, err := ParseProgram(c.src); err == nil {
			t.Errorf("%s: expected error for %q", c.name, c.src)
		}
	}
}

func TestParsedProgramRunsAndEnumerates(t *testing.T) {
	ops, err := ParseProgram(`
print A
fork {
    print B
}
print C
wait
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := EnumerateOutputs(ops, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Print texts carry through verbatim; the homework answer ABC/ACB.
	want := []string{"ABC", "ACB"}
	if len(res.Outputs) != 2 || res.Outputs[0] != want[0] || res.Outputs[1] != want[1] {
		t.Errorf("outputs: %v", res.Outputs)
	}
	k := New()
	k.Spawn(ops)
	if err := k.Run(10000); err != nil {
		t.Fatal(err)
	}
	out := k.Output()
	if !strings.Contains(out, "A") || len(out) != 3 {
		t.Errorf("single run output: %q", out)
	}
}
