package kernel

import (
	"sort"
	"strings"
	"testing"
)

func run(t *testing.T, prog []Op) *Kernel {
	t.Helper()
	k := New()
	k.Spawn(prog)
	if err := k.Run(10000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return k
}

func TestSimplePrintExit(t *testing.T) {
	k := run(t, []Op{Print{"hello "}, Print{"world"}, Exit{0}})
	if k.Output() != "hello world" {
		t.Errorf("output = %q", k.Output())
	}
}

func TestImplicitExit(t *testing.T) {
	k := run(t, []Op{Print{"x"}})
	if k.Output() != "x" {
		t.Errorf("output = %q", k.Output())
	}
	if k.liveCount() != 0 {
		t.Error("process should be fully gone")
	}
}

func TestForkParentAndChildBothRun(t *testing.T) {
	k := run(t, []Op{
		Print{"A"},
		Fork{Child: []Op{Print{"B"}}},
		Print{"C"},
		Wait{},
	})
	out := k.Output()
	if !strings.HasPrefix(out, "A") {
		t.Errorf("A must print first: %q", out)
	}
	if !strings.Contains(out, "B") || !strings.Contains(out, "C") {
		t.Errorf("both B and C must print: %q", out)
	}
}

func TestWaitReapsZombie(t *testing.T) {
	k := New()
	parent := k.Spawn([]Op{
		Fork{Child: []Op{Exit{7}}},
		Wait{},
		Print{"done"},
	})
	if err := k.Run(1000); err != nil {
		t.Fatal(err)
	}
	if k.Output() != "done" {
		t.Errorf("output = %q", k.Output())
	}
	if _, ok := k.Proc(parent); ok {
		t.Error("parent should be reaped by init at the end")
	}
}

func TestZombieVisibleBeforeReap(t *testing.T) {
	k := New()
	k.Spawn([]Op{
		Fork{Child: []Op{Exit{3}}},
		Compute{5}, // don't wait yet
		Wait{},
	})
	// Step manually until the child exits but before the parent waits.
	sawZombie := false
	for i := 0; i < 50; i++ {
		pids := k.runnablePIDs()
		if len(pids) == 0 {
			break
		}
		if err := k.stepPID(pids[len(pids)-1]); err != nil { // prefer child
			t.Fatal(err)
		}
		for _, pid := range k.Processes() {
			if p, ok := k.Proc(pid); ok && p.State == Zombie {
				sawZombie = true
				if p.ExitCode != 3 {
					t.Errorf("zombie exit code %d", p.ExitCode)
				}
			}
		}
		if sawZombie {
			break
		}
	}
	if !sawZombie {
		t.Error("child should linger as a zombie until reaped")
	}
}

func TestOrphanAdoptedByInit(t *testing.T) {
	var traceLines []string
	k := New()
	k.Trace = func(s string) { traceLines = append(traceLines, s) }
	k.Spawn([]Op{
		// Parent exits immediately; child keeps computing, becoming an
		// orphan that init adopts and eventually reaps.
		Fork{Child: []Op{Compute{5}, Print{"orphan done"}}},
		Exit{0},
	})
	if err := k.Run(1000); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(k.Output(), "orphan done") {
		t.Errorf("orphan should finish: %q", k.Output())
	}
	joined := strings.Join(traceLines, "\n")
	if !strings.Contains(joined, "adopted by init") {
		t.Errorf("trace missing adoption:\n%s", joined)
	}
	if !strings.Contains(joined, "init reaps") {
		t.Errorf("trace missing init reap:\n%s", joined)
	}
}

func TestSIGCHLDHandler(t *testing.T) {
	k := run(t, []Op{
		Install{Sig: SIGCHLD, Handler: []Op{Print{"[chld]"}}},
		Fork{Child: []Op{Exit{0}}},
		Compute{10},
		Wait{},
		Print{"end"},
	})
	out := k.Output()
	if !strings.Contains(out, "[chld]") {
		t.Errorf("handler did not run: %q", out)
	}
	if !strings.HasSuffix(out, "end") {
		t.Errorf("main program did not finish: %q", out)
	}
}

func TestSIGTERMDefaultKills(t *testing.T) {
	k := New()
	victim := k.Spawn([]Op{Compute{100}, Print{"never"}})
	k.Spawn([]Op{SignalOp{Sig: SIGTERM, Target: victim}})
	if err := k.Run(10000); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(k.Output(), "never") {
		t.Error("SIGTERM default action should kill the victim")
	}
}

func TestSIGUSR1HandlerAcrossProcesses(t *testing.T) {
	k := New()
	receiver := k.Spawn([]Op{
		Install{Sig: SIGUSR1, Handler: []Op{Print{"got it"}}},
		Compute{20},
	})
	k.Spawn([]Op{Compute{3}, SignalOp{Sig: SIGUSR1, Target: receiver}})
	if err := k.Run(10000); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(k.Output(), "got it") {
		t.Errorf("handler output missing: %q", k.Output())
	}
}

func TestExecReplacesProgram(t *testing.T) {
	k := run(t, []Op{
		Print{"before "},
		Exec{Prog: []Op{Print{"after"}}},
		Print{"unreachable"},
	})
	if k.Output() != "before after" {
		t.Errorf("output = %q", k.Output())
	}
}

func TestForkThenExecIdiom(t *testing.T) {
	// The shell's core: fork a child, exec the command, wait for it.
	k := run(t, []Op{
		Fork{Child: []Op{Exec{Prog: []Op{Print{"ls output\n"}}}}},
		Wait{},
		Print{"prompt$ "},
	})
	out := k.Output()
	if !strings.Contains(out, "ls output") {
		t.Errorf("command did not run: %q", out)
	}
	if !strings.HasSuffix(out, "prompt$ ") {
		t.Errorf("shell should print prompt after reaping: %q", out)
	}
}

func TestWaitWithNoChildren(t *testing.T) {
	k := run(t, []Op{Wait{}, Print{"ok"}})
	if k.Output() != "ok" {
		t.Errorf("wait with no children should not block: %q", k.Output())
	}
}

func TestContextSwitchesCounted(t *testing.T) {
	k := New()
	k.Quantum = 1
	k.Spawn([]Op{Compute{5}})
	k.Spawn([]Op{Compute{5}})
	if err := k.Run(1000); err != nil {
		t.Fatal(err)
	}
	if k.ContextSwitches < 5 {
		t.Errorf("two compute-bound processes at quantum 1 should switch often: %d", k.ContextSwitches)
	}
}

func TestLargerQuantumFewerSwitches(t *testing.T) {
	count := func(q int) int64 {
		k := New()
		k.Quantum = q
		k.Spawn([]Op{Compute{20}})
		k.Spawn([]Op{Compute{20}})
		if err := k.Run(10000); err != nil {
			t.Fatal(err)
		}
		return k.ContextSwitches
	}
	if count(10) >= count(1) {
		t.Errorf("larger quantum should reduce context switches: q10=%d q1=%d", count(10), count(1))
	}
}

func TestProcessTreeRendering(t *testing.T) {
	k := New()
	k.Spawn([]Op{
		Fork{Child: []Op{Compute{50}}},
		Fork{Child: []Op{Compute{50}}},
		Compute{50},
	})
	// Run a few steps so the forks happen.
	for i := 0; i < 6; i++ {
		pids := k.runnablePIDs()
		if len(pids) == 0 {
			break
		}
		if err := k.stepPID(pids[0]); err != nil {
			t.Fatal(err)
		}
	}
	tree := k.Tree()
	if !strings.HasPrefix(tree, "1 [") {
		t.Errorf("tree should root at init:\n%s", tree)
	}
	if strings.Count(tree, "\n") < 4 {
		t.Errorf("tree should show init, parent, two children:\n%s", tree)
	}
}

func TestRunStepBudget(t *testing.T) {
	k := New()
	k.Spawn([]Op{Compute{1 << 30}})
	if err := k.Run(100); err == nil {
		t.Error("expected step budget error")
	}
}

func TestSignalToDeadProcessIgnored(t *testing.T) {
	k := New()
	dead := k.Spawn([]Op{Exit{0}})
	k.Spawn([]Op{Compute{5}, SignalOp{Sig: SIGTERM, Target: dead}, Print{"ok"}})
	if err := k.Run(1000); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(k.Output(), "ok") {
		t.Errorf("output: %q", k.Output())
	}
}

func TestStateAndSignalStrings(t *testing.T) {
	if Zombie.String() != "zombie" || Ready.String() != "ready" {
		t.Error("state names")
	}
	if SIGCHLD.String() != "SIGCHLD" || Signal(9).String() != "signal(9)" {
		t.Error("signal names")
	}
}

func TestEnumerateSimpleForkOutputs(t *testing.T) {
	// printf("A"); if (fork()==0) { printf("B"); } else { printf("C"); }
	// Modeled: A, fork{B}, C. Possible outputs: ABC, ACB.
	res, err := EnumerateOutputs([]Op{
		Print{"A"},
		Fork{Child: []Op{Print{"B"}}},
		Print{"C"},
		Wait{},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"ABC", "ACB"}
	if !equalStrings(res.Outputs, want) {
		t.Errorf("outputs = %v, want %v", res.Outputs, want)
	}
	if res.Deadlock {
		t.Error("no deadlock expected")
	}
}

func TestEnumerateWaitOrdersOutput(t *testing.T) {
	// Parent waits before printing C, so C is always last.
	res, err := EnumerateOutputs([]Op{
		Print{"A"},
		Fork{Child: []Op{Print{"B"}}},
		Wait{},
		Print{"C"},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"ABC"}
	if !equalStrings(res.Outputs, want) {
		t.Errorf("outputs = %v, want %v", res.Outputs, want)
	}
}

func TestEnumerateTwoChildren(t *testing.T) {
	// Two children print X and Y concurrently with the parent's Z.
	res, err := EnumerateOutputs([]Op{
		Fork{Child: []Op{Print{"X"}}},
		Fork{Child: []Op{Print{"Y"}}},
		Print{"Z"},
		Wait{},
		Wait{},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// X always can come before or after Y and Z in any order, except
	// constraints: X's fork precedes Y's fork, but prints interleave
	// freely: all 3! = 6 orders are possible except those where Y prints
	// before its fork happens... every permutation is actually reachable.
	want := []string{"XYZ", "XZY", "YXZ", "YZX", "ZXY", "ZYX"}
	sort.Strings(want)
	if !equalStrings(res.Outputs, want) {
		t.Errorf("outputs = %v, want %v", res.Outputs, want)
	}
}

func TestEnumerateNestedFork(t *testing.T) {
	// fork inside the child: grandchild prints G.
	res, err := EnumerateOutputs([]Op{
		Fork{Child: []Op{
			Fork{Child: []Op{Print{"G"}}},
			Print{"C"},
			Wait{},
		}},
		Print{"P"},
		Wait{},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range res.Outputs {
		if len(o) != 3 || !strings.Contains(o, "G") ||
			!strings.Contains(o, "C") || !strings.Contains(o, "P") {
			t.Errorf("malformed output %q", o)
		}
	}
	if len(res.Outputs) < 3 {
		t.Errorf("expected several interleavings, got %v", res.Outputs)
	}
}

func TestEnumerateStateCap(t *testing.T) {
	// A big program with a tiny cap errors out.
	prog := []Op{}
	for i := 0; i < 6; i++ {
		prog = append(prog, Fork{Child: []Op{Print{"x"}, Print{"y"}}})
	}
	if _, err := EnumerateOutputs(prog, 10); err == nil {
		t.Error("expected state-cap error")
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
