// Package kernel simulates the operating system mechanisms CS 31 teaches:
// the process abstraction with fork/exec/wait/exit, the process hierarchy
// with zombies and orphan reparenting, asynchronous signals with handlers
// (SIGCHLD above all), and round-robin timesharing with context switches.
// Programs are small op lists — Print, Fork, Wait, Exit, Compute, ... — the
// exact shape of the course's "trace this fork program" homework problems,
// and the enumerate half of the package exhaustively explores scheduler
// interleavings to answer "which outputs are possible?".
package kernel

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// PID identifies a process. PID 1 is init.
type PID int

// InitPID is the init process, the ancestor that adopts orphans.
const InitPID PID = 1

// Signal is an asynchronous signal number.
type Signal int

// The signals the course discusses.
const (
	SIGCHLD Signal = iota
	SIGTERM
	SIGINT
	SIGUSR1
)

func (s Signal) String() string {
	names := [...]string{"SIGCHLD", "SIGTERM", "SIGINT", "SIGUSR1"}
	if int(s) < len(names) {
		return names[s]
	}
	return fmt.Sprintf("signal(%d)", int(s))
}

// State is a process's lifecycle state.
type State int

// Process states.
const (
	Ready State = iota
	Running
	Blocked // waiting in wait()
	Zombie  // exited, not yet reaped
	Reaped  // fully gone
)

func (s State) String() string {
	return [...]string{"ready", "running", "blocked", "zombie", "reaped"}[s]
}

// Op is one step of a simulated program.
type Op interface{ opNode() }

// Print emits text to the shared output.
type Print struct{ Text string }

// Fork creates a child running the Child ops (the child exits implicitly
// when it finishes them); the parent continues with the next op.
type Fork struct{ Child []Op }

// Exec replaces the process's program with Prog, resetting signal handlers
// — the fork-then-exec idiom of the shell lab.
type Exec struct{ Prog []Op }

// Exit terminates the process with a status, leaving a zombie until the
// parent reaps it.
type Exit struct{ Status int }

// Wait blocks until some child exits, then reaps it. With no children it
// returns immediately (like wait(2) returning -1).
type Wait struct{}

// Compute burns n scheduler steps of CPU, for quantum/context-switch
// demonstrations.
type Compute struct{ N int }

// Install registers handler ops for a signal.
type Install struct {
	Sig     Signal
	Handler []Op
}

// SignalOp sends a signal to a target process.
type SignalOp struct {
	Sig      Signal
	ToParent bool // send to parent instead of Target
	Target   PID
}

func (Print) opNode()    {}
func (Fork) opNode()     {}
func (Exec) opNode()     {}
func (Exit) opNode()     {}
func (Wait) opNode()     {}
func (Compute) opNode()  {}
func (Install) opNode()  {}
func (SignalOp) opNode() {}

// Process is one simulated process.
type Process struct {
	PID      PID
	Parent   PID
	State    State
	ExitCode int

	ops      []Op
	ip       int
	compute  int // remaining Compute steps for the current op
	handlers map[Signal][]Op
	pending  []Signal
	children []PID
}

// Kernel is the simulated OS: a process table, ready queue, and round-robin
// scheduler.
type Kernel struct {
	procs   map[PID]*Process
	ready   []PID
	nextPID PID
	output  strings.Builder

	// Quantum is the number of ops a process runs before preemption.
	Quantum int
	// ContextSwitches counts scheduler switches between distinct processes.
	ContextSwitches int64
	lastRun         PID

	// Trace, when non-nil, receives one line per kernel event.
	Trace func(string)
}

// New creates a kernel with an init process (PID 1) that has an empty
// program; init never exits and adopts orphans.
func New() *Kernel {
	k := &Kernel{
		procs:   make(map[PID]*Process),
		nextPID: 2,
		Quantum: 2,
		lastRun: -1,
	}
	k.procs[InitPID] = &Process{
		PID: InitPID, Parent: 0, State: Blocked, // init sits in wait()
		handlers: make(map[Signal][]Op),
	}
	return k
}

func (k *Kernel) trace(format string, args ...interface{}) {
	if k.Trace != nil {
		k.Trace(fmt.Sprintf(format, args...))
	}
}

// Spawn creates a new top-level process (child of init) running prog.
func (k *Kernel) Spawn(prog []Op) PID {
	pid := k.allocProc(InitPID, prog)
	init := k.procs[InitPID]
	init.children = append(init.children, pid)
	return pid
}

func (k *Kernel) allocProc(parent PID, prog []Op) PID {
	pid := k.nextPID
	k.nextPID++
	p := &Process{
		PID: pid, Parent: parent, State: Ready,
		ops: prog, handlers: make(map[Signal][]Op),
	}
	k.procs[pid] = p
	k.ready = append(k.ready, pid)
	k.trace("create pid %d (parent %d)", pid, parent)
	return pid
}

// Output returns everything printed so far.
func (k *Kernel) Output() string { return k.output.String() }

// Proc looks up a process (including zombies).
func (k *Kernel) Proc(pid PID) (*Process, bool) {
	p, ok := k.procs[pid]
	if ok && p.State == Reaped {
		return nil, false
	}
	return p, ok
}

// Processes returns the live PIDs in ascending order.
func (k *Kernel) Processes() []PID {
	var out []PID
	for pid, p := range k.procs {
		if p.State != Reaped {
			out = append(out, pid)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ErrDeadlock is returned by Run when no process can make progress but
// non-init processes remain.
var ErrDeadlock = errors.New("kernel: all processes blocked")

// Run schedules round-robin until every spawned process has exited (or
// maxSteps ops have executed). Zombies of init are auto-reaped.
func (k *Kernel) Run(maxSteps int) error {
	steps := 0
	for {
		k.reapInitZombies()
		pid, ok := k.pickNext()
		if !ok {
			if k.liveCount() == 0 {
				return nil
			}
			return ErrDeadlock
		}
		if pid != k.lastRun && k.lastRun != -1 {
			k.ContextSwitches++
		}
		k.lastRun = pid
		p := k.procs[pid]
		p.State = Running
		for q := 0; q < k.Quantum && p.State == Running; q++ {
			if steps >= maxSteps {
				return fmt.Errorf("kernel: exceeded %d steps", maxSteps)
			}
			steps++
			k.step(p)
		}
		if p.State == Running {
			p.State = Ready
			k.ready = append(k.ready, pid)
		}
	}
}

// liveCount counts non-init processes that are not reaped.
func (k *Kernel) liveCount() int {
	n := 0
	for pid, p := range k.procs {
		if pid != InitPID && p.State != Reaped {
			n++
		}
	}
	return n
}

// pickNext pops the next ready process, retrying blocked-wait processes
// whose children have since exited.
func (k *Kernel) pickNext() (PID, bool) {
	// First unblock any waiting parents with zombie children.
	for pid, p := range k.procs {
		if p.State == Blocked && pid != InitPID && k.hasZombieChild(p) {
			p.State = Ready
			k.ready = append(k.ready, pid)
		}
	}
	for len(k.ready) > 0 {
		pid := k.ready[0]
		k.ready = k.ready[1:]
		if p, ok := k.procs[pid]; ok && p.State == Ready {
			return pid, true
		}
	}
	return 0, false
}

func (k *Kernel) hasZombieChild(p *Process) bool {
	for _, c := range p.children {
		if k.procs[c].State == Zombie {
			return true
		}
	}
	return false
}

// step executes one op (or pending signal handler) of p.
func (k *Kernel) step(p *Process) {
	// Deliver pending signals first: run the handler ops synchronously, the
	// "handler interrupts the program" model from lecture.
	if len(p.pending) > 0 {
		sig := p.pending[0]
		p.pending = p.pending[1:]
		if handler, ok := p.handlers[sig]; ok {
			k.trace("pid %d handles %v", p.PID, sig)
			for _, op := range handler {
				k.execSimpleOp(p, op)
				if p.State != Running {
					return
				}
			}
			return
		}
		// Default dispositions.
		switch sig {
		case SIGTERM, SIGINT:
			k.trace("pid %d killed by %v", p.PID, sig)
			k.exit(p, 128+int(sig))
			return
		default: // SIGCHLD and SIGUSR1 ignored by default
		}
		return
	}

	if p.ip >= len(p.ops) {
		k.exit(p, 0) // falling off the end is exit(0)
		return
	}
	op := p.ops[p.ip]
	switch o := op.(type) {
	case Compute:
		if p.compute == 0 {
			p.compute = o.N
		}
		p.compute--
		if p.compute <= 0 {
			p.ip++
		}
	case Fork:
		child := k.allocProc(p.PID, o.Child)
		p.children = append(p.children, child)
		p.ip++
		k.trace("pid %d forks %d", p.PID, child)
	case Exec:
		p.ops = o.Prog
		p.ip = 0
		p.handlers = make(map[Signal][]Op)
		k.trace("pid %d execs new program", p.PID)
	case Wait:
		reaped := false
		for _, c := range p.children {
			cp := k.procs[c]
			if cp.State == Zombie {
				cp.State = Reaped
				k.removeChild(p, c)
				k.trace("pid %d reaps %d (status %d)", p.PID, c, cp.ExitCode)
				reaped = true
				break
			}
		}
		switch {
		case reaped:
			p.ip++
		case len(p.children) == 0:
			p.ip++ // wait() with no children returns immediately
		default:
			p.State = Blocked
			k.trace("pid %d blocks in wait()", p.PID)
		}
	case Exit:
		k.exit(p, o.Status)
	default:
		k.execSimpleOp(p, op)
		if p.State == Running {
			p.ip++
		}
	}
}

// execSimpleOp handles ops legal inside signal handlers (no ip change).
func (k *Kernel) execSimpleOp(p *Process, op Op) {
	switch o := op.(type) {
	case Print:
		k.output.WriteString(o.Text)
		k.trace("pid %d prints %q", p.PID, o.Text)
	case Install:
		p.handlers[o.Sig] = o.Handler
		k.trace("pid %d installs handler for %v", p.PID, o.Sig)
	case SignalOp:
		target := o.Target
		if o.ToParent {
			target = p.Parent
		}
		k.deliver(target, o.Sig)
	case Exit:
		k.exit(p, o.Status)
	default:
		// Fork/Wait/Exec/Compute inside a handler are unsupported; treat as
		// a no-op so handlers stay simple, as in the course examples.
	}
}

// deliver queues a signal for a process.
func (k *Kernel) deliver(pid PID, sig Signal) {
	p, ok := k.procs[pid]
	if !ok || p.State == Zombie || p.State == Reaped {
		return
	}
	p.pending = append(p.pending, sig)
	k.trace("deliver %v to pid %d", sig, pid)
	// Signals wake blocked processes (EINTR semantics simplified: the wait
	// resumes and re-checks).
	if p.State == Blocked && pid != InitPID {
		p.State = Ready
		k.ready = append(k.ready, pid)
	}
}

// exit terminates p: zombie until reaped, orphans reparented to init,
// SIGCHLD to the parent.
func (k *Kernel) exit(p *Process, status int) {
	p.State = Zombie
	p.ExitCode = status
	k.trace("pid %d exits (status %d)", p.PID, status)
	// Orphans go to init.
	for _, c := range p.children {
		cp := k.procs[c]
		cp.Parent = InitPID
		init := k.procs[InitPID]
		init.children = append(init.children, c)
		k.trace("pid %d orphaned, adopted by init", c)
	}
	p.children = nil
	k.deliver(p.Parent, SIGCHLD)
}

func (k *Kernel) removeChild(p *Process, c PID) {
	for i, x := range p.children {
		if x == c {
			p.children = append(p.children[:i], p.children[i+1:]...)
			return
		}
	}
}

// reapInitZombies lets init collect its dead children.
func (k *Kernel) reapInitZombies() {
	init := k.procs[InitPID]
	kept := init.children[:0]
	for _, c := range init.children {
		if k.procs[c].State == Zombie {
			k.procs[c].State = Reaped
			k.trace("init reaps %d", c)
		} else {
			kept = append(kept, c)
		}
	}
	init.children = kept
	init.pending = nil
}

// Kill delivers a signal to a process from outside the simulation (the
// shell's kill builtin).
func (k *Kernel) Kill(pid PID, sig Signal) error {
	p, ok := k.procs[pid]
	if !ok || p.State == Reaped || p.State == Zombie {
		return fmt.Errorf("kernel: no such process %d", pid)
	}
	k.deliver(pid, sig)
	return nil
}

// Tree renders the process hierarchy, the diagram students draw for the
// processes homework.
func (k *Kernel) Tree() string {
	var sb strings.Builder
	var walk func(pid PID, depth int)
	walk = func(pid PID, depth int) {
		p := k.procs[pid]
		fmt.Fprintf(&sb, "%s%d [%s]\n", strings.Repeat("  ", depth), pid, p.State)
		kids := append([]PID(nil), p.children...)
		sort.Slice(kids, func(i, j int) bool { return kids[i] < kids[j] })
		for _, c := range kids {
			walk(c, depth+1)
		}
	}
	walk(InitPID, 0)
	return sb.String()
}
