package msgpass

import "time"

// The deadlock watchdog. While World.Run drives ranks it samples every
// rank's wait-set (the seqlock each blocking operation publishes) on a
// half-timeout cadence and compares consecutive snapshots. A rank is
// *stuck* when two samples a full tick apart show the same odd sequence
// number — the wait existed the whole period and made zero progress (any
// envelope pended, any retry, bumps the sequence). Each stuck rank waits
// on exactly one peer, so the wait-for graph is functional and cycle
// detection is a pointer walk:
//
//   - a cycle of stuck ranks (each waiting on the next) can never clear —
//     channel semantics guarantee a blocked rank produces nothing — so it
//     is reported as a DeadlockError naming the cycle;
//   - a stuck rank whose peer has already returned from its rank function
//     (and whose own inbox stayed drained) waits on a sender that will
//     never send again — reported as an orphaned wait.
//
// Timed receives (RecvTimeout/RecvDeadline) are exempt: they resolve
// themselves and must not trip the detector. Ranks failed with World.Fail
// never appear blocked on the failed edge — the failure channel releases
// their waiters directly — so the watchdog and the failure layer cannot
// double-report. The detector is sound (it only trips on waits that
// provably cannot clear) but not complete across deadlines: a cycle that
// includes a timed receive is left to the timeout.
func (w *World) watchdogLoop(stop <-chan struct{}) {
	tick := w.watchdog / 2
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	timer := time.NewTicker(tick)
	defer timer.Stop()
	var prev []waitSample
	for {
		select {
		case <-stop:
			return
		case <-w.abort:
			return
		case <-timer.C:
		}
		cur := w.sampleWaits()
		if err := findDeadlock(prev, cur); err != nil {
			w.abortWith(err)
			return
		}
		prev = cur
	}
}

// waitSample is one rank's wait-state at a sampling instant.
type waitSample struct {
	blocked  bool
	seq      uint64
	kind     int32
	peer     int
	tag      int
	inboxLen int
	done     bool
}

// sampleWaits snapshots every rank's seqlock. An inconsistent read (the
// rank changed state mid-sample) is recorded as not blocked — the rank is
// visibly making progress.
func (w *World) sampleWaits() []waitSample {
	out := make([]waitSample, w.size)
	for r, c := range w.comms {
		s := &out[r]
		s.done = c.done.Load()
		s.inboxLen = len(c.inbox)
		seq1 := c.waitSeq.Load()
		if seq1%2 == 0 {
			continue // even: running, not blocked
		}
		kind := c.waitKind.Load()
		peer := int(c.waitPeer.Load())
		tag := int(c.waitTag.Load())
		if c.waitSeq.Load() != seq1 {
			continue // torn read; the rank moved, so it is not stuck
		}
		if kind == waitRecvTimed {
			continue // deadline-bearing waits resolve themselves
		}
		s.blocked = true
		s.seq = seq1
		s.kind = kind
		s.peer = peer
		s.tag = tag
	}
	return out
}

// waitOf renders a sample as the structured wait-set entry errors carry.
func waitOf(rank int, s waitSample) Wait {
	op := "recv"
	if s.kind == waitSend {
		op = "send"
	}
	return Wait{Rank: rank, Op: op, Peer: s.peer, Tag: s.tag}
}

// findDeadlock compares consecutive snapshots and returns a DeadlockError
// when a stuck cycle or orphaned wait is present, nil otherwise.
func findDeadlock(prev, cur []waitSample) error {
	if prev == nil {
		return nil
	}
	n := len(cur)
	stuck := make([]bool, n)
	for r := 0; r < n; r++ {
		stuck[r] = cur[r].blocked && prev[r].blocked && cur[r].seq == prev[r].seq
	}

	// Orphaned waits: the peer's rank function has returned, so nothing
	// will ever satisfy the wait. For receives, also require the waiter's
	// inbox to have been empty at both samples — a late envelope from the
	// peer's final sends must get its chance to match before the wait is
	// condemned (the pending queue cannot hide a match: a pended match
	// would have been consumed before the rank ever blocked).
	for r := 0; r < n; r++ {
		if !stuck[r] {
			continue
		}
		p := cur[r].peer
		if p < 0 || p >= n || !cur[p].done {
			continue
		}
		if cur[r].kind == waitSend || (cur[r].inboxLen == 0 && prev[r].inboxLen == 0) {
			return &DeadlockError{Cycle: []Wait{waitOf(r, cur[r])}, Orphaned: true}
		}
	}

	// Cycle detection over the functional wait-for graph restricted to
	// stuck ranks: follow each rank's single successor, marking the path;
	// revisiting a rank on the current path closes a cycle.
	const (
		unvisited = iota
		active
		finished
	)
	state := make([]int8, n)
	for start := 0; start < n; start++ {
		if !stuck[start] || state[start] != unvisited {
			continue
		}
		var path []int
		r := start
		for {
			if r < 0 || r >= n || !stuck[r] || state[r] == finished {
				break // dead end: the chain leaves the stuck set
			}
			if state[r] == active {
				// Cycle: the suffix of path starting at r.
				i := 0
				for path[i] != r {
					i++
				}
				cyc := make([]Wait, 0, len(path)-i)
				for _, pr := range path[i:] {
					cyc = append(cyc, waitOf(pr, cur[pr]))
				}
				return &DeadlockError{Cycle: cyc}
			}
			state[r] = active
			path = append(path, r)
			r = cur[r].peer
		}
		for _, pr := range path {
			state[pr] = finished
		}
	}
	return nil
}
