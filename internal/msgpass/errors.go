package msgpass

import (
	"errors"
	"fmt"
	"strings"
	"time"
)

// Sentinel failure classes. The structured errors below unwrap to these,
// so callers can classify with errors.Is while the structured form names
// the ranks, tags, and wait cycle involved.
var (
	// ErrTimeout classifies RecvTimeout/RecvDeadline expiries.
	ErrTimeout = errors.New("msgpass: receive timed out")
	// ErrRankFailed classifies operations on (or by) a failed rank.
	ErrRankFailed = errors.New("msgpass: rank failed")
	// ErrDeadlock classifies watchdog-detected wait cycles.
	ErrDeadlock = errors.New("msgpass: deadlock")
)

// TimeoutError reports a RecvTimeout/RecvDeadline that expired before a
// matching message arrived.
type TimeoutError struct {
	Rank    int // the waiting rank
	Source  int // the (source, tag) pair it waited for
	Tag     int
	Timeout time.Duration // the budget that expired (0 for deadline form)
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("msgpass: rank %d recv from %d tag %d: timed out after %v",
		e.Rank, e.Source, e.Tag, e.Timeout)
}

func (e *TimeoutError) Unwrap() error { return ErrTimeout }

// RankFailedError reports an operation that could not complete because a
// rank has been failed with World.Fail: a send to a dead peer, a receive
// from one with nothing left in flight, or any operation by the dead rank
// itself.
type RankFailedError struct {
	Rank int // the failed rank
}

func (e *RankFailedError) Error() string {
	return fmt.Sprintf("msgpass: rank %d failed", e.Rank)
}

func (e *RankFailedError) Unwrap() error { return ErrRankFailed }

// Wait is one blocked rank's wait-set entry: what it is blocked on. It is
// the unit the watchdog snapshots and the DeadlockError cycle is made of.
type Wait struct {
	Rank int    // the blocked rank
	Op   string // "recv" or "send"
	Peer int    // recv: the awaited source; send: the destination
	Tag  int    // negative tags are collective traffic
}

func (w Wait) String() string {
	return fmt.Sprintf("rank %d %s(peer %d, tag %d)", w.Rank, w.Op, w.Peer, w.Tag)
}

// DeadlockError is the watchdog's report: a cycle of ranks each blocked
// waiting on the next (Cycle[i] waits on Cycle[(i+1) % len]), observed
// stable for a full watchdog period. Orphaned marks the degenerate case of
// a rank blocked on a peer that has already returned from its rank
// function and can never satisfy the wait — a one-entry "cycle".
type DeadlockError struct {
	Cycle    []Wait
	Orphaned bool
}

func (e *DeadlockError) Error() string {
	var sb strings.Builder
	sb.WriteString("msgpass: deadlock detected: ")
	if e.Orphaned {
		sb.WriteString(e.Cycle[0].String())
		sb.WriteString(" but the peer has exited")
		return sb.String()
	}
	for i, w := range e.Cycle {
		if i > 0 {
			sb.WriteString(" -> ")
		}
		sb.WriteString(w.String())
	}
	sb.WriteString(" -> rank ")
	fmt.Fprintf(&sb, "%d", e.Cycle[0].Rank)
	return sb.String()
}

func (e *DeadlockError) Unwrap() error { return ErrDeadlock }

// Ranks lists the ranks involved in the cycle, in cycle order — the
// structured form labd logs and tests assert on.
func (e *DeadlockError) Ranks() []int {
	rs := make([]int, len(e.Cycle))
	for i, w := range e.Cycle {
		rs[i] = w.Rank
	}
	return rs
}
