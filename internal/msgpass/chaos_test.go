package msgpass

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// Tests for the chaos transport hook. The load-bearing property is that
// chaos perturbs timing only: any program correct under the runtime's
// semantics must produce bit-identical results under any chaos schedule,
// because per-pair ordering and (source, tag) matching are untouched.

// chaosMatchScript replays a fuzz-corpus matching script through a world
// with the given options, so the differential tests can run the same
// script with and without injection.
func chaosMatchScript(s *matchScript, opts ...Option) ([]int, error) {
	total := 0
	for _, msgs := range s.senders {
		total += len(msgs)
	}
	w, err := NewWorld(len(s.senders)+1, append([]Option{WithCapacity(total + 1)}, opts...)...)
	if err != nil {
		return nil, err
	}
	got := make([]int, 0, len(s.recvs))
	err = w.Run(func(c *Comm) error {
		if c.Rank() > 0 {
			for _, m := range s.senders[c.Rank()-1] {
				if err := Send(c, 0, m.tag, m.val); err != nil {
					return err
				}
			}
			return nil
		}
		for _, rq := range s.recvs {
			v, err := Recv[int](c, rq[0]+1, rq[1])
			if err != nil {
				return err
			}
			got = append(got, v)
		}
		return nil
	})
	return got, err
}

// TestChaosPreservesMatching: the fuzz seed corpus, replayed under
// aggressive delay and stall injection across several seeds, must deliver
// exactly what the sequential reference matcher says — chaos shifts
// timing, never matching.
func TestChaosPreservesMatching(t *testing.T) {
	for _, chaosSeed := range []int64{1, 2, 3} {
		for i, seed := range matchSeeds() {
			s := decodeMatchScript(seed)
			if s == nil {
				t.Fatalf("seed %d too short", i)
			}
			want := refMatch(s)
			got, err := chaosMatchScript(s, WithChaos(Chaos{
				Seed:      chaosSeed,
				DelayProb: 0.8,
				MaxDelay:  200 * time.Microsecond,
				StallProb: 0.5,
				MaxStall:  200 * time.Microsecond,
			}))
			if err != nil {
				t.Fatalf("chaos seed %d script %d: %v", chaosSeed, i, err)
			}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Errorf("chaos seed %d script %d: delivered %v, reference %v",
					chaosSeed, i, got, want)
			}
		}
	}
}

// TestChaosNonOvertaking: a same-(source, tag) message stream under heavy
// delay injection must still arrive in send order — delays happen in the
// sender's program order before the enqueue, so they cannot reorder a pair.
func TestChaosNonOvertaking(t *testing.T) {
	const n = 50
	w, err := NewWorld(2, WithCapacity(4), WithChaos(Chaos{
		Seed:      7,
		DelayProb: 0.9,
		MaxDelay:  100 * time.Microsecond,
	}))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				if err := Send(c, 1, 0, i); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < n; i++ {
			got, err := Recv[int](c, 0, 0)
			if err != nil {
				return err
			}
			if got != i {
				return fmt.Errorf("message %d arrived as %d: overtaking under chaos", i, got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestChaosRankRestriction: with Ranks set, only the listed ranks draw
// injection; the others must have no PRNG armed at all.
func TestChaosRankRestriction(t *testing.T) {
	w, err := NewWorld(4, WithChaos(Chaos{
		Seed:      1,
		DelayProb: 1,
		MaxDelay:  time.Microsecond,
		Ranks:     []int{2},
	}))
	if err != nil {
		t.Fatal(err)
	}
	for r, c := range w.comms {
		armed := c.rng != nil
		if want := r == 2; armed != want {
			t.Errorf("rank %d: chaos armed = %v, want %v", r, armed, want)
		}
	}
}

// TestChaosValidation: probabilities outside [0,1], negative durations, and
// out-of-world ranks are rejected at NewWorld time.
func TestChaosValidation(t *testing.T) {
	bad := []Chaos{
		{DelayProb: -0.1},
		{DelayProb: 1.1},
		{StallProb: 2},
		{MaxDelay: -time.Second},
		{MaxStall: -time.Second},
		{Ranks: []int{3}},
		{Ranks: []int{-1}},
	}
	for i, c := range bad {
		if _, err := NewWorld(3, WithChaos(c)); err == nil {
			t.Errorf("config %d (%+v) accepted", i, c)
		}
	}
	ok := Chaos{Seed: 1, DelayProb: 0.5, MaxDelay: time.Millisecond, Ranks: []int{0, 2}}
	if _, err := NewWorld(3, WithChaos(ok)); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// TestChaosStallDoesNotTripWatchdog: stalls bounded well under the
// watchdog timeout must never be reported as deadlock — the detector
// requires zero progress across two consecutive samples.
func TestChaosStallDoesNotTripWatchdog(t *testing.T) {
	w, err := NewWorld(2,
		WithChaos(Chaos{Seed: 3, StallProb: 1, MaxStall: 2 * time.Millisecond}),
		WithWatchdog(200*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		peer := 1 - c.Rank()
		for i := 0; i < 20; i++ {
			if err := Send(c, peer, 0, i); err != nil {
				return err
			}
			if _, err := c.Recv(peer, 0); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("stalled-but-live exchange reported as fault: %v", err)
	}
}

// TestChaosInterruptedByAbort: a rank parked in a chaos sleep must wake
// promptly when the world aborts — injected latency never delays
// cancellation.
func TestChaosInterruptedByAbort(t *testing.T) {
	w, err := NewWorld(2, WithChaos(Chaos{
		Seed:      5,
		StallProb: 1,
		MaxStall:  30 * time.Second, // far beyond the test budget: must be interrupted
	}))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- w.Run(func(c *Comm) error {
			if c.Rank() == 0 {
				w.abortWith(errors.New("test abort"))
				return nil
			}
			_, err := c.Recv(0, 0) // parks in the chaos stall first
			return err
		})
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("rank slept through the abort and returned nil")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("chaos sleep not interrupted by abort")
	}
}
