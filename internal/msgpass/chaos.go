package msgpass

import (
	"fmt"
	"math/rand"
	"time"
)

// Chaos is the seeded fault-injection transport hook: it perturbs message
// timing — never message content or order — so the runtime's failure
// handling can be provoked deliberately instead of waited for. Two knobs:
//
//   - Delivery delays: before a message is enqueued at its destination,
//     the sender sleeps a pseudorandom duration in (0, MaxDelay] with
//     probability DelayProb. The delay happens in the sender's program
//     order before the enqueue, so two messages on one (source, tag) pair
//     still arrive in send order — the non-overtaking contract holds under
//     any chaos schedule.
//   - Rank stalls: before entering a receive, the rank sleeps a
//     pseudorandom duration in (0, MaxStall] with probability StallProb —
//     the straggler model (one slow rank holding up a halo exchange or a
//     collective).
//
// Every rank draws from its own PRNG seeded from (Seed, rank), and draws
// are consumed in the rank's program order, so a chaos schedule is
// deterministic per (seed, rank program) regardless of goroutine
// scheduling. Chaos sleeps are interruptible: an aborted world or a failed
// rank wakes mid-sleep, so cancellation stays prompt under chaos.
type Chaos struct {
	Seed      int64
	DelayProb float64       // probability a send's delivery is delayed
	MaxDelay  time.Duration // delay drawn uniformly from (0, MaxDelay]
	StallProb float64       // probability a rank stalls entering a recv
	MaxStall  time.Duration // stall drawn uniformly from (0, MaxStall]
	Ranks     []int         // restrict injection to these ranks; nil = all
}

// WithChaos arms the chaos hook on a world.
func WithChaos(c Chaos) Option {
	return func(cfg *worldConfig) {
		cc := c
		cfg.chaos = &cc
	}
}

// WithWatchdog arms the deadlock watchdog: while World.Run drives the
// ranks, a monitor samples every rank's wait-set and aborts the world with
// a DeadlockError when a wait cycle (or a wait on an exited rank) stays
// stable for roughly timeout. Detection latency is between one and two
// timeouts; timeout must comfortably exceed any legitimate blocking span
// (including chaos delays) or slow progress will be misread as deadlock —
// the watchdog only trips on waits that made zero progress across two
// consecutive samples, so the bound is on stall length, not total runtime.
func WithWatchdog(timeout time.Duration) Option {
	return func(cfg *worldConfig) {
		cfg.watchdog = timeout
	}
}

// validate checks the chaos configuration at NewWorld time.
func (c *Chaos) validate(size int) error {
	if c.DelayProb < 0 || c.DelayProb > 1 || c.StallProb < 0 || c.StallProb > 1 {
		return fmt.Errorf("msgpass: chaos probabilities must be in [0,1], got delay %v stall %v",
			c.DelayProb, c.StallProb)
	}
	if c.MaxDelay < 0 || c.MaxStall < 0 {
		return fmt.Errorf("msgpass: chaos durations must be >= 0, got delay %v stall %v",
			c.MaxDelay, c.MaxStall)
	}
	for _, r := range c.Ranks {
		if r < 0 || r >= size {
			return fmt.Errorf("msgpass: chaos rank %d outside world of %d", r, size)
		}
	}
	return nil
}

// applies reports whether injection is armed for rank r.
func (c *Chaos) applies(r int) bool {
	if c.Ranks == nil {
		return true
	}
	for _, cr := range c.Ranks {
		if cr == r {
			return true
		}
	}
	return false
}

// chaosRNG builds rank r's injection PRNG. The mixing constants just
// spread nearby (seed, rank) pairs; any fixed odd multipliers would do.
func chaosRNG(seed int64, r int) *rand.Rand {
	return rand.New(rand.NewSource(seed*1_000_003 + int64(r)*7919 + 1))
}

// chaosDelay performs one injection draw: with probability prob, sleep a
// duration in (0, max]. The draw is consumed even when the sleep is
// skipped only if prob > 0, so disabling one knob does not shift the other
// knob's sequence.
func (c *Comm) chaosDelay(prob float64, max time.Duration) error {
	if c.rng == nil || prob <= 0 || max <= 0 {
		return nil
	}
	if c.rng.Float64() >= prob {
		return nil
	}
	d := time.Duration(c.rng.Int63n(int64(max))) + 1
	return c.pause(d)
}

// pause is an interruptible sleep: it returns early (with the abort or
// failure error) when the world aborts or this rank is failed, so injected
// latency never delays cancellation.
func (c *Comm) pause(d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-c.world.abort:
		return c.world.abortError(c.rank, "chaos sleep", c.rank, 0)
	case <-c.failed:
		return &RankFailedError{Rank: c.rank}
	}
}
