package msgpass

import (
	"fmt"
	"testing"
)

// matchScript is a decoded fuzz input: a set of sender rank scripts and the
// receiver's recv order over them.
type matchScript struct {
	senders [][]scriptMsg // senders[i] = rank i+1's sends, in send order
	recvs   [][2]int      // (sender index, tag) in receive order
}

type scriptMsg struct {
	tag int
	val int
}

// decodeMatchScript turns fuzz bytes into a deadlock-free matching script:
// up to 4 senders with up to 24 messages total over a small tag space, and
// a receive order that is a byte-driven permutation of the send multiset —
// so every Recv has a matching Send and the run always terminates.
func decodeMatchScript(data []byte) *matchScript {
	if len(data) < 2 {
		return nil
	}
	nSenders := 1 + int(data[0])%4
	nMsgs := 1 + int(data[1])%24
	data = data[2:]
	s := &matchScript{senders: make([][]scriptMsg, nSenders)}
	val := 0
	for i := 0; i < nMsgs; i++ {
		var b byte
		if i < len(data) {
			b = data[i]
		}
		sender := int(b>>4) % nSenders
		tag := int(b) % 4
		s.senders[sender] = append(s.senders[sender], scriptMsg{tag: tag, val: val})
		s.recvs = append(s.recvs, [2]int{sender, tag})
		val++
	}
	// Permute the receive order with the remaining bytes (Fisher-Yates with
	// byte-driven choices); any order is legal because matching is by
	// (source, tag), not arrival.
	perm := data
	if nMsgs < len(perm) {
		perm = perm[nMsgs:]
	}
	for i := len(s.recvs) - 1; i > 0; i-- {
		var b byte
		if i < len(perm) {
			b = perm[i]
		}
		j := int(b) % (i + 1)
		s.recvs[i], s.recvs[j] = s.recvs[j], s.recvs[i]
	}
	return s
}

// refMatch is the sequential reference matcher: for each requested
// (sender, tag) it delivers the first not-yet-consumed message from that
// sender with that tag, in send order — the semantics Recv promises.
func refMatch(s *matchScript) []int {
	consumed := make([][]bool, len(s.senders))
	for i := range consumed {
		consumed[i] = make([]bool, len(s.senders[i]))
	}
	out := make([]int, 0, len(s.recvs))
	for _, rq := range s.recvs {
		sender, tag := rq[0], rq[1]
		for i, m := range s.senders[sender] {
			if !consumed[sender][i] && m.tag == tag {
				consumed[sender][i] = true
				out = append(out, m.val)
				break
			}
		}
	}
	return out
}

// runMatchScript plays the script through a real world: rank 0 receives,
// ranks 1..n replay their send scripts. The inbox is sized to hold every
// message so sender scheduling can never block, leaving the receive-side
// matching as the only degree of freedom under test.
func runMatchScript(s *matchScript) ([]int, error) {
	total := 0
	for _, msgs := range s.senders {
		total += len(msgs)
	}
	w, err := NewWorld(len(s.senders)+1, WithCapacity(total+1))
	if err != nil {
		return nil, err
	}
	got := make([]int, 0, len(s.recvs))
	err = w.Run(func(c *Comm) error {
		if c.Rank() > 0 {
			for _, m := range s.senders[c.Rank()-1] {
				if err := Send(c, 0, m.tag, m.val); err != nil {
					return err
				}
			}
			return nil
		}
		for _, rq := range s.recvs {
			v, err := Recv[int](c, rq[0]+1, rq[1])
			if err != nil {
				return err
			}
			got = append(got, v)
		}
		return nil
	})
	return got, err
}

// TestSendRecvMatchingDifferential replays fixed interleavings (the fuzz
// seed corpus) against the sequential reference matcher — the deterministic
// anchor for FuzzSendRecvMatching.
func TestSendRecvMatchingDifferential(t *testing.T) {
	for i, seed := range matchSeeds() {
		s := decodeMatchScript(seed)
		if s == nil {
			t.Fatalf("seed %d too short", i)
		}
		want := refMatch(s)
		got, err := runMatchScript(s)
		if err != nil {
			t.Fatalf("seed %d: %v", i, err)
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("seed %d: delivered %v, reference %v", i, got, want)
		}
	}
}

func matchSeeds() [][]byte {
	return [][]byte{
		{0, 0, 0},
		{1, 7, 0x00, 0x11, 0x22, 0x33, 0x10, 0x21, 0x32, 9, 4, 2},
		{3, 23, 0xff, 0x80, 0x41, 0x02, 0xc3, 0x84, 0x45, 0x06, 0xc7, 0x88,
			0x49, 0x0a, 0xcb, 0x8c, 0x4d, 0x0e, 0xcf, 0x90, 0x51, 0x12, 0xd3,
			0x94, 0x55, 7, 31, 1, 250, 13},
		{2, 15, 0x33, 0x33, 0x33, 0x12, 0x12, 0x12, 0x70, 0x70, 0x70, 0x55,
			0x55, 0x55, 0x01, 0x01, 0x01, 200, 100, 50, 25, 12, 6, 3},
	}
}

// FuzzSendRecvMatching drives random (source, tag) send interleavings and
// receive orders through the runtime and checks every delivery against the
// sequential reference matcher.
func FuzzSendRecvMatching(f *testing.F) {
	for _, seed := range matchSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s := decodeMatchScript(data)
		if s == nil {
			return
		}
		want := refMatch(s)
		got, err := runMatchScript(s)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("delivered %d messages, reference %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("delivery %d: got %d, reference %d (script %+v)", i, got[i], want[i], s)
			}
		}
	})
}
