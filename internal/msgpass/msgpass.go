// Package msgpass is an MPI-style message-passing runtime over goroutines:
// a World of rank-addressed Comms with tagged point-to-point Send/Recv and
// tree-based collectives (Barrier, Bcast, Reduce, Allreduce, Scatter,
// Gather). It is the distributed-memory counterpart of internal/pthread —
// where the shared-memory labs synchronize threads over one address space,
// msgpass ranks share nothing and communicate only by messages, the model
// the cited distributed-computing curricula (Tadonki's MPI module, Shafi
// et al.'s MPJ send/recv teaching API) build their Life-style workloads on.
//
// Semantics follow MPI where a classroom-scale runtime can afford to:
//
//   - Point-to-point messages match by exact (source, tag) and are
//     non-overtaking: two messages from the same sender with the same tag
//     are received in send order.
//   - Each rank's inbox is a buffered channel of configurable capacity.
//     Capacity > 0 gives eager sends (Send returns once the message is
//     buffered); capacity 0 gives rendezvous sends (Send blocks until the
//     receiver is actively draining its inbox) — both semantics are
//     testable, and symmetric exchanges that are safe under eager buffering
//     deadlock under rendezvous exactly as they would under MPI_Ssend.
//   - Collectives must be called by every rank of the world in the same
//     order. They are built on the point-to-point layer in a reserved
//     negative tag space, combining fan-in-barrierFanIn trees — the same
//     discipline as internal/pthread.Barrier's combining tree, expressed
//     with messages instead of shared counters.
//
// Parallel programs fail in ways sequential ones cannot, so the runtime
// carries a fault layer rather than documenting its hangs: every blocking
// operation publishes a wait-set entry and listens for world-wide abort
// and per-rank failure signals. On top of that sit a seeded Chaos
// transport hook (WithChaos: bounded delivery delays and rank stalls), a
// deadlock watchdog (WithWatchdog: wait-cycle detection returning a
// structured DeadlockError), receive deadlines (RecvTimeout/RecvDeadline),
// simulated rank death (World.Fail), and context cancellation (RunCtx) —
// each hang the runtime used to be capable of is now a reported error.
//
// Every Comm keeps per-rank traffic counters (messages, bytes, collective
// calls) so experiments can weigh communication against computation.
package msgpass

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"time"

	"cs31/internal/obs"
	"cs31/internal/pthread"
)

// DefaultCapacity is the per-rank inbox depth a World gets when no explicit
// capacity is configured: deep enough that the halo-exchange and collective
// patterns in this repo run eagerly, small enough that backpressure is
// reachable in tests.
const DefaultCapacity = 16

// envelope is one in-flight message.
type envelope struct {
	source  int
	tag     int
	payload any
	bytes   int64
}

// World is a fixed set of ranks that can message each other — the
// MPI_COMM_WORLD of a run. Create one with NewWorld, then either drive all
// ranks with Run or hand individual Comms to your own goroutines (exactly
// one goroutine may use a given Comm at a time).
//
// A World aborts at most once — by watchdog-detected deadlock or by a
// canceled RunCtx context — and an aborted World stays dead: every
// subsequent blocking operation returns the abort cause.
type World struct {
	size     int
	capacity int
	comms    []*Comm
	chaos    *Chaos
	watchdog time.Duration

	abort     chan struct{} // closed exactly once by abortWith
	abortOnce sync.Once
	abortErr  atomic.Pointer[abortCause]
	running   atomic.Int64 // rank goroutines currently inside Run

	// trace and the pre-registered name handles below are set once in
	// NewWorld (WithTrace) and read-only afterwards; a nil trace leaves
	// every Comm's lane nil, making the recording path a nil check.
	trace *obs.Trace
	tn    traceNames
}

// traceNames is the world's pre-registered event-name table: handles
// are resolved at NewWorld so the messaging hot paths never touch a
// string. Send/recv events carry (peer, tag) args; a blocking or
// chaos-delayed operation shows as a long X span on its rank's lane.
type traceNames struct {
	send, recv                                         obs.Name
	barrier, bcast, reduce, allreduce, scatter, gather obs.Name
}

// abortCause boxes the abort error for atomic publication.
type abortCause struct{ err error }

// Option configures a World.
type Option func(*worldConfig)

type worldConfig struct {
	capacity int
	hasCap   bool
	chaos    *Chaos
	watchdog time.Duration
	trace    *obs.Trace
}

// WithTrace records every rank's message traffic on an obs timeline:
// one lane per rank ("rank 0", "rank 1", ...), an X span per completed
// send/recv tagged with (peer, tag), and a B/E span around each
// collective. Chaos delays and inbox backpressure surface as long
// spans. A nil trace is the default (no recording).
func WithTrace(t *obs.Trace) Option {
	return func(c *worldConfig) { c.trace = t }
}

// WithCapacity sets the per-rank inbox capacity. Zero selects rendezvous
// sends: Send blocks until the destination rank pulls the message in Recv.
func WithCapacity(n int) Option {
	return func(c *worldConfig) {
		c.capacity = n
		c.hasCap = true
	}
}

// NewWorld creates a world of size ranks.
func NewWorld(size int, opts ...Option) (*World, error) {
	if size < 1 {
		return nil, fmt.Errorf("msgpass: world size %d invalid", size)
	}
	cfg := worldConfig{capacity: DefaultCapacity}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.hasCap && cfg.capacity < 0 {
		return nil, fmt.Errorf("msgpass: inbox capacity %d invalid", cfg.capacity)
	}
	if cfg.watchdog < 0 {
		return nil, fmt.Errorf("msgpass: watchdog timeout %v invalid", cfg.watchdog)
	}
	if cfg.chaos != nil {
		if err := cfg.chaos.validate(size); err != nil {
			return nil, err
		}
	}
	w := &World{
		size:     size,
		capacity: cfg.capacity,
		chaos:    cfg.chaos,
		watchdog: cfg.watchdog,
		abort:    make(chan struct{}),
		trace:    cfg.trace,
	}
	if t := cfg.trace; t != nil {
		w.tn = traceNames{
			send:      t.Name("send", "peer", "tag"),
			recv:      t.Name("recv", "peer", "tag"),
			barrier:   t.Name("barrier"),
			bcast:     t.Name("bcast"),
			reduce:    t.Name("reduce"),
			allreduce: t.Name("allreduce"),
			scatter:   t.Name("scatter"),
			gather:    t.Name("gather"),
		}
	}
	w.comms = make([]*Comm, size)
	for r := 0; r < size; r++ {
		c := &Comm{
			world:  w,
			rank:   r,
			inbox:  make(chan envelope, cfg.capacity),
			failed: make(chan struct{}),
		}
		if cfg.trace != nil {
			c.lane = cfg.trace.Lane(fmt.Sprintf("rank %d", r))
		}
		if cfg.chaos != nil && cfg.chaos.applies(r) &&
			(cfg.chaos.DelayProb > 0 || cfg.chaos.StallProb > 0) {
			c.rng = chaosRNG(cfg.chaos.Seed, r)
		}
		w.comms[r] = c
	}
	return w, nil
}

// Size reports the number of ranks.
func (w *World) Size() int { return w.size }

// Comm returns rank r's communicator. At most one goroutine may use it at a
// time (MPI's one-process-per-rank discipline).
func (w *World) Comm(r int) (*Comm, error) {
	if r < 0 || r >= w.size {
		return nil, fmt.Errorf("msgpass: rank %d outside world of %d", r, w.size)
	}
	return w.comms[r], nil
}

// abortWith publishes the world's terminal error and releases every
// blocked operation. First cause wins; later calls are no-ops.
func (w *World) abortWith(err error) {
	w.abortOnce.Do(func() {
		w.abortErr.Store(&abortCause{err: err})
		close(w.abort)
	})
}

// AbortCause returns the error the world aborted with (deadlock, context
// cancellation), or nil while it is healthy.
func (w *World) AbortCause() error {
	if c := w.abortErr.Load(); c != nil {
		return c.err
	}
	return nil
}

// abortError renders the abort cause as one rank's operation error,
// wrapping the cause so errors.Is/As see through to the DeadlockError or
// the context error.
func (w *World) abortError(rank int, op string, peer, tag int) error {
	cause := w.AbortCause()
	if cause == nil {
		cause = errors.New("msgpass: world aborted")
	}
	return fmt.Errorf("msgpass: rank %d %s (peer %d, tag %d) aborted: %w", rank, op, peer, tag, cause)
}

// Fail simulates rank r's death. The rank's own operations (including any
// it is currently blocked in) return RankFailedError, sends to it error
// out promptly, and receives from it error once nothing it sent before
// dying remains deliverable — so collectives spanning a dead rank fail
// fast instead of hanging. Failing a rank twice is a no-op.
func (w *World) Fail(r int) error {
	if r < 0 || r >= w.size {
		return fmt.Errorf("msgpass: fail: rank %d outside world of %d", r, w.size)
	}
	c := w.comms[r]
	c.failOnce.Do(func() { close(c.failed) })
	return nil
}

// Run spawns one thread per rank, invokes fn with that rank's Comm, joins
// them all, and returns the lowest-rank error (so the outcome does not
// depend on scheduling).
func (w *World) Run(fn func(c *Comm) error) error {
	return w.RunCtx(context.Background(), fn)
}

// RunCtx is Run under a context: when ctx is canceled the world aborts,
// every blocked rank returns promptly with an error wrapping ctx.Err(),
// and RunCtx still joins every rank thread before returning — a canceled
// run leaves zero live rank goroutines behind. With WithWatchdog armed,
// the deadlock monitor runs for the duration of the call.
func (w *World) RunCtx(ctx context.Context, fn func(c *Comm) error) error {
	if fn == nil {
		return fmt.Errorf("msgpass: nil rank function")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	joined := make(chan struct{})
	defer close(joined)
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				w.abortWith(ctx.Err())
			case <-joined:
			}
		}()
	}
	if w.watchdog > 0 {
		go w.watchdogLoop(joined)
	}
	threads := make([]*pthread.Thread, w.size)
	for r := 0; r < w.size; r++ {
		c := w.comms[r]
		threads[r] = pthread.Create(func() interface{} {
			w.running.Add(1)
			defer w.running.Add(-1)
			defer c.done.Store(true)
			return fn(c)
		})
	}
	var firstErr error
	for r, t := range threads {
		v, err := t.Join()
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("msgpass: rank %d: %w", r, err)
		}
		if e, ok := v.(error); ok && e != nil && firstErr == nil {
			firstErr = fmt.Errorf("msgpass: rank %d: %w", r, e)
		}
	}
	return firstErr
}

// CommStats is one rank's traffic counters.
type CommStats struct {
	Rank        int
	Sends       int64 // point-to-point messages sent (collective traffic included)
	Recvs       int64 // point-to-point messages received
	BytesSent   int64
	BytesRecvd  int64
	Collectives int64 // collective calls entered on this rank
}

// WorldStats aggregates every rank's counters.
type WorldStats struct {
	PerRank     []CommStats
	Sends       int64
	BytesSent   int64
	Collectives int64
	Running     int64 // rank goroutines currently live inside Run/RunCtx
}

// Stats snapshots every rank's counters. Safe to call while ranks run.
func (w *World) Stats() WorldStats {
	ws := WorldStats{PerRank: make([]CommStats, w.size), Running: w.running.Load()}
	for r, c := range w.comms {
		s := c.Stats()
		ws.PerRank[r] = s
		ws.Sends += s.Sends
		ws.BytesSent += s.BytesSent
		ws.Collectives += s.Collectives
	}
	return ws
}

// Wait-state kinds published for the watchdog. Timed receives publish
// waitRecvTimed, which the watchdog ignores: a wait with a deadline
// resolves itself and must not be reported as a deadlock.
const (
	waitNone int32 = iota
	waitRecv
	waitSend
	waitRecvTimed
)

// Comm is one rank's endpoint: its identity in the world, its inbox, and
// the pending queue of messages that arrived before anyone asked for them.
type Comm struct {
	world *World
	rank  int
	inbox chan envelope

	// failed is closed by World.Fail; every blocking select listens on its
	// own and its peer's channel so rank death releases waiters promptly.
	failed   chan struct{}
	failOnce sync.Once
	done     atomic.Bool // fn returned (set by Run's wrapper)

	// rng drives this rank's chaos injection (nil when chaos is off or
	// does not apply to this rank). Only the rank's goroutine touches it.
	rng *rand.Rand

	// lane is this rank's trace timeline (nil when the world has no
	// trace — the disabled path is a nil check).
	lane *obs.Lane

	// pending holds arrived-but-unmatched envelopes in arrival order. Only
	// the rank's own goroutine touches it (Recv is single-consumer), so it
	// needs no lock.
	pending []envelope

	// Wait-state registry, a seqlock the watchdog samples without stopping
	// the rank: waitSeq is odd while the rank is blocked in an operation
	// and even while it runs; the payload fields are only meaningful when
	// two seq reads around them agree on an odd value. Any progress inside
	// a blocked operation (an envelope pended while waiting for another)
	// bumps the seq by 2, so "same odd seq across two samples" means the
	// wait made zero progress for a full watchdog period.
	waitSeq  atomic.Uint64
	waitKind atomic.Int32
	waitPeer atomic.Int32
	waitTag  atomic.Int64

	// collSeq numbers this rank's collective calls. Collectives are called
	// in the same order on every rank, so equal sequence numbers name the
	// same logical operation world-wide; the tag -seq keeps collective
	// traffic out of the non-negative user tag space.
	collSeq int64

	sends       atomic.Int64
	recvs       atomic.Int64
	bytesSent   atomic.Int64
	bytesRecvd  atomic.Int64
	collectives atomic.Int64
}

// Rank reports this communicator's rank.
func (c *Comm) Rank() int { return c.rank }

// TraceLane returns this rank's trace timeline, nil when the world was
// built without WithTrace. Callers layer their own spans (generation,
// halo exchange) onto the same lane the runtime's send/recv events use;
// nil-lane recording calls are no-ops.
func (c *Comm) TraceLane() *obs.Lane { return c.lane }

// Size reports the world size.
func (c *Comm) Size() int { return c.world.size }

// Failed reports whether this rank has been failed with World.Fail.
func (c *Comm) Failed() bool {
	select {
	case <-c.failed:
		return true
	default:
		return false
	}
}

// Stats snapshots this rank's counters.
func (c *Comm) Stats() CommStats {
	return CommStats{
		Rank:        c.rank,
		Sends:       c.sends.Load(),
		Recvs:       c.recvs.Load(),
		BytesSent:   c.bytesSent.Load(),
		BytesRecvd:  c.bytesRecvd.Load(),
		Collectives: c.collectives.Load(),
	}
}

// beginWait publishes a blocked state (seq goes odd).
func (c *Comm) beginWait(kind int32, peer, tag int) {
	c.waitKind.Store(kind)
	c.waitPeer.Store(int32(peer))
	c.waitTag.Store(int64(tag))
	c.waitSeq.Add(1)
}

// endWait returns the wait-state to running (seq goes even).
func (c *Comm) endWait() { c.waitSeq.Add(1) }

// stirWait records progress within a blocked operation (seq stays odd but
// changes value, so the watchdog never sees the wait as stable).
func (c *Comm) stirWait() { c.waitSeq.Add(2) }

// payloadBytes estimates a payload's wire size for the traffic counters:
// element bytes for slices and strings, shallow type size otherwise. The
// figure feeds analysis, not allocation, so a deterministic estimate beats
// a deep traversal.
func payloadBytes(v any) int64 {
	if v == nil {
		return 0
	}
	t := reflect.TypeOf(v)
	switch t.Kind() {
	case reflect.Slice:
		return int64(reflect.ValueOf(v).Len()) * int64(t.Elem().Size())
	case reflect.String:
		return int64(len(v.(string)))
	default:
		return int64(t.Size())
	}
}

// Send delivers payload to rank dest under tag. User tags must be
// non-negative (negative tags are the collectives' reserved space). With a
// buffered inbox the send is eager; with capacity 0 it blocks until dest
// drains it (rendezvous). Sending to yourself requires free inbox capacity
// — a rendezvous self-send deadlocks, exactly as in MPI, and is what the
// watchdog reports as a one-rank cycle.
func (c *Comm) Send(dest, tag int, payload any) error {
	if err := c.checkRank("send", dest); err != nil {
		return err
	}
	if tag < 0 {
		return fmt.Errorf("msgpass: rank %d send: tag %d is reserved (user tags are >= 0)", c.rank, tag)
	}
	return c.send(dest, tag, payload)
}

// send is the unchecked path shared with the collectives (which use the
// negative tag space Send rejects). When the world carries a trace, a
// completed send records an X span — entry to delivery, chaos delays
// and inbox backpressure included — tagged (peer, tag).
func (c *Comm) send(dest, tag int, payload any) error {
	if c.lane == nil {
		return c.sendMsg(dest, tag, payload)
	}
	t0 := time.Now()
	err := c.sendMsg(dest, tag, payload)
	if err == nil {
		c.lane.CompleteArgs(c.world.tn.send, t0, int64(dest), int64(tag))
	}
	return err
}

// sendMsg blocks abortably: a full inbox parks the sender in a select
// that also watches world abort and both ranks' failure channels,
// publishing a send wait-set entry for the watchdog while parked.
func (c *Comm) sendMsg(dest, tag int, payload any) error {
	if err := c.opEntry("send", dest, tag); err != nil {
		return err
	}
	dst := c.world.comms[dest]
	if dst.Failed() {
		return &RankFailedError{Rank: dest}
	}
	if c.world.chaos != nil {
		if err := c.chaosDelay(c.world.chaos.DelayProb, c.world.chaos.MaxDelay); err != nil {
			return err
		}
	}
	n := payloadBytes(payload)
	env := envelope{source: c.rank, tag: tag, payload: payload, bytes: n}
	select {
	case dst.inbox <- env:
	default:
		// Inbox full (or rendezvous with no receiver ready): park.
		c.beginWait(waitSend, dest, tag)
		err := c.sendBlocked(dst, env)
		c.endWait()
		if err != nil {
			return err
		}
	}
	c.sends.Add(1)
	c.bytesSent.Add(n)
	return nil
}

// sendBlocked is the parked half of send.
func (c *Comm) sendBlocked(dst *Comm, env envelope) error {
	select {
	case dst.inbox <- env:
		return nil
	case <-c.world.abort:
		return c.world.abortError(c.rank, "send", dst.rank, env.tag)
	case <-dst.failed:
		return &RankFailedError{Rank: dst.rank}
	case <-c.failed:
		return &RankFailedError{Rank: c.rank}
	}
}

// opEntry is the fast-path health check every operation starts with.
func (c *Comm) opEntry(op string, peer, tag int) error {
	select {
	case <-c.world.abort:
		return c.world.abortError(c.rank, op, peer, tag)
	default:
	}
	if c.Failed() {
		return &RankFailedError{Rank: c.rank}
	}
	return nil
}

// Recv blocks until a message from source with exactly tag arrives and
// returns its payload. Messages from other (source, tag) pairs that arrive
// in the meantime are queued and left for their own Recv calls; for a fixed
// pair, delivery order is send order.
func (c *Comm) Recv(source, tag int) (any, error) {
	if err := c.checkRecvArgs(source, tag); err != nil {
		return nil, err
	}
	return c.recvWait(source, tag, nil, 0)
}

// RecvTimeout is Recv with a budget: when no matching message arrives
// within timeout it returns a TimeoutError (errors.Is ErrTimeout) instead
// of blocking forever. A non-positive timeout is an already-expired
// deadline — the pending queue and anything already buffered are still
// drained, so it doubles as a poll.
func (c *Comm) RecvTimeout(source, tag int, timeout time.Duration) (any, error) {
	if err := c.checkRecvArgs(source, tag); err != nil {
		return nil, err
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	return c.recvWait(source, tag, t.C, timeout)
}

// RecvDeadline is RecvTimeout against an absolute deadline.
func (c *Comm) RecvDeadline(source, tag int, deadline time.Time) (any, error) {
	return c.RecvTimeout(source, tag, time.Until(deadline))
}

func (c *Comm) checkRecvArgs(source, tag int) error {
	if err := c.checkRank("recv", source); err != nil {
		return err
	}
	if tag < 0 {
		return fmt.Errorf("msgpass: rank %d recv: tag %d is reserved (user tags are >= 0)", c.rank, tag)
	}
	return nil
}

// recvWait wraps the matching loop shared by Recv, the timed variants,
// and the collectives; when the world carries a trace, a completed
// receive records an X span — entry to match, blocking and chaos
// stalls included — tagged (peer, tag).
func (c *Comm) recvWait(source, tag int, deadline <-chan time.Time, timeout time.Duration) (any, error) {
	if c.lane == nil {
		return c.recvMatch(source, tag, deadline, timeout)
	}
	t0 := time.Now()
	v, err := c.recvMatch(source, tag, deadline, timeout)
	if err == nil {
		c.lane.CompleteArgs(c.world.tn.recv, t0, int64(source), int64(tag))
	}
	return v, err
}

// recvMatch is the unchecked matching loop: scan pending in arrival
// order, then park on the inbox — queuing mismatches — until the wanted
// (source, tag) shows, the deadline fires, the source (or this rank) is
// failed, or the world aborts. timeout is only for error reporting;
// deadline carries the actual clock.
func (c *Comm) recvMatch(source, tag int, deadline <-chan time.Time, timeout time.Duration) (any, error) {
	if err := c.opEntry("recv", source, tag); err != nil {
		return nil, err
	}
	if c.world.chaos != nil {
		if err := c.chaosDelay(c.world.chaos.StallProb, c.world.chaos.MaxStall); err != nil {
			return nil, err
		}
	}
	for i, env := range c.pending {
		if env.source == source && env.tag == tag {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			return c.deliver(env), nil
		}
	}
	src := c.world.comms[source]
	kind := waitRecv
	if deadline != nil {
		kind = waitRecvTimed
	}
	c.beginWait(kind, source, tag)
	defer c.endWait()
	for {
		select {
		case env := <-c.inbox:
			if env.source == source && env.tag == tag {
				return c.deliver(env), nil
			}
			c.pending = append(c.pending, env)
			c.stirWait()
		case <-c.world.abort:
			return nil, c.world.abortError(c.rank, "recv", source, tag)
		case <-c.failed:
			return nil, &RankFailedError{Rank: c.rank}
		case <-src.failed:
			// The source is dead, but messages it sent before dying may
			// still sit in the inbox: drain without blocking, deliver a
			// match if one was in flight, and only then report the death.
			for {
				select {
				case env := <-c.inbox:
					if env.source == source && env.tag == tag {
						return c.deliver(env), nil
					}
					c.pending = append(c.pending, env)
					c.stirWait()
				default:
					return nil, &RankFailedError{Rank: source}
				}
			}
		case <-deadline:
			return nil, &TimeoutError{Rank: c.rank, Source: source, Tag: tag, Timeout: timeout}
		}
	}
}

// deliver books a matched envelope into the traffic counters.
func (c *Comm) deliver(env envelope) any {
	c.recvs.Add(1)
	c.bytesRecvd.Add(env.bytes)
	return env.payload
}

func (c *Comm) checkRank(op string, r int) error {
	if r < 0 || r >= c.world.size {
		return fmt.Errorf("msgpass: rank %d %s: peer rank %d outside world of %d", c.rank, op, r, c.world.size)
	}
	return nil
}

// Send delivers a typed payload — the generic front door over Comm.Send
// (methods cannot be generic, package functions can).
func Send[T any](c *Comm, dest, tag int, v T) error {
	return c.Send(dest, tag, v)
}

// Recv receives a typed payload, failing loudly when the arriving message's
// type does not match (a type mismatch is a program bug, not data).
func Recv[T any](c *Comm, source, tag int) (T, error) {
	v, err := c.Recv(source, tag)
	return typedPayload[T](c, source, tag, v, err)
}

// RecvTimeout is the typed form of Comm.RecvTimeout.
func RecvTimeout[T any](c *Comm, source, tag int, timeout time.Duration) (T, error) {
	v, err := c.RecvTimeout(source, tag, timeout)
	return typedPayload[T](c, source, tag, v, err)
}

func typedPayload[T any](c *Comm, source, tag int, v any, err error) (T, error) {
	if err != nil {
		var zero T
		return zero, err
	}
	tv, ok := v.(T)
	if !ok {
		var zero T
		return zero, fmt.Errorf("msgpass: rank %d recv from %d tag %d: payload is %T, want %T",
			c.rank, source, tag, v, zero)
	}
	return tv, nil
}
