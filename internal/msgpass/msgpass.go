// Package msgpass is an MPI-style message-passing runtime over goroutines:
// a World of rank-addressed Comms with tagged point-to-point Send/Recv and
// tree-based collectives (Barrier, Bcast, Reduce, Allreduce, Scatter,
// Gather). It is the distributed-memory counterpart of internal/pthread —
// where the shared-memory labs synchronize threads over one address space,
// msgpass ranks share nothing and communicate only by messages, the model
// the cited distributed-computing curricula (Tadonki's MPI module, Shafi
// et al.'s MPJ send/recv teaching API) build their Life-style workloads on.
//
// Semantics follow MPI where a classroom-scale runtime can afford to:
//
//   - Point-to-point messages match by exact (source, tag) and are
//     non-overtaking: two messages from the same sender with the same tag
//     are received in send order.
//   - Each rank's inbox is a buffered channel of configurable capacity.
//     Capacity > 0 gives eager sends (Send returns once the message is
//     buffered); capacity 0 gives rendezvous sends (Send blocks until the
//     receiver is actively draining its inbox) — both semantics are
//     testable, and symmetric exchanges that are safe under eager buffering
//     deadlock under rendezvous exactly as they would under MPI_Ssend.
//   - Collectives must be called by every rank of the world in the same
//     order. They are built on the point-to-point layer in a reserved
//     negative tag space, combining fan-in-barrierFanIn trees — the same
//     discipline as internal/pthread.Barrier's combining tree, expressed
//     with messages instead of shared counters.
//
// Every Comm keeps per-rank traffic counters (messages, bytes, collective
// calls) so experiments can weigh communication against computation.
package msgpass

import (
	"fmt"
	"reflect"
	"sync/atomic"

	"cs31/internal/pthread"
)

// DefaultCapacity is the per-rank inbox depth a World gets when no explicit
// capacity is configured: deep enough that the halo-exchange and collective
// patterns in this repo run eagerly, small enough that backpressure is
// reachable in tests.
const DefaultCapacity = 16

// envelope is one in-flight message.
type envelope struct {
	source  int
	tag     int
	payload any
	bytes   int64
}

// World is a fixed set of ranks that can message each other — the
// MPI_COMM_WORLD of a run. Create one with NewWorld, then either drive all
// ranks with Run or hand individual Comms to your own goroutines (exactly
// one goroutine may use a given Comm at a time).
type World struct {
	size     int
	capacity int
	comms    []*Comm
}

// Option configures a World.
type Option func(*worldConfig)

type worldConfig struct {
	capacity int
	hasCap   bool
}

// WithCapacity sets the per-rank inbox capacity. Zero selects rendezvous
// sends: Send blocks until the destination rank pulls the message in Recv.
func WithCapacity(n int) Option {
	return func(c *worldConfig) {
		c.capacity = n
		c.hasCap = true
	}
}

// NewWorld creates a world of size ranks.
func NewWorld(size int, opts ...Option) (*World, error) {
	if size < 1 {
		return nil, fmt.Errorf("msgpass: world size %d invalid", size)
	}
	cfg := worldConfig{capacity: DefaultCapacity}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.hasCap && cfg.capacity < 0 {
		return nil, fmt.Errorf("msgpass: inbox capacity %d invalid", cfg.capacity)
	}
	w := &World{size: size, capacity: cfg.capacity}
	w.comms = make([]*Comm, size)
	for r := 0; r < size; r++ {
		w.comms[r] = &Comm{
			world: w,
			rank:  r,
			inbox: make(chan envelope, cfg.capacity),
		}
	}
	return w, nil
}

// Size reports the number of ranks.
func (w *World) Size() int { return w.size }

// Comm returns rank r's communicator. At most one goroutine may use it at a
// time (MPI's one-process-per-rank discipline).
func (w *World) Comm(r int) (*Comm, error) {
	if r < 0 || r >= w.size {
		return nil, fmt.Errorf("msgpass: rank %d outside world of %d", r, w.size)
	}
	return w.comms[r], nil
}

// Run spawns one thread per rank, invokes fn with that rank's Comm, joins
// them all, and returns the lowest-rank error (so the outcome does not
// depend on scheduling).
func (w *World) Run(fn func(c *Comm) error) error {
	if fn == nil {
		return fmt.Errorf("msgpass: nil rank function")
	}
	threads := make([]*pthread.Thread, w.size)
	for r := 0; r < w.size; r++ {
		c := w.comms[r]
		threads[r] = pthread.Create(func() interface{} {
			return fn(c)
		})
	}
	var firstErr error
	for r, t := range threads {
		v, err := t.Join()
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("msgpass: rank %d: %w", r, err)
		}
		if e, ok := v.(error); ok && e != nil && firstErr == nil {
			firstErr = fmt.Errorf("msgpass: rank %d: %w", r, e)
		}
	}
	return firstErr
}

// CommStats is one rank's traffic counters.
type CommStats struct {
	Rank        int
	Sends       int64 // point-to-point messages sent (collective traffic included)
	Recvs       int64 // point-to-point messages received
	BytesSent   int64
	BytesRecvd  int64
	Collectives int64 // collective calls entered on this rank
}

// WorldStats aggregates every rank's counters.
type WorldStats struct {
	PerRank     []CommStats
	Sends       int64
	BytesSent   int64
	Collectives int64
}

// Stats snapshots every rank's counters. Safe to call while ranks run.
func (w *World) Stats() WorldStats {
	ws := WorldStats{PerRank: make([]CommStats, w.size)}
	for r, c := range w.comms {
		s := c.Stats()
		ws.PerRank[r] = s
		ws.Sends += s.Sends
		ws.BytesSent += s.BytesSent
		ws.Collectives += s.Collectives
	}
	return ws
}

// Comm is one rank's endpoint: its identity in the world, its inbox, and
// the pending queue of messages that arrived before anyone asked for them.
type Comm struct {
	world *World
	rank  int
	inbox chan envelope

	// pending holds arrived-but-unmatched envelopes in arrival order. Only
	// the rank's own goroutine touches it (Recv is single-consumer), so it
	// needs no lock.
	pending []envelope

	// collSeq numbers this rank's collective calls. Collectives are called
	// in the same order on every rank, so equal sequence numbers name the
	// same logical operation world-wide; the tag -seq keeps collective
	// traffic out of the non-negative user tag space.
	collSeq int64

	sends       atomic.Int64
	recvs       atomic.Int64
	bytesSent   atomic.Int64
	bytesRecvd  atomic.Int64
	collectives atomic.Int64
}

// Rank reports this communicator's rank.
func (c *Comm) Rank() int { return c.rank }

// Size reports the world size.
func (c *Comm) Size() int { return c.world.size }

// Stats snapshots this rank's counters.
func (c *Comm) Stats() CommStats {
	return CommStats{
		Rank:        c.rank,
		Sends:       c.sends.Load(),
		Recvs:       c.recvs.Load(),
		BytesSent:   c.bytesSent.Load(),
		BytesRecvd:  c.bytesRecvd.Load(),
		Collectives: c.collectives.Load(),
	}
}

// payloadBytes estimates a payload's wire size for the traffic counters:
// element bytes for slices and strings, shallow type size otherwise. The
// figure feeds analysis, not allocation, so a deterministic estimate beats
// a deep traversal.
func payloadBytes(v any) int64 {
	if v == nil {
		return 0
	}
	t := reflect.TypeOf(v)
	switch t.Kind() {
	case reflect.Slice:
		return int64(reflect.ValueOf(v).Len()) * int64(t.Elem().Size())
	case reflect.String:
		return int64(len(v.(string)))
	default:
		return int64(t.Size())
	}
}

// Send delivers payload to rank dest under tag. User tags must be
// non-negative (negative tags are the collectives' reserved space). With a
// buffered inbox the send is eager; with capacity 0 it blocks until dest
// drains it (rendezvous). Sending to yourself requires free inbox capacity
// — a rendezvous self-send deadlocks, exactly as in MPI.
func (c *Comm) Send(dest, tag int, payload any) error {
	if err := c.checkRank("send", dest); err != nil {
		return err
	}
	if tag < 0 {
		return fmt.Errorf("msgpass: rank %d send: tag %d is reserved (user tags are >= 0)", c.rank, tag)
	}
	c.send(dest, tag, payload)
	return nil
}

// send is the unchecked path shared with the collectives (which use the
// negative tag space Send rejects).
func (c *Comm) send(dest, tag int, payload any) {
	n := payloadBytes(payload)
	c.world.comms[dest].inbox <- envelope{source: c.rank, tag: tag, payload: payload, bytes: n}
	c.sends.Add(1)
	c.bytesSent.Add(n)
}

// Recv blocks until a message from source with exactly tag arrives and
// returns its payload. Messages from other (source, tag) pairs that arrive
// in the meantime are queued and left for their own Recv calls; for a fixed
// pair, delivery order is send order.
func (c *Comm) Recv(source, tag int) (any, error) {
	if err := c.checkRank("recv", source); err != nil {
		return nil, err
	}
	if tag < 0 {
		return nil, fmt.Errorf("msgpass: rank %d recv: tag %d is reserved (user tags are >= 0)", c.rank, tag)
	}
	return c.recv(source, tag), nil
}

// recv is the unchecked matching loop: scan pending in arrival order, then
// pull the inbox, queuing mismatches, until the wanted (source, tag) shows.
func (c *Comm) recv(source, tag int) any {
	for i, env := range c.pending {
		if env.source == source && env.tag == tag {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			c.recvs.Add(1)
			c.bytesRecvd.Add(env.bytes)
			return env.payload
		}
	}
	for {
		env := <-c.inbox
		if env.source == source && env.tag == tag {
			c.recvs.Add(1)
			c.bytesRecvd.Add(env.bytes)
			return env.payload
		}
		c.pending = append(c.pending, env)
	}
}

func (c *Comm) checkRank(op string, r int) error {
	if r < 0 || r >= c.world.size {
		return fmt.Errorf("msgpass: rank %d %s: peer rank %d outside world of %d", c.rank, op, r, c.world.size)
	}
	return nil
}

// Send delivers a typed payload — the generic front door over Comm.Send
// (methods cannot be generic, package functions can).
func Send[T any](c *Comm, dest, tag int, v T) error {
	return c.Send(dest, tag, v)
}

// Recv receives a typed payload, failing loudly when the arriving message's
// type does not match (a type mismatch is a program bug, not data).
func Recv[T any](c *Comm, source, tag int) (T, error) {
	v, err := c.Recv(source, tag)
	if err != nil {
		var zero T
		return zero, err
	}
	tv, ok := v.(T)
	if !ok {
		var zero T
		return zero, fmt.Errorf("msgpass: rank %d recv from %d tag %d: payload is %T, want %T",
			c.rank, source, tag, v, zero)
	}
	return tv, nil
}
