package msgpass

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// worldSizes covers the tree's interesting shapes: single rank, under one
// leaf (<= fan-in), exactly one full level, multi-level, and the surplus
// shapes the barrier differentials use (16, 33).
var worldSizes = []int{1, 2, 3, 4, 5, 8, 16, 33}

func TestBarrierPhases(t *testing.T) {
	for _, size := range worldSizes {
		size := size
		t.Run(fmt.Sprintf("size-%d", size), func(t *testing.T) {
			w, err := NewWorld(size)
			if err != nil {
				t.Fatal(err)
			}
			const rounds = 5
			var entered atomic.Int64
			err = w.Run(func(c *Comm) error {
				for r := 0; r < rounds; r++ {
					entered.Add(1)
					if err := c.Barrier(); err != nil {
						return err
					}
					// Everyone passed the barrier, so every rank's round-r
					// increment must be visible.
					if got := entered.Load(); got < int64((r+1)*size) {
						return fmt.Errorf("rank %d round %d: %d arrivals visible, want >= %d",
							c.Rank(), r, got, (r+1)*size)
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := entered.Load(); got != int64(rounds*size) {
				t.Errorf("entered %d, want %d", got, rounds*size)
			}
		})
	}
}

func TestBcastFromEveryRoot(t *testing.T) {
	for _, size := range []int{1, 3, 5, 8} {
		for root := 0; root < size; root++ {
			size, root := size, root
			t.Run(fmt.Sprintf("size-%d/root-%d", size, root), func(t *testing.T) {
				w, err := NewWorld(size)
				if err != nil {
					t.Fatal(err)
				}
				want := fmt.Sprintf("payload-from-%d", root)
				err = w.Run(func(c *Comm) error {
					v := ""
					if c.Rank() == root {
						v = want
					}
					got, err := Bcast(c, root, v)
					if err != nil {
						return err
					}
					if got != want {
						return fmt.Errorf("rank %d got %q, want %q", c.Rank(), got, want)
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestReduceDifferential folds rank-dependent values through the message
// tree and checks the root's result against the sequential reference sum —
// for every world size and every root.
func TestReduceDifferential(t *testing.T) {
	add := func(a, b int64) int64 { return a + b }
	for _, size := range worldSizes {
		size := size
		t.Run(fmt.Sprintf("size-%d", size), func(t *testing.T) {
			for root := 0; root < size; root += 1 + size/4 {
				want := int64(0)
				for r := 0; r < size; r++ {
					want += int64(r*r + 1)
				}
				w, err := NewWorld(size)
				if err != nil {
					t.Fatal(err)
				}
				err = w.Run(func(c *Comm) error {
					got, err := Reduce(c, root, int64(c.Rank()*c.Rank()+1), add)
					if err != nil {
						return err
					}
					if c.Rank() == root && got != want {
						return fmt.Errorf("root %d reduced %d, want %d", root, got, want)
					}
					if c.Rank() != root && got != 0 {
						return fmt.Errorf("non-root rank %d got %d, want 0", c.Rank(), got)
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestAllreduceDifferential: every rank must see the same combined value,
// equal to the sequential reference, under both a sum and a max operator.
func TestAllreduceDifferential(t *testing.T) {
	for _, size := range worldSizes {
		size := size
		t.Run(fmt.Sprintf("size-%d", size), func(t *testing.T) {
			wantSum := int64(size) * int64(size+1) / 2
			wantMax := int64(size - 1)
			w, err := NewWorld(size)
			if err != nil {
				t.Fatal(err)
			}
			err = w.Run(func(c *Comm) error {
				sum, err := Allreduce(c, int64(c.Rank()+1), func(a, b int64) int64 { return a + b })
				if err != nil {
					return err
				}
				if sum != wantSum {
					return fmt.Errorf("rank %d allreduce sum %d, want %d", c.Rank(), sum, wantSum)
				}
				max, err := Allreduce(c, int64(c.Rank()), func(a, b int64) int64 {
					if a > b {
						return a
					}
					return b
				})
				if err != nil {
					return err
				}
				if max != wantMax {
					return fmt.Errorf("rank %d allreduce max %d, want %d", c.Rank(), max, wantMax)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestScatterGatherRoundTrip(t *testing.T) {
	for _, size := range worldSizes {
		size := size
		t.Run(fmt.Sprintf("size-%d", size), func(t *testing.T) {
			w, err := NewWorld(size)
			if err != nil {
				t.Fatal(err)
			}
			err = w.Run(func(c *Comm) error {
				var values []int
				if c.Rank() == 0 {
					values = make([]int, size)
					for i := range values {
						values[i] = 10 * i
					}
				}
				mine, err := Scatter(c, 0, values)
				if err != nil {
					return err
				}
				if mine != 10*c.Rank() {
					return fmt.Errorf("rank %d scattered %d, want %d", c.Rank(), mine, 10*c.Rank())
				}
				all, err := Gather(c, 0, mine+1)
				if err != nil {
					return err
				}
				if c.Rank() != 0 {
					if all != nil {
						return fmt.Errorf("non-root gather returned %v", all)
					}
					return nil
				}
				for i, v := range all {
					if v != 10*i+1 {
						return fmt.Errorf("gathered[%d] = %d, want %d", i, v, 10*i+1)
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCollectivesInterleaveWithUserTraffic: collectives in the reserved
// negative tag space must not swallow user messages in flight across them.
func TestCollectivesInterleaveWithUserTraffic(t *testing.T) {
	w, err := NewWorld(4, WithCapacity(16))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		// User messages posted before the collective storm...
		next := (c.Rank() + 1) % c.Size()
		prev := (c.Rank() + c.Size() - 1) % c.Size()
		if err := Send(c, next, 77, c.Rank()*1000); err != nil {
			return err
		}
		for round := 0; round < 3; round++ {
			if err := c.Barrier(); err != nil {
				return err
			}
			if _, err := Allreduce(c, 1, func(a, b int) int { return a + b }); err != nil {
				return err
			}
		}
		// ...must still be matchable afterwards.
		got, err := Recv[int](c, prev, 77)
		if err != nil {
			return err
		}
		if got != prev*1000 {
			return fmt.Errorf("rank %d got %d from %d, want %d", c.Rank(), got, prev, prev*1000)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectiveValidation(t *testing.T) {
	w, err := NewWorld(1)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		if _, err := Bcast(c, 3, 0); err == nil {
			return fmt.Errorf("bcast with out-of-range root accepted")
		}
		if _, err := Reduce(c, 0, 1, nil); err == nil {
			return fmt.Errorf("reduce with nil op accepted")
		}
		if _, err := Allreduce[int](c, 1, nil); err == nil {
			return fmt.Errorf("allreduce with nil op accepted")
		}
		if _, err := Scatter(c, 0, []int{1, 2}); err == nil {
			return fmt.Errorf("scatter with wrong value count accepted")
		}
		if _, err := Gather(c, -1, 0); err == nil {
			return fmt.Errorf("gather with bad root accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCollectiveCounters: one barrier + one allreduce per rank must show up
// as exactly two collective calls per rank.
func TestCollectiveCounters(t *testing.T) {
	w, err := NewWorld(5)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		if err := c.Barrier(); err != nil {
			return err
		}
		_, err := Allreduce(c, 1, func(a, b int) int { return a + b })
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	ws := w.Stats()
	for _, s := range ws.PerRank {
		if s.Collectives != 2 {
			t.Errorf("rank %d collective count %d, want 2", s.Rank, s.Collectives)
		}
	}
	if ws.Collectives != 10 {
		t.Errorf("world collective count %d, want 10", ws.Collectives)
	}
}
