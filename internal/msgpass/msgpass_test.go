package msgpass

import (
	"fmt"
	"sync/atomic"
	"testing"
)

func TestSendRecvBasic(t *testing.T) {
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		switch c.Rank() {
		case 0:
			if err := Send(c, 1, 7, []int{1, 2, 3}); err != nil {
				return err
			}
			got, err := Recv[string](c, 1, 9)
			if err != nil {
				return err
			}
			if got != "pong" {
				return fmt.Errorf("got %q, want pong", got)
			}
		case 1:
			got, err := Recv[[]int](c, 0, 7)
			if err != nil {
				return err
			}
			if len(got) != 3 || got[2] != 3 {
				return fmt.Errorf("got %v", got)
			}
			return Send(c, 0, 9, "pong")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTagMatchingOutOfOrder: the receiver asks for tags in the reverse of
// send order; matching by (source, tag) must hand each Recv its own
// message, queuing early arrivals.
func TestTagMatchingOutOfOrder(t *testing.T) {
	w, err := NewWorld(2, WithCapacity(8))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			for tag := 0; tag < 4; tag++ {
				if err := Send(c, 1, tag, 100+tag); err != nil {
					return err
				}
			}
			return nil
		}
		for tag := 3; tag >= 0; tag-- {
			got, err := Recv[int](c, 0, tag)
			if err != nil {
				return err
			}
			if got != 100+tag {
				return fmt.Errorf("tag %d: got %d, want %d", tag, got, 100+tag)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestNonOvertakingSameTag: messages on one (source, tag) pair arrive in
// send order even when other tags interleave.
func TestNonOvertakingSameTag(t *testing.T) {
	const n = 50
	w, err := NewWorld(2, WithCapacity(2*n))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				if err := Send(c, 1, 5, i); err != nil {
					return err
				}
				if err := Send(c, 1, 6, -i); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < n; i++ {
			got, err := Recv[int](c, 0, 5)
			if err != nil {
				return err
			}
			if got != i {
				return fmt.Errorf("tag 5 message %d arrived as %d", i, got)
			}
		}
		for i := 0; i < n; i++ {
			got, err := Recv[int](c, 0, 6)
			if err != nil {
				return err
			}
			if got != -i {
				return fmt.Errorf("tag 6 message %d arrived as %d", i, got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRendezvousSendWaitsForReceiver: with capacity 0 a Send can only
// complete once the destination is actively draining its inbox, so the
// receiver's entered-Recv flag must already be up when Send returns.
func TestRendezvousSendWaitsForReceiver(t *testing.T) {
	w, err := NewWorld(2, WithCapacity(0))
	if err != nil {
		t.Fatal(err)
	}
	var recvEntered atomic.Bool
	err = w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			if err := Send(c, 1, 0, 42); err != nil {
				return err
			}
			if !recvEntered.Load() {
				return fmt.Errorf("rendezvous Send returned before the receiver entered Recv")
			}
			return nil
		}
		recvEntered.Store(true)
		_, err := Recv[int](c, 0, 0)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestEagerSendDoesNotBlock: with buffered capacity a rank can send to
// itself and pick the message up afterwards — impossible under rendezvous.
func TestEagerSendDoesNotBlock(t *testing.T) {
	w, err := NewWorld(1, WithCapacity(1))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		if err := Send(c, 0, 3, "self"); err != nil {
			return err
		}
		got, err := Recv[string](c, 0, 3)
		if err != nil {
			return err
		}
		if got != "self" {
			return fmt.Errorf("got %q", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestStatsCounters pins the per-rank counters on a known exchange: rank 0
// sends 3 slices of 8 bytes, rank 1 replies with one 4-byte string.
func TestStatsCounters(t *testing.T) {
	w, err := NewWorld(2, WithCapacity(8))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < 3; i++ {
				if err := Send(c, 1, i, make([]int64, 1)); err != nil {
					return err
				}
			}
			_, err := Recv[string](c, 1, 0)
			return err
		}
		for i := 0; i < 3; i++ {
			if _, err := Recv[[]int64](c, 0, i); err != nil {
				return err
			}
		}
		return Send(c, 0, 0, "done")
	})
	if err != nil {
		t.Fatal(err)
	}
	ws := w.Stats()
	r0, r1 := ws.PerRank[0], ws.PerRank[1]
	if r0.Sends != 3 || r0.BytesSent != 24 || r0.Recvs != 1 || r0.BytesRecvd != 4 {
		t.Errorf("rank 0 stats %+v", r0)
	}
	if r1.Sends != 1 || r1.BytesSent != 4 || r1.Recvs != 3 || r1.BytesRecvd != 24 {
		t.Errorf("rank 1 stats %+v", r1)
	}
	if ws.Sends != 4 || ws.BytesSent != 28 {
		t.Errorf("world stats %+v", ws)
	}
}

func TestValidationErrors(t *testing.T) {
	if _, err := NewWorld(0); err == nil {
		t.Error("NewWorld(0) succeeded")
	}
	if _, err := NewWorld(4, WithCapacity(-1)); err == nil {
		t.Error("negative capacity accepted")
	}
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Comm(2); err == nil {
		t.Error("out-of-range Comm accepted")
	}
	if err := w.Run(nil); err == nil {
		t.Error("nil rank function accepted")
	}
	c, err := w.Comm(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send(5, 0, 1); err == nil {
		t.Error("send to rank 5 accepted")
	}
	if err := c.Send(1, -1, 1); err == nil {
		t.Error("negative user tag accepted on send")
	}
	if _, err := c.Recv(-1, 0); err == nil {
		t.Error("recv from rank -1 accepted")
	}
	if _, err := c.Recv(1, -2); err == nil {
		t.Error("negative user tag accepted on recv")
	}
}

// TestTypedRecvMismatch: a payload of the wrong type is an error, not a
// silent zero.
func TestTypedRecvMismatch(t *testing.T) {
	w, err := NewWorld(2, WithCapacity(1))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			return Send(c, 1, 0, "not an int")
		}
		_, err := Recv[int](c, 0, 0)
		if err == nil {
			return fmt.Errorf("type mismatch went undetected")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRunSurfacesLowestRankError: the error Run returns is rank-ordered,
// not scheduling-ordered.
func TestRunSurfacesLowestRankError(t *testing.T) {
	w, err := NewWorld(4)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		if c.Rank() >= 2 {
			return fmt.Errorf("boom on rank %d", c.Rank())
		}
		return nil
	})
	if err == nil || err.Error() != "msgpass: rank 2: boom on rank 2" {
		t.Errorf("got %v, want rank 2's error", err)
	}
}

func TestPayloadBytes(t *testing.T) {
	cases := []struct {
		v    any
		want int64
	}{
		{nil, 0},
		{[]uint8{1, 2, 3}, 3},
		{[]int64{1, 2}, 16},
		{"abcd", 4},
		{int64(0), 8},
		{struct{}{}, 0},
	}
	for _, c := range cases {
		if got := payloadBytes(c.v); got != c.want {
			t.Errorf("payloadBytes(%T) = %d, want %d", c.v, got, c.want)
		}
	}
}
