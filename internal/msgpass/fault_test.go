package msgpass

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// Tests for the fault layer: the deadlock watchdog, receive deadlines,
// rank failure, and context cancellation. Timing constants are chosen so
// the tests stay fast but never flaky: watchdog timeouts are tens of
// milliseconds (detection latency is 1-2 timeouts) and every "returns
// promptly" assertion allows a full second before declaring a hang.

const watchdogTick = 40 * time.Millisecond

// TestSelfSendDeadlockDetected is the positive form of the documented
// capacity-0 self-send deadlock: a rendezvous send to yourself can never
// complete (the rank cannot drain its own inbox while parked in the send),
// and the watchdog must report it as a one-rank cycle instead of the run
// hanging.
func TestSelfSendDeadlockDetected(t *testing.T) {
	w, err := NewWorld(1, WithCapacity(0), WithWatchdog(watchdogTick))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		return c.Send(0, 5, "never delivered")
	})
	if err == nil {
		t.Fatal("self rendezvous send completed; want deadlock")
	}
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("error %v is not a DeadlockError", err)
	}
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("error %v does not unwrap to ErrDeadlock", err)
	}
	if len(de.Cycle) != 1 {
		t.Fatalf("cycle %v: want exactly one rank", de.Cycle)
	}
	wait := de.Cycle[0]
	if wait.Rank != 0 || wait.Op != "send" || wait.Peer != 0 || wait.Tag != 5 {
		t.Errorf("cycle entry %+v: want rank 0 send(peer 0, tag 5)", wait)
	}
	if got := de.Ranks(); len(got) != 1 || got[0] != 0 {
		t.Errorf("Ranks() = %v, want [0]", got)
	}
}

// TestHeadToHeadDeadlockDetected: two ranks that both send first under
// rendezvous capacity are the classic MPI_Ssend deadlock. The watchdog must
// name both ranks in the cycle.
func TestHeadToHeadDeadlockDetected(t *testing.T) {
	w, err := NewWorld(2, WithCapacity(0), WithWatchdog(watchdogTick))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		peer := 1 - c.Rank()
		if err := c.Send(peer, 3, c.Rank()); err != nil {
			return err
		}
		_, err := c.Recv(peer, 3)
		return err
	})
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("error %v is not a DeadlockError", err)
	}
	if de.Orphaned {
		t.Errorf("head-to-head cycle reported as orphaned: %v", de)
	}
	ranks := de.Ranks()
	if len(ranks) != 2 {
		t.Fatalf("cycle %v: want both ranks", de.Cycle)
	}
	if (ranks[0] != 0 || ranks[1] != 1) && (ranks[0] != 1 || ranks[1] != 0) {
		t.Errorf("Ranks() = %v, want {0,1}", ranks)
	}
	for _, wt := range de.Cycle {
		if wt.Op != "send" {
			t.Errorf("cycle entry %+v: want a send wait", wt)
		}
	}
}

// TestOrphanedRecvDetected: a receive from a rank whose function has
// already returned (and that left nothing in flight) can never be
// satisfied. The watchdog reports it as an orphaned wait, not a cycle.
func TestOrphanedRecvDetected(t *testing.T) {
	w, err := NewWorld(2, WithWatchdog(watchdogTick))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		if c.Rank() == 1 {
			return nil // exit immediately, sending nothing
		}
		_, err := c.Recv(1, 0)
		return err
	})
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("error %v is not a DeadlockError", err)
	}
	if !de.Orphaned {
		t.Errorf("wait on an exited rank not marked orphaned: %v", de)
	}
	if len(de.Cycle) != 1 || de.Cycle[0].Rank != 0 || de.Cycle[0].Op != "recv" || de.Cycle[0].Peer != 1 {
		t.Errorf("orphan report %v: want rank 0 recv(peer 1)", de.Cycle)
	}
}

// TestWatchdogIgnoresSlowButLiveRanks: a rank that is merely slow (its
// peer delivers after several watchdog periods) must not be reported — the
// watchdog trips only on waits that provably cannot clear.
func TestWatchdogIgnoresSlowButLiveRanks(t *testing.T) {
	w, err := NewWorld(2, WithWatchdog(watchdogTick))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		if c.Rank() == 1 {
			time.Sleep(4 * watchdogTick)
			return c.Send(0, 0, "late")
		}
		got, err := c.Recv(1, 0)
		if err != nil {
			return err
		}
		if got != "late" {
			return fmt.Errorf("got %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("slow-but-live exchange reported as fault: %v", err)
	}
}

// TestWatchdogIgnoresTimedWaits: a RecvTimeout that is part of what would
// otherwise be a deadlock must resolve via its own timeout, not the
// watchdog — deadline-bearing waits are exempt from detection.
func TestWatchdogIgnoresTimedWaits(t *testing.T) {
	w, err := NewWorld(1, WithWatchdog(watchdogTick))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		_, err := c.RecvTimeout(0, 0, 4*watchdogTick)
		return err
	})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("got %v, want ErrTimeout (not a watchdog report)", err)
	}
	if errors.Is(err, ErrDeadlock) {
		t.Fatalf("timed wait reported as deadlock: %v", err)
	}
}

// TestRecvTimeoutExpires: no sender ever shows, so the timed receive must
// return a structured TimeoutError naming the wait.
func TestRecvTimeoutExpires(t *testing.T) {
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		if c.Rank() != 0 {
			return nil
		}
		start := time.Now()
		_, err := c.RecvTimeout(1, 9, 30*time.Millisecond)
		if elapsed := time.Since(start); elapsed > time.Second {
			return fmt.Errorf("timed receive took %v", elapsed)
		}
		return err
	})
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("error %v is not a TimeoutError", err)
	}
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("error %v does not unwrap to ErrTimeout", err)
	}
	if te.Rank != 0 || te.Source != 1 || te.Tag != 9 {
		t.Errorf("TimeoutError %+v: want rank 0 waiting on (1, 9)", te)
	}
}

// TestRecvTimeoutDeliversInTime: a message that arrives within the budget
// is delivered normally — the timeout path must not eat real traffic.
func TestRecvTimeoutDeliversInTime(t *testing.T) {
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		if c.Rank() == 1 {
			return Send(c, 0, 2, 42)
		}
		got, err := RecvTimeout[int](c, 1, 2, time.Second)
		if err != nil {
			return err
		}
		if got != 42 {
			return fmt.Errorf("got %d", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestExpiredDeadlineStillPolls: RecvDeadline with a deadline already in
// the past must still drain anything already buffered — the timed receive
// doubles as a poll.
func TestExpiredDeadlineStillPolls(t *testing.T) {
	w, err := NewWorld(2, WithCapacity(4))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		switch c.Rank() {
		case 1:
			return Send(c, 0, 0, "buffered")
		case 0:
			// Wait until the message is definitely buffered, then poll with
			// an expired deadline.
			got, err := c.Recv(1, 0)
			if err != nil {
				return err
			}
			if got != "buffered" {
				return fmt.Errorf("got %v", got)
			}
			// Now genuinely nothing buffered: the expired deadline must
			// report a timeout immediately rather than block.
			start := time.Now()
			_, err = c.RecvDeadline(1, 0, time.Now().Add(-time.Second))
			if time.Since(start) > time.Second {
				return fmt.Errorf("expired-deadline receive blocked")
			}
			if !errors.Is(err, ErrTimeout) {
				return fmt.Errorf("got %v, want ErrTimeout", err)
			}
			return nil
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFailUnblocksPendingRecv: a rank blocked receiving from a peer that is
// then failed must return promptly with RankFailedError naming the peer.
func TestFailUnblocksPendingRecv(t *testing.T) {
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		if c.Rank() == 1 {
			// Die without sending; rank 0 is (or soon will be) blocked on us.
			return w.Fail(1)
		}
		_, err := c.Recv(1, 0)
		return err
	})
	var rf *RankFailedError
	if !errors.As(err, &rf) {
		t.Fatalf("error %v is not a RankFailedError", err)
	}
	if !errors.Is(err, ErrRankFailed) {
		t.Fatalf("error %v does not unwrap to ErrRankFailed", err)
	}
	if rf.Rank != 1 {
		t.Errorf("RankFailedError names rank %d, want 1", rf.Rank)
	}
}

// TestRecvFromDeadRankDrainsInFlight: messages a rank sent before dying
// must still be delivered; only once nothing deliverable remains does the
// receive report the death.
func TestRecvFromDeadRankDrainsInFlight(t *testing.T) {
	w, err := NewWorld(2, WithCapacity(4))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		if c.Rank() == 1 {
			if err := Send(c, 0, 7, "last words"); err != nil {
				return err
			}
			return w.Fail(1)
		}
		// Ensure the failure has landed before the first receive, so the
		// drain path (not a lucky early delivery) is what is under test.
		for !w.comms[1].Failed() {
			time.Sleep(time.Millisecond)
		}
		got, err := c.Recv(1, 7)
		if err != nil {
			return fmt.Errorf("pre-death message lost: %w", err)
		}
		if got != "last words" {
			return fmt.Errorf("got %v", got)
		}
		_, err = c.Recv(1, 7)
		if !errors.Is(err, ErrRankFailed) {
			return fmt.Errorf("second recv got %v, want ErrRankFailed", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSendToDeadRankErrors: both the eager fast path and a parked
// rendezvous send must error out when the destination is failed.
func TestSendToDeadRankErrors(t *testing.T) {
	t.Run("eager", func(t *testing.T) {
		w, err := NewWorld(2, WithCapacity(4))
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Fail(1); err != nil {
			t.Fatal(err)
		}
		err = w.Run(func(c *Comm) error {
			if c.Rank() != 0 {
				return nil
			}
			return c.Send(1, 0, "into the void")
		})
		if !errors.Is(err, ErrRankFailed) {
			t.Fatalf("got %v, want ErrRankFailed", err)
		}
	})
	t.Run("parked", func(t *testing.T) {
		w, err := NewWorld(2, WithCapacity(0))
		if err != nil {
			t.Fatal(err)
		}
		err = w.Run(func(c *Comm) error {
			if c.Rank() == 1 {
				// Let rank 0 park in the rendezvous send, then die.
				time.Sleep(20 * time.Millisecond)
				return w.Fail(1)
			}
			return c.Send(1, 0, "never taken")
		})
		if !errors.Is(err, ErrRankFailed) {
			t.Fatalf("got %v, want ErrRankFailed", err)
		}
	})
}

// TestFailedRankOwnOpsError: after a rank is failed, its own operations
// (including one it is blocked inside) return RankFailedError naming it.
func TestFailedRankOwnOpsError(t *testing.T) {
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	errs := make([]error, 2)
	err = w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			time.Sleep(20 * time.Millisecond)
			return w.Fail(1)
		}
		_, e := c.Recv(0, 0) // blocks; released by our own failure
		errs[1] = e
		if _, e2 := c.Recv(0, 1); !errors.Is(e2, ErrRankFailed) {
			return fmt.Errorf("post-failure op got %v, want ErrRankFailed", e2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var rf *RankFailedError
	if !errors.As(errs[1], &rf) || rf.Rank != 1 {
		t.Fatalf("blocked op on failed rank got %v, want RankFailedError{Rank: 1}", errs[1])
	}
}

// TestCollectiveUnwindsOnRankFailure: a Barrier spanning a failed rank must
// release every rank with an error instead of hanging. The rank adjacent to
// the dead rank errors via the failure channel; ranks blocked on peers that
// then exited are released by the watchdog's orphan detection — the two
// halves of the fault machinery working together.
func TestCollectiveUnwindsOnRankFailure(t *testing.T) {
	const size = 8
	w, err := NewWorld(size, WithWatchdog(watchdogTick))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Fail(3); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- w.Run(func(c *Comm) error {
			if c.Rank() == 3 {
				return nil // the dead rank never enters the barrier
			}
			return c.Barrier()
		})
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrRankFailed) {
			t.Fatalf("got %v, want ErrRankFailed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("barrier spanning a failed rank hung")
	}
}

// TestRunCtxCancelUnblocksAllRanks: cancelling the context must abort the
// world, return an error wrapping the context error, and leave zero rank
// goroutines live inside the run.
func TestRunCtxCancelUnblocksAllRanks(t *testing.T) {
	const size = 8
	w, err := NewWorld(size)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- w.RunCtx(ctx, func(c *Comm) error {
			// Every rank waits on a message that never comes.
			_, err := c.Recv((c.Rank()+1)%size, 0)
			return err
		})
	}()
	time.Sleep(20 * time.Millisecond) // let the ranks park
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled RunCtx did not return")
	}
	if got := w.Stats().Running; got != 0 {
		t.Errorf("%d rank goroutines still live after canceled RunCtx", got)
	}
	if cause := w.AbortCause(); !errors.Is(cause, context.Canceled) {
		t.Errorf("AbortCause() = %v, want context.Canceled", cause)
	}
}

// TestRunCtxDeadlineExceeded: a context deadline behaves like cancellation
// and surfaces context.DeadlineExceeded through the rank errors.
func TestRunCtxDeadlineExceeded(t *testing.T) {
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = w.RunCtx(ctx, func(c *Comm) error {
		_, err := c.Recv(1-c.Rank(), 0)
		return err
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("deadline-bound run took %v to unwind", elapsed)
	}
}

// TestAbortedWorldStaysDead: after an abort every later operation fails
// with the original cause — a dead world cannot be quietly reused.
func TestAbortedWorldStaysDead(t *testing.T) {
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = w.RunCtx(ctx, func(c *Comm) error {
		_, err := c.Recv(1-c.Rank(), 0)
		return err
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("first run got %v, want context.Canceled", err)
	}
	err = w.Run(func(c *Comm) error {
		return c.Send(1-c.Rank(), 0, "ghost")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("reuse of aborted world got %v, want the original abort cause", err)
	}
}

// TestFailValidation: failing an out-of-range rank is an error, and failing
// a rank twice is a no-op.
func TestFailValidation(t *testing.T) {
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Fail(2); err == nil {
		t.Error("Fail(2) on a 2-rank world succeeded")
	}
	if err := w.Fail(-1); err == nil {
		t.Error("Fail(-1) succeeded")
	}
	if err := w.Fail(1); err != nil {
		t.Errorf("first Fail(1): %v", err)
	}
	if err := w.Fail(1); err != nil {
		t.Errorf("second Fail(1): %v", err)
	}
	if !w.comms[1].Failed() {
		t.Error("rank 1 not marked failed")
	}
}

// TestWatchdogValidation: a negative watchdog timeout is rejected at
// NewWorld time; zero means disabled and is fine.
func TestWatchdogValidation(t *testing.T) {
	if _, err := NewWorld(2, WithWatchdog(-time.Second)); err == nil {
		t.Error("negative watchdog timeout accepted")
	}
	if _, err := NewWorld(2, WithWatchdog(0)); err != nil {
		t.Errorf("zero (disabled) watchdog rejected: %v", err)
	}
}
