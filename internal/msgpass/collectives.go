package msgpass

import "fmt"

// collFanIn is the collective tree's arity, matching the combining-tree
// discipline of internal/pthread.Barrier: four children per node keeps the
// tree shallow (16 ranks -> 2 levels) while each parent drains at most four
// child messages per phase.
const collFanIn = 4

// Collectives must be called by every rank of the world in the same order
// (the MPI rule). Each call claims the rank's next collective sequence
// number; because the order agrees world-wide, equal sequence numbers name
// the same logical operation, and the negative tag -seq keeps collective
// traffic from ever matching a user Recv.
//
// Every collective is built on the abortable point-to-point layer, so a
// failed rank, a watchdog-detected deadlock, or a canceled RunCtx context
// unwinds the whole tree promptly: the rank adjacent to the fault errors
// first and its silence releases its neighbors through the same fault
// machinery, instead of the collective hanging.
func (c *Comm) collTag() int {
	c.collSeq++
	return -int(c.collSeq)
}

// vrank rotates ranks so the collective's root sits at virtual rank 0; the
// tree is then the standard fanIn-ary heap layout over virtual ranks.
func (c *Comm) vrank(root int) int {
	return (c.rank - root + c.world.size) % c.world.size
}

// unvrank maps a virtual rank back to a real one.
func (c *Comm) unvrank(v, root int) int {
	return (v + root) % c.world.size
}

// parentOf returns the real rank of v's tree parent, or -1 at the root.
func (c *Comm) parentOf(v, root int) int {
	if v == 0 {
		return -1
	}
	return c.unvrank((v-1)/collFanIn, root)
}

// childrenOf appends the real ranks of v's tree children in ascending
// virtual order — the order fan-in phases receive and fan-out phases send,
// which makes every collective's combination order deterministic.
func (c *Comm) childrenOf(v, root int) []int {
	var kids []int
	for i := 1; i <= collFanIn; i++ {
		cv := collFanIn*v + i
		if cv >= c.world.size {
			break
		}
		kids = append(kids, c.unvrank(cv, root))
	}
	return kids
}

func (c *Comm) checkRoot(op string, root int) error {
	if root < 0 || root >= c.world.size {
		return fmt.Errorf("msgpass: rank %d %s: root %d outside world of %d", c.rank, op, root, c.world.size)
	}
	return nil
}

// Barrier blocks until every rank of the world has entered it: a fan-in
// wave of messages climbs the tree to virtual rank 0, then a release wave
// fans back out — pthread.Barrier's combining tree, with the shared
// arrival counters replaced by child-to-parent messages.
func (c *Comm) Barrier() error {
	c.collectives.Add(1)
	c.lane.Begin(c.world.tn.barrier)
	defer c.lane.End(c.world.tn.barrier)
	tag := c.collTag()
	v := c.vrank(0)
	kids := c.childrenOf(v, 0)
	for _, k := range kids {
		if _, err := c.recvWait(k, tag, nil, 0); err != nil {
			return err
		}
	}
	if p := c.parentOf(v, 0); p >= 0 {
		if err := c.send(p, tag, struct{}{}); err != nil {
			return err
		}
		if _, err := c.recvWait(p, tag, nil, 0); err != nil {
			return err
		}
	}
	for _, k := range kids {
		if err := c.send(k, tag, struct{}{}); err != nil {
			return err
		}
	}
	return nil
}

// Bcast distributes root's value down the tree; every rank returns it. The
// value non-root ranks pass is ignored (MPI's recv-buffer convention).
func Bcast[T any](c *Comm, root int, v T) (T, error) {
	if err := c.checkRoot("bcast", root); err != nil {
		var zero T
		return zero, err
	}
	c.collectives.Add(1)
	c.lane.Begin(c.world.tn.bcast)
	defer c.lane.End(c.world.tn.bcast)
	return bcast(c, root, c.collTag(), v)
}

func bcast[T any](c *Comm, root, tag int, v T) (T, error) {
	var zero T
	vr := c.vrank(root)
	if p := c.parentOf(vr, root); p >= 0 {
		got, err := c.recvWait(p, tag, nil, 0)
		if err != nil {
			return zero, err
		}
		tv, ok := got.(T)
		if !ok {
			return zero, fmt.Errorf("msgpass: rank %d bcast: payload is %T, want %T", c.rank, got, zero)
		}
		v = tv
	}
	for _, k := range c.childrenOf(vr, root) {
		if err := c.send(k, tag, v); err != nil {
			return zero, err
		}
	}
	return v, nil
}

// Reduce combines every rank's value with op up the tree and returns the
// result on root (zero T elsewhere). Each node folds its children in
// ascending virtual-rank order, so the combination order is deterministic
// for a fixed world size; op should be associative and commutative if the
// result must not depend on that order (integer sums and maxes qualify).
func Reduce[T any](c *Comm, root int, v T, op func(a, b T) T) (T, error) {
	var zero T
	if err := c.checkRoot("reduce", root); err != nil {
		return zero, err
	}
	if op == nil {
		return zero, fmt.Errorf("msgpass: rank %d reduce: nil op", c.rank)
	}
	c.collectives.Add(1)
	c.lane.Begin(c.world.tn.reduce)
	defer c.lane.End(c.world.tn.reduce)
	return reduce(c, root, c.collTag(), v, op)
}

func reduce[T any](c *Comm, root, tag int, v T, op func(a, b T) T) (T, error) {
	var zero T
	vr := c.vrank(root)
	acc := v
	for _, k := range c.childrenOf(vr, root) {
		got, err := c.recvWait(k, tag, nil, 0)
		if err != nil {
			return zero, err
		}
		tv, ok := got.(T)
		if !ok {
			return zero, fmt.Errorf("msgpass: rank %d reduce: payload is %T, want %T", c.rank, got, zero)
		}
		acc = op(acc, tv)
	}
	if p := c.parentOf(vr, root); p >= 0 {
		if err := c.send(p, tag, acc); err != nil {
			return zero, err
		}
		return zero, nil
	}
	return acc, nil
}

// Allreduce is Reduce to rank 0 followed by Bcast from it: every rank
// returns the combined value. It counts as one collective call but claims
// two sequence numbers (one per phase) on every rank.
func Allreduce[T any](c *Comm, v T, op func(a, b T) T) (T, error) {
	var zero T
	if op == nil {
		return zero, fmt.Errorf("msgpass: rank %d allreduce: nil op", c.rank)
	}
	c.collectives.Add(1)
	c.lane.Begin(c.world.tn.allreduce)
	defer c.lane.End(c.world.tn.allreduce)
	redTag, bcastTag := c.collTag(), c.collTag()
	red, err := reduce(c, 0, redTag, v, op)
	if err != nil {
		return zero, err
	}
	return bcast(c, 0, bcastTag, red)
}

// Scatter hands rank i element i of root's values slice (which must have
// exactly world-size elements; non-root ranks may pass nil). Distribution
// is root-direct: at classroom scale splitting payloads down a tree buys
// nothing over the root's size-1 sends, and the fan-in tree stays the
// preserve of the combining collectives.
func Scatter[T any](c *Comm, root int, values []T) (T, error) {
	var zero T
	if err := c.checkRoot("scatter", root); err != nil {
		return zero, err
	}
	c.collectives.Add(1)
	c.lane.Begin(c.world.tn.scatter)
	defer c.lane.End(c.world.tn.scatter)
	tag := c.collTag()
	if c.rank != root {
		got, err := c.recvWait(root, tag, nil, 0)
		if err != nil {
			return zero, err
		}
		tv, ok := got.(T)
		if !ok {
			return zero, fmt.Errorf("msgpass: rank %d scatter: payload is %T, want %T", c.rank, got, zero)
		}
		return tv, nil
	}
	if len(values) != c.world.size {
		return zero, fmt.Errorf("msgpass: scatter root %d: %d values for world of %d", root, len(values), c.world.size)
	}
	for r, v := range values {
		if r != root {
			if err := c.send(r, tag, v); err != nil {
				return zero, err
			}
		}
	}
	return values[root], nil
}

// Gather collects every rank's value on root, returned in rank order (nil
// on non-root ranks). Like Scatter it is root-direct.
func Gather[T any](c *Comm, root int, v T) ([]T, error) {
	if err := c.checkRoot("gather", root); err != nil {
		return nil, err
	}
	c.collectives.Add(1)
	c.lane.Begin(c.world.tn.gather)
	defer c.lane.End(c.world.tn.gather)
	tag := c.collTag()
	if c.rank != root {
		if err := c.send(root, tag, v); err != nil {
			return nil, err
		}
		return nil, nil
	}
	out := make([]T, c.world.size)
	out[root] = v
	for r := 0; r < c.world.size; r++ {
		if r == root {
			continue
		}
		got, err := c.recvWait(r, tag, nil, 0)
		if err != nil {
			return nil, err
		}
		tv, ok := got.(T)
		if !ok {
			return nil, fmt.Errorf("msgpass: rank %d gather: payload from %d is %T, want %T", c.rank, r, got, tv)
		}
		out[r] = tv
	}
	return out, nil
}
