package core

// Cross-validation of the whole vertical slice: a Game of Life written in
// mini-C (2D arrays, loops, functions) is compiled to assembly, executed on
// the machine, and its result compared cell for cell against the native Go
// engine (internal/life) for random initial grids. Any defect anywhere in
// lexer, parser, codegen, assembler, or machine semantics shows up as a
// grid mismatch.

import (
	"fmt"
	"strings"
	"testing"

	"cs31/internal/life"
	"cs31/internal/minic"
)

// cLifeTemplate plays G generations of life on an N x N torus. The initial
// grid arrives on stdin as N*N integers (row major); the final grid is
// printed as '@'/'.' rows.
const cLifeTemplate = `
int N = @N@;
int G = @G@;
int cur[@N@][@N@];
int nxt[@N@][@N@];

int neighbors(int r, int c) {
    int count = 0;
    for (int dr = -1; dr <= 1; dr++) {
        for (int dc = -1; dc <= 1; dc++) {
            if (dr == 0 && dc == 0) { continue; }
            count += cur[(r + dr + N) % N][(c + dc + N) % N];
        }
    }
    return count;
}

int main() {
    for (int r = 0; r < N; r++) {
        for (int c = 0; c < N; c++) { cur[r][c] = read_int(); }
    }
    for (int g = 0; g < G; g++) {
        for (int r = 0; r < N; r++) {
            for (int c = 0; c < N; c++) {
                int n = neighbors(r, c);
                if (cur[r][c] == 1 && (n == 2 || n == 3)) { nxt[r][c] = 1; }
                else if (cur[r][c] == 0 && n == 3) { nxt[r][c] = 1; }
                else { nxt[r][c] = 0; }
            }
        }
        for (int r = 0; r < N; r++) {
            for (int c = 0; c < N; c++) { cur[r][c] = nxt[r][c]; }
        }
    }
    for (int r = 0; r < N; r++) {
        for (int c = 0; c < N; c++) {
            if (cur[r][c] == 1) { print_char('@'); } else { print_char('.'); }
        }
        print_char('\n');
    }
    return 0;
}`

func TestCompiledLifeMatchesGoEngine(t *testing.T) {
	const n = 8
	const gens = 5
	src := strings.NewReplacer("@N@", fmt.Sprint(n), "@G@", fmt.Sprint(gens)).
		Replace(cLifeTemplate)

	for seed := int64(1); seed <= 4; seed++ {
		// Reference: the Go engine.
		g, err := life.NewGrid(n, n, life.Torus)
		if err != nil {
			t.Fatal(err)
		}
		g.Randomize(seed, 0.35)

		// Feed the same initial grid to the compiled C program.
		var stdin strings.Builder
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				if g.Alive(r, c) {
					stdin.WriteString("1 ")
				} else {
					stdin.WriteString("0 ")
				}
			}
		}

		res, err := minic.Run(src, stdin.String(), 50_000_000)
		if err != nil {
			t.Fatalf("seed %d: compiled life failed: %v", seed, err)
		}

		g.Run(gens)
		want := strings.ReplaceAll(g.String(), "@", "@") // Go engine format matches
		if res.Stdout != want {
			t.Errorf("seed %d: compiled C life diverged from Go engine\nC:\n%s\nGo:\n%s",
				seed, res.Stdout, want)
		}
	}
}

// TestCompiledSortMatches runs the Lab 2 bubble sort in mini-C over stdin
// data and checks the output order — a second, independent cross-check.
func TestCompiledSortMatches(t *testing.T) {
	src := `
int main() {
    int n = read_int();
    int *a = malloc(n * sizeof(int));
    for (int i = 0; i < n; i++) { a[i] = read_int(); }
    for (int i = 0; i < n - 1; i++) {
        for (int j = 0; j < n - 1 - i; j++) {
            if (a[j] > a[j + 1]) {
                int tmp = a[j];
                a[j] = a[j + 1];
                a[j + 1] = tmp;
            }
        }
    }
    for (int i = 0; i < n; i++) { print_int(a[i]); print_char(' '); }
    return 0;
}`
	res, err := minic.Run(src, "7  5 -2 9 0 3 -2 8", 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stdout != "-2 -2 0 3 5 8 9 " {
		t.Errorf("sorted output = %q", res.Stdout)
	}
}
