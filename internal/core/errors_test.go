package core

// Error-path coverage for the vertical-slice pipeline: every stage's
// failure mode must surface as a wrapped error (or degrade sanely), never
// a panic or a zero-value success.

import (
	"strings"
	"testing"

	"cs31/internal/cache"
	"cs31/internal/vm"
)

func TestPipelineBadCSource(t *testing.T) {
	cases := map[string]string{
		"syntax":     "int main() { this is not C",
		"no main":    "int helper() { return 1; }",
		"type error": `int main() { int x; x = "string"; return 0; }`,
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			res, err := Run(src, Config{})
			if err == nil {
				t.Fatalf("Run accepted %s program", name)
			}
			if res != nil {
				t.Errorf("result should be nil on error, got %+v", res)
			}
			if !strings.Contains(err.Error(), "core: compile") {
				t.Errorf("error %q not wrapped with the pipeline stage", err)
			}
		})
	}
}

func TestPipelineStepBudgetExhaustion(t *testing.T) {
	infinite := `int main() { while (1 == 1) { } return 0; }`
	_, err := Run(infinite, Config{MaxSteps: 1000})
	if err == nil {
		t.Fatal("Run finished an infinite loop")
	}
	if !strings.Contains(err.Error(), "step budget") {
		t.Errorf("error %q does not mention the step budget", err)
	}
}

func TestPipelineMinimalProgram(t *testing.T) {
	// A program with (nearly) no data-memory traffic must still flow
	// through the cache/VM replay: zero-access stats are legal, not an
	// error, and the rate helpers must not divide by zero.
	res, err := Run("int main() { return 7; }", Config{})
	if err != nil {
		t.Fatalf("minimal program failed: %v", err)
	}
	if res.ExitStatus != 7 {
		t.Errorf("exit = %d, want 7", res.ExitStatus)
	}
	if hr := res.CacheStats.HitRate(); hr < 0 || hr > 1 {
		t.Errorf("hit rate %v outside [0,1]", hr)
	}
	if fr := res.VMStats.FaultRate(); fr < 0 || fr > 1 {
		t.Errorf("fault rate %v outside [0,1]", fr)
	}
	if res.EffectiveAccessNs < 0 {
		t.Errorf("negative effective access time %v", res.EffectiveAccessNs)
	}
	// The report must render without faulting on near-empty stats.
	if rep := res.CostReport(); !strings.Contains(rep, "effective access time") {
		t.Errorf("report incomplete:\n%s", rep)
	}
}

func TestPipelineBadCacheConfig(t *testing.T) {
	_, err := Run("int main() { return 0; }", Config{
		Cache: cache.Config{SizeBytes: 100, BlockSize: 7, Assoc: 1}, // not powers of two
	})
	if err == nil {
		t.Fatal("Run accepted an invalid cache config")
	}
	if !strings.Contains(err.Error(), "core: cache") {
		t.Errorf("error %q not attributed to the cache stage", err)
	}
}

func TestPipelineBadVMConfig(t *testing.T) {
	_, err := Run("int main() { return 0; }", Config{
		VM: vm.Config{PageSize: 100, NumFrames: 4, TLBSize: 2, NumPages: 16}, // not a power of two
	})
	if err == nil {
		t.Fatal("Run accepted an invalid VM config")
	}
}

func TestPipelineRuntimeFault(t *testing.T) {
	// A wild pointer store faults inside the machine, mid-pipeline.
	fault := `int main() {
    int *p;
    p = (int*)0;
    *p = 42;
    return 0;
}`
	if _, err := Run(fault, Config{}); err == nil {
		t.Skip("null store did not fault on this machine model")
	}
}
