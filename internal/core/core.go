// Package core ties the substrates together into the paper's primary
// contribution: the CS 31 curriculum itself. Pipeline runs the course's
// first two themes end to end — a C program is compiled (minic) to IA-32
// assembly (asm), executed instruction by instruction, and its memory
// trace replayed through the cache and virtual-memory simulators to
// produce the system-cost report of theme 2. The Modules registry is the
// course map: every lab and lecture module, the theme it serves, and the
// packages that implement it — DESIGN.md's inventory, in code.
package core

import (
	"fmt"
	"strings"

	"cs31/internal/cache"
	"cs31/internal/memhier"
	"cs31/internal/minic"
	"cs31/internal/vm"
)

// Theme is one of the course's three curricular themes.
type Theme int

// The three themes from the paper's Section II.
const (
	HowAComputerRunsAProgram Theme = iota + 1
	EvaluatingSystemCosts
	PowerOfParallelComputing
)

func (t Theme) String() string {
	switch t {
	case HowAComputerRunsAProgram:
		return "how a computer runs a program"
	case EvaluatingSystemCosts:
		return "evaluating system costs"
	case PowerOfParallelComputing:
		return "power of parallel computing"
	default:
		return fmt.Sprintf("theme(%d)", int(t))
	}
}

// Module is one course component mapped to its implementation.
type Module struct {
	Name     string
	Lab      string // lab number(s), "" for lecture-only modules
	Theme    Theme
	Packages []string // implementing packages in this repository
}

// Modules is the full course inventory.
var Modules = []Module{
	{Name: "binary data representation", Lab: "Lab 1", Theme: HowAComputerRunsAProgram,
		Packages: []string{"internal/numrep"}},
	{Name: "C programming", Lab: "Labs 2, 4, 7", Theme: HowAComputerRunsAProgram,
		Packages: []string{"internal/minic", "internal/cstr", "internal/cstats", "internal/sorting"}},
	{Name: "logic circuits and the ALU", Lab: "Lab 3", Theme: HowAComputerRunsAProgram,
		Packages: []string{"internal/circuit"}},
	{Name: "the simple CPU and pipelining", Lab: "", Theme: HowAComputerRunsAProgram,
		Packages: []string{"internal/cpu"}},
	{Name: "IA-32 assembly", Lab: "Labs 4, 5", Theme: HowAComputerRunsAProgram,
		Packages: []string{"internal/asm", "internal/debug", "internal/maze"}},
	{Name: "memory hierarchy and locality", Lab: "", Theme: EvaluatingSystemCosts,
		Packages: []string{"internal/memhier"}},
	{Name: "caching", Lab: "", Theme: EvaluatingSystemCosts,
		Packages: []string{"internal/cache"}},
	{Name: "operating systems and processes", Lab: "Labs 8, 9", Theme: HowAComputerRunsAProgram,
		Packages: []string{"internal/kernel", "internal/shell"}},
	{Name: "virtual memory", Lab: "", Theme: EvaluatingSystemCosts,
		Packages: []string{"internal/vm"}},
	{Name: "memory debugging (Valgrind)", Lab: "", Theme: EvaluatingSystemCosts,
		Packages: []string{"internal/memcheck"}},
	{Name: "shared memory parallelism", Lab: "Lab 10", Theme: PowerOfParallelComputing,
		Packages: []string{"internal/pthread", "internal/life", "internal/prodcons", "internal/paravis"}},
	{Name: "course evaluation", Lab: "", Theme: PowerOfParallelComputing,
		Packages: []string{"internal/survey"}},
}

// ModulesForTheme filters the inventory by theme.
func ModulesForTheme(t Theme) []Module {
	var out []Module
	for _, m := range Modules {
		if m.Theme == t {
			out = append(out, m)
		}
	}
	return out
}

// Config parameterizes a pipeline run. Zero values select the course's
// defaults: a 4 KiB direct-mapped cache with 64-byte blocks, and a VM with
// 256-byte pages, 64 frames, and an 8-entry TLB.
type Config struct {
	Cache    cache.Config
	VM       vm.Config
	Stdin    string
	MaxSteps int64
}

func (c *Config) fillDefaults() {
	if c.Cache.SizeBytes == 0 {
		c.Cache = cache.Config{SizeBytes: 4096, BlockSize: 64, Assoc: 1}
	}
	if c.VM.PageSize == 0 {
		c.VM = vm.Config{PageSize: 256, NumFrames: 64, TLBSize: 8, NumPages: 1 << 14}
	}
	if c.MaxSteps <= 0 {
		c.MaxSteps = 10_000_000
	}
}

// Result is everything the slice produces.
type Result struct {
	Assembly     string
	ExitStatus   int32
	Stdout       string
	Instructions int64
	MemAccesses  int

	CacheStats cache.Stats
	VMStats    vm.Stats
	Locality   memhier.LocalityReport

	// EffectiveAccessNs applies the course's cost model: cache hits cost
	// L1 time, misses cost RAM time, and the VM adds TLB-miss walks and
	// fault penalties.
	EffectiveAccessNs float64
}

// Run compiles a mini-C program, executes it on the asm machine, and
// replays its data-memory trace through the cache and VM simulators — the
// whole vertical slice in one call.
func Run(cSource string, cfg Config) (*Result, error) {
	cfg.fillDefaults()

	asmSrc, err := minic.Compile(cSource)
	if err != nil {
		return nil, fmt.Errorf("core: compile: %w", err)
	}
	rr, err := minic.RunTraced(cSource, cfg.Stdin, cfg.MaxSteps)
	if err != nil {
		return nil, fmt.Errorf("core: execute: %w", err)
	}

	res := &Result{
		Assembly:     asmSrc,
		ExitStatus:   rr.ExitStatus,
		Stdout:       rr.Stdout,
		Instructions: rr.Steps,
		MemAccesses:  len(rr.Trace),
	}

	// Convert the machine trace to the shared trace currency.
	trace := make([]memhier.Access, len(rr.Trace))
	for i, e := range rr.Trace {
		trace[i] = memhier.Access{Addr: uint64(e.Addr), Write: e.Write}
	}
	res.Locality = memhier.AnalyzeLocality(trace, 64, 64)

	// Cache replay.
	cc, err := cache.New(cfg.Cache)
	if err != nil {
		return nil, fmt.Errorf("core: cache: %w", err)
	}
	res.CacheStats = cc.RunTrace(trace)

	// VM replay as a single process.
	vs, err := vm.New(cfg.VM)
	if err != nil {
		return nil, fmt.Errorf("core: vm: %w", err)
	}
	if err := vs.AddProcess(1); err != nil {
		return nil, err
	}
	if err := vs.Switch(1); err != nil {
		return nil, err
	}
	for _, a := range trace {
		if _, err := vs.Access(a.Addr, a.Write); err != nil {
			return nil, fmt.Errorf("core: vm replay: %w", err)
		}
	}
	res.VMStats = vs.Stats()

	// Cost model: L1 hit 1ns, RAM 100ns (DefaultHierarchy numbers), plus
	// the VM's translation overheads.
	const l1, ram = 1.0, 100.0
	eat, err := memhier.EffectiveAccessTime(l1, ram, res.CacheStats.HitRate())
	if err != nil {
		return nil, err
	}
	res.EffectiveAccessNs = eat + vs.EffectiveAccessTime(ram, 10_000_000)/1000 // fault penalty amortized, scaled
	return res, nil
}

// CostReport renders the theme-2 summary the pipeline exists to produce.
func (r *Result) CostReport() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "vertical slice cost report\n")
	fmt.Fprintf(&sb, "  instructions executed : %d\n", r.Instructions)
	fmt.Fprintf(&sb, "  data memory accesses  : %d\n", r.MemAccesses)
	fmt.Fprintf(&sb, "  cache hit rate        : %.2f%% (%d hits, %d misses)\n",
		100*r.CacheStats.HitRate(), r.CacheStats.Hits, r.CacheStats.Misses)
	fmt.Fprintf(&sb, "  page faults           : %d (%.2f%%)\n",
		r.VMStats.PageFaults, 100*r.VMStats.FaultRate())
	fmt.Fprintf(&sb, "  TLB hit rate          : %.2f%%\n", 100*r.VMStats.TLBHitRate())
	fmt.Fprintf(&sb, "  temporal locality     : %.2f%%\n", 100*r.Locality.TemporalFraction())
	fmt.Fprintf(&sb, "  spatial locality      : %.2f%%\n", 100*r.Locality.SpatialFraction())
	fmt.Fprintf(&sb, "  effective access time : %.2f ns/access\n", r.EffectiveAccessNs)
	return sb.String()
}
