package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cs31/internal/cache"
)

const sumProgram = `
int main() {
    int a[64];
    int sum = 0;
    for (int i = 0; i < 64; i++) { a[i] = i; }
    for (int i = 0; i < 64; i++) { sum += a[i]; }
    print_int(sum);
    return 0;
}`

func TestPipelineEndToEnd(t *testing.T) {
	res, err := Run(sumProgram, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stdout != "2016" {
		t.Errorf("stdout = %q", res.Stdout)
	}
	if res.ExitStatus != 0 {
		t.Errorf("exit = %d", res.ExitStatus)
	}
	if res.Instructions == 0 || res.MemAccesses == 0 {
		t.Errorf("counts: instrs=%d mem=%d", res.Instructions, res.MemAccesses)
	}
	if !strings.Contains(res.Assembly, "main:") {
		t.Error("assembly missing main")
	}
	// A tight array loop through a 64-byte-block cache hits often.
	if res.CacheStats.HitRate() < 0.5 {
		t.Errorf("hit rate %v implausibly low", res.CacheStats.HitRate())
	}
	if res.VMStats.Accesses == 0 || res.VMStats.PageFaults == 0 {
		t.Errorf("vm stats: %+v", res.VMStats)
	}
	if res.EffectiveAccessNs <= 0 {
		t.Errorf("EAT = %v", res.EffectiveAccessNs)
	}
	report := res.CostReport()
	for _, want := range []string{"cache hit rate", "page faults", "TLB", "effective access time"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

func TestPipelineStrideContrast(t *testing.T) {
	// The cache exercise through the whole stack: row-major vs column-major
	// traversal of the same matrix, compiled from C. Row-major must hit
	// more.
	rowMajor := `
int main() {
    int m[1024];
    int sum = 0;
    for (int i = 0; i < 32; i++) {
        for (int j = 0; j < 32; j++) { sum += m[i * 32 + j]; }
    }
    return 0;
}`
	colMajor := `
int main() {
    int m[1024];
    int sum = 0;
    for (int j = 0; j < 32; j++) {
        for (int i = 0; i < 32; i++) { sum += m[i * 32 + j]; }
    }
    return 0;
}`
	// Use a small cache so the 4 KiB matrix cannot fit entirely.
	cfg := Config{Cache: cache.Config{SizeBytes: 512, BlockSize: 64, Assoc: 1}}
	rm, err := Run(rowMajor, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := Run(colMajor, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rm.CacheStats.HitRate() <= cm.CacheStats.HitRate() {
		t.Errorf("row-major hit rate %.3f should beat column-major %.3f",
			rm.CacheStats.HitRate(), cm.CacheStats.HitRate())
	}
}

func TestPipelineErrors(t *testing.T) {
	if _, err := Run("int main() { return x; }", Config{}); err == nil {
		t.Error("compile error should surface")
	}
	if _, err := Run("int main() { while (1) {} return 0; }", Config{MaxSteps: 1000}); err == nil {
		t.Error("runaway program should surface")
	}
	bad := Config{Cache: cache.Config{SizeBytes: 100, BlockSize: 3, Assoc: 1}}
	if _, err := Run("int main() { return 0; }", bad); err == nil {
		t.Error("bad cache config should surface")
	}
}

func TestModulesInventory(t *testing.T) {
	if len(Modules) < 10 {
		t.Errorf("inventory too small: %d modules", len(Modules))
	}
	themes := map[Theme]int{}
	for _, m := range Modules {
		if m.Name == "" || len(m.Packages) == 0 {
			t.Errorf("incomplete module: %+v", m)
		}
		themes[m.Theme]++
	}
	for _, th := range []Theme{HowAComputerRunsAProgram, EvaluatingSystemCosts, PowerOfParallelComputing} {
		if themes[th] == 0 {
			t.Errorf("theme %v has no modules", th)
		}
		if len(ModulesForTheme(th)) != themes[th] {
			t.Errorf("ModulesForTheme(%v) inconsistent", th)
		}
	}
}

func TestThemeStrings(t *testing.T) {
	if !strings.Contains(HowAComputerRunsAProgram.String(), "runs a program") {
		t.Error("theme 1 name")
	}
	if !strings.Contains(Theme(9).String(), "9") {
		t.Error("unknown theme name")
	}
}

// The Modules registry is DESIGN.md's inventory in code; every package it
// names must exist in the repository.
func TestModulePackagesExist(t *testing.T) {
	for _, m := range Modules {
		for _, pkg := range m.Packages {
			if _, err := os.Stat(filepath.Join("..", "..", pkg)); err != nil {
				t.Errorf("module %q names missing package %s: %v", m.Name, pkg, err)
			}
		}
	}
}
