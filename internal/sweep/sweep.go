// Package sweep is the concurrent experiment-sweep engine: it fans a
// parameter grid — thread count × board size × partition for Game of Life
// (the paper's Figure-1 claim), configuration grids for the cache, VM, and
// memory-hierarchy trace sweeps — across a bounded worker pool and returns
// results in deterministic input order regardless of scheduling. The
// experiment suite, cmd/life -bench, and the labd speedup endpoint all run
// their grids through it.
//
// Timed speedup series go through the same plumbing with a single worker
// (MeasureScaling): co-running wall-clock measurements would contend for
// the cores being measured, so the timed path trades parallelism for
// clean numbers while keeping the engine's ordering and cancellation
// semantics.
package sweep

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cs31/internal/pthread"
)

// Run evaluates fn over every item on at most workers concurrent
// goroutines and returns the results in item order. A sweep wants the
// full grid, so one item's failure does not cancel its siblings; the
// error returned is the lowest-index failure, which makes the outcome
// independent of scheduling. A canceled ctx skips items that have not
// started and wins over item errors.
func Run[T, R any](ctx context.Context, workers int, items []T, fn func(ctx context.Context, item T) (R, error)) ([]R, error) {
	if fn == nil {
		return nil, fmt.Errorf("sweep: nil item function")
	}
	if workers < 1 {
		return nil, fmt.Errorf("sweep: need at least 1 worker, got %d", workers)
	}
	results := make([]R, len(items))
	if len(items) == 0 {
		return results, ctx.Err()
	}
	if workers > len(items) {
		workers = len(items)
	}
	errs := make([]error, len(items))
	// Workers claim the next unclaimed index with one atomic add — the
	// pool needs no queue, no channel, and no lock, and a slow item only
	// delays itself.
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				results[i], errs[i] = fn(ctx, items[i])
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return results, err
	}
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// MeasureScaling times work(threads) for each entry of threadCounts and
// reports speedup and parallel efficiency relative to the first entry
// (conventionally 1 thread). Points run strictly one at a time — through
// Run with a single worker, so cancellation and ordering behave like any
// other sweep — because overlapping wall-clock measurements would steal
// cores from each other.
func MeasureScaling(ctx context.Context, threadCounts []int, work func(ctx context.Context, threads int) error) ([]pthread.ScalingPoint, error) {
	if len(threadCounts) == 0 {
		return nil, fmt.Errorf("sweep: no thread counts to measure")
	}
	elapsed, err := Run(ctx, 1, threadCounts, func(ctx context.Context, threads int) (time.Duration, error) {
		if threads < 1 {
			return 0, fmt.Errorf("sweep: invalid thread count %d", threads)
		}
		start := time.Now()
		if err := work(ctx, threads); err != nil {
			return 0, fmt.Errorf("sweep: %d threads: %w", threads, err)
		}
		d := time.Since(start)
		if d <= 0 {
			d = time.Nanosecond // clock granularity guard, keeps ratios finite
		}
		return d, nil
	})
	if err != nil {
		return nil, err
	}
	base := elapsed[0]
	points := make([]pthread.ScalingPoint, len(threadCounts))
	for i, tc := range threadCounts {
		points[i] = pthread.ScalingPoint{
			Threads:    tc,
			Elapsed:    elapsed[i],
			Speedup:    pthread.Speedup(base, elapsed[i]),
			Efficiency: pthread.Efficiency(base, elapsed[i], tc),
		}
	}
	return points, nil
}
