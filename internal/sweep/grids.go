package sweep

import (
	"context"
	"fmt"
	"math/rand"

	"cs31/internal/cache"
	"cs31/internal/life"
	"cs31/internal/memhier"
	"cs31/internal/sorting"
	"cs31/internal/vm"
)

// LifeCase is one point of the Game of Life claims grid: a board shape, a
// thread count, and a partitioning strategy, advanced a fixed number of
// generations from a seeded random start.
type LifeCase struct {
	Rows, Cols int
	Threads    int
	Partition  life.Partition
	Gens       int
	Seed       int64
	Density    float64
	Dist       bool // run the message-passing DistRunner instead of shared-memory threads
	Packed     bool // advance through the bit-packed SWAR kernel instead of the byte kernel
}

func (c LifeCase) String() string {
	s := fmt.Sprintf("%dx%d/%v/threads-%d", c.Rows, c.Cols, c.Partition, c.Threads)
	if c.Dist {
		s = fmt.Sprintf("%dx%d/%v/ranks-%d/dist", c.Rows, c.Cols, c.Partition, c.Threads)
	}
	if c.Packed {
		s += "/packed"
	}
	return s
}

// LifeResult is the deterministic outcome of one life case.
type LifeResult struct {
	Case        LifeCase
	Generation  int
	Population  int
	LiveUpdates int64 // cells that changed state over the run
}

// LifeGrid builds the cartesian product sizes × threads × partitions — the
// grid behind the paper's Figure-1/C1 claims — with shared generation
// count, seed, and density so every point starts from the same board.
func LifeGrid(sizes [][2]int, threads []int, partitions []life.Partition, gens int, seed int64, density float64) []LifeCase {
	cases := make([]LifeCase, 0, len(sizes)*len(threads)*len(partitions))
	for _, sz := range sizes {
		for _, tc := range threads {
			for _, part := range partitions {
				cases = append(cases, LifeCase{
					Rows: sz[0], Cols: sz[1],
					Threads: tc, Partition: part,
					Gens: gens, Seed: seed, Density: density,
				})
			}
		}
	}
	return cases
}

// DistLifeGrid is LifeGrid for the message-passing engine: the same
// cartesian product, but every multi-worker point runs DistRunner ranks
// instead of shared-memory threads (thread-count 1 stays the serial
// baseline either way, so dist speedup curves share their denominator
// with the shared-memory ones).
func DistLifeGrid(sizes [][2]int, ranks []int, gens int, seed int64, density float64) []LifeCase {
	cases := LifeGrid(sizes, ranks, []life.Partition{life.ByRows}, gens, seed, density)
	for i := range cases {
		cases[i].Dist = true
	}
	return cases
}

// RunLifeGrid fans the cases across workers. Thread-count 1 runs the
// serial engine (the speedup baseline and the differential reference);
// higher counts run the sharded ParallelRunner, or the message-passing
// DistRunner for cases marked Dist.
func RunLifeGrid(ctx context.Context, workers int, cases []LifeCase) ([]LifeResult, error) {
	return Run(ctx, workers, cases, func(ctx context.Context, c LifeCase) (LifeResult, error) {
		g, err := life.NewGrid(c.Rows, c.Cols, life.Torus)
		if err != nil {
			return LifeResult{}, err
		}
		g.Randomize(c.Seed, c.Density)
		if c.Packed {
			// Randomize fills the byte board first, so byte and packed cases
			// with the same seed start from identical boards — the sweep's
			// results double as a cross-representation differential.
			g.SetPacked(true)
		}
		res := LifeResult{Case: c}
		switch {
		case c.Threads <= 1:
			// The serial engine has no internal cancellation points, so
			// poll the context between generation chunks: a canceled sweep
			// abandons a long serial case within a bounded slice of work.
			const chunk = 8
			for done := 0; done < c.Gens; {
				if err := ctx.Err(); err != nil {
					return res, fmt.Errorf("life case %s canceled after %d of %d generations: %w",
						c, done, c.Gens, err)
				}
				step := c.Gens - done
				if step > chunk {
					step = chunk
				}
				res.LiveUpdates += g.RunCounted(step)
				done += step
			}
		case c.Dist:
			dr := &life.DistRunner{G: g, Ranks: c.Threads, Partition: c.Partition}
			stats, err := dr.RunCtx(ctx, c.Gens)
			if err != nil {
				return res, err
			}
			res.LiveUpdates = stats.LiveUpdates
		default:
			pr := &life.ParallelRunner{G: g, Threads: c.Threads, Partition: c.Partition}
			stats, err := pr.RunCtx(ctx, c.Gens)
			if err != nil {
				return res, err
			}
			res.LiveUpdates = stats.LiveUpdates
		}
		res.Generation = g.Generation
		res.Population = g.Population()
		return res, nil
	})
}

// SortCase is one point of the parallel merge sort scaling grid: an input
// size and a thread count, sorting a seeded random permutation.
type SortCase struct {
	N       int
	Threads int
	Seed    int64
}

func (c SortCase) String() string {
	return fmt.Sprintf("n-%d/threads-%d", c.N, c.Threads)
}

// SortResult is the deterministic outcome of one sort case. Checksum is a
// positional hash of the sorted output, so two cases over the same input
// agree iff their outputs are element-for-element identical.
type SortResult struct {
	Case     SortCase
	Sorted   bool
	Checksum uint64
}

// SortGrid builds the cartesian product sizes × threads with a shared
// seed, so every thread count at a given size sorts the same permutation
// — the grid behind the BenchmarkParallelMergeSort scaling claims.
func SortGrid(sizes, threads []int, seed int64) []SortCase {
	cases := make([]SortCase, 0, len(sizes)*len(threads))
	for _, n := range sizes {
		for _, tc := range threads {
			cases = append(cases, SortCase{N: n, Threads: tc, Seed: seed})
		}
	}
	return cases
}

// RunSortGrid fans the sort cases across workers; each case regenerates
// its input from the seed, sorts with its thread count, and reports a
// checksum for cross-thread-count differential comparison.
func RunSortGrid(ctx context.Context, workers int, cases []SortCase) ([]SortResult, error) {
	return Run(ctx, workers, cases, func(ctx context.Context, c SortCase) (SortResult, error) {
		if err := ctx.Err(); err != nil {
			return SortResult{}, fmt.Errorf("sort case %s canceled: %w", c, err)
		}
		rng := rand.New(rand.NewSource(c.Seed))
		a := make([]int, c.N)
		for i := range a {
			a[i] = rng.Intn(1<<20) - 1<<19
		}
		if err := sorting.ParallelMerge(a, c.Threads); err != nil {
			return SortResult{}, fmt.Errorf("sort case %s: %w", c, err)
		}
		res := SortResult{Case: c, Sorted: sorting.IsSorted(a)}
		const prime = 1099511628211
		h := uint64(14695981039346656037)
		for _, v := range a {
			h = (h ^ uint64(v)) * prime
		}
		res.Checksum = h
		return res, nil
	})
}

// CacheCase replays one access trace through one cache configuration.
type CacheCase struct {
	Name   string
	Config cache.Config
	Trace  []memhier.Access
}

// CacheResult is the deterministic outcome of one cache case.
type CacheResult struct {
	Case    CacheCase
	Stats   cache.Stats
	HitRate float64
}

// StrideGrid builds the loop-order exercise's workload grid: every cache
// configuration × row-major and column-major traversals of a rows×cols
// matrix of 4-byte elements (the C4 claim: traversal order against a
// small cache separates hit rates by an order of magnitude).
func StrideGrid(configs []cache.Config, rows, cols int) []CacheCase {
	const elemSize = 4
	cases := make([]CacheCase, 0, 2*len(configs))
	for _, cfg := range configs {
		label := fmt.Sprintf("size%d-assoc%d", cfg.SizeBytes, cfg.Assoc)
		cases = append(cases,
			CacheCase{
				Name:   label + "/rowmajor",
				Config: cfg,
				Trace:  memhier.MatrixTraceRowMajor(0, rows, cols, elemSize),
			},
			CacheCase{
				Name:   label + "/colmajor",
				Config: cfg,
				Trace:  memhier.MatrixTraceColMajor(0, rows, cols, elemSize),
			},
		)
	}
	return cases
}

// RunCacheGrid fans the cache cases across workers; each case gets a
// fresh simulator.
func RunCacheGrid(ctx context.Context, workers int, cases []CacheCase) ([]CacheResult, error) {
	return Run(ctx, workers, cases, func(ctx context.Context, c CacheCase) (CacheResult, error) {
		sim, err := cache.New(c.Config)
		if err != nil {
			return CacheResult{}, fmt.Errorf("%s: %w", c.Name, err)
		}
		stats := sim.RunTrace(c.Trace)
		return CacheResult{Case: c, Stats: stats, HitRate: stats.HitRate()}, nil
	})
}

// VMRef is one access of a VM sweep trace: which process touches which
// virtual address. Replaying switches the simulator to Pid first, so
// interleaved pids exercise context-switch TLB flushes.
type VMRef struct {
	Pid   vm.Pid
	Addr  uint64
	Write bool
}

// VMCase replays one reference trace through one VM configuration.
type VMCase struct {
	Name   string
	Config vm.Config
	Trace  []VMRef
}

// VMResult is the deterministic outcome of one VM case, including the
// course's effective-access-time figure for the supplied timing model.
type VMResult struct {
	Case       VMCase
	Stats      vm.Stats
	FaultRate  float64
	TLBHitRate float64
	EATNs      float64
}

// WalkTrace builds the C5 working-set walk: rounds sequential passes over
// the first pages of one process's address space, one access per page per
// pass — the pattern whose cost the TLB collapses once the working set
// fits.
func WalkTrace(pid vm.Pid, pages, rounds int, pageSize uint64) []VMRef {
	trace := make([]VMRef, 0, pages*rounds)
	for r := 0; r < rounds; r++ {
		for p := 0; p < pages; p++ {
			trace = append(trace, VMRef{Pid: pid, Addr: uint64(p) * pageSize})
		}
	}
	return trace
}

// RunVMGrid fans the VM cases across workers; each case gets a fresh
// system, processes are created on first reference, and EATNs uses the
// supplied memory and fault costs.
func RunVMGrid(ctx context.Context, workers int, cases []VMCase, memTimeNs, faultPenaltyNs float64) ([]VMResult, error) {
	return Run(ctx, workers, cases, func(ctx context.Context, c VMCase) (VMResult, error) {
		sys, err := vm.New(c.Config)
		if err != nil {
			return VMResult{}, fmt.Errorf("%s: %w", c.Name, err)
		}
		seen := make(map[vm.Pid]bool)
		for _, ref := range c.Trace {
			if !seen[ref.Pid] {
				if err := sys.AddProcess(ref.Pid); err != nil {
					return VMResult{}, fmt.Errorf("%s: %w", c.Name, err)
				}
				seen[ref.Pid] = true
			}
			if sys.Current() != ref.Pid {
				if err := sys.Switch(ref.Pid); err != nil {
					return VMResult{}, fmt.Errorf("%s: %w", c.Name, err)
				}
			}
			if _, err := sys.Access(ref.Addr, ref.Write); err != nil {
				return VMResult{}, fmt.Errorf("%s: addr %#x: %w", c.Name, ref.Addr, err)
			}
		}
		stats := sys.Stats()
		return VMResult{
			Case:       c,
			Stats:      stats,
			FaultRate:  stats.FaultRate(),
			TLBHitRate: stats.TLBHitRate(),
			EATNs:      sys.EffectiveAccessTime(memTimeNs, faultPenaltyNs),
		}, nil
	})
}
