package sweep

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cs31/internal/cache"
	"cs31/internal/life"
	"cs31/internal/sorting"
	"cs31/internal/vm"
)

// TestRunOrderAndCoverage pins the engine's contract: every item runs
// exactly once and results land at their item's index, regardless of how
// many workers race over the claim counter.
func TestRunOrderAndCoverage(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{1, 3, 16, 200} {
		workers := workers
		t.Run(fmt.Sprintf("workers-%d", workers), func(t *testing.T) {
			var calls atomic.Int64
			results, err := Run(context.Background(), workers, items, func(_ context.Context, item int) (int, error) {
				calls.Add(1)
				return item * item, nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := calls.Load(); got != int64(len(items)) {
				t.Errorf("fn ran %d times, want %d", got, len(items))
			}
			for i, r := range results {
				if r != i*i {
					t.Fatalf("results[%d] = %d, want %d", i, r, i*i)
				}
			}
		})
	}
}

// TestRunErrorIsLowestIndex pins deterministic error selection: the whole
// grid still runs, and the reported error belongs to the lowest failing
// index no matter which worker hit it first.
func TestRunErrorIsLowestIndex(t *testing.T) {
	items := []int{0, 1, 2, 3, 4, 5, 6, 7}
	var ran atomic.Int64
	_, err := Run(context.Background(), 4, items, func(_ context.Context, item int) (int, error) {
		ran.Add(1)
		if item == 6 || item == 3 {
			return 0, fmt.Errorf("item %d failed", item)
		}
		return item, nil
	})
	if err == nil || err.Error() != "item 3 failed" {
		t.Errorf("err = %v, want the lowest-index failure (item 3)", err)
	}
	if got := ran.Load(); got != int64(len(items)) {
		t.Errorf("fn ran %d times, want %d (siblings must not be canceled)", got, len(items))
	}
}

func TestRunCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, 2, []int{1, 2, 3}, func(_ context.Context, item int) (int, error) {
		return 0, fmt.Errorf("item error that must lose to ctx")
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(context.Background(), 0, []int{1}, func(_ context.Context, i int) (int, error) { return i, nil }); err == nil {
		t.Error("workers=0 accepted")
	}
	if _, err := Run[int, int](context.Background(), 1, []int{1}, nil); err == nil {
		t.Error("nil fn accepted")
	}
	res, err := Run(context.Background(), 4, nil, func(_ context.Context, i int) (int, error) { return i, nil })
	if err != nil || len(res) != 0 {
		t.Errorf("empty items: res=%v err=%v, want empty, nil", res, err)
	}
}

func TestMeasureScalingSeries(t *testing.T) {
	counts := []int{1, 2, 4}
	var order []int
	points, err := MeasureScaling(context.Background(), counts, func(_ context.Context, threads int) error {
		order = append(order, threads) // single worker: appends cannot race
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(counts) {
		t.Fatalf("got %d points, want %d", len(points), len(counts))
	}
	for i, p := range points {
		if p.Threads != counts[i] {
			t.Errorf("points[%d].Threads = %d, want %d", i, p.Threads, counts[i])
		}
		if p.Elapsed <= 0 || p.Speedup <= 0 || p.Efficiency <= 0 {
			t.Errorf("points[%d] has non-positive measurements: %+v", i, p)
		}
	}
	if points[0].Speedup != 1 {
		t.Errorf("base point speedup = %v, want 1", points[0].Speedup)
	}
	for i, tc := range order {
		if tc != counts[i] {
			t.Fatalf("measurement order %v, want %v (strictly sequential)", order, counts)
		}
	}
	if _, err := MeasureScaling(context.Background(), nil, func(context.Context, int) error { return nil }); err == nil {
		t.Error("empty thread counts accepted")
	}
	if _, err := MeasureScaling(context.Background(), []int{0}, func(context.Context, int) error { return nil }); err == nil {
		t.Error("thread count 0 accepted")
	}
}

// TestLifeGridDifferential is the sweep-grid differential: for every
// partition × thread-count × size combination in the grid, the sharded
// per-thread LiveUpdates reduction and the final board must equal the
// serial engine's RunCounted on the same start state. The grid itself runs
// through the concurrent engine, so under -race this also exercises
// independent ParallelRunners on overlapping schedules.
func TestLifeGridDifferential(t *testing.T) {
	sizes := [][2]int{{16, 16}, {19, 23}}
	threads := []int{1, 2, 3, 4, 8, 16, 33}
	partitions := []life.Partition{life.ByRows, life.ByCols}
	const (
		gens    = 5
		seed    = 11
		density = 0.35
	)
	cases := LifeGrid(sizes, threads, partitions, gens, seed, density)
	if want := len(sizes) * len(threads) * len(partitions); len(cases) != want {
		t.Fatalf("grid has %d cases, want %d", len(cases), want)
	}
	results, err := RunLifeGrid(context.Background(), 8, cases)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		c := cases[i]
		if res.Case != c {
			t.Fatalf("results[%d] is for case %v, want %v (ordering)", i, res.Case, c)
		}
		serial, err := life.NewGrid(c.Rows, c.Cols, life.Torus)
		if err != nil {
			t.Fatal(err)
		}
		serial.Randomize(c.Seed, c.Density)
		wantUpdates := serial.RunCounted(c.Gens)
		if res.LiveUpdates != wantUpdates {
			t.Errorf("%v: LiveUpdates = %d, serial engine counted %d", c, res.LiveUpdates, wantUpdates)
		}
		if res.Population != serial.Population() {
			t.Errorf("%v: population = %d, serial engine has %d", c, res.Population, serial.Population())
		}
		if res.Generation != gens {
			t.Errorf("%v: generation = %d, want %d", c, res.Generation, gens)
		}
	}
}

// TestPackedLifeGridDifferential marks grid points packed and holds every
// engine the sweep dispatches — packed serial, packed ParallelRunner, packed
// DistRunner — to the byte kernel's count on the same seeded board. Width 70
// keeps a ragged final word in play.
func TestPackedLifeGridDifferential(t *testing.T) {
	const (
		gens    = 5
		seed    = 11
		density = 0.35
	)
	cases := LifeGrid([][2]int{{16, 70}}, []int{1, 4, 33}, []life.Partition{life.ByRows, life.ByCols}, gens, seed, density)
	dist := DistLifeGrid([][2]int{{16, 70}}, []int{4}, gens, seed, density)
	cases = append(cases, dist...)
	for i := range cases {
		cases[i].Packed = true
	}
	results, err := RunLifeGrid(context.Background(), 4, cases)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		c := cases[i]
		serial, err := life.NewGrid(c.Rows, c.Cols, life.Torus)
		if err != nil {
			t.Fatal(err)
		}
		serial.Randomize(c.Seed, c.Density)
		wantUpdates := serial.RunCounted(c.Gens)
		if res.LiveUpdates != wantUpdates {
			t.Errorf("%v: LiveUpdates = %d, byte kernel counted %d", c, res.LiveUpdates, wantUpdates)
		}
		if res.Population != serial.Population() {
			t.Errorf("%v: population = %d, byte kernel has %d", c, res.Population, serial.Population())
		}
	}
}

// TestDistLifeGridDifferential runs the message-passing engine's grid
// through the sweep pool and checks every point against the serial engine —
// the distributed counterpart of TestLifeGridDifferential. Rank count 33
// over 16-row boards exercises the surplus-rank clamp inside a grid run.
func TestDistLifeGridDifferential(t *testing.T) {
	sizes := [][2]int{{16, 16}, {19, 23}}
	ranks := []int{1, 2, 8, 33}
	const (
		gens    = 5
		seed    = 11
		density = 0.35
	)
	cases := DistLifeGrid(sizes, ranks, gens, seed, density)
	if want := len(sizes) * len(ranks); len(cases) != want {
		t.Fatalf("grid has %d cases, want %d", len(cases), want)
	}
	for _, c := range cases {
		if !c.Dist {
			t.Fatalf("case %v not marked Dist", c)
		}
		if c.Threads > 1 && !strings.HasSuffix(c.String(), "/dist") {
			t.Fatalf("case label %q does not name the dist engine", c.String())
		}
	}
	results, err := RunLifeGrid(context.Background(), 4, cases)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		c := cases[i]
		serial, err := life.NewGrid(c.Rows, c.Cols, life.Torus)
		if err != nil {
			t.Fatal(err)
		}
		serial.Randomize(c.Seed, c.Density)
		wantUpdates := serial.RunCounted(c.Gens)
		if res.LiveUpdates != wantUpdates {
			t.Errorf("%v: LiveUpdates = %d, serial engine counted %d", c, res.LiveUpdates, wantUpdates)
		}
		if res.Population != serial.Population() {
			t.Errorf("%v: population = %d, serial engine has %d", c, res.Population, serial.Population())
		}
	}
}

// TestGridSurplusWorkersClampedDifferential is the regression test for the
// PR-3 surplus-worker class at the grid level: cases whose worker count far
// exceeds the partition extent (64 workers over boards with as few as 2
// rows) must clamp and still match the serial engine bit-for-bit, on both
// the shared-memory and the message-passing engine.
func TestGridSurplusWorkersClampedDifferential(t *testing.T) {
	sizes := [][2]int{{2, 9}, {3, 3}, {5, 17}}
	const (
		gens    = 6
		seed    = 23
		density = 0.4
	)
	shared := LifeGrid(sizes, []int{64}, []life.Partition{life.ByRows, life.ByCols}, gens, seed, density)
	dist := DistLifeGrid(sizes, []int{64}, gens, seed, density)
	cases := append(shared, dist...)
	results, err := RunLifeGrid(context.Background(), 4, cases)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		c := cases[i]
		serial, err := life.NewGrid(c.Rows, c.Cols, life.Torus)
		if err != nil {
			t.Fatal(err)
		}
		serial.Randomize(c.Seed, c.Density)
		wantUpdates := serial.RunCounted(c.Gens)
		if res.LiveUpdates != wantUpdates {
			t.Errorf("%v: LiveUpdates = %d, serial engine counted %d", c, res.LiveUpdates, wantUpdates)
		}
		if res.Population != serial.Population() {
			t.Errorf("%v: population = %d, serial engine has %d", c, res.Population, serial.Population())
		}
	}
}

// TestStrideGridShape is the engine-driven form of the C4 claim: a
// row-major traversal against a small direct-mapped cache hits nearly
// always, a column-major traversal of the same matrix almost never.
// TestSortGridDifferential: every thread count at a given size sorts the
// same seeded permutation, so all checksums in a size row must agree and
// match a serial sorting.Merge reference.
func TestSortGridDifferential(t *testing.T) {
	sizes := []int{0, 1, 100, 4096}
	threads := []int{1, 2, 3, 8, 16}
	const seed = 13
	cases := SortGrid(sizes, threads, seed)
	if want := len(sizes) * len(threads); len(cases) != want {
		t.Fatalf("grid has %d cases, want %d", len(cases), want)
	}
	results, err := RunSortGrid(context.Background(), 4, cases)
	if err != nil {
		t.Fatal(err)
	}
	byN := make(map[int][]SortResult)
	for i, res := range results {
		if res.Case != cases[i] {
			t.Fatalf("results[%d] is for case %v, want %v (ordering)", i, res.Case, cases[i])
		}
		if !res.Sorted {
			t.Errorf("%v: output not sorted", res.Case)
		}
		byN[res.Case.N] = append(byN[res.Case.N], res)
	}
	for n, group := range byN {
		// Serial reference: same generator, sorted with the plain kernel.
		ref, err := RunSortGrid(context.Background(), 1, []SortCase{{N: n, Threads: 1, Seed: seed}})
		if err != nil {
			t.Fatal(err)
		}
		for _, res := range group {
			if res.Checksum != ref[0].Checksum {
				t.Errorf("%v: checksum %#x diverges from serial %#x", res.Case, res.Checksum, ref[0].Checksum)
			}
		}
	}
	// Grid propagates the kernel's typed error for bad thread counts.
	if _, err := RunSortGrid(context.Background(), 1, []SortCase{{N: 10, Threads: 0, Seed: seed}}); err == nil {
		t.Fatal("threads=0 case should fail")
	} else {
		var tce *sorting.ThreadCountError
		if !errors.As(err, &tce) {
			t.Fatalf("err = %v, want *sorting.ThreadCountError", err)
		}
	}
}

func TestStrideGridShape(t *testing.T) {
	cfg := cache.Config{SizeBytes: 1024, BlockSize: 64, Assoc: 1}
	cases := StrideGrid([]cache.Config{cfg}, 64, 64)
	if len(cases) != 2 {
		t.Fatalf("grid has %d cases, want 2", len(cases))
	}
	results, err := RunCacheGrid(context.Background(), 2, cases)
	if err != nil {
		t.Fatal(err)
	}
	row, col := results[0], results[1]
	if row.HitRate < 0.9 {
		t.Errorf("row-major hit rate %.3f, want >= 0.9", row.HitRate)
	}
	if col.HitRate > 0.1 {
		t.Errorf("column-major hit rate %.3f, want <= 0.1", col.HitRate)
	}
}

// TestVMGridShape is the engine-driven form of the C5 claim: the same
// working-set walk with and without a TLB.
func TestVMGridShape(t *testing.T) {
	cfg := vm.Config{PageSize: 256, NumFrames: 16, NumPages: 32}
	trace := WalkTrace(1, 8, 16, cfg.PageSize)
	withTLB, withoutTLB := cfg, cfg
	withTLB.TLBSize = 16
	cases := []VMCase{
		{Name: "tlb-16", Config: withTLB, Trace: trace},
		{Name: "tlb-0", Config: withoutTLB, Trace: trace},
	}
	results, err := RunVMGrid(context.Background(), 2, cases, 100, 8e6)
	if err != nil {
		t.Fatal(err)
	}
	tlb, noTLB := results[0], results[1]
	if tlb.TLBHitRate <= 0.9 {
		t.Errorf("TLB hit rate %.3f, want > 0.9 (8-page working set in a 16-entry TLB)", tlb.TLBHitRate)
	}
	if noTLB.TLBHitRate != 0 {
		t.Errorf("TLB-less hit rate %.3f, want 0", noTLB.TLBHitRate)
	}
	if tlb.FaultRate != noTLB.FaultRate {
		t.Errorf("fault rates differ with TLB (%v) vs without (%v): the TLB must not change paging", tlb.FaultRate, noTLB.FaultRate)
	}
	if tlb.EATNs >= noTLB.EATNs {
		t.Errorf("EAT with TLB (%v ns) not below EAT without (%v ns)", tlb.EATNs, noTLB.EATNs)
	}
}

// TestLifeGridCancellationTearsDown: canceling a life sweep mid-flight
// must stop every engine class — serial cases at their next chunk poll,
// parallel and dist cases through their runners' own context plumbing —
// and surface the context error from the sweep.
func TestLifeGridCancellationTearsDown(t *testing.T) {
	// Big serial cases plus dist and parallel cases, enough generations
	// that the sweep cannot finish before the cancel lands.
	cases := []LifeCase{
		{Rows: 256, Cols: 256, Threads: 1, Gens: 10_000, Seed: 1, Density: 0.3},
		{Rows: 256, Cols: 256, Threads: 4, Gens: 10_000, Seed: 1, Density: 0.3},
		{Rows: 256, Cols: 256, Threads: 4, Gens: 10_000, Seed: 1, Density: 0.3, Dist: true},
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := RunLifeGrid(ctx, 3, cases)
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled life sweep did not return")
	}
}
