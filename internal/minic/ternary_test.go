package minic

import "testing"

func TestTernaryBasics(t *testing.T) {
	cases := []struct {
		expr string
		want int32
	}{
		{"1 ? 10 : 20", 10},
		{"0 ? 10 : 20", 20},
		{"5 > 3 ? 1 : 2", 1},
		{"1 ? 2 : 0 ? 3 : 4", 2}, // right-associative
		{"0 ? 2 : 0 ? 3 : 4", 4},
		{"0 ? 2 : 1 ? 3 : 4", 3},
		{"(1 ? 0 : 1) ? 5 : 6", 6},
	}
	for _, c := range cases {
		res := runC(t, "int main() { return "+c.expr+"; }", "")
		if res.ExitStatus != c.want {
			t.Errorf("%s = %d, want %d", c.expr, res.ExitStatus, c.want)
		}
	}
}

func TestTernaryOnlyTakenArmEvaluated(t *testing.T) {
	res := runC(t, `
int calls = 0;
int bump(int v) { calls++; return v; }
int main() {
    int x = 1 ? bump(5) : bump(9);
    return x * 10 + calls;   // 5*10 + 1
}`, "")
	if res.ExitStatus != 51 {
		t.Errorf("got %d", res.ExitStatus)
	}
}

func TestTernaryAsMaxIdiom(t *testing.T) {
	res := runC(t, `
int max(int a, int b) { return a > b ? a : b; }
int main() { return max(3, 7) * 10 + max(9, 2); }`, "")
	if res.ExitStatus != 79 {
		t.Errorf("got %d", res.ExitStatus)
	}
}

func TestTernaryWithPointers(t *testing.T) {
	res := runC(t, `
int main() {
    int a = 1;
    int b = 2;
    int *p = a > b ? &a : &b;
    return *p;
}`, "")
	if res.ExitStatus != 2 {
		t.Errorf("got %d", res.ExitStatus)
	}
}

func TestTernaryErrors(t *testing.T) {
	cases := []string{
		"int main() { return 1 ? 2 : \"s\" != 0 ? 3 : 4; }", // fine actually? "s" != 0 is int... skip
	}
	_ = cases
	if _, err := Compile(`int main() { int *p; return 1 ? p : 3; }`); err == nil {
		t.Error("pointer/int ternary arms should fail")
	}
	if _, err := Compile(`int main() { return 1 ? 2; }`); err == nil {
		t.Error("missing colon should fail")
	}
}

func TestTernaryNullPointerArm(t *testing.T) {
	// 0 as a null pointer constant in a pointer-typed ternary.
	res := runC(t, `
int main() {
    int x = 5;
    int *p = 1 ? &x : 0;
    if (p != 0) { return *p; }
    return -1;
}`, "")
	if res.ExitStatus != 5 {
		t.Errorf("got %d", res.ExitStatus)
	}
}

func TestDoWhile(t *testing.T) {
	res := runC(t, `
int main() {
    int i = 0;
    int sum = 0;
    do {
        sum += i;
        i++;
    } while (i < 5);
    return sum;   // 0+1+2+3+4
}`, "")
	if res.ExitStatus != 10 {
		t.Errorf("got %d", res.ExitStatus)
	}
}

func TestDoWhileRunsAtLeastOnce(t *testing.T) {
	res := runC(t, `
int main() {
    int ran = 0;
    do { ran = 1; } while (0);
    return ran;
}`, "")
	if res.ExitStatus != 1 {
		t.Errorf("do body must run once, got %d", res.ExitStatus)
	}
}

func TestDoWhileBreakContinue(t *testing.T) {
	res := runC(t, `
int main() {
    int i = 0;
    int sum = 0;
    do {
        i++;
        if (i % 2 == 0) { continue; }
        if (i > 7) { break; }
        sum += i;    // 1+3+5+7
    } while (i < 100);
    return sum;
}`, "")
	if res.ExitStatus != 16 {
		t.Errorf("got %d", res.ExitStatus)
	}
}

func TestDoWhileErrors(t *testing.T) {
	if _, err := Compile("int main() { do { } until (0); return 0; }"); err == nil {
		t.Error("missing while should fail")
	}
	if _, err := Compile("int main() { do { } while (0) return 0; }"); err == nil {
		t.Error("missing semicolon should fail")
	}
}
