package minic

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks    []Token
	pos     int
	structs map[string]*Type // defined struct types, by name
}

// Parse lexes and parses a translation unit.
func Parse(src string) (*Unit, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, structs: make(map[string]*Type)}
	unit := &Unit{}
	for !p.at(TokEOF) {
		if err := p.parseTopLevel(unit); err != nil {
			return nil, err
		}
	}
	return unit, nil
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(k TokKind) bool { return p.cur().Kind == k }

func (p *parser) atPunct(s string) bool {
	return p.cur().Kind == TokPunct && p.cur().Text == s
}

func (p *parser) atKeyword(s string) bool {
	return p.cur().Kind == TokKeyword && p.cur().Text == s
}

func (p *parser) acceptPunct(s string) bool {
	if p.atPunct(s) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return cerrf(p.cur().Line, "expected %q, found %s", s, p.cur())
	}
	return nil
}

func (p *parser) expectIdent() (Token, error) {
	if !p.at(TokIdent) {
		return Token{}, cerrf(p.cur().Line, "expected identifier, found %s", p.cur())
	}
	return p.next(), nil
}

// parseType parses a base type plus pointer stars: int, char, void, int*...
func (p *parser) parseType() (*Type, error) {
	t := p.cur()
	if t.Kind != TokKeyword {
		return nil, cerrf(t.Line, "expected type, found %s", t)
	}
	var base *Type
	switch t.Text {
	case "int":
		base = IntType
	case "char":
		base = CharType
	case "void":
		base = VoidType
	case "struct":
		p.pos++
		nameTok, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		st, ok := p.structs[nameTok.Text]
		if !ok {
			return nil, cerrf(nameTok.Line, "undefined struct %q", nameTok.Text)
		}
		base = st
		for p.acceptPunct("*") {
			base = PtrTo(base)
		}
		return base, nil
	default:
		return nil, cerrf(t.Line, "expected type, found %s", t)
	}
	p.pos++
	for p.acceptPunct("*") {
		base = PtrTo(base)
	}
	return base, nil
}

func (p *parser) atType() bool {
	return p.atKeyword("int") || p.atKeyword("char") || p.atKeyword("void") ||
		p.atKeyword("struct")
}

// parseTopLevel parses one struct definition, global declaration, or
// function definition.
func (p *parser) parseTopLevel(unit *Unit) error {
	line := p.cur().Line
	// "struct name {" introduces a definition; "struct name" elsewhere is a
	// type specifier handled by parseType.
	if p.atKeyword("struct") && p.pos+2 < len(p.toks) &&
		p.toks[p.pos+1].Kind == TokIdent &&
		p.toks[p.pos+2].Kind == TokPunct && p.toks[p.pos+2].Text == "{" {
		return p.parseStructDef()
	}
	typ, err := p.parseType()
	if err != nil {
		return err
	}
	name, err := p.expectIdent()
	if err != nil {
		return err
	}

	if p.atPunct("(") { // function definition
		fn := &FuncDecl{Name: name.Text, Ret: typ, Line: line}
		p.pos++ // (
		if !p.atPunct(")") {
			for {
				pt, err := p.parseType()
				if err != nil {
					return err
				}
				if pt.Kind == TypeVoid && !pt.IsPtr() {
					// "void" alone as a parameter list
					if len(fn.Params) == 0 && p.atPunct(")") {
						break
					}
					return cerrf(p.cur().Line, "void parameter")
				}
				pn, err := p.expectIdent()
				if err != nil {
					return err
				}
				fn.Params = append(fn.Params, Param{Name: pn.Text, Type: pt})
				if !p.acceptPunct(",") {
					break
				}
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return err
		}
		body, err := p.parseBlock()
		if err != nil {
			return err
		}
		fn.Body = body
		unit.Funcs = append(unit.Funcs, fn)
		return nil
	}

	// Global variable(s).
	for {
		g := &GlobalDecl{Name: name.Text, Type: typ, Line: line}
		fullType, err := p.parseArraySuffix(typ)
		if err != nil {
			return err
		}
		g.Type = fullType
		if p.acceptPunct("=") {
			v := p.cur()
			neg := false
			if v.Kind == TokPunct && v.Text == "-" {
				neg = true
				p.pos++
				v = p.cur()
			}
			if v.Kind != TokInt && v.Kind != TokChar {
				return cerrf(v.Line, "global initializer must be a constant")
			}
			p.pos++
			g.Init = v.Int
			if neg {
				g.Init = -g.Init
			}
			g.HasInit = true
			if g.Type.IsArray() {
				return cerrf(v.Line, "array initializers are not supported")
			}
		}
		unit.Globals = append(unit.Globals, g)
		if p.acceptPunct(",") {
			name, err = p.expectIdent()
			if err != nil {
				return err
			}
			continue
		}
		break
	}
	return p.expectPunct(";")
}

func (p *parser) parseBlock() (*Block, error) {
	line := p.cur().Line
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	b := &Block{stmtBase: stmtBase{Line: line}}
	for !p.atPunct("}") {
		if p.at(TokEOF) {
			return nil, cerrf(p.cur().Line, "unexpected end of file in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.pos++ // }
	return b, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch {
	case p.atType():
		return p.parseDecl()
	case p.atKeyword("if"):
		p.pos++
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		thenB, err := p.parseBlockOrStmt()
		if err != nil {
			return nil, err
		}
		s := &IfStmt{stmtBase: stmtBase{Line: t.Line}, Cond: cond, Then: thenB}
		if p.atKeyword("else") {
			p.pos++
			elseB, err := p.parseBlockOrStmt()
			if err != nil {
				return nil, err
			}
			s.Else = elseB
		}
		return s, nil
	case p.atKeyword("while"):
		p.pos++
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		body, err := p.parseBlockOrStmt()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{stmtBase: stmtBase{Line: t.Line}, Cond: cond, Body: body}, nil
	case p.atKeyword("do"):
		p.pos++
		body, err := p.parseBlockOrStmt()
		if err != nil {
			return nil, err
		}
		if !p.atKeyword("while") {
			return nil, cerrf(p.cur().Line, "expected 'while' after do body")
		}
		p.pos++
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &DoWhileStmt{stmtBase: stmtBase{Line: t.Line}, Body: body, Cond: cond}, nil
	case p.atKeyword("for"):
		p.pos++
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		s := &ForStmt{stmtBase: stmtBase{Line: t.Line}}
		if !p.atPunct(";") {
			if p.atType() {
				d, err := p.parseDecl()
				if err != nil {
					return nil, err
				}
				s.Init = d
			} else {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				s.Init = &ExprStmt{stmtBase: stmtBase{Line: t.Line}, X: e}
				if err := p.expectPunct(";"); err != nil {
					return nil, err
				}
			}
		} else {
			p.pos++
		}
		if !p.atPunct(";") {
			c, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.Cond = c
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		if !p.atPunct(")") {
			post, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.Post = post
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		body, err := p.parseBlockOrStmt()
		if err != nil {
			return nil, err
		}
		s.Body = body
		return s, nil
	case p.atKeyword("return"):
		p.pos++
		s := &ReturnStmt{stmtBase: stmtBase{Line: t.Line}}
		if !p.atPunct(";") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.X = e
		}
		return s, p.expectPunct(";")
	case p.atKeyword("break"):
		p.pos++
		return &BreakStmt{stmtBase{Line: t.Line}}, p.expectPunct(";")
	case p.atKeyword("continue"):
		p.pos++
		return &ContinueStmt{stmtBase{Line: t.Line}}, p.expectPunct(";")
	case p.atPunct("{"):
		return p.parseBlock()
	case p.atPunct(";"):
		p.pos++
		return &Block{stmtBase: stmtBase{Line: t.Line}}, nil
	default:
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &ExprStmt{stmtBase: stmtBase{Line: t.Line}, X: e}, p.expectPunct(";")
	}
}

// parseBlockOrStmt wraps a lone statement in a block so if/while bodies are
// uniform.
func (p *parser) parseBlockOrStmt() (*Block, error) {
	if p.atPunct("{") {
		return p.parseBlock()
	}
	line := p.cur().Line
	s, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &Block{stmtBase: stmtBase{Line: line}, Stmts: []Stmt{s}}, nil
}

// parseDecl parses "type name [= init];" or "type name[len];".
func (p *parser) parseDecl() (Stmt, error) {
	line := p.cur().Line
	typ, err := p.parseType()
	if err != nil {
		return nil, err
	}
	if typ.Kind == TypeVoid && !typ.IsPtr() {
		return nil, cerrf(line, "cannot declare a void variable")
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	d := &DeclStmt{stmtBase: stmtBase{Line: line}, Name: name.Text, Type: typ}
	fullType, err := p.parseArraySuffix(typ)
	if err != nil {
		return nil, err
	}
	d.Type = fullType
	if p.acceptPunct("=") {
		if d.Type.IsArray() {
			return nil, cerrf(line, "array initializers are not supported")
		}
		e, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		d.Init = e
	}
	return d, p.expectPunct(";")
}

// Expression grammar, lowest precedence first:
//
//	expr    := assign
//	assign  := or (("=" | "+=" | ...) assign)?
//	or      := and ("||" and)*
//	and     := bitor ("&&" bitor)*
//	bitor   := bitxor ("|" bitxor)*
//	bitxor  := bitand ("^" bitand)*
//	bitand  := equality ("&" equality)*
//	equality:= rel (("==" | "!=") rel)*
//	rel     := shift (("<" | ">" | "<=" | ">=") shift)*
//	shift   := add (("<<" | ">>") add)*
//	add     := mul (("+" | "-") mul)*
//	mul     := unary (("*" | "/" | "%") unary)*
//	unary   := ("-" | "!" | "~" | "*" | "&" | "++" | "--") unary | postfix
//	postfix := primary ("[" expr "]" | "++" | "--")*
//	primary := literal | ident | call | "(" expr ")" | sizeof "(" type ")"
func (p *parser) parseExpr() (Expr, error) { return p.parseAssign() }

var compoundOps = map[string]string{
	"+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%", "<<=": "<<", ">>=": ">>",
}

func (p *parser) parseAssign() (Expr, error) {
	lhs, err := p.parseConditional()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.Kind == TokPunct {
		if t.Text == "=" {
			p.pos++
			rhs, err := p.parseAssign()
			if err != nil {
				return nil, err
			}
			return &Assign{exprBase: exprBase{Line: t.Line}, LHS: lhs, RHS: rhs}, nil
		}
		if base, ok := compoundOps[t.Text]; ok {
			p.pos++
			rhs, err := p.parseAssign()
			if err != nil {
				return nil, err
			}
			// Desugar a op= b into a = a op b. The lvalue is evaluated
			// twice, which is fine for the subset (no side-effecting
			// lvalues beyond the variable itself).
			return &Assign{
				exprBase: exprBase{Line: t.Line},
				LHS:      lhs,
				RHS:      &Binary{exprBase: exprBase{Line: t.Line}, Op: base, L: lhs, R: rhs},
			}, nil
		}
	}
	return lhs, nil
}

// parseConditional parses c ? a : b above the binary operators.
func (p *parser) parseConditional() (Expr, error) {
	cond, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if !p.atPunct("?") {
		return cond, nil
	}
	line := p.cur().Line
	p.pos++
	thenE, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(":"); err != nil {
		return nil, err
	}
	elseE, err := p.parseConditional()
	if err != nil {
		return nil, err
	}
	return &Cond{exprBase: exprBase{Line: line}, C: cond, Then: thenE, Else: elseE}, nil
}

// binary precedence levels, lowest to highest.
var precLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", ">", "<=", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *parser) parseBinary(level int) (Expr, error) {
	if level >= len(precLevels) {
		return p.parseUnary()
	}
	lhs, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind != TokPunct || !contains(precLevels[level], t.Text) {
			return lhs, nil
		}
		p.pos++
		rhs, err := p.parseBinary(level + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{exprBase: exprBase{Line: t.Line}, Op: t.Text, L: lhs, R: rhs}
	}
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.cur()
	if t.Kind == TokPunct {
		switch t.Text {
		case "-", "!", "~", "*", "&":
			p.pos++
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &Unary{exprBase: exprBase{Line: t.Line}, Op: t.Text, X: x}, nil
		case "++", "--":
			// Pre-increment desugars to (x = x +/- 1).
			p.pos++
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			op := "+"
			if t.Text == "--" {
				op = "-"
			}
			return &Assign{
				exprBase: exprBase{Line: t.Line},
				LHS:      x,
				RHS: &Binary{exprBase: exprBase{Line: t.Line}, Op: op, L: x,
					R: &IntLit{exprBase: exprBase{Line: t.Line}, Value: 1}},
			}, nil
		}
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		switch {
		case p.atPunct("["):
			p.pos++
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			x = &Index{exprBase: exprBase{Line: t.Line}, Arr: x, Idx: idx}
		case p.atPunct("."), p.atPunct("->"):
			arrow := t.Text == "->"
			p.pos++
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			x = &Member{exprBase: exprBase{Line: t.Line}, X: x, Name: name.Text, Arrow: arrow}
		case p.atPunct("++"), p.atPunct("--"):
			// Post-increment in statement position behaves like
			// pre-increment for this subset; its value is the updated one.
			// The course's examples only use it for side effects.
			op := "+"
			if t.Text == "--" {
				op = "-"
			}
			p.pos++
			x = &Assign{
				exprBase: exprBase{Line: t.Line},
				LHS:      x,
				RHS: &Binary{exprBase: exprBase{Line: t.Line}, Op: op, L: x,
					R: &IntLit{exprBase: exprBase{Line: t.Line}, Value: 1}},
			}
		default:
			return x, nil
		}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.Kind == TokInt, t.Kind == TokChar:
		p.pos++
		return &IntLit{exprBase: exprBase{Line: t.Line}, Value: t.Int}, nil
	case t.Kind == TokString:
		p.pos++
		return &StrLit{exprBase: exprBase{Line: t.Line}, Value: t.Str}, nil
	case t.Kind == TokKeyword && t.Text == "sizeof":
		p.pos++
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		typ, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return &IntLit{exprBase: exprBase{Line: t.Line}, Value: typ.Size()}, nil
	case t.Kind == TokIdent:
		p.pos++
		if p.atPunct("(") {
			p.pos++
			call := &Call{exprBase: exprBase{Line: t.Line}, Name: t.Text}
			if !p.atPunct(")") {
				for {
					a, err := p.parseAssign()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.acceptPunct(",") {
						break
					}
				}
			}
			return call, p.expectPunct(")")
		}
		return &VarRef{exprBase: exprBase{Line: t.Line}, Name: t.Text}, nil
	case t.Kind == TokPunct && t.Text == "(":
		p.pos++
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return e, p.expectPunct(")")
	default:
		return nil, cerrf(t.Line, "unexpected token %s", t)
	}
}

// parseArraySuffix consumes zero or more "[n]" suffixes after a declared
// name and wraps base into (possibly nested) array types, outer dimension
// first: "int m[3][4]" yields (int[4])[3].
func (p *parser) parseArraySuffix(base *Type) (*Type, error) {
	var dims []int32
	for p.acceptPunct("[") {
		lenTok := p.cur()
		if lenTok.Kind != TokInt || lenTok.Int <= 0 {
			return nil, cerrf(lenTok.Line, "array length must be a positive constant")
		}
		p.pos++
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		dims = append(dims, lenTok.Int)
	}
	t := base
	for i := len(dims) - 1; i >= 0; i-- {
		t = ArrayOf(t, dims[i])
	}
	return t, nil
}

// parseStructDef parses "struct name { type field; ... };", registering
// the type before its fields so self-referential pointers resolve.
func (p *parser) parseStructDef() error {
	p.pos++ // struct
	nameTok, err := p.expectIdent()
	if err != nil {
		return err
	}
	if _, dup := p.structs[nameTok.Text]; dup {
		return cerrf(nameTok.Line, "redefinition of struct %q", nameTok.Text)
	}
	st := &Type{Kind: TypeStruct, StructName: nameTok.Text}
	p.structs[nameTok.Text] = st
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	var offset int32
	for !p.atPunct("}") {
		ft, err := p.parseType()
		if err != nil {
			return err
		}
		if ft.Kind == TypeVoid {
			return cerrf(p.cur().Line, "void struct field")
		}
		if ft.Kind == TypeStruct && ft.StructName == st.StructName {
			return cerrf(p.cur().Line, "struct %q contains itself", st.StructName)
		}
		fn, err := p.expectIdent()
		if err != nil {
			return err
		}
		full, err := p.parseArraySuffix(ft)
		if err != nil {
			return err
		}
		if err := p.expectPunct(";"); err != nil {
			return err
		}
		for _, existing := range st.Fields {
			if existing.Name == fn.Text {
				return cerrf(fn.Line, "duplicate field %q", fn.Text)
			}
		}
		// Align int/pointer/struct/array fields to 4, chars to 1.
		align := int32(4)
		if full.Kind == TypeChar {
			align = 1
		}
		offset = (offset + align - 1) / align * align
		st.Fields = append(st.Fields, Field{Name: fn.Text, Type: full, Offset: offset})
		offset += full.Size()
	}
	p.pos++ // }
	if len(st.Fields) == 0 {
		return cerrf(nameTok.Line, "empty struct %q", nameTok.Text)
	}
	st.ByteSize = (offset + 3) &^ 3
	return p.expectPunct(";")
}
