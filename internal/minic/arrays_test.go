package minic

import (
	"strings"
	"testing"
)

func TestTwoDimensionalArray(t *testing.T) {
	res := runC(t, `
int main() {
    int m[3][4];
    for (int i = 0; i < 3; i++) {
        for (int j = 0; j < 4; j++) {
            m[i][j] = i * 10 + j;
        }
    }
    return m[2][3] * 100 + m[1][2] + m[0][0];
}`, "")
	// m[2][3] = 23, m[1][2] = 12 -> 2312.
	if res.ExitStatus != 23*100+12 {
		t.Errorf("got %d", res.ExitStatus)
	}
}

func TestTwoDArrayRowDecay(t *testing.T) {
	// m[i] decays to int*, usable as a row pointer.
	res := runC(t, `
int rowsum(int *row, int n) {
    int s = 0;
    for (int i = 0; i < n; i++) { s += row[i]; }
    return s;
}
int main() {
    int m[2][3];
    for (int j = 0; j < 3; j++) { m[0][j] = j + 1; m[1][j] = 10 * (j + 1); }
    return rowsum(m[0], 3) + rowsum(m[1], 3);   // 6 + 60
}`, "")
	if res.ExitStatus != 66 {
		t.Errorf("got %d", res.ExitStatus)
	}
}

func TestGlobal2DArray(t *testing.T) {
	res := runC(t, `
int grid[4][4];
int main() {
    grid[3][3] = 9;
    grid[0][1] = 2;
    return grid[3][3] * 10 + grid[0][1] + grid[2][2];
}`, "")
	if res.ExitStatus != 92 {
		t.Errorf("got %d", res.ExitStatus)
	}
}

func TestChar2DArray(t *testing.T) {
	res := runC(t, `
int main() {
    char rows[2][4];
    rows[0][0] = 'h'; rows[0][1] = 'i'; rows[0][2] = '\0';
    rows[1][0] = 'y'; rows[1][1] = 'o'; rows[1][2] = '\0';
    print_str(rows[0]);
    print_str(rows[1]);
    return rows[1][0];
}`, "")
	if res.Stdout != "hiyo" {
		t.Errorf("stdout = %q", res.Stdout)
	}
	if res.ExitStatus != 'y' {
		t.Errorf("exit = %d", res.ExitStatus)
	}
}

func TestArrayTypeProperties(t *testing.T) {
	arr := ArrayOf(ArrayOf(IntType, 4), 3)
	if arr.Size() != 48 {
		t.Errorf("size = %d", arr.Size())
	}
	if arr.String() != "int[4][3]" {
		t.Errorf("string = %q", arr.String())
	}
	if !arr.Equal(ArrayOf(ArrayOf(IntType, 4), 3)) {
		t.Error("equal arrays not equal")
	}
	if arr.Equal(ArrayOf(ArrayOf(IntType, 5), 3)) {
		t.Error("different inner lengths equal")
	}
	if !arr.IsArray() || arr.IsPtr() {
		t.Error("kind predicates")
	}
}

func TestArrayErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"2D assign whole row", "int main() { int m[2][2]; int r[2]; m[0] = r; return 0; }"},
		{"array self assign", "int main() { int a[2][2]; int b[2][2]; a = b; return 0; }"},
		{"zero dim", "int main() { int m[2][0]; return 0; }"},
		{"negative dim", "int main() { int m[-1]; return 0; }"},
		{"global array init", "int g[2][2] = 5; int main() { return 0; }"},
	}
	for _, c := range cases {
		if _, err := Compile(c.src); err == nil {
			t.Errorf("%s: expected compile error", c.name)
		}
	}
}

func TestAddressOf2DArray(t *testing.T) {
	res := runC(t, `
int main() {
    int m[2][2];
    m[1][1] = 7;
    int *p = &m[1][1];
    return *p;
}`, "")
	if res.ExitStatus != 7 {
		t.Errorf("got %d", res.ExitStatus)
	}
}

// The Lab 6 capstone: Conway's Game of Life written in mini-C with 2D
// arrays, compiled through the full stack and run for real. A blinker must
// oscillate exactly as the specification says.
func TestGameOfLifeInMiniC(t *testing.T) {
	res := runC(t, lifeInC, "")
	want := strings.Join([]string{
		".....",
		".....",
		".@@@.",
		".....",
		".....",
		"",
		".....",
		"..@..",
		"..@..",
		"..@..",
		".....",
		"",
		".....",
		".....",
		".@@@.",
		".....",
		".....",
		"",
		"",
	}, "\n")
	if res.Stdout != want {
		t.Errorf("life output:\n%s\nwant:\n%s", res.Stdout, want)
	}
}

// lifeInC is a complete serial Game of Life on a 5x5 torus, the Lab 6
// assignment in the course's own language.
const lifeInC = `
int N = 5;
int cur[5][5];
int nxt[5][5];

int neighbors(int r, int c) {
    int count = 0;
    for (int dr = -1; dr <= 1; dr++) {
        for (int dc = -1; dc <= 1; dc++) {
            if (dr == 0 && dc == 0) { continue; }
            int rr = (r + dr + N) % N;
            int cc = (c + dc + N) % N;
            count += cur[rr][cc];
        }
    }
    return count;
}

void step() {
    for (int r = 0; r < N; r++) {
        for (int c = 0; c < N; c++) {
            int n = neighbors(r, c);
            if (cur[r][c] == 1 && (n == 2 || n == 3)) { nxt[r][c] = 1; }
            else if (cur[r][c] == 0 && n == 3) { nxt[r][c] = 1; }
            else { nxt[r][c] = 0; }
        }
    }
    for (int r = 0; r < N; r++) {
        for (int c = 0; c < N; c++) { cur[r][c] = nxt[r][c]; }
    }
}

void show() {
    for (int r = 0; r < N; r++) {
        for (int c = 0; c < N; c++) {
            if (cur[r][c] == 1) { print_char('@'); }
            else { print_char('.'); }
        }
        print_char('\n');
    }
    print_char('\n');
}

int main() {
    cur[2][1] = 1;
    cur[2][2] = 1;
    cur[2][3] = 1;
    show();
    step();
    show();
    step();
    show();
    return 0;
}`
