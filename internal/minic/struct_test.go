package minic

import (
	"strings"
	"testing"
)

func TestStructBasics(t *testing.T) {
	res := runC(t, `
struct point {
    int x;
    int y;
};
int main() {
    struct point p;
    p.x = 3;
    p.y = 4;
    return p.x * p.x + p.y * p.y;   // 25
}`, "")
	if res.ExitStatus != 25 {
		t.Errorf("got %d", res.ExitStatus)
	}
}

func TestStructPointerArrow(t *testing.T) {
	res := runC(t, `
struct point {
    int x;
    int y;
};
void scale(struct point *p, int k) {
    p->x *= k;
    p->y *= k;
}
int main() {
    struct point p;
    p.x = 2;
    p.y = 5;
    scale(&p, 10);
    return p.x + p.y;   // 70
}`, "")
	if res.ExitStatus != 70 {
		t.Errorf("got %d", res.ExitStatus)
	}
}

func TestStructSizeofAndLayout(t *testing.T) {
	res := runC(t, `
struct mixed {
    char tag;
    int value;
    char name[6];
};
int main() {
    return sizeof(struct mixed);
}`, "")
	// tag at 0, value aligned to 4, name at 8..13, size rounded to 16.
	if res.ExitStatus != 16 {
		t.Errorf("sizeof = %d, want 16", res.ExitStatus)
	}
}

func TestStructWithArrayField(t *testing.T) {
	res := runC(t, `
struct vec {
    int n;
    int data[4];
};
int main() {
    struct vec v;
    v.n = 4;
    for (int i = 0; i < v.n; i++) { v.data[i] = i * i; }
    int sum = 0;
    for (int i = 0; i < v.n; i++) { sum += v.data[i]; }
    return sum;   // 0+1+4+9
}`, "")
	if res.ExitStatus != 14 {
		t.Errorf("got %d", res.ExitStatus)
	}
}

func TestStructCharField(t *testing.T) {
	res := runC(t, `
struct rec {
    char c;
    int  v;
};
int main() {
    struct rec r;
    r.c = 'A';
    r.v = 1000;
    return r.c + r.v % 256;   // 65 + 232
}`, "")
	if res.ExitStatus != 65+1000%256 {
		t.Errorf("got %d", res.ExitStatus)
	}
}

// The classic: a malloc'd singly linked list, the course's dynamic-memory
// capstone, with a clean memcheck report.
func TestLinkedList(t *testing.T) {
	res := runC(t, `
struct node {
    int val;
    struct node *next;
};
int main() {
    struct node *head = 0;
    for (int i = 5; i >= 1; i--) {
        struct node *n = malloc(sizeof(struct node));
        n->val = i;
        n->next = head;
        head = n;
    }
    int sum = 0;
    struct node *cur = head;
    while (cur != 0) {
        sum = sum * 10 + cur->val;
        cur = cur->next;
    }
    while (head != 0) {
        struct node *next = head->next;
        free(head);
        head = next;
    }
    return sum % 30000;   // digits 12345 -> 12345 % 30000
}`, "")
	if res.ExitStatus != 12345%30000 {
		t.Errorf("list sum = %d", res.ExitStatus)
	}
	if !strings.Contains(res.Memcheck, "no leaks are possible") {
		t.Errorf("list should free cleanly:\n%s", res.Memcheck)
	}
}

func TestGlobalStruct(t *testing.T) {
	res := runC(t, `
struct counter {
    int hits;
    int misses;
};
struct counter stats;
void hit() { stats.hits++; }
int main() {
    hit(); hit(); hit();
    stats.misses = 1;
    return stats.hits * 10 + stats.misses;
}`, "")
	if res.ExitStatus != 31 {
		t.Errorf("got %d", res.ExitStatus)
	}
}

func TestNestedStructs(t *testing.T) {
	res := runC(t, `
struct inner {
    int a;
    int b;
};
struct outer {
    int tag;
    struct inner in;
};
int main() {
    struct outer o;
    o.tag = 1;
    o.in.a = 20;
    o.in.b = 300;
    return o.tag + o.in.a + o.in.b;
}`, "")
	if res.ExitStatus != 321 {
		t.Errorf("got %d", res.ExitStatus)
	}
}

func TestStructErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"undefined struct", "int main() { struct nope x; return 0; }"},
		{"redefinition", "struct s { int a; };\nstruct s { int b; };\nint main() { return 0; }"},
		{"empty struct", "struct s { };\nint main() { return 0; }"},
		{"duplicate field", "struct s { int a; int a; };\nint main() { return 0; }"},
		{"self containment", "struct s { struct s inner; };\nint main() { return 0; }"},
		{"void field", "struct s { void v; };\nint main() { return 0; }"},
		{"missing field", "struct s { int a; };\nint main() { struct s x; return x.b; }"},
		{"dot on non-struct", "int main() { int x; return x.a; }"},
		{"arrow on non-pointer", "struct s { int a; };\nint main() { struct s x; return x->a; }"},
		{"struct as value", "struct s { int a; };\nint main() { struct s x; struct s y; y = x; return 0; }"},
		{"struct param", "struct s { int a; };\nint f(struct s x) { return 0; }\nint main() { return 0; }"},
		{"struct return", "struct s { int a; };\nstruct s f() { }\nint main() { return 0; }"},
		{"struct initializer", "struct s { int a; };\nint main() { struct s x = 3; return 0; }"},
	}
	for _, c := range cases {
		if _, err := Compile(c.src); err == nil {
			t.Errorf("%s: expected compile error", c.name)
		}
	}
}

func TestAddressOfStructAndFields(t *testing.T) {
	res := runC(t, `
struct pair {
    int a;
    int b;
};
int main() {
    struct pair p;
    struct pair *q = &p;
    q->a = 7;
    int *pb = &p.b;
    *pb = 8;
    return p.a * 10 + q->b;
}`, "")
	if res.ExitStatus != 78 {
		t.Errorf("got %d", res.ExitStatus)
	}
}
