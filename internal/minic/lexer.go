// Package minic compiles the C subset CS 31 teaches down to the course's
// IA-32 assembly (package asm), completing the top of the vertical slice:
// C source -> assembly -> machine execution -> memory trace. The subset
// covers ints, chars, pointers, arrays, strings, functions with stack
// frames, control flow (if/else, while, for, break/continue), the full
// binary/unary operator set with short-circuit && and ||, globals, and the
// course's I/O builtins (print_int, print_str, read_int, malloc, exit).
package minic

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// TokKind classifies a lexical token.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokInt    // integer literal
	TokChar   // character literal
	TokString // string literal
	TokPunct  // operator or punctuation
	TokKeyword
)

var keywords = map[string]bool{
	"int": true, "char": true, "void": true, "if": true, "else": true,
	"while": true, "do": true, "struct": true, "for": true, "return": true, "break": true,
	"continue": true, "sizeof": true,
}

// Token is one lexical token with its source position.
type Token struct {
	Kind TokKind
	Text string
	Int  int32 // value for TokInt and TokChar
	Str  string
	Line int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of file"
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

// CompileError is a lexing, parsing, or semantic error with a line number.
type CompileError struct {
	Line int
	Msg  string
}

func (e *CompileError) Error() string {
	return fmt.Sprintf("minic: line %d: %s", e.Line, e.Msg)
}

func cerrf(line int, format string, args ...interface{}) error {
	return &CompileError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// multi-character punctuation, longest first.
var puncts = []string{
	"<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
	"+=", "-=", "*=", "/=", "%=", "++", "--", "->",
	"+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "~",
	"(", ")", "{", "}", "[", "]", ";", ",", "?", ":", ".",
}

// Lex tokenizes mini-C source, handling // and /* */ comments.
func Lex(src string) ([]Token, error) {
	var toks []Token
	line := 1
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			end := strings.Index(src[i+2:], "*/")
			if end < 0 {
				return nil, cerrf(line, "unterminated block comment")
			}
			line += strings.Count(src[i:i+2+end+2], "\n")
			i += 2 + end + 2
		case unicode.IsLetter(rune(c)) || c == '_':
			start := i
			for i < n && (isIdentChar(src[i])) {
				i++
			}
			text := src[start:i]
			kind := TokIdent
			if keywords[text] {
				kind = TokKeyword
			}
			toks = append(toks, Token{Kind: kind, Text: text, Line: line})
		case c >= '0' && c <= '9':
			start := i
			for i < n && (isIdentChar(src[i])) {
				i++
			}
			text := src[start:i]
			v, err := strconv.ParseInt(text, 0, 64)
			if err != nil || v > 1<<31-1 {
				return nil, cerrf(line, "bad integer literal %q", text)
			}
			toks = append(toks, Token{Kind: TokInt, Text: text, Int: int32(v), Line: line})
		case c == '\'':
			j := i + 1
			var v byte
			if j < n && src[j] == '\\' {
				if j+1 >= n {
					return nil, cerrf(line, "unterminated char literal")
				}
				e, ok := unescape(src[j+1])
				if !ok {
					return nil, cerrf(line, "bad escape '\\%c'", src[j+1])
				}
				v = e
				j += 2
			} else if j < n {
				v = src[j]
				j++
			}
			if j >= n || src[j] != '\'' {
				return nil, cerrf(line, "unterminated char literal")
			}
			toks = append(toks, Token{Kind: TokChar, Text: src[i : j+1], Int: int32(v), Line: line})
			i = j + 1
		case c == '"':
			j := i + 1
			var sb strings.Builder
			for j < n && src[j] != '"' {
				if src[j] == '\\' {
					if j+1 >= n {
						return nil, cerrf(line, "unterminated string literal")
					}
					e, ok := unescape(src[j+1])
					if !ok {
						return nil, cerrf(line, "bad escape in string")
					}
					sb.WriteByte(e)
					j += 2
					continue
				}
				if src[j] == '\n' {
					return nil, cerrf(line, "newline in string literal")
				}
				sb.WriteByte(src[j])
				j++
			}
			if j >= n {
				return nil, cerrf(line, "unterminated string literal")
			}
			toks = append(toks, Token{Kind: TokString, Text: src[i : j+1], Str: sb.String(), Line: line})
			i = j + 1
		default:
			matched := false
			for _, p := range puncts {
				if strings.HasPrefix(src[i:], p) {
					toks = append(toks, Token{Kind: TokPunct, Text: p, Line: line})
					i += len(p)
					matched = true
					break
				}
			}
			if !matched {
				return nil, cerrf(line, "unexpected character %q", c)
			}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Line: line})
	return toks, nil
}

func isIdentChar(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

func unescape(c byte) (byte, bool) {
	switch c {
	case 'n':
		return '\n', true
	case 't':
		return '\t', true
	case 'r':
		return '\r', true
	case '0':
		return 0, true
	case '\\':
		return '\\', true
	case '\'':
		return '\'', true
	case '"':
		return '"', true
	default:
		return 0, false
	}
}
