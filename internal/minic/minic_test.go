package minic

import (
	"strings"
	"testing"
)

// runC compiles and runs a program, failing the test on any error.
func runC(t *testing.T, src, stdin string) *RunResult {
	t.Helper()
	res, err := Run(src, stdin, 0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestReturnConstant(t *testing.T) {
	res := runC(t, "int main() { return 42; }", "")
	if res.ExitStatus != 42 {
		t.Errorf("exit = %d", res.ExitStatus)
	}
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		expr string
		want int32
	}{
		{"1 + 2 * 3", 7},
		{"(1 + 2) * 3", 9},
		{"10 - 4 - 3", 3},
		{"17 / 5", 3},
		{"17 % 5", 2},
		{"-17 / 5", -3},
		{"-17 % 5", -2},
		{"1 << 4", 16},
		{"256 >> 3", 32},
		{"-16 >> 2", -4},
		{"6 & 3", 2},
		{"6 | 3", 7},
		{"6 ^ 3", 5},
		{"~0", -1},
		{"-(5)", -5},
		{"!0", 1},
		{"!7", 0},
		{"1 < 2", 1},
		{"2 < 1", 0},
		{"2 <= 2", 1},
		{"3 > 2", 1},
		{"3 >= 4", 0},
		{"5 == 5", 1},
		{"5 != 5", 0},
		{"-1 < 1", 1}, // signed comparison
		{"1 && 2", 1},
		{"1 && 0", 0},
		{"0 || 0", 0},
		{"0 || 3", 1},
		{"sizeof(int)", 4},
		{"sizeof(char)", 1},
		{"sizeof(int*)", 4},
		{"'A'", 65},
		{"'\\n'", 10},
	}
	for _, c := range cases {
		src := "int main() { return " + c.expr + "; }"
		res := runC(t, src, "")
		if res.ExitStatus != c.want {
			t.Errorf("%s = %d, want %d", c.expr, res.ExitStatus, c.want)
		}
	}
}

func TestVariablesAndAssignment(t *testing.T) {
	res := runC(t, `
int main() {
    int x = 10;
    int y;
    y = x * 2;
    x = x + y;
    x += 5;
    x -= 1;
    x *= 2;
    x /= 3;
    return x;
}`, "")
	// x=10,y=20 -> x=30 -> 35 -> 34 -> 68 -> 22
	if res.ExitStatus != 22 {
		t.Errorf("exit = %d", res.ExitStatus)
	}
}

func TestIfElseChains(t *testing.T) {
	src := `
int classify(int x) {
    if (x < 0) { return -1; }
    else if (x == 0) { return 0; }
    else { return 1; }
}
int main() { return classify(%s); }`
	cases := map[string]int32{"-5": -1, "0": 0, "7": 1}
	for arg, want := range cases {
		res := runC(t, strings.Replace(src, "%s", arg, 1), "")
		if res.ExitStatus != want {
			t.Errorf("classify(%s) = %d, want %d", arg, res.ExitStatus, want)
		}
	}
}

func TestWhileLoop(t *testing.T) {
	res := runC(t, `
int main() {
    int sum = 0;
    int i = 1;
    while (i <= 10) {
        sum = sum + i;
        i++;
    }
    return sum;
}`, "")
	if res.ExitStatus != 55 {
		t.Errorf("sum = %d", res.ExitStatus)
	}
}

func TestForLoopWithBreakContinue(t *testing.T) {
	res := runC(t, `
int main() {
    int sum = 0;
    for (int i = 0; i < 100; i++) {
        if (i % 2 == 0) { continue; }
        if (i > 10) { break; }
        sum += i;   // 1+3+5+7+9 = 25
    }
    return sum;
}`, "")
	if res.ExitStatus != 25 {
		t.Errorf("sum = %d", res.ExitStatus)
	}
}

func TestFunctionsAndRecursion(t *testing.T) {
	res := runC(t, `
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
int main() { return fib(10); }`, "")
	if res.ExitStatus != 55 {
		t.Errorf("fib(10) = %d", res.ExitStatus)
	}
}

func TestMultipleArgs(t *testing.T) {
	res := runC(t, `
int combine(int a, int b, int c, int d) {
    return a * 1000 + b * 100 + c * 10 + d;
}
int main() { return combine(1, 2, 3, 4) % 256; }`, "")
	if res.ExitStatus != 1234%256 {
		t.Errorf("combine = %d", res.ExitStatus)
	}
}

func TestPointers(t *testing.T) {
	res := runC(t, `
void set(int *p, int v) { *p = v; }
int main() {
    int x = 1;
    int *p = &x;
    *p = 5;
    set(p, *p + 2);
    return x;
}`, "")
	if res.ExitStatus != 7 {
		t.Errorf("x = %d", res.ExitStatus)
	}
}

func TestSwapViaPointers(t *testing.T) {
	res := runC(t, `
void swap(int *a, int *b) {
    int tmp = *a;
    *a = *b;
    *b = tmp;
}
int main() {
    int x = 3;
    int y = 4;
    swap(&x, &y);
    return x * 10 + y;   // 43
}`, "")
	if res.ExitStatus != 43 {
		t.Errorf("got %d", res.ExitStatus)
	}
}

func TestLocalArrays(t *testing.T) {
	res := runC(t, `
int main() {
    int a[5];
    for (int i = 0; i < 5; i++) { a[i] = i * i; }
    int sum = 0;
    for (int i = 0; i < 5; i++) { sum += a[i]; }
    return sum;   // 0+1+4+9+16 = 30
}`, "")
	if res.ExitStatus != 30 {
		t.Errorf("sum = %d", res.ExitStatus)
	}
}

func TestArrayDecayToPointer(t *testing.T) {
	res := runC(t, `
int sum(int *a, int n) {
    int s = 0;
    for (int i = 0; i < n; i++) { s += a[i]; }
    return s;
}
int main() {
    int a[4];
    a[0] = 1; a[1] = 2; a[2] = 3; a[3] = 4;
    return sum(a, 4);
}`, "")
	if res.ExitStatus != 10 {
		t.Errorf("sum = %d", res.ExitStatus)
	}
}

func TestPointerArithmetic(t *testing.T) {
	res := runC(t, `
int main() {
    int a[4];
    a[0] = 10; a[1] = 20; a[2] = 30; a[3] = 40;
    int *p = a;
    p = p + 2;
    int diff = p - a;    // 2 elements
    return *p + diff;    // 30 + 2
}`, "")
	if res.ExitStatus != 32 {
		t.Errorf("got %d", res.ExitStatus)
	}
}

func TestCharAndStrings(t *testing.T) {
	res := runC(t, `
int strlen(char *s) {
    int n = 0;
    while (s[n] != '\0') { n++; }
    return n;
}
int main() {
    char *msg = "hello";
    return strlen(msg);
}`, "")
	if res.ExitStatus != 5 {
		t.Errorf("strlen = %d", res.ExitStatus)
	}
}

func TestCharArrayWrite(t *testing.T) {
	res := runC(t, `
int main() {
    char buf[8];
    buf[0] = 'h';
    buf[1] = 'i';
    buf[2] = '\0';
    print_str(buf);
    return buf[1];
}`, "")
	if res.Stdout != "hi" {
		t.Errorf("stdout = %q", res.Stdout)
	}
	if res.ExitStatus != 'i' {
		t.Errorf("exit = %d", res.ExitStatus)
	}
}

func TestGlobals(t *testing.T) {
	res := runC(t, `
int counter = 5;
int table[10];
int bump(int by) {
    counter += by;
    return counter;
}
int main() {
    bump(3);
    bump(2);
    table[4] = counter;
    return table[4];
}`, "")
	if res.ExitStatus != 10 {
		t.Errorf("counter = %d", res.ExitStatus)
	}
}

func TestBuiltinsIO(t *testing.T) {
	res := runC(t, `
int main() {
    int x = read_int();
    int y = read_int();
    print_int(x + y);
    print_char('\n');
    print_str("done\n");
    return 0;
}`, "20 22\n")
	if res.Stdout != "42\ndone\n" {
		t.Errorf("stdout = %q", res.Stdout)
	}
}

func TestMalloc(t *testing.T) {
	res := runC(t, `
int main() {
    int *a = malloc(10 * sizeof(int));
    for (int i = 0; i < 10; i++) { a[i] = i; }
    int sum = 0;
    for (int i = 0; i < 10; i++) { sum += a[i]; }
    return sum;
}`, "")
	if res.ExitStatus != 45 {
		t.Errorf("sum = %d", res.ExitStatus)
	}
}

func TestExitBuiltin(t *testing.T) {
	res := runC(t, `
int main() {
    print_str("before");
    exit(3);
    print_str("after");
    return 0;
}`, "")
	if res.ExitStatus != 3 || res.Stdout != "before" {
		t.Errorf("exit=%d stdout=%q", res.ExitStatus, res.Stdout)
	}
}

func TestShortCircuitSideEffects(t *testing.T) {
	res := runC(t, `
int calls = 0;
int bump() { calls++; return 1; }
int main() {
    int a = 0 && bump();   // bump not called
    int b = 1 || bump();   // bump not called
    int c = 1 && bump();   // called
    return calls * 100 + a * 10 + b + c;
}`, "")
	// calls=1, a=0, b=1, c=1 -> 102
	if res.ExitStatus != 102 {
		t.Errorf("got %d", res.ExitStatus)
	}
}

func TestNestedLoopsMatrix(t *testing.T) {
	// The caching exercise's loop nest, in miniature: row-major traversal of
	// a flattened 2D array.
	res := runC(t, `
int main() {
    int m[12];
    for (int i = 0; i < 3; i++) {
        for (int j = 0; j < 4; j++) {
            m[i * 4 + j] = i + j;
        }
    }
    int sum = 0;
    for (int k = 0; k < 12; k++) { sum += m[k]; }
    return sum;
}`, "")
	// sum over i of sum over j of (i+j) = 3*4*avg = (0..2 each*4) + (0..3 each*3) = 12+18=30
	if res.ExitStatus != 30 {
		t.Errorf("sum = %d", res.ExitStatus)
	}
}

func TestSortingProgram(t *testing.T) {
	// Lab 2 in mini-C: bubble sort.
	res := runC(t, `
void sort(int *a, int n) {
    for (int i = 0; i < n - 1; i++) {
        for (int j = 0; j < n - 1 - i; j++) {
            if (a[j] > a[j + 1]) {
                int t = a[j];
                a[j] = a[j + 1];
                a[j + 1] = t;
            }
        }
    }
}
int main() {
    int a[6];
    a[0] = 5; a[1] = 2; a[2] = 9; a[3] = 1; a[4] = 7; a[5] = 3;
    sort(a, 6);
    for (int i = 0; i < 6; i++) { print_int(a[i]); print_char(' '); }
    return a[0] * 10 + a[5];
}`, "")
	if res.Stdout != "1 2 3 5 7 9 " {
		t.Errorf("stdout = %q", res.Stdout)
	}
	if res.ExitStatus != 19 {
		t.Errorf("exit = %d", res.ExitStatus)
	}
}

func TestVoidFunction(t *testing.T) {
	res := runC(t, `
int g = 0;
void touch() { g = 9; return; }
int main() { touch(); return g; }`, "")
	if res.ExitStatus != 9 {
		t.Errorf("g = %d", res.ExitStatus)
	}
}

func TestTracedRun(t *testing.T) {
	res, err := RunTraced(`
int main() {
    int a[8];
    for (int i = 0; i < 8; i++) { a[i] = i; }
    return a[7];
}`, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitStatus != 7 {
		t.Errorf("exit = %d", res.ExitStatus)
	}
	if len(res.Trace) == 0 {
		t.Error("traced run produced no memory events")
	}
	writes := 0
	for _, e := range res.Trace {
		if e.Write {
			writes++
		}
	}
	if writes < 8 {
		t.Errorf("expected at least 8 writes, got %d", writes)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"no main", "int f() { return 1; }"},
		{"undefined var", "int main() { return x; }"},
		{"undefined func", "int main() { return f(); }"},
		{"arity", "int f(int a) { return a; } int main() { return f(); }"},
		{"dup function", "int f() { return 1; } int f() { return 2; } int main() { return 0; }"},
		{"dup global", "int x; int x; int main() { return 0; }"},
		{"dup local", "int main() { int x; int x; return 0; }"},
		{"void var", "int main() { void v; return 0; }"},
		{"break outside loop", "int main() { break; return 0; }"},
		{"continue outside loop", "int main() { continue; return 0; }"},
		{"assign to literal", "int main() { 3 = 4; return 0; }"},
		{"deref int", "int main() { int x; return *x; }"},
		{"void deref", "int main() { return *malloc(4); }"},
		{"ptr mismatch", "int main() { int x; char *p; p = &x; return 0; }"},
		{"return value from void", "void f() { return 3; } int main() { f(); return 0; }"},
		{"missing return value", "int f() { return; } int main() { return f(); }"},
		{"redefine builtin", "int malloc(int n) { return n; } int main() { return 0; }"},
		{"bad token", "int main() { return @; }"},
		{"unterminated string", `int main() { print_str("abc); return 0; }`},
		{"unterminated comment", "/* int main() { return 0; }"},
		{"array assign", "int main() { int a[3]; int b[3]; a = b; return 0; }"},
		{"index non-pointer", "int main() { int x; return x[0]; }"},
		{"ptr plus ptr", "int main() { int a[2]; int b[2]; return a + b != 0; }"},
		{"negative array len", "int main() { int a[0]; return 0; }"},
		{"global array init", "int a[3] = 5; int main() { return 0; }"},
		{"call non-function var", "int x; int main() { return x(); }"},
	}
	for _, c := range cases {
		if _, err := Compile(c.src); err == nil {
			t.Errorf("%s: expected compile error", c.name)
		}
	}
}

func TestCompileErrorHasLine(t *testing.T) {
	_, err := Compile("int main() {\n  return x;\n}")
	ce, ok := err.(*CompileError)
	if !ok {
		t.Fatalf("error type %T: %v", err, err)
	}
	if ce.Line != 2 {
		t.Errorf("line = %d, want 2", ce.Line)
	}
	if !strings.Contains(ce.Error(), "line 2") {
		t.Errorf("message %q", ce.Error())
	}
}

func TestRuntimeFaults(t *testing.T) {
	cases := []struct{ name, src string }{
		{"null deref", "int main() { int *p; p = 0; return *p; }"},
		{"div by zero", "int main() { int z = 0; return 5 / z; }"},
		{"infinite loop budget", "int main() { while (1) { } return 0; }"},
	}
	for _, c := range cases {
		if _, err := Run(c.src, "", 100000); err == nil {
			t.Errorf("%s: expected runtime error", c.name)
		}
	}
}

func TestNullPointerLiteralAssignment(t *testing.T) {
	// p = 0 should be accepted as the null pointer constant.
	res := runC(t, `
int main() {
    int *p;
    p = 0;
    if (p == 0) { return 1; }
    return 0;
}`, "")
	if res.ExitStatus != 1 {
		t.Errorf("null check = %d", res.ExitStatus)
	}
}

func TestCommentsBothStyles(t *testing.T) {
	res := runC(t, `
// line comment
int main() {
    /* block
       comment */
    return 5; // trailing
}`, "")
	if res.ExitStatus != 5 {
		t.Errorf("exit = %d", res.ExitStatus)
	}
}

func TestGlobalNegativeInit(t *testing.T) {
	res := runC(t, "int g = -7;\nint main() { return -g; }", "")
	if res.ExitStatus != 7 {
		t.Errorf("got %d", res.ExitStatus)
	}
}

func TestCompiledAssemblyIsReadable(t *testing.T) {
	asmSrc, err := Compile("int main() { return 1 + 2; }")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"main:", "pushl %ebp", "movl %esp, %ebp", "leave", "ret"} {
		if !strings.Contains(asmSrc, want) {
			t.Errorf("assembly missing %q:\n%s", want, asmSrc)
		}
	}
}
