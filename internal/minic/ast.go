package minic

import "fmt"

// Type is a mini-C type: int, char, void, a pointer, or an array. Arrays
// follow C semantics: a value of array type decays to a pointer to its
// first element everywhere except sizeof and &.
type Type struct {
	Kind   TypeKind
	Elem   *Type // pointee for TypePtr; element for TypeArray
	ArrLen int32 // element count for TypeArray

	// Struct types use nominal identity: two struct types are equal when
	// their names match. Fields may be filled after creation so that
	// self-referential types (struct node { struct node *next; }) work.
	StructName string
	Fields     []Field
	ByteSize   int32
}

// Field is one member of a struct type, with its layout offset.
type Field struct {
	Name   string
	Type   *Type
	Offset int32
}

// FieldByName finds a struct member.
func (t *Type) FieldByName(name string) (Field, bool) {
	for _, f := range t.Fields {
		if f.Name == name {
			return f, true
		}
	}
	return Field{}, false
}

// TypeKind enumerates base type kinds.
type TypeKind int

// The type kinds.
const (
	TypeInt TypeKind = iota
	TypeChar
	TypeVoid
	TypePtr
	TypeArray
	TypeStruct
)

// Convenience type singletons.
var (
	IntType  = &Type{Kind: TypeInt}
	CharType = &Type{Kind: TypeChar}
	VoidType = &Type{Kind: TypeVoid}
)

// PtrTo returns a pointer type to elem.
func PtrTo(elem *Type) *Type { return &Type{Kind: TypePtr, Elem: elem} }

// ArrayOf returns an n-element array type over elem.
func ArrayOf(elem *Type, n int32) *Type {
	return &Type{Kind: TypeArray, Elem: elem, ArrLen: n}
}

// Size returns the storage size in bytes (pointers and ints are 4, char 1,
// arrays the product of their dimensions).
func (t *Type) Size() int32 {
	switch t.Kind {
	case TypeChar:
		return 1
	case TypeVoid:
		return 0
	case TypeArray:
		return t.ArrLen * t.Elem.Size()
	case TypeStruct:
		return t.ByteSize
	default:
		return 4
	}
}

// IsPtr reports whether the type is a pointer.
func (t *Type) IsPtr() bool { return t.Kind == TypePtr }

// IsArray reports whether the type is an array.
func (t *Type) IsArray() bool { return t.Kind == TypeArray }

func (t *Type) String() string {
	switch t.Kind {
	case TypeInt:
		return "int"
	case TypeChar:
		return "char"
	case TypeVoid:
		return "void"
	case TypePtr:
		return t.Elem.String() + "*"
	case TypeArray:
		return fmt.Sprintf("%s[%d]", t.Elem.String(), t.ArrLen)
	case TypeStruct:
		return "struct " + t.StructName
	default:
		return fmt.Sprintf("type(%d)", int(t.Kind))
	}
}

// Equal reports structural type equality.
func (t *Type) Equal(o *Type) bool {
	if t.Kind != o.Kind {
		return false
	}
	switch t.Kind {
	case TypePtr:
		return t.Elem.Equal(o.Elem)
	case TypeArray:
		return t.ArrLen == o.ArrLen && t.Elem.Equal(o.Elem)
	case TypeStruct:
		return t.StructName == o.StructName
	}
	return true
}

// Expr is an expression node.
type Expr interface {
	exprNode()
	Pos() int
}

type exprBase struct{ Line int }

func (e exprBase) exprNode() {}

// Pos returns the source line of the expression.
func (e exprBase) Pos() int { return e.Line }

// IntLit is an integer or character literal.
type IntLit struct {
	exprBase
	Value int32
}

// StrLit is a string literal; it compiles to a pointer into .data.
type StrLit struct {
	exprBase
	Value string
}

// VarRef names a variable (local, parameter, or global).
type VarRef struct {
	exprBase
	Name string
}

// Unary is -x, !x, ~x, *p, &lv.
type Unary struct {
	exprBase
	Op string
	X  Expr
}

// Binary is a binary operation, including short-circuit && and ||.
type Binary struct {
	exprBase
	Op   string
	L, R Expr
}

// Assign is lv = rhs (also the desugared target of +=, -=, ...).
type Assign struct {
	exprBase
	LHS Expr
	RHS Expr
}

// Call is a function or builtin call.
type Call struct {
	exprBase
	Name string
	Args []Expr
}

// Member is p.name or p->name.
type Member struct {
	exprBase
	X     Expr
	Name  string
	Arrow bool // true for ->
}

// Cond is the ternary conditional c ? a : b.
type Cond struct {
	exprBase
	C, Then, Else Expr
}

// Index is a[i]; a may be an array or pointer.
type Index struct {
	exprBase
	Arr Expr
	Idx Expr
}

// Stmt is a statement node.
type Stmt interface {
	stmtNode()
	Pos() int
}

type stmtBase struct{ Line int }

func (s stmtBase) stmtNode() {}

// Pos returns the source line of the statement.
func (s stmtBase) Pos() int { return s.Line }

// DeclStmt declares a local variable, optionally with an initializer.
// Array declarations carry a TypeArray (possibly nested for 2D arrays).
type DeclStmt struct {
	stmtBase
	Name string
	Type *Type
	Init Expr // nil if none (arrays may not have initializers)
}

// ExprStmt evaluates an expression for its side effects.
type ExprStmt struct {
	stmtBase
	X Expr
}

// IfStmt is if/else.
type IfStmt struct {
	stmtBase
	Cond Expr
	Then *Block
	Else *Block // nil if absent
}

// WhileStmt is a while loop.
type WhileStmt struct {
	stmtBase
	Cond Expr
	Body *Block
}

// DoWhileStmt is a do { } while (cond); loop: the body runs at least once.
type DoWhileStmt struct {
	stmtBase
	Body *Block
	Cond Expr
}

// ForStmt is a for loop; any of Init, Cond, Post may be nil.
type ForStmt struct {
	stmtBase
	Init Stmt // DeclStmt or ExprStmt
	Cond Expr
	Post Expr
	Body *Block
}

// ReturnStmt returns from the enclosing function.
type ReturnStmt struct {
	stmtBase
	X Expr // nil for void return
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ stmtBase }

// ContinueStmt jumps to the innermost loop's next iteration.
type ContinueStmt struct{ stmtBase }

// Block is a brace-delimited statement list with its own scope.
type Block struct {
	stmtBase
	Stmts []Stmt
}

// Param is a function parameter.
type Param struct {
	Name string
	Type *Type
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Name   string
	Ret    *Type
	Params []Param
	Body   *Block
	Line   int
}

// GlobalDecl is a file-scope variable.
type GlobalDecl struct {
	Name    string
	Type    *Type
	Init    int32 // scalar initial value (constants only)
	HasInit bool
	Line    int
}

// Unit is a parsed translation unit.
type Unit struct {
	Funcs   []*FuncDecl
	Globals []*GlobalDecl
}
