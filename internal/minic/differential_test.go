package minic

// Differential testing of the compiler: random integer expressions are
// evaluated by an independent Go reference evaluator and by compiling and
// running them through the full stack (codegen -> assembler -> machine).
// Any disagreement in parsing precedence, code generation, or machine
// semantics surfaces as a value mismatch.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// refExpr is a randomly generated expression tree with C (int32) semantics.
type refExpr struct {
	op   string // "" for literals
	lit  int32
	l, r *refExpr
}

// genExpr builds a random expression of bounded depth. Divisors are
// arranged to be non-zero.
func genRefExpr(rng *rand.Rand, depth int) *refExpr {
	if depth == 0 || rng.Intn(3) == 0 {
		return &refExpr{lit: int32(rng.Intn(200) - 100)}
	}
	ops := []string{"+", "-", "*", "&", "|", "^", "<<", ">>", "/", "%",
		"==", "!=", "<", ">", "<=", ">=", "&&", "||"}
	op := ops[rng.Intn(len(ops))]
	e := &refExpr{op: op}
	e.l = genRefExpr(rng, depth-1)
	switch op {
	case "<<", ">>":
		e.r = &refExpr{lit: int32(rng.Intn(8))} // keep shifts well-defined
	case "/", "%":
		e.r = &refExpr{lit: int32(rng.Intn(50) + 1)} // non-zero divisor
	default:
		e.r = genRefExpr(rng, depth-1)
	}
	return e
}

// c renders the expression as C source (fully parenthesized, so the test
// checks codegen and the machine rather than parser precedence — the
// precedence tests live in minic_test.go).
func (e *refExpr) c() string {
	if e.op == "" {
		if e.lit < 0 {
			return fmt.Sprintf("(%d)", e.lit)
		}
		return fmt.Sprintf("%d", e.lit)
	}
	return "(" + e.l.c() + " " + e.op + " " + e.r.c() + ")"
}

// eval computes the expression with the reference semantics.
func (e *refExpr) eval() int32 {
	if e.op == "" {
		return e.lit
	}
	l := e.l.eval()
	r := e.r.eval()
	b2i := func(b bool) int32 {
		if b {
			return 1
		}
		return 0
	}
	switch e.op {
	case "+":
		return l + r
	case "-":
		return l - r
	case "*":
		return l * r
	case "/":
		return l / r
	case "%":
		return l % r
	case "&":
		return l & r
	case "|":
		return l | r
	case "^":
		return l ^ r
	case "<<":
		return l << (uint32(r) & 31)
	case ">>":
		return l >> (uint32(r) & 31)
	case "==":
		return b2i(l == r)
	case "!=":
		return b2i(l != r)
	case "<":
		return b2i(l < r)
	case ">":
		return b2i(l > r)
	case "<=":
		return b2i(l <= r)
	case ">=":
		return b2i(l >= r)
	case "&&":
		return b2i(l != 0 && r != 0)
	case "||":
		return b2i(l != 0 || r != 0)
	default:
		panic("unknown op " + e.op)
	}
}

func TestDifferentialExpressions(t *testing.T) {
	rng := rand.New(rand.NewSource(2022))
	const trials = 60
	// Batch several expressions per compiled program to amortize the
	// compile cost: each prints its value.
	const perProgram = 6
	for trial := 0; trial < trials/perProgram; trial++ {
		exprs := make([]*refExpr, perProgram)
		var src strings.Builder
		src.WriteString("int main() {\n")
		for i := range exprs {
			exprs[i] = genRefExpr(rng, 4)
			fmt.Fprintf(&src, "    print_int(%s); print_char('\\n');\n", exprs[i].c())
		}
		src.WriteString("    return 0;\n}\n")

		res, err := Run(src.String(), "", 0)
		if err != nil {
			t.Fatalf("trial %d: %v\nsource:\n%s", trial, err, src.String())
		}
		lines := strings.Split(strings.TrimSpace(res.Stdout), "\n")
		if len(lines) != perProgram {
			t.Fatalf("trial %d: %d outputs, want %d", trial, len(lines), perProgram)
		}
		for i, e := range exprs {
			want := fmt.Sprintf("%d", e.eval())
			if lines[i] != want {
				t.Errorf("trial %d expr %d: compiled=%s reference=%s\nexpr: %s",
					trial, i, lines[i], want, e.c())
			}
		}
	}
}

// TestDifferentialUnparenthesized drops the parentheses, so the parser's
// precedence and associativity are also compared against Go's (which C
// shares for these operators) — a smaller, targeted corpus.
func TestDifferentialPrecedence(t *testing.T) {
	// Each case: a C/Go-identical expression and its Go-computed value.
	cases := []struct {
		expr string
		want int32
	}{
		{"1 + 2 * 3 - 4 / 2", 1 + 2*3 - 4/2},
		{"10 - 3 - 2", 10 - 3 - 2},
		{"100 / 10 / 2", 100 / 10 / 2},
		{"1 << 3 + 1", 1 << (3 + 1)}, // shift binds looser than +
		// C precedence: & above ^ above | (unlike Go, where ^ and | sit at
		// the additive level), so these are written out explicitly.
		{"7 & 3 | 4 ^ 1", (7 & 3) | (4 ^ 1)},
		{"1 + 2 < 4 == 1", b2i(b2i(1+2 < 4) == 1)},
		{"2 * 3 % 4", 2 * 3 % 4},
		{"-3 + -4 * -2", -3 + -4*-2},
		{"1 | 2 & 3", 1 | (2 & 3)},
		{"5 > 3 != 2 > 1", b2i(b2i(5 > 3) != b2i(2 > 1))},
	}
	for _, c := range cases {
		res := runC(t, fmt.Sprintf("int main() { return (%s) & 255; }", c.expr), "")
		if res.ExitStatus != c.want&255 {
			t.Errorf("%s = %d, want %d", c.expr, res.ExitStatus, c.want&255)
		}
	}
}

func b2i(b bool) int32 {
	if b {
		return 1
	}
	return 0
}
