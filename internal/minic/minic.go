package minic

import (
	"fmt"
	"strings"

	"cs31/internal/asm"
)

// Build compiles mini-C source and assembles the result into an executable
// program — the "gcc" of the vertical slice.
func Build(src string) (*asm.Program, error) {
	asmSrc, err := Compile(src)
	if err != nil {
		return nil, err
	}
	p, err := asm.Assemble(asmSrc)
	if err != nil {
		return nil, fmt.Errorf("minic: generated assembly failed to assemble: %w", err)
	}
	return p, nil
}

// RunResult captures a program execution.
type RunResult struct {
	ExitStatus int32
	Stdout     string
	Steps      int64
	Trace      []asm.MemEvent // collected when tracing was requested
	Memcheck   string         // valgrind-style heap report
}

// Run compiles and executes a program with the given stdin, bounding
// execution at maxSteps instructions (0 means 10 million).
func Run(src, stdin string, maxSteps int64) (*RunResult, error) {
	return run(src, stdin, maxSteps, false)
}

// RunTraced is Run with a data-memory trace collected — the input the cache
// and VM simulators consume in the cost-analysis half of the slice.
func RunTraced(src, stdin string, maxSteps int64) (*RunResult, error) {
	return run(src, stdin, maxSteps, true)
}

func run(src, stdin string, maxSteps int64, traced bool) (*RunResult, error) {
	if maxSteps <= 0 {
		maxSteps = 10_000_000
	}
	prog, err := Build(src)
	if err != nil {
		return nil, err
	}
	m, err := asm.NewMachine(prog)
	if err != nil {
		return nil, err
	}
	var out strings.Builder
	m.Stdin = strings.NewReader(stdin)
	m.Stdout = &out
	res := &RunResult{}
	if traced {
		m.Trace = func(e asm.MemEvent) { res.Trace = append(res.Trace, e) }
	}
	if err := m.Run(maxSteps); err != nil {
		return nil, err
	}
	res.ExitStatus = m.ExitStatus
	res.Stdout = out.String()
	res.Steps = m.Steps
	res.Memcheck = m.MemcheckReport()
	return res, nil
}
