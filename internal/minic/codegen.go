package minic

import (
	"fmt"
	"strings"
)

// Builtins available to every program, implemented as syscall sequences on
// the asm machine:
//
//	print_int(int)    — write a decimal integer to stdout
//	print_str(char*)  — write a NUL-terminated string
//	print_char(int)   — write one character
//	read_int()        — read a decimal integer from stdin
//	malloc(int)       — checked heap allocation (memcheck-backed)
//	free(void*)       — release a malloc'd block
//	exit(int)         — terminate with a status
var builtinSigs = map[string]struct {
	ret    *Type
	params []*Type
}{
	"print_int":  {IntType, []*Type{IntType}},
	"print_str":  {IntType, []*Type{PtrTo(CharType)}},
	"print_char": {IntType, []*Type{IntType}},
	"read_int":   {IntType, nil},
	"malloc":     {PtrTo(VoidType), []*Type{IntType}},
	"free":       {VoidType, []*Type{PtrTo(VoidType)}},
	"exit":       {VoidType, []*Type{IntType}},
}

// varInfo describes a resolved variable.
type varInfo struct {
	typ    *Type
	offset int32  // ebp-relative offset for locals/params
	global string // data label for globals
}

// isArray reports whether the variable has array type (which decays).
func (v *varInfo) isArray() bool { return v.typ.IsArray() }

// funcInfo describes a declared function.
type funcInfo struct {
	ret    *Type
	params []*Type
}

// codegen holds per-compilation state.
type codegen struct {
	unit    *Unit
	globals map[string]*varInfo
	funcs   map[string]*funcInfo

	text    strings.Builder
	data    strings.Builder
	strLits map[string]string // literal -> label
	nlabel  int

	// per-function state
	fn        *FuncDecl
	scopes    []map[string]*varInfo
	curOffset int32 // next local slot below ebp (positive magnitude)
	maxOffset int32
	breaks    []string
	continues []string
	retLabel  string
}

// Compile translates mini-C source into AT&T assembly for package asm.
// The generated program defines main as its entry point.
func Compile(src string) (string, error) {
	unit, err := Parse(src)
	if err != nil {
		return "", err
	}
	g := &codegen{
		unit:    unit,
		globals: make(map[string]*varInfo),
		funcs:   make(map[string]*funcInfo),
		strLits: make(map[string]string),
	}
	return g.run()
}

func (g *codegen) run() (string, error) {
	// Declare globals.
	for _, gd := range g.unit.Globals {
		if _, dup := g.globals[gd.Name]; dup {
			return "", cerrf(gd.Line, "duplicate global %q", gd.Name)
		}
		if gd.Type.Kind == TypeVoid && !gd.Type.IsPtr() {
			return "", cerrf(gd.Line, "void global %q", gd.Name)
		}
		g.globals[gd.Name] = &varInfo{typ: gd.Type, global: "g_" + gd.Name}
	}
	// Declare functions.
	for _, fn := range g.unit.Funcs {
		if _, isBuiltin := builtinSigs[fn.Name]; isBuiltin {
			return "", cerrf(fn.Line, "cannot redefine builtin %q", fn.Name)
		}
		if _, dup := g.funcs[fn.Name]; dup {
			return "", cerrf(fn.Line, "duplicate function %q", fn.Name)
		}
		fi := &funcInfo{ret: fn.Ret}
		for _, p := range fn.Params {
			fi.params = append(fi.params, p.Type)
		}
		g.funcs[fn.Name] = fi
	}
	if _, ok := g.funcs["main"]; !ok {
		return "", cerrf(1, "no main function defined")
	}

	// Data section: globals, the print_char scratch byte, string literals
	// (added lazily while generating code).
	g.data.WriteString(".data\n")
	g.data.WriteString("__char_buf: .byte 0\n")
	for _, gd := range g.unit.Globals {
		info := g.globals[gd.Name]
		switch {
		case info.isArray() || gd.Type.Kind == TypeStruct:
			fmt.Fprintf(&g.data, "%s: .space %d\n", info.global, gd.Type.Size())
		case gd.HasInit:
			fmt.Fprintf(&g.data, "%s: .long %d\n", info.global, gd.Init)
		default:
			fmt.Fprintf(&g.data, "%s: .long 0\n", info.global)
		}
	}

	g.text.WriteString(".text\n")
	for _, fn := range g.unit.Funcs {
		if err := g.genFunc(fn); err != nil {
			return "", err
		}
	}
	return g.data.String() + g.text.String(), nil
}

func (g *codegen) label(prefix string) string {
	g.nlabel++
	return fmt.Sprintf(".L%s%d", prefix, g.nlabel)
}

func (g *codegen) strLabel(s string) string {
	if l, ok := g.strLits[s]; ok {
		return l
	}
	l := fmt.Sprintf(".Lstr%d", len(g.strLits))
	g.strLits[s] = l
	fmt.Fprintf(&g.data, "%s: .asciz %q\n", l, s)
	return l
}

func (g *codegen) pushScope() { g.scopes = append(g.scopes, make(map[string]*varInfo)) }
func (g *codegen) popScope()  { g.scopes = g.scopes[:len(g.scopes)-1] }

func (g *codegen) declare(line int, name string, v *varInfo) error {
	top := g.scopes[len(g.scopes)-1]
	if _, dup := top[name]; dup {
		return cerrf(line, "redeclaration of %q", name)
	}
	top[name] = v
	return nil
}

func (g *codegen) lookup(name string) (*varInfo, bool) {
	for i := len(g.scopes) - 1; i >= 0; i-- {
		if v, ok := g.scopes[i][name]; ok {
			return v, true
		}
	}
	v, ok := g.globals[name]
	return v, ok
}

// allocLocal reserves a frame slot of the given size (4-byte aligned) and
// returns its negative ebp offset.
func (g *codegen) allocLocal(size int32) int32 {
	size = (size + 3) &^ 3
	g.curOffset += size
	if g.curOffset > g.maxOffset {
		g.maxOffset = g.curOffset
	}
	return -g.curOffset
}

func (g *codegen) genFunc(fn *FuncDecl) error {
	if fn.Ret.Kind == TypeStruct || fn.Ret.IsArray() {
		return cerrf(fn.Line, "function %q: return structs and arrays by pointer", fn.Name)
	}
	g.fn = fn
	g.scopes = nil
	g.curOffset, g.maxOffset = 0, 0
	g.retLabel = g.label("ret_" + fn.Name)
	g.pushScope()
	defer g.popScope()

	// Parameters live above the saved ebp and return address: 8(%ebp),
	// 12(%ebp), ... — the layout students trace in stack diagrams.
	for i, p := range fn.Params {
		if p.Type.Kind == TypeVoid && !p.Type.IsPtr() {
			return cerrf(fn.Line, "void parameter %q", p.Name)
		}
		if p.Type.Kind == TypeStruct || p.Type.IsArray() {
			return cerrf(fn.Line, "parameter %q: pass structs and arrays by pointer", p.Name)
		}
		if err := g.declare(fn.Line, p.Name, &varInfo{
			typ: p.Type, offset: int32(8 + 4*i),
		}); err != nil {
			return err
		}
	}

	// Generate the body into a scratch buffer so the prologue can reserve
	// exactly maxOffset bytes of frame.
	saved := g.text
	g.text = strings.Builder{}
	if err := g.genBlock(fn.Body); err != nil {
		return err
	}
	body := g.text.String()
	g.text = saved

	fmt.Fprintf(&g.text, "%s:\n", fn.Name)
	g.emit("pushl %ebp")
	g.emit("movl %esp, %ebp")
	if g.maxOffset > 0 {
		g.emit(fmt.Sprintf("subl $%d, %%esp", g.maxOffset))
	}
	g.text.WriteString(body)
	// Fall-through return: zero eax for value functions without an explicit
	// return on some path (C leaves this undefined; zero is friendlier).
	g.emit("movl $0, %eax")
	fmt.Fprintf(&g.text, "%s:\n", g.retLabel)
	g.emit("leave")
	g.emit("ret")
	return nil
}

func (g *codegen) emit(instr string) {
	g.text.WriteString("    ")
	g.text.WriteString(instr)
	g.text.WriteByte('\n')
}

func (g *codegen) emitLabel(l string) {
	g.text.WriteString(l)
	g.text.WriteString(":\n")
}

func (g *codegen) genBlock(b *Block) error {
	g.pushScope()
	savedOffset := g.curOffset
	defer func() {
		g.popScope()
		g.curOffset = savedOffset // block locals' slots are reusable
	}()
	for _, s := range b.Stmts {
		if err := g.genStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (g *codegen) genStmt(s Stmt) error {
	switch st := s.(type) {
	case *Block:
		return g.genBlock(st)

	case *DeclStmt:
		if st.Type.Kind == TypeVoid && !st.Type.IsPtr() {
			return cerrf(st.Pos(), "cannot declare void variable %q", st.Name)
		}
		v := &varInfo{typ: st.Type}
		if v.isArray() || st.Type.Kind == TypeStruct {
			v.offset = g.allocLocal(st.Type.Size())
		} else {
			v.offset = g.allocLocal(4)
		}
		if err := g.declare(st.Pos(), st.Name, v); err != nil {
			return err
		}
		if st.Init != nil {
			if st.Type.Kind == TypeStruct {
				return cerrf(st.Pos(), "struct initializers are not supported")
			}
			t, err := g.genExpr(st.Init)
			if err != nil {
				return err
			}
			if err := checkAssignableExpr(st.Pos(), st.Type, t, st.Init); err != nil {
				return err
			}
			g.emit(fmt.Sprintf("movl %%eax, %d(%%ebp)", v.offset))
		}
		return nil

	case *ExprStmt:
		_, err := g.genExpr(st.X)
		return err

	case *IfStmt:
		elseL := g.label("else")
		endL := g.label("endif")
		if _, err := g.genExpr(st.Cond); err != nil {
			return err
		}
		g.emit("cmpl $0, %eax")
		g.emit("je " + elseL)
		if err := g.genBlock(st.Then); err != nil {
			return err
		}
		g.emit("jmp " + endL)
		g.emitLabel(elseL)
		if st.Else != nil {
			if err := g.genBlock(st.Else); err != nil {
				return err
			}
		}
		g.emitLabel(endL)
		return nil

	case *WhileStmt:
		top := g.label("while")
		end := g.label("wend")
		g.breaks = append(g.breaks, end)
		g.continues = append(g.continues, top)
		defer func() {
			g.breaks = g.breaks[:len(g.breaks)-1]
			g.continues = g.continues[:len(g.continues)-1]
		}()
		g.emitLabel(top)
		if _, err := g.genExpr(st.Cond); err != nil {
			return err
		}
		g.emit("cmpl $0, %eax")
		g.emit("je " + end)
		if err := g.genBlock(st.Body); err != nil {
			return err
		}
		g.emit("jmp " + top)
		g.emitLabel(end)
		return nil

	case *DoWhileStmt:
		top := g.label("do")
		condL := g.label("docond")
		end := g.label("doend")
		g.breaks = append(g.breaks, end)
		g.continues = append(g.continues, condL)
		defer func() {
			g.breaks = g.breaks[:len(g.breaks)-1]
			g.continues = g.continues[:len(g.continues)-1]
		}()
		g.emitLabel(top)
		if err := g.genBlock(st.Body); err != nil {
			return err
		}
		g.emitLabel(condL)
		if _, err := g.genExpr(st.Cond); err != nil {
			return err
		}
		g.emit("cmpl $0, %eax")
		g.emit("jne " + top)
		g.emitLabel(end)
		return nil

	case *ForStmt:
		g.pushScope()
		savedOffset := g.curOffset
		defer func() {
			g.popScope()
			g.curOffset = savedOffset
		}()
		if st.Init != nil {
			if err := g.genStmt(st.Init); err != nil {
				return err
			}
		}
		top := g.label("for")
		postL := g.label("fpost")
		end := g.label("fend")
		g.breaks = append(g.breaks, end)
		g.continues = append(g.continues, postL)
		defer func() {
			g.breaks = g.breaks[:len(g.breaks)-1]
			g.continues = g.continues[:len(g.continues)-1]
		}()
		g.emitLabel(top)
		if st.Cond != nil {
			if _, err := g.genExpr(st.Cond); err != nil {
				return err
			}
			g.emit("cmpl $0, %eax")
			g.emit("je " + end)
		}
		if err := g.genBlock(st.Body); err != nil {
			return err
		}
		g.emitLabel(postL)
		if st.Post != nil {
			if _, err := g.genExpr(st.Post); err != nil {
				return err
			}
		}
		g.emit("jmp " + top)
		g.emitLabel(end)
		return nil

	case *ReturnStmt:
		if st.X != nil {
			t, err := g.genExpr(st.X)
			if err != nil {
				return err
			}
			if g.fn.Ret.Kind == TypeVoid && !g.fn.Ret.IsPtr() {
				return cerrf(st.Pos(), "return with value in void function %q", g.fn.Name)
			}
			if err := checkAssignableExpr(st.Pos(), g.fn.Ret, t, st.X); err != nil {
				return err
			}
		} else if g.fn.Ret.Kind != TypeVoid {
			return cerrf(st.Pos(), "return without value in %q", g.fn.Name)
		}
		g.emit("jmp " + g.retLabel)
		return nil

	case *BreakStmt:
		if len(g.breaks) == 0 {
			return cerrf(st.Pos(), "break outside loop")
		}
		g.emit("jmp " + g.breaks[len(g.breaks)-1])
		return nil

	case *ContinueStmt:
		if len(g.continues) == 0 {
			return cerrf(st.Pos(), "continue outside loop")
		}
		g.emit("jmp " + g.continues[len(g.continues)-1])
		return nil

	default:
		return cerrf(s.Pos(), "unsupported statement %T", s)
	}
}

// isArith reports whether a type participates in integer arithmetic.
func isArith(t *Type) bool { return t.Kind == TypeInt || t.Kind == TypeChar }

// checkAssignable validates an assignment or argument pass of value type
// `from` into slot type `to`. void* converts to and from any pointer.
func checkAssignable(line int, to, from *Type) error {
	if isArith(to) && isArith(from) {
		return nil
	}
	if to.IsPtr() && from.IsPtr() {
		if to.Elem.Kind == TypeVoid || from.Elem.Kind == TypeVoid || to.Equal(from) {
			return nil
		}
	}
	return cerrf(line, "cannot assign %s to %s", from, to)
}

// isNullConst reports whether e is the literal 0, usable as a null pointer
// constant.
func isNullConst(e Expr) bool {
	lit, ok := e.(*IntLit)
	return ok && lit.Value == 0
}

// checkAssignableExpr is checkAssignable plus the null-pointer-constant
// rule: the literal 0 converts to any pointer type.
func checkAssignableExpr(line int, to *Type, from *Type, rhs Expr) error {
	if to.IsPtr() && isNullConst(rhs) {
		return nil
	}
	return checkAssignable(line, to, from)
}

// genExpr evaluates e into %eax and returns its type.
func (g *codegen) genExpr(e Expr) (*Type, error) {
	switch ex := e.(type) {
	case *IntLit:
		g.emit(fmt.Sprintf("movl $%d, %%eax", ex.Value))
		return IntType, nil

	case *StrLit:
		l := g.strLabel(ex.Value)
		g.emit(fmt.Sprintf("movl $%s, %%eax", l))
		return PtrTo(CharType), nil

	case *VarRef:
		v, ok := g.lookup(ex.Name)
		if !ok {
			return nil, cerrf(ex.Pos(), "undefined variable %q", ex.Name)
		}
		if v.isArray() {
			// Arrays decay to a pointer to their first element.
			g.genVarAddr(v)
			return PtrTo(v.typ.Elem), nil
		}
		if v.typ.Kind == TypeStruct {
			return nil, cerrf(ex.Pos(),
				"struct %q cannot be used as a value; access a member or take its address", ex.Name)
		}
		if v.global != "" {
			g.emit(fmt.Sprintf("movl %s, %%eax", v.global))
		} else {
			g.emit(fmt.Sprintf("movl %d(%%ebp), %%eax", v.offset))
		}
		return v.typ, nil

	case *Unary:
		return g.genUnary(ex)

	case *Binary:
		return g.genBinary(ex)

	case *Assign:
		return g.genAssign(ex)

	case *Cond:
		elseL := g.label("telse")
		endL := g.label("tend")
		if _, err := g.genExpr(ex.C); err != nil {
			return nil, err
		}
		g.emit("cmpl $0, %eax")
		g.emit("je " + elseL)
		tt, err := g.genExpr(ex.Then)
		if err != nil {
			return nil, err
		}
		g.emit("jmp " + endL)
		g.emitLabel(elseL)
		et, err := g.genExpr(ex.Else)
		if err != nil {
			return nil, err
		}
		g.emitLabel(endL)
		// The arms must agree: both arithmetic, or compatible pointers.
		if err := checkAssignableExpr(ex.Pos(), tt, et, ex.Else); err != nil {
			if err2 := checkAssignableExpr(ex.Pos(), et, tt, ex.Then); err2 != nil {
				return nil, cerrf(ex.Pos(), "mismatched ternary arms (%s, %s)", tt, et)
			}
			return et, nil
		}
		return tt, nil

	case *Member:
		ft, err := g.genMemberAddr(ex)
		if err != nil {
			return nil, err
		}
		switch ft.Kind {
		case TypeArray:
			return PtrTo(ft.Elem), nil // array members decay
		case TypeStruct:
			return nil, cerrf(ex.Pos(),
				"struct member %q cannot be used as a value; access a submember", ex.Name)
		}
		g.loadThrough(ft)
		return ft, nil

	case *Index:
		elem, err := g.genIndexAddr(ex)
		if err != nil {
			return nil, err
		}
		if elem.IsArray() {
			// m[i] of a 2D array is itself an array: its value is its
			// address, decayed to a pointer to the inner element.
			return PtrTo(elem.Elem), nil
		}
		g.loadThrough(elem)
		return elem, nil

	case *Call:
		return g.genCall(ex)

	default:
		return nil, cerrf(e.Pos(), "unsupported expression %T", e)
	}
}

// genVarAddr leaves the address of a variable's storage in %eax.
func (g *codegen) genVarAddr(v *varInfo) {
	if v.global != "" {
		g.emit(fmt.Sprintf("movl $%s, %%eax", v.global))
	} else {
		g.emit(fmt.Sprintf("leal %d(%%ebp), %%eax", v.offset))
	}
}

// loadThrough loads the value at the address in %eax, by element type.
func (g *codegen) loadThrough(elem *Type) {
	if elem.Size() == 1 {
		g.emit("movsbl (%eax), %eax")
	} else {
		g.emit("movl (%eax), %eax")
	}
}

// genAddr evaluates an lvalue's address into %eax, returning the type of
// the value stored there.
func (g *codegen) genAddr(e Expr) (*Type, error) {
	switch ex := e.(type) {
	case *VarRef:
		v, ok := g.lookup(ex.Name)
		if !ok {
			return nil, cerrf(ex.Pos(), "undefined variable %q", ex.Name)
		}
		if v.isArray() {
			return nil, cerrf(ex.Pos(), "array %q is not assignable", ex.Name)
		}
		g.genVarAddr(v)
		return v.typ, nil
	case *Unary:
		if ex.Op != "*" {
			return nil, cerrf(ex.Pos(), "expression is not an lvalue")
		}
		t, err := g.genExpr(ex.X)
		if err != nil {
			return nil, err
		}
		if !t.IsPtr() {
			return nil, cerrf(ex.Pos(), "cannot dereference non-pointer %s", t)
		}
		if t.Elem.Kind == TypeVoid {
			return nil, cerrf(ex.Pos(), "cannot dereference void*")
		}
		return t.Elem, nil
	case *Index:
		return g.genIndexAddr(ex)
	case *Member:
		return g.genMemberAddr(ex)
	default:
		return nil, cerrf(e.Pos(), "expression is not an lvalue")
	}
}

// genMemberAddr computes the address of p.name or p->name into %eax and
// returns the field's type.
func (g *codegen) genMemberAddr(ex *Member) (*Type, error) {
	var base *Type
	var err error
	if ex.Arrow {
		base, err = g.genExpr(ex.X)
		if err != nil {
			return nil, err
		}
		if !base.IsPtr() || base.Elem.Kind != TypeStruct {
			return nil, cerrf(ex.Pos(), "-> requires a struct pointer, got %s", base)
		}
		base = base.Elem
	} else {
		base, err = g.genAddr(ex.X)
		if err != nil {
			return nil, err
		}
		if base.Kind != TypeStruct {
			return nil, cerrf(ex.Pos(), ". requires a struct, got %s", base)
		}
	}
	f, ok := base.FieldByName(ex.Name)
	if !ok {
		return nil, cerrf(ex.Pos(), "struct %s has no field %q", base.StructName, ex.Name)
	}
	if f.Offset != 0 {
		g.emit(fmt.Sprintf("addl $%d, %%eax", f.Offset))
	}
	return f.Type, nil
}

// genIndexAddr computes &a[i] into %eax and returns the element type.
func (g *codegen) genIndexAddr(ex *Index) (*Type, error) {
	t, err := g.genExpr(ex.Arr)
	if err != nil {
		return nil, err
	}
	if !t.IsPtr() || t.Elem.Kind == TypeVoid {
		return nil, cerrf(ex.Pos(), "cannot index non-pointer %s", t)
	}
	g.emit("pushl %eax")
	it, err := g.genExpr(ex.Idx)
	if err != nil {
		return nil, err
	}
	if !isArith(it) {
		return nil, cerrf(ex.Pos(), "array index must be an integer, got %s", it)
	}
	size := t.Elem.Size()
	if size != 1 {
		g.emit(fmt.Sprintf("imull $%d, %%eax", size))
	}
	g.emit("movl %eax, %ebx")
	g.emit("popl %eax")
	g.emit("addl %ebx, %eax")
	return t.Elem, nil
}

func (g *codegen) genUnary(ex *Unary) (*Type, error) {
	switch ex.Op {
	case "-":
		t, err := g.genExpr(ex.X)
		if err != nil {
			return nil, err
		}
		if !isArith(t) {
			return nil, cerrf(ex.Pos(), "cannot negate %s", t)
		}
		g.emit("negl %eax")
		return IntType, nil
	case "~":
		t, err := g.genExpr(ex.X)
		if err != nil {
			return nil, err
		}
		if !isArith(t) {
			return nil, cerrf(ex.Pos(), "cannot complement %s", t)
		}
		g.emit("notl %eax")
		return IntType, nil
	case "!":
		if _, err := g.genExpr(ex.X); err != nil {
			return nil, err
		}
		trueL := g.label("nz")
		g.emit("cmpl $0, %eax")
		g.emit("movl $1, %eax")
		g.emit("je " + trueL)
		g.emit("movl $0, %eax")
		g.emitLabel(trueL)
		return IntType, nil
	case "*":
		t, err := g.genExpr(ex.X)
		if err != nil {
			return nil, err
		}
		if !t.IsPtr() {
			return nil, cerrf(ex.Pos(), "cannot dereference non-pointer %s", t)
		}
		if t.Elem.Kind == TypeVoid {
			return nil, cerrf(ex.Pos(), "cannot dereference void*")
		}
		g.loadThrough(t.Elem)
		return t.Elem, nil
	case "&":
		// &array yields a pointer to the first element (close enough for
		// the subset), so handle VarRef arrays specially.
		if vr, ok := ex.X.(*VarRef); ok {
			if v, found := g.lookup(vr.Name); found && v.isArray() {
				g.genVarAddr(v)
				return PtrTo(v.typ.Elem), nil
			}
		}
		t, err := g.genAddr(ex.X)
		if err != nil {
			return nil, err
		}
		return PtrTo(t), nil
	default:
		return nil, cerrf(ex.Pos(), "unsupported unary operator %q", ex.Op)
	}
}

func (g *codegen) genBinary(ex *Binary) (*Type, error) {
	// Short-circuit forms evaluate operands sequentially, no stack needed.
	if ex.Op == "&&" || ex.Op == "||" {
		return g.genShortCircuit(ex)
	}

	lt, err := g.genExpr(ex.L)
	if err != nil {
		return nil, err
	}
	g.emit("pushl %eax")
	rt, err := g.genExpr(ex.R)
	if err != nil {
		return nil, err
	}
	g.emit("movl %eax, %ebx") // right operand
	g.emit("popl %eax")       // left operand

	switch ex.Op {
	case "+":
		switch {
		case lt.IsPtr() && isArith(rt):
			if lt.Elem.Size() != 1 {
				g.emit(fmt.Sprintf("imull $%d, %%ebx", lt.Elem.Size()))
			}
			g.emit("addl %ebx, %eax")
			return lt, nil
		case isArith(lt) && rt.IsPtr():
			if rt.Elem.Size() != 1 {
				g.emit(fmt.Sprintf("imull $%d, %%eax", rt.Elem.Size()))
			}
			g.emit("addl %ebx, %eax")
			return rt, nil
		case isArith(lt) && isArith(rt):
			g.emit("addl %ebx, %eax")
			return IntType, nil
		default:
			return nil, cerrf(ex.Pos(), "invalid operands to + (%s, %s)", lt, rt)
		}
	case "-":
		switch {
		case lt.IsPtr() && rt.IsPtr():
			if !lt.Equal(rt) {
				return nil, cerrf(ex.Pos(), "pointer subtraction of different types")
			}
			g.emit("subl %ebx, %eax")
			if lt.Elem.Size() != 1 {
				g.emit("cltd")
				g.emit(fmt.Sprintf("movl $%d, %%ecx", lt.Elem.Size()))
				g.emit("idivl %ecx")
			}
			return IntType, nil
		case lt.IsPtr() && isArith(rt):
			if lt.Elem.Size() != 1 {
				g.emit(fmt.Sprintf("imull $%d, %%ebx", lt.Elem.Size()))
			}
			g.emit("subl %ebx, %eax")
			return lt, nil
		case isArith(lt) && isArith(rt):
			g.emit("subl %ebx, %eax")
			return IntType, nil
		default:
			return nil, cerrf(ex.Pos(), "invalid operands to - (%s, %s)", lt, rt)
		}
	case "*", "/", "%", "&", "|", "^", "<<", ">>":
		if !isArith(lt) || !isArith(rt) {
			return nil, cerrf(ex.Pos(), "invalid operands to %s (%s, %s)", ex.Op, lt, rt)
		}
		switch ex.Op {
		case "*":
			g.emit("imull %ebx, %eax")
		case "/":
			g.emit("cltd")
			g.emit("idivl %ebx")
		case "%":
			g.emit("cltd")
			g.emit("idivl %ebx")
			g.emit("movl %edx, %eax")
		case "&":
			g.emit("andl %ebx, %eax")
		case "|":
			g.emit("orl %ebx, %eax")
		case "^":
			g.emit("xorl %ebx, %eax")
		case "<<":
			g.emit("movl %ebx, %ecx")
			g.emit("sall %cl, %eax")
		case ">>":
			g.emit("movl %ebx, %ecx")
			g.emit("sarl %cl, %eax")
		}
		return IntType, nil
	case "==", "!=", "<", "<=", ">", ">=":
		// Pointers compare like unsigned integers; ints compare signed.
		okTypes := (isArith(lt) && isArith(rt)) || lt.IsPtr() || rt.IsPtr()
		if !okTypes {
			return nil, cerrf(ex.Pos(), "invalid comparison (%s, %s)", lt, rt)
		}
		signed := isArith(lt) && isArith(rt)
		jcc := map[string][2]string{
			"==": {"je", "je"}, "!=": {"jne", "jne"},
			"<": {"jl", "jb"}, "<=": {"jle", "jbe"},
			">": {"jg", "ja"}, ">=": {"jge", "jae"},
		}[ex.Op]
		jump := jcc[0]
		if !signed {
			jump = jcc[1]
		}
		trueL := g.label("cmp")
		g.emit("cmpl %ebx, %eax") // computes L - R
		g.emit("movl $1, %eax")
		g.emit(jump + " " + trueL)
		g.emit("movl $0, %eax")
		g.emitLabel(trueL)
		return IntType, nil
	default:
		return nil, cerrf(ex.Pos(), "unsupported binary operator %q", ex.Op)
	}
}

func (g *codegen) genShortCircuit(ex *Binary) (*Type, error) {
	end := g.label("sc")
	if ex.Op == "&&" {
		falseL := g.label("scf")
		if _, err := g.genExpr(ex.L); err != nil {
			return nil, err
		}
		g.emit("cmpl $0, %eax")
		g.emit("je " + falseL)
		if _, err := g.genExpr(ex.R); err != nil {
			return nil, err
		}
		g.emit("cmpl $0, %eax")
		g.emit("je " + falseL)
		g.emit("movl $1, %eax")
		g.emit("jmp " + end)
		g.emitLabel(falseL)
		g.emit("movl $0, %eax")
	} else {
		trueL := g.label("sct")
		if _, err := g.genExpr(ex.L); err != nil {
			return nil, err
		}
		g.emit("cmpl $0, %eax")
		g.emit("jne " + trueL)
		if _, err := g.genExpr(ex.R); err != nil {
			return nil, err
		}
		g.emit("cmpl $0, %eax")
		g.emit("jne " + trueL)
		g.emit("movl $0, %eax")
		g.emit("jmp " + end)
		g.emitLabel(trueL)
		g.emit("movl $1, %eax")
	}
	g.emitLabel(end)
	return IntType, nil
}

func (g *codegen) genAssign(ex *Assign) (*Type, error) {
	lt, err := g.genAddr(ex.LHS)
	if err != nil {
		return nil, err
	}
	g.emit("pushl %eax")
	rt, err := g.genExpr(ex.RHS)
	if err != nil {
		return nil, err
	}
	if err := checkAssignableExpr(ex.Pos(), lt, rt, ex.RHS); err != nil {
		return nil, err
	}
	g.emit("popl %ebx")
	if lt.Size() == 1 {
		g.emit("movb %eax, (%ebx)")
	} else {
		g.emit("movl %eax, (%ebx)")
	}
	return lt, nil
}

func (g *codegen) genCall(ex *Call) (*Type, error) {
	if sig, ok := builtinSigs[ex.Name]; ok {
		return g.genBuiltin(ex, sig.ret, sig.params)
	}
	fi, ok := g.funcs[ex.Name]
	if !ok {
		return nil, cerrf(ex.Pos(), "undefined function %q", ex.Name)
	}
	if len(ex.Args) != len(fi.params) {
		return nil, cerrf(ex.Pos(), "%s takes %d argument(s), got %d",
			ex.Name, len(fi.params), len(ex.Args))
	}
	// cdecl: push arguments right to left; caller pops.
	for i := len(ex.Args) - 1; i >= 0; i-- {
		t, err := g.genExpr(ex.Args[i])
		if err != nil {
			return nil, err
		}
		if err := checkAssignableExpr(ex.Args[i].Pos(), fi.params[i], t, ex.Args[i]); err != nil {
			return nil, err
		}
		g.emit("pushl %eax")
	}
	g.emit("call " + ex.Name)
	if n := len(ex.Args); n > 0 {
		g.emit(fmt.Sprintf("addl $%d, %%esp", 4*n))
	}
	return fi.ret, nil
}

func (g *codegen) genBuiltin(ex *Call, ret *Type, params []*Type) (*Type, error) {
	if len(ex.Args) != len(params) {
		return nil, cerrf(ex.Pos(), "%s takes %d argument(s), got %d",
			ex.Name, len(params), len(ex.Args))
	}
	for i, a := range ex.Args {
		t, err := g.genExpr(a)
		if err != nil {
			return nil, err
		}
		if err := checkAssignableExpr(a.Pos(), params[i], t, a); err != nil {
			return nil, err
		}
	}
	// All builtins take at most one argument, now in %eax.
	switch ex.Name {
	case "print_int":
		g.emit("movl %eax, %ebx")
		g.emit("movl $5, %eax")
		g.emit("int $0x80")
	case "print_str":
		g.emit("movl %eax, %ebx")
		g.emit("movl $7, %eax")
		g.emit("int $0x80")
	case "print_char":
		g.emit("movb %eax, __char_buf")
		g.emit("movl $4, %eax")
		g.emit("movl $1, %ebx")
		g.emit("movl $__char_buf, %ecx")
		g.emit("movl $1, %edx")
		g.emit("int $0x80")
	case "read_int":
		g.emit("movl $6, %eax")
		g.emit("int $0x80")
	case "malloc":
		g.emit("movl %eax, %ebx")
		g.emit("movl $91, %eax")
		g.emit("int $0x80")
	case "free":
		g.emit("movl %eax, %ebx")
		g.emit("movl $92, %eax")
		g.emit("int $0x80")
	case "exit":
		g.emit("movl %eax, %ebx")
		g.emit("movl $1, %eax")
		g.emit("int $0x80")
	}
	return ret, nil
}
