package minic

// Valgrind-for-compiled-C: programs compiled by minic run with their heap
// under the memcheck allocator, so the classic C memory bugs the course
// teaches students to find with Valgrind are detected in compiled code.

import (
	"strings"
	"testing"
)

func TestMemcheckCleanProgram(t *testing.T) {
	res := runC(t, `
int main() {
    int *a = malloc(10 * sizeof(int));
    for (int i = 0; i < 10; i++) { a[i] = i; }
    int sum = 0;
    for (int i = 0; i < 10; i++) { sum += a[i]; }
    free(a);
    return sum;
}`, "")
	if res.ExitStatus != 45 {
		t.Errorf("sum = %d", res.ExitStatus)
	}
	if !strings.Contains(res.Memcheck, "no leaks are possible") {
		t.Errorf("clean program flagged:\n%s", res.Memcheck)
	}
}

func TestMemcheckDetectsLeak(t *testing.T) {
	res := runC(t, `
int main() {
    int *a = malloc(100);
    a[0] = 1;
    return 0;   // never freed
}`, "")
	if !strings.Contains(res.Memcheck, "definitely lost") {
		t.Errorf("leak not reported:\n%s", res.Memcheck)
	}
	if !strings.Contains(res.Memcheck, "100 bytes") {
		t.Errorf("leak size missing:\n%s", res.Memcheck)
	}
}

func TestMemcheckDetectsDoubleFree(t *testing.T) {
	res := runC(t, `
int main() {
    int *a = malloc(8);
    a[0] = 1;
    free(a);
    free(a);
    return 0;
}`, "")
	if !strings.Contains(res.Memcheck, "double free") {
		t.Errorf("double free not reported:\n%s", res.Memcheck)
	}
}

func TestMemcheckDetectsUseAfterFree(t *testing.T) {
	res := runC(t, `
int main() {
    int *a = malloc(8);
    a[0] = 7;
    free(a);
    return a[0];   // use after free
}`, "")
	if !strings.Contains(res.Memcheck, "use after free") {
		t.Errorf("UAF not reported:\n%s", res.Memcheck)
	}
}

func TestMemcheckDetectsUninitializedRead(t *testing.T) {
	res := runC(t, `
int main() {
    int *a = malloc(8);
    int v = a[0];   // read before any write
    a[1] = v;
    free(a);
    return 0;
}`, "")
	if !strings.Contains(res.Memcheck, "uninitialized read") {
		t.Errorf("uninitialized read not reported:\n%s", res.Memcheck)
	}
}

func TestMemcheckDetectsOverflow(t *testing.T) {
	res := runC(t, `
int main() {
    int *a = malloc(2 * sizeof(int));
    a[0] = 1;
    a[1] = 2;
    a[2] = 3;   // one past the end (red zone catches it)
    free(a);
    return 0;
}`, "")
	if !strings.Contains(res.Memcheck, "out-of-bounds") {
		t.Errorf("overflow not reported:\n%s", res.Memcheck)
	}
}

func TestMemcheckNoAllocations(t *testing.T) {
	res := runC(t, "int main() { return 0; }", "")
	if !strings.Contains(res.Memcheck, "no checked allocations") {
		t.Errorf("report: %s", res.Memcheck)
	}
}

func TestMallocExhaustionReturnsNull(t *testing.T) {
	// A single huge request fails; C convention is a NULL return.
	res := runC(t, `
int main() {
    int *p = malloc(2000000000);
    if (p == 0) { return 1; }
    return 0;
}`, "")
	if res.ExitStatus != 1 {
		t.Errorf("huge malloc should return NULL, exit = %d", res.ExitStatus)
	}
}

func TestFreeNullLikePointer(t *testing.T) {
	// free of a wild pointer is reported as invalid, not a crash.
	res := runC(t, `
int main() {
    int x = 0;
    free(&x);    // stack pointer, not heap
    return 0;
}`, "")
	if !strings.Contains(res.Memcheck, "invalid free") {
		t.Errorf("invalid free not reported:\n%s", res.Memcheck)
	}
}
