// Package memhier models the memory-hierarchy module of CS 31: the catalog
// of storage technologies with their latency/capacity/cost trade-offs, the
// hierarchy built from them, locality analysis of access traces, and the
// loop-order trace generators behind the course's stride-pattern exercise.
// Its Access type is the trace currency shared with the cache and vm
// simulators.
package memhier

import "fmt"

// Access is one memory reference in a trace.
type Access struct {
	Addr  uint64
	Write bool
}

// R and W build read and write accesses, for concise trace literals.
func R(addr uint64) Access { return Access{Addr: addr} }

// W returns a write access.
func W(addr uint64) Access { return Access{Addr: addr, Write: true} }

// Device describes one storage technology the course catalogs.
type Device struct {
	Name        string
	LatencyNs   float64 // typical access latency in nanoseconds
	Capacity    uint64  // typical capacity in bytes
	DollarPerGB float64
	Primary     bool // directly addressable by CPU instructions
}

// DefaultHierarchy is the course's canonical memory hierarchy, fast and
// small at the top, slow and dense at the bottom. Numbers are the
// order-of-magnitude figures used in lecture.
var DefaultHierarchy = []Device{
	{Name: "registers", LatencyNs: 0.3, Capacity: 1 << 10, DollarPerGB: 0, Primary: true},
	{Name: "L1 cache", LatencyNs: 1, Capacity: 64 << 10, DollarPerGB: 0, Primary: true},
	{Name: "L2 cache", LatencyNs: 4, Capacity: 512 << 10, DollarPerGB: 0, Primary: true},
	{Name: "L3 cache", LatencyNs: 12, Capacity: 8 << 20, DollarPerGB: 0, Primary: true},
	{Name: "RAM", LatencyNs: 100, Capacity: 8 << 30, DollarPerGB: 5, Primary: true},
	{Name: "SSD", LatencyNs: 100_000, Capacity: 512 << 30, DollarPerGB: 0.1, Primary: false},
	{Name: "HDD", LatencyNs: 10_000_000, Capacity: 4 << 40, DollarPerGB: 0.02, Primary: false},
}

// ValidateHierarchy checks the monotonic structure the course teaches:
// going down the hierarchy, latency must not decrease and capacity must not
// shrink.
func ValidateHierarchy(devs []Device) error {
	for i := 1; i < len(devs); i++ {
		if devs[i].LatencyNs < devs[i-1].LatencyNs {
			return fmt.Errorf("memhier: %s is faster than %s above it",
				devs[i].Name, devs[i-1].Name)
		}
		if devs[i].Capacity < devs[i-1].Capacity {
			return fmt.Errorf("memhier: %s is smaller than %s above it",
				devs[i].Name, devs[i-1].Name)
		}
	}
	return nil
}

// EffectiveAccessTime is the course's two-level EAT formula:
// hitRate*hitTime + (1-hitRate)*missPenalty.
func EffectiveAccessTime(hitTimeNs, missPenaltyNs, hitRate float64) (float64, error) {
	if hitRate < 0 || hitRate > 1 {
		return 0, fmt.Errorf("memhier: hit rate %v outside [0,1]", hitRate)
	}
	return hitRate*hitTimeNs + (1-hitRate)*missPenaltyNs, nil
}

// LocalityReport quantifies the temporal and spatial locality of a trace.
type LocalityReport struct {
	Accesses int
	// TemporalHits counts accesses whose exact address appeared in the
	// previous Window accesses.
	TemporalHits int
	// SpatialHits counts accesses landing within Radius bytes of some
	// address in the previous Window accesses (excluding exact repeats).
	SpatialHits int
	Window      int
	Radius      uint64
}

// TemporalFraction is TemporalHits / Accesses.
func (r LocalityReport) TemporalFraction() float64 {
	if r.Accesses == 0 {
		return 0
	}
	return float64(r.TemporalHits) / float64(r.Accesses)
}

// SpatialFraction is SpatialHits / Accesses.
func (r LocalityReport) SpatialFraction() float64 {
	if r.Accesses == 0 {
		return 0
	}
	return float64(r.SpatialHits) / float64(r.Accesses)
}

// AnalyzeLocality scans a trace with a sliding window of the given size,
// classifying each access as a temporal reuse (same address seen in
// window), a spatial neighbor (within radius bytes of a windowed address),
// or neither. It is the formalization of the in-class "library books"
// intuition exercise.
func AnalyzeLocality(trace []Access, window int, radius uint64) LocalityReport {
	if window <= 0 {
		window = 32
	}
	rep := LocalityReport{Accesses: len(trace), Window: window, Radius: radius}
	recent := make([]uint64, 0, window)
	for _, a := range trace {
		temporal := false
		spatial := false
		for _, prev := range recent {
			if prev == a.Addr {
				temporal = true
				break
			}
			var d uint64
			if prev > a.Addr {
				d = prev - a.Addr
			} else {
				d = a.Addr - prev
			}
			if d <= radius {
				spatial = true
			}
		}
		if temporal {
			rep.TemporalHits++
		} else if spatial {
			rep.SpatialHits++
		}
		recent = append(recent, a.Addr)
		if len(recent) > window {
			recent = recent[1:]
		}
	}
	return rep
}

// The trace generators know their exact output length up front, so each
// makes at most one allocation, and the Append* forms make none when the
// destination has capacity — sweep grids that regenerate traces per case
// reuse one buffer with dst[:0].

// MatrixTraceRowMajor generates the access trace of the cache exercise's
// "good" loop nest: for i { for j { sum += m[i][j] } } over a rows x cols
// matrix of elemSize-byte elements at base — unit stride through memory.
func MatrixTraceRowMajor(base uint64, rows, cols int, elemSize uint64) []Access {
	return AppendMatrixTraceRowMajor(make([]Access, 0, rows*cols), base, rows, cols, elemSize)
}

// AppendMatrixTraceRowMajor appends the row-major trace to dst and returns
// the extended slice.
func AppendMatrixTraceRowMajor(dst []Access, base uint64, rows, cols int, elemSize uint64) []Access {
	dst = growTrace(dst, rows*cols)
	for i := 0; i < rows; i++ {
		rowBase := base + uint64(i)*uint64(cols)*elemSize
		for j := 0; j < cols; j++ {
			dst = append(dst, R(rowBase+uint64(j)*elemSize))
		}
	}
	return dst
}

// MatrixTraceColMajor generates the "bad" loop nest: for j { for i { ... } }
// — stride of a full row between consecutive accesses.
func MatrixTraceColMajor(base uint64, rows, cols int, elemSize uint64) []Access {
	return AppendMatrixTraceColMajor(make([]Access, 0, rows*cols), base, rows, cols, elemSize)
}

// AppendMatrixTraceColMajor appends the column-major trace to dst and
// returns the extended slice.
func AppendMatrixTraceColMajor(dst []Access, base uint64, rows, cols int, elemSize uint64) []Access {
	dst = growTrace(dst, rows*cols)
	for j := 0; j < cols; j++ {
		for i := 0; i < rows; i++ {
			dst = append(dst, R(base+(uint64(i)*uint64(cols)+uint64(j))*elemSize))
		}
	}
	return dst
}

// StrideTrace generates n accesses starting at base with a fixed byte
// stride — the generic form of the exercise.
func StrideTrace(base uint64, n int, stride uint64) []Access {
	return AppendStrideTrace(make([]Access, 0, n), base, n, stride)
}

// AppendStrideTrace appends the stride trace to dst and returns the
// extended slice.
func AppendStrideTrace(dst []Access, base uint64, n int, stride uint64) []Access {
	dst = growTrace(dst, n)
	for i := 0; i < n; i++ {
		dst = append(dst, R(base+uint64(i)*stride))
	}
	return dst
}

// growTrace guarantees capacity for n more accesses with at most one
// allocation (append's doubling could reallocate repeatedly for long
// traces).
func growTrace(dst []Access, n int) []Access {
	if cap(dst)-len(dst) >= n {
		return dst
	}
	grown := make([]Access, len(dst), len(dst)+n)
	copy(grown, dst)
	return grown
}

// RepeatTrace repeats a trace k times, modeling an outer loop over the same
// working set (the source of temporal locality).
func RepeatTrace(trace []Access, k int) []Access {
	out := make([]Access, 0, len(trace)*k)
	for i := 0; i < k; i++ {
		out = append(out, trace...)
	}
	return out
}

// Level is one tier in a multi-level effective-access-time computation.
type Level struct {
	Name      string
	LatencyNs float64 // access time of this tier
	HitRate   float64 // fraction of accesses reaching this tier that hit it
}

// MultiLevelEAT chains the course's EAT formula through multiple cache
// levels: an access pays each tier's latency until it hits, and the final
// tier must catch everything (hit rate 1).
func MultiLevelEAT(levels []Level) (float64, error) {
	if len(levels) == 0 {
		return 0, fmt.Errorf("memhier: no levels")
	}
	for i, l := range levels {
		if l.HitRate < 0 || l.HitRate > 1 {
			return 0, fmt.Errorf("memhier: level %q hit rate %v outside [0,1]", l.Name, l.HitRate)
		}
		if l.LatencyNs < 0 {
			return 0, fmt.Errorf("memhier: level %q negative latency", l.Name)
		}
		if i == len(levels)-1 && l.HitRate != 1 {
			return 0, fmt.Errorf("memhier: last level %q must have hit rate 1", l.Name)
		}
	}
	eat := 0.0
	reach := 1.0 // fraction of accesses reaching this tier
	for _, l := range levels {
		eat += reach * l.LatencyNs
		reach *= 1 - l.HitRate
	}
	return eat, nil
}
