package memhier

import (
	"testing"
	"testing/quick"
)

func TestDefaultHierarchyValid(t *testing.T) {
	if err := ValidateHierarchy(DefaultHierarchy); err != nil {
		t.Errorf("default hierarchy invalid: %v", err)
	}
	// Spot-check the pedagogical essentials.
	if DefaultHierarchy[0].Name != "registers" {
		t.Error("registers should top the hierarchy")
	}
	last := DefaultHierarchy[len(DefaultHierarchy)-1]
	if last.Primary {
		t.Error("bottom of hierarchy should be secondary storage")
	}
}

func TestValidateHierarchyCatchesInversions(t *testing.T) {
	bad := []Device{
		{Name: "slow", LatencyNs: 100, Capacity: 10},
		{Name: "fast", LatencyNs: 1, Capacity: 100},
	}
	if err := ValidateHierarchy(bad); err == nil {
		t.Error("latency inversion not caught")
	}
	bad2 := []Device{
		{Name: "big", LatencyNs: 1, Capacity: 1000},
		{Name: "small", LatencyNs: 10, Capacity: 10},
	}
	if err := ValidateHierarchy(bad2); err == nil {
		t.Error("capacity inversion not caught")
	}
}

func TestEffectiveAccessTime(t *testing.T) {
	eat, err := EffectiveAccessTime(1, 100, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.95*1 + 0.05*100
	if diff := eat - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("EAT = %v, want %v", eat, want)
	}
	if _, err := EffectiveAccessTime(1, 100, 1.5); err == nil {
		t.Error("hit rate > 1 should fail")
	}
	if _, err := EffectiveAccessTime(1, 100, -0.1); err == nil {
		t.Error("negative hit rate should fail")
	}
}

func TestAnalyzeLocalityTemporal(t *testing.T) {
	// Same address over and over: pure temporal locality.
	trace := RepeatTrace([]Access{R(0x1000)}, 10)
	rep := AnalyzeLocality(trace, 4, 64)
	if rep.TemporalHits != 9 {
		t.Errorf("temporal hits = %d, want 9", rep.TemporalHits)
	}
	if rep.SpatialHits != 0 {
		t.Errorf("spatial hits = %d, want 0", rep.SpatialHits)
	}
	if rep.TemporalFraction() != 0.9 {
		t.Errorf("temporal fraction = %v", rep.TemporalFraction())
	}
}

func TestAnalyzeLocalitySpatial(t *testing.T) {
	// Sequential bytes: pure spatial locality.
	trace := StrideTrace(0x1000, 10, 4)
	rep := AnalyzeLocality(trace, 4, 64)
	if rep.SpatialHits != 9 {
		t.Errorf("spatial hits = %d, want 9", rep.SpatialHits)
	}
	if rep.TemporalHits != 0 {
		t.Errorf("temporal hits = %d", rep.TemporalHits)
	}
}

func TestAnalyzeLocalityNone(t *testing.T) {
	// Huge strides: neither kind of locality.
	trace := StrideTrace(0, 10, 1<<20)
	rep := AnalyzeLocality(trace, 4, 64)
	if rep.TemporalHits != 0 || rep.SpatialHits != 0 {
		t.Errorf("random-ish trace: %+v", rep)
	}
	if rep.TemporalFraction() != 0 || rep.SpatialFraction() != 0 {
		t.Error("fractions should be 0")
	}
}

func TestAnalyzeLocalityEmptyAndDefaults(t *testing.T) {
	rep := AnalyzeLocality(nil, 0, 64)
	if rep.Accesses != 0 || rep.Window != 32 {
		t.Errorf("empty trace: %+v", rep)
	}
	if rep.TemporalFraction() != 0 {
		t.Error("empty fraction should be 0")
	}
}

func TestMatrixTraces(t *testing.T) {
	rm := MatrixTraceRowMajor(0, 2, 3, 4)
	want := []uint64{0, 4, 8, 12, 16, 20}
	for i, a := range rm {
		if a.Addr != want[i] {
			t.Errorf("row-major[%d] = %d, want %d", i, a.Addr, want[i])
		}
	}
	cm := MatrixTraceColMajor(0, 2, 3, 4)
	wantCM := []uint64{0, 12, 4, 16, 8, 20}
	for i, a := range cm {
		if a.Addr != wantCM[i] {
			t.Errorf("col-major[%d] = %d, want %d", i, a.Addr, wantCM[i])
		}
	}
	if len(rm) != len(cm) {
		t.Error("traces should have equal length")
	}
}

// Property: row-major and column-major traces visit the same address set.
func TestMatrixTracesSameAddressSet(t *testing.T) {
	f := func(rRaw, cRaw uint8) bool {
		rows := int(rRaw%16) + 1
		cols := int(cRaw%16) + 1
		rm := MatrixTraceRowMajor(0x1000, rows, cols, 4)
		cm := MatrixTraceColMajor(0x1000, rows, cols, 4)
		set := make(map[uint64]bool)
		for _, a := range rm {
			set[a.Addr] = true
		}
		for _, a := range cm {
			if !set[a.Addr] {
				return false
			}
		}
		return len(rm) == len(cm) && len(set) == rows*cols
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: row-major traces have better (or equal) spatial locality than
// column-major for matrices wider than one column.
func TestRowMajorBeatsColMajorLocality(t *testing.T) {
	f := func(seed uint8) bool {
		rows := int(seed%8) + 2
		cols := int(seed/8%8) + 2
		rm := AnalyzeLocality(MatrixTraceRowMajor(0, rows, cols, 4), 8, 64)
		cm := AnalyzeLocality(MatrixTraceColMajor(0, rows, cols, 4), 8, 64)
		return rm.SpatialFraction() >= cm.SpatialFraction()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRepeatTrace(t *testing.T) {
	base := []Access{R(1), W(2)}
	rep := RepeatTrace(base, 3)
	if len(rep) != 6 {
		t.Fatalf("len = %d", len(rep))
	}
	if rep[3].Addr != 2 || !rep[3].Write {
		t.Errorf("rep[3] = %+v", rep[3])
	}
}

func TestRW(t *testing.T) {
	if R(5).Write || R(5).Addr != 5 {
		t.Error("R")
	}
	if !W(7).Write || W(7).Addr != 7 {
		t.Error("W")
	}
}

func TestMultiLevelEAT(t *testing.T) {
	eat, err := MultiLevelEAT([]Level{
		{Name: "L1", LatencyNs: 1, HitRate: 0.9},
		{Name: "L2", LatencyNs: 10, HitRate: 0.8},
		{Name: "RAM", LatencyNs: 100, HitRate: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 1 + 0.1*10 + 0.1*0.2*100 = 1 + 1 + 2 = 4
	if diff := eat - 4; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("EAT = %v, want 4", eat)
	}
	// Single level degenerates to its latency.
	one, err := MultiLevelEAT([]Level{{Name: "RAM", LatencyNs: 100, HitRate: 1}})
	if err != nil || one != 100 {
		t.Errorf("single level: %v, %v", one, err)
	}
}

func TestMultiLevelEATErrors(t *testing.T) {
	if _, err := MultiLevelEAT(nil); err == nil {
		t.Error("empty levels should fail")
	}
	if _, err := MultiLevelEAT([]Level{{HitRate: 2, LatencyNs: 1}}); err == nil {
		t.Error("bad hit rate should fail")
	}
	if _, err := MultiLevelEAT([]Level{{HitRate: 0.5, LatencyNs: 1}}); err == nil {
		t.Error("non-total last level should fail")
	}
	if _, err := MultiLevelEAT([]Level{{HitRate: 1, LatencyNs: -1}}); err == nil {
		t.Error("negative latency should fail")
	}
}

// Property: adding a cache level with positive hit rate above a slow tier
// never increases EAT versus going straight to that tier, as long as the
// new level is faster.
func TestCacheLevelHelpsProperty(t *testing.T) {
	f := func(hrRaw uint8) bool {
		hr := float64(hrRaw%100) / 100.0
		with, err := MultiLevelEAT([]Level{
			{Name: "L1", LatencyNs: 1, HitRate: hr},
			{Name: "RAM", LatencyNs: 100, HitRate: 1},
		})
		if err != nil {
			return false
		}
		without := 100.0
		return with <= without+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestAppendTraceGeneratorsMatch pins the Append* forms to the allocating
// forms, including appending onto a non-empty prefix.
func TestAppendTraceGeneratorsMatch(t *testing.T) {
	prefix := []Access{W(0xdead)}
	checks := []struct {
		name     string
		direct   []Access
		appended []Access
	}{
		{"rowmajor", MatrixTraceRowMajor(0x40, 5, 7, 4), AppendMatrixTraceRowMajor(append([]Access(nil), prefix...), 0x40, 5, 7, 4)},
		{"colmajor", MatrixTraceColMajor(0x40, 5, 7, 4), AppendMatrixTraceColMajor(append([]Access(nil), prefix...), 0x40, 5, 7, 4)},
		{"stride", StrideTrace(0x80, 9, 16), AppendStrideTrace(append([]Access(nil), prefix...), 0x80, 9, 16)},
	}
	for _, c := range checks {
		if got, want := len(c.appended), len(prefix)+len(c.direct); got != want {
			t.Errorf("%s: appended length %d, want %d", c.name, got, want)
			continue
		}
		if c.appended[0] != prefix[0] {
			t.Errorf("%s: prefix clobbered: %+v", c.name, c.appended[0])
		}
		for i, a := range c.direct {
			if c.appended[len(prefix)+i] != a {
				t.Fatalf("%s: access %d = %+v, want %+v", c.name, i, c.appended[len(prefix)+i], a)
			}
		}
	}
}

// TestTraceGeneratorAllocations pins the allocation contract: one
// allocation for a fresh trace, zero when regenerating into a buffer with
// capacity (the sweep engine's per-case reuse pattern).
func TestTraceGeneratorAllocations(t *testing.T) {
	if avg := testing.AllocsPerRun(20, func() { MatrixTraceRowMajor(0, 64, 64, 4) }); avg != 1 {
		t.Errorf("fresh row-major trace costs %.1f allocations, want 1", avg)
	}
	buf := make([]Access, 0, 64*64)
	avg := testing.AllocsPerRun(20, func() {
		buf = AppendMatrixTraceRowMajor(buf[:0], 0, 64, 64, 4)
		buf = AppendMatrixTraceColMajor(buf[:0], 0, 64, 64, 4)
		buf = AppendStrideTrace(buf[:0], 0, 64*64, 4)
	})
	if avg != 0 {
		t.Errorf("buffer-reuse regeneration costs %.1f allocations, want 0", avg)
	}
}
