package life

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestBlinkerOscillates(t *testing.T) {
	cfg := Oscillator()
	g, err := cfg.BuildGrid(Torus)
	if err != nil {
		t.Fatal(err)
	}
	start := g.Clone()
	g.Step()
	// Horizontal blinker becomes vertical.
	for _, rc := range [][2]int{{1, 2}, {2, 2}, {3, 2}} {
		if !g.Alive(rc[0], rc[1]) {
			t.Errorf("cell %v should be alive after one step:\n%s", rc, g)
		}
	}
	if g.Population() != 3 {
		t.Errorf("population = %d", g.Population())
	}
	g.Step()
	if !g.Equal(start) {
		t.Errorf("blinker should return to start after two steps:\n%s", g)
	}
	if g.Generation != 2 {
		t.Errorf("generation = %d", g.Generation)
	}
}

func TestBlockStillLife(t *testing.T) {
	g, err := NewGrid(4, 4, DeadEdges)
	if err != nil {
		t.Fatal(err)
	}
	for _, rc := range [][2]int{{1, 1}, {1, 2}, {2, 1}, {2, 2}} {
		if err := g.Set(rc[0], rc[1], true); err != nil {
			t.Fatal(err)
		}
	}
	before := g.Clone()
	g.Run(5)
	if !g.Equal(before) {
		t.Errorf("block should be stable:\n%s", g)
	}
}

func TestGliderMovesOnTorus(t *testing.T) {
	g, err := NewGrid(8, 8, Torus)
	if err != nil {
		t.Fatal(err)
	}
	glider := [][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 1}, {2, 2}}
	for _, rc := range glider {
		g.Set(rc[0], rc[1], true)
	}
	g.Run(4) // a glider translates by (1,1) every 4 generations
	for _, rc := range glider {
		if !g.Alive(rc[0]+1, rc[1]+1) {
			t.Errorf("glider cell should be at (%d,%d):\n%s", rc[0]+1, rc[1]+1, g)
		}
	}
	if g.Population() != 5 {
		t.Errorf("glider population = %d", g.Population())
	}
}

func TestEdgeModes(t *testing.T) {
	// Three live cells in a corner behave differently with wraparound.
	mk := func(mode EdgeMode) *Grid {
		g, _ := NewGrid(3, 3, mode)
		g.Set(0, 0, true)
		g.Set(0, 1, true)
		g.Set(1, 0, true)
		return g
	}
	torus := mk(Torus)
	dead := mk(DeadEdges)
	torus.Step()
	dead.Step()
	if torus.Equal(dead) {
		t.Error("torus and dead-edge grids should diverge at the corner")
	}
	if Torus.String() != "torus" || DeadEdges.String() != "dead-edges" {
		t.Error("mode names")
	}
	if AliveEdges.String() != "alive-edges" || MirrorEdges.String() != "mirror" {
		t.Error("mode names")
	}
	// Alive edges feed the corner three live ghosts per out-of-bounds side;
	// mirror edges reflect it back on itself. All four must disagree with at
	// least one sibling at this corner.
	alive := mk(AliveEdges)
	mirror := mk(MirrorEdges)
	alive.Step()
	mirror.Step()
	if alive.Equal(dead) {
		t.Error("alive-edge and dead-edge grids should diverge at the corner")
	}
	if mirror.Equal(dead) {
		t.Error("mirror and dead-edge grids should diverge at the corner")
	}
}

func TestGridValidation(t *testing.T) {
	if _, err := NewGrid(0, 5, Torus); err == nil {
		t.Error("0 rows should fail")
	}
	g, _ := NewGrid(3, 3, Torus)
	if err := g.Set(3, 0, true); err == nil {
		t.Error("out-of-range Set should fail")
	}
	if err := g.Set(0, -1, true); err == nil {
		t.Error("negative col should fail")
	}
}

func TestParseConfig(t *testing.T) {
	cfg, err := ParseConfig(strings.NewReader("5 4 10\n0 0\n2 3\n4 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Rows != 5 || cfg.Cols != 4 || cfg.Iters != 10 || len(cfg.Live) != 3 {
		t.Errorf("config: %+v", cfg)
	}
	g, err := cfg.BuildGrid(Torus)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Alive(2, 3) || g.Population() != 3 {
		t.Error("grid build mismatch")
	}
}

func TestParseConfigErrors(t *testing.T) {
	cases := []string{
		"",           // no header
		"0 5 1",      // zero rows
		"5 5 -1",     // negative iterations
		"3 3 1\n5 5", // live cell out of range
		"3 3 1\n1 x", // malformed pair
	}
	for _, src := range cases {
		if _, err := ParseConfig(strings.NewReader(src)); err == nil {
			t.Errorf("config %q should fail", src)
		}
	}
}

func TestStringRendering(t *testing.T) {
	g, _ := NewGrid(2, 3, Torus)
	g.Set(0, 1, true)
	want := ".@.\n...\n"
	if g.String() != want {
		t.Errorf("String() = %q, want %q", g.String(), want)
	}
	b := g.Bools()
	if !b[0][1] || b[1][2] {
		t.Error("Bools mismatch")
	}
}

// The Lab 10 acceptance test: the parallel engine must produce exactly the
// serial engine's result for any grid, thread count, and partitioning.
func TestParallelMatchesSerial(t *testing.T) {
	for _, threads := range []int{1, 2, 3, 4, 8} {
		for _, part := range []Partition{ByRows, ByCols} {
			for seed := int64(0); seed < 3; seed++ {
				serial, _ := NewGrid(20, 17, Torus)
				serial.Randomize(seed, 0.35)
				parallel := serial.Clone()

				serial.Run(6)
				pr := &ParallelRunner{G: parallel, Threads: threads, Partition: part}
				stats, err := pr.Run(6)
				if err != nil {
					t.Fatalf("threads=%d part=%v seed=%d: %v", threads, part, seed, err)
				}
				if !parallel.Equal(serial) {
					t.Errorf("threads=%d part=%v seed=%d: parallel diverged from serial",
						threads, part, seed)
				}
				if stats.Rounds != 6 {
					t.Errorf("rounds = %d", stats.Rounds)
				}
			}
		}
	}
}

// Property: serial/parallel equivalence over random configurations.
func TestParallelEquivalenceProperty(t *testing.T) {
	f := func(seed int64, tRaw, pRaw uint8) bool {
		threads := int(tRaw%6) + 1
		part := Partition(int(pRaw) % 2)
		serial, err := NewGrid(12, 9, Torus)
		if err != nil {
			return false
		}
		serial.Randomize(seed, 0.4)
		parallel := serial.Clone()
		serial.Run(3)
		pr := &ParallelRunner{G: parallel, Threads: threads, Partition: part}
		if _, err := pr.Run(3); err != nil {
			return false
		}
		return parallel.Equal(serial)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestParallelRunnerValidation(t *testing.T) {
	g, _ := NewGrid(4, 4, Torus)
	pr := &ParallelRunner{G: g, Threads: 0}
	if _, err := pr.Run(1); err == nil {
		t.Error("0 threads should fail")
	}
}

func TestParallelMoreThreadsThanRows(t *testing.T) {
	serial, _ := NewGrid(3, 3, Torus)
	serial.Randomize(5, 0.5)
	parallel := serial.Clone()
	serial.Run(2)
	pr := &ParallelRunner{G: parallel, Threads: 16, Partition: ByRows}
	if _, err := pr.Run(2); err != nil {
		t.Fatal(err)
	}
	if !parallel.Equal(serial) {
		t.Error("oversubscribed run diverged")
	}
}

func TestOnRoundCallback(t *testing.T) {
	g, _ := NewGrid(6, 6, Torus)
	g.Randomize(1, 0.4)
	var gens []int
	pr := &ParallelRunner{
		G: g, Threads: 2,
		OnRound: func(g *Grid) { gens = append(gens, g.Generation) },
	}
	if _, err := pr.Run(4); err != nil {
		t.Fatal(err)
	}
	if len(gens) != 4 {
		t.Fatalf("callback rounds: %v", gens)
	}
	for i, gen := range gens {
		if gen != i+1 {
			t.Errorf("round %d saw generation %d", i, gen)
		}
	}
}

func TestOwnerPartitioning(t *testing.T) {
	g, _ := NewGrid(10, 10, Torus)
	pr := &ParallelRunner{G: g, Threads: 3, Partition: ByRows}
	if pr.Owner(0, 5) != 0 || pr.Owner(9, 5) != 2 {
		t.Errorf("row owners: %d, %d", pr.Owner(0, 5), pr.Owner(9, 5))
	}
	prc := &ParallelRunner{G: g, Threads: 2, Partition: ByCols}
	if prc.Owner(5, 0) != 0 || prc.Owner(5, 9) != 1 {
		t.Errorf("col owners: %d, %d", prc.Owner(5, 0), prc.Owner(5, 9))
	}
	if ByRows.String() != "rows" || ByCols.String() != "columns" {
		t.Error("partition names")
	}
}

func TestLiveUpdatesCounted(t *testing.T) {
	cfg := Oscillator()
	g, _ := cfg.BuildGrid(Torus)
	pr := &ParallelRunner{G: g, Threads: 2}
	stats, err := pr.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	// Blinker flips 4 cells per step (2 die, 2 born).
	if stats.LiveUpdates != 4 {
		t.Errorf("live updates = %d, want 4", stats.LiveUpdates)
	}
}

func BenchmarkLifeSerial64(b *testing.B) {
	g, _ := NewGrid(64, 64, Torus)
	g.Randomize(1, 0.3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Step()
	}
}

func BenchmarkLifeParallel64x4(b *testing.B) {
	g, _ := NewGrid(64, 64, Torus)
	g.Randomize(1, 0.3)
	pr := &ParallelRunner{G: g, Threads: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pr.Run(1); err != nil {
			b.Fatal(err)
		}
	}
}
