// Package life implements Conway's Game of Life exactly as CS 31's Labs 6
// and 10 assign it: a serial engine over a 2D grid loaded from the lab's
// file format, and a parallel engine that partitions the grid by rows or
// columns across pthread-style threads, synchronizing each round with a
// barrier and protecting shared statistics with a mutex. The parallel
// engine is the course's flagship demonstration of near-linear speedup on
// multicore hardware.
package life

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/bits"
	"math/rand"
	"strings"
	"sync/atomic"

	"cs31/internal/obs"
	"cs31/internal/pthread"
)

// EdgeMode selects boundary behaviour.
type EdgeMode int

// Boundary modes: the lab uses a torus; dead edges are the simpler variant
// students sometimes build first. Alive edges (every out-of-bounds cell is
// permanently live) and mirror edges (out-of-bounds coordinates clamp to the
// nearest in-bounds row/column, so the board sees its own reflection) round
// out the set the packed kernel synthesizes as ghost rows and columns.
const (
	Torus EdgeMode = iota
	DeadEdges
	AliveEdges
	MirrorEdges
)

func (m EdgeMode) String() string {
	switch m {
	case Torus:
		return "torus"
	case DeadEdges:
		return "dead-edges"
	case AliveEdges:
		return "alive-edges"
	case MirrorEdges:
		return "mirror"
	}
	return fmt.Sprintf("EdgeMode(%d)", int(m))
}

// Partition selects how the parallel engine splits the grid (the lab asks
// for both and has students compare).
type Partition int

// Grid partitioning strategies.
const (
	ByRows Partition = iota
	ByCols
)

func (p Partition) String() string {
	if p == ByRows {
		return "rows"
	}
	return "columns"
}

// Grid is a Game of Life board with double buffering. A grid normally keeps
// one byte per cell; SetPacked(true) switches it to the bit-packed
// representation (64 cells per uint64 word) and every engine — serial,
// parallel, distributed — then runs the SWAR kernel in packed.go instead of
// the byte kernel.
type Grid struct {
	Rows, Cols int
	Mode       EdgeMode
	cells      []uint8 // current generation (byte representation)
	next       []uint8 // scratch for the next generation
	zeroRow    []uint8 // all-dead row standing in for out-of-bounds rows (DeadEdges)
	oneRow     []uint8 // all-live row standing in for out-of-bounds rows (AliveEdges)
	Generation int

	// Bit-packed representation (authoritative iff packed is true). Each row
	// is wpr words, bit j of word w = cell column w*64+j; slack bits of the
	// last word are always zero.
	packed        bool
	pcells, pnext []uint64
	wpr           int // words per row: (Cols+63)/64
	zeroRowP      []uint64
	oneRowP       []uint64
}

// NewGrid allocates an empty grid.
func NewGrid(rows, cols int, mode EdgeMode) (*Grid, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("life: grid %dx%d invalid", rows, cols)
	}
	g := &Grid{
		Rows: rows, Cols: cols, Mode: mode,
		cells:   make([]uint8, rows*cols),
		next:    make([]uint8, rows*cols),
		zeroRow: make([]uint8, cols),
		oneRow:  make([]uint8, cols),
	}
	for i := range g.oneRow {
		g.oneRow[i] = 1
	}
	return g, nil
}

// Set makes cell (r, c) alive or dead.
func (g *Grid) Set(r, c int, alive bool) error {
	if r < 0 || r >= g.Rows || c < 0 || c >= g.Cols {
		return fmt.Errorf("life: cell (%d,%d) outside %dx%d grid", r, c, g.Rows, g.Cols)
	}
	if g.packed {
		bit := uint64(1) << (uint(c) & 63)
		w := r*g.wpr + c>>6
		if alive {
			g.pcells[w] |= bit
		} else {
			g.pcells[w] &^= bit
		}
		return nil
	}
	if alive {
		g.cells[r*g.Cols+c] = 1
	} else {
		g.cells[r*g.Cols+c] = 0
	}
	return nil
}

// Alive reports whether cell (r, c) is live.
func (g *Grid) Alive(r, c int) bool {
	if g.packed {
		return g.pcells[r*g.wpr+c>>6]>>(uint(c)&63)&1 == 1
	}
	return g.cells[r*g.Cols+c] == 1
}

// Population counts live cells: a popcount per word on the packed
// representation, a byte walk otherwise.
func (g *Grid) Population() int {
	n := 0
	if g.packed {
		for _, w := range g.pcells {
			n += bits.OnesCount64(w)
		}
		return n
	}
	for _, v := range g.cells {
		n += int(v)
	}
	return n
}

// Clone deep-copies the grid, preserving the active representation.
func (g *Grid) Clone() *Grid {
	ng := &Grid{
		Rows: g.Rows, Cols: g.Cols, Mode: g.Mode, Generation: g.Generation,
		cells:   append([]uint8(nil), g.cells...),
		next:    make([]uint8, len(g.next)),
		zeroRow: make([]uint8, g.Cols),
		oneRow:  append([]uint8(nil), g.oneRow...),
	}
	if g.packed {
		ng.packed = true
		ng.wpr = g.wpr
		ng.pcells = append([]uint64(nil), g.pcells...)
		ng.pnext = make([]uint64, len(g.pnext))
		ng.zeroRowP = make([]uint64, g.wpr)
		ng.oneRowP = append([]uint64(nil), g.oneRowP...)
	}
	return ng
}

// Equal compares live-cell patterns across any mix of representations.
func (g *Grid) Equal(o *Grid) bool {
	if g.Rows != o.Rows || g.Cols != o.Cols {
		return false
	}
	switch {
	case !g.packed && !o.packed:
		for i := range g.cells {
			if g.cells[i] != o.cells[i] {
				return false
			}
		}
	case g.packed && o.packed:
		for i := range g.pcells {
			if g.pcells[i] != o.pcells[i] {
				return false
			}
		}
	default:
		for r := 0; r < g.Rows; r++ {
			for c := 0; c < g.Cols; c++ {
				if g.Alive(r, c) != o.Alive(r, c) {
					return false
				}
			}
		}
	}
	return true
}

// Randomize fills the grid from a seeded RNG with the given live density.
// The byte buffer is filled first and re-packed if needed, so a packed and
// an unpacked grid given the same seed hold the same board.
func (g *Grid) Randomize(seed int64, density float64) {
	rng := rand.New(rand.NewSource(seed))
	for i := range g.cells {
		if rng.Float64() < density {
			g.cells[i] = 1
		} else {
			g.cells[i] = 0
		}
	}
	if g.packed {
		g.packFromBytes()
	}
}

// neighbors counts the live neighbors of (r, c) under the edge mode. It is
// the straight-line reference the row-sliced kernel below is differential-
// tested against; the hot paths never call it.
func (g *Grid) neighbors(r, c int) int {
	n := 0
	for dr := -1; dr <= 1; dr++ {
		for dc := -1; dc <= 1; dc++ {
			if dr == 0 && dc == 0 {
				continue
			}
			rr, cc := r+dr, c+dc
			oob := rr < 0 || rr >= g.Rows || cc < 0 || cc >= g.Cols
			switch g.Mode {
			case Torus:
				rr = (rr + g.Rows) % g.Rows
				cc = (cc + g.Cols) % g.Cols
			case DeadEdges:
				if oob {
					continue
				}
			case AliveEdges:
				// Any out-of-bounds coordinate — row, column, or both —
				// makes the neighbor a permanently live ghost cell.
				if oob {
					n++
					continue
				}
			case MirrorEdges:
				// Row and column clamp independently to the nearest
				// in-bounds index: the board sees its own reflection.
				rr = clamp(rr, g.Rows)
				cc = clamp(cc, g.Cols)
			}
			n += int(g.cells[rr*g.Cols+cc])
		}
	}
	return n
}

// clamp maps an out-of-bounds index one step past either end back onto the
// nearest in-bounds index (mirror reflection across the edge).
func clamp(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// stepCell computes the next state of one cell into the scratch buffer
// (reference path, kept for differential tests).
func (g *Grid) stepCell(r, c int) {
	n := g.neighbors(r, c)
	idx := r*g.Cols + c
	switch {
	case g.cells[idx] == 1 && (n == 2 || n == 3):
		g.next[idx] = 1
	case g.cells[idx] == 0 && n == 3:
		g.next[idx] = 1
	default:
		g.next[idx] = 0
	}
}

// stepReference advances one generation through the per-cell reference path.
// Differential tests compare it against the row-sliced kernel.
func (g *Grid) stepReference() {
	for r := 0; r < g.Rows; r++ {
		for c := 0; c < g.Cols; c++ {
			g.stepCell(r, c)
		}
	}
	g.swap()
}

// rowIn returns row r of cells, synthesizing the mode's ghost row when r is
// out of bounds: the wrapped row under Torus, the all-dead row under
// DeadEdges, the all-live row under AliveEdges, and the clamped edge row
// under MirrorEdges.
func rowIn(cells, zeroRow, oneRow []uint8, rows, cols int, mode EdgeMode, r int) []uint8 {
	if r < 0 || r >= rows {
		switch mode {
		case Torus:
			if r < 0 {
				r = rows - 1
			} else {
				r = 0
			}
		case DeadEdges:
			return zeroRow
		case AliveEdges:
			return oneRow
		case MirrorEdges:
			r = clamp(r, rows)
		}
	}
	base := r * cols
	return cells[base : base+cols]
}

// stepEdgeCell handles one cell in column 0 or cols-1, where the horizontal
// neighbors need wrapping (Torus), dropping (DeadEdges), counting as live
// ghosts (AliveEdges), or clamping back onto the edge column (MirrorEdges).
// It returns 1 if the cell changed state.
func stepEdgeCell(up, cur, down, out []uint8, cols int, mode EdgeMode, c int) int64 {
	left, right := c-1, c+1
	ghosts := 0
	if left < 0 {
		switch mode {
		case Torus:
			left = cols - 1
		case DeadEdges:
			left = -1
		case AliveEdges:
			left = -1
			ghosts += 3 // up-left, left, down-left are all live ghosts
		case MirrorEdges:
			left = 0
		}
	}
	if right >= cols {
		switch mode {
		case Torus:
			right = 0
		case DeadEdges:
			right = -1
		case AliveEdges:
			right = -1
			ghosts += 3
		case MirrorEdges:
			right = cols - 1
		}
	}
	n := int(up[c]) + int(down[c]) + ghosts
	if left >= 0 {
		n += int(up[left]) + int(cur[left]) + int(down[left])
	}
	if right >= 0 {
		n += int(up[right]) + int(cur[right]) + int(down[right])
	}
	var v uint8
	if n == 3 || (n == 2 && cur[c] == 1) {
		v = 1
	}
	out[c] = v
	return int64(v ^ cur[c])
}

// stepSlices computes the next generation for the rectangle [loRow, hiRow) ×
// [loCol, hiCol) of src into dst and returns how many cells changed state.
// It is the shared hot kernel: per row it holds three row slices (above,
// current, below — wrapped or zero-substituted once per row), the interior
// columns take a branch-free 8-neighbor sum, and only the first and last
// columns pay for edge handling. It allocates nothing. The buffers are
// parameters rather than Grid fields so parallel workers can alternate
// parity buffers locally without touching shared Grid state between
// barrier rounds.
func stepSlices(src, dst, zeroRow, oneRow []uint8, rows, cols int, mode EdgeMode, loRow, hiRow, loCol, hiCol int) int64 {
	// An empty range owns no cells. Without this guard a loCol==hiCol==Cols
	// tile (a surplus ByCols worker) would still recompute the right edge
	// column, racing with the owning tile and double-counting changes.
	if loRow >= hiRow || loCol >= hiCol {
		return 0
	}
	var changed int64
	for r := loRow; r < hiRow; r++ {
		base := r * cols
		cur := src[base : base+cols]
		out := dst[base : base+cols]
		up := rowIn(src, zeroRow, oneRow, rows, cols, mode, r-1)
		down := rowIn(src, zeroRow, oneRow, rows, cols, mode, r+1)
		if loCol == 0 {
			changed += stepEdgeCell(up, cur, down, out, cols, mode, 0)
		}
		lo, hi := loCol, hiCol
		if lo < 1 {
			lo = 1
		}
		if hi > cols-1 {
			hi = cols - 1
		}
		for c := lo; c < hi; c++ {
			n := up[c-1] + up[c] + up[c+1] +
				cur[c-1] + cur[c+1] +
				down[c-1] + down[c] + down[c+1]
			var v uint8
			if n == 3 || (n == 2 && cur[c] == 1) {
				v = 1
			}
			out[c] = v
			changed += int64(v ^ cur[c])
		}
		if hiCol == cols && cols > 1 {
			changed += stepEdgeCell(up, cur, down, out, cols, mode, cols-1)
		}
	}
	return changed
}

// stepBlock runs the kernel over the grid's own current/scratch buffers.
func (g *Grid) stepBlock(loRow, hiRow, loCol, hiCol int) int64 {
	return stepSlices(g.cells, g.next, g.zeroRow, g.oneRow, g.Rows, g.Cols, g.Mode, loRow, hiRow, loCol, hiCol)
}

// swap promotes the scratch buffer to current (whichever representation is
// active).
func (g *Grid) swap() {
	if g.packed {
		g.pcells, g.pnext = g.pnext, g.pcells
	} else {
		g.cells, g.next = g.next, g.cells
	}
	g.Generation++
}

// Step advances one generation serially (Lab 6). An unpacked grid runs the
// row-sliced byte kernel — the same kernel the parallel tiles run, so
// measured speedups are against a fast serial baseline; a packed grid runs
// the SWAR kernel over 64-cell words.
func (g *Grid) Step() {
	if g.packed {
		g.stepPackedBlock(0, g.Rows, 0, g.wpr)
	} else {
		g.stepBlock(0, g.Rows, 0, g.Cols)
	}
	g.swap()
}

// Run advances n generations serially.
func (g *Grid) Run(n int) {
	for i := 0; i < n; i++ {
		g.Step()
	}
}

// RunCounted advances n generations serially and reports how many cells
// changed state in total — the serial twin of the parallel runner's
// LiveUpdates statistic, which the sweep engine's differential tests
// compare per-shard reductions against. A packed grid recovers the count
// from a popcount of the change mask per word.
func (g *Grid) RunCounted(n int) int64 {
	var changed int64
	for i := 0; i < n; i++ {
		if g.packed {
			changed += g.stepPackedBlock(0, g.Rows, 0, g.wpr)
		} else {
			changed += g.stepBlock(0, g.Rows, 0, g.Cols)
		}
		g.swap()
	}
	return changed
}

// Bools returns the grid as [][]bool for the visualizer.
func (g *Grid) Bools() [][]bool {
	out := make([][]bool, g.Rows)
	for r := range out {
		out[r] = make([]bool, g.Cols)
		for c := range out[r] {
			out[r][c] = g.Alive(r, c)
		}
	}
	return out
}

// String renders the grid in the lab's console format.
func (g *Grid) String() string {
	var sb strings.Builder
	for r := 0; r < g.Rows; r++ {
		for c := 0; c < g.Cols; c++ {
			if g.Alive(r, c) {
				sb.WriteByte('@')
			} else {
				sb.WriteByte('.')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Config is the lab's input file contents.
type Config struct {
	Rows, Cols, Iters int
	Live              [][2]int
}

// ParseConfig reads the Lab 6 file format: three header integers (rows,
// cols, iterations), then "row col" pairs of initially live cells.
func ParseConfig(r io.Reader) (*Config, error) {
	var cfg Config
	if _, err := fmt.Fscan(r, &cfg.Rows, &cfg.Cols, &cfg.Iters); err != nil {
		return nil, fmt.Errorf("life: bad config header: %w", err)
	}
	if cfg.Rows < 1 || cfg.Cols < 1 || cfg.Iters < 0 {
		return nil, fmt.Errorf("life: invalid config %dx%d iters %d", cfg.Rows, cfg.Cols, cfg.Iters)
	}
	for {
		var rr, cc int
		_, err := fmt.Fscan(r, &rr, &cc)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("life: bad live-cell pair: %w", err)
		}
		if rr < 0 || rr >= cfg.Rows || cc < 0 || cc >= cfg.Cols {
			return nil, fmt.Errorf("life: live cell (%d,%d) outside grid", rr, cc)
		}
		cfg.Live = append(cfg.Live, [2]int{rr, cc})
	}
	return &cfg, nil
}

// BuildGrid makes a grid from a parsed config.
func (cfg *Config) BuildGrid(mode EdgeMode) (*Grid, error) {
	g, err := NewGrid(cfg.Rows, cfg.Cols, mode)
	if err != nil {
		return nil, err
	}
	for _, rc := range cfg.Live {
		if err := g.Set(rc[0], rc[1], true); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Oscillator returns the classic blinker config used in the lab handout.
func Oscillator() *Config {
	return &Config{
		Rows: 5, Cols: 5, Iters: 4,
		Live: [][2]int{{2, 1}, {2, 2}, {2, 3}},
	}
}

// RunStats is the per-run statistics the parallel workers produce: each
// thread accumulates its tile's counts privately and the runner reduces
// them after join.
type RunStats struct {
	LiveUpdates int64 // cells that changed state, summed across threads
	Rounds      int
}

// statShardStride spaces per-thread LiveUpdates accumulators a cache line
// apart (8 int64s = 64 bytes, matching pthread.Sharded), so the one store
// each worker issues after its loop never false-shares with a neighbor.
const statShardStride = 8

// ParallelRunner advances a grid with worker threads (Lab 10).
type ParallelRunner struct {
	G         *Grid
	Threads   int
	Partition Partition

	// OnRound, if non-nil, is called by the round's serial thread with the
	// freshly computed generation (used for visualization). Successive
	// callbacks are ordered (round r's callback happens before round
	// r+1's), but other workers may already be computing the next
	// generation while a callback runs; the grid state the callback
	// observes is stable until it returns.
	OnRound func(g *Grid)

	// Reference selects the pre-tree runner — central Cond barrier, two
	// crossings per generation, mutex-merged statistics — retained as the
	// differential-test and benchmark baseline for the sharded runner.
	Reference bool

	// Trace, if non-nil, records one timeline lane per worker: a
	// "generation" span around each kernel step and a "barrier-wait" span
	// around each crossing. Lanes and name handles are registered before
	// the workers spawn, so the per-round recording path allocates
	// nothing; a nil Trace costs a few inlined nil checks per round.
	Trace *obs.Trace

	// BarrierWaits, if non-nil, receives the duration of every barrier
	// crossing (one observation per worker per generation), sharded by
	// party id.
	BarrierWaits *obs.Histogram
}

// Run advances n generations in parallel: each thread owns a block of rows
// (or columns) and runs the same row-sliced kernel as the serial engine
// over it. One combining-tree barrier crossing separates generations: the
// parity swap is thread-local (each worker alternates src/dst every
// round), so no shared state needs a second protected phase — the round's
// serial thread publishes the new generation on the Grid while the others
// proceed. LiveUpdates accumulate in a register per worker and land in a
// cache-line-padded shard once after the loop, reduced after join; the
// per-generation hot path takes no lock and allocates nothing.
func (pr *ParallelRunner) Run(n int) (*RunStats, error) {
	return pr.RunCtx(context.Background(), n)
}

// noStop is stopRound's armed-but-not-triggered sentinel.
const noStop = math.MaxInt64

// RunCtx is Run under a context. Cancellation must be *uniform*: every
// worker has to leave the round loop at the same round boundary, or the
// leavers strand the stayers at the next barrier forever. The round's
// serial thread is the only cancellation observer: on a canceled context it
// arms stopRound = r+2 (stop before round r+2) after publishing round r.
// Every worker compares its finished round against stopRound at the bottom
// of each iteration; the barrier's own synchronization guarantees that by
// the time any worker finishes round r+1 it sees the arm (the serial thread
// stored it before arriving at barrier r+1), so all workers break together
// after round r+1. Cancellation therefore costs at most one extra
// generation of latency, the grid is left on a whole-generation boundary,
// and the error wraps ctx.Err().
func (pr *ParallelRunner) RunCtx(ctx context.Context, n int) (*RunStats, error) {
	if pr.Threads < 1 {
		return nil, fmt.Errorf("life: need at least 1 thread")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("life: parallel run not started: %w", err)
	}
	g := pr.G
	packed := g.packed
	extent := g.Rows
	if pr.Partition == ByCols {
		// A packed ByCols tile is a block of 64-cell words, not bit columns:
		// word w needs only read-shared access to words w-1 and w+1 of the
		// source parity buffer, so word tiles compose with the SWAR kernel
		// with no intra-word edge handling.
		if packed {
			extent = g.wpr
		} else {
			extent = g.Cols
		}
	}
	// Clamp to the partition extent (not Rows*Cols): surplus threads would
	// own empty tiles, and spawning them only adds barrier traffic. This
	// also keeps Run consistent with Owner's clamping.
	if pr.Threads > extent {
		pr.Threads = extent
	}
	if pr.Reference {
		if packed {
			return nil, fmt.Errorf("life: the packed runner has no reference path; the byte kernel is the reference")
		}
		return pr.refRun(ctx, n, extent)
	}
	barrier, err := pthread.NewBarrier(pr.Threads)
	if err != nil {
		return nil, err
	}
	if pr.BarrierWaits != nil {
		barrier.ObserveWaits(pr.BarrierWaits)
	}
	// Pre-register trace lanes and name handles outside the hot path:
	// workers record through fixed handles and never touch a string.
	var lanes []*obs.Lane
	var nGen, nBarrier obs.Name
	if pr.Trace != nil {
		nGen = pr.Trace.Name("generation")
		nBarrier = pr.Trace.Name("barrier-wait")
		lanes = make([]*obs.Lane, pr.Threads)
		for i := range lanes {
			lanes[i] = pr.Trace.Lane(fmt.Sprintf("worker %d", i))
		}
	}
	stats := &RunStats{}
	shards := make([]int64, pr.Threads*statShardStride)
	rows, cols, mode := g.Rows, g.Cols, g.Mode
	zero := g.zeroRow
	one := g.oneRow
	src0, dst0 := g.cells, g.next
	wpr := g.wpr
	psrc0, pdst0 := g.pcells, g.pnext
	zeroP, oneP := g.zeroRowP, g.oneRowP
	var stopRound atomic.Int64
	stopRound.Store(noStop)
	ctxDone := ctx.Done()

	worker := func(id int) interface{} {
		lo, hi := pthread.BlockRange(id, pr.Threads, extent)
		src, dst := src0, dst0
		psrc, pdst := psrc0, pdst0
		var lane *obs.Lane
		if lanes != nil {
			lane = lanes[id]
		}
		var updates int64
		for round := 0; round < n; round++ {
			lane.Begin(nGen)
			switch {
			case packed && pr.Partition == ByRows:
				updates += stepPackedSlices(psrc, pdst, zeroP, oneP, rows, cols, wpr, mode, lo, hi, 0, wpr)
			case packed:
				updates += stepPackedSlices(psrc, pdst, zeroP, oneP, rows, cols, wpr, mode, 0, rows, lo, hi)
			case pr.Partition == ByRows:
				updates += stepSlices(src, dst, zero, one, rows, cols, mode, lo, hi, 0, cols)
			default:
				updates += stepSlices(src, dst, zero, one, rows, cols, mode, 0, rows, lo, hi)
			}
			lane.End(nGen)
			// One barrier per generation: nobody may read dst as a source
			// until every tile of it is written. The serial thread
			// publishes the round on the Grid; that is safe against round
			// r+2 overwriting dst because round r+2 cannot start before
			// barrier r+1 completes, which needs the serial thread's
			// arrival after its callback returns.
			lane.Begin(nBarrier)
			serial := barrier.WaitParty(id)
			lane.End(nBarrier)
			if serial {
				if packed {
					g.pcells, g.pnext = pdst, psrc
				} else {
					g.cells, g.next = dst, src
				}
				g.Generation++
				stats.Rounds++
				if pr.OnRound != nil {
					pr.OnRound(g)
				}
				// Arm the uniform stop. Round serial threads are totally
				// ordered, so the CAS fires at most once; workers racing
				// through this round's bottom check may miss the arm, but
				// the barrier they cross next publishes it to everyone.
				if ctxDone != nil && ctx.Err() != nil {
					stopRound.CompareAndSwap(noStop, int64(round)+2)
				}
			}
			src, dst = dst, src
			psrc, pdst = pdst, psrc
			if int64(round)+1 >= stopRound.Load() {
				break
			}
		}
		shards[id*statShardStride] = updates
		return nil
	}

	if err := runWorkers(pr.Threads, worker); err != nil {
		return nil, err
	}
	for id := 0; id < pr.Threads; id++ {
		stats.LiveUpdates += shards[id*statShardStride]
	}
	if stopRound.Load() != noStop {
		return nil, fmt.Errorf("life: parallel run canceled after %d of %d rounds: %w", stats.Rounds, n, ctx.Err())
	}
	return stats, nil
}

// refRun is the pre-tree parallel path: a centralized barrier crossed
// twice per generation (compute, then swap) and LiveUpdates merged under
// the lab's shared-statistics mutex every round. The differential tests
// and BenchmarkParallelLife hold the sharded runner to this baseline.
// Cancellation is simpler than the tree path's: the serial thread arms the
// stop between the two barrier crossings, so the second crossing publishes
// it to every worker and all of them leave at the end of the same round.
func (pr *ParallelRunner) refRun(ctx context.Context, n, extent int) (*RunStats, error) {
	g := pr.G
	barrier, err := pthread.NewRefBarrier(pr.Threads)
	if err != nil {
		return nil, err
	}
	statsMu := pthread.NewMutex("life-stats")
	stats := &RunStats{}
	var stopRound atomic.Int64
	stopRound.Store(noStop)
	ctxDone := ctx.Done()

	worker := func(id int) interface{} {
		lo, hi := pthread.BlockRange(id, pr.Threads, extent)
		for round := 0; round < n; round++ {
			var changed int64
			if pr.Partition == ByRows {
				changed = g.stepBlock(lo, hi, 0, g.Cols)
			} else {
				changed = g.stepBlock(0, g.Rows, lo, hi)
			}
			// Merge per-round stats under the mutex (the lab's shared
			// state).
			if err := statsMu.Lock(); err != nil {
				return err
			}
			stats.LiveUpdates += changed
			if err := statsMu.Unlock(); err != nil {
				return err
			}
			// Wait for every thread to finish computing before swapping;
			// the serial thread performs the swap, then a second barrier
			// releases the next round.
			if barrier.Wait() {
				g.swap()
				stats.Rounds++
				if pr.OnRound != nil {
					pr.OnRound(g)
				}
				if ctxDone != nil && ctx.Err() != nil {
					stopRound.CompareAndSwap(noStop, int64(round)+1)
				}
			}
			barrier.Wait()
			if int64(round)+1 >= stopRound.Load() {
				break
			}
		}
		return nil
	}

	if err := runWorkers(pr.Threads, worker); err != nil {
		return nil, err
	}
	if stopRound.Load() != noStop {
		return nil, fmt.Errorf("life: parallel run canceled after %d of %d rounds: %w", stats.Rounds, n, ctx.Err())
	}
	return stats, nil
}

// runWorkers spawns one pthread per id, joins them all, and surfaces the
// first worker error.
func runWorkers(threads int, worker func(id int) interface{}) error {
	ts := make([]*pthread.Thread, threads)
	for id := 0; id < threads; id++ {
		id := id
		ts[id] = pthread.Create(func() interface{} { return worker(id) })
	}
	for _, t := range ts {
		v, err := t.Join()
		if err != nil {
			return err
		}
		if e, ok := v.(error); ok && e != nil {
			return e
		}
	}
	return nil
}

// Owner reports which thread owns cell (r, c) under the runner's
// partitioning — used by paravis to color regions.
func (pr *ParallelRunner) Owner(r, c int) int {
	extent := pr.G.Rows
	pos := r
	if pr.Partition == ByCols {
		extent = pr.G.Cols
		pos = c
		if pr.G.packed {
			// Packed ByCols tiles are word blocks: ownership follows the
			// 64-cell word the column lives in.
			extent = pr.G.wpr
			pos = c >> 6
		}
	}
	threads := pr.Threads
	if threads > extent {
		threads = extent
	}
	for id := 0; id < threads; id++ {
		lo, hi := pthread.BlockRange(id, threads, extent)
		if pos >= lo && pos < hi {
			return id
		}
	}
	return 0
}
