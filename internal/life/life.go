// Package life implements Conway's Game of Life exactly as CS 31's Labs 6
// and 10 assign it: a serial engine over a 2D grid loaded from the lab's
// file format, and a parallel engine that partitions the grid by rows or
// columns across pthread-style threads, synchronizing each round with a
// barrier and protecting shared statistics with a mutex. The parallel
// engine is the course's flagship demonstration of near-linear speedup on
// multicore hardware.
package life

import (
	"fmt"
	"io"
	"math/rand"
	"strings"

	"cs31/internal/pthread"
)

// EdgeMode selects boundary behaviour.
type EdgeMode int

// Boundary modes: the lab uses a torus; dead edges are the simpler variant
// students sometimes build first.
const (
	Torus EdgeMode = iota
	DeadEdges
)

func (m EdgeMode) String() string {
	if m == Torus {
		return "torus"
	}
	return "dead-edges"
}

// Partition selects how the parallel engine splits the grid (the lab asks
// for both and has students compare).
type Partition int

// Grid partitioning strategies.
const (
	ByRows Partition = iota
	ByCols
)

func (p Partition) String() string {
	if p == ByRows {
		return "rows"
	}
	return "columns"
}

// Grid is a Game of Life board with double buffering.
type Grid struct {
	Rows, Cols int
	Mode       EdgeMode
	cells      []uint8 // current generation
	next       []uint8 // scratch for the next generation
	zeroRow    []uint8 // all-dead row standing in for out-of-bounds rows (DeadEdges)
	Generation int
}

// NewGrid allocates an empty grid.
func NewGrid(rows, cols int, mode EdgeMode) (*Grid, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("life: grid %dx%d invalid", rows, cols)
	}
	return &Grid{
		Rows: rows, Cols: cols, Mode: mode,
		cells:   make([]uint8, rows*cols),
		next:    make([]uint8, rows*cols),
		zeroRow: make([]uint8, cols),
	}, nil
}

// Set makes cell (r, c) alive or dead.
func (g *Grid) Set(r, c int, alive bool) error {
	if r < 0 || r >= g.Rows || c < 0 || c >= g.Cols {
		return fmt.Errorf("life: cell (%d,%d) outside %dx%d grid", r, c, g.Rows, g.Cols)
	}
	if alive {
		g.cells[r*g.Cols+c] = 1
	} else {
		g.cells[r*g.Cols+c] = 0
	}
	return nil
}

// Alive reports whether cell (r, c) is live.
func (g *Grid) Alive(r, c int) bool {
	return g.cells[r*g.Cols+c] == 1
}

// Population counts live cells.
func (g *Grid) Population() int {
	n := 0
	for _, v := range g.cells {
		n += int(v)
	}
	return n
}

// Clone deep-copies the grid.
func (g *Grid) Clone() *Grid {
	ng := &Grid{
		Rows: g.Rows, Cols: g.Cols, Mode: g.Mode, Generation: g.Generation,
		cells:   append([]uint8(nil), g.cells...),
		next:    make([]uint8, len(g.next)),
		zeroRow: make([]uint8, g.Cols),
	}
	return ng
}

// Equal compares live-cell patterns.
func (g *Grid) Equal(o *Grid) bool {
	if g.Rows != o.Rows || g.Cols != o.Cols {
		return false
	}
	for i := range g.cells {
		if g.cells[i] != o.cells[i] {
			return false
		}
	}
	return true
}

// Randomize fills the grid from a seeded RNG with the given live density.
func (g *Grid) Randomize(seed int64, density float64) {
	rng := rand.New(rand.NewSource(seed))
	for i := range g.cells {
		if rng.Float64() < density {
			g.cells[i] = 1
		} else {
			g.cells[i] = 0
		}
	}
}

// neighbors counts the live neighbors of (r, c) under the edge mode. It is
// the straight-line reference the row-sliced kernel below is differential-
// tested against; the hot paths never call it.
func (g *Grid) neighbors(r, c int) int {
	n := 0
	for dr := -1; dr <= 1; dr++ {
		for dc := -1; dc <= 1; dc++ {
			if dr == 0 && dc == 0 {
				continue
			}
			rr, cc := r+dr, c+dc
			if g.Mode == Torus {
				rr = (rr + g.Rows) % g.Rows
				cc = (cc + g.Cols) % g.Cols
			} else if rr < 0 || rr >= g.Rows || cc < 0 || cc >= g.Cols {
				continue
			}
			n += int(g.cells[rr*g.Cols+cc])
		}
	}
	return n
}

// stepCell computes the next state of one cell into the scratch buffer
// (reference path, kept for differential tests).
func (g *Grid) stepCell(r, c int) {
	n := g.neighbors(r, c)
	idx := r*g.Cols + c
	switch {
	case g.cells[idx] == 1 && (n == 2 || n == 3):
		g.next[idx] = 1
	case g.cells[idx] == 0 && n == 3:
		g.next[idx] = 1
	default:
		g.next[idx] = 0
	}
}

// stepReference advances one generation through the per-cell reference path.
// Differential tests compare it against the row-sliced kernel.
func (g *Grid) stepReference() {
	for r := 0; r < g.Rows; r++ {
		for c := 0; c < g.Cols; c++ {
			g.stepCell(r, c)
		}
	}
	g.swap()
}

// row returns the cells of row r, wrapping under Torus and substituting the
// all-dead row when r is outside a DeadEdges grid.
func (g *Grid) row(r int) []uint8 {
	if r < 0 {
		if g.Mode != Torus {
			return g.zeroRow
		}
		r = g.Rows - 1
	} else if r >= g.Rows {
		if g.Mode != Torus {
			return g.zeroRow
		}
		r = 0
	}
	base := r * g.Cols
	return g.cells[base : base+g.Cols]
}

// stepEdgeCell handles one cell in column 0 or Cols-1, where the horizontal
// neighbors need wrapping (Torus) or dropping (DeadEdges). It returns 1 if
// the cell changed state.
func (g *Grid) stepEdgeCell(up, cur, down, out []uint8, c int) int64 {
	left, right := c-1, c+1
	if left < 0 {
		if g.Mode == Torus {
			left = g.Cols - 1
		} else {
			left = -1
		}
	}
	if right >= g.Cols {
		if g.Mode == Torus {
			right = 0
		} else {
			right = -1
		}
	}
	n := int(up[c]) + int(down[c])
	if left >= 0 {
		n += int(up[left]) + int(cur[left]) + int(down[left])
	}
	if right >= 0 {
		n += int(up[right]) + int(cur[right]) + int(down[right])
	}
	var v uint8
	if n == 3 || (n == 2 && cur[c] == 1) {
		v = 1
	}
	out[c] = v
	return int64(v ^ cur[c])
}

// stepBlock computes the next generation for the rectangle [loRow, hiRow) ×
// [loCol, hiCol) into the scratch buffer and returns how many cells changed
// state. It is the shared hot kernel: per row it holds three row slices
// (above, current, below — wrapped or zero-substituted once per row), the
// interior columns take a branch-free 8-neighbor sum, and only the first and
// last columns pay for edge handling. It allocates nothing.
func (g *Grid) stepBlock(loRow, hiRow, loCol, hiCol int) int64 {
	// An empty range owns no cells. Without this guard a loCol==hiCol==Cols
	// tile (a surplus ByCols worker) would still recompute the right edge
	// column, racing with the owning tile and double-counting changes.
	if loRow >= hiRow || loCol >= hiCol {
		return 0
	}
	cols := g.Cols
	var changed int64
	for r := loRow; r < hiRow; r++ {
		base := r * cols
		cur := g.cells[base : base+cols]
		out := g.next[base : base+cols]
		up := g.row(r - 1)
		down := g.row(r + 1)
		if loCol == 0 {
			changed += g.stepEdgeCell(up, cur, down, out, 0)
		}
		lo, hi := loCol, hiCol
		if lo < 1 {
			lo = 1
		}
		if hi > cols-1 {
			hi = cols - 1
		}
		for c := lo; c < hi; c++ {
			n := up[c-1] + up[c] + up[c+1] +
				cur[c-1] + cur[c+1] +
				down[c-1] + down[c] + down[c+1]
			var v uint8
			if n == 3 || (n == 2 && cur[c] == 1) {
				v = 1
			}
			out[c] = v
			changed += int64(v ^ cur[c])
		}
		if hiCol == cols && cols > 1 {
			changed += g.stepEdgeCell(up, cur, down, out, cols-1)
		}
	}
	return changed
}

// swap promotes the scratch buffer to current.
func (g *Grid) swap() {
	g.cells, g.next = g.next, g.cells
	g.Generation++
}

// Step advances one generation serially (Lab 6) through the row-sliced
// kernel — the same kernel the parallel tiles run, so measured speedups are
// against a fast serial baseline.
func (g *Grid) Step() {
	g.stepBlock(0, g.Rows, 0, g.Cols)
	g.swap()
}

// Run advances n generations serially.
func (g *Grid) Run(n int) {
	for i := 0; i < n; i++ {
		g.Step()
	}
}

// Bools returns the grid as [][]bool for the visualizer.
func (g *Grid) Bools() [][]bool {
	out := make([][]bool, g.Rows)
	for r := range out {
		out[r] = make([]bool, g.Cols)
		for c := range out[r] {
			out[r][c] = g.Alive(r, c)
		}
	}
	return out
}

// String renders the grid in the lab's console format.
func (g *Grid) String() string {
	var sb strings.Builder
	for r := 0; r < g.Rows; r++ {
		for c := 0; c < g.Cols; c++ {
			if g.Alive(r, c) {
				sb.WriteByte('@')
			} else {
				sb.WriteByte('.')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Config is the lab's input file contents.
type Config struct {
	Rows, Cols, Iters int
	Live              [][2]int
}

// ParseConfig reads the Lab 6 file format: three header integers (rows,
// cols, iterations), then "row col" pairs of initially live cells.
func ParseConfig(r io.Reader) (*Config, error) {
	var cfg Config
	if _, err := fmt.Fscan(r, &cfg.Rows, &cfg.Cols, &cfg.Iters); err != nil {
		return nil, fmt.Errorf("life: bad config header: %w", err)
	}
	if cfg.Rows < 1 || cfg.Cols < 1 || cfg.Iters < 0 {
		return nil, fmt.Errorf("life: invalid config %dx%d iters %d", cfg.Rows, cfg.Cols, cfg.Iters)
	}
	for {
		var rr, cc int
		_, err := fmt.Fscan(r, &rr, &cc)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("life: bad live-cell pair: %w", err)
		}
		if rr < 0 || rr >= cfg.Rows || cc < 0 || cc >= cfg.Cols {
			return nil, fmt.Errorf("life: live cell (%d,%d) outside grid", rr, cc)
		}
		cfg.Live = append(cfg.Live, [2]int{rr, cc})
	}
	return &cfg, nil
}

// BuildGrid makes a grid from a parsed config.
func (cfg *Config) BuildGrid(mode EdgeMode) (*Grid, error) {
	g, err := NewGrid(cfg.Rows, cfg.Cols, mode)
	if err != nil {
		return nil, err
	}
	for _, rc := range cfg.Live {
		if err := g.Set(rc[0], rc[1], true); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Oscillator returns the classic blinker config used in the lab handout.
func Oscillator() *Config {
	return &Config{
		Rows: 5, Cols: 5, Iters: 4,
		Live: [][2]int{{2, 1}, {2, 2}, {2, 3}},
	}
}

// RunStats is the shared state the parallel workers update under a mutex,
// as the lab requires.
type RunStats struct {
	LiveUpdates int64 // cells that changed state, summed across threads
	Rounds      int
}

// ParallelRunner advances a grid with worker threads (Lab 10).
type ParallelRunner struct {
	G         *Grid
	Threads   int
	Partition Partition

	// OnRound, if non-nil, is called by the serial thread after each round
	// with the freshly computed generation (used for visualization).
	OnRound func(g *Grid)
}

// Run advances n generations in parallel: each thread owns a block of rows
// (or columns), a barrier separates compute and swap phases each round, and
// the round statistics are merged under a mutex.
func (pr *ParallelRunner) Run(n int) (*RunStats, error) {
	if pr.Threads < 1 {
		return nil, fmt.Errorf("life: need at least 1 thread")
	}
	g := pr.G
	extent := g.Rows
	if pr.Partition == ByCols {
		extent = g.Cols
	}
	// Clamp to the partition extent (not Rows*Cols): surplus threads would
	// own empty tiles, and spawning them only adds barrier traffic. This
	// also keeps Run consistent with Owner's clamping.
	if pr.Threads > extent {
		pr.Threads = extent
	}
	barrier, err := pthread.NewBarrier(pr.Threads)
	if err != nil {
		return nil, err
	}
	statsMu := pthread.NewMutex("life-stats")
	stats := &RunStats{}

	worker := func(id int) interface{} {
		lo, hi := pthread.BlockRange(id, pr.Threads, extent)
		for round := 0; round < n; round++ {
			// Each tile runs the same row-sliced kernel as the serial
			// engine, over its block of rows (or columns).
			var changed int64
			if pr.Partition == ByRows {
				changed = g.stepBlock(lo, hi, 0, g.Cols)
			} else {
				changed = g.stepBlock(0, g.Rows, lo, hi)
			}
			// Merge per-round stats under the mutex (the lab's shared
			// state).
			if err := statsMu.Lock(); err != nil {
				return err
			}
			stats.LiveUpdates += changed
			if err := statsMu.Unlock(); err != nil {
				return err
			}
			// Wait for every thread to finish computing before swapping;
			// the serial thread performs the swap, then a second barrier
			// releases the next round.
			if barrier.Wait() {
				g.swap()
				stats.Rounds++
				if pr.OnRound != nil {
					pr.OnRound(g)
				}
			}
			barrier.Wait()
		}
		return nil
	}

	threads := make([]*pthread.Thread, pr.Threads)
	for id := 0; id < pr.Threads; id++ {
		id := id
		threads[id] = pthread.Create(func() interface{} { return worker(id) })
	}
	for _, t := range threads {
		v, err := t.Join()
		if err != nil {
			return nil, err
		}
		if e, ok := v.(error); ok && e != nil {
			return nil, e
		}
	}
	return stats, nil
}

// Owner reports which thread owns cell (r, c) under the runner's
// partitioning — used by paravis to color regions.
func (pr *ParallelRunner) Owner(r, c int) int {
	extent := pr.G.Rows
	pos := r
	if pr.Partition == ByCols {
		extent = pr.G.Cols
		pos = c
	}
	threads := pr.Threads
	if threads > extent {
		threads = extent
	}
	for id := 0; id < threads; id++ {
		lo, hi := pthread.BlockRange(id, threads, extent)
		if pos >= lo && pos < hi {
			return id
		}
	}
	return 0
}
