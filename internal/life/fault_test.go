package life

// Fault-layer tests for the Life engines: chaos-injected stragglers and
// full chaos matrices must leave the distributed runner bit-for-bit equal
// to the serial engine (chaos perturbs timing, never results), and context
// cancellation must stop both scale-out engines promptly without leaking a
// single worker goroutine.

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"cs31/internal/msgpass"
	"cs31/internal/pthread"
)

// TestDistStragglerBitForBit is the straggler experiment: one rank is
// chaos-delayed on every receive, so every halo exchange waits on the slow
// rank — and the result must still be bit-for-bit identical to the serial
// engine, because the halo protocol is synchronous-by-construction, not
// by-luck.
func TestDistStragglerBitForBit(t *testing.T) {
	stall := 50 * time.Millisecond
	gens := 3
	if testing.Short() {
		stall = 2 * time.Millisecond
	}
	g, err := NewGrid(24, 18, Torus)
	if err != nil {
		t.Fatal(err)
	}
	g.Randomize(7, 0.35)
	want := referenceRun(g, gens)
	serial := g.Clone()
	wantUpdates := serial.RunCounted(gens)

	dr := &DistRunner{
		G:     g,
		Ranks: 4,
		Chaos: &msgpass.Chaos{
			Seed:      99,
			StallProb: 1,
			MaxStall:  stall,
			Ranks:     []int{1},
		},
	}
	stats, err := dr.Run(gens)
	if err != nil {
		t.Fatal(err)
	}
	gridsMatch(t, "straggler dist vs reference", g, want)
	if stats.LiveUpdates != wantUpdates {
		t.Errorf("live updates %d, want %d", stats.LiveUpdates, wantUpdates)
	}
}

// TestDistChaosMatrix is the chaos acceptance matrix: seeds 1..20 by world
// sizes {2, 8, 33} (33 > rows exercises the surplus-rank clamp), each run
// under delivery-delay and stall injection plus an armed watchdog, each
// checked bit-for-bit against the serial engine. Any ordering the chaos
// schedules can legally produce must land on the same board.
func TestDistChaosMatrix(t *testing.T) {
	seeds := 20
	if testing.Short() {
		seeds = 4
	}
	const rows, cols, gens = 36, 20, 3
	fresh, err := NewGrid(rows, cols, Torus)
	if err != nil {
		t.Fatal(err)
	}
	fresh.Randomize(31, 0.3)
	want := referenceRun(fresh, gens)
	serial := fresh.Clone()
	wantUpdates := serial.RunCounted(gens)

	for seed := 1; seed <= seeds; seed++ {
		for _, ranks := range []int{2, 8, 33} {
			seed, ranks := seed, ranks
			t.Run(fmt.Sprintf("seed-%d/ranks-%d", seed, ranks), func(t *testing.T) {
				t.Parallel()
				g, err := NewGrid(rows, cols, Torus)
				if err != nil {
					t.Fatal(err)
				}
				g.Randomize(31, 0.3)
				dr := &DistRunner{
					G:     g,
					Ranks: ranks,
					Chaos: &msgpass.Chaos{
						Seed:      int64(seed),
						DelayProb: 0.5,
						MaxDelay:  300 * time.Microsecond,
						StallProb: 0.3,
						MaxStall:  300 * time.Microsecond,
					},
					Watchdog: 5 * time.Second,
				}
				stats, err := dr.Run(gens)
				if err != nil {
					t.Fatal(err)
				}
				gridsMatch(t, "chaos dist vs reference", g, want)
				if stats.LiveUpdates != wantUpdates {
					t.Errorf("live updates %d, want %d", stats.LiveUpdates, wantUpdates)
				}
			})
		}
	}
}

// TestDistRunCtxCancel: cancelling a distributed run mid-flight must
// surface the context error, leave the grid untouched (generations only
// commit on clean collection), and join every rank goroutine.
func TestDistRunCtxCancel(t *testing.T) {
	g, err := NewGrid(64, 64, Torus)
	if err != nil {
		t.Fatal(err)
	}
	g.Randomize(3, 0.3)
	before := g.Clone()
	baseline := pthread.Live()

	ctx, cancel := context.WithCancel(context.Background())
	dr := &DistRunner{
		G:     g,
		Ranks: 4,
		// Stall every receive long enough that cancellation always lands
		// mid-run.
		Chaos: &msgpass.Chaos{Seed: 1, StallProb: 1, MaxStall: 20 * time.Millisecond},
	}
	done := make(chan error, 1)
	go func() {
		_, err := dr.RunCtx(ctx, 1000)
		done <- err
	}()
	time.Sleep(30 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled dist run did not return")
	}
	if !g.Equal(before) || g.Generation != before.Generation {
		t.Error("canceled run mutated the grid")
	}
	waitForLiveThreads(t, baseline)
	if running := dr.CommStats.Running; running != 0 {
		t.Errorf("%d rank goroutines recorded live after cancel", running)
	}
}

// TestParallelRunCtxCancel: the shared-memory runner must stop within a
// bounded number of rounds of cancellation, uniformly across workers (no
// worker stranded at a barrier), leaving the grid on a whole-generation
// boundary.
func TestParallelRunCtxCancel(t *testing.T) {
	for _, reference := range []bool{false, true} {
		reference := reference
		name := "tree"
		if reference {
			name = "reference"
		}
		t.Run(name, func(t *testing.T) {
			g, err := NewGrid(256, 256, Torus)
			if err != nil {
				t.Fatal(err)
			}
			g.Randomize(5, 0.3)
			baseline := pthread.Live()

			ctx, cancel := context.WithCancel(context.Background())
			pr := &ParallelRunner{G: g, Threads: 4, Reference: reference}
			done := make(chan error, 1)
			go func() {
				_, err := pr.RunCtx(ctx, 1_000_000)
				done <- err
			}()
			time.Sleep(20 * time.Millisecond)
			cancel()
			select {
			case err := <-done:
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("got %v, want context.Canceled", err)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("canceled parallel run did not return (worker stranded at a barrier?)")
			}
			if g.Generation >= 1_000_000 {
				t.Error("run completed despite cancellation")
			}
			waitForLiveThreads(t, baseline)

			// The grid must sit on a whole-generation boundary: advancing
			// the serial reference to the same generation reproduces it.
			fresh, err := NewGrid(256, 256, Torus)
			if err != nil {
				t.Fatal(err)
			}
			fresh.Randomize(5, 0.3)
			fresh.Run(g.Generation)
			if !g.Equal(fresh) {
				t.Error("canceled run left the grid off a generation boundary")
			}
		})
	}
}

// TestParallelRunCtxPreCanceled: an already-canceled context refuses the
// run outright without spawning workers.
func TestParallelRunCtxPreCanceled(t *testing.T) {
	g, err := NewGrid(8, 8, Torus)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pr := &ParallelRunner{G: g, Threads: 2}
	if _, err := pr.RunCtx(ctx, 10); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if g.Generation != 0 {
		t.Errorf("pre-canceled run advanced the grid to generation %d", g.Generation)
	}
}

// TestDistWatchdogPassesCleanRun: an armed watchdog on a healthy
// distributed run must stay silent — the detector is sound.
func TestDistWatchdogPassesCleanRun(t *testing.T) {
	g, err := NewGrid(16, 16, Torus)
	if err != nil {
		t.Fatal(err)
	}
	g.Randomize(11, 0.3)
	want := referenceRun(g, 5)
	dr := &DistRunner{G: g, Ranks: 4, Watchdog: 100 * time.Millisecond}
	if _, err := dr.Run(5); err != nil {
		t.Fatalf("watchdog tripped on a healthy run: %v", err)
	}
	gridsMatch(t, "watchdog dist vs reference", g, want)
}

// waitForLiveThreads polls pthread's live-thread gauge back down to the
// baseline captured before the run. Joins have already returned when the
// runners do, but the gauge decrement races the join wake-up by a few
// instructions, so poll briefly instead of asserting instantly.
func waitForLiveThreads(t *testing.T, baseline int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if live := pthread.Live(); live <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("live threads stuck at %d, baseline %d", pthread.Live(), baseline)
			return
		}
		time.Sleep(time.Millisecond)
	}
}
