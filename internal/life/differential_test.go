package life

// Differential equivalence: the row-sliced kernel (Step / ParallelRunner
// tiles) must be bit-for-bit identical to the per-cell reference path
// (stepReference) for every edge mode, partition, grid shape — including
// degenerate 1xN / Nx1 / 2x2 grids where torus wrapping double-counts
// neighbors — and over many generations.

import (
	"fmt"
	"testing"
)

// allModes enumerates every edge mode; the differential matrices sweep all
// of them so ghost synthesis is pinned for each boundary behavior.
var allModes = []EdgeMode{Torus, DeadEdges, AliveEdges, MirrorEdges}

// referenceRun advances a clone of g through n generations of the per-cell
// reference implementation.
func referenceRun(g *Grid, n int) *Grid {
	ref := g.Clone()
	for i := 0; i < n; i++ {
		ref.stepReference()
	}
	return ref
}

func gridsMatch(t *testing.T, label string, got, want *Grid) {
	t.Helper()
	if !got.Equal(want) {
		t.Errorf("%s: grids diverged\ngot:\n%s\nwant:\n%s", label, got, want)
	}
	if got.Generation != want.Generation {
		t.Errorf("%s: generation %d, want %d", label, got.Generation, want.Generation)
	}
}

func TestStepMatchesReference(t *testing.T) {
	shapes := [][2]int{{1, 1}, {1, 7}, {7, 1}, {2, 2}, {2, 5}, {5, 2}, {3, 3}, {16, 16}, {13, 31}, {64, 17}}
	for _, mode := range allModes {
		for _, sh := range shapes {
			rows, cols := sh[0], sh[1]
			t.Run(fmt.Sprintf("%v/%dx%d", mode, rows, cols), func(t *testing.T) {
				g, err := NewGrid(rows, cols, mode)
				if err != nil {
					t.Fatal(err)
				}
				g.Randomize(42, 0.35)
				want := referenceRun(g, 8)
				g.Run(8)
				gridsMatch(t, "serial kernel", g, want)
			})
		}
	}
}

func TestParallelMatchesReference(t *testing.T) {
	for _, mode := range allModes {
		for _, part := range []Partition{ByRows, ByCols} {
			for _, threads := range []int{1, 2, 3, 7} {
				mode, part, threads := mode, part, threads
				t.Run(fmt.Sprintf("%v/%v/threads-%d", mode, part, threads), func(t *testing.T) {
					g, err := NewGrid(19, 23, mode)
					if err != nil {
						t.Fatal(err)
					}
					g.Randomize(7, 0.3)
					const gens = 6
					want := referenceRun(g, gens)
					pr := &ParallelRunner{G: g, Threads: threads, Partition: part}
					stats, err := pr.Run(gens)
					if err != nil {
						t.Fatal(err)
					}
					gridsMatch(t, "parallel kernel", g, want)
					if stats.Rounds != gens {
						t.Errorf("rounds = %d, want %d", stats.Rounds, gens)
					}
				})
			}
		}
	}
}

// TestParallelStatsMatchSerialKernel pins the LiveUpdates count the workers
// report to the count the kernel computes serially.
func TestParallelStatsMatchSerialKernel(t *testing.T) {
	g, err := NewGrid(24, 24, Torus)
	if err != nil {
		t.Fatal(err)
	}
	g.Randomize(99, 0.4)
	serial := g.Clone()
	var serialChanged int64
	const gens = 5
	for i := 0; i < gens; i++ {
		serialChanged += serial.stepBlock(0, serial.Rows, 0, serial.Cols)
		serial.swap()
	}
	pr := &ParallelRunner{G: g, Threads: 4}
	stats, err := pr.Run(gens)
	if err != nil {
		t.Fatal(err)
	}
	if stats.LiveUpdates != serialChanged {
		t.Errorf("parallel LiveUpdates = %d, serial kernel counted %d", stats.LiveUpdates, serialChanged)
	}
}

// TestParallelSurplusThreads runs with more threads than the partition
// extent (labd accepts up to 64 threads on arbitrarily small grids). Surplus
// workers own empty tiles and must touch nothing: before the empty-range
// guard in stepBlock, a ByCols surplus worker recomputed the right edge
// column for every row, racing with the owning tile (caught under -race)
// and double-counting LiveUpdates. The grid is 9x5 so Threads=12 exceeds
// both extents.
func TestParallelSurplusThreads(t *testing.T) {
	for _, mode := range allModes {
		for _, part := range []Partition{ByRows, ByCols} {
			mode, part := mode, part
			t.Run(fmt.Sprintf("%v/%v", mode, part), func(t *testing.T) {
				g, err := NewGrid(9, 5, mode)
				if err != nil {
					t.Fatal(err)
				}
				g.Randomize(17, 0.35)
				const gens = 6
				serial := g.Clone()
				var serialChanged int64
				for i := 0; i < gens; i++ {
					serialChanged += serial.stepBlock(0, serial.Rows, 0, serial.Cols)
					serial.swap()
				}
				pr := &ParallelRunner{G: g, Threads: 12, Partition: part}
				stats, err := pr.Run(gens)
				if err != nil {
					t.Fatal(err)
				}
				gridsMatch(t, "surplus threads", g, serial)
				if stats.LiveUpdates != serialChanged {
					t.Errorf("LiveUpdates = %d, serial kernel counted %d", stats.LiveUpdates, serialChanged)
				}
			})
		}
	}
}

// TestStepBlockEmptyRange pins the empty-tile no-op: a zero-width or
// zero-height block must report no changes and leave the scratch buffer
// untouched, even when its bounds sit on the grid edge.
func TestStepBlockEmptyRange(t *testing.T) {
	g, err := NewGrid(6, 6, Torus)
	if err != nil {
		t.Fatal(err)
	}
	g.Randomize(5, 0.5)
	before := append([]uint8(nil), g.next...)
	for _, blk := range [][4]int{
		{0, g.Rows, g.Cols, g.Cols}, // surplus ByCols tile at the right edge
		{g.Rows, g.Rows, 0, g.Cols}, // surplus ByRows tile at the bottom edge
		{0, g.Rows, 3, 3},
		{2, 2, 0, g.Cols},
	} {
		if ch := g.stepBlock(blk[0], blk[1], blk[2], blk[3]); ch != 0 {
			t.Errorf("stepBlock(%v) reported %d changes, want 0", blk, ch)
		}
	}
	for i := range before {
		if g.next[i] != before[i] {
			t.Fatalf("empty stepBlock wrote to scratch buffer at index %d", i)
		}
	}
}

// TestRunnerMatchesReferenceRunner holds the sharded one-barrier runner to
// the retained two-barrier mutex-stats runner: same final grid, same
// generation count, same LiveUpdates reduction, for every edge mode ×
// partition × thread count (including surplus threads that both paths
// clamp identically).
func TestRunnerMatchesReferenceRunner(t *testing.T) {
	for _, mode := range allModes {
		for _, part := range []Partition{ByRows, ByCols} {
			for _, threads := range []int{1, 2, 3, 5, 12} {
				mode, part, threads := mode, part, threads
				t.Run(fmt.Sprintf("%v/%v/threads-%d", mode, part, threads), func(t *testing.T) {
					g, err := NewGrid(11, 7, mode)
					if err != nil {
						t.Fatal(err)
					}
					g.Randomize(23, 0.35)
					ref := g.Clone()
					const gens = 6
					pr := &ParallelRunner{G: g, Threads: threads, Partition: part}
					stats, err := pr.Run(gens)
					if err != nil {
						t.Fatal(err)
					}
					rr := &ParallelRunner{G: ref, Threads: threads, Partition: part, Reference: true}
					refStats, err := rr.Run(gens)
					if err != nil {
						t.Fatal(err)
					}
					gridsMatch(t, "sharded vs reference runner", g, ref)
					if stats.LiveUpdates != refStats.LiveUpdates {
						t.Errorf("LiveUpdates = %d, reference runner counted %d", stats.LiveUpdates, refStats.LiveUpdates)
					}
					if stats.Rounds != refStats.Rounds {
						t.Errorf("Rounds = %d, reference runner counted %d", stats.Rounds, refStats.Rounds)
					}
				})
			}
		}
	}
}

// TestRunCountedMatchesParallelStats pins Grid.RunCounted — the serial twin
// of LiveUpdates — to the parallel reduction.
func TestRunCountedMatchesParallelStats(t *testing.T) {
	g, err := NewGrid(17, 13, Torus)
	if err != nil {
		t.Fatal(err)
	}
	g.Randomize(71, 0.4)
	serial := g.Clone()
	const gens = 7
	pr := &ParallelRunner{G: g, Threads: 5}
	stats, err := pr.Run(gens)
	if err != nil {
		t.Fatal(err)
	}
	if counted := serial.RunCounted(gens); counted != stats.LiveUpdates {
		t.Errorf("RunCounted = %d, parallel LiveUpdates = %d", counted, stats.LiveUpdates)
	}
	gridsMatch(t, "RunCounted grid", serial, g)
}

// TestParallelRunAllocations pins the per-generation allocation count of
// the sharded runner's hot loop at zero: the cost of a Run is a fixed
// setup (threads, barrier, shards) regardless of how many generations it
// advances, so the difference between a long run and a short run over the
// same fixed-size grid must be allocation-free.
func TestParallelRunAllocations(t *testing.T) {
	run := func(gens int) float64 {
		return testing.AllocsPerRun(10, func() {
			g, err := NewGrid(32, 32, Torus)
			if err != nil {
				t.Fatal(err)
			}
			g.Randomize(9, 0.3)
			pr := &ParallelRunner{G: g, Threads: 4}
			if _, err := pr.Run(gens); err != nil {
				t.Fatal(err)
			}
		})
	}
	short, long := run(1), run(41)
	if perGen := (long - short) / 40; perGen > 0.05 {
		t.Errorf("parallel loop allocates %.2f objects per generation (run(1)=%.1f, run(41)=%.1f), want 0",
			perGen, short, long)
	}
}

// TestStepAllocates pins the zero-allocation property of the serial kernel.
func TestStepAllocates(t *testing.T) {
	g, err := NewGrid(64, 64, Torus)
	if err != nil {
		t.Fatal(err)
	}
	g.Randomize(3, 0.3)
	avg := testing.AllocsPerRun(50, func() { g.Step() })
	if avg != 0 {
		t.Errorf("Step allocates %.1f objects per generation, want 0", avg)
	}
}
