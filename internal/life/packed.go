package life

// Bit-packed board representation and SWAR generation kernel: 64 cells per
// uint64 word, one word of lanes advanced per step of the inner loop.
//
// Layout: row r occupies words pcells[r*wpr : (r+1)*wpr] with wpr =
// ceil(Cols/64); bit j of word w is the cell in column w*64+j (LSB = lowest
// column). The last word of a row has Cols&63 valid lanes when Cols is not
// a multiple of 64; its slack lanes are ALWAYS zero — pack, Set, and the
// kernel's edge-word mask all maintain the invariant, and every shifted
// neighbor gather relies on it.
//
// Neighbor counting is branch-free boolean algebra. For one output word the
// kernel gathers nine aligned masks — the three source rows (up, current,
// down; ghost rows synthesized per edge mode), each in three horizontal
// alignments (west neighbor, center, east neighbor; ghost columns OR'd into
// the row-edge words) — and adds them with bitwise full-adder chains into
// three bit planes n0/n1/n2 (1s, 2s, 4s). The plane arithmetic saturates
// the one overflow case (neighbor count 8 is represented as 4), which is
// harmless because both counts mean death. The birth/survival rule then
// resolves without a single per-cell branch:
//
//	next = n1 & ~n2 & (n0 | current)
//
// i.e. alive next iff the count is exactly 3, or exactly 2 with the cell
// already live. Live-update statistics come back for free as
// bits.OnesCount64(next ^ current) per word.

import "math/bits"

// wordsPerRow returns the packed row stride for a given width.
func wordsPerRow(cols int) int { return (cols + 63) >> 6 }

// lastWordMask is the valid-lane mask of a row's final word.
func lastWordMask(cols int) uint64 {
	if rem := uint(cols) & 63; rem != 0 {
		return (uint64(1) << rem) - 1
	}
	return ^uint64(0)
}

// SetPacked switches the grid's active representation. SetPacked(true)
// packs the byte board into 64-cell words and routes Step, Run, RunCounted,
// ParallelRunner, DistRunner, Population, Alive, and Set through the SWAR
// kernel and popcounts; SetPacked(false) unpacks back to bytes. Both
// directions preserve the board bit for bit, so the two representations can
// be toggled mid-experiment for differential testing.
func (g *Grid) SetPacked(on bool) {
	if on == g.packed {
		return
	}
	if on {
		if g.pcells == nil {
			g.wpr = wordsPerRow(g.Cols)
			g.pcells = make([]uint64, g.Rows*g.wpr)
			g.pnext = make([]uint64, g.Rows*g.wpr)
			g.zeroRowP = make([]uint64, g.wpr)
			g.oneRowP = make([]uint64, g.wpr)
			for i := range g.oneRowP {
				g.oneRowP[i] = ^uint64(0)
			}
			g.oneRowP[g.wpr-1] = lastWordMask(g.Cols)
		}
		g.packFromBytes()
		g.packed = true
		return
	}
	g.unpackToBytes()
	g.packed = false
}

// Packed reports whether the bit-packed representation is active.
func (g *Grid) Packed() bool { return g.packed }

// StepPacked advances one generation through the SWAR kernel, packing the
// board first if it is not already packed. It is the packed twin of Step.
func (g *Grid) StepPacked() {
	g.SetPacked(true)
	g.Step()
}

// packFromBytes loads the packed buffers from the byte board.
func (g *Grid) packFromBytes() {
	for i := range g.pcells {
		g.pcells[i] = 0
	}
	for r := 0; r < g.Rows; r++ {
		row := g.cells[r*g.Cols : (r+1)*g.Cols]
		base := r * g.wpr
		for c, v := range row {
			if v != 0 {
				g.pcells[base+c>>6] |= uint64(1) << (uint(c) & 63)
			}
		}
	}
}

// unpackToBytes writes the packed board back into the byte buffers.
func (g *Grid) unpackToBytes() {
	for r := 0; r < g.Rows; r++ {
		row := g.cells[r*g.Cols : (r+1)*g.Cols]
		base := r * g.wpr
		for c := range row {
			row[c] = uint8(g.pcells[base+c>>6] >> (uint(c) & 63) & 1)
		}
	}
}

// packedRowIn returns packed row r, synthesizing the mode's ghost row when r
// is out of bounds — the packed twin of rowIn. Ghost rows are ready-made
// buffers (zeroRow, oneRow) or clamped/wrapped views of the board, so the
// call allocates nothing.
func packedRowIn(p, zeroRow, oneRow []uint64, rows, wpr int, mode EdgeMode, r int) []uint64 {
	if r < 0 || r >= rows {
		switch mode {
		case Torus:
			if r < 0 {
				r = rows - 1
			} else {
				r = 0
			}
		case DeadEdges:
			return zeroRow
		case AliveEdges:
			return oneRow
		case MirrorEdges:
			r = clamp(r, rows)
		}
	}
	base := r * wpr
	return p[base : base+wpr]
}

// packedGhostCols returns the one-bit ghost columns flanking a packed row:
// west is the cell at column -1, east the cell at column cols (both in lane
// 0 of the returned words). Under Torus they wrap to the row's far ends,
// under MirrorEdges they clamp onto the row's own edge cells, and the
// dead/alive modes are constants. lastLane is (cols-1)&63, the valid lane
// index of the row's final word.
func packedGhostCols(row []uint64, mode EdgeMode, lastLane uint) (west, east uint64) {
	switch mode {
	case Torus:
		return row[len(row)-1] >> lastLane & 1, row[0] & 1
	case DeadEdges:
		return 0, 0
	case AliveEdges:
		return 1, 1
	default: // MirrorEdges
		return row[0] & 1, row[len(row)-1] >> lastLane & 1
	}
}

// stepPackedSlices computes the next generation for rows [loRow, hiRow) ×
// words [loW, hiW) of src into dst and returns how many cells changed
// state. It is the packed hot kernel shared by the serial engine, the
// ParallelRunner tiles, and the DistRunner bands. Tiles split on word
// boundaries: an output word reads only its own row triple (plus the
// adjacent words for the shifted alignments) from the read-only source
// parity buffer, so concurrent tiles never write-share a word. Allocates
// nothing.
func stepPackedSlices(src, dst, zeroRow, oneRow []uint64, rows, cols, wpr int, mode EdgeMode, loRow, hiRow, loW, hiW int) int64 {
	if loRow >= hiRow || loW >= hiW {
		return 0
	}
	lastLane := uint(cols-1) & 63
	lastMask := lastWordMask(cols)
	var changed int64
	for r := loRow; r < hiRow; r++ {
		base := r * wpr
		cur := src[base : base+wpr]
		out := dst[base : base+wpr]
		up := packedRowIn(src, zeroRow, oneRow, rows, wpr, mode, r-1)
		down := packedRowIn(src, zeroRow, oneRow, rows, wpr, mode, r+1)
		// Ghost columns are per-row: a ghost row's own ghost corners come
		// from that row (e.g. the torus corner is the wrapped row's far
		// cell), matching the byte reference's independent row/column
		// mapping exactly.
		uw, ue := packedGhostCols(up, mode, lastLane)
		cw, ce := packedGhostCols(cur, mode, lastLane)
		dw, de := packedGhostCols(down, mode, lastLane)
		for w := loW; w < hiW; w++ {
			uc, cc, dc := up[w], cur[w], down[w]
			// West-aligned neighbors: lane j receives column j-1. The low
			// lane takes the previous word's top bit, or the ghost column
			// at the row's west edge.
			var ul, cl, dl uint64
			if w > 0 {
				ul = uc<<1 | up[w-1]>>63
				cl = cc<<1 | cur[w-1]>>63
				dl = dc<<1 | down[w-1]>>63
			} else {
				ul = uc<<1 | uw
				cl = cc<<1 | cw
				dl = dc<<1 | dw
			}
			// East-aligned neighbors: lane j receives column j+1. The top
			// valid lane takes the next word's low bit, or the ghost column
			// at the row's east edge (slack lanes above it are zero by
			// invariant, so the OR lands on clean bits).
			var ur, cr, dr uint64
			if w < wpr-1 {
				ur = uc>>1 | up[w+1]<<63
				cr = cc>>1 | cur[w+1]<<63
				dr = dc>>1 | down[w+1]<<63
			} else {
				ur = uc>>1 | ue<<lastLane
				cr = cc>>1 | ce<<lastLane
				dr = dc>>1 | de<<lastLane
			}
			// Full-adder chains. Row triples first: a (up row) and b (down
			// row) are 2-bit sums of three lanes; c (current row) sums only
			// the two horizontal neighbors — the center cell is not its own
			// neighbor.
			a0 := ul ^ uc ^ ur
			a1 := (ul & uc) | (ur & (ul ^ uc))
			b0 := dl ^ dc ^ dr
			b1 := (dl & dc) | (dr & (dl ^ dc))
			c0 := cl ^ cr
			c1 := cl & cr
			// Combine the three partial sums into planes n0 (1s), n1 (2s),
			// n2 (4s). k0 carries from the ones plane; k1/k2 are the twos
			// plane's carries, OR'd into n2 — their only simultaneous case
			// represents count 8 as 4, dead either way.
			n0 := a0 ^ b0 ^ c0
			k0 := (a0 & b0) | (c0 & (a0 ^ b0))
			s := a1 ^ b1 ^ c1
			k1 := (a1 & b1) | (c1 & (a1 ^ b1))
			n1 := s ^ k0
			k2 := s & k0
			n2 := k1 | k2
			next := n1 &^ n2 & (n0 | cc)
			if w == wpr-1 {
				next &= lastMask
			}
			out[w] = next
			changed += int64(bits.OnesCount64(next ^ cc))
		}
	}
	return changed
}

// stepPackedBlock runs the SWAR kernel over the grid's own packed parity
// buffers — the packed twin of stepBlock.
func (g *Grid) stepPackedBlock(loRow, hiRow, loW, hiW int) int64 {
	return stepPackedSlices(g.pcells, g.pnext, g.zeroRowP, g.oneRowP, g.Rows, g.Cols, g.wpr, g.Mode, loRow, hiRow, loW, hiW)
}
