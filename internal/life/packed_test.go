package life

// Differential equivalence for the bit-packed SWAR kernel: every packed
// engine — serial, parallel tiles, distributed bands — must be bit-for-bit
// identical to the byte reference, boards AND live-update statistics, for
// every edge mode, shape (especially ragged widths straddling word
// boundaries), partition, thread count, and rank count. The byte kernel is
// itself pinned to the per-cell reference in differential_test.go, so this
// file closes the chain: per-cell → byte → packed.

import (
	"fmt"
	"testing"
)

// byteRun advances a byte-representation clone of g through the byte kernel
// and returns the resulting grid plus its live-update count — the reference
// every packed engine is held to.
func byteRun(t testing.TB, g *Grid, gens int) (*Grid, int64) {
	t.Helper()
	ref := g.Clone()
	if ref.Packed() {
		ref.SetPacked(false)
	}
	return ref, ref.RunCounted(gens)
}

func TestPackedStepMatchesReference(t *testing.T) {
	shapes := [][2]int{
		{1, 1}, {1, 7}, {7, 1}, {2, 2}, {2, 5}, {5, 2}, {3, 3}, {16, 16},
		{13, 31}, {64, 17}, {5, 63}, {5, 64}, {5, 65}, {4, 127}, {3, 130},
	}
	for _, mode := range allModes {
		for _, sh := range shapes {
			mode, rows, cols := mode, sh[0], sh[1]
			t.Run(fmt.Sprintf("%v/%dx%d", mode, rows, cols), func(t *testing.T) {
				g, err := NewGrid(rows, cols, mode)
				if err != nil {
					t.Fatal(err)
				}
				g.Randomize(42, 0.35)
				const gens = 8
				want, wantUpdates := byteRun(t, g, gens)
				g.SetPacked(true)
				if got := g.RunCounted(gens); got != wantUpdates {
					t.Errorf("packed live updates %d, byte kernel counted %d", got, wantUpdates)
				}
				gridsMatch(t, "packed serial kernel", g, want)
			})
		}
	}
}

// TestPackedRaggedWidthsMatchesReference is the ragged-width property
// sweep: widths sitting exactly on, one below, and one above the 64-lane
// word boundary (plus multi-word raggeds) across every edge mode and
// several densities. These widths exercise the last-word mask, the
// slack-lane invariant, and the ghost-column injection at lastLane.
func TestPackedRaggedWidthsMatchesReference(t *testing.T) {
	for _, mode := range allModes {
		for _, cols := range []int{1, 63, 64, 65, 127, 130} {
			for _, density := range []float64{0.1, 0.5, 0.9} {
				mode, cols, density := mode, cols, density
				t.Run(fmt.Sprintf("%v/cols-%d/d%.0f", mode, cols, density*10), func(t *testing.T) {
					g, err := NewGrid(9, cols, mode)
					if err != nil {
						t.Fatal(err)
					}
					g.Randomize(int64(cols)*31+int64(density*10), density)
					const gens = 6
					want, wantUpdates := byteRun(t, g, gens)
					g.SetPacked(true)
					if got := g.RunCounted(gens); got != wantUpdates {
						t.Errorf("packed live updates %d, byte kernel counted %d", got, wantUpdates)
					}
					gridsMatch(t, "ragged width", g, want)
				})
			}
		}
	}
}

func TestPackedParallelMatchesReference(t *testing.T) {
	for _, mode := range allModes {
		for _, part := range []Partition{ByRows, ByCols} {
			for _, threads := range []int{1, 2, 8, 16, 33} {
				mode, part, threads := mode, part, threads
				t.Run(fmt.Sprintf("%v/%v/threads-%d", mode, part, threads), func(t *testing.T) {
					// 19x130 : three words per row, so ByCols word-block tiling
					// has real interior seams; 33 threads exceeds both extents.
					g, err := NewGrid(19, 130, mode)
					if err != nil {
						t.Fatal(err)
					}
					g.Randomize(7, 0.3)
					const gens = 6
					want, wantUpdates := byteRun(t, g, gens)
					g.SetPacked(true)
					pr := &ParallelRunner{G: g, Threads: threads, Partition: part}
					stats, err := pr.Run(gens)
					if err != nil {
						t.Fatal(err)
					}
					gridsMatch(t, "packed parallel kernel", g, want)
					if stats.LiveUpdates != wantUpdates {
						t.Errorf("packed parallel live updates %d, byte kernel counted %d", stats.LiveUpdates, wantUpdates)
					}
					if stats.Rounds != gens {
						t.Errorf("rounds = %d, want %d", stats.Rounds, gens)
					}
				})
			}
		}
	}
}

func TestPackedDistMatchesReference(t *testing.T) {
	shapes := [][2]int{{1, 1}, {7, 65}, {16, 16}, {37, 130}}
	for _, mode := range allModes {
		for _, ranks := range []int{1, 2, 8, 33} {
			for _, sh := range shapes {
				mode, ranks, rows, cols := mode, ranks, sh[0], sh[1]
				t.Run(fmt.Sprintf("%v/ranks-%d/%dx%d", mode, ranks, rows, cols), func(t *testing.T) {
					g, err := NewGrid(rows, cols, mode)
					if err != nil {
						t.Fatal(err)
					}
					g.Randomize(42, 0.35)
					const gens = 8
					want, wantUpdates := byteRun(t, g, gens)
					g.SetPacked(true)
					dr := &DistRunner{G: g, Ranks: ranks}
					stats, err := dr.Run(gens)
					if err != nil {
						t.Fatal(err)
					}
					gridsMatch(t, "packed distributed kernel", g, want)
					if stats.LiveUpdates != wantUpdates {
						t.Errorf("packed dist live updates %d, byte kernel counted %d", stats.LiveUpdates, wantUpdates)
					}
				})
			}
		}
	}
}

// TestPackedDistHaloBytes pins the headline comm win: a packed halo row at
// cols=4096 is 64 words = 512 bytes on the wire — 8x under the 4096-byte
// byte row. The world's traffic counters must account for exactly the
// packed protocol (halos + block distribution/collection + the 8-byte
// allreduce payloads), proving no byte-representation traffic leaks in.
func TestPackedDistHaloBytes(t *testing.T) {
	const rows, cols, ranks, gens = 16, 4096, 4, 3
	g, err := NewGrid(rows, cols, Torus)
	if err != nil {
		t.Fatal(err)
	}
	g.Randomize(5, 0.3)
	g.SetPacked(true)
	dr := &DistRunner{G: g, Ranks: ranks}
	if _, err := dr.Run(gens); err != nil {
		t.Fatal(err)
	}
	const rowBytes = (cols / 64) * 8 // 512: one packed halo row on the wire
	if rowBytes != 512 {
		t.Fatalf("packed halo row = %d bytes at cols=%d, want 512", rowBytes, cols)
	}
	haloBytes := int64(ranks * 2 * gens * rowBytes)
	blockBytes := int64(2 * (ranks - 1) * (rows / ranks) * rowBytes)
	wantMin := haloBytes + blockBytes
	ws := dr.CommStats
	if ws.BytesSent < wantMin {
		t.Errorf("world sent %d bytes, want >= %d", ws.BytesSent, wantMin)
	}
	if ws.BytesSent > wantMin+int64(ranks*64) {
		t.Errorf("world sent %d bytes, want close to %d (allreduce overhead only) — byte-width traffic leaked into the packed protocol?", ws.BytesSent, wantMin)
	}
}

// TestPackRoundTrip: pack → unpack is the identity, and the packed accessors
// (Set, Alive, Population) agree with the byte representation.
func TestPackRoundTrip(t *testing.T) {
	for _, cols := range []int{1, 63, 64, 65, 130} {
		cols := cols
		t.Run(fmt.Sprintf("cols-%d", cols), func(t *testing.T) {
			g, err := NewGrid(11, cols, Torus)
			if err != nil {
				t.Fatal(err)
			}
			g.Randomize(3, 0.45)
			want := g.Clone()
			pop := g.Population()
			g.SetPacked(true)
			if g.Population() != pop {
				t.Errorf("packed Population = %d, byte counted %d", g.Population(), pop)
			}
			g.Set(0, cols-1, true)
			if !g.Alive(0, cols-1) {
				t.Error("packed Set/Alive lost the last column")
			}
			g.Set(0, cols-1, want.Alive(0, cols-1))
			g.SetPacked(false)
			gridsMatch(t, "pack/unpack round trip", g, want)
		})
	}
}

// TestPackedSlackLanesStayZero guards the representation invariant every
// shifted gather relies on: after stepping, the slack lanes of each row's
// final word are zero.
func TestPackedSlackLanesStayZero(t *testing.T) {
	for _, cols := range []int{1, 63, 65, 130} {
		g, err := NewGrid(8, cols, AliveEdges) // alive ghosts press hardest on the mask
		if err != nil {
			t.Fatal(err)
		}
		g.Randomize(9, 0.5)
		g.SetPacked(true)
		g.Run(5)
		mask := lastWordMask(cols)
		for r := 0; r < g.Rows; r++ {
			if w := g.pcells[r*g.wpr+g.wpr-1]; w&^mask != 0 {
				t.Fatalf("cols=%d row %d: slack lanes set in %#x (mask %#x)", cols, r, w, mask)
			}
		}
	}
}

// TestPackedClonePreservesRepresentation: Clone of a packed grid is packed,
// independent, and equal.
func TestPackedClonePreservesRepresentation(t *testing.T) {
	g, err := NewGrid(9, 70, Torus)
	if err != nil {
		t.Fatal(err)
	}
	g.Randomize(21, 0.4)
	g.SetPacked(true)
	c := g.Clone()
	if !c.Packed() {
		t.Fatal("clone of a packed grid is not packed")
	}
	gridsMatch(t, "packed clone", c, g)
	c.Step()
	if c.Equal(g) {
		t.Error("stepping the clone mutated the original (shared packed buffers?)")
	}
}

// TestPackedReferenceRunnerRejected: the byte kernel IS the packed path's
// reference, so the retained two-barrier reference runner refuses packed
// grids rather than silently comparing packed against packed.
func TestPackedReferenceRunnerRejected(t *testing.T) {
	g, err := NewGrid(8, 8, Torus)
	if err != nil {
		t.Fatal(err)
	}
	g.SetPacked(true)
	pr := &ParallelRunner{G: g, Threads: 2, Reference: true}
	if _, err := pr.Run(1); err == nil {
		t.Error("reference runner accepted a packed grid")
	}
}

// TestPackedStepAllocates pins the SWAR kernel's hot loop at zero
// allocations, matching the byte kernel's guarantee.
func TestPackedStepAllocates(t *testing.T) {
	g, err := NewGrid(64, 130, Torus)
	if err != nil {
		t.Fatal(err)
	}
	g.Randomize(3, 0.3)
	g.SetPacked(true)
	if avg := testing.AllocsPerRun(50, func() { g.Step() }); avg != 0 {
		t.Errorf("packed Step allocates %.1f objects per generation, want 0", avg)
	}
}

// FuzzPackedLife round-trips pack/unpack on arbitrary boards and holds the
// packed kernel bit-for-bit to the byte kernel — boards and stats — across
// fuzzer-chosen shapes, modes, and densities.
func FuzzPackedLife(f *testing.F) {
	f.Add(uint8(3), uint8(3), uint8(0), int64(1), uint8(128))
	f.Add(uint8(1), uint8(65), uint8(1), int64(42), uint8(64))
	f.Add(uint8(9), uint8(127), uint8(2), int64(7), uint8(200))
	f.Add(uint8(16), uint8(64), uint8(3), int64(99), uint8(25))
	f.Fuzz(func(t *testing.T, rowsB, colsB, modeB uint8, seed int64, densityB uint8) {
		rows := int(rowsB)%48 + 1
		cols := int(colsB)%140 + 1
		mode := EdgeMode(int(modeB) % 4)
		density := float64(densityB) / 255
		g, err := NewGrid(rows, cols, mode)
		if err != nil {
			t.Fatal(err)
		}
		g.Randomize(seed, density)
		orig := g.Clone()

		// Round trip: pack then unpack must be the identity.
		g.SetPacked(true)
		g.SetPacked(false)
		if !g.Equal(orig) {
			t.Fatalf("pack/unpack round trip corrupted a %dx%d board", rows, cols)
		}

		// Differential step: packed vs byte kernel, boards and stats.
		const gens = 3
		want, wantUpdates := byteRun(t, g, gens)
		g.SetPacked(true)
		if got := g.RunCounted(gens); got != wantUpdates {
			t.Errorf("%dx%d %v: packed live updates %d, byte kernel counted %d", rows, cols, mode, got, wantUpdates)
		}
		if !g.Equal(want) {
			t.Errorf("%dx%d %v: packed board diverged from byte kernel", rows, cols, mode)
		}
	})
}
