package life

import (
	"fmt"
	"testing"
)

// BenchmarkPartitionAblation compares row vs column partitioning at
// several thread counts — the design comparison Lab 10 asks students to
// make. (Row partitioning walks memory contiguously per thread; column
// partitioning strides, which costs real caches. The simulator's arrays
// make the effect visible in wall-clock time on any host.)
func BenchmarkPartitionAblation(b *testing.B) {
	for _, part := range []Partition{ByRows, ByCols} {
		for _, threads := range []int{2, 4} {
			part, threads := part, threads
			b.Run(fmt.Sprintf("%v-threads-%d", part, threads), func(b *testing.B) {
				g, err := NewGrid(128, 128, Torus)
				if err != nil {
					b.Fatal(err)
				}
				g.Randomize(1, 0.3)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					pr := &ParallelRunner{G: g, Threads: threads, Partition: part}
					if _, err := pr.Run(1); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkEdgeModes compares torus wraparound (modulo arithmetic per
// neighbor) against dead edges (bounds checks) — a second ablation on the
// serial engine.
func BenchmarkEdgeModes(b *testing.B) {
	for _, mode := range allModes {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			g, err := NewGrid(128, 128, mode)
			if err != nil {
				b.Fatal(err)
			}
			g.Randomize(1, 0.3)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.Step()
			}
		})
	}
}
