package life

import (
	"context"
	"fmt"
	"time"

	"cs31/internal/msgpass"
	"cs31/internal/obs"
	"cs31/internal/pthread"
)

// Message tags of the distributed runner's little protocol. tagUp/tagDown
// name the direction the halo row travels, so the two rows a rank exchanges
// with one neighbor (P = 2 under torus wrapping makes the up and down
// neighbor the same rank) never cross-match.
const (
	distTagBlock = 0 // initial row-block distribution and final gather
	distTagUp    = 1 // a rank's top owned row, sent to the neighbor above
	distTagDown  = 2 // a rank's bottom owned row, sent to the neighbor below
)

// distEagerCapacity is the inbox depth DistRunner worlds use: the halo
// exchange posts both neighbor sends before receiving (the symmetric
// pattern that deadlocks under rendezvous), so sends must buffer. Two
// in-flight halos plus distribution traffic fit comfortably in 4.
const distEagerCapacity = 4

// DistRunner advances a grid with message-passing ranks — the distributed-
// memory sibling of ParallelRunner. The grid is row-block sharded across a
// msgpass world: each rank owns a contiguous band of rows in a private
// local buffer, exchanges one-row halos with its neighbors by Send/Recv
// each generation, and the per-rank live-update counts meet in an
// Allreduce. No rank ever touches another rank's memory; every byte that
// crosses a shard boundary is a message, and the world's counters price
// exactly that traffic.
//
// When the grid is packed (Grid.SetPacked), the whole protocol moves to the
// bit-packed representation: row blocks and halo rows travel as []uint64
// words, so a halo row costs ceil(cols/64)*8 bytes on the wire instead of
// cols — an ~8x reduction (512 bytes instead of 4096 at cols=4096) — and
// each band advances through the SWAR kernel.
type DistRunner struct {
	G         *Grid
	Ranks     int
	Capacity  int       // per-rank inbox depth; < 2 selects the eager default
	Partition Partition // accepted for symmetry; only ByRows is supported

	// Chaos, when non-nil, arms seeded fault injection on the world: bounded
	// delivery delays and rank stalls that perturb timing without touching
	// message order, so the halo exchange can be stress-tested against
	// stragglers while staying bit-for-bit equal to the serial engine.
	Chaos *msgpass.Chaos

	// Watchdog, when positive, arms the deadlock detector: a protocol bug
	// (or a chaos schedule that exposes one) surfaces as a structured
	// DeadlockError naming the blocked ranks instead of a hang.
	Watchdog time.Duration

	// Trace, if non-nil, records one timeline lane per rank: "generation"
	// and "halo-exchange" spans from the runner, plus the world's own
	// send/recv/collective events (the world is built with
	// msgpass.WithTrace), so a run renders halo traffic, stragglers, and
	// the closing allreduce in chrome://tracing or Perfetto.
	Trace *obs.Trace

	// CommStats holds the world's traffic counters after Run returns.
	CommStats msgpass.WorldStats
}

// Run advances n generations across the runner's ranks and returns the
// same statistics as ParallelRunner.Run, bit-for-bit equal to the serial
// engine's RunCounted on the same board.
//
// Protocol per rank: receive your row block from rank 0 (tagBlock), then
// each generation send your top/bottom owned rows to your neighbors
// (tagUp/tagDown), receive theirs into your halo rows, and advance your
// band with the shared kernel (byte or SWAR, matching the grid's
// representation); after the last generation, Allreduce the live-update
// counts and send your block back to rank 0. Neighbor relationships wrap
// into a ring under Torus and fall off the ends otherwise: a DeadEdges
// boundary halo stays all-dead, an AliveEdges one is pinned all-live, and a
// MirrorEdges one is refreshed each generation with the rank's own edge row
// (the reflection). A rank that is its own neighbor (a single-rank torus)
// copies its edge rows locally instead of messaging itself.
func (dr *DistRunner) Run(n int) (*RunStats, error) {
	return dr.RunCtx(context.Background(), n)
}

// distNeighbors returns the ranks above and below a rank (-1 marks a
// non-torus boundary whose halo is synthesized locally).
func distNeighbors(rank, ranks int, mode EdgeMode) (up, down int) {
	up, down = rank-1, rank+1
	if rank == 0 {
		up = -1
		if mode == Torus {
			up = ranks - 1
		}
	}
	if rank == ranks-1 {
		down = -1
		if mode == Torus {
			down = 0
		}
	}
	return up, down
}

// traceHandles resolves a rank's lane and the runner's span names —
// nil lane and zero handles when tracing is off, so the per-generation
// recording calls are no-ops.
func (dr *DistRunner) traceHandles(c *msgpass.Comm) (lane *obs.Lane, nGen, nHalo obs.Name) {
	lane = c.TraceLane()
	if lane != nil {
		nGen = dr.Trace.Name("generation")
		nHalo = dr.Trace.Name("halo-exchange")
	}
	return lane, nGen, nHalo
}

// RunCtx is Run under a context: when ctx is canceled mid-run the world
// aborts, every rank (including ones parked in halo receives or chaos
// sleeps) unwinds promptly, all rank goroutines are joined, and the error
// wraps ctx.Err(). The grid is left untouched on any error — generations
// only commit after a clean collection.
func (dr *DistRunner) RunCtx(ctx context.Context, n int) (*RunStats, error) {
	if dr.Ranks < 1 {
		return nil, fmt.Errorf("life: need at least 1 rank")
	}
	if dr.Partition != ByRows {
		return nil, fmt.Errorf("life: distributed runner shards by rows only")
	}
	g := dr.G
	// Clamp to the row extent, the same surplus-worker discipline as
	// ParallelRunner: ranks beyond Rows would own empty bands and only add
	// exchange traffic.
	if dr.Ranks > g.Rows {
		dr.Ranks = g.Rows
	}
	ranks := dr.Ranks
	capacity := dr.Capacity
	if capacity < 2 {
		capacity = distEagerCapacity
	}
	opts := []msgpass.Option{msgpass.WithCapacity(capacity)}
	if dr.Chaos != nil {
		opts = append(opts, msgpass.WithChaos(*dr.Chaos))
	}
	if dr.Trace != nil {
		opts = append(opts, msgpass.WithTrace(dr.Trace))
	}
	if dr.Watchdog > 0 {
		opts = append(opts, msgpass.WithWatchdog(dr.Watchdog))
	}
	world, err := msgpass.NewWorld(ranks, opts...)
	if err != nil {
		return nil, err
	}

	stats := &RunStats{}
	body := dr.byteRank
	if g.packed {
		body = dr.packedRank
	}
	err = world.RunCtx(ctx, func(c *msgpass.Comm) error {
		return body(c, n, stats)
	})
	// Record traffic counters even on a failed run: a canceled or deadlocked
	// run's partial traffic is exactly what fault diagnosis wants to see.
	dr.CommStats = world.Stats()
	if err != nil {
		return nil, err
	}
	// Promote the assembled generation. One swap suffices: the Grid's
	// buffers were never touched mid-run, only the scratch side at
	// collection time.
	if g.packed {
		g.pcells, g.pnext = g.pnext, g.pcells
	} else {
		g.cells, g.next = g.next, g.cells
	}
	g.Generation += n
	return stats, nil
}

// byteRank is one rank of the byte-representation protocol.
func (dr *DistRunner) byteRank(c *msgpass.Comm, n int, stats *RunStats) error {
	g := dr.G
	ranks := dr.Ranks
	rows, cols, mode := g.Rows, g.Cols, g.Mode
	lane, nGen, nHalo := dr.traceHandles(c)
	rank := c.Rank()
	lo, hi := pthread.BlockRange(rank, ranks, rows)
	band := hi - lo

	// Local shard: band rows plus one halo row above and below. Halo
	// rows are index 0 and band+1; owned rows are 1..band. Both parity
	// buffers start zeroed, which is exactly the all-dead halo DeadEdges
	// boundary ranks need forever (the kernel never writes halo rows).
	src := make([]uint8, (band+2)*cols)
	dst := make([]uint8, (band+2)*cols)
	zero := make([]uint8, cols)
	one := make([]uint8, cols)
	for i := range one {
		one[i] = 1
	}

	// Distribute: rank 0 owns the grid and mails every other rank its
	// band; its own band is a local copy.
	if rank == 0 {
		for r := 1; r < ranks; r++ {
			rlo, rhi := pthread.BlockRange(r, ranks, rows)
			block := append([]uint8(nil), g.cells[rlo*cols:rhi*cols]...)
			if err := msgpass.Send(c, r, distTagBlock, block); err != nil {
				return err
			}
		}
		copy(src[cols:(band+1)*cols], g.cells[lo*cols:hi*cols])
	} else {
		block, err := msgpass.Recv[[]uint8](c, 0, distTagBlock)
		if err != nil {
			return err
		}
		if len(block) != band*cols {
			return fmt.Errorf("rank %d: block of %d cells, want %d", rank, len(block), band*cols)
		}
		copy(src[cols:(band+1)*cols], block)
	}

	up, down := distNeighbors(rank, ranks, mode)
	// An AliveEdges boundary halo is pinned all-live in both parity buffers
	// once: the kernel never writes halo rows and no message targets them.
	if mode == AliveEdges {
		if up < 0 {
			copy(src[:cols], one)
			copy(dst[:cols], one)
		}
		if down < 0 {
			copy(src[(band+1)*cols:], one)
			copy(dst[(band+1)*cols:], one)
		}
	}

	var updates int64
	for gen := 0; gen < n; gen++ {
		lane.Begin(nGen)
		lane.Begin(nHalo)
		top := src[cols : 2*cols]                     // first owned row
		bot := src[band*cols : (band+1)*cols]         // last owned row
		haloTop := src[:cols]                         // row lo-1's image
		haloBot := src[(band+1)*cols : (band+2)*cols] // row hi's image
		if up == rank {                               // single-rank torus: both neighbors are us
			copy(haloTop, bot)
			copy(haloBot, top)
		} else {
			// Post both sends before either receive: under eager
			// buffering the symmetric exchange cannot deadlock, and the
			// payloads are copies, so a neighbor may apply them whenever
			// it gets around to its own exchange. Then fill the halos —
			// the neighbor above's bottom row arrives as tagDown, the
			// one below's top row as tagUp.
			if up >= 0 {
				if err := msgpass.Send(c, up, distTagUp, append([]uint8(nil), top...)); err != nil {
					return err
				}
			}
			if down >= 0 {
				if err := msgpass.Send(c, down, distTagDown, append([]uint8(nil), bot...)); err != nil {
					return err
				}
			}
			if up >= 0 {
				row, err := msgpass.Recv[[]uint8](c, up, distTagDown)
				if err != nil {
					return err
				}
				copy(haloTop, row)
			}
			if down >= 0 {
				row, err := msgpass.Recv[[]uint8](c, down, distTagUp)
				if err != nil {
					return err
				}
				copy(haloBot, row)
			}
		}
		// A MirrorEdges boundary reflects the rank's own edge row into the
		// halo; the reflection changes every generation, so refresh it on
		// the current source parity.
		if mode == MirrorEdges {
			if up < 0 {
				copy(haloTop, top)
			}
			if down < 0 {
				copy(haloBot, bot)
			}
		}
		lane.End(nHalo)
		// The shared kernel over owned rows only. The local buffer is
		// band+2 rows tall and the range [1, band+1) never reaches rows
		// 0 or band+1 as a *computed* row, so rowIn never synthesizes a
		// ghost — all vertical neighbor data comes from the exchanged or
		// locally synthesized halos, while column edge behavior (mode)
		// works exactly as on the full grid.
		updates += stepSlices(src, dst, zero, one, band+2, cols, mode, 1, band+1, 0, cols)
		lane.End(nGen)
		src, dst = dst, src
	}

	// Stats meet in an Allreduce: every rank learns the global total,
	// the root records it.
	total, err := msgpass.Allreduce(c, updates, func(a, b int64) int64 { return a + b })
	if err != nil {
		return err
	}

	// Collect: everyone mails the final band home; rank 0 assembles the
	// next generation buffer (promoted to current after the world joins).
	if rank == 0 {
		copy(g.next[lo*cols:hi*cols], src[cols:(band+1)*cols])
		for r := 1; r < ranks; r++ {
			rlo, rhi := pthread.BlockRange(r, ranks, rows)
			block, err := msgpass.Recv[[]uint8](c, r, distTagBlock)
			if err != nil {
				return err
			}
			if len(block) != (rhi-rlo)*cols {
				return fmt.Errorf("rank 0: block from %d has %d cells, want %d", r, len(block), (rhi-rlo)*cols)
			}
			copy(g.next[rlo*cols:rhi*cols], block)
		}
		stats.LiveUpdates = total
		stats.Rounds = n
	} else {
		if err := msgpass.Send(c, 0, distTagBlock, append([]uint8(nil), src[cols:(band+1)*cols]...)); err != nil {
			return err
		}
	}
	return nil
}

// packedRank is one rank of the bit-packed protocol: the same dance as
// byteRank, but bands and halo rows are []uint64 words — ceil(cols/64)
// words per row — so halo traffic shrinks ~8x and each band advances
// through the SWAR kernel.
func (dr *DistRunner) packedRank(c *msgpass.Comm, n int, stats *RunStats) error {
	g := dr.G
	ranks := dr.Ranks
	rows, cols, mode, wpr := g.Rows, g.Cols, g.Mode, g.wpr
	lane, nGen, nHalo := dr.traceHandles(c)
	rank := c.Rank()
	lo, hi := pthread.BlockRange(rank, ranks, rows)
	band := hi - lo

	src := make([]uint64, (band+2)*wpr)
	dst := make([]uint64, (band+2)*wpr)
	zero := make([]uint64, wpr)
	one := make([]uint64, wpr)
	for i := range one {
		one[i] = ^uint64(0)
	}
	one[wpr-1] = lastWordMask(cols)

	if rank == 0 {
		for r := 1; r < ranks; r++ {
			rlo, rhi := pthread.BlockRange(r, ranks, rows)
			block := append([]uint64(nil), g.pcells[rlo*wpr:rhi*wpr]...)
			if err := msgpass.Send(c, r, distTagBlock, block); err != nil {
				return err
			}
		}
		copy(src[wpr:(band+1)*wpr], g.pcells[lo*wpr:hi*wpr])
	} else {
		block, err := msgpass.Recv[[]uint64](c, 0, distTagBlock)
		if err != nil {
			return err
		}
		if len(block) != band*wpr {
			return fmt.Errorf("rank %d: packed block of %d words, want %d", rank, len(block), band*wpr)
		}
		copy(src[wpr:(band+1)*wpr], block)
	}

	up, down := distNeighbors(rank, ranks, mode)
	if mode == AliveEdges {
		if up < 0 {
			copy(src[:wpr], one)
			copy(dst[:wpr], one)
		}
		if down < 0 {
			copy(src[(band+1)*wpr:], one)
			copy(dst[(band+1)*wpr:], one)
		}
	}

	var updates int64
	for gen := 0; gen < n; gen++ {
		lane.Begin(nGen)
		lane.Begin(nHalo)
		top := src[wpr : 2*wpr]
		bot := src[band*wpr : (band+1)*wpr]
		haloTop := src[:wpr]
		haloBot := src[(band+1)*wpr : (band+2)*wpr]
		if up == rank {
			copy(haloTop, bot)
			copy(haloBot, top)
		} else {
			if up >= 0 {
				if err := msgpass.Send(c, up, distTagUp, append([]uint64(nil), top...)); err != nil {
					return err
				}
			}
			if down >= 0 {
				if err := msgpass.Send(c, down, distTagDown, append([]uint64(nil), bot...)); err != nil {
					return err
				}
			}
			if up >= 0 {
				row, err := msgpass.Recv[[]uint64](c, up, distTagDown)
				if err != nil {
					return err
				}
				copy(haloTop, row)
			}
			if down >= 0 {
				row, err := msgpass.Recv[[]uint64](c, down, distTagUp)
				if err != nil {
					return err
				}
				copy(haloBot, row)
			}
		}
		if mode == MirrorEdges {
			if up < 0 {
				copy(haloTop, top)
			}
			if down < 0 {
				copy(haloBot, bot)
			}
		}
		lane.End(nHalo)
		updates += stepPackedSlices(src, dst, zero, one, band+2, cols, wpr, mode, 1, band+1, 0, wpr)
		lane.End(nGen)
		src, dst = dst, src
	}

	total, err := msgpass.Allreduce(c, updates, func(a, b int64) int64 { return a + b })
	if err != nil {
		return err
	}

	if rank == 0 {
		copy(g.pnext[lo*wpr:hi*wpr], src[wpr:(band+1)*wpr])
		for r := 1; r < ranks; r++ {
			rlo, rhi := pthread.BlockRange(r, ranks, rows)
			block, err := msgpass.Recv[[]uint64](c, r, distTagBlock)
			if err != nil {
				return err
			}
			if len(block) != (rhi-rlo)*wpr {
				return fmt.Errorf("rank 0: packed block from %d has %d words, want %d", r, len(block), (rhi-rlo)*wpr)
			}
			copy(g.pnext[rlo*wpr:rhi*wpr], block)
		}
		stats.LiveUpdates = total
		stats.Rounds = n
	} else {
		if err := msgpass.Send(c, 0, distTagBlock, append([]uint64(nil), src[wpr:(band+1)*wpr]...)); err != nil {
			return err
		}
	}
	return nil
}
