package life

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"cs31/internal/obs"
)

// filterSeq keeps only the "name/ph" entries whose name is in keep —
// runner-level spans are deterministic program order, while the
// message-level events nested inside them (send/recv inside a
// collective) depend on tree topology and are asserted by containment.
func filterSeq(seq []string, keep ...string) []string {
	set := map[string]bool{}
	for _, k := range keep {
		set[k] = true
	}
	var out []string
	for _, e := range seq {
		name := e[:strings.LastIndexByte(e, '/')]
		if set[name] {
			out = append(out, e)
		}
	}
	return out
}

func seqEqual(t *testing.T, label string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: sequence %v, want %v", label, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: event %d is %q, want %q (full: %v)", label, i, got[i], want[i], got)
		}
	}
}

// TestParallelRunnerTrace golden-matches the per-worker timeline: each
// worker lane records exactly [generation B/E, barrier-wait B/E] per
// generation, in program order, and the exported JSON passes the
// Chrome trace-event structural validator.
func TestParallelRunnerTrace(t *testing.T) {
	const threads, gens = 3, 4
	g, err := NewGrid(16, 16, Torus)
	if err != nil {
		t.Fatal(err)
	}
	g.Randomize(7, 0.3)

	tr := obs.New()
	waits := obs.NewHistogram(threads)
	pr := &ParallelRunner{G: g, Threads: threads, Trace: tr, BarrierWaits: waits}
	if _, err := pr.Run(gens); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	sum, err := obs.ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("exported trace failed validation: %v", err)
	}

	var want []string
	for i := 0; i < gens; i++ {
		want = append(want, "generation/B", "generation/E", "barrier-wait/B", "barrier-wait/E")
	}
	for i := 0; i < threads; i++ {
		label := fmt.Sprintf("worker %d", i)
		seq, ok := sum.PerLane[label]
		if !ok {
			t.Fatalf("no lane %q in trace (lanes: %v)", label, sum.Lanes)
		}
		seqEqual(t, label, seq, want)
	}
	if len(sum.PerLane) != threads {
		t.Fatalf("trace has %d lanes, want %d", len(sum.PerLane), threads)
	}
	if tr.Drops() != 0 {
		t.Fatalf("dropped %d events on an undersubscribed run", tr.Drops())
	}
	// Every barrier crossing landed in the histogram.
	if got := waits.Snapshot().Count; got != threads*gens {
		t.Fatalf("barrier-wait histogram has %d observations, want %d", got, threads*gens)
	}
}

// TestDistRunnerTrace checks the distributed timeline: one lane per
// rank, the runner's generation/halo-exchange nesting golden-matched
// in program order, and the world's own send/recv/allreduce events
// present on every rank's lane.
func TestDistRunnerTrace(t *testing.T) {
	const ranks, gens = 2, 2
	g, err := NewGrid(12, 12, Torus)
	if err != nil {
		t.Fatal(err)
	}
	g.Randomize(11, 0.3)
	ref := g.Clone()

	tr := obs.New()
	dr := &DistRunner{G: g, Ranks: ranks, Trace: tr}
	stats, err := dr.Run(gens)
	if err != nil {
		t.Fatal(err)
	}
	refUpdates := ref.RunCounted(gens)
	if !g.Equal(ref) || stats.LiveUpdates != refUpdates {
		t.Fatalf("traced run diverged from serial reference")
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	sum, err := obs.ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("exported trace failed validation: %v", err)
	}

	// Runner-level spans nest deterministically: the halo exchange opens
	// right after the generation does and closes before the kernel runs.
	var want []string
	for i := 0; i < gens; i++ {
		want = append(want,
			"generation/B", "halo-exchange/B", "halo-exchange/E", "generation/E")
	}
	for r := 0; r < ranks; r++ {
		label := fmt.Sprintf("rank %d", r)
		seq, ok := sum.PerLane[label]
		if !ok {
			t.Fatalf("no lane %q in trace (lanes: %v)", label, sum.Lanes)
		}
		seqEqual(t, label, filterSeq(seq, "generation", "halo-exchange"), want)

		// The world's message and collective events ride the same lane:
		// halo sends/recvs each generation and the closing allreduce.
		for _, needed := range []string{"send/X", "recv/X", "allreduce/B", "allreduce/E"} {
			found := false
			for _, e := range seq {
				if e == needed {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("lane %q missing %q (events: %v)", label, needed, seq)
			}
		}
	}
	if len(sum.PerLane) != ranks {
		t.Fatalf("trace has %d lanes, want %d", len(sum.PerLane), ranks)
	}
	if tr.Drops() != 0 {
		t.Fatalf("dropped %d events", tr.Drops())
	}
}

// TestDistRunnerTracePacked re-runs the traced distributed protocol on
// the bit-packed representation: same lanes, same runner-level golden.
func TestDistRunnerTracePacked(t *testing.T) {
	const ranks, gens = 2, 3
	g, err := NewGrid(10, 130, Torus) // cols > 64 exercises multi-word rows
	if err != nil {
		t.Fatal(err)
	}
	g.Randomize(13, 0.3)
	g.SetPacked(true)

	tr := obs.New()
	dr := &DistRunner{G: g, Ranks: ranks, Trace: tr}
	if _, err := dr.Run(gens); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	sum, err := obs.ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("exported trace failed validation: %v", err)
	}
	var want []string
	for i := 0; i < gens; i++ {
		want = append(want,
			"generation/B", "halo-exchange/B", "halo-exchange/E", "generation/E")
	}
	for r := 0; r < ranks; r++ {
		label := fmt.Sprintf("rank %d", r)
		seqEqual(t, label, filterSeq(sum.PerLane[label], "generation", "halo-exchange"), want)
	}
}
