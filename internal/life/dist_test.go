package life

// Differential equivalence for the distributed runner: row-block sharding
// plus halo exchange must be bit-for-bit the serial engine — boards AND
// live-update statistics — for every edge mode, shape, and rank count,
// including the surplus-ranks > rows class (PR 3's surplus-thread bug,
// re-tested here on the message-passing path).

import (
	"fmt"
	"testing"
)

func TestDistMatchesReference(t *testing.T) {
	shapes := [][2]int{{1, 1}, {1, 7}, {7, 1}, {2, 2}, {2, 5}, {5, 2}, {3, 3}, {16, 16}, {13, 31}, {64, 17}}
	for _, mode := range allModes {
		for _, ranks := range []int{1, 2, 8, 16} {
			for _, sh := range shapes {
				mode, ranks, rows, cols := mode, ranks, sh[0], sh[1]
				t.Run(fmt.Sprintf("%v/ranks-%d/%dx%d", mode, ranks, rows, cols), func(t *testing.T) {
					g, err := NewGrid(rows, cols, mode)
					if err != nil {
						t.Fatal(err)
					}
					g.Randomize(42, 0.35)
					const gens = 8
					want := referenceRun(g, gens)

					dr := &DistRunner{G: g, Ranks: ranks}
					stats, err := dr.Run(gens)
					if err != nil {
						t.Fatal(err)
					}
					gridsMatch(t, "distributed vs reference", g, want)
					if stats.Rounds != gens {
						t.Errorf("rounds %d, want %d", stats.Rounds, gens)
					}

					// Live updates must equal the serial engine's count.
					serial := want.Clone()
					serial.Generation = 0
					fresh, err := NewGrid(rows, cols, mode)
					if err != nil {
						t.Fatal(err)
					}
					fresh.Randomize(42, 0.35)
					wantUpdates := fresh.RunCounted(gens)
					if stats.LiveUpdates != wantUpdates {
						t.Errorf("live updates %d, want %d", stats.LiveUpdates, wantUpdates)
					}
				})
			}
		}
	}
}

// TestDistMatchesParallelRunner cross-checks the two scale-out engines
// against each other: same board, same generations — shared-memory threads
// and message-passing ranks must land on identical grids and statistics.
func TestDistMatchesParallelRunner(t *testing.T) {
	for _, mode := range allModes {
		for _, workers := range []int{2, 3, 8} {
			mode, workers := mode, workers
			t.Run(fmt.Sprintf("%v/workers-%d", mode, workers), func(t *testing.T) {
				mk := func() *Grid {
					g, err := NewGrid(29, 23, mode)
					if err != nil {
						t.Fatal(err)
					}
					g.Randomize(7, 0.3)
					return g
				}
				const gens = 6
				pg := mk()
				pr := &ParallelRunner{G: pg, Threads: workers}
				pstats, err := pr.Run(gens)
				if err != nil {
					t.Fatal(err)
				}
				dg := mk()
				dr := &DistRunner{G: dg, Ranks: workers}
				dstats, err := dr.Run(gens)
				if err != nil {
					t.Fatal(err)
				}
				gridsMatch(t, "distributed vs parallel", dg, pg)
				if dstats.LiveUpdates != pstats.LiveUpdates {
					t.Errorf("live updates: dist %d, parallel %d", dstats.LiveUpdates, pstats.LiveUpdates)
				}
			})
		}
	}
}

// TestDistSurplusRanks: more ranks than rows must clamp to the row extent
// (the PR-3 surplus-worker regression class) and still be bit-for-bit.
func TestDistSurplusRanks(t *testing.T) {
	for _, mode := range allModes {
		for _, sh := range [][2]int{{1, 9}, {3, 5}, {5, 33}} {
			mode, rows, cols := mode, sh[0], sh[1]
			t.Run(fmt.Sprintf("%v/%dx%d/ranks-33", mode, rows, cols), func(t *testing.T) {
				g, err := NewGrid(rows, cols, mode)
				if err != nil {
					t.Fatal(err)
				}
				g.Randomize(99, 0.4)
				const gens = 5
				want := referenceRun(g, gens)
				fresh := g.Clone()
				wantUpdates := fresh.RunCounted(gens)

				dr := &DistRunner{G: g, Ranks: 33}
				stats, err := dr.Run(gens)
				if err != nil {
					t.Fatal(err)
				}
				if dr.Ranks != rows {
					t.Errorf("ranks clamped to %d, want %d", dr.Ranks, rows)
				}
				gridsMatch(t, "surplus ranks", g, want)
				if stats.LiveUpdates != wantUpdates {
					t.Errorf("live updates %d, want %d", stats.LiveUpdates, wantUpdates)
				}
			})
		}
	}
}

// TestDistRendezvousCapacityUpgraded: a caller asking for capacity < 2
// would deadlock the symmetric halo exchange, so the runner upgrades to its
// eager default rather than hanging.
func TestDistRendezvousCapacityUpgraded(t *testing.T) {
	g, err := NewGrid(8, 8, Torus)
	if err != nil {
		t.Fatal(err)
	}
	g.Randomize(3, 0.3)
	want := referenceRun(g, 4)
	dr := &DistRunner{G: g, Ranks: 4, Capacity: 1}
	if _, err := dr.Run(4); err != nil {
		t.Fatal(err)
	}
	gridsMatch(t, "capacity-upgraded run", g, want)
}

// TestDistCommStats sanity-checks the exposed traffic counters: a 4-rank
// torus run must move exactly 2 halo rows per rank per generation plus the
// distribution/collection blocks and the stats Allreduce.
func TestDistCommStats(t *testing.T) {
	g, err := NewGrid(16, 10, Torus)
	if err != nil {
		t.Fatal(err)
	}
	g.Randomize(5, 0.3)
	const gens, ranks = 3, 4
	dr := &DistRunner{G: g, Ranks: ranks}
	if _, err := dr.Run(gens); err != nil {
		t.Fatal(err)
	}
	ws := dr.CommStats
	if len(ws.PerRank) != ranks {
		t.Fatalf("stats for %d ranks, want %d", len(ws.PerRank), ranks)
	}
	// Halo traffic: ranks * 2 rows * gens * cols bytes. Block traffic:
	// 2*(ranks-1) messages of 4 rows * cols. Allreduce adds messages but
	// only 8-byte payloads.
	haloBytes := int64(ranks * 2 * gens * g.Cols)
	blockBytes := int64(2 * (ranks - 1) * 4 * g.Cols)
	wantMin := haloBytes + blockBytes
	if ws.BytesSent < wantMin {
		t.Errorf("world sent %d bytes, want >= %d", ws.BytesSent, wantMin)
	}
	if ws.BytesSent > wantMin+int64(ranks*64) {
		t.Errorf("world sent %d bytes, want close to %d (allreduce overhead only)", ws.BytesSent, wantMin)
	}
	for _, s := range ws.PerRank {
		if s.Collectives != 1 {
			t.Errorf("rank %d collectives %d, want 1 (the stats allreduce)", s.Rank, s.Collectives)
		}
	}
}

// TestDistValidation: bad configurations fail fast.
func TestDistValidation(t *testing.T) {
	g, err := NewGrid(4, 4, Torus)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (&DistRunner{G: g, Ranks: 0}).Run(1); err == nil {
		t.Error("0 ranks accepted")
	}
	if _, err := (&DistRunner{G: g, Ranks: 2, Partition: ByCols}).Run(1); err == nil {
		t.Error("ByCols partition accepted")
	}
}

// TestDistZeroGenerations: n = 0 is the identity, not corruption.
func TestDistZeroGenerations(t *testing.T) {
	g, err := NewGrid(6, 6, Torus)
	if err != nil {
		t.Fatal(err)
	}
	g.Randomize(11, 0.5)
	want := g.Clone()
	dr := &DistRunner{G: g, Ranks: 3}
	stats, err := dr.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(want) {
		t.Error("zero-generation run mutated the board")
	}
	if stats.LiveUpdates != 0 || g.Generation != 0 {
		t.Errorf("stats %+v generation %d after zero generations", stats, g.Generation)
	}
}
