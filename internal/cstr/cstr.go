// Package cstr reimplements the C string library functions of Lab 7 with C
// semantics: strings are NUL-terminated byte sequences inside fixed-size
// buffers, and the caller is responsible for capacity — the package
// faithfully reports the overflow and missing-terminator errors that make
// the lab instructive (where C would silently corrupt memory, these
// functions return errors).
package cstr

import (
	"errors"
	"fmt"
)

// Errors mirroring the C failure modes the lab teaches.
var (
	ErrNoTerminator = errors.New("cstr: no NUL terminator in buffer (unterminated string)")
	ErrOverflow     = errors.New("cstr: destination buffer too small (buffer overflow)")
	ErrNilBuffer    = errors.New("cstr: nil buffer (NULL pointer)")
)

// Strlen returns the length of the NUL-terminated string in buf.
func Strlen(buf []byte) (int, error) {
	if buf == nil {
		return 0, ErrNilBuffer
	}
	for i, b := range buf {
		if b == 0 {
			return i, nil
		}
	}
	return 0, ErrNoTerminator
}

// Strcpy copies src (a Go string) into dst as a NUL-terminated C string.
func Strcpy(dst []byte, src string) error {
	if dst == nil {
		return ErrNilBuffer
	}
	if len(src)+1 > len(dst) {
		return ErrOverflow
	}
	copy(dst, src)
	dst[len(src)] = 0
	return nil
}

// Strncpy copies at most n bytes of src into dst. Like the C function it
// does NOT terminate dst when src is at least n bytes long — the sharp edge
// the lab warns about — but it does check that n fits in dst.
func Strncpy(dst []byte, src string, n int) error {
	if dst == nil {
		return ErrNilBuffer
	}
	if n < 0 || n > len(dst) {
		return ErrOverflow
	}
	i := 0
	for ; i < n && i < len(src); i++ {
		dst[i] = src[i]
	}
	// C semantics: pad with NULs up to n (and only up to n).
	for ; i < n; i++ {
		dst[i] = 0
	}
	return nil
}

// Strcat appends src to the NUL-terminated string already in dst.
func Strcat(dst []byte, src string) error {
	if dst == nil {
		return ErrNilBuffer
	}
	n, err := Strlen(dst)
	if err != nil {
		return err
	}
	if n+len(src)+1 > len(dst) {
		return ErrOverflow
	}
	copy(dst[n:], src)
	dst[n+len(src)] = 0
	return nil
}

// Strcmp compares two NUL-terminated strings like C strcmp: negative, zero,
// or positive as a sorts before, equal to, or after b.
func Strcmp(a, b []byte) (int, error) {
	if a == nil || b == nil {
		return 0, ErrNilBuffer
	}
	for i := 0; ; i++ {
		if i >= len(a) || i >= len(b) {
			return 0, ErrNoTerminator
		}
		ca, cb := a[i], b[i]
		if ca != cb {
			return int(ca) - int(cb), nil
		}
		if ca == 0 {
			return 0, nil
		}
	}
}

// Strchr returns the index of the first occurrence of c in the
// NUL-terminated string, or -1. Searching for 0 finds the terminator.
func Strchr(buf []byte, c byte) (int, error) {
	if buf == nil {
		return 0, ErrNilBuffer
	}
	for i := 0; i < len(buf); i++ {
		if buf[i] == c {
			return i, nil
		}
		if buf[i] == 0 {
			return -1, nil
		}
	}
	return 0, ErrNoTerminator
}

// Strstr returns the index of the first occurrence of needle in the
// NUL-terminated string, or -1.
func Strstr(buf []byte, needle string) (int, error) {
	n, err := Strlen(buf)
	if err != nil {
		return 0, err
	}
	if len(needle) == 0 {
		return 0, nil
	}
	for i := 0; i+len(needle) <= n; i++ {
		if string(buf[i:i+len(needle)]) == needle {
			return i, nil
		}
	}
	return -1, nil
}

// ToGo extracts the Go string from a NUL-terminated buffer.
func ToGo(buf []byte) (string, error) {
	n, err := Strlen(buf)
	if err != nil {
		return "", err
	}
	return string(buf[:n]), nil
}

// FromGo allocates a C-string buffer holding s (capacity exactly len(s)+1).
func FromGo(s string) []byte {
	buf := make([]byte, len(s)+1)
	copy(buf, s)
	return buf
}

// Tokenizer is strtok with the state made explicit (the lab discusses why
// C's hidden static state is a design mistake).
type Tokenizer struct {
	buf   []byte
	pos   int
	delim func(byte) bool
}

// NewTokenizer tokenizes the NUL-terminated string using the delimiter set.
func NewTokenizer(buf []byte, delims string) (*Tokenizer, error) {
	if _, err := Strlen(buf); err != nil {
		return nil, err
	}
	set := [256]bool{}
	for i := 0; i < len(delims); i++ {
		set[delims[i]] = true
	}
	return &Tokenizer{buf: buf, delim: func(b byte) bool { return set[b] }}, nil
}

// Next returns the next token, or ok=false at the end of the string.
func (t *Tokenizer) Next() (string, bool) {
	for t.pos < len(t.buf) && t.buf[t.pos] != 0 && t.delim(t.buf[t.pos]) {
		t.pos++
	}
	if t.pos >= len(t.buf) || t.buf[t.pos] == 0 {
		return "", false
	}
	start := t.pos
	for t.pos < len(t.buf) && t.buf[t.pos] != 0 && !t.delim(t.buf[t.pos]) {
		t.pos++
	}
	return string(t.buf[start:t.pos]), true
}

// Atoi parses a leading optional-sign decimal integer like C atoi: it stops
// at the first non-digit and returns 0 for no digits.
func Atoi(buf []byte) (int, error) {
	n, err := Strlen(buf)
	if err != nil {
		return 0, err
	}
	s := buf[:n]
	i := 0
	for i < len(s) && (s[i] == ' ' || s[i] == '\t') {
		i++
	}
	sign := 1
	if i < len(s) && (s[i] == '+' || s[i] == '-') {
		if s[i] == '-' {
			sign = -1
		}
		i++
	}
	v := 0
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		v = v*10 + int(s[i]-'0')
		i++
	}
	return sign * v, nil
}

// Itoa renders v into dst as a NUL-terminated decimal string.
func Itoa(dst []byte, v int) error {
	s := fmt.Sprintf("%d", v)
	return Strcpy(dst, s)
}
