package cstr

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestStrlen(t *testing.T) {
	if n, err := Strlen(FromGo("hello")); err != nil || n != 5 {
		t.Errorf("Strlen = %d, %v", n, err)
	}
	if n, err := Strlen(FromGo("")); err != nil || n != 0 {
		t.Errorf("empty Strlen = %d, %v", n, err)
	}
	if _, err := Strlen([]byte{'a', 'b'}); !errors.Is(err, ErrNoTerminator) {
		t.Errorf("unterminated: %v", err)
	}
	if _, err := Strlen(nil); !errors.Is(err, ErrNilBuffer) {
		t.Errorf("nil: %v", err)
	}
}

func TestStrcpy(t *testing.T) {
	buf := make([]byte, 8)
	if err := Strcpy(buf, "hi"); err != nil {
		t.Fatal(err)
	}
	if s, _ := ToGo(buf); s != "hi" {
		t.Errorf("buf = %q", s)
	}
	if err := Strcpy(make([]byte, 2), "hi"); !errors.Is(err, ErrOverflow) {
		t.Errorf("overflow: %v", err)
	}
	if err := Strcpy(make([]byte, 3), "hi"); err != nil {
		t.Errorf("exact fit should work: %v", err)
	}
	if err := Strcpy(nil, "x"); !errors.Is(err, ErrNilBuffer) {
		t.Errorf("nil: %v", err)
	}
}

func TestStrncpyNoTerminatorSharpEdge(t *testing.T) {
	buf := []byte{0xff, 0xff, 0xff, 0xff}
	if err := Strncpy(buf, "abcd", 4); err != nil {
		t.Fatal(err)
	}
	// Like C: no NUL was written.
	if _, err := Strlen(buf); !errors.Is(err, ErrNoTerminator) {
		t.Error("strncpy of exactly n bytes must not terminate")
	}
	// Shorter source pads with NULs.
	buf2 := []byte{0xff, 0xff, 0xff, 0xff}
	if err := Strncpy(buf2, "a", 4); err != nil {
		t.Fatal(err)
	}
	if buf2[1] != 0 || buf2[2] != 0 || buf2[3] != 0 {
		t.Errorf("padding: %v", buf2)
	}
	if err := Strncpy(buf2, "x", 8); !errors.Is(err, ErrOverflow) {
		t.Errorf("n > len(dst): %v", err)
	}
	if err := Strncpy(buf2, "x", -1); !errors.Is(err, ErrOverflow) {
		t.Errorf("negative n: %v", err)
	}
}

func TestStrcat(t *testing.T) {
	buf := make([]byte, 12)
	Strcpy(buf, "foo")
	if err := Strcat(buf, "bar"); err != nil {
		t.Fatal(err)
	}
	if s, _ := ToGo(buf); s != "foobar" {
		t.Errorf("buf = %q", s)
	}
	small := make([]byte, 7)
	Strcpy(small, "foo")
	if err := Strcat(small, "barx"); !errors.Is(err, ErrOverflow) {
		t.Errorf("overflow: %v", err)
	}
	if err := Strcat([]byte{1, 2}, "x"); !errors.Is(err, ErrNoTerminator) {
		t.Errorf("unterminated dst: %v", err)
	}
}

func TestStrcmp(t *testing.T) {
	cases := []struct {
		a, b string
		sign int
	}{
		{"abc", "abc", 0},
		{"abc", "abd", -1},
		{"abd", "abc", 1},
		{"ab", "abc", -1},
		{"abc", "ab", 1},
		{"", "", 0},
		{"", "a", -1},
	}
	for _, c := range cases {
		got, err := Strcmp(FromGo(c.a), FromGo(c.b))
		if err != nil {
			t.Fatal(err)
		}
		sign := 0
		if got > 0 {
			sign = 1
		} else if got < 0 {
			sign = -1
		}
		if sign != c.sign {
			t.Errorf("Strcmp(%q, %q) = %d, want sign %d", c.a, c.b, got, c.sign)
		}
	}
	if _, err := Strcmp([]byte{1}, []byte{1}); !errors.Is(err, ErrNoTerminator) {
		t.Errorf("unterminated: %v", err)
	}
	if _, err := Strcmp(nil, FromGo("a")); !errors.Is(err, ErrNilBuffer) {
		t.Errorf("nil: %v", err)
	}
}

// Property: Strcmp agrees in sign with Go's strings.Compare.
func TestStrcmpMatchesGo(t *testing.T) {
	f := func(a, b string) bool {
		a = strings.ReplaceAll(a, "\x00", "x")
		b = strings.ReplaceAll(b, "\x00", "x")
		got, err := Strcmp(FromGo(a), FromGo(b))
		if err != nil {
			return false
		}
		want := strings.Compare(a, b)
		return (got == 0) == (want == 0) && (got < 0) == (want < 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStrchr(t *testing.T) {
	buf := FromGo("hello")
	if i, _ := Strchr(buf, 'l'); i != 2 {
		t.Errorf("Strchr l = %d", i)
	}
	if i, _ := Strchr(buf, 'z'); i != -1 {
		t.Errorf("Strchr z = %d", i)
	}
	if i, _ := Strchr(buf, 0); i != 5 {
		t.Errorf("Strchr NUL = %d", i)
	}
	if _, err := Strchr([]byte{1}, 'x'); !errors.Is(err, ErrNoTerminator) {
		t.Errorf("unterminated: %v", err)
	}
	if _, err := Strchr(nil, 'x'); !errors.Is(err, ErrNilBuffer) {
		t.Errorf("nil: %v", err)
	}
}

func TestStrstr(t *testing.T) {
	buf := FromGo("the parallel course")
	if i, _ := Strstr(buf, "parallel"); i != 4 {
		t.Errorf("Strstr = %d", i)
	}
	if i, _ := Strstr(buf, "nope"); i != -1 {
		t.Errorf("missing needle = %d", i)
	}
	if i, _ := Strstr(buf, ""); i != 0 {
		t.Errorf("empty needle = %d", i)
	}
	if _, err := Strstr([]byte{1}, "x"); err == nil {
		t.Error("unterminated haystack should fail")
	}
}

// Property: Strstr agrees with strings.Index.
func TestStrstrMatchesGo(t *testing.T) {
	f := func(hay, needle string) bool {
		hay = strings.ReplaceAll(hay, "\x00", "x")
		needle = strings.ReplaceAll(needle, "\x00", "x")
		if len(needle) > 8 {
			needle = needle[:8]
		}
		got, err := Strstr(FromGo(hay), needle)
		return err == nil && got == strings.Index(hay, needle)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTokenizer(t *testing.T) {
	tok, err := NewTokenizer(FromGo("  ls -l   /tmp "), " ")
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for {
		s, ok := tok.Next()
		if !ok {
			break
		}
		got = append(got, s)
	}
	want := []string{"ls", "-l", "/tmp"}
	if len(got) != len(want) {
		t.Fatalf("tokens = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %q", i, got[i])
		}
	}
	if _, err := NewTokenizer([]byte{1}, " "); err == nil {
		t.Error("unterminated buffer should fail")
	}
}

func TestTokenizerMultipleDelims(t *testing.T) {
	tok, err := NewTokenizer(FromGo("a,b;;c"), ",;")
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for {
		s, ok := tok.Next()
		if !ok {
			break
		}
		got = append(got, s)
	}
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("tokens = %v", got)
	}
}

func TestAtoiItoa(t *testing.T) {
	cases := []struct {
		in   string
		want int
	}{
		{"42", 42}, {"-17", -17}, {"+5", 5}, {"  99", 99},
		{"12ab", 12}, {"abc", 0}, {"", 0}, {"-", 0},
	}
	for _, c := range cases {
		got, err := Atoi(FromGo(c.in))
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("Atoi(%q) = %d, want %d", c.in, got, c.want)
		}
	}
	buf := make([]byte, 16)
	if err := Itoa(buf, -123); err != nil {
		t.Fatal(err)
	}
	if v, _ := Atoi(buf); v != -123 {
		t.Errorf("Itoa/Atoi round trip = %d", v)
	}
	if err := Itoa(make([]byte, 2), 12345); !errors.Is(err, ErrOverflow) {
		t.Errorf("Itoa overflow: %v", err)
	}
	if _, err := Atoi([]byte{1}); err == nil {
		t.Error("unterminated Atoi should fail")
	}
}

// Property: Strcpy then Strlen round-trips length; Strcat length adds.
func TestCopyCatLengthProperty(t *testing.T) {
	f := func(a, b string) bool {
		a = strings.ReplaceAll(a, "\x00", "x")
		b = strings.ReplaceAll(b, "\x00", "x")
		if len(a)+len(b) > 200 {
			return true
		}
		buf := make([]byte, len(a)+len(b)+1)
		if err := Strcpy(buf, a); err != nil {
			return false
		}
		if err := Strcat(buf, b); err != nil {
			return false
		}
		n, err := Strlen(buf)
		if err != nil {
			return false
		}
		s, err := ToGo(buf)
		return err == nil && n == len(a)+len(b) && s == a+b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
