// Package paravis is the stand-in for the ParaVis visualization library
// [Danner, Newhall, Webb, EduPar-19] used by CS 31's Game of Life labs: it
// renders 2D grids to a terminal, coloring each thread's partition
// differently so students can see (and debug) how the grid was split. The
// OpenGL canvas of the original becomes ANSI text, which preserves the
// pedagogical function — seeing the partitioning — without a display.
package paravis

import (
	"fmt"
	"io"
	"strings"
)

// ANSI color codes used to tint thread regions, cycled when there are more
// threads than colors.
var regionColors = []string{
	"\x1b[31m", "\x1b[32m", "\x1b[33m", "\x1b[34m", "\x1b[35m", "\x1b[36m",
	"\x1b[91m", "\x1b[92m", "\x1b[93m", "\x1b[94m", "\x1b[95m", "\x1b[96m",
}

const colorReset = "\x1b[0m"

// Visualizer renders boolean grids as text.
type Visualizer struct {
	Live  rune // rune for live cells (default '@')
	Dead  rune // rune for dead cells (default '.')
	Color bool // tint cells by owning thread
}

// New returns a visualizer with the lab's default glyphs.
func New(color bool) *Visualizer {
	return &Visualizer{Live: '@', Dead: '.', Color: color}
}

// Render draws the grid. owner, if non-nil, maps a (row, col) to the thread
// that owns that cell; each thread gets a distinct color (with Color set)
// so partition bugs are visible at a glance.
func (v *Visualizer) Render(grid [][]bool, owner func(row, col int) int) string {
	var sb strings.Builder
	for r, row := range grid {
		lastOwner := -1
		for c, alive := range row {
			if v.Color && owner != nil {
				o := owner(r, c)
				if o != lastOwner {
					sb.WriteString(regionColors[((o%len(regionColors))+len(regionColors))%len(regionColors)])
					lastOwner = o
				}
			}
			if alive {
				sb.WriteRune(v.live())
			} else {
				sb.WriteRune(v.dead())
			}
		}
		if v.Color && owner != nil {
			sb.WriteString(colorReset)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func (v *Visualizer) live() rune {
	if v.Live == 0 {
		return '@'
	}
	return v.Live
}

func (v *Visualizer) dead() rune {
	if v.Dead == 0 {
		return '.'
	}
	return v.Dead
}

// Recorder captures rendered frames for later playback or assertion.
type Recorder struct {
	frames []string
}

// Add appends a frame.
func (r *Recorder) Add(frame string) { r.frames = append(r.frames, frame) }

// Frames returns the captured frames.
func (r *Recorder) Frames() []string { return append([]string(nil), r.frames...) }

// Len reports the number of captured frames.
func (r *Recorder) Len() int { return len(r.frames) }

// Playback writes all frames to w, separated by a cursor-home/clear escape
// so a terminal shows them as an animation.
func (r *Recorder) Playback(w io.Writer) error {
	for i, f := range r.frames {
		if _, err := fmt.Fprintf(w, "\x1b[H\x1b[2J%s(frame %d/%d)\n", f, i+1, len(r.frames)); err != nil {
			return err
		}
	}
	return nil
}

// Strip removes ANSI escape sequences, for tests and plain-text logs.
func Strip(s string) string {
	var sb strings.Builder
	for i := 0; i < len(s); {
		if s[i] == 0x1b {
			j := i + 1
			if j < len(s) && s[j] == '[' {
				j++
				for j < len(s) && (s[j] == ';' || (s[j] >= '0' && s[j] <= '9')) {
					j++
				}
				if j < len(s) {
					j++ // final byte
				}
			}
			i = j
			continue
		}
		sb.WriteByte(s[i])
		i++
	}
	return sb.String()
}
