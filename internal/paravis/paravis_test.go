package paravis

import (
	"strings"
	"testing"
)

func TestRenderPlain(t *testing.T) {
	v := New(false)
	grid := [][]bool{{true, false}, {false, true}}
	got := v.Render(grid, nil)
	if got != "@.\n.@\n" {
		t.Errorf("render = %q", got)
	}
}

func TestRenderCustomGlyphs(t *testing.T) {
	v := &Visualizer{Live: '#', Dead: ' '}
	got := v.Render([][]bool{{true, false}}, nil)
	if got != "# \n" {
		t.Errorf("render = %q", got)
	}
	// Zero-value glyphs fall back to defaults.
	zero := &Visualizer{}
	if zero.Render([][]bool{{true}}, nil) != "@\n" {
		t.Error("default glyphs")
	}
}

func TestRenderColorRegions(t *testing.T) {
	v := New(true)
	grid := [][]bool{{true, true}, {true, true}}
	owner := func(r, c int) int { return r } // one thread per row
	got := v.Render(grid, owner)
	if !strings.Contains(got, "\x1b[31m") || !strings.Contains(got, "\x1b[32m") {
		t.Errorf("expected two region colors: %q", got)
	}
	if !strings.Contains(got, colorReset) {
		t.Error("missing color reset")
	}
	// Stripping colors recovers the plain render.
	if Strip(got) != "@@\n@@\n" {
		t.Errorf("stripped = %q", Strip(got))
	}
}

func TestColorCycling(t *testing.T) {
	v := New(true)
	grid := [][]bool{make([]bool, 30)}
	owner := func(r, c int) int { return c } // more owners than colors
	got := v.Render(grid, owner)
	if Strip(got) != strings.Repeat(".", 30)+"\n" {
		t.Errorf("stripped = %q", Strip(got))
	}
}

func TestRecorder(t *testing.T) {
	var rec Recorder
	rec.Add("frame1\n")
	rec.Add("frame2\n")
	if rec.Len() != 2 {
		t.Fatalf("len = %d", rec.Len())
	}
	frames := rec.Frames()
	if frames[0] != "frame1\n" || frames[1] != "frame2\n" {
		t.Errorf("frames = %v", frames)
	}
	var out strings.Builder
	if err := rec.Playback(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "frame 1/2") || !strings.Contains(out.String(), "frame2") {
		t.Errorf("playback = %q", out.String())
	}
}

func TestStripEdgeCases(t *testing.T) {
	if Strip("plain") != "plain" {
		t.Error("plain text should pass through")
	}
	if Strip("\x1b[31mred\x1b[0m") != "red" {
		t.Error("color codes should strip")
	}
	if Strip("\x1b") != "" {
		t.Error("bare escape should strip")
	}
	if Strip("\x1b[12;34m x") != " x" {
		t.Errorf("multi-param escape: %q", Strip("\x1b[12;34m x"))
	}
}
