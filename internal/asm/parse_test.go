package asm

import (
	"strings"
	"testing"
	"testing/quick"
)

func mustAssemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p
}

func TestAssembleBasicForms(t *testing.T) {
	p := mustAssemble(t, `
main:
    movl $5, %eax          # immediate to register
    movl %eax, %ebx        # register to register
    movl 8(%ebp), %ecx     # displacement
    movl (%eax,%ebx,4), %edx
    movl (%esi), %edi
    leal -12(%ebp), %eax
    addl $1, %eax
    ret
`)
	if len(p.Instrs) != 8 {
		t.Fatalf("got %d instructions", len(p.Instrs))
	}
	in := p.Instrs[3]
	if in.Mn != MOVL || in.Ops[0].Kind != OpMem || in.Ops[0].Base != EAX ||
		in.Ops[0].Index != EBX || in.Ops[0].Scale != 4 {
		t.Errorf("instr 3 = %+v", in)
	}
	if p.Entry != p.TextBase {
		t.Errorf("entry %#x, want %#x", p.Entry, p.TextBase)
	}
}

func TestAssembleLabelsAndJumps(t *testing.T) {
	p := mustAssemble(t, `
    movl $10, %ecx
loop:
    decl %ecx
    cmpl $0, %ecx
    jne loop
    jmp done
done:
    ret
`)
	jne := p.Instrs[3]
	if jne.Mn != JNE || jne.Ops[0].Kind != OpLabel {
		t.Fatalf("jne = %+v", jne)
	}
	loopAddr := p.Symbols["loop"]
	if uint32(jne.Ops[0].Imm) != loopAddr {
		t.Errorf("jne target %#x, want %#x", jne.Ops[0].Imm, loopAddr)
	}
	if _, ok := p.Symbols["done"]; !ok {
		t.Error("done label missing")
	}
}

func TestAssembleDataSection(t *testing.T) {
	p := mustAssemble(t, `
.data
counter: .long 42
pair:    .long 1, 2
msg:     .asciz "hi"
buf:     .space 8
bytes:   .byte 1, 255, -1
.text
main:
    movl counter, %eax
    movl $msg, %ebx
    ret
`)
	if got := p.Symbols["counter"]; got != p.DataBase {
		t.Errorf("counter at %#x, want %#x", got, p.DataBase)
	}
	if got := p.Symbols["pair"]; got != p.DataBase+4 {
		t.Errorf("pair at %#x", got)
	}
	// 4 + 8 longs, "hi\0" = 3, space 8, bytes 3 = 26 bytes.
	if len(p.Data) != 26 {
		t.Errorf("data length %d, want 26", len(p.Data))
	}
	if p.Data[0] != 42 {
		t.Errorf("counter initial value %d", p.Data[0])
	}
	if string(p.Data[12:14]) != "hi" || p.Data[14] != 0 {
		t.Errorf("msg bytes: %q", p.Data[12:15])
	}
	if p.Data[23] != 1 || p.Data[24] != 255 || p.Data[25] != 255 {
		t.Errorf("byte values: %v", p.Data[23:26])
	}
	// movl counter, %eax resolves the direct memory reference.
	mov := p.Instrs[0]
	if mov.Ops[0].Kind != OpMem || uint32(mov.Ops[0].Disp) != p.DataBase {
		t.Errorf("direct ref: %+v", mov.Ops[0])
	}
	// $msg resolves to the data address as an immediate.
	movImm := p.Instrs[1]
	if movImm.Ops[0].Kind != OpImm || uint32(movImm.Ops[0].Imm) != p.Symbols["msg"] {
		t.Errorf("$msg: %+v", movImm.Ops[0])
	}
	if p.Entry != p.Symbols["main"] {
		t.Errorf("entry %#x, want main %#x", p.Entry, p.Symbols["main"])
	}
}

func TestAssembleAliases(t *testing.T) {
	p := mustAssemble(t, `
    mov $1, %eax
    add $2, %eax
    cdq
    shl $1, %eax
    jz out
out:
    nop
`)
	wants := []Mnemonic{MOVL, ADDL, CLTD, SALL, JE, NOP}
	for i, w := range wants {
		if p.Instrs[i].Mn != w {
			t.Errorf("instr %d: %v, want %v", i, p.Instrs[i].Mn, w)
		}
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"unknown instruction", "frobnicate %eax"},
		{"bad register", "movl %foo, %eax"},
		{"wrong operand count", "movl %eax"},
		{"undefined symbol", "jmp nowhere"},
		{"duplicate label", "x:\nx:\n ret"},
		{"bad immediate", "movl $xyz!, %eax"},
		{"instruction in data", ".data\nmovl $1, %eax"},
		{"unknown directive", ".frob 1"},
		{"bad scale", "movl (%eax,%ebx,3), %ecx"},
		{"long outside data", ".long 5"},
		{"bad byte", ".data\n.byte 300"},
		{"bad string", ".data\n.asciz hi"},
		{"bad space", ".data\n.space -1"},
		{"empty operand", "movl , %eax"},
		{"bad displacement", "movl a!b(%eax), %ebx"},
		{"too many mem parts", "movl (%eax,%ebx,4,5), %ecx"},
		{"empty mem", "movl (), %eax"},
	}
	for _, c := range cases {
		if _, err := Assemble(c.src); err == nil {
			t.Errorf("%s: expected error for %q", c.name, c.src)
		}
	}
}

func TestSyntaxErrorHasLine(t *testing.T) {
	_, err := Assemble("nop\nbogus %eax\n")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if se.Line != 2 {
		t.Errorf("line %d, want 2", se.Line)
	}
	if !strings.Contains(se.Error(), "line 2") {
		t.Errorf("message %q", se.Error())
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	src := `
main:
    pushl %ebp
    movl %esp, %ebp
    movl 8(%ebp), %eax
    addl $5, %eax
    cmpl $10, %eax
    jle small
    movl $0, %eax
small:
    leave
    ret
`
	p := mustAssemble(t, src)
	dis := p.Disassemble()
	if !strings.Contains(dis, "<main>:") {
		t.Errorf("disassembly missing main label:\n%s", dis)
	}
	// Reassembling the instruction listing (with label lines re-inserted at
	// their addresses) must produce the same instruction sequence.
	byAddr := make(map[uint32][]string)
	for name, addr := range p.Symbols {
		byAddr[addr] = append(byAddr[addr], name)
	}
	var re strings.Builder
	for i, in := range p.Instrs {
		for _, l := range byAddr[p.TextBase+uint32(i)*InstrBytes] {
			re.WriteString(l + ":\n")
		}
		re.WriteString(in.String())
		re.WriteByte('\n')
	}
	p2, err := Assemble(re.String())
	if err != nil {
		t.Fatalf("reassemble: %v", err)
	}
	if len(p2.Instrs) != len(p.Instrs) {
		t.Fatalf("instruction count changed: %d vs %d", len(p2.Instrs), len(p.Instrs))
	}
	for i := range p.Instrs {
		if p.Instrs[i].String() != p2.Instrs[i].String() {
			t.Errorf("instr %d: %q vs %q", i, p.Instrs[i].String(), p2.Instrs[i].String())
		}
	}
}

// Property: formatting and reparsing a random register-form instruction
// preserves it.
func TestInstrFormatParseProperty(t *testing.T) {
	mnems := []Mnemonic{MOVL, ADDL, SUBL, ANDL, ORL, XORL, CMPL, TESTL, IMULL}
	f := func(mnRaw, srcReg, dstReg uint8, imm int32, useImm bool) bool {
		mn := mnems[int(mnRaw)%len(mnems)]
		var src Operand
		if useImm {
			src = Imm(imm)
		} else {
			src = Reg(Register(srcReg % 8))
		}
		in := Instruction{Mn: mn, Ops: []Operand{src, Reg(Register(dstReg % 8))}}
		p, err := Assemble(in.String())
		if err != nil {
			return false
		}
		return len(p.Instrs) == 1 && p.Instrs[0].String() == in.String()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOperandStrings(t *testing.T) {
	cases := []struct {
		op   Operand
		want string
	}{
		{Imm(-5), "$-5"},
		{Reg(EAX), "%eax"},
		{Mem(8, EBP, NoReg, 1), "8(%ebp)"},
		{Mem(0, EAX, EBX, 4), "(%eax,%ebx,4)"},
		{Mem(-4, EBP, NoReg, 1), "-4(%ebp)"},
		{Mem(0x2000, NoReg, NoReg, 1), "0x2000"},
		{Label("foo"), "foo"},
		{Operand{}, "<none>"},
	}
	for _, c := range cases {
		if got := c.op.String(); got != c.want {
			t.Errorf("operand %+v = %q, want %q", c.op, got, c.want)
		}
	}
	if NoReg.String() != "%none" || Register(12).String() != "%reg(12)" {
		t.Error("register name edge cases")
	}
	if Mnemonic(99).String() != "mnemonic(99)" {
		t.Error("mnemonic edge case")
	}
}

func TestInstrAt(t *testing.T) {
	p := mustAssemble(t, "nop\nnop\nret")
	if idx, err := p.InstrAt(p.TextBase + 4); err != nil || idx != 1 {
		t.Errorf("InstrAt: %d, %v", idx, err)
	}
	if _, err := p.InstrAt(p.TextBase + 2); err == nil {
		t.Error("unaligned address should fail")
	}
	if _, err := p.InstrAt(p.TextEnd()); err == nil {
		t.Error("past-end address should fail")
	}
}

func TestCommentsAndColonInString(t *testing.T) {
	p := mustAssemble(t, `
.data
msg: .asciz "a:b # not a comment"
.text
    ret # trailing comment
`)
	want := "a:b # not a comment"
	if got := string(p.Data[:len(want)]); got != want {
		t.Errorf("string data %q, want %q", got, want)
	}
	if p.Data[len(want)] != 0 {
		t.Error("asciz should NUL-terminate")
	}
	if len(p.Instrs) != 1 || p.Instrs[0].Mn != RET {
		t.Errorf("instrs: %v", p.Instrs)
	}
}
