package asm

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

const objTestSrc = `
.data
greeting: .asciz "hello"
value:    .long 42
.text
helper:
    pushl %ebp
    movl %esp, %ebp
    movl 8(%ebp), %eax
    imull $2, %eax
    leave
    ret
main:
    pushl $21
    call helper
    addl $4, %esp
    movl value, %ebx
    ret
`

func TestObjectRoundTrip(t *testing.T) {
	p := mustAssemble(t, objTestSrc)
	var buf bytes.Buffer
	if err := p.WriteObject(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := ReadObject(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.TextBase != p.TextBase || q.DataBase != p.DataBase || q.Entry != p.Entry {
		t.Errorf("bases: %+v vs %+v", q, p)
	}
	if len(q.Instrs) != len(p.Instrs) {
		t.Fatalf("instr count %d vs %d", len(q.Instrs), len(p.Instrs))
	}
	for i := range p.Instrs {
		a, b := p.Instrs[i], q.Instrs[i]
		// Sym fields are display-only and not serialized; compare the
		// executable fields via rendering with syms stripped.
		a2 := a
		b2 := b
		for j := range a2.Ops {
			a2.Ops[j].Sym = ""
		}
		for j := range b2.Ops {
			b2.Ops[j].Sym = ""
		}
		if a2.String() != b2.String() || a.Line != b.Line || a.Addr != b.Addr {
			t.Errorf("instr %d: %q/%d vs %q/%d", i, a2.String(), a.Line, b2.String(), b.Line)
		}
	}
	if !bytes.Equal(q.Data, p.Data) {
		t.Error("data section differs")
	}
	if len(q.Symbols) != len(p.Symbols) {
		t.Errorf("symbols: %v vs %v", q.Symbols, p.Symbols)
	}
	for name, addr := range p.Symbols {
		if q.Symbols[name] != addr {
			t.Errorf("symbol %q: %#x vs %#x", name, q.Symbols[name], addr)
		}
	}
}

func TestObjectLoadedProgramRuns(t *testing.T) {
	p := mustAssemble(t, objTestSrc)
	raw, err := p.ObjectBytes()
	if err != nil {
		t.Fatal(err)
	}
	q, err := ReadObject(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	run := func(prog *Program) (uint32, uint32) {
		m, err := NewMachine(prog)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run(1000); err != nil {
			t.Fatal(err)
		}
		return m.Regs[EAX], m.Regs[EBX]
	}
	ax1, bx1 := run(p)
	ax2, bx2 := run(q)
	if ax1 != ax2 || bx1 != bx2 {
		t.Errorf("behaviour differs: (%d,%d) vs (%d,%d)", ax1, bx1, ax2, bx2)
	}
	if ax1 != 42 || bx1 != 42 {
		t.Errorf("expected helper(21)=42 and value=42, got %d, %d", ax1, bx1)
	}
}

func TestObjectDeterministic(t *testing.T) {
	p := mustAssemble(t, objTestSrc)
	a, err := p.ObjectBytes()
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.ObjectBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("serialization should be deterministic")
	}
}

func TestObjectBadInputs(t *testing.T) {
	p := mustAssemble(t, objTestSrc)
	raw, err := p.ObjectBytes()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"bad magic", func(b []byte) []byte { c := clone(b); c[0] = 'X'; return c }},
		{"bad version", func(b []byte) []byte { c := clone(b); c[4] = 99; return c }},
		{"truncated header", func(b []byte) []byte { return b[:10] }},
		{"truncated text", func(b []byte) []byte { return b[:40] }},
		{"truncated data", func(b []byte) []byte { return b[:len(b)-20] }},
		{"truncated symbols", func(b []byte) []byte { return b[:len(b)-2] }},
		{"empty", func(b []byte) []byte { return nil }},
		{"bad mnemonic", func(b []byte) []byte {
			c := clone(b)
			c[32] = 0xff // first instruction's mnemonic low byte
			c[33] = 0xff
			return c
		}},
	}
	for _, tc := range cases {
		if _, err := ReadObject(bytes.NewReader(tc.mut(raw))); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func clone(b []byte) []byte { return append([]byte(nil), b...) }

// Property: any program assembled from the generator fuzz corpus
// round-trips through the object format and disassembles identically.
func TestObjectRoundTripProperty(t *testing.T) {
	f := func(opRaw, r1, r2 uint8, imm int32) bool {
		mnems := []Mnemonic{MOVL, ADDL, SUBL, CMPL, ANDL, XORL, IMULL}
		mn := mnems[int(opRaw)%len(mnems)]
		src := mn.String() + " $" + itoa(imm) + ", %" + regNames[r1%8] + "\n" +
			mn.String() + " %" + regNames[r1%8] + ", %" + regNames[r2%8] + "\nret\n"
		p, err := Assemble(src)
		if err != nil {
			return false
		}
		raw, err := p.ObjectBytes()
		if err != nil {
			return false
		}
		q, err := ReadObject(bytes.NewReader(raw))
		if err != nil {
			return false
		}
		return q.Disassemble() == p.Disassemble()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func itoa(v int32) string {
	var sb strings.Builder
	if v < 0 {
		sb.WriteByte('-')
	}
	u := uint64(v)
	if v < 0 {
		u = uint64(-int64(v))
	}
	var digits []byte
	if u == 0 {
		digits = []byte{'0'}
	}
	for u > 0 {
		digits = append([]byte{byte('0' + u%10)}, digits...)
		u /= 10
	}
	sb.Write(digits)
	return sb.String()
}

// ReadObject must reject random byte soup with errors, never panic.
func TestReadObjectNeverPanics(t *testing.T) {
	p := mustAssemble(t, objTestSrc)
	valid, err := p.ObjectBytes()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 300; trial++ {
		buf := clone(valid)
		// Corrupt a few random bytes (keeping the magic sometimes so the
		// parser gets deep into the file).
		for k := 0; k < 1+rng.Intn(8); k++ {
			buf[rng.Intn(len(buf))] ^= byte(1 + rng.Intn(255))
		}
		if rng.Intn(3) == 0 {
			buf = buf[:rng.Intn(len(buf))]
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("ReadObject panicked: %v", r)
				}
			}()
			if q, err := ReadObject(bytes.NewReader(buf)); err == nil && q != nil {
				// A surviving mutation must still be a structurally valid
				// program: every instruction within mnemonic range.
				for _, in := range q.Instrs {
					if in.Mn >= numMnemonics {
						t.Fatalf("accepted object with bad mnemonic %d", in.Mn)
					}
				}
			}
		}()
	}
}
