package asm

// Differential equivalence: the decoded-dispatch path (Step) must be
// bit-for-bit identical to the original switch-ladder interpreter
// (stepReference) — registers, EFLAGS, PC, memory, exit state, and error
// strings — over handcrafted mixed programs and randomly generated ones.

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// diffStates compares every piece of observable machine state.
func diffStates(fast, ref *Machine, compareMem bool) string {
	if fast.Regs != ref.Regs {
		return fmt.Sprintf("registers %v vs %v", fast.Regs, ref.Regs)
	}
	if fast.Flags != ref.Flags {
		return fmt.Sprintf("flags %+v vs %+v", fast.Flags, ref.Flags)
	}
	if fast.PC != ref.PC {
		return fmt.Sprintf("PC %d vs %d", fast.PC, ref.PC)
	}
	if fast.Exited != ref.Exited || fast.ExitStatus != ref.ExitStatus {
		return fmt.Sprintf("exit (%v,%d) vs (%v,%d)",
			fast.Exited, fast.ExitStatus, ref.Exited, ref.ExitStatus)
	}
	if fast.Steps != ref.Steps {
		return fmt.Sprintf("steps %d vs %d", fast.Steps, ref.Steps)
	}
	if compareMem && !bytes.Equal(fast.Mem, ref.Mem) {
		for i := range fast.Mem {
			if fast.Mem[i] != ref.Mem[i] {
				return fmt.Sprintf("memory differs at %#x: %#x vs %#x", i, fast.Mem[i], ref.Mem[i])
			}
		}
	}
	return ""
}

// runDifferential locksteps the two interpreters over one program.
func runDifferential(t *testing.T, label, src, stdin string, maxSteps int) {
	t.Helper()
	prog, err := Assemble(src)
	if err != nil {
		t.Fatalf("%s: assemble: %v", label, err)
	}
	newM := func() (*Machine, *bytes.Buffer) {
		m, err := NewMachineSize(prog, 1<<16)
		if err != nil {
			t.Fatalf("%s: NewMachine: %v", label, err)
		}
		var out bytes.Buffer
		m.Stdin = strings.NewReader(stdin)
		m.Stdout = &out
		return m, &out
	}
	fast, fastOut := newM()
	ref, refOut := newM()
	for step := 0; step < maxSteps; step++ {
		errFast := fast.Step()
		errRef := ref.stepReference()
		if (errFast == nil) != (errRef == nil) ||
			(errFast != nil && errFast.Error() != errRef.Error()) {
			t.Fatalf("%s: step %d: error mismatch: fast=%v ref=%v", label, step, errFast, errRef)
		}
		if d := diffStates(fast, ref, step%16 == 0); d != "" {
			t.Fatalf("%s: step %d: state diverged: %s", label, step, d)
		}
		if errFast != nil || fast.Exited {
			break
		}
	}
	if d := diffStates(fast, ref, true); d != "" {
		t.Fatalf("%s: final state diverged: %s", label, d)
	}
	if !bytes.Equal(fastOut.Bytes(), refOut.Bytes()) {
		t.Fatalf("%s: stdout diverged: %q vs %q", label, fastOut.Bytes(), refOut.Bytes())
	}
}

func TestDecodedDispatchMatchesReference(t *testing.T) {
	cases := []struct {
		label, src, stdin string
	}{
		{"arith-loop", `
main:
    movl $0, %eax
    movl $7, %ebx
    movl $50, %ecx
loop:
    addl %ebx, %eax
    imull $3, %ebx
    andl $0x7fffffff, %ebx
    subl $1, %ecx
    cmpl $0, %ecx
    jne loop
    ret
`, ""},
		{"call-stack-memory", `
main:
    pushl %ebp
    movl %esp, %ebp
    movl $12, %eax
    pushl %eax
    call square
    addl $4, %esp
    movl %eax, 0x8000
    movl 0x8000, %ebx
    leave
    ret
square:
    pushl %ebp
    movl %esp, %ebp
    movl 8(%ebp), %eax
    imull %eax, %eax
    leave
    ret
`, ""},
		{"flags-and-jumps", `
main:
    movl $-5, %eax
    cmpl $3, %eax
    jl below
    movl $0, %ebx
    jmp done
below:
    movl $1, %ebx
    negl %eax
    incl %eax
    decl %eax
    notl %eax
    sall $2, %eax
    sarl $1, %eax
    shrl $1, %eax
    testl %eax, %eax
    js done
    orl $0x10, %ebx
    xorl %ecx, %ecx
done:
    ret
`, ""},
		{"lea-indexed", `
main:
    movl $0x8000, %ebx
    movl $3, %ecx
    leal 8(%ebx,%ecx,4), %edx
    movl $77, (%ebx,%ecx,4)
    movl (%ebx,%ecx,4), %eax
    movb $65, 2(%ebx)
    movzbl 2(%ebx), %esi
    movsbl 2(%ebx), %edi
    ret
`, ""},
		{"division-and-syscalls", `
main:
    movl $100, %eax
    cltd
    movl $7, %ebx
    idivl %ebx
    movl %eax, %ebx
    movl $5, %eax
    int $0x80
    movl $6, %eax
    int $0x80
    movl $1, %eax
    movl $0, %ebx
    int $0x80
`, "42\n"},
		{"faulting-load", `
main:
    movl $0, %ebx
    movl (%ebx), %eax
    ret
`, ""},
		{"bad-jump-target", `
main:
    movl $0x2, %eax
    jmp *%eax
`, ""},
		{"divide-by-zero", `
main:
    movl $9, %eax
    cltd
    movl $0, %ebx
    idivl %ebx
    ret
`, ""},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.label, func(t *testing.T) {
			runDifferential(t, tc.label, tc.src, tc.stdin, 5000)
		})
	}
}

// TestDecodedDispatchMatchesReferenceRandom locksteps the interpreters over
// the same random program population the robustness test uses, so faults
// (segfaults, wild jumps, overflow) are compared too.
func TestDecodedDispatchMatchesReferenceRandom(t *testing.T) {
	mnems := []Mnemonic{
		MOVL, MOVB, MOVZBL, MOVSBL, LEAL, ADDL, SUBL, IMULL, IDIVL, CLTD,
		ANDL, ORL, XORL, NOTL, NEGL, INCL, DECL, SALL, SARL, SHRL, CMPL,
		TESTL, PUSHL, POPL, RET, LEAVE, NOP, INT,
	}
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var src strings.Builder
		src.WriteString("main:\n")
		for i := 0; i < 30; i++ {
			mn := mnems[rng.Intn(len(mnems))]
			src.WriteString("    " + mn.String())
			n := operandCounts[mn]
			for j := 0; j < n; j++ {
				op := randomOperand(rng)
				if j == n-1 && op.Kind == OpImm && writesLastOperand(mn) {
					op = Reg(Register(rng.Intn(int(NumRegisters))))
				}
				if mn == INT {
					op = Imm(0x80)
				}
				if j == 0 {
					src.WriteString(" " + op.String())
				} else {
					src.WriteString(", " + op.String())
				}
			}
			src.WriteByte('\n')
		}
		src.WriteString("    ret\n")
		prog, err := Assemble(src.String())
		if err != nil {
			continue
		}
		if _, err := NewMachine(prog); err != nil {
			continue
		}
		runDifferential(t, fmt.Sprintf("seed-%d", seed), src.String(), "42 7 xyz", 2000)
	}
}
