package asm

// Robustness: the machine must never panic, whatever instructions it
// executes — faults must surface as errors. Random programs are generated
// from the full instruction set with random (frequently invalid) operands.

import (
	"io"
	"math/rand"
	"strings"
	"testing"
)

// randomOperand produces a syntactically valid operand, often semantically
// dangerous (wild addresses, huge immediates).
func randomOperand(rng *rand.Rand) Operand {
	switch rng.Intn(4) {
	case 0:
		return Imm(int32(rng.Uint32()))
	case 1:
		return Reg(Register(rng.Intn(int(NumRegisters))))
	case 2:
		base, index := NoReg, NoReg
		if rng.Intn(2) == 0 {
			base = Register(rng.Intn(int(NumRegisters)))
		}
		if rng.Intn(3) == 0 {
			index = Register(rng.Intn(int(NumRegisters)))
		}
		scales := []int32{1, 2, 4, 8}
		op := Mem(int32(rng.Intn(1<<16)), base, index, scales[rng.Intn(4)])
		if base == NoReg && index == NoReg && rng.Intn(2) == 0 {
			op.Disp = int32(rng.Uint32())
		}
		return op
	default:
		return Mem(int32(rng.Intn(1<<20)), NoReg, NoReg, 1)
	}
}

func TestMachineNeverPanics(t *testing.T) {
	mnems := []Mnemonic{
		MOVL, MOVB, MOVZBL, MOVSBL, LEAL, ADDL, SUBL, IMULL, IDIVL, CLTD,
		ANDL, ORL, XORL, NOTL, NEGL, INCL, DECL, SALL, SARL, SHRL, CMPL,
		TESTL, PUSHL, POPL, RET, LEAVE, NOP, INT,
	}
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var src strings.Builder
		src.WriteString("main:\n")
		for i := 0; i < 30; i++ {
			mn := mnems[rng.Intn(len(mnems))]
			src.WriteString("    " + mn.String())
			n := operandCounts[mn]
			for j := 0; j < n; j++ {
				op := randomOperand(rng)
				// Destination operands must be writable; keep the last
				// operand a register or memory so assembly succeeds.
				if j == n-1 && op.Kind == OpImm && writesLastOperand(mn) {
					op = Reg(Register(rng.Intn(int(NumRegisters))))
				}
				if mn == INT {
					op = Imm(0x80)
				}
				if j == 0 {
					src.WriteString(" " + op.String())
				} else {
					src.WriteString(", " + op.String())
				}
			}
			src.WriteByte('\n')
		}
		src.WriteString("    ret\n")

		prog, err := Assemble(src.String())
		if err != nil {
			// Some random combinations are rejected at assembly; that is a
			// legitimate outcome, not a robustness failure.
			continue
		}
		m, err := NewMachine(prog)
		if err != nil {
			continue
		}
		m.Stdin = strings.NewReader("42 xyz")
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("seed %d: machine panicked: %v\nprogram:\n%s", seed, r, src.String())
				}
			}()
			_ = m.Run(5000) // errors are fine; panics are not
		}()
	}
}

// writesLastOperand reports whether the mnemonic writes its final operand.
func writesLastOperand(m Mnemonic) bool {
	switch m {
	case MOVL, MOVB, MOVZBL, MOVSBL, LEAL, ADDL, SUBL, IMULL, ANDL, ORL,
		XORL, SALL, SARL, SHRL, POPL, NOTL, NEGL, INCL, DECL:
		return true
	}
	return false
}

// FuzzAssemble feeds arbitrary source to the assembler: Assemble must never
// panic, and any program it accepts must execute (bounded) without panicking.
func FuzzAssemble(f *testing.F) {
	f.Add("main:\n    movl $1, %eax\n    ret\n")
	f.Add("main:\n    pushl %ebp\n    movl %esp, %ebp\n    leave\n    ret\n")
	f.Add("loop:\n    addl $3, %eax\n    decl %ecx\n    jne loop\n    ret\n")
	f.Add("main:\n    movl (%ebx,%ecx,4), %eax\n    int $0x80\n")
	f.Add("main: jmp *%eax\n")
	f.Add("%$(),.:#-movl")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Assemble(src)
		if err != nil {
			return
		}
		m, err := NewMachineSize(prog, 1<<16)
		if err != nil {
			return
		}
		m.Stdin = strings.NewReader("42 7 xyz")
		m.Stdout = io.Discard
		_ = m.Run(2000) // errors are fine; panics are not
	})
}

// TestAssemblerNeverPanics lexes random byte soup.
func TestAssemblerNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	alphabet := "abcdefgh%$(),.:#-0123456789 \n\tmovladsubjmp\"\\*"
	for i := 0; i < 200; i++ {
		n := rng.Intn(200)
		buf := make([]byte, n)
		for j := range buf {
			buf[j] = alphabet[rng.Intn(len(alphabet))]
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("assembler panicked on %q: %v", buf, r)
				}
			}()
			_, _ = Assemble(string(buf))
		}()
	}
}
