package asm

import (
	"fmt"
	"strconv"
	"strings"
)

// Default segment layout for assembled programs. The machine's memory is a
// flat byte array, so these are small offsets rather than the classic
// 0x08048000 bases; the first page is left unmapped to catch NULL
// dereferences.
const (
	DefaultTextBase = 0x00001000
	DefaultDataBase = 0x00010000
)

// SyntaxError reports an assembly error with its source line.
type SyntaxError struct {
	Line int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg)
}

func errf(line int, format string, args ...interface{}) error {
	return &SyntaxError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// operandCounts maps each mnemonic to its required operand count.
var operandCounts = map[Mnemonic]int{
	MOVL: 2, MOVB: 2, MOVZBL: 2, MOVSBL: 2, LEAL: 2, ADDL: 2, SUBL: 2,
	IMULL: 2, IDIVL: 1, CLTD: 0, ANDL: 2, ORL: 2, XORL: 2, NOTL: 1,
	NEGL: 1, INCL: 1, DECL: 1, SALL: 2, SARL: 2, SHRL: 2, CMPL: 2,
	TESTL: 2, PUSHL: 1, POPL: 1, CALL: 1, RET: 0, LEAVE: 0, JMP: 1,
	JE: 1, JNE: 1, JL: 1, JLE: 1, JG: 1, JGE: 1, JB: 1, JBE: 1, JA: 1,
	JAE: 1, JS: 1, JNS: 1, NOP: 0, INT: 1,
}

// isJumpOrCall reports whether the mnemonic's operand is a code label.
func isJumpOrCall(m Mnemonic) bool {
	switch m {
	case CALL, JMP, JE, JNE, JL, JLE, JG, JGE, JB, JBE, JA, JAE, JS, JNS:
		return true
	}
	return false
}

// Assemble parses AT&T-syntax source into a Program using the default
// segment bases. Supported directives: .text, .data, .globl (ignored),
// .long, .byte, .asciz/.string, .space. Comments run from '#' to end of
// line. A label "main" becomes the entry point.
func Assemble(src string) (*Program, error) {
	return AssembleAt(src, DefaultTextBase, DefaultDataBase)
}

// AssembleAt assembles with explicit text and data segment bases.
func AssembleAt(src string, textBase, dataBase uint32) (*Program, error) {
	p := &Program{
		Symbols:  make(map[string]uint32),
		TextBase: textBase,
		DataBase: dataBase,
	}

	type pending struct {
		instrIdx int
		opIdx    int
		sym      string
		line     int
		imm      bool // $sym immediate reference
	}
	var fixups []pending

	inData := false
	lines := strings.Split(src, "\n")
	for lineNo, raw := range lines {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		ln := lineNo + 1

		// Labels (possibly several, possibly followed by code on the line).
		for {
			i := strings.IndexByte(line, ':')
			if i < 0 {
				break
			}
			name := strings.TrimSpace(line[:i])
			if !isIdent(name) {
				// Not a label (e.g. a ':' inside a string literal); let the
				// directive/instruction parser handle the line.
				break
			}
			if _, dup := p.Symbols[name]; dup {
				return nil, errf(ln, "duplicate label %q", name)
			}
			if inData {
				p.Symbols[name] = dataBase + uint32(len(p.Data))
			} else {
				p.Symbols[name] = textBase + uint32(len(p.Instrs))*InstrBytes
			}
			line = strings.TrimSpace(line[i+1:])
			if line == "" {
				break
			}
		}
		if line == "" {
			continue
		}

		// Directives.
		if strings.HasPrefix(line, ".") {
			if err := parseDirective(p, line, ln, &inData); err != nil {
				return nil, err
			}
			continue
		}

		if inData {
			return nil, errf(ln, "instruction %q in .data section", line)
		}

		// Instruction.
		fields := strings.SplitN(line, " ", 2)
		mnName := strings.TrimSpace(fields[0])
		mn, ok := MnemonicByName(strings.ToLower(mnName))
		if !ok {
			return nil, errf(ln, "unknown instruction %q", mnName)
		}
		var rest string
		if len(fields) == 2 {
			rest = strings.TrimSpace(fields[1])
		}
		ops, syms, err := parseOperands(mn, rest, ln)
		if err != nil {
			return nil, err
		}
		want := operandCounts[mn]
		if len(ops) != want {
			return nil, errf(ln, "%s takes %d operand(s), got %d", mn, want, len(ops))
		}
		idx := len(p.Instrs)
		p.Instrs = append(p.Instrs, Instruction{
			Mn: mn, Ops: ops,
			Addr: textBase + uint32(idx)*InstrBytes,
			Line: ln,
		})
		for _, s := range syms {
			fixups = append(fixups, pending{
				instrIdx: idx, opIdx: s.opIdx, sym: s.sym, line: ln, imm: s.imm,
			})
		}
	}

	// Second pass: resolve symbol references.
	for _, f := range fixups {
		addr, ok := p.Symbols[f.sym]
		if !ok {
			return nil, errf(f.line, "undefined symbol %q", f.sym)
		}
		op := &p.Instrs[f.instrIdx].Ops[f.opIdx]
		switch {
		case f.imm, op.Kind == OpLabel:
			op.Imm = int32(addr)
		case op.Kind == OpMem:
			op.Disp += int32(addr)
		}
	}

	if main, ok := p.Symbols["main"]; ok {
		p.Entry = main
	} else {
		p.Entry = textBase
	}
	return p, nil
}

func parseDirective(p *Program, line string, ln int, inData *bool) error {
	fields := strings.SplitN(line, " ", 2)
	dir := fields[0]
	var arg string
	if len(fields) == 2 {
		arg = strings.TrimSpace(fields[1])
	}
	switch dir {
	case ".text":
		*inData = false
	case ".data":
		*inData = true
	case ".globl", ".global", ".align", ".type", ".size", ".section":
		// accepted and ignored, so compiler output assembles unchanged
	case ".long", ".word", ".int":
		if !*inData {
			return errf(ln, "%s outside .data", dir)
		}
		for _, tok := range strings.Split(arg, ",") {
			v, err := parseInt(strings.TrimSpace(tok))
			if err != nil {
				return errf(ln, "bad %s value %q", dir, tok)
			}
			p.Data = append(p.Data,
				byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
	case ".byte":
		if !*inData {
			return errf(ln, ".byte outside .data")
		}
		for _, tok := range strings.Split(arg, ",") {
			v, err := parseInt(strings.TrimSpace(tok))
			if err != nil {
				return errf(ln, "bad .byte value %q", tok)
			}
			if v < -128 || v > 255 {
				return errf(ln, ".byte value %d out of range", v)
			}
			p.Data = append(p.Data, byte(v))
		}
	case ".asciz", ".string", ".ascii":
		s, err := strconv.Unquote(arg)
		if err != nil {
			return errf(ln, "bad string literal %s", arg)
		}
		p.Data = append(p.Data, []byte(s)...)
		if dir != ".ascii" {
			p.Data = append(p.Data, 0)
		}
	case ".space", ".zero", ".skip":
		n, err := parseInt(arg)
		if err != nil || n < 0 {
			return errf(ln, "bad %s size %q", dir, arg)
		}
		p.Data = append(p.Data, make([]byte, n)...)
	default:
		return errf(ln, "unknown directive %q", dir)
	}
	return nil
}

type symRef struct {
	opIdx int
	sym   string
	imm   bool
}

// parseOperands splits and parses the comma-separated operand list,
// returning any symbol references needing second-pass resolution.
func parseOperands(mn Mnemonic, s string, ln int) ([]Operand, []symRef, error) {
	if s == "" {
		return nil, nil, nil
	}
	parts := splitOperands(s)
	ops := make([]Operand, 0, len(parts))
	var syms []symRef
	for i, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, nil, errf(ln, "empty operand %d", i+1)
		}
		op, sym, err := parseOperand(mn, part, ln)
		if err != nil {
			return nil, nil, err
		}
		if sym != nil {
			sym.opIdx = i
			syms = append(syms, *sym)
		}
		ops = append(ops, op)
	}
	return ops, syms, nil
}

// splitOperands splits on commas that are not inside parentheses (memory
// operands contain commas).
func splitOperands(s string) []string {
	var parts []string
	depth := 0
	start := 0
	for i, r := range s {
		switch r {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, s[start:])
	return parts
}

func parseOperand(mn Mnemonic, s string, ln int) (Operand, *symRef, error) {
	switch {
	case strings.HasPrefix(s, "$"):
		body := s[1:]
		if v, err := parseInt(body); err == nil {
			return Imm(int32(v)), nil, nil
		}
		if isIdent(body) {
			op := Imm(0)
			op.Sym = body
			return op, &symRef{sym: body, imm: true}, nil
		}
		return Operand{}, nil, errf(ln, "bad immediate %q", s)

	case strings.HasPrefix(s, "%"):
		r, ok := RegisterByName(strings.ToLower(s[1:]))
		if !ok {
			// Accept %cl as an alias for the low byte of ecx in shift counts.
			if strings.ToLower(s[1:]) == "cl" {
				return Reg(ECX), nil, nil
			}
			return Operand{}, nil, errf(ln, "unknown register %q", s)
		}
		return Reg(r), nil, nil

	case strings.Contains(s, "("):
		return parseMemOperand(s, ln)

	default:
		// Bare token: label target for jumps/calls, direct memory reference
		// otherwise, or a bare integer address.
		if isJumpOrCall(mn) {
			if strings.HasPrefix(s, "*") {
				// Indirect jump through register: *%eax.
				r, ok := RegisterByName(strings.ToLower(strings.TrimPrefix(s, "*%")))
				if !ok {
					return Operand{}, nil, errf(ln, "bad indirect target %q", s)
				}
				return Reg(r), nil, nil
			}
			if v, err := parseInt(s); err == nil {
				op := Label("")
				op.Imm = int32(v)
				return op, nil, nil
			}
			if !isIdent(s) {
				return Operand{}, nil, errf(ln, "bad jump target %q", s)
			}
			return Label(s), &symRef{sym: s}, nil
		}
		if v, err := parseInt(s); err == nil {
			return Mem(int32(v), NoReg, NoReg, 1), nil, nil
		}
		if isIdent(s) {
			op := Mem(0, NoReg, NoReg, 1)
			op.Sym = s
			return op, &symRef{sym: s}, nil
		}
		return Operand{}, nil, errf(ln, "bad operand %q", s)
	}
}

// parseMemOperand parses disp(base,index,scale) forms, including
// sym(%reg) and (%base,%index,scale).
func parseMemOperand(s string, ln int) (Operand, *symRef, error) {
	open := strings.IndexByte(s, '(')
	closeIdx := strings.LastIndexByte(s, ')')
	if closeIdx != len(s)-1 {
		return Operand{}, nil, errf(ln, "bad memory operand %q", s)
	}
	dispStr := strings.TrimSpace(s[:open])
	inner := s[open+1 : closeIdx]

	op := Mem(0, NoReg, NoReg, 1)
	var ref *symRef
	if dispStr != "" {
		if v, err := parseInt(dispStr); err == nil {
			op.Disp = int32(v)
		} else if isIdent(dispStr) {
			op.Sym = dispStr
			ref = &symRef{sym: dispStr}
		} else {
			return Operand{}, nil, errf(ln, "bad displacement %q", dispStr)
		}
	}

	parts := strings.Split(inner, ",")
	if len(parts) > 3 {
		return Operand{}, nil, errf(ln, "bad memory operand %q", s)
	}
	parseReg := func(t string) (Register, error) {
		t = strings.TrimSpace(t)
		if t == "" {
			return NoReg, nil
		}
		if !strings.HasPrefix(t, "%") {
			return NoReg, errf(ln, "expected register, got %q", t)
		}
		r, ok := RegisterByName(strings.ToLower(t[1:]))
		if !ok {
			return NoReg, errf(ln, "unknown register %q", t)
		}
		return r, nil
	}
	var err error
	if op.Base, err = parseReg(parts[0]); err != nil {
		return Operand{}, nil, err
	}
	if len(parts) >= 2 {
		if op.Index, err = parseReg(parts[1]); err != nil {
			return Operand{}, nil, err
		}
	}
	if len(parts) == 3 {
		sc, err := parseInt(strings.TrimSpace(parts[2]))
		if err != nil || (sc != 1 && sc != 2 && sc != 4 && sc != 8) {
			return Operand{}, nil, errf(ln, "bad scale %q", parts[2])
		}
		op.Scale = int32(sc)
	}
	if op.Base == NoReg && op.Index == NoReg && op.Sym == "" && dispStr == "" {
		return Operand{}, nil, errf(ln, "empty memory operand %q", s)
	}
	return op, ref, nil
}

func parseInt(s string) (int64, error) {
	if s == "" {
		return 0, fmt.Errorf("empty")
	}
	neg := false
	if s[0] == '-' {
		neg = true
		s = s[1:]
	} else if s[0] == '+' {
		s = s[1:]
	}
	if len(s) >= 3 && s[0] == '\'' && s[len(s)-1] == '\'' {
		body, err := strconv.Unquote(s)
		if err != nil || len(body) != 1 {
			return 0, fmt.Errorf("bad char literal")
		}
		v := int64(body[0])
		if neg {
			v = -v
		}
		return v, nil
	}
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, err
	}
	if v > 1<<32-1 || v < -(1<<31) {
		return 0, fmt.Errorf("out of 32-bit range")
	}
	if neg {
		v = -v
	}
	return v, nil
}

// stripComment removes a '#' comment, ignoring '#' inside double-quoted
// string literals (with backslash escapes).
func stripComment(line string) string {
	inStr := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '\\':
			if inStr {
				i++ // skip escaped char
			}
		case '"':
			inStr = !inStr
		case '#':
			if !inStr {
				return line[:i]
			}
		}
	}
	return line
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		isAlpha := r == '_' || r == '.' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		isDigit := r >= '0' && r <= '9'
		if i == 0 && !isAlpha {
			return false
		}
		if !isAlpha && !isDigit {
			return false
		}
	}
	return true
}
