package asm

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func runProgram(t *testing.T, src string, stdin string) (*Machine, string) {
	t.Helper()
	p := mustAssemble(t, src)
	m, err := NewMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	m.Stdin = strings.NewReader(stdin)
	m.Stdout = &out
	if err := m.Run(1_000_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return m, out.String()
}

func TestMachineArithmetic(t *testing.T) {
	m, _ := runProgram(t, `
main:
    movl $6, %eax
    movl $7, %ebx
    imull %ebx, %eax      # eax = 42
    addl $8, %eax         # 50
    subl $20, %eax        # 30
    ret
`, "")
	if m.Regs[EAX] != 30 {
		t.Errorf("eax = %d, want 30", m.Regs[EAX])
	}
	if m.ExitStatus != 30 {
		t.Errorf("exit status = %d (ret from main returns eax)", m.ExitStatus)
	}
}

func TestMachineDivision(t *testing.T) {
	m, _ := runProgram(t, `
main:
    movl $-17, %eax
    cltd
    movl $5, %ebx
    idivl %ebx
    ret
`, "")
	if int32(m.Regs[EAX]) != -3 || int32(m.Regs[EDX]) != -2 {
		t.Errorf("-17/5: q=%d r=%d, want -3, -2", int32(m.Regs[EAX]), int32(m.Regs[EDX]))
	}
}

func TestMachineDivideByZero(t *testing.T) {
	p := mustAssemble(t, "main:\n movl $1, %eax\n cltd\n movl $0, %ebx\n idivl %ebx\n ret")
	m, err := NewMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(100); err == nil || !strings.Contains(err.Error(), "divide by zero") {
		t.Errorf("expected divide-by-zero, got %v", err)
	}
}

func TestMachineFunctionCall(t *testing.T) {
	// double(x) { return 2*x } called with 21, the full IA-32 frame dance.
	m, _ := runProgram(t, `
double:
    pushl %ebp
    movl %esp, %ebp
    movl 8(%ebp), %eax
    addl %eax, %eax
    leave
    ret
main:
    pushl %ebp
    movl %esp, %ebp
    pushl $21
    call double
    addl $4, %esp
    leave
    ret
`, "")
	if m.Regs[EAX] != 42 {
		t.Errorf("double(21) = %d, want 42", m.Regs[EAX])
	}
}

func TestMachineRecursion(t *testing.T) {
	// Recursive factorial(6) = 720, exercising deep call stacks.
	m, _ := runProgram(t, `
fact:
    pushl %ebp
    movl %esp, %ebp
    movl 8(%ebp), %eax
    cmpl $1, %eax
    jle base
    pushl %eax
    decl %eax
    pushl %eax
    call fact
    addl $4, %esp
    popl %ebx
    imull %ebx, %eax
    leave
    ret
base:
    movl $1, %eax
    leave
    ret
main:
    pushl $6
    call fact
    addl $4, %esp
    ret
`, "")
	if m.Regs[EAX] != 720 {
		t.Errorf("fact(6) = %d, want 720", m.Regs[EAX])
	}
}

func TestMachineArraySum(t *testing.T) {
	// Sum a 5-element array with scaled index addressing.
	m, _ := runProgram(t, `
.data
arr: .long 10, 20, 30, 40, 50
.text
main:
    movl $0, %eax     # sum
    movl $0, %ecx     # i
    movl $arr, %esi
loop:
    cmpl $5, %ecx
    jge done
    addl (%esi,%ecx,4), %eax
    incl %ecx
    jmp loop
done:
    ret
`, "")
	if m.Regs[EAX] != 150 {
		t.Errorf("array sum = %d, want 150", m.Regs[EAX])
	}
}

func TestMachineConditionCodes(t *testing.T) {
	// Signed vs unsigned comparisons: -1 < 1 signed, but 0xffffffff > 1
	// unsigned — the classic homework trap.
	m, _ := runProgram(t, `
main:
    movl $-1, %eax
    cmpl $1, %eax
    jl signedLess
    movl $0, %ebx
    jmp next
signedLess:
    movl $1, %ebx
next:
    movl $-1, %eax
    cmpl $1, %eax
    ja unsignedAbove
    movl $0, %ecx
    jmp out
unsignedAbove:
    movl $1, %ecx
out:
    ret
`, "")
	if m.Regs[EBX] != 1 {
		t.Error("jl should treat -1 < 1 (signed)")
	}
	if m.Regs[ECX] != 1 {
		t.Error("ja should treat 0xffffffff > 1 (unsigned)")
	}
}

func TestMachineFlagDetails(t *testing.T) {
	p := mustAssemble(t, `
    movl $5, %eax
    cmpl $5, %eax
    nop
`)
	m, err := NewMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if !m.Flags.ZF || m.Flags.CF || m.Flags.SF || m.Flags.OF {
		t.Errorf("5-5 flags: %+v", m.Flags)
	}
}

func TestMachineSubBorrowSetsCF(t *testing.T) {
	p := mustAssemble(t, `
    movl $3, %eax
    subl $5, %eax
    nop
`)
	m, _ := NewMachine(p)
	m.Step()
	m.Step()
	if !m.Flags.CF {
		t.Error("3-5 should set CF (borrow)")
	}
	if !m.Flags.SF {
		t.Error("3-5 should set SF")
	}
	if int32(m.Regs[EAX]) != -2 {
		t.Errorf("3-5 = %d", int32(m.Regs[EAX]))
	}
}

func TestMachineIncDecPreserveCF(t *testing.T) {
	p := mustAssemble(t, `
    movl $0, %eax
    subl $1, %eax   # sets CF
    incl %eax       # must preserve CF
    nop
`)
	m, _ := NewMachine(p)
	for i := 0; i < 3; i++ {
		if err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if !m.Flags.CF {
		t.Error("incl must preserve CF")
	}
	if !m.Flags.ZF {
		t.Error("incl of -1 should set ZF")
	}
}

func TestMachineShifts(t *testing.T) {
	m, _ := runProgram(t, `
main:
    movl $-8, %eax
    sarl $1, %eax      # -4 arithmetic
    movl $-8, %ebx
    shrl $1, %ebx      # logical: big positive
    movl $3, %ecx
    sall $2, %ecx      # 12
    ret
`, "")
	if int32(m.Regs[EAX]) != -4 {
		t.Errorf("sarl: %d", int32(m.Regs[EAX]))
	}
	if m.Regs[EBX] != 0x7ffffffc {
		t.Errorf("shrl: %#x", m.Regs[EBX])
	}
	if m.Regs[ECX] != 12 {
		t.Errorf("sall: %d", m.Regs[ECX])
	}
}

func TestMachineShiftByCL(t *testing.T) {
	m, _ := runProgram(t, `
main:
    movl $3, %ecx
    movl $1, %eax
    sall %cl, %eax
    ret
`, "")
	if m.Regs[EAX] != 8 {
		t.Errorf("1 << cl(3) = %d, want 8", m.Regs[EAX])
	}
}

func TestMachineByteOps(t *testing.T) {
	m, _ := runProgram(t, `
.data
s: .asciz "AB"
.text
main:
    movzbl s, %eax       # 'A' = 65
    movl $s, %esi
    movsbl 1(%esi), %ebx # 'B' = 66
    movb $90, s          # overwrite with 'Z'
    movzbl s, %ecx
    ret
`, "")
	if m.Regs[EAX] != 65 || m.Regs[EBX] != 66 || m.Regs[ECX] != 90 {
		t.Errorf("byte ops: eax=%d ebx=%d ecx=%d", m.Regs[EAX], m.Regs[EBX], m.Regs[ECX])
	}
}

func TestMachineMovsblSignExtends(t *testing.T) {
	m, _ := runProgram(t, `
.data
b: .byte -1
.text
main:
    movsbl b, %eax
    movzbl b, %ebx
    ret
`, "")
	if int32(m.Regs[EAX]) != -1 {
		t.Errorf("movsbl -1 = %d", int32(m.Regs[EAX]))
	}
	if m.Regs[EBX] != 255 {
		t.Errorf("movzbl -1 = %d", m.Regs[EBX])
	}
}

func TestMachineNotNeg(t *testing.T) {
	m, _ := runProgram(t, `
main:
    movl $5, %eax
    notl %eax
    movl $5, %ebx
    negl %ebx
    ret
`, "")
	if int32(m.Regs[EAX]) != -6 || int32(m.Regs[EBX]) != -5 {
		t.Errorf("not/neg: %d, %d", int32(m.Regs[EAX]), int32(m.Regs[EBX]))
	}
}

func TestMachineSyscallWriteAndExit(t *testing.T) {
	m, out := runProgram(t, `
.data
msg: .asciz "hello\n"
.text
main:
    movl $4, %eax
    movl $1, %ebx
    movl $msg, %ecx
    movl $6, %edx
    int $0x80
    movl $1, %eax
    movl $7, %ebx
    int $0x80
`, "")
	if out != "hello\n" {
		t.Errorf("stdout = %q", out)
	}
	if m.ExitStatus != 7 {
		t.Errorf("exit status = %d", m.ExitStatus)
	}
}

func TestMachineSyscallReadAndPrintInt(t *testing.T) {
	_, out := runProgram(t, `
main:
    movl $6, %eax      # read_int
    int $0x80
    movl %eax, %ebx
    imull $2, %ebx
    movl $5, %eax      # print_int
    int $0x80
    movl $1, %eax
    movl $0, %ebx
    int $0x80
`, "21")
	if out != "42" {
		t.Errorf("stdout = %q", out)
	}
}

func TestMachineSyscallReadBuffer(t *testing.T) {
	m, _ := runProgram(t, `
.data
buf: .space 16
.text
main:
    movl $3, %eax
    movl $0, %ebx
    movl $buf, %ecx
    movl $5, %edx
    int $0x80
    ret
`, "hello world")
	if m.Regs[EAX] != 5 {
		t.Errorf("read returned %d", m.Regs[EAX])
	}
	s, err := m.ReadCString(m.Prog.Symbols["buf"], 16)
	if err != nil {
		t.Fatal(err)
	}
	if s != "hello" {
		t.Errorf("buffer = %q", s)
	}
}

func TestMachineSbrk(t *testing.T) {
	m, _ := runProgram(t, `
main:
    movl $90, %eax
    movl $64, %ebx
    int $0x80
    movl %eax, %esi    # old break
    movl $90, %eax
    movl $0, %ebx
    int $0x80          # current break
    subl %esi, %eax
    ret
`, "")
	if m.Regs[EAX] != 64 {
		t.Errorf("sbrk grew by %d, want 64", m.Regs[EAX])
	}
}

func TestMachineSegfaults(t *testing.T) {
	cases := []struct{ name, src string }{
		{"null read", "main:\n movl 0(%eax), %ebx\n ret"},
		{"null write", "main:\n movl $0, %eax\n movl %ebx, 4(%eax)\n ret"},
		{"out of bounds", "main:\n movl $0x7fffffff, %eax\n movl (%eax), %ebx\n ret"},
		{"text write", "main:\n movl $main, %eax\n movl $0, (%eax)\n ret"},
	}
	for _, c := range cases {
		p := mustAssemble(t, c.src)
		m, err := NewMachine(p)
		if err != nil {
			t.Fatal(err)
		}
		err = m.Run(100)
		var sf *SegFault
		if !errors.As(err, &sf) {
			t.Errorf("%s: got %v, want SegFault", c.name, err)
		}
	}
}

func TestMachineBadJump(t *testing.T) {
	p := mustAssemble(t, `
main:
    pushl $12345      # garbage "return address"... sort of
    ret
`)
	m, err := NewMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(100); err == nil {
		t.Error("ret to garbage should fail")
	}
}

func TestMachineIndirectJump(t *testing.T) {
	m, _ := runProgram(t, `
main:
    movl $target, %eax
    jmp *%eax
    movl $0, %ebx
    ret
target:
    movl $99, %ebx
    ret
`, "")
	if m.Regs[EBX] != 99 {
		t.Errorf("indirect jump: ebx = %d", m.Regs[EBX])
	}
}

func TestMachineStepBudget(t *testing.T) {
	p := mustAssemble(t, "spin: jmp spin")
	m, err := NewMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(100); err == nil {
		t.Error("expected budget exhaustion")
	}
}

func TestMachineStepAfterExit(t *testing.T) {
	p := mustAssemble(t, "main:\n ret")
	m, _ := NewMachine(p)
	if err := m.Run(10); err != nil {
		t.Fatal(err)
	}
	if err := m.Step(); !errors.Is(err, ErrExited) {
		t.Errorf("Step after exit: %v", err)
	}
	if _, ok := m.CurrentInstr(); ok && m.PC >= len(p.Instrs) {
		t.Error("CurrentInstr should respect bounds")
	}
}

func TestMachineTraceEvents(t *testing.T) {
	p := mustAssemble(t, `
.data
x: .long 7
.text
main:
    movl x, %eax
    movl %eax, x
    ret
`)
	m, err := NewMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	var events []MemEvent
	m.Trace = func(e MemEvent) { events = append(events, e) }
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	// Expect at least: read x, write x, plus stack traffic from ret.
	xAddr := p.Symbols["x"]
	var sawRead, sawWrite bool
	for _, e := range events {
		if e.Addr == xAddr && !e.Write && e.Size == 4 {
			sawRead = true
		}
		if e.Addr == xAddr && e.Write {
			sawWrite = true
		}
	}
	if !sawRead || !sawWrite {
		t.Errorf("trace missing x accesses: %+v", events)
	}
}

func TestMachineMemorySizeValidation(t *testing.T) {
	p := mustAssemble(t, "main:\n ret")
	if _, err := NewMachineSize(p, 100); err == nil {
		t.Error("tiny memory should be rejected")
	}
	big := mustAssemble(t, ".data\nx: .space 100\n.text\nmain:\n ret")
	if _, err := NewMachineSize(big, 1<<12); err == nil {
		t.Error("data past memory end should be rejected")
	}
}

func TestMachineUnknownSyscall(t *testing.T) {
	p := mustAssemble(t, "main:\n movl $999, %eax\n int $0x80\n ret")
	m, _ := NewMachine(p)
	if err := m.Run(10); err == nil || !strings.Contains(err.Error(), "unknown syscall") {
		t.Errorf("got %v", err)
	}
}

func TestMachineBadInterrupt(t *testing.T) {
	p := mustAssemble(t, "main:\n int $3\n ret")
	m, _ := NewMachine(p)
	if err := m.Run(10); err == nil {
		t.Error("int $3 should be unsupported")
	}
}

func TestReadCStringUnterminated(t *testing.T) {
	p := mustAssemble(t, ".data\nb: .byte 65, 66\n.text\nmain:\n ret")
	m, _ := NewMachine(p)
	if _, err := m.ReadCString(p.Symbols["b"], 2); err == nil {
		t.Error("unterminated string should error")
	}
}

func BenchmarkMachineArithLoop(b *testing.B) {
	p, err := Assemble(`
main:
    movl $1000, %ecx
    movl $0, %eax
loop:
    addl %ecx, %eax
    decl %ecx
    cmpl $0, %ecx
    jne loop
    ret
`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := NewMachine(p)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Run(100000); err != nil {
			b.Fatal(err)
		}
	}
}
