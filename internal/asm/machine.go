package asm

import (
	"bytes"
	"errors"
	"fmt"
	"io"

	"cs31/internal/circuit"
	"cs31/internal/memcheck"
)

// DefaultMemSize is the machine's flat memory size (1 MiB).
const DefaultMemSize = 1 << 20

// Flags is the EFLAGS subset the course teaches.
type Flags struct {
	ZF bool // zero
	SF bool // sign
	CF bool // carry (unsigned overflow / borrow)
	OF bool // overflow (signed)
}

// SegFault reports an invalid memory access, the error students meet as a
// segmentation violation.
type SegFault struct {
	Addr  uint32
	Write bool
	Why   string
}

func (e *SegFault) Error() string {
	kind := "read"
	if e.Write {
		kind = "write"
	}
	return fmt.Sprintf("asm: segmentation fault: %s at %#x (%s)", kind, e.Addr, e.Why)
}

// ErrExited is returned by Step after the program has exited.
var ErrExited = errors.New("asm: program exited")

// MemEvent describes one data-memory access, the raw material for the cache
// and virtual-memory simulators downstream in the vertical slice.
type MemEvent struct {
	Addr  uint32
	Size  uint8 // bytes: 1 or 4
	Write bool
	PC    uint32 // address of the instruction performing the access
}

// Machine executes an assembled Program: eight 32-bit registers, EFLAGS,
// a flat byte-addressed memory holding the data segment, heap, and stack,
// and a tiny syscall interface reached through "int $0x80".
//
// Syscalls (number in eax):
//
//	1  exit(ebx)                  — stop; ebx is the exit status
//	3  read(ebx, ecx buf, edx n)  — read up to n bytes from Stdin into buf
//	4  write(ebx, ecx buf, edx n) — write n bytes from buf to Stdout
//	5  print_int(ebx)             — write decimal ebx to Stdout (teaching aid)
//	6  read_int()                 — parse a decimal integer from Stdin into eax
//	7  print_str(ebx)             — write the NUL-terminated string at ebx
//	90 sbrk(ebx)                  — grow the heap; returns the old break in eax
//	91 malloc(ebx)                — checked allocation; 0 on exhaustion
//	92 free(ebx)                  — release a checked allocation
//
// Syscalls 91/92 route through a memcheck.Heap, so programs that leak,
// double-free, or touch freed memory are reported by MemcheckReport —
// Valgrind for compiled programs.
type Machine struct {
	Regs  [NumRegisters]uint32
	Flags Flags
	PC    int // instruction index into prog.Instrs

	Mem  []byte
	Prog *Program

	Stdin  io.Reader
	Stdout io.Writer

	Exited     bool
	ExitStatus int32
	Steps      int64

	// Trace, when non-nil, receives every data memory access.
	Trace func(MemEvent)

	brk uint32 // heap break (sbrk allocator)

	// Heap is the checked allocator behind the malloc/free syscalls,
	// created on first use. heapBase/heapLimit bound the checked segment.
	Heap      *memcheck.Heap
	heapBase  uint32
	heapLimit uint32

	// fns is the program's decoded-dispatch table (one closure per
	// instruction), resolved once at load.
	fns []execFn
}

// NewMachine loads a program into a fresh machine with the default memory
// size. The stack pointer starts at the top of memory; the heap begins just
// past the data segment.
func NewMachine(p *Program) (*Machine, error) {
	return NewMachineSize(p, DefaultMemSize)
}

// NewMachineSize loads a program with an explicit memory size.
func NewMachineSize(p *Program, memSize int) (*Machine, error) {
	if memSize < 1<<12 {
		return nil, fmt.Errorf("asm: memory size %d too small", memSize)
	}
	if int(p.DataBase)+len(p.Data) > memSize {
		return nil, fmt.Errorf("asm: data segment (%d bytes at %#x) exceeds memory",
			len(p.Data), p.DataBase)
	}
	m := &Machine{
		Mem:    make([]byte, memSize),
		Prog:   p,
		Stdin:  bytes.NewReader(nil),
		Stdout: io.Discard,
		fns:    p.execFns(),
	}
	copy(m.Mem[p.DataBase:], p.Data)
	m.brk = p.DataBase + uint32(len(p.Data))
	if m.brk < p.DataBase+1 {
		m.brk = p.DataBase
	}
	m.Regs[ESP] = uint32(memSize)
	idx, err := p.InstrAt(p.Entry)
	if err != nil {
		if len(p.Instrs) == 0 {
			return nil, fmt.Errorf("asm: empty program")
		}
		idx = 0
	}
	m.PC = idx
	// Push a sentinel return address so that "ret" from the entry function
	// exits cleanly instead of faulting.
	if err := m.push(sentinelReturn); err != nil {
		return nil, err
	}
	return m, nil
}

// sentinelReturn is the fake return address at the bottom of the call
// stack; returning to it exits the program with eax as the status.
const sentinelReturn = 0xfffffffc

func (m *Machine) checkAddr(addr uint32, size int, write bool) error {
	if addr < 0x1000 {
		return &SegFault{Addr: addr, Write: write, Why: "NULL page"}
	}
	if uint64(addr)+uint64(size) > uint64(len(m.Mem)) {
		return &SegFault{Addr: addr, Write: write, Why: "outside memory"}
	}
	if write && addr >= m.Prog.TextBase && addr < m.Prog.TextEnd() {
		return &SegFault{Addr: addr, Write: true, Why: "text segment is read-only"}
	}
	return nil
}

// checkHeap routes heap-segment accesses through the memcheck heap.
func (m *Machine) checkHeap(addr uint32, size int, write bool) {
	if m.Heap == nil || addr < m.heapBase || addr >= m.heapLimit {
		return
	}
	if write {
		m.Heap.Write(addr, uint32(size))
	} else {
		m.Heap.Read(addr, uint32(size))
	}
}

func (m *Machine) trace(addr uint32, size int, write bool) {
	if m.Trace != nil {
		var pc uint32
		if m.PC >= 0 && m.PC < len(m.Prog.Instrs) {
			pc = m.Prog.Instrs[m.PC].Addr
		}
		m.Trace(MemEvent{Addr: addr, Size: uint8(size), Write: write, PC: pc})
	}
}

// Load32 reads a 32-bit little-endian word from memory.
func (m *Machine) Load32(addr uint32) (uint32, error) {
	if err := m.checkAddr(addr, 4, false); err != nil {
		return 0, err
	}
	m.trace(addr, 4, false)
	m.checkHeap(addr, 4, false)
	return uint32(m.Mem[addr]) | uint32(m.Mem[addr+1])<<8 |
		uint32(m.Mem[addr+2])<<16 | uint32(m.Mem[addr+3])<<24, nil
}

// Store32 writes a 32-bit little-endian word to memory.
func (m *Machine) Store32(addr uint32, v uint32) error {
	if err := m.checkAddr(addr, 4, true); err != nil {
		return err
	}
	m.trace(addr, 4, true)
	m.checkHeap(addr, 4, true)
	m.Mem[addr] = byte(v)
	m.Mem[addr+1] = byte(v >> 8)
	m.Mem[addr+2] = byte(v >> 16)
	m.Mem[addr+3] = byte(v >> 24)
	return nil
}

// Load8 reads one byte from memory.
func (m *Machine) Load8(addr uint32) (byte, error) {
	if err := m.checkAddr(addr, 1, false); err != nil {
		return 0, err
	}
	m.trace(addr, 1, false)
	m.checkHeap(addr, 1, false)
	return m.Mem[addr], nil
}

// Store8 writes one byte to memory.
func (m *Machine) Store8(addr uint32, v byte) error {
	if err := m.checkAddr(addr, 1, true); err != nil {
		return err
	}
	m.trace(addr, 1, true)
	m.checkHeap(addr, 1, true)
	m.Mem[addr] = v
	return nil
}

func (m *Machine) push(v uint32) error {
	m.Regs[ESP] -= 4
	return m.Store32(m.Regs[ESP], v)
}

func (m *Machine) pop() (uint32, error) {
	v, err := m.Load32(m.Regs[ESP])
	if err != nil {
		return 0, err
	}
	m.Regs[ESP] += 4
	return v, nil
}

// EffectiveAddr computes the address of a memory operand.
func (m *Machine) EffectiveAddr(op Operand) (uint32, error) {
	if op.Kind != OpMem {
		return 0, fmt.Errorf("asm: operand %v is not a memory reference", op)
	}
	addr := uint32(op.Disp)
	if op.Base != NoReg {
		addr += m.Regs[op.Base]
	}
	if op.Index != NoReg {
		addr += m.Regs[op.Index] * uint32(op.Scale)
	}
	return addr, nil
}

// readOp fetches a 32-bit operand value.
func (m *Machine) readOp(op Operand) (uint32, error) {
	switch op.Kind {
	case OpImm, OpLabel:
		return uint32(op.Imm), nil
	case OpReg:
		return m.Regs[op.Reg], nil
	case OpMem:
		addr, err := m.EffectiveAddr(op)
		if err != nil {
			return 0, err
		}
		return m.Load32(addr)
	default:
		return 0, fmt.Errorf("asm: unreadable operand")
	}
}

// writeOp stores a 32-bit value to a register or memory operand.
func (m *Machine) writeOp(op Operand, v uint32) error {
	switch op.Kind {
	case OpReg:
		m.Regs[op.Reg] = v
		return nil
	case OpMem:
		addr, err := m.EffectiveAddr(op)
		if err != nil {
			return err
		}
		return m.Store32(addr, v)
	default:
		return fmt.Errorf("asm: operand %v is not writable", op)
	}
}

// setFlagsFromALU converts the reference-ALU flags to EFLAGS semantics.
// For subtraction x86 sets CF on borrow, the inverse of the adder carry.
func (m *Machine) setFlagsFromALU(f circuit.Flags, isSub bool) {
	m.Flags.ZF = f.Zero
	m.Flags.SF = f.Sign
	m.Flags.OF = f.Overflow
	if isSub {
		m.Flags.CF = !f.Carry
	} else {
		m.Flags.CF = f.Carry
	}
}

func (m *Machine) setLogicFlags(res uint32) {
	m.Flags.ZF = res == 0
	m.Flags.SF = res&0x80000000 != 0
	m.Flags.CF = false
	m.Flags.OF = false
}

// conditionHolds evaluates a conditional-jump predicate against EFLAGS —
// the table students memorize for tracing jumps after cmpl.
func (m *Machine) conditionHolds(mn Mnemonic) bool {
	f := m.Flags
	switch mn {
	case JE:
		return f.ZF
	case JNE:
		return !f.ZF
	case JL:
		return f.SF != f.OF
	case JLE:
		return f.ZF || f.SF != f.OF
	case JG:
		return !f.ZF && f.SF == f.OF
	case JGE:
		return f.SF == f.OF
	case JB:
		return f.CF
	case JBE:
		return f.CF || f.ZF
	case JA:
		return !f.CF && !f.ZF
	case JAE:
		return !f.CF
	case JS:
		return f.SF
	case JNS:
		return !f.SF
	default:
		return false
	}
}

func (m *Machine) jumpTo(addr uint32, nextPC *int) error {
	if addr == sentinelReturn {
		m.Exited = true
		m.ExitStatus = int32(m.Regs[EAX])
		return nil
	}
	idx, err := m.Prog.InstrAt(addr)
	if err != nil {
		return fmt.Errorf("asm: jump to %#x: %w", addr, err)
	}
	*nextPC = idx
	return nil
}

// Step executes one instruction through the decoded-dispatch table. It
// returns ErrExited once the program has exited, and any runtime fault
// (segfault, divide by zero, bad jump) stops the machine permanently.
func (m *Machine) Step() error {
	if m.Exited {
		return ErrExited
	}
	if m.PC < 0 || m.PC >= len(m.Prog.Instrs) {
		m.Exited = true
		return fmt.Errorf("asm: PC %d outside text segment", m.PC)
	}
	if m.fns == nil {
		m.fns = m.Prog.execFns()
	}
	m.Steps++

	nextPC, err := m.fns[m.PC](m, m.PC+1)
	if err != nil {
		in := m.Prog.Instrs[m.PC]
		m.Exited = true
		return fmt.Errorf("asm: %#x (%s, line %d): %w", in.Addr, in.String(), in.Line, err)
	}
	if !m.Exited {
		m.PC = nextPC
	}
	return nil
}

// stepReference executes one instruction through the original switch-ladder
// interpreter. It is retained as the semantic reference the decoded
// dispatch path is differential-tested against (exec_test.go).
func (m *Machine) stepReference() error {
	if m.Exited {
		return ErrExited
	}
	if m.PC < 0 || m.PC >= len(m.Prog.Instrs) {
		m.Exited = true
		return fmt.Errorf("asm: PC %d outside text segment", m.PC)
	}
	in := m.Prog.Instrs[m.PC]
	m.Steps++
	nextPC := m.PC + 1

	if err := m.executeInstr(in, &nextPC); err != nil {
		m.Exited = true
		return fmt.Errorf("asm: %#x (%s, line %d): %w", in.Addr, in.String(), in.Line, err)
	}
	if !m.Exited {
		m.PC = nextPC
	}
	return nil
}

func (m *Machine) executeInstr(in Instruction, nextPC *int) error {
	switch in.Mn {
	case NOP:
		return nil

	case MOVL:
		v, err := m.readOp(in.Ops[0])
		if err != nil {
			return err
		}
		return m.writeOp(in.Ops[1], v)

	case MOVB:
		var b byte
		switch in.Ops[0].Kind {
		case OpImm:
			b = byte(in.Ops[0].Imm)
		case OpReg:
			b = byte(m.Regs[in.Ops[0].Reg])
		case OpMem:
			addr, err := m.EffectiveAddr(in.Ops[0])
			if err != nil {
				return err
			}
			var err2 error
			b, err2 = m.Load8(addr)
			if err2 != nil {
				return err2
			}
		}
		switch in.Ops[1].Kind {
		case OpReg:
			m.Regs[in.Ops[1].Reg] = m.Regs[in.Ops[1].Reg]&^0xff | uint32(b)
			return nil
		case OpMem:
			addr, err := m.EffectiveAddr(in.Ops[1])
			if err != nil {
				return err
			}
			return m.Store8(addr, b)
		default:
			return fmt.Errorf("bad movb destination")
		}

	case MOVZBL, MOVSBL:
		var b byte
		switch in.Ops[0].Kind {
		case OpReg:
			b = byte(m.Regs[in.Ops[0].Reg])
		case OpMem:
			addr, err := m.EffectiveAddr(in.Ops[0])
			if err != nil {
				return err
			}
			var err2 error
			b, err2 = m.Load8(addr)
			if err2 != nil {
				return err2
			}
		default:
			return fmt.Errorf("bad %s source", in.Mn)
		}
		v := uint32(b)
		if in.Mn == MOVSBL && b&0x80 != 0 {
			v |= 0xffffff00
		}
		return m.writeOp(in.Ops[1], v)

	case LEAL:
		addr, err := m.EffectiveAddr(in.Ops[0])
		if err != nil {
			return err
		}
		return m.writeOp(in.Ops[1], addr)

	case ADDL, SUBL, CMPL:
		src, err := m.readOp(in.Ops[0])
		if err != nil {
			return err
		}
		dst, err := m.readOp(in.Ops[1])
		if err != nil {
			return err
		}
		aluOp := circuit.OpAdd
		isSub := in.Mn != ADDL
		if isSub {
			aluOp = circuit.OpSub
		}
		res, f := circuit.RefALU(aluOp, uint64(dst), uint64(src), 32)
		m.setFlagsFromALU(f, isSub)
		if in.Mn == CMPL {
			return nil
		}
		return m.writeOp(in.Ops[1], uint32(res))

	case IMULL:
		src, err := m.readOp(in.Ops[0])
		if err != nil {
			return err
		}
		dst, err := m.readOp(in.Ops[1])
		if err != nil {
			return err
		}
		wide := int64(int32(dst)) * int64(int32(src))
		res := uint32(wide)
		overflow := wide != int64(int32(res))
		m.Flags.CF = overflow
		m.Flags.OF = overflow
		m.Flags.ZF = res == 0
		m.Flags.SF = res&0x80000000 != 0
		return m.writeOp(in.Ops[1], res)

	case IDIVL:
		div, err := m.readOp(in.Ops[0])
		if err != nil {
			return err
		}
		if div == 0 {
			return errors.New("divide by zero")
		}
		num := int64(m.Regs[EDX])<<32 | int64(m.Regs[EAX])
		q := num / int64(int32(div))
		r := num % int64(int32(div))
		if q > 1<<31-1 || q < -(1<<31) {
			return errors.New("idivl quotient overflow")
		}
		m.Regs[EAX] = uint32(q)
		m.Regs[EDX] = uint32(r)
		return nil

	case CLTD:
		if int32(m.Regs[EAX]) < 0 {
			m.Regs[EDX] = 0xffffffff
		} else {
			m.Regs[EDX] = 0
		}
		return nil

	case ANDL, ORL, XORL, TESTL:
		src, err := m.readOp(in.Ops[0])
		if err != nil {
			return err
		}
		dst, err := m.readOp(in.Ops[1])
		if err != nil {
			return err
		}
		var res uint32
		switch in.Mn {
		case ANDL, TESTL:
			res = dst & src
		case ORL:
			res = dst | src
		case XORL:
			res = dst ^ src
		}
		m.setLogicFlags(res)
		if in.Mn == TESTL {
			return nil
		}
		return m.writeOp(in.Ops[1], res)

	case NOTL:
		v, err := m.readOp(in.Ops[0])
		if err != nil {
			return err
		}
		return m.writeOp(in.Ops[0], ^v) // notl does not touch flags

	case NEGL:
		v, err := m.readOp(in.Ops[0])
		if err != nil {
			return err
		}
		res, f := circuit.RefALU(circuit.OpSub, 0, uint64(v), 32)
		m.setFlagsFromALU(f, true)
		m.Flags.CF = v != 0 // x86: CF set unless operand was zero
		return m.writeOp(in.Ops[0], uint32(res))

	case INCL, DECL:
		v, err := m.readOp(in.Ops[0])
		if err != nil {
			return err
		}
		op := circuit.OpAdd
		if in.Mn == DECL {
			op = circuit.OpSub
		}
		res, f := circuit.RefALU(op, uint64(v), 1, 32)
		savedCF := m.Flags.CF // inc/dec preserve CF
		m.setFlagsFromALU(f, in.Mn == DECL)
		m.Flags.CF = savedCF
		return m.writeOp(in.Ops[0], uint32(res))

	case SALL, SARL, SHRL:
		cnt, err := m.readOp(in.Ops[0])
		if err != nil {
			return err
		}
		cnt &= 31
		dst, err := m.readOp(in.Ops[1])
		if err != nil {
			return err
		}
		var res uint32
		if cnt > 0 {
			switch in.Mn {
			case SALL:
				m.Flags.CF = dst&(1<<(32-cnt)) != 0
				res = dst << cnt
			case SARL:
				m.Flags.CF = dst&(1<<(cnt-1)) != 0
				res = uint32(int32(dst) >> cnt)
			case SHRL:
				m.Flags.CF = dst&(1<<(cnt-1)) != 0
				res = dst >> cnt
			}
			m.Flags.ZF = res == 0
			m.Flags.SF = res&0x80000000 != 0
			m.Flags.OF = false
		} else {
			res = dst
		}
		return m.writeOp(in.Ops[1], res)

	case PUSHL:
		v, err := m.readOp(in.Ops[0])
		if err != nil {
			return err
		}
		return m.push(v)

	case POPL:
		v, err := m.pop()
		if err != nil {
			return err
		}
		return m.writeOp(in.Ops[0], v)

	case CALL:
		target, err := m.readOp(in.Ops[0])
		if err != nil {
			return err
		}
		retAddr := m.Prog.TextBase + uint32(*nextPC)*InstrBytes
		if err := m.push(retAddr); err != nil {
			return err
		}
		return m.jumpTo(target, nextPC)

	case RET:
		addr, err := m.pop()
		if err != nil {
			return err
		}
		return m.jumpTo(addr, nextPC)

	case LEAVE:
		m.Regs[ESP] = m.Regs[EBP]
		v, err := m.pop()
		if err != nil {
			return err
		}
		m.Regs[EBP] = v
		return nil

	case JMP:
		target, err := m.readOp(in.Ops[0])
		if err != nil {
			return err
		}
		return m.jumpTo(target, nextPC)

	case JE, JNE, JL, JLE, JG, JGE, JB, JBE, JA, JAE, JS, JNS:
		if m.conditionHolds(in.Mn) {
			target, err := m.readOp(in.Ops[0])
			if err != nil {
				return err
			}
			return m.jumpTo(target, nextPC)
		}
		return nil

	case INT:
		if in.Ops[0].Kind != OpImm || in.Ops[0].Imm != 0x80 {
			return fmt.Errorf("unsupported interrupt %v", in.Ops[0])
		}
		return m.syscall()

	default:
		return fmt.Errorf("unimplemented mnemonic %s", in.Mn)
	}
}

// syscall dispatches the int $0x80 interface.
func (m *Machine) syscall() error {
	switch m.Regs[EAX] {
	case 1: // exit
		m.Exited = true
		m.ExitStatus = int32(m.Regs[EBX])
		return nil
	case 3: // read
		buf := m.Regs[ECX]
		n := m.Regs[EDX]
		if err := m.checkAddr(buf, int(n), true); err != nil {
			return err
		}
		read, err := m.Stdin.Read(m.Mem[buf : buf+n])
		if err != nil && err != io.EOF {
			return fmt.Errorf("read syscall: %w", err)
		}
		m.Regs[EAX] = uint32(read)
		return nil
	case 4: // write
		buf := m.Regs[ECX]
		n := m.Regs[EDX]
		if err := m.checkAddr(buf, int(n), false); err != nil {
			return err
		}
		written, err := m.Stdout.Write(m.Mem[buf : buf+n])
		if err != nil {
			return fmt.Errorf("write syscall: %w", err)
		}
		m.Regs[EAX] = uint32(written)
		return nil
	case 5: // print_int
		s := fmt.Sprintf("%d", int32(m.Regs[EBX]))
		if _, err := io.WriteString(m.Stdout, s); err != nil {
			return fmt.Errorf("print_int syscall: %w", err)
		}
		m.Regs[EAX] = uint32(len(s))
		return nil
	case 6: // read_int
		var v int32
		if _, err := fmt.Fscan(m.Stdin, &v); err != nil {
			return fmt.Errorf("read_int syscall: %w", err)
		}
		m.Regs[EAX] = uint32(v)
		return nil
	case 7: // print_str: write the NUL-terminated string at ebx
		s, err := m.ReadCString(m.Regs[EBX], 1<<16)
		if err != nil {
			return fmt.Errorf("print_str syscall: %w", err)
		}
		if _, err := io.WriteString(m.Stdout, s); err != nil {
			return fmt.Errorf("print_str syscall: %w", err)
		}
		m.Regs[EAX] = uint32(len(s))
		return nil
	case 91: // checked malloc
		m.ensureHeap()
		label := fmt.Sprintf("pc %#x", m.Prog.Instrs[m.PC].Addr)
		addr, err := m.Heap.Malloc(m.Regs[EBX], label)
		if err != nil {
			m.Regs[EAX] = 0 // C malloc failure convention
			return nil
		}
		m.Regs[EAX] = addr
		return nil
	case 92: // checked free
		m.ensureHeap()
		m.Heap.Free(m.Regs[EBX])
		return nil
	case 90: // sbrk
		old := m.brk
		incr := int32(m.Regs[EBX])
		nb := int64(m.brk) + int64(incr)
		if nb < int64(m.Prog.DataBase) || nb >= int64(m.Regs[ESP])-4096 {
			return fmt.Errorf("sbrk: heap break %#x out of range", nb)
		}
		m.brk = uint32(nb)
		m.Regs[EAX] = old
		return nil
	default:
		return fmt.Errorf("unknown syscall %d", m.Regs[EAX])
	}
}

// Run executes until exit or the step budget is exhausted.
func (m *Machine) Run(maxSteps int64) error {
	for i := int64(0); i < maxSteps; i++ {
		if err := m.Step(); err != nil {
			if errors.Is(err, ErrExited) {
				return nil
			}
			return err
		}
		if m.Exited {
			return nil
		}
	}
	return fmt.Errorf("asm: exceeded step budget of %d", maxSteps)
}

// CurrentInstr returns the instruction the PC points at, if any.
func (m *Machine) CurrentInstr() (Instruction, bool) {
	if m.PC < 0 || m.PC >= len(m.Prog.Instrs) {
		return Instruction{}, false
	}
	return m.Prog.Instrs[m.PC], true
}

// ReadCString reads a NUL-terminated string from memory (bounded), for
// debugger and test convenience.
func (m *Machine) ReadCString(addr uint32, max int) (string, error) {
	var out []byte
	for i := 0; i < max; i++ {
		b, err := m.Load8(addr + uint32(i))
		if err != nil {
			return "", err
		}
		if b == 0 {
			return string(out), nil
		}
		out = append(out, b)
	}
	return "", fmt.Errorf("asm: unterminated string at %#x", addr)
}

// ensureHeap lazily creates the checked heap over [current break,
// stack guard), leaving 64 KiB of headroom below the stack.
func (m *Machine) ensureHeap() {
	if m.Heap != nil {
		return
	}
	guard := uint32(len(m.Mem))
	if guard > 64*1024 {
		guard -= 64 * 1024
	} else {
		guard = guard / 2
	}
	m.heapBase = m.brk
	m.heapLimit = guard
	m.Heap = memcheck.NewHeapRange(m.heapBase, m.heapLimit)
}

// MemcheckReport renders the checked heap's valgrind-style report, or a
// note that the program never used the checked allocator.
func (m *Machine) MemcheckReport() string {
	if m.Heap == nil {
		return "memcheck: program performed no checked allocations\n"
	}
	return m.Heap.Report()
}
