package asm

// The C31X object format: a simplified executable file format in the
// spirit of the course's "C is compiled to binary instructions" story.
// A Program serializes to a flat little-endian image with a magic header,
// a text section (one fixed-layout record per instruction), a data
// section, and a symbol table — and loads back bit-identically, so
// students really can "disassemble their own binaries".

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// objMagic identifies a C31X object file.
var objMagic = [4]byte{'C', '3', '1', 'X'}

// objVersion is the current format version.
const objVersion uint32 = 1

type objHeader struct {
	Magic    [4]byte
	Version  uint32
	TextBase uint32
	DataBase uint32
	Entry    uint32
	NumInstr uint32
	DataLen  uint32
	NumSyms  uint32
}

// objInstr is the fixed-size text record: every operand slot is present
// whether used or not, keeping the format trivially seekable.
type objInstr struct {
	Mn     uint16
	NumOps uint8
	_      uint8
	Line   uint32
	Ops    [2]objOperand
}

type objOperand struct {
	Kind  uint8
	Reg   int8
	Base  int8
	Index int8
	Scale int32
	Imm   int32
	Disp  int32
}

// WriteObject serializes the program in C31X format.
func (p *Program) WriteObject(w io.Writer) error {
	if len(p.Instrs) > 1<<24 {
		return fmt.Errorf("asm: program too large to serialize")
	}
	for i, in := range p.Instrs {
		if len(in.Ops) > 2 {
			return fmt.Errorf("asm: instruction %d has %d operands (max 2)", i, len(in.Ops))
		}
	}
	h := objHeader{
		Magic:    objMagic,
		Version:  objVersion,
		TextBase: p.TextBase,
		DataBase: p.DataBase,
		Entry:    p.Entry,
		NumInstr: uint32(len(p.Instrs)),
		DataLen:  uint32(len(p.Data)),
		NumSyms:  uint32(len(p.Symbols)),
	}
	if err := binary.Write(w, binary.LittleEndian, h); err != nil {
		return err
	}
	for _, in := range p.Instrs {
		rec := objInstr{Mn: uint16(in.Mn), NumOps: uint8(len(in.Ops)), Line: uint32(in.Line)}
		for i, op := range in.Ops {
			rec.Ops[i] = objOperand{
				Kind: uint8(op.Kind), Reg: int8(op.Reg),
				Base: int8(op.Base), Index: int8(op.Index),
				Scale: op.Scale, Imm: op.Imm, Disp: op.Disp,
			}
		}
		if err := binary.Write(w, binary.LittleEndian, rec); err != nil {
			return err
		}
	}
	if _, err := w.Write(p.Data); err != nil {
		return err
	}
	// Symbol table: length-prefixed names, sorted for determinism.
	names := make([]string, 0, len(p.Symbols))
	for name := range p.Symbols {
		names = append(names, name)
	}
	sortStrings(names)
	for _, name := range names {
		if len(name) > 255 {
			return fmt.Errorf("asm: symbol %q too long", name)
		}
		if err := binary.Write(w, binary.LittleEndian, uint8(len(name))); err != nil {
			return err
		}
		if _, err := io.WriteString(w, name); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, p.Symbols[name]); err != nil {
			return err
		}
	}
	return nil
}

// sortStrings is an insertion sort, avoiding a sort import for one call.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// ReadObject loads a C31X object file into a Program, validating the
// header, every instruction record, and internal consistency (operand
// kinds, register numbers, label targets).
func ReadObject(r io.Reader) (*Program, error) {
	var h objHeader
	if err := binary.Read(r, binary.LittleEndian, &h); err != nil {
		return nil, fmt.Errorf("asm: bad object header: %w", err)
	}
	if h.Magic != objMagic {
		return nil, fmt.Errorf("asm: not a C31X object (magic %q)", h.Magic[:])
	}
	if h.Version != objVersion {
		return nil, fmt.Errorf("asm: unsupported object version %d", h.Version)
	}
	if h.NumInstr > 1<<24 || h.DataLen > 1<<28 || h.NumSyms > 1<<20 {
		return nil, fmt.Errorf("asm: object header sizes implausible")
	}
	p := &Program{
		TextBase: h.TextBase,
		DataBase: h.DataBase,
		Entry:    h.Entry,
		Symbols:  make(map[string]uint32, h.NumSyms),
	}
	for i := uint32(0); i < h.NumInstr; i++ {
		var rec objInstr
		if err := binary.Read(r, binary.LittleEndian, &rec); err != nil {
			return nil, fmt.Errorf("asm: truncated text section: %w", err)
		}
		if Mnemonic(rec.Mn) >= numMnemonics {
			return nil, fmt.Errorf("asm: instruction %d: bad mnemonic %d", i, rec.Mn)
		}
		if rec.NumOps > 2 {
			return nil, fmt.Errorf("asm: instruction %d: %d operands", i, rec.NumOps)
		}
		in := Instruction{
			Mn:   Mnemonic(rec.Mn),
			Line: int(rec.Line),
			Addr: h.TextBase + i*InstrBytes,
		}
		for j := uint8(0); j < rec.NumOps; j++ {
			o := rec.Ops[j]
			if OperandKind(o.Kind) > OpLabel {
				return nil, fmt.Errorf("asm: instruction %d: bad operand kind %d", i, o.Kind)
			}
			checkReg := func(r int8) error {
				if r != int8(NoReg) && (r < 0 || Register(r) >= NumRegisters) {
					return fmt.Errorf("asm: instruction %d: bad register %d", i, r)
				}
				return nil
			}
			for _, reg := range []int8{o.Reg, o.Base, o.Index} {
				if err := checkReg(reg); err != nil {
					return nil, err
				}
			}
			in.Ops = append(in.Ops, Operand{
				Kind: OperandKind(o.Kind), Reg: Register(o.Reg),
				Base: Register(o.Base), Index: Register(o.Index),
				Scale: o.Scale, Imm: o.Imm, Disp: o.Disp,
			})
		}
		if want := operandCounts[in.Mn]; len(in.Ops) != want {
			return nil, fmt.Errorf("asm: instruction %d: %s needs %d operands, has %d",
				i, in.Mn, want, len(in.Ops))
		}
		p.Instrs = append(p.Instrs, in)
	}
	p.Data = make([]byte, h.DataLen)
	if _, err := io.ReadFull(r, p.Data); err != nil {
		return nil, fmt.Errorf("asm: truncated data section: %w", err)
	}
	for i := uint32(0); i < h.NumSyms; i++ {
		var n uint8
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
			return nil, fmt.Errorf("asm: truncated symbol table: %w", err)
		}
		nameBuf := make([]byte, n)
		if _, err := io.ReadFull(r, nameBuf); err != nil {
			return nil, fmt.Errorf("asm: truncated symbol name: %w", err)
		}
		var addr uint32
		if err := binary.Read(r, binary.LittleEndian, &addr); err != nil {
			return nil, fmt.Errorf("asm: truncated symbol address: %w", err)
		}
		p.Symbols[string(nameBuf)] = addr
	}
	return p, nil
}

// ObjectBytes serializes to a byte slice.
func (p *Program) ObjectBytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := p.WriteObject(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
