package asm

// Decoded instruction dispatch. The original interpreter re-discovered each
// instruction's shape on every step: a ~40-way mnemonic switch, then an
// operand-kind switch per operand, then an effective-address recomputation.
// Here each instruction is decoded exactly once per Program into a closure
// with its operand kinds, register indices, immediates, and static jump
// targets already resolved, so Machine.Step becomes a single indirect call.
// The next-PC value flows by value (not through a pointer) so the hot loop
// performs zero heap allocations.
//
// Semantics are pinned to the original switch ladder (executeInstr, kept as
// the reference path) by differential tests in exec_test.go.

import (
	"errors"
	"fmt"
)

// execFn executes one decoded instruction. next is the fall-through
// instruction index (PC+1); the return value is the index to run next —
// jumps return their target instead.
type execFn func(m *Machine, next int) (int, error)

// errUnreadableOperand mirrors the reference readOp error.
var errUnreadableOperand = errors.New("asm: unreadable operand")

// unwritableOperandError mirrors the reference writeOp error.
func unwritableOperandError(op Operand) error {
	return fmt.Errorf("asm: operand %v is not writable", op)
}

// execFns returns the decoded form of the program, decoding on first use.
// Machines sharing one Program share one decode.
func (p *Program) execFns() []execFn {
	p.execOnce.Do(func() {
		p.exec = make([]execFn, len(p.Instrs))
		for i := range p.Instrs {
			p.exec[i] = decodeInstr(p, p.Instrs[i])
		}
	})
	return p.exec
}

// addFlags sets EFLAGS for res = a + b, mirroring the reference ALU path
// (setFlagsFromALU with isSub=false).
func (m *Machine) addFlags(a, b, res uint32) {
	m.Flags.ZF = res == 0
	m.Flags.SF = res&0x80000000 != 0
	m.Flags.CF = res < a
	m.Flags.OF = (a^b)&0x80000000 == 0 && (res^a)&0x80000000 != 0
}

// subFlags sets EFLAGS for res = a - b, mirroring the reference ALU path
// (setFlagsFromALU with isSub=true: CF is the borrow).
func (m *Machine) subFlags(a, b, res uint32) {
	m.Flags.ZF = res == 0
	m.Flags.SF = res&0x80000000 != 0
	m.Flags.CF = a < b
	m.Flags.OF = (a^b)&0x80000000 != 0 && (res^b)&0x80000000 == 0
}

// jumpIdx resolves a runtime jump target to an instruction index, handling
// the sentinel return address (clean exit) exactly like jumpTo.
func (m *Machine) jumpIdx(addr uint32, next int) (int, error) {
	if addr == sentinelReturn {
		m.Exited = true
		m.ExitStatus = int32(m.Regs[EAX])
		return next, nil
	}
	idx, err := m.Prog.InstrAt(addr)
	if err != nil {
		return next, fmt.Errorf("asm: jump to %#x: %w", addr, err)
	}
	return idx, nil
}

// opReader reads a 32-bit operand value.
type opReader func(m *Machine) (uint32, error)

// opWriter stores a 32-bit operand value.
type opWriter func(m *Machine, v uint32) error

// eaFor specializes effective-address computation for a memory operand.
func eaFor(op Operand) func(m *Machine) uint32 {
	disp := uint32(op.Disp)
	base, index, scale := op.Base, op.Index, uint32(op.Scale)
	switch {
	case base == NoReg && index == NoReg:
		return func(*Machine) uint32 { return disp }
	case index == NoReg:
		return func(m *Machine) uint32 { return disp + m.Regs[base] }
	case base == NoReg:
		return func(m *Machine) uint32 { return disp + m.Regs[index]*scale }
	default:
		return func(m *Machine) uint32 { return disp + m.Regs[base] + m.Regs[index]*scale }
	}
}

// readerFor specializes operand reads by kind.
func readerFor(op Operand) opReader {
	switch op.Kind {
	case OpImm, OpLabel:
		v := uint32(op.Imm)
		return func(*Machine) (uint32, error) { return v, nil }
	case OpReg:
		r := op.Reg
		return func(m *Machine) (uint32, error) { return m.Regs[r], nil }
	case OpMem:
		ea := eaFor(op)
		return func(m *Machine) (uint32, error) { return m.Load32(ea(m)) }
	default:
		return func(m *Machine) (uint32, error) { return 0, errUnreadableOperand }
	}
}

// writerFor specializes operand writes by kind.
func writerFor(op Operand) opWriter {
	switch op.Kind {
	case OpReg:
		r := op.Reg
		return func(m *Machine, v uint32) error { m.Regs[r] = v; return nil }
	case OpMem:
		ea := eaFor(op)
		return func(m *Machine, v uint32) error { return m.Store32(ea(m), v) }
	default:
		op := op
		return func(m *Machine, v uint32) error { return unwritableOperandError(op) }
	}
}

// staticTarget resolves a label/immediate jump target to an instruction
// index at decode time. Unresolvable targets (bad address, register or
// memory operands) fall back to the runtime jumpIdx path so error behaviour
// is unchanged.
func staticTarget(p *Program, op Operand) (int, bool) {
	if op.Kind != OpLabel && op.Kind != OpImm {
		return 0, false
	}
	addr := uint32(op.Imm)
	if addr == sentinelReturn {
		return 0, false
	}
	idx, err := p.InstrAt(addr)
	if err != nil {
		return 0, false
	}
	return idx, true
}

// condPredicate returns the EFLAGS predicate for a conditional jump, or nil
// if the mnemonic is not one.
func condPredicate(mn Mnemonic) func(f *Flags) bool {
	switch mn {
	case JE:
		return func(f *Flags) bool { return f.ZF }
	case JNE:
		return func(f *Flags) bool { return !f.ZF }
	case JL:
		return func(f *Flags) bool { return f.SF != f.OF }
	case JLE:
		return func(f *Flags) bool { return f.ZF || f.SF != f.OF }
	case JG:
		return func(f *Flags) bool { return !f.ZF && f.SF == f.OF }
	case JGE:
		return func(f *Flags) bool { return f.SF == f.OF }
	case JB:
		return func(f *Flags) bool { return f.CF }
	case JBE:
		return func(f *Flags) bool { return f.CF || f.ZF }
	case JA:
		return func(f *Flags) bool { return !f.CF && !f.ZF }
	case JAE:
		return func(f *Flags) bool { return !f.CF }
	case JS:
		return func(f *Flags) bool { return f.SF }
	case JNS:
		return func(f *Flags) bool { return !f.SF }
	default:
		return nil
	}
}

// fallbackFn routes an instruction through the reference interpreter (byte
// moves, syscalls, division, malformed operand shapes) with unchanged
// semantics.
func fallbackFn(in Instruction) execFn {
	return func(m *Machine, next int) (int, error) {
		npc := next
		err := m.executeInstr(in, &npc)
		return npc, err
	}
}

// decodeInstr compiles one instruction into its execFn. Instructions the
// decoder does not specialize delegate to the reference interpreter — same
// semantics, decode cost only where it pays.
func decodeInstr(p *Program, in Instruction) execFn {
	if want, ok := operandCounts[in.Mn]; !ok || len(in.Ops) != want {
		// Malformed hand-built instruction: defer to the reference path,
		// which reports it at execution time exactly as before.
		return fallbackFn(in)
	}

	switch in.Mn {
	case NOP:
		return func(_ *Machine, next int) (int, error) { return next, nil }

	case MOVL:
		if in.Ops[1].Kind == OpReg {
			d := in.Ops[1].Reg
			switch in.Ops[0].Kind {
			case OpImm, OpLabel:
				v := uint32(in.Ops[0].Imm)
				return func(m *Machine, next int) (int, error) { m.Regs[d] = v; return next, nil }
			case OpReg:
				s := in.Ops[0].Reg
				return func(m *Machine, next int) (int, error) { m.Regs[d] = m.Regs[s]; return next, nil }
			}
		}
		read, write := readerFor(in.Ops[0]), writerFor(in.Ops[1])
		return func(m *Machine, next int) (int, error) {
			v, err := read(m)
			if err != nil {
				return next, err
			}
			return next, write(m, v)
		}

	case LEAL:
		if in.Ops[0].Kind != OpMem {
			break // reference path reports the operand error
		}
		ea := eaFor(in.Ops[0])
		write := writerFor(in.Ops[1])
		return func(m *Machine, next int) (int, error) { return next, write(m, ea(m)) }

	case ADDL, SUBL, CMPL:
		mn := in.Mn
		if in.Ops[1].Kind == OpReg && in.Ops[0].Kind != OpMem && in.Ops[0].Kind != OpNone {
			d := in.Ops[1].Reg
			var readSrc func(m *Machine) uint32
			if in.Ops[0].Kind == OpReg {
				s := in.Ops[0].Reg
				readSrc = func(m *Machine) uint32 { return m.Regs[s] }
			} else {
				v := uint32(in.Ops[0].Imm)
				readSrc = func(*Machine) uint32 { return v }
			}
			switch mn {
			case ADDL:
				return func(m *Machine, next int) (int, error) {
					a, b := m.Regs[d], readSrc(m)
					res := a + b
					m.addFlags(a, b, res)
					m.Regs[d] = res
					return next, nil
				}
			case SUBL:
				return func(m *Machine, next int) (int, error) {
					a, b := m.Regs[d], readSrc(m)
					res := a - b
					m.subFlags(a, b, res)
					m.Regs[d] = res
					return next, nil
				}
			default: // CMPL
				return func(m *Machine, next int) (int, error) {
					a, b := m.Regs[d], readSrc(m)
					m.subFlags(a, b, a-b)
					return next, nil
				}
			}
		}
		readSrc, readDst := readerFor(in.Ops[0]), readerFor(in.Ops[1])
		writeDst := writerFor(in.Ops[1])
		return func(m *Machine, next int) (int, error) {
			b, err := readSrc(m)
			if err != nil {
				return next, err
			}
			a, err := readDst(m)
			if err != nil {
				return next, err
			}
			var res uint32
			if mn == ADDL {
				res = a + b
				m.addFlags(a, b, res)
			} else {
				res = a - b
				m.subFlags(a, b, res)
			}
			if mn == CMPL {
				return next, nil
			}
			return next, writeDst(m, res)
		}

	case IMULL:
		readSrc, readDst := readerFor(in.Ops[0]), readerFor(in.Ops[1])
		writeDst := writerFor(in.Ops[1])
		return func(m *Machine, next int) (int, error) {
			src, err := readSrc(m)
			if err != nil {
				return next, err
			}
			dst, err := readDst(m)
			if err != nil {
				return next, err
			}
			wide := int64(int32(dst)) * int64(int32(src))
			res := uint32(wide)
			overflow := wide != int64(int32(res))
			m.Flags.CF = overflow
			m.Flags.OF = overflow
			m.Flags.ZF = res == 0
			m.Flags.SF = res&0x80000000 != 0
			return next, writeDst(m, res)
		}

	case ANDL, ORL, XORL, TESTL:
		mn := in.Mn
		readSrc, readDst := readerFor(in.Ops[0]), readerFor(in.Ops[1])
		writeDst := writerFor(in.Ops[1])
		return func(m *Machine, next int) (int, error) {
			src, err := readSrc(m)
			if err != nil {
				return next, err
			}
			dst, err := readDst(m)
			if err != nil {
				return next, err
			}
			var res uint32
			switch mn {
			case ANDL, TESTL:
				res = dst & src
			case ORL:
				res = dst | src
			case XORL:
				res = dst ^ src
			}
			m.setLogicFlags(res)
			if mn == TESTL {
				return next, nil
			}
			return next, writeDst(m, res)
		}

	case INCL, DECL:
		isDec := in.Mn == DECL
		if in.Ops[0].Kind == OpReg {
			r := in.Ops[0].Reg
			return func(m *Machine, next int) (int, error) {
				a := m.Regs[r]
				savedCF := m.Flags.CF // inc/dec preserve CF
				var res uint32
				if isDec {
					res = a - 1
					m.subFlags(a, 1, res)
				} else {
					res = a + 1
					m.addFlags(a, 1, res)
				}
				m.Flags.CF = savedCF
				m.Regs[r] = res
				return next, nil
			}
		}
		read, write := readerFor(in.Ops[0]), writerFor(in.Ops[0])
		return func(m *Machine, next int) (int, error) {
			a, err := read(m)
			if err != nil {
				return next, err
			}
			savedCF := m.Flags.CF
			var res uint32
			if isDec {
				res = a - 1
				m.subFlags(a, 1, res)
			} else {
				res = a + 1
				m.addFlags(a, 1, res)
			}
			m.Flags.CF = savedCF
			return next, write(m, res)
		}

	case NOTL:
		read, write := readerFor(in.Ops[0]), writerFor(in.Ops[0])
		return func(m *Machine, next int) (int, error) {
			v, err := read(m)
			if err != nil {
				return next, err
			}
			return next, write(m, ^v) // notl does not touch flags
		}

	case NEGL:
		read, write := readerFor(in.Ops[0]), writerFor(in.Ops[0])
		return func(m *Machine, next int) (int, error) {
			v, err := read(m)
			if err != nil {
				return next, err
			}
			res := -v
			m.subFlags(0, v, res)
			m.Flags.CF = v != 0 // x86: CF set unless operand was zero
			return next, write(m, res)
		}

	case SALL, SARL, SHRL:
		mn := in.Mn
		readCnt, readDst := readerFor(in.Ops[0]), readerFor(in.Ops[1])
		writeDst := writerFor(in.Ops[1])
		return func(m *Machine, next int) (int, error) {
			cnt, err := readCnt(m)
			if err != nil {
				return next, err
			}
			cnt &= 31
			dst, err := readDst(m)
			if err != nil {
				return next, err
			}
			res := dst
			if cnt > 0 {
				switch mn {
				case SALL:
					m.Flags.CF = dst&(1<<(32-cnt)) != 0
					res = dst << cnt
				case SARL:
					m.Flags.CF = dst&(1<<(cnt-1)) != 0
					res = uint32(int32(dst) >> cnt)
				case SHRL:
					m.Flags.CF = dst&(1<<(cnt-1)) != 0
					res = dst >> cnt
				}
				m.Flags.ZF = res == 0
				m.Flags.SF = res&0x80000000 != 0
				m.Flags.OF = false
			}
			return next, writeDst(m, res)
		}

	case PUSHL:
		read := readerFor(in.Ops[0])
		return func(m *Machine, next int) (int, error) {
			v, err := read(m)
			if err != nil {
				return next, err
			}
			return next, m.push(v)
		}

	case POPL:
		write := writerFor(in.Ops[0])
		return func(m *Machine, next int) (int, error) {
			v, err := m.pop()
			if err != nil {
				return next, err
			}
			return next, write(m, v)
		}

	case LEAVE:
		return func(m *Machine, next int) (int, error) {
			m.Regs[ESP] = m.Regs[EBP]
			v, err := m.pop()
			if err != nil {
				return next, err
			}
			m.Regs[EBP] = v
			return next, nil
		}

	case CALL:
		textBase := p.TextBase
		if idx, ok := staticTarget(p, in.Ops[0]); ok {
			return func(m *Machine, next int) (int, error) {
				if err := m.push(textBase + uint32(next)*InstrBytes); err != nil {
					return next, err
				}
				return idx, nil
			}
		}
		read := readerFor(in.Ops[0])
		return func(m *Machine, next int) (int, error) {
			target, err := read(m)
			if err != nil {
				return next, err
			}
			if err := m.push(textBase + uint32(next)*InstrBytes); err != nil {
				return next, err
			}
			return m.jumpIdx(target, next)
		}

	case RET:
		return func(m *Machine, next int) (int, error) {
			addr, err := m.pop()
			if err != nil {
				return next, err
			}
			return m.jumpIdx(addr, next)
		}

	case JMP:
		if idx, ok := staticTarget(p, in.Ops[0]); ok {
			return func(_ *Machine, _ int) (int, error) { return idx, nil }
		}
		read := readerFor(in.Ops[0])
		return func(m *Machine, next int) (int, error) {
			target, err := read(m)
			if err != nil {
				return next, err
			}
			return m.jumpIdx(target, next)
		}

	case JE, JNE, JL, JLE, JG, JGE, JB, JBE, JA, JAE, JS, JNS:
		holds := condPredicate(in.Mn)
		if idx, ok := staticTarget(p, in.Ops[0]); ok {
			return func(m *Machine, next int) (int, error) {
				if holds(&m.Flags) {
					return idx, nil
				}
				return next, nil
			}
		}
		read := readerFor(in.Ops[0])
		return func(m *Machine, next int) (int, error) {
			if !holds(&m.Flags) {
				return next, nil
			}
			target, err := read(m)
			if err != nil {
				return next, err
			}
			return m.jumpIdx(target, next)
		}
	}

	// MOVB / MOVZBL / MOVSBL / IDIVL / CLTD / INT and any operand shapes not
	// specialized above: run through the reference interpreter.
	return fallbackFn(in)
}
