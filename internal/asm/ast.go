// Package asm implements the IA-32 subset CS 31 teaches: an AT&T-syntax
// assembler, a 32-bit machine that executes assembled programs with full
// stack/call/return semantics and EFLAGS condition codes, and a
// disassembler. It is the substrate for Lab 4 (writing assembly), Lab 5
// (the binary maze, traced with the debug package), and the target of the
// minic compiler — together they form the course's vertical slice from C
// down to instruction execution.
//
// Instructions occupy four bytes of synthetic address space each, so call
// and ret push and pop meaningful return addresses; the byte encoding
// itself is provided by Assemble/LoadImage round-tripping through package
// encoding semantics rather than real x86 machine code.
package asm

import (
	"fmt"
	"sync"
)

// Register identifies one of the eight 32-bit general-purpose registers.
type Register int

// The IA-32 general-purpose register file.
const (
	EAX Register = iota
	EBX
	ECX
	EDX
	ESI
	EDI
	EBP
	ESP
	NumRegisters
	NoReg Register = -1
)

var regNames = [...]string{"eax", "ebx", "ecx", "edx", "esi", "edi", "ebp", "esp"}

func (r Register) String() string {
	if r >= 0 && int(r) < len(regNames) {
		return "%" + regNames[r]
	}
	if r == NoReg {
		return "%none"
	}
	return fmt.Sprintf("%%reg(%d)", int(r))
}

// RegisterByName resolves a register name without the % sigil ("eax").
func RegisterByName(name string) (Register, bool) {
	for i, n := range regNames {
		if n == name {
			return Register(i), true
		}
	}
	return NoReg, false
}

// Mnemonic identifies an instruction operation.
type Mnemonic int

// The instruction set: the IA-32 subset used by the course's C examples.
const (
	MOVL Mnemonic = iota
	MOVB
	MOVZBL // move byte, zero-extend to long
	MOVSBL // move byte, sign-extend to long
	LEAL
	ADDL
	SUBL
	IMULL
	IDIVL // edx:eax / op -> eax quotient, edx remainder
	CLTD  // sign-extend eax into edx (a.k.a. cdq)
	ANDL
	ORL
	XORL
	NOTL
	NEGL
	INCL
	DECL
	SALL
	SARL
	SHRL
	CMPL
	TESTL
	PUSHL
	POPL
	CALL
	RET
	LEAVE
	JMP
	JE
	JNE
	JL
	JLE
	JG
	JGE
	JB
	JBE
	JA
	JAE
	JS
	JNS
	NOP
	INT // int $0x80: the course's syscall interface
	numMnemonics
)

var mnNames = [...]string{
	"movl", "movb", "movzbl", "movsbl", "leal", "addl", "subl", "imull",
	"idivl", "cltd", "andl", "orl", "xorl", "notl", "negl", "incl", "decl",
	"sall", "sarl", "shrl", "cmpl", "testl", "pushl", "popl", "call", "ret",
	"leave", "jmp", "je", "jne", "jl", "jle", "jg", "jge", "jb", "jbe",
	"ja", "jae", "js", "jns", "nop", "int",
}

func (m Mnemonic) String() string {
	if m >= 0 && int(m) < len(mnNames) {
		return mnNames[m]
	}
	return fmt.Sprintf("mnemonic(%d)", int(m))
}

// MnemonicByName resolves an instruction name, accepting the common
// suffix-free aliases the book uses interchangeably (mov, add, cdq, ...).
func MnemonicByName(name string) (Mnemonic, bool) {
	aliases := map[string]string{
		"mov": "movl", "add": "addl", "sub": "subl", "imul": "imull",
		"idiv": "idivl", "cdq": "cltd", "and": "andl", "or": "orl",
		"xor": "xorl", "not": "notl", "neg": "negl", "inc": "incl",
		"dec": "decl", "sal": "sall", "shl": "sall", "shll": "sall",
		"sar": "sarl", "shr": "shrl", "cmp": "cmpl", "test": "testl",
		"push": "pushl", "pop": "popl", "lea": "leal", "jz": "je",
		"jnz": "jne", "jnge": "jl", "jng": "jle", "jnle": "jg",
		"jnl": "jge", "jc": "jb", "jnae": "jb", "jna": "jbe",
		"jnbe": "ja", "jnb": "jae", "jnc": "jae",
	}
	if canon, ok := aliases[name]; ok {
		name = canon
	}
	for i, n := range mnNames {
		if n == name {
			return Mnemonic(i), true
		}
	}
	return 0, false
}

// OperandKind discriminates Operand forms.
type OperandKind int

// Operand forms in AT&T syntax.
const (
	OpNone  OperandKind = iota
	OpImm               // $imm
	OpReg               // %reg
	OpMem               // disp(base,index,scale) or a bare symbol/address
	OpLabel             // jump/call target; resolved to an address at assembly
)

// Operand is one instruction operand. AT&T operand order is source first,
// destination last.
type Operand struct {
	Kind  OperandKind
	Imm   int32    // OpImm value, or resolved OpLabel address
	Reg   Register // OpReg register
	Disp  int32    // OpMem displacement
	Base  Register // OpMem base register (NoReg if absent)
	Index Register // OpMem index register (NoReg if absent)
	Scale int32    // OpMem scale: 1, 2, 4, or 8
	Sym   string   // symbol name for display (labels, data refs)
}

// Imm returns an immediate operand.
func Imm(v int32) Operand { return Operand{Kind: OpImm, Imm: v} }

// Reg returns a register operand.
func Reg(r Register) Operand { return Operand{Kind: OpReg, Reg: r} }

// Mem returns a memory operand disp(base,index,scale).
func Mem(disp int32, base, index Register, scale int32) Operand {
	if scale == 0 {
		scale = 1
	}
	return Operand{Kind: OpMem, Disp: disp, Base: base, Index: index, Scale: scale}
}

// Label returns an unresolved label operand for jumps and calls.
func Label(name string) Operand { return Operand{Kind: OpLabel, Sym: name} }

// String renders the operand in AT&T syntax.
func (o Operand) String() string {
	switch o.Kind {
	case OpImm:
		return fmt.Sprintf("$%d", o.Imm)
	case OpReg:
		return o.Reg.String()
	case OpLabel:
		if o.Sym != "" {
			return o.Sym
		}
		return fmt.Sprintf("0x%x", uint32(o.Imm))
	case OpMem:
		if o.Base == NoReg && o.Index == NoReg {
			if o.Sym != "" {
				return o.Sym
			}
			return fmt.Sprintf("0x%x", uint32(o.Disp))
		}
		s := ""
		if o.Disp != 0 {
			s = fmt.Sprintf("%d", o.Disp)
		}
		s += "("
		if o.Base != NoReg {
			s += o.Base.String()
		}
		if o.Index != NoReg {
			s += "," + o.Index.String()
			if o.Scale != 1 {
				s += fmt.Sprintf(",%d", o.Scale)
			}
		}
		return s + ")"
	default:
		return "<none>"
	}
}

// Instruction is one decoded instruction with its source position.
type Instruction struct {
	Mn   Mnemonic
	Ops  []Operand
	Addr uint32 // synthetic text address
	Line int    // 1-based source line, 0 if synthesized
}

// String renders the instruction in AT&T syntax — the disassembler students
// compare against GDB output.
func (in Instruction) String() string {
	s := in.Mn.String()
	for i, op := range in.Ops {
		if i == 0 {
			s += " " + op.String()
		} else {
			s += ", " + op.String()
		}
	}
	return s
}

// InstrBytes is the synthetic size of every instruction in address space.
const InstrBytes = 4

// Program is an assembled unit: instructions at TextBase, an initial data
// image at DataBase, and the symbol table.
type Program struct {
	Instrs   []Instruction
	Data     []byte
	Symbols  map[string]uint32
	TextBase uint32
	DataBase uint32
	Entry    uint32 // address of the entry point (main if defined, else first instruction)

	// exec is the decoded-dispatch form of Instrs, built once on first
	// execution and shared by every Machine running this program.
	execOnce sync.Once
	exec     []execFn
}

// TextEnd returns the first address past the text segment.
func (p *Program) TextEnd() uint32 {
	return p.TextBase + uint32(len(p.Instrs))*InstrBytes
}

// InstrAt maps a text address to its instruction index.
func (p *Program) InstrAt(addr uint32) (int, error) {
	if addr < p.TextBase || addr >= p.TextEnd() || (addr-p.TextBase)%InstrBytes != 0 {
		return 0, fmt.Errorf("asm: address %#x is not an instruction boundary", addr)
	}
	return int(addr-p.TextBase) / InstrBytes, nil
}

// Disassemble renders the whole text segment with addresses and labels,
// in the format students see in GDB.
func (p *Program) Disassemble() string {
	// Invert the symbol table for text addresses.
	labels := make(map[uint32][]string)
	for name, addr := range p.Symbols {
		if addr >= p.TextBase && addr < p.TextEnd() {
			labels[addr] = append(labels[addr], name)
		}
	}
	var s string
	for i, in := range p.Instrs {
		addr := p.TextBase + uint32(i)*InstrBytes
		for _, l := range labels[addr] {
			s += fmt.Sprintf("%08x <%s>:\n", addr, l)
		}
		s += fmt.Sprintf("  %08x:\t%s\n", addr, in.String())
	}
	return s
}
