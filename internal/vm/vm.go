// Package vm simulates single-level paged virtual memory as CS 31 teaches
// it: per-process page tables, virtual-to-physical translation, page faults
// with LRU frame replacement, dirty-page write-back, context switches, a
// TLB that caches translations (flushed on context switch), and the
// effective-memory-access-time model. The "Virtual memory 1/2" homeworks
// trace exactly the state this package exposes.
package vm

import (
	"fmt"
	"math/bits"
)

// PTE is one page table entry.
type PTE struct {
	Frame uint64
	Valid bool
	Dirty bool
}

// Pid identifies a process.
type Pid int

// Config describes the simulated machine.
type Config struct {
	PageSize  uint64 // bytes; must be a power of two
	NumFrames int    // physical frames
	TLBSize   int    // entries; 0 disables the TLB
	NumPages  uint64 // virtual pages per process
}

// Validate checks structural requirements.
func (c Config) Validate() error {
	if c.PageSize == 0 || c.PageSize&(c.PageSize-1) != 0 {
		return fmt.Errorf("vm: page size %d is not a power of two", c.PageSize)
	}
	if c.NumFrames <= 0 {
		return fmt.Errorf("vm: need at least one frame")
	}
	if c.NumPages == 0 {
		return fmt.Errorf("vm: need at least one virtual page")
	}
	if c.TLBSize < 0 {
		return fmt.Errorf("vm: negative TLB size")
	}
	return nil
}

// offsetBits is log2(PageSize).
func (c Config) offsetBits() uint { return uint(bits.TrailingZeros64(c.PageSize)) }

// SplitAddr divides a virtual address into page number and offset.
func (c Config) SplitAddr(vaddr uint64) (page, offset uint64) {
	return vaddr >> c.offsetBits(), vaddr & (c.PageSize - 1)
}

// frameInfo records which (pid, page) owns a physical frame.
type frameInfo struct {
	pid     Pid
	page    uint64
	used    bool
	lastUse int64
}

// tlbEntry caches one translation for the running process.
type tlbEntry struct {
	page    uint64
	frame   uint64
	valid   bool
	lastUse int64
}

// Stats counts translation events.
type Stats struct {
	Accesses   int64
	PageFaults int64
	TLBHits    int64
	TLBMisses  int64
	Evictions  int64
	WriteBacks int64 // dirty page evictions
}

// FaultRate is PageFaults / Accesses.
func (s Stats) FaultRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.PageFaults) / float64(s.Accesses)
}

// TLBHitRate is TLBHits / Accesses.
func (s Stats) TLBHitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.TLBHits) / float64(s.Accesses)
}

// Result describes one translated access.
type Result struct {
	PhysAddr   uint64
	Page       uint64
	Frame      uint64
	PageFault  bool
	TLBHit     bool
	Evicted    bool
	EvictedPid Pid
	EvictedPg  uint64
	WroteBack  bool
}

// System is the simulated virtual memory system.
type System struct {
	cfg     Config
	tables  map[Pid][]PTE
	frames  []frameInfo
	tlb     []tlbEntry
	current Pid
	clock   int64
	stats   Stats

	// ContextSwitches counts switches, including the implicit first bind.
	ContextSwitches int64
}

// New builds a system with no processes; call AddProcess then Switch.
func New(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &System{
		cfg:     cfg,
		tables:  make(map[Pid][]PTE),
		frames:  make([]frameInfo, cfg.NumFrames),
		tlb:     make([]tlbEntry, cfg.TLBSize),
		current: -1,
	}, nil
}

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// Stats returns accumulated statistics.
func (s *System) Stats() Stats { return s.stats }

// Current returns the running process.
func (s *System) Current() Pid { return s.current }

// AddProcess creates an empty page table for pid.
func (s *System) AddProcess(pid Pid) error {
	if _, dup := s.tables[pid]; dup {
		return fmt.Errorf("vm: process %d already exists", pid)
	}
	s.tables[pid] = make([]PTE, s.cfg.NumPages)
	return nil
}

// Switch makes pid the running process, flushing the TLB — the mechanism
// behind the course's "what does a context switch do to translation?"
// discussion.
func (s *System) Switch(pid Pid) error {
	if _, ok := s.tables[pid]; !ok {
		return fmt.Errorf("vm: no process %d", pid)
	}
	if pid != s.current {
		s.ContextSwitches++
		for i := range s.tlb {
			s.tlb[i].valid = false
		}
	}
	s.current = pid
	return nil
}

// PageTable returns a copy of a process's page table for inspection.
func (s *System) PageTable(pid Pid) ([]PTE, error) {
	t, ok := s.tables[pid]
	if !ok {
		return nil, fmt.Errorf("vm: no process %d", pid)
	}
	out := make([]PTE, len(t))
	copy(out, t)
	return out, nil
}

// Access translates one virtual address for the running process, handling
// TLB lookup, page faults, and LRU replacement.
func (s *System) Access(vaddr uint64, write bool) (Result, error) {
	if s.current < 0 {
		return Result{}, fmt.Errorf("vm: no running process")
	}
	page, offset := s.cfg.SplitAddr(vaddr)
	if page >= s.cfg.NumPages {
		return Result{}, fmt.Errorf("vm: virtual page %d out of range (segfault)", page)
	}
	s.clock++
	s.stats.Accesses++
	table := s.tables[s.current]
	res := Result{Page: page}

	// TLB lookup.
	if len(s.tlb) > 0 {
		for i := range s.tlb {
			if s.tlb[i].valid && s.tlb[i].page == page {
				s.stats.TLBHits++
				res.TLBHit = true
				res.Frame = s.tlb[i].frame
				s.tlb[i].lastUse = s.clock
				s.frames[res.Frame].lastUse = s.clock
				if write {
					table[page].Dirty = true
				}
				res.PhysAddr = res.Frame*s.cfg.PageSize + offset
				return res, nil
			}
		}
		s.stats.TLBMisses++
	}

	// Page table walk.
	if !table[page].Valid {
		s.stats.PageFaults++
		res.PageFault = true
		frame, evicted, evPid, evPg, wb := s.allocFrame()
		res.Evicted, res.EvictedPid, res.EvictedPg, res.WroteBack = evicted, evPid, evPg, wb
		table[page] = PTE{Frame: frame, Valid: true}
		s.frames[frame] = frameInfo{pid: s.current, page: page, used: true, lastUse: s.clock}
	}
	frame := table[page].Frame
	s.frames[frame].lastUse = s.clock
	if write {
		table[page].Dirty = true
	}
	s.tlbInsert(page, frame)
	res.Frame = frame
	res.PhysAddr = frame*s.cfg.PageSize + offset
	return res, nil
}

// allocFrame finds a free frame or evicts the LRU one.
func (s *System) allocFrame() (frame uint64, evicted bool, evPid Pid, evPg uint64, wroteBack bool) {
	for i := range s.frames {
		if !s.frames[i].used {
			return uint64(i), false, 0, 0, false
		}
	}
	victim := 0
	for i := 1; i < len(s.frames); i++ {
		if s.frames[i].lastUse < s.frames[victim].lastUse {
			victim = i
		}
	}
	fi := s.frames[victim]
	s.stats.Evictions++
	vt := s.tables[fi.pid]
	if vt[fi.page].Dirty {
		s.stats.WriteBacks++
		wroteBack = true
	}
	vt[fi.page] = PTE{}
	// Invalidate any TLB entry for the evicted page if it belongs to the
	// running process.
	if fi.pid == s.current {
		for i := range s.tlb {
			if s.tlb[i].valid && s.tlb[i].page == fi.page {
				s.tlb[i].valid = false
			}
		}
	}
	return uint64(victim), true, fi.pid, fi.page, wroteBack
}

// tlbInsert caches a translation, evicting the LRU entry if full.
func (s *System) tlbInsert(page, frame uint64) {
	if len(s.tlb) == 0 {
		return
	}
	victim := 0
	for i := range s.tlb {
		if !s.tlb[i].valid {
			victim = i
			break
		}
		if s.tlb[i].lastUse < s.tlb[victim].lastUse {
			victim = i
		}
	}
	s.tlb[victim] = tlbEntry{page: page, frame: frame, valid: true, lastUse: s.clock}
}

// ResidentPages counts valid PTEs for a process.
func (s *System) ResidentPages(pid Pid) int {
	n := 0
	for _, e := range s.tables[pid] {
		if e.Valid {
			n++
		}
	}
	return n
}

// UsedFrames counts occupied physical frames.
func (s *System) UsedFrames() int {
	n := 0
	for _, f := range s.frames {
		if f.used {
			n++
		}
	}
	return n
}

// EffectiveAccessTime computes the course's EAT formula extended with TLB:
// every access pays memTimeNs for the data reference; a TLB miss adds a
// page-table read (another memTimeNs); a page fault adds faultPenaltyNs.
func (s *System) EffectiveAccessTime(memTimeNs, faultPenaltyNs float64) float64 {
	if s.stats.Accesses == 0 {
		return 0
	}
	n := float64(s.stats.Accesses)
	total := n * memTimeNs
	total += float64(s.stats.TLBMisses) * memTimeNs
	if len(s.tlb) == 0 {
		// No TLB: every access walks the page table.
		total += n * memTimeNs
	}
	total += float64(s.stats.PageFaults) * faultPenaltyNs
	return total / n
}
