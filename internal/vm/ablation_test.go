package vm

import (
	"fmt"
	"testing"
)

// BenchmarkTLBSizes sweeps TLB capacities against a 12-page looping
// working set: hit rate rises until the working set fits, then saturates —
// the design-choice curve behind the course's "TLB speeds up effective
// access" discussion.
func BenchmarkTLBSizes(b *testing.B) {
	for _, size := range []int{0, 2, 4, 8, 16, 32} {
		size := size
		b.Run(fmt.Sprintf("tlb-%d", size), func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				s, err := New(Config{PageSize: 256, NumFrames: 32, TLBSize: size, NumPages: 64})
				if err != nil {
					b.Fatal(err)
				}
				s.AddProcess(1)
				s.Switch(1)
				for round := 0; round < 32; round++ {
					for p := uint64(0); p < 12; p++ {
						if _, err := s.Access(p*256, false); err != nil {
							b.Fatal(err)
						}
					}
				}
				rate = s.Stats().TLBHitRate()
			}
			b.ReportMetric(100*rate, "tlb-hit-%")
		})
	}
}

// TestTLBSizeMonotonic: bigger TLBs never hit less on a loop workload.
func TestTLBSizeMonotonic(t *testing.T) {
	rateFor := func(size int) float64 {
		s, err := New(Config{PageSize: 256, NumFrames: 32, TLBSize: size, NumPages: 64})
		if err != nil {
			t.Fatal(err)
		}
		s.AddProcess(1)
		s.Switch(1)
		for round := 0; round < 16; round++ {
			for p := uint64(0); p < 12; p++ {
				if _, err := s.Access(p*256, false); err != nil {
					t.Fatal(err)
				}
			}
		}
		return s.Stats().TLBHitRate()
	}
	prev := -1.0
	for _, size := range []int{0, 2, 4, 12, 16} {
		r := rateFor(size)
		if r < prev {
			t.Errorf("TLB %d hit rate %.3f below smaller TLB's %.3f", size, r, prev)
		}
		prev = r
	}
	if rateFor(12) < 0.9 {
		t.Errorf("working-set-sized TLB should hit >90%%: %.3f", rateFor(12))
	}
}
