package vm

import (
	"testing"
	"testing/quick"
)

func newSys(t *testing.T, cfg Config, pids ...Pid) *System {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pids {
		if err := s.AddProcess(p); err != nil {
			t.Fatal(err)
		}
	}
	if len(pids) > 0 {
		if err := s.Switch(pids[0]); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{PageSize: 0, NumFrames: 4, NumPages: 16},
		{PageSize: 100, NumFrames: 4, NumPages: 16},
		{PageSize: 4096, NumFrames: 0, NumPages: 16},
		{PageSize: 4096, NumFrames: 4, NumPages: 0},
		{PageSize: 4096, NumFrames: 4, NumPages: 16, TLBSize: -1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestSplitAddr(t *testing.T) {
	cfg := Config{PageSize: 4096, NumFrames: 4, NumPages: 16}
	page, off := cfg.SplitAddr(0x3a21)
	if page != 3 || off != 0xa21 {
		t.Errorf("split(0x3a21) = page %d offset %#x", page, off)
	}
}

func TestBasicTranslation(t *testing.T) {
	s := newSys(t, Config{PageSize: 256, NumFrames: 4, NumPages: 16}, 1)
	r, err := s.Access(0x123, false)
	if err != nil {
		t.Fatal(err)
	}
	if !r.PageFault {
		t.Error("first touch should fault")
	}
	if r.Page != 1 || r.PhysAddr != r.Frame*256+0x23 {
		t.Errorf("result: %+v", r)
	}
	r2, err := s.Access(0x145, false)
	if err != nil {
		t.Fatal(err)
	}
	if r2.PageFault {
		t.Error("second touch of page should not fault")
	}
	if r2.Frame != r.Frame {
		t.Error("same page must map to same frame")
	}
}

func TestOutOfRangeAndNoProcess(t *testing.T) {
	s, err := New(Config{PageSize: 256, NumFrames: 2, NumPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Access(0, false); err == nil {
		t.Error("access with no process should fail")
	}
	if err := s.AddProcess(1); err != nil {
		t.Fatal(err)
	}
	if err := s.AddProcess(1); err == nil {
		t.Error("duplicate process should fail")
	}
	if err := s.Switch(1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Access(4*256, false); err == nil {
		t.Error("page 4 of 4 should segfault")
	}
	if err := s.Switch(9); err == nil {
		t.Error("switch to unknown pid should fail")
	}
}

func TestLRUPageReplacement(t *testing.T) {
	// 2 frames; touch pages 0, 1, re-touch 0, then 2 -> page 1 evicted.
	s := newSys(t, Config{PageSize: 256, NumFrames: 2, NumPages: 8}, 1)
	mustAccess := func(addr uint64, write bool) Result {
		t.Helper()
		r, err := s.Access(addr, write)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	mustAccess(0*256, false)
	mustAccess(1*256, false)
	mustAccess(0*256, false)
	r := mustAccess(2*256, false)
	if !r.PageFault || !r.Evicted || r.EvictedPg != 1 {
		t.Errorf("expected eviction of page 1: %+v", r)
	}
	pt, err := s.PageTable(1)
	if err != nil {
		t.Fatal(err)
	}
	if pt[1].Valid {
		t.Error("page 1 PTE should be invalidated")
	}
	if !pt[0].Valid || !pt[2].Valid {
		t.Error("pages 0 and 2 should be resident")
	}
}

func TestDirtyPageWriteBack(t *testing.T) {
	s := newSys(t, Config{PageSize: 256, NumFrames: 1, NumPages: 8}, 1)
	if _, err := s.Access(0, true); err != nil { // dirty page 0
		t.Fatal(err)
	}
	r, err := s.Access(256, false) // evicts page 0
	if err != nil {
		t.Fatal(err)
	}
	if !r.WroteBack {
		t.Error("dirty page eviction should write back")
	}
	if s.Stats().WriteBacks != 1 {
		t.Errorf("stats: %+v", s.Stats())
	}
	// Clean eviction next.
	r2, err := s.Access(512, false)
	if err != nil {
		t.Fatal(err)
	}
	if r2.WroteBack {
		t.Error("clean page eviction should not write back")
	}
}

func TestTLB(t *testing.T) {
	s := newSys(t, Config{PageSize: 256, NumFrames: 4, NumPages: 8, TLBSize: 2}, 1)
	r1, _ := s.Access(0, false)
	if r1.TLBHit {
		t.Error("first access cannot hit TLB")
	}
	r2, _ := s.Access(4, false)
	if !r2.TLBHit {
		t.Error("second access to page should hit TLB")
	}
	st := s.Stats()
	if st.TLBHits != 1 || st.TLBMisses != 1 {
		t.Errorf("TLB stats: %+v", st)
	}
}

func TestTLBFlushOnContextSwitch(t *testing.T) {
	s := newSys(t, Config{PageSize: 256, NumFrames: 4, NumPages: 8, TLBSize: 4}, 1, 2)
	s.Access(0, false)
	s.Access(0, false) // TLB hit
	if err := s.Switch(2); err != nil {
		t.Fatal(err)
	}
	r, err := s.Access(0, false)
	if err != nil {
		t.Fatal(err)
	}
	if r.TLBHit {
		t.Error("TLB must be flushed across context switch")
	}
	if r.Frame == 0 && !r.PageFault {
		t.Error("process 2's page 0 is distinct from process 1's")
	}
}

func TestProcessIsolation(t *testing.T) {
	// Two processes each touch their own page 0: distinct frames, and the
	// "virtual memory 2" homework's point — same virtual address, different
	// physical address.
	s := newSys(t, Config{PageSize: 256, NumFrames: 4, NumPages: 8}, 1, 2)
	r1, err := s.Access(0x10, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Switch(2); err != nil {
		t.Fatal(err)
	}
	r2, err := s.Access(0x10, false)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Frame == r2.Frame {
		t.Error("two processes share a frame for private pages")
	}
	if r1.PhysAddr == r2.PhysAddr {
		t.Error("same virtual address must translate differently")
	}
}

func TestCrossProcessEviction(t *testing.T) {
	// One frame, two processes: process 2's touch steals process 1's frame.
	s := newSys(t, Config{PageSize: 256, NumFrames: 1, NumPages: 4}, 1, 2)
	if _, err := s.Access(0, true); err != nil {
		t.Fatal(err)
	}
	if err := s.Switch(2); err != nil {
		t.Fatal(err)
	}
	r, err := s.Access(0, false)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Evicted || r.EvictedPid != 1 || r.EvictedPg != 0 || !r.WroteBack {
		t.Errorf("cross-process eviction: %+v", r)
	}
	pt1, _ := s.PageTable(1)
	if pt1[0].Valid {
		t.Error("process 1's page should be invalid after steal")
	}
	// Process 1 faults back in on next run.
	if err := s.Switch(1); err != nil {
		t.Fatal(err)
	}
	r2, err := s.Access(0, false)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.PageFault {
		t.Error("process 1 should re-fault after losing its frame")
	}
}

func TestResidentAndUsedCounts(t *testing.T) {
	s := newSys(t, Config{PageSize: 256, NumFrames: 4, NumPages: 8}, 1)
	for i := uint64(0); i < 3; i++ {
		if _, err := s.Access(i*256, false); err != nil {
			t.Fatal(err)
		}
	}
	if s.ResidentPages(1) != 3 || s.UsedFrames() != 3 {
		t.Errorf("resident=%d used=%d", s.ResidentPages(1), s.UsedFrames())
	}
	if _, err := s.PageTable(42); err == nil {
		t.Error("unknown pid page table should fail")
	}
}

// Property: frames never hold two (pid, page) mappings at once; every valid
// PTE points at a frame owned by that (pid, page).
func TestFrameConsistencyInvariant(t *testing.T) {
	s := newSys(t, Config{PageSize: 64, NumFrames: 3, NumPages: 8}, 1, 2)
	f := func(steps []uint16) bool {
		for _, step := range steps {
			pid := Pid(step%2 + 1)
			if err := s.Switch(pid); err != nil {
				return false
			}
			addr := uint64(step) % (8 * 64)
			if _, err := s.Access(addr, step%3 == 0); err != nil {
				return false
			}
		}
		// Check invariant: valid PTEs map to frames that agree.
		for _, pid := range []Pid{1, 2} {
			pt, err := s.PageTable(pid)
			if err != nil {
				return false
			}
			for page, e := range pt {
				if !e.Valid {
					continue
				}
				fi := s.frames[e.Frame]
				if !fi.used || fi.pid != pid || fi.page != uint64(page) {
					return false
				}
			}
		}
		return s.UsedFrames() <= 3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEffectiveAccessTime(t *testing.T) {
	// No TLB: every access pays table walk + access.
	s := newSys(t, Config{PageSize: 256, NumFrames: 4, NumPages: 8}, 1)
	for i := 0; i < 10; i++ {
		if _, err := s.Access(0, false); err != nil {
			t.Fatal(err)
		}
	}
	eat := s.EffectiveAccessTime(100, 1_000_000)
	// 10 accesses: 1 fault. Per access: 100 (data) + 100 (walk) + faults.
	want := (10*100.0 + 10*100.0 + 1*1_000_000.0) / 10.0
	if eat != want {
		t.Errorf("EAT = %v, want %v", eat, want)
	}

	// With a TLB, repeated hits skip the walk.
	s2 := newSys(t, Config{PageSize: 256, NumFrames: 4, NumPages: 8, TLBSize: 4}, 1)
	for i := 0; i < 10; i++ {
		if _, err := s2.Access(0, false); err != nil {
			t.Fatal(err)
		}
	}
	eat2 := s2.EffectiveAccessTime(100, 1_000_000)
	if eat2 >= eat {
		t.Errorf("TLB should reduce EAT: %v >= %v", eat2, eat)
	}
	var empty System
	if empty.EffectiveAccessTime(1, 1) != 0 {
		t.Error("empty system EAT should be 0")
	}
}

func TestFaultAndTLBRates(t *testing.T) {
	s := newSys(t, Config{PageSize: 256, NumFrames: 4, NumPages: 8, TLBSize: 4}, 1)
	for i := 0; i < 4; i++ {
		if _, err := s.Access(0, false); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.FaultRate() != 0.25 {
		t.Errorf("fault rate %v, want 0.25", st.FaultRate())
	}
	if st.TLBHitRate() != 0.75 {
		t.Errorf("TLB hit rate %v, want 0.75", st.TLBHitRate())
	}
	var zero Stats
	if zero.FaultRate() != 0 || zero.TLBHitRate() != 0 {
		t.Error("zero stats rates")
	}
}

func BenchmarkVMAccess(b *testing.B) {
	s, err := New(Config{PageSize: 4096, NumFrames: 64, NumPages: 1024, TLBSize: 16})
	if err != nil {
		b.Fatal(err)
	}
	s.AddProcess(1)
	s.Switch(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Access(uint64(i*64)%(1024*4096), i%4 == 0); err != nil {
			b.Fatal(err)
		}
	}
}
