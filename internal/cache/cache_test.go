package cache

import (
	"strings"
	"testing"
	"testing/quick"

	"cs31/internal/memhier"
)

func directMapped(t *testing.T, size, block int) *Cache {
	t.Helper()
	c, err := New(Config{SizeBytes: size, BlockSize: block, Assoc: 1})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	good := Config{SizeBytes: 1024, BlockSize: 16, Assoc: 2}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []Config{
		{SizeBytes: 0, BlockSize: 16, Assoc: 1},
		{SizeBytes: 1024, BlockSize: 0, Assoc: 1},
		{SizeBytes: 1024, BlockSize: 16, Assoc: 0},
		{SizeBytes: 1024, BlockSize: 24, Assoc: 1},  // block not power of 2
		{SizeBytes: 1000, BlockSize: 16, Assoc: 1},  // not divisible
		{SizeBytes: 1024, BlockSize: 16, Assoc: 64}, // sets = 1 ok... but
	}
	for i, cfg := range bad[:5] {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
	// Fully associative (one set) is legal.
	fa := Config{SizeBytes: 1024, BlockSize: 16, Assoc: 64}
	if err := fa.Validate(); err != nil {
		t.Errorf("fully associative rejected: %v", err)
	}
	if _, err := New(Config{SizeBytes: 1000, BlockSize: 16, Assoc: 1}); err == nil {
		t.Error("New should validate")
	}
}

func TestAddressDivision(t *testing.T) {
	// The homework's canonical setup: 16-byte blocks, 4 sets -> 4 offset
	// bits, 2 index bits.
	cfg := Config{SizeBytes: 64, BlockSize: 16, Assoc: 1}
	if cfg.NumSets() != 4 || cfg.OffsetBits() != 4 || cfg.IndexBits() != 2 {
		t.Fatalf("sets=%d offset=%d index=%d", cfg.NumSets(), cfg.OffsetBits(), cfg.IndexBits())
	}
	p := cfg.Split(0x1234)
	// 0x1234 = 0001 0010 0011 0100: offset=0x4, index=0b11, tag=0x48
	if p.Offset != 0x4 || p.Index != 0x3 || p.Tag != 0x48 {
		t.Errorf("split(0x1234) = %+v", p)
	}
	if cfg.Join(p) != 0x1234 {
		t.Errorf("join = %#x", cfg.Join(p))
	}
}

// Property: Split and Join are inverses for any address.
func TestSplitJoinProperty(t *testing.T) {
	cfg := Config{SizeBytes: 4096, BlockSize: 32, Assoc: 4}
	f := func(addr uint64) bool {
		return cfg.Join(cfg.Split(addr)) == addr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := directMapped(t, 64, 16)
	r1 := c.Access(0x100, false)
	if r1.Hit {
		t.Error("cold access should miss")
	}
	r2 := c.Access(0x104, false) // same block
	if !r2.Hit {
		t.Error("same-block access should hit")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.MemReads != 1 {
		t.Errorf("stats: %+v", s)
	}
}

func TestDirectMappedConflict(t *testing.T) {
	// Two addresses mapping to the same set thrash a direct-mapped cache.
	c := directMapped(t, 64, 16) // 4 sets, index bits 4-5
	a := uint64(0x000)
	b := uint64(0x040) // same index (0), different tag
	for i := 0; i < 4; i++ {
		c.Access(a, false)
		c.Access(b, false)
	}
	s := c.Stats()
	if s.Hits != 0 {
		t.Errorf("conflict thrashing should never hit, got %d hits", s.Hits)
	}
	if s.Evictions != 7 {
		t.Errorf("evictions = %d, want 7", s.Evictions)
	}
}

func TestTwoWayAssociativityFixesConflict(t *testing.T) {
	// The same thrashing pair fits in a 2-way set.
	c, err := New(Config{SizeBytes: 128, BlockSize: 16, Assoc: 2})
	if err != nil {
		t.Fatal(err)
	}
	a := uint64(0x000)
	b := uint64(0x080) // same index in a 4-set 2-way cache
	if c.Config().Split(a).Index != c.Config().Split(b).Index {
		t.Fatal("test addresses must share a set")
	}
	for i := 0; i < 4; i++ {
		c.Access(a, false)
		c.Access(b, false)
	}
	s := c.Stats()
	if s.Hits != 6 {
		t.Errorf("2-way should hit 6 of 8, got %d", s.Hits)
	}
}

func TestLRUReplacement(t *testing.T) {
	// 2-way set; fill with A, B; touch A; insert C -> B evicted.
	c, err := New(Config{SizeBytes: 32, BlockSize: 16, Assoc: 2}) // 1 set
	if err != nil {
		t.Fatal(err)
	}
	a, b, cc := uint64(0x00), uint64(0x10), uint64(0x20)
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // A is now MRU
	res := c.Access(cc, false)
	if !res.Evicted {
		t.Fatal("expected eviction")
	}
	if !c.Contains(a) || c.Contains(b) || !c.Contains(cc) {
		t.Error("LRU should have evicted B")
	}
}

func TestFIFOReplacement(t *testing.T) {
	// Same sequence under FIFO evicts A (first in), even though A was
	// touched most recently.
	c, err := New(Config{SizeBytes: 32, BlockSize: 16, Assoc: 2, Repl: FIFO})
	if err != nil {
		t.Fatal(err)
	}
	a, b, cc := uint64(0x00), uint64(0x10), uint64(0x20)
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false)
	c.Access(cc, false)
	if c.Contains(a) || !c.Contains(b) || !c.Contains(cc) {
		t.Error("FIFO should have evicted A")
	}
}

func TestWriteBackDirtyEviction(t *testing.T) {
	c := directMapped(t, 16, 16) // single line
	c.Access(0x00, true)         // write-allocate, line dirty
	if c.DirtyLines() != 1 {
		t.Error("line should be dirty")
	}
	res := c.Access(0x40, false) // evicts dirty line
	if !res.WroteBack {
		t.Error("dirty eviction should write back")
	}
	s := c.Stats()
	if s.WriteBacks != 1 || s.MemWrites != 0 {
		t.Errorf("stats: %+v", s)
	}
}

func TestWriteThrough(t *testing.T) {
	c, err := New(Config{SizeBytes: 16, BlockSize: 16, Assoc: 1, Write: WriteThrough})
	if err != nil {
		t.Fatal(err)
	}
	c.Access(0x00, true) // miss, allocate, write through
	c.Access(0x04, true) // hit, write through
	s := c.Stats()
	if s.MemWrites != 2 {
		t.Errorf("write-through mem writes = %d, want 2", s.MemWrites)
	}
	if c.DirtyLines() != 0 {
		t.Error("write-through lines are never dirty")
	}
	c.Access(0x40, false)
	if c.Stats().WriteBacks != 0 {
		t.Error("write-through never writes back")
	}
}

func TestNoWriteAllocate(t *testing.T) {
	c, err := New(Config{SizeBytes: 16, BlockSize: 16, Assoc: 1,
		Write: WriteThrough, Alloc: NoWriteAllocate})
	if err != nil {
		t.Fatal(err)
	}
	res := c.Access(0x00, true)
	if res.FilledBlock {
		t.Error("no-write-allocate should not fill on write miss")
	}
	if c.ValidLines() != 0 {
		t.Error("cache should stay empty")
	}
	if c.Stats().MemWrites != 1 {
		t.Error("write should go to memory")
	}
}

func TestFlush(t *testing.T) {
	c := directMapped(t, 64, 16)
	c.Access(0x00, true)
	c.Access(0x10, false)
	c.Flush()
	if c.ValidLines() != 0 {
		t.Error("flush should invalidate everything")
	}
	if c.Stats().WriteBacks != 1 {
		t.Errorf("flush should write back the dirty line: %+v", c.Stats())
	}
}

// Property: after any access, the accessed block is resident (except under
// no-write-allocate write misses), and valid lines never exceed capacity.
func TestResidencyInvariant(t *testing.T) {
	cfg := Config{SizeBytes: 256, BlockSize: 16, Assoc: 2}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	totalLines := cfg.SizeBytes / cfg.BlockSize
	f := func(addrRaw uint16, write bool) bool {
		addr := uint64(addrRaw)
		c.Access(addr, write)
		return c.Contains(addr) && c.ValidLines() <= totalLines
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: hits + misses == accesses, and hit rate in [0,1].
func TestStatsConsistency(t *testing.T) {
	f := func(addrs []uint16) bool {
		c, err := New(Config{SizeBytes: 128, BlockSize: 8, Assoc: 2})
		if err != nil {
			return false
		}
		for _, a := range addrs {
			c.Access(uint64(a), a%3 == 0)
		}
		s := c.Stats()
		return s.Hits+s.Misses == s.Accesses &&
			s.HitRate() >= 0 && s.HitRate() <= 1 &&
			s.HitRate()+s.MissRate() <= 1.0000001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The course's stride exercise: row-major traversal dramatically out-hits
// column-major on the same matrix.
func TestRowVsColumnMajorHitRates(t *testing.T) {
	cfg := Config{SizeBytes: 1024, BlockSize: 64, Assoc: 1}
	rows, cols := 64, 64
	rm, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rm.RunTrace(memhier.MatrixTraceRowMajor(0, rows, cols, 4))
	cm, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cm.RunTrace(memhier.MatrixTraceColMajor(0, rows, cols, 4))

	rmRate := rm.Stats().HitRate()
	cmRate := cm.Stats().HitRate()
	// Row-major: 16 ints per 64-byte block -> 15/16 hit rate.
	if rmRate < 0.9 {
		t.Errorf("row-major hit rate %v, want ~0.94", rmRate)
	}
	// Column-major with a 64-row stride thrashes every access.
	if cmRate > 0.1 {
		t.Errorf("column-major hit rate %v, want ~0", cmRate)
	}
	if rmRate <= cmRate {
		t.Errorf("row-major (%v) must beat column-major (%v)", rmRate, cmRate)
	}
}

func TestEmptyStats(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 || s.MissRate() != 0 {
		t.Error("empty stats rates should be 0")
	}
}

func TestTraceTable(t *testing.T) {
	cfg := Config{SizeBytes: 64, BlockSize: 16, Assoc: 1}
	trace := []memhier.Access{
		memhier.R(0x00), memhier.R(0x04), memhier.W(0x40), memhier.R(0x00),
	}
	out, err := TraceTable(cfg, trace, 10)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // header + 4 rows
		t.Fatalf("table:\n%s", out)
	}
	if !strings.Contains(lines[1], "MISS") || !strings.Contains(lines[2], "hit") {
		t.Errorf("table rows:\n%s", out)
	}
	if !strings.Contains(lines[4], "evict") {
		t.Errorf("final row should show eviction:\n%s", out)
	}
	if _, err := TraceTable(Config{}, trace, 1); err == nil {
		t.Error("bad config should fail")
	}
}

func TestPolicyStrings(t *testing.T) {
	if WriteBack.String() != "write-back" || WriteThrough.String() != "write-through" {
		t.Error("write policy names")
	}
	if WriteAllocate.String() != "write-allocate" || NoWriteAllocate.String() != "no-write-allocate" {
		t.Error("alloc policy names")
	}
	if LRU.String() != "LRU" || FIFO.String() != "FIFO" {
		t.Error("repl policy names")
	}
}

func BenchmarkCacheAccess(b *testing.B) {
	c, err := New(Config{SizeBytes: 32 << 10, BlockSize: 64, Assoc: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i*64)%(1<<20), i%4 == 0)
	}
}
