package cache

// Differential equivalence: the flat-array/intrusive-recency-list rewrite
// must produce bit-for-bit the old per-access Results and Stats. oldCache
// below is the pre-rewrite implementation verbatim (map-free slices, linear
// victim scan over lastUse timestamps); random traces lockstep the two over
// every policy combination.

import (
	"fmt"
	"math/rand"
	"testing"
)

type oldLine struct {
	valid   bool
	dirty   bool
	tag     uint64
	lastUse int64
}

type oldCache struct {
	cfg   Config
	sets  [][]oldLine
	stats Stats
	clock int64
}

func newOldCache(cfg Config) *oldCache {
	sets := make([][]oldLine, cfg.NumSets())
	for i := range sets {
		sets[i] = make([]oldLine, cfg.Assoc)
	}
	return &oldCache{cfg: cfg, sets: sets}
}

func (c *oldCache) access(addr uint64, write bool) Result {
	c.clock++
	c.stats.Accesses++
	parts := c.cfg.Split(addr)
	set := c.sets[parts.Index]
	res := Result{Parts: parts}

	for i := range set {
		if set[i].valid && set[i].tag == parts.Tag {
			c.stats.Hits++
			res.Hit = true
			if c.cfg.Repl == LRU {
				set[i].lastUse = c.clock
			}
			if write {
				if c.cfg.Write == WriteBack {
					set[i].dirty = true
				} else {
					c.stats.MemWrites++
				}
			}
			return res
		}
	}

	c.stats.Misses++
	if write && c.cfg.Alloc == NoWriteAllocate {
		c.stats.MemWrites++
		return res
	}

	victim := -1
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		victim = 0
		for i := 1; i < len(set); i++ {
			if set[i].lastUse < set[victim].lastUse {
				victim = i
			}
		}
		c.stats.Evictions++
		res.Evicted = true
		res.EvictedTag = set[victim].tag
		if set[victim].dirty {
			c.stats.WriteBacks++
			res.WroteBack = true
		}
	}

	c.stats.MemReads++
	res.FilledBlock = true
	set[victim] = oldLine{valid: true, tag: parts.Tag, lastUse: c.clock}
	if write {
		if c.cfg.Write == WriteBack {
			set[victim].dirty = true
		} else {
			c.stats.MemWrites++
		}
	}
	return res
}

func (c *oldCache) dirtyLines() int {
	n := 0
	for _, set := range c.sets {
		for _, l := range set {
			if l.valid && l.dirty {
				n++
			}
		}
	}
	return n
}

func TestAccessMatchesOldImplementation(t *testing.T) {
	configs := []Config{
		{SizeBytes: 1024, BlockSize: 64, Assoc: 1},
		{SizeBytes: 1024, BlockSize: 16, Assoc: 2},
		{SizeBytes: 2048, BlockSize: 32, Assoc: 4},
		{SizeBytes: 4096, BlockSize: 64, Assoc: 8},
		{SizeBytes: 512, BlockSize: 32, Assoc: 16}, // single set, fully associative
	}
	for _, base := range configs {
		for _, repl := range []ReplPolicy{LRU, FIFO} {
			for _, wp := range []WritePolicy{WriteBack, WriteThrough} {
				for _, ap := range []AllocPolicy{WriteAllocate, NoWriteAllocate} {
					cfg := base
					cfg.Repl, cfg.Write, cfg.Alloc = repl, wp, ap
					name := fmt.Sprintf("%db-%dw-%v-%v-%v", cfg.SizeBytes, cfg.Assoc, repl, wp, ap)
					t.Run(name, func(t *testing.T) {
						c, err := New(cfg)
						if err != nil {
							t.Fatal(err)
						}
						ref := newOldCache(cfg)
						rng := rand.New(rand.NewSource(31))
						for i := 0; i < 20000; i++ {
							// Addresses clustered around 4x capacity so
							// hits, misses, and evictions all occur.
							addr := uint64(rng.Intn(4 * cfg.SizeBytes))
							write := rng.Intn(3) == 0
							got := c.Access(addr, write)
							want := ref.access(addr, write)
							if got != want {
								t.Fatalf("access %d (addr %#x write %v): got %+v, want %+v",
									i, addr, write, got, want)
							}
						}
						if c.Stats() != ref.stats {
							t.Fatalf("stats diverged: got %+v, want %+v", c.Stats(), ref.stats)
						}
						if c.DirtyLines() != ref.dirtyLines() {
							t.Fatalf("dirty lines: got %d, want %d", c.DirtyLines(), ref.dirtyLines())
						}
					})
				}
			}
		}
	}
}

// TestFlushAfterDifferentialTrace pins Flush's write-back accounting on a
// cache state produced by a random trace.
func TestFlushAfterDifferentialTrace(t *testing.T) {
	cfg := Config{SizeBytes: 1024, BlockSize: 32, Assoc: 4, Write: WriteBack, Repl: LRU}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		c.Access(uint64(rng.Intn(4096)), rng.Intn(2) == 0)
	}
	dirty := c.DirtyLines()
	before := c.Stats().WriteBacks
	c.Flush()
	if got := c.Stats().WriteBacks - before; got != int64(dirty) {
		t.Fatalf("flush wrote back %d lines, want %d", got, dirty)
	}
	if c.ValidLines() != 0 || c.DirtyLines() != 0 {
		t.Fatalf("flush left %d valid / %d dirty lines", c.ValidLines(), c.DirtyLines())
	}
	// The cache must behave like a fresh one after Flush.
	fresh, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		addr := uint64(rng.Intn(4096))
		write := rng.Intn(2) == 0
		if got, want := c.Access(addr, write), fresh.Access(addr, write); got != want {
			t.Fatalf("post-flush access %d diverged: got %+v, want %+v", i, got, want)
		}
	}
}
