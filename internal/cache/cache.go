// Package cache is the trace-driven cache simulator behind CS 31's caching
// module and the direct-mapped / set-associative homeworks: tag/index/offset
// address division, direct-mapped and N-way set-associative organizations,
// LRU and FIFO replacement, and write-through/write-back with
// write-allocate/no-allocate policies, with full hit/miss/eviction/traffic
// statistics.
package cache

import (
	"fmt"
	"math/bits"
	"strings"

	"cs31/internal/memhier"
)

// WritePolicy selects how writes propagate to memory.
type WritePolicy int

// Write policies.
const (
	WriteBack    WritePolicy = iota // dirty lines written back on eviction
	WriteThrough                    // every store also writes memory
)

func (p WritePolicy) String() string {
	if p == WriteBack {
		return "write-back"
	}
	return "write-through"
}

// AllocPolicy selects what happens on a write miss.
type AllocPolicy int

// Allocation policies.
const (
	WriteAllocate   AllocPolicy = iota // write misses fill the cache
	NoWriteAllocate                    // write misses go straight to memory
)

func (p AllocPolicy) String() string {
	if p == WriteAllocate {
		return "write-allocate"
	}
	return "no-write-allocate"
}

// ReplPolicy selects the victim within a set.
type ReplPolicy int

// Replacement policies.
const (
	LRU ReplPolicy = iota
	FIFO
)

func (p ReplPolicy) String() string {
	if p == LRU {
		return "LRU"
	}
	return "FIFO"
}

// Config describes a cache organization the way the homework does: total
// size, block size, and associativity (1 = direct-mapped).
type Config struct {
	SizeBytes int // total data capacity
	BlockSize int // bytes per line
	Assoc     int // ways per set; 1 = direct-mapped
	Write     WritePolicy
	Alloc     AllocPolicy
	Repl      ReplPolicy
}

// Validate checks the power-of-two structure address division requires.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.BlockSize <= 0 || c.Assoc <= 0 {
		return fmt.Errorf("cache: size, block size, and associativity must be positive")
	}
	if c.BlockSize&(c.BlockSize-1) != 0 {
		return fmt.Errorf("cache: block size %d is not a power of two", c.BlockSize)
	}
	if c.SizeBytes%(c.BlockSize*c.Assoc) != 0 {
		return fmt.Errorf("cache: size %d not divisible by block*assoc %d",
			c.SizeBytes, c.BlockSize*c.Assoc)
	}
	sets := c.NumSets()
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d is not a power of two", sets)
	}
	return nil
}

// NumSets is the number of sets: size / (blockSize * assoc).
func (c Config) NumSets() int { return c.SizeBytes / (c.BlockSize * c.Assoc) }

// OffsetBits is the number of block-offset bits in an address.
func (c Config) OffsetBits() int { return bits.TrailingZeros64(uint64(c.BlockSize)) }

// IndexBits is the number of set-index bits in an address.
func (c Config) IndexBits() int { return bits.TrailingZeros64(uint64(c.NumSets())) }

// AddressParts is the tag/index/offset division of one address — the
// homework's core skill.
type AddressParts struct {
	Tag    uint64
	Index  uint64
	Offset uint64
}

// Split divides an address into tag, index, and offset fields.
func (c Config) Split(addr uint64) AddressParts {
	ob := uint(c.OffsetBits())
	ib := uint(c.IndexBits())
	return AddressParts{
		Offset: addr & (uint64(c.BlockSize) - 1),
		Index:  (addr >> ob) & (uint64(c.NumSets()) - 1),
		Tag:    addr >> (ob + ib),
	}
}

// Join reassembles an address from its parts (inverse of Split).
func (c Config) Join(p AddressParts) uint64 {
	ob := uint(c.OffsetBits())
	ib := uint(c.IndexBits())
	return p.Tag<<(ob+ib) | p.Index<<ob | p.Offset
}

// line is one cache line's metadata.
type line struct {
	valid bool
	dirty bool
	tag   uint64
	// lastUse is the logical time of the last access (LRU) or of the fill
	// (FIFO).
	lastUse int64
}

// Stats counts the events the homework has students tabulate.
type Stats struct {
	Accesses   int64
	Hits       int64
	Misses     int64
	Evictions  int64
	WriteBacks int64 // dirty lines written back to memory
	MemReads   int64 // block fills from memory
	MemWrites  int64 // word writes to memory (write-through / no-allocate)
}

// HitRate is Hits / Accesses.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// MissRate is 1 - HitRate for non-empty traces.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Result describes a single access's outcome, for the step-by-step tracing
// exercises.
type Result struct {
	Hit         bool
	Parts       AddressParts
	Evicted     bool
	EvictedTag  uint64
	WroteBack   bool
	FilledBlock bool
}

// Cache is a simulated cache.
type Cache struct {
	cfg   Config
	sets  [][]line
	stats Stats
	clock int64
}

// New builds a cache from a validated config.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := make([][]line, cfg.NumSets())
	for i := range sets {
		sets[i] = make([]line, cfg.Assoc)
	}
	return &Cache{cfg: cfg, sets: sets}, nil
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// Access simulates one reference and returns its outcome.
func (c *Cache) Access(addr uint64, write bool) Result {
	c.clock++
	c.stats.Accesses++
	parts := c.cfg.Split(addr)
	set := c.sets[parts.Index]
	res := Result{Parts: parts}

	// Hit?
	for i := range set {
		if set[i].valid && set[i].tag == parts.Tag {
			c.stats.Hits++
			res.Hit = true
			if c.cfg.Repl == LRU {
				set[i].lastUse = c.clock
			}
			if write {
				if c.cfg.Write == WriteBack {
					set[i].dirty = true
				} else {
					c.stats.MemWrites++
				}
			}
			return res
		}
	}

	// Miss.
	c.stats.Misses++
	if write && c.cfg.Alloc == NoWriteAllocate {
		c.stats.MemWrites++
		return res
	}

	// Choose a victim: first invalid way, else oldest by policy clock.
	victim := -1
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		victim = 0
		for i := 1; i < len(set); i++ {
			if set[i].lastUse < set[victim].lastUse {
				victim = i
			}
		}
		c.stats.Evictions++
		res.Evicted = true
		res.EvictedTag = set[victim].tag
		if set[victim].dirty {
			c.stats.WriteBacks++
			res.WroteBack = true
		}
	}

	// Fill.
	c.stats.MemReads++
	res.FilledBlock = true
	set[victim] = line{valid: true, tag: parts.Tag, lastUse: c.clock}
	if write {
		if c.cfg.Write == WriteBack {
			set[victim].dirty = true
		} else {
			c.stats.MemWrites++
		}
	}
	return res
}

// Contains reports whether the block holding addr is resident — used by the
// property tests for the "most recent access is cached" invariant.
func (c *Cache) Contains(addr uint64) bool {
	parts := c.cfg.Split(addr)
	for _, l := range c.sets[parts.Index] {
		if l.valid && l.tag == parts.Tag {
			return true
		}
	}
	return false
}

// DirtyLines counts resident dirty lines (write-back only).
func (c *Cache) DirtyLines() int {
	n := 0
	for _, set := range c.sets {
		for _, l := range set {
			if l.valid && l.dirty {
				n++
			}
		}
	}
	return n
}

// ValidLines counts resident lines.
func (c *Cache) ValidLines() int {
	n := 0
	for _, set := range c.sets {
		for _, l := range set {
			if l.valid {
				n++
			}
		}
	}
	return n
}

// Flush writes back all dirty lines and invalidates the cache.
func (c *Cache) Flush() {
	for i := range c.sets {
		for j := range c.sets[i] {
			if c.sets[i][j].valid && c.sets[i][j].dirty {
				c.stats.WriteBacks++
			}
			c.sets[i][j] = line{}
		}
	}
}

// RunTrace replays a trace and returns the final statistics.
func (c *Cache) RunTrace(trace []memhier.Access) Stats {
	for _, a := range trace {
		c.Access(a.Addr, a.Write)
	}
	return c.stats
}

// TraceTable renders the first n accesses of a trace as the hit/miss table
// students fill in on the caching homework.
func TraceTable(cfg Config, trace []memhier.Access, n int) (string, error) {
	c, err := New(cfg)
	if err != nil {
		return "", err
	}
	if n > len(trace) {
		n = len(trace)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %-6s %-8s %-8s %-8s %s\n",
		"address", "rw", "tag", "index", "offset", "result")
	for _, a := range trace[:n] {
		res := c.Access(a.Addr, a.Write)
		rw := "read"
		if a.Write {
			rw = "write"
		}
		outcome := "MISS"
		if res.Hit {
			outcome = "hit"
		}
		if res.Evicted {
			outcome += fmt.Sprintf(" (evict tag %#x", res.EvictedTag)
			if res.WroteBack {
				outcome += ", write back"
			}
			outcome += ")"
		}
		fmt.Fprintf(&sb, "%#-12x %-6s %#-8x %#-8x %#-8x %s\n",
			a.Addr, rw, res.Parts.Tag, res.Parts.Index, res.Parts.Offset, outcome)
	}
	return sb.String(), nil
}
