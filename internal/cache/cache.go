// Package cache is the trace-driven cache simulator behind CS 31's caching
// module and the direct-mapped / set-associative homeworks: tag/index/offset
// address division, direct-mapped and N-way set-associative organizations,
// LRU and FIFO replacement, and write-through/write-back with
// write-allocate/no-allocate policies, with full hit/miss/eviction/traffic
// statistics.
package cache

import (
	"fmt"
	"math/bits"
	"strings"

	"cs31/internal/memhier"
)

// WritePolicy selects how writes propagate to memory.
type WritePolicy int

// Write policies.
const (
	WriteBack    WritePolicy = iota // dirty lines written back on eviction
	WriteThrough                    // every store also writes memory
)

func (p WritePolicy) String() string {
	if p == WriteBack {
		return "write-back"
	}
	return "write-through"
}

// AllocPolicy selects what happens on a write miss.
type AllocPolicy int

// Allocation policies.
const (
	WriteAllocate   AllocPolicy = iota // write misses fill the cache
	NoWriteAllocate                    // write misses go straight to memory
)

func (p AllocPolicy) String() string {
	if p == WriteAllocate {
		return "write-allocate"
	}
	return "no-write-allocate"
}

// ReplPolicy selects the victim within a set.
type ReplPolicy int

// Replacement policies.
const (
	LRU ReplPolicy = iota
	FIFO
)

func (p ReplPolicy) String() string {
	if p == LRU {
		return "LRU"
	}
	return "FIFO"
}

// Config describes a cache organization the way the homework does: total
// size, block size, and associativity (1 = direct-mapped).
type Config struct {
	SizeBytes int // total data capacity
	BlockSize int // bytes per line
	Assoc     int // ways per set; 1 = direct-mapped
	Write     WritePolicy
	Alloc     AllocPolicy
	Repl      ReplPolicy
}

// Validate checks the power-of-two structure address division requires.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.BlockSize <= 0 || c.Assoc <= 0 {
		return fmt.Errorf("cache: size, block size, and associativity must be positive")
	}
	if c.BlockSize&(c.BlockSize-1) != 0 {
		return fmt.Errorf("cache: block size %d is not a power of two", c.BlockSize)
	}
	if c.SizeBytes%(c.BlockSize*c.Assoc) != 0 {
		return fmt.Errorf("cache: size %d not divisible by block*assoc %d",
			c.SizeBytes, c.BlockSize*c.Assoc)
	}
	sets := c.NumSets()
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d is not a power of two", sets)
	}
	return nil
}

// NumSets is the number of sets: size / (blockSize * assoc).
func (c Config) NumSets() int { return c.SizeBytes / (c.BlockSize * c.Assoc) }

// OffsetBits is the number of block-offset bits in an address.
func (c Config) OffsetBits() int { return bits.TrailingZeros64(uint64(c.BlockSize)) }

// IndexBits is the number of set-index bits in an address.
func (c Config) IndexBits() int { return bits.TrailingZeros64(uint64(c.NumSets())) }

// AddressParts is the tag/index/offset division of one address — the
// homework's core skill.
type AddressParts struct {
	Tag    uint64
	Index  uint64
	Offset uint64
}

// Split divides an address into tag, index, and offset fields.
func (c Config) Split(addr uint64) AddressParts {
	ob := uint(c.OffsetBits())
	ib := uint(c.IndexBits())
	return AddressParts{
		Offset: addr & (uint64(c.BlockSize) - 1),
		Index:  (addr >> ob) & (uint64(c.NumSets()) - 1),
		Tag:    addr >> (ob + ib),
	}
}

// Join reassembles an address from its parts (inverse of Split).
func (c Config) Join(p AddressParts) uint64 {
	ob := uint(c.OffsetBits())
	ib := uint(c.IndexBits())
	return p.Tag<<(ob+ib) | p.Index<<ob | p.Offset
}

// line is one cache line's metadata. Lines of one set form an intrusive
// doubly-linked recency list (prev/next are indices into Cache.lines):
// head = most recent, tail = the replacement victim. LRU moves a line to the
// head on every access; FIFO only on fill, so the tail is the oldest fill.
type line struct {
	valid bool
	dirty bool
	tag   uint64
	prev  int32
	next  int32
}

// Stats counts the events the homework has students tabulate.
type Stats struct {
	Accesses   int64
	Hits       int64
	Misses     int64
	Evictions  int64
	WriteBacks int64 // dirty lines written back to memory
	MemReads   int64 // block fills from memory
	MemWrites  int64 // word writes to memory (write-through / no-allocate)
}

// HitRate is Hits / Accesses.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// MissRate is 1 - HitRate for non-empty traces.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Result describes a single access's outcome, for the step-by-step tracing
// exercises.
type Result struct {
	Hit         bool
	Parts       AddressParts
	Evicted     bool
	EvictedTag  uint64
	WroteBack   bool
	FilledBlock bool
}

// Cache is a simulated cache. Lines live in one flat slice (set s occupies
// lines[s*assoc : (s+1)*assoc]) so a set lookup is one index computation,
// and the tag/index/offset field widths are resolved once at construction
// instead of per access.
type Cache struct {
	cfg   Config
	stats Stats

	lines []line  // numSets × assoc, flat
	head  []int32 // per-set most-recent line index
	tail  []int32 // per-set replacement victim line index
	// fill counts each set's valid ways. Invariant: ways fill
	// lowest-index-first, so lines[s*assoc : s*assoc+fill[s]] are exactly
	// the valid lines of set s. Any new invalidation path must reset fill
	// and the recency list (as Flush does) to preserve this.
	fill []int32

	assoc      int
	offsetBits uint
	indexBits  uint
	offsetMask uint64
	indexMask  uint64
	isLRU      bool
	writeBack  bool
	allocWrite bool
}

// New builds a cache from a validated config.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ns := cfg.NumSets()
	c := &Cache{
		cfg:        cfg,
		lines:      make([]line, ns*cfg.Assoc),
		head:       make([]int32, ns),
		tail:       make([]int32, ns),
		fill:       make([]int32, ns),
		assoc:      cfg.Assoc,
		offsetBits: uint(cfg.OffsetBits()),
		indexBits:  uint(cfg.IndexBits()),
		offsetMask: uint64(cfg.BlockSize) - 1,
		indexMask:  uint64(ns) - 1,
		isLRU:      cfg.Repl == LRU,
		writeBack:  cfg.Write == WriteBack,
		allocWrite: cfg.Alloc == WriteAllocate,
	}
	c.resetOrder()
	return c, nil
}

// resetOrder relinks every set's recency list to way order 0..assoc-1.
func (c *Cache) resetOrder() {
	for s := 0; s < len(c.head); s++ {
		base := int32(s * c.assoc)
		c.head[s] = base
		c.tail[s] = base + int32(c.assoc) - 1
		for w := int32(0); w < int32(c.assoc); w++ {
			c.lines[base+w].prev = base + w - 1
			c.lines[base+w].next = base + w + 1
		}
		c.lines[base].prev = -1
		c.lines[base+int32(c.assoc)-1].next = -1
	}
}

// touch moves line li to the head (most recent) of set s's recency list.
func (c *Cache) touch(s uint64, li int32) {
	if c.head[s] == li {
		return
	}
	l := &c.lines[li]
	// Unlink.
	c.lines[l.prev].next = l.next
	if l.next >= 0 {
		c.lines[l.next].prev = l.prev
	} else {
		c.tail[s] = l.prev
	}
	// Relink at head.
	l.prev = -1
	l.next = c.head[s]
	c.lines[c.head[s]].prev = li
	c.head[s] = li
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// Access simulates one reference and returns its outcome.
func (c *Cache) Access(addr uint64, write bool) Result {
	c.stats.Accesses++
	off := addr & c.offsetMask
	idx := (addr >> c.offsetBits) & c.indexMask
	tag := addr >> (c.offsetBits + c.indexBits)
	res := Result{Parts: AddressParts{Tag: tag, Index: idx, Offset: off}}
	base := int32(idx) * int32(c.assoc)
	set := c.lines[base : base+c.fill[idx]]

	// Hit? Only the filled prefix of the set can match: ways fill
	// lowest-index-first, and today only Flush invalidates (resetting fill).
	// The valid check is cheap insurance against a future single-line
	// invalidation path leaving a stale tag inside the filled prefix.
	for w := range set {
		if set[w].valid && set[w].tag == tag {
			c.stats.Hits++
			res.Hit = true
			if c.isLRU {
				c.touch(idx, base+int32(w))
			}
			if write {
				if c.writeBack {
					set[w].dirty = true
				} else {
					c.stats.MemWrites++
				}
			}
			return res
		}
	}

	// Miss.
	c.stats.Misses++
	if write && !c.allocWrite {
		c.stats.MemWrites++
		return res
	}

	// Choose a victim: first invalid way, else the recency-list tail (least
	// recently used under LRU, oldest fill under FIFO).
	var victim int32
	if c.fill[idx] < int32(c.assoc) {
		victim = base + c.fill[idx]
		c.fill[idx]++
	} else {
		victim = c.tail[idx]
		c.stats.Evictions++
		res.Evicted = true
		res.EvictedTag = c.lines[victim].tag
		if c.lines[victim].dirty {
			c.stats.WriteBacks++
			res.WroteBack = true
		}
	}

	// Fill: both policies stamp recency at fill time.
	c.stats.MemReads++
	res.FilledBlock = true
	l := &c.lines[victim]
	l.valid = true
	l.tag = tag
	l.dirty = write && c.writeBack
	if write && !c.writeBack {
		c.stats.MemWrites++
	}
	c.touch(idx, victim)
	return res
}

// Contains reports whether the block holding addr is resident — used by the
// property tests for the "most recent access is cached" invariant.
func (c *Cache) Contains(addr uint64) bool {
	idx := (addr >> c.offsetBits) & c.indexMask
	tag := addr >> (c.offsetBits + c.indexBits)
	base := int32(idx) * int32(c.assoc)
	for li := base; li < base+c.fill[idx]; li++ {
		if c.lines[li].valid && c.lines[li].tag == tag {
			return true
		}
	}
	return false
}

// DirtyLines counts resident dirty lines (write-back only).
func (c *Cache) DirtyLines() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid && c.lines[i].dirty {
			n++
		}
	}
	return n
}

// ValidLines counts resident lines.
func (c *Cache) ValidLines() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid {
			n++
		}
	}
	return n
}

// Flush writes back all dirty lines and invalidates the cache.
func (c *Cache) Flush() {
	for i := range c.lines {
		if c.lines[i].valid && c.lines[i].dirty {
			c.stats.WriteBacks++
		}
		c.lines[i] = line{}
	}
	for i := range c.fill {
		c.fill[i] = 0
	}
	c.resetOrder()
}

// RunTrace replays a trace and returns the final statistics.
func (c *Cache) RunTrace(trace []memhier.Access) Stats {
	for _, a := range trace {
		c.Access(a.Addr, a.Write)
	}
	return c.stats
}

// TraceTable renders the first n accesses of a trace as the hit/miss table
// students fill in on the caching homework.
func TraceTable(cfg Config, trace []memhier.Access, n int) (string, error) {
	c, err := New(cfg)
	if err != nil {
		return "", err
	}
	if n > len(trace) {
		n = len(trace)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %-6s %-8s %-8s %-8s %s\n",
		"address", "rw", "tag", "index", "offset", "result")
	for _, a := range trace[:n] {
		res := c.Access(a.Addr, a.Write)
		rw := "read"
		if a.Write {
			rw = "write"
		}
		outcome := "MISS"
		if res.Hit {
			outcome = "hit"
		}
		if res.Evicted {
			outcome += fmt.Sprintf(" (evict tag %#x", res.EvictedTag)
			if res.WroteBack {
				outcome += ", write back"
			}
			outcome += ")"
		}
		fmt.Fprintf(&sb, "%#-12x %-6s %#-8x %#-8x %#-8x %s\n",
			a.Addr, rw, res.Parts.Tag, res.Parts.Index, res.Parts.Offset, outcome)
	}
	return sb.String(), nil
}
