package cache

// Model-based testing: the cache is checked against an independent,
// obviously-correct reference model (per-set slices with explicit
// recency/insertion order) over long random access sequences. Any
// divergence in hit/miss classification or eviction choice fails.

import (
	"math/rand"
	"testing"
)

// refCache is the reference model: one slice of tags per set, most
// recently used (or most recently inserted, for FIFO) last.
type refCache struct {
	cfg  Config
	sets [][]uint64
}

func newRef(cfg Config) *refCache {
	return &refCache{cfg: cfg, sets: make([][]uint64, cfg.NumSets())}
}

// access returns whether the reference model hits, applying the same
// policies by construction.
func (r *refCache) access(addr uint64) bool {
	p := r.cfg.Split(addr)
	set := r.sets[p.Index]
	for i, tag := range set {
		if tag == p.Tag {
			if r.cfg.Repl == LRU {
				// Move to the MRU end.
				set = append(append(set[:i:i], set[i+1:]...), tag)
				r.sets[p.Index] = set
			}
			return true
		}
	}
	// Miss: evict the front (LRU or FIFO order) if full.
	if len(set) == r.cfg.Assoc {
		set = set[1:]
	}
	r.sets[p.Index] = append(set, p.Tag)
	return false
}

func TestCacheMatchesReferenceModel(t *testing.T) {
	configs := []Config{
		{SizeBytes: 256, BlockSize: 16, Assoc: 1},
		{SizeBytes: 256, BlockSize: 16, Assoc: 2},
		{SizeBytes: 512, BlockSize: 32, Assoc: 4},
		{SizeBytes: 128, BlockSize: 16, Assoc: 8}, // fully associative
		{SizeBytes: 256, BlockSize: 16, Assoc: 2, Repl: FIFO},
		{SizeBytes: 512, BlockSize: 64, Assoc: 4, Repl: FIFO},
	}
	for _, cfg := range configs {
		c, err := New(cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		ref := newRef(cfg)
		rng := rand.New(rand.NewSource(31))
		for i := 0; i < 20000; i++ {
			// Skewed address distribution to get plenty of hits AND
			// evictions.
			addr := uint64(rng.Intn(2048))
			if rng.Intn(4) == 0 {
				addr = uint64(rng.Intn(64)) // hot region
			}
			got := c.Access(addr, rng.Intn(3) == 0).Hit
			want := ref.access(addr)
			if got != want {
				t.Fatalf("%+v: access %d (addr %#x): sim hit=%v, model hit=%v",
					cfg, i, addr, got, want)
			}
		}
		// Final stats sanity.
		s := c.Stats()
		if s.Hits+s.Misses != s.Accesses || s.Accesses != 20000 {
			t.Errorf("%+v: stats inconsistent: %+v", cfg, s)
		}
	}
}

// TestWriteBackTrafficConservation: with write-back + write-allocate,
// every memory write is a prior dirty fill, so writebacks never exceed
// write accesses, and flushing accounts for every remaining dirty line.
func TestWriteBackTrafficConservation(t *testing.T) {
	cfg := Config{SizeBytes: 256, BlockSize: 16, Assoc: 2}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	writes := int64(0)
	for i := 0; i < 10000; i++ {
		w := rng.Intn(2) == 0
		if w {
			writes++
		}
		c.Access(uint64(rng.Intn(4096)), w)
	}
	preFlush := c.Stats().WriteBacks
	dirty := int64(c.DirtyLines())
	c.Flush()
	if got := c.Stats().WriteBacks; got != preFlush+dirty {
		t.Errorf("flush wrote back %d, expected %d", got-preFlush, dirty)
	}
	if c.Stats().WriteBacks > writes {
		t.Errorf("writebacks %d exceed total writes %d", c.Stats().WriteBacks, writes)
	}
}

func BenchmarkCacheLRUvsFIFO(b *testing.B) {
	trace := make([]uint64, 4096)
	rng := rand.New(rand.NewSource(7))
	for i := range trace {
		trace[i] = uint64(rng.Intn(1 << 14))
	}
	for _, repl := range []ReplPolicy{LRU, FIFO} {
		repl := repl
		b.Run(repl.String(), func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				c, err := New(Config{SizeBytes: 4096, BlockSize: 64, Assoc: 4, Repl: repl})
				if err != nil {
					b.Fatal(err)
				}
				for _, a := range trace {
					c.Access(a, false)
				}
				rate = c.Stats().HitRate()
			}
			b.ReportMetric(rate*100, "hit-%")
		})
	}
}

func BenchmarkCacheWritePolicies(b *testing.B) {
	for _, wp := range []WritePolicy{WriteBack, WriteThrough} {
		wp := wp
		b.Run(wp.String(), func(b *testing.B) {
			var memWrites int64
			for i := 0; i < b.N; i++ {
				c, err := New(Config{SizeBytes: 1024, BlockSize: 64, Assoc: 2, Write: wp})
				if err != nil {
					b.Fatal(err)
				}
				// Write-heavy loop over a resident working set: write-back
				// coalesces, write-through pays per store.
				for round := 0; round < 16; round++ {
					for addr := uint64(0); addr < 512; addr += 4 {
						c.Access(addr, true)
					}
				}
				c.Flush()
				memWrites = c.Stats().MemWrites + c.Stats().WriteBacks
			}
			b.ReportMetric(float64(memWrites), "mem-writes")
		})
	}
}
