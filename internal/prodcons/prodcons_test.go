package prodcons

import (
	"errors"
	"sort"
	"testing"
	"time"

	"cs31/internal/pthread"
)

func checkExactlyOnce(t *testing.T, res *Result) {
	t.Helper()
	if len(res.Consumed) != res.Produced {
		t.Fatalf("consumed %d of %d", len(res.Consumed), res.Produced)
	}
	sorted := append([]int(nil), res.Consumed...)
	sort.Ints(sorted)
	for i, v := range sorted {
		if v != i {
			t.Fatalf("value %d missing or duplicated (slot %d holds %d)", i, i, v)
		}
	}
}

func TestBoundedBufferExactlyOnce(t *testing.T) {
	for _, shape := range []struct{ prod, cons, per int }{
		{1, 1, 100}, {4, 1, 50}, {1, 4, 200}, {4, 4, 100}, {3, 5, 77},
	} {
		buf, err := NewBounded(8)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(buf, shape.prod, shape.cons, shape.per)
		if err != nil {
			t.Fatalf("%+v: %v", shape, err)
		}
		checkExactlyOnce(t, res)
	}
}

func TestChanBufferExactlyOnce(t *testing.T) {
	buf, err := NewChan(8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(buf, 4, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	checkExactlyOnce(t, res)
}

// TestManyProducersManyConsumersExactlyOnce drives both buffer
// implementations through heavier N x M pools over a deliberately small
// buffer, so every shape spends most of its time blocked on not-full or
// not-empty: the high-contention regime where a lost wakeup or double
// delivery would actually surface (and, under -race, where the mutex and
// condition-variable discipline is checked on every handoff).
func TestManyProducersManyConsumersExactlyOnce(t *testing.T) {
	impls := []struct {
		name string
		mk   func(capacity int) (Buffer, error)
	}{
		{"bounded", func(c int) (Buffer, error) { return NewBounded(c) }},
		{"chan", func(c int) (Buffer, error) { return NewChan(c) }},
	}
	shapes := []struct{ prod, cons, per int }{
		{2, 8, 120}, {8, 2, 30}, {8, 8, 60}, {6, 3, 99},
	}
	for _, impl := range impls {
		for _, shape := range shapes {
			buf, err := impl.mk(4)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(buf, shape.prod, shape.cons, shape.per)
			if err != nil {
				t.Fatalf("%s %+v: %v", impl.name, shape, err)
			}
			if res.Produced != shape.prod*shape.per {
				t.Fatalf("%s %+v: produced %d, want %d", impl.name, shape, res.Produced, shape.prod*shape.per)
			}
			checkExactlyOnce(t, res)
		}
	}
}

func TestTinyBufferForcesBlocking(t *testing.T) {
	// Capacity 1 forces producers and consumers to alternate.
	buf, err := NewBounded(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(buf, 2, 2, 50)
	if err != nil {
		t.Fatal(err)
	}
	checkExactlyOnce(t, res)
}

func TestSingleProducerFIFO(t *testing.T) {
	// With one producer and one consumer the bounded buffer must preserve
	// order exactly.
	buf, err := NewBounded(4)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan []int)
	consumer := pthread.Create(func() interface{} {
		var got []int
		for {
			v, err := buf.Get()
			if errors.Is(err, ErrClosed) {
				done <- got
				return nil
			}
			if err != nil {
				t.Error(err)
				done <- got
				return nil
			}
			got = append(got, v)
		}
	})
	for i := 0; i < 100; i++ {
		if err := buf.Put(i); err != nil {
			t.Fatal(err)
		}
	}
	// Give the consumer time to drain, then close.
	for buf.Len() > 0 {
		time.Sleep(time.Millisecond)
	}
	buf.Close()
	got := <-done
	consumer.Join()
	if len(got) != 100 {
		t.Fatalf("consumed %d", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("order violated at %d: %d", i, v)
		}
	}
}

func TestCloseUnblocksWaiters(t *testing.T) {
	buf, err := NewBounded(1)
	if err != nil {
		t.Fatal(err)
	}
	// A consumer blocked on an empty buffer...
	waiter := pthread.Create(func() interface{} {
		_, err := buf.Get()
		return err
	})
	time.Sleep(5 * time.Millisecond)
	buf.Close()
	v, err := waiter.Join()
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(v.(error), ErrClosed) {
		t.Errorf("blocked Get after close: %v", v)
	}
	// Put on a closed buffer errors too.
	if err := buf.Put(1); !errors.Is(err, ErrClosed) {
		t.Errorf("Put after close: %v", err)
	}
}

func TestCloseDrainsRemaining(t *testing.T) {
	buf, err := NewBounded(4)
	if err != nil {
		t.Fatal(err)
	}
	buf.Put(1)
	buf.Put(2)
	buf.Close()
	if v, err := buf.Get(); err != nil || v != 1 {
		t.Errorf("Get after close = %d, %v", v, err)
	}
	if v, err := buf.Get(); err != nil || v != 2 {
		t.Errorf("second Get = %d, %v", v, err)
	}
	if _, err := buf.Get(); !errors.Is(err, ErrClosed) {
		t.Errorf("drained Get: %v", err)
	}
}

func TestValidation(t *testing.T) {
	if _, err := NewBounded(0); err == nil {
		t.Error("zero capacity should fail")
	}
	if _, err := NewChan(0); err == nil {
		t.Error("zero chan capacity should fail")
	}
	buf, _ := NewBounded(1)
	if _, err := Run(buf, 0, 1, 1); err == nil {
		t.Error("zero producers should fail")
	}
}

func TestBufferLen(t *testing.T) {
	buf, _ := NewBounded(4)
	if buf.Len() != 0 {
		t.Error("new buffer should be empty")
	}
	buf.Put(9)
	if buf.Len() != 1 {
		t.Errorf("len = %d", buf.Len())
	}
}

func TestChanPutAfterClose(t *testing.T) {
	buf, _ := NewChan(2)
	buf.Put(1)
	buf.Close()
	if err := buf.Put(2); !errors.Is(err, ErrClosed) {
		t.Errorf("Put after close: %v", err)
	}
	// The item put before close is still retrievable.
	if v, err := buf.Get(); err != nil || v != 1 {
		t.Errorf("Get = %d, %v", v, err)
	}
}

func BenchmarkBoundedBuffer(b *testing.B) {
	buf, err := NewBounded(64)
	if err != nil {
		b.Fatal(err)
	}
	go func() {
		for {
			if _, err := buf.Get(); err != nil {
				return
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := buf.Put(i); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	buf.Close()
}

func BenchmarkChanBuffer(b *testing.B) {
	buf, err := NewChan(64)
	if err != nil {
		b.Fatal(err)
	}
	go func() {
		for {
			if _, err := buf.Get(); err != nil {
				return
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := buf.Put(i); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	buf.Close()
}
