// Package prodcons implements the producer/consumer (bounded buffer)
// problem that closes CS 31's synchronization module: a fixed-capacity
// buffer guarded by a mutex with two condition variables (not-full,
// not-empty), exercised by configurable producer and consumer thread
// pools. A channel-based implementation of the same interface serves as a
// behavioural reference in tests.
package prodcons

import (
	"errors"
	"fmt"

	"cs31/internal/pthread"
)

// ErrClosed is returned by Put on a closed buffer, and by Get once a
// closed buffer has drained.
var ErrClosed = errors.New("prodcons: buffer closed")

// Buffer is the interface both implementations satisfy.
type Buffer interface {
	Put(v int) error
	Get() (int, error)
	Close()
}

// BoundedBuffer is the mutex+condition-variable bounded buffer from
// lecture: a circular array, a not-full condition producers wait on, and a
// not-empty condition consumers wait on.
type BoundedBuffer struct {
	mu       *pthread.Mutex
	notFull  *pthread.Cond
	notEmpty *pthread.Cond
	items    []int
	head     int // next slot to read
	count    int // items in the buffer
	closed   bool
}

// NewBounded creates a bounded buffer with the given capacity.
func NewBounded(capacity int) (*BoundedBuffer, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("prodcons: capacity %d invalid", capacity)
	}
	b := &BoundedBuffer{
		mu:    pthread.NewMutex("prodcons"),
		items: make([]int, capacity),
	}
	b.notFull = pthread.NewCond(b.mu)
	b.notEmpty = pthread.NewCond(b.mu)
	return b, nil
}

// Put appends an item, blocking while the buffer is full.
func (b *BoundedBuffer) Put(v int) error {
	if err := b.mu.Lock(); err != nil {
		return err
	}
	defer b.mu.Unlock()
	for b.count == len(b.items) && !b.closed {
		b.notFull.Wait()
	}
	if b.closed {
		return ErrClosed
	}
	b.items[(b.head+b.count)%len(b.items)] = v
	b.count++
	b.notEmpty.Signal()
	return nil
}

// Get removes the oldest item, blocking while the buffer is empty.
func (b *BoundedBuffer) Get() (int, error) {
	if err := b.mu.Lock(); err != nil {
		return 0, err
	}
	defer b.mu.Unlock()
	for b.count == 0 && !b.closed {
		b.notEmpty.Wait()
	}
	if b.count == 0 && b.closed {
		return 0, ErrClosed
	}
	v := b.items[b.head]
	b.head = (b.head + 1) % len(b.items)
	b.count--
	b.notFull.Signal()
	return v, nil
}

// Close wakes all waiters; Get drains remaining items first.
func (b *BoundedBuffer) Close() {
	if err := b.mu.Lock(); err != nil {
		return
	}
	defer b.mu.Unlock()
	b.closed = true
	b.notFull.Broadcast()
	b.notEmpty.Broadcast()
}

// Len reports the current item count.
func (b *BoundedBuffer) Len() int {
	if err := b.mu.Lock(); err != nil {
		return 0
	}
	defer b.mu.Unlock()
	return b.count
}

// ChanBuffer is the Go-native reference: a buffered channel.
type ChanBuffer struct {
	ch     chan int
	closed chan struct{}
}

// NewChan creates a channel-backed buffer with the given capacity.
func NewChan(capacity int) (*ChanBuffer, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("prodcons: capacity %d invalid", capacity)
	}
	return &ChanBuffer{ch: make(chan int, capacity), closed: make(chan struct{})}, nil
}

// Put appends an item, blocking while full.
func (c *ChanBuffer) Put(v int) error {
	select {
	case <-c.closed:
		return ErrClosed
	default:
	}
	select {
	case c.ch <- v:
		return nil
	case <-c.closed:
		return ErrClosed
	}
}

// Get removes the oldest item, blocking while empty.
func (c *ChanBuffer) Get() (int, error) {
	select {
	case v := <-c.ch:
		return v, nil
	case <-c.closed:
		// Drain anything racing with close.
		select {
		case v := <-c.ch:
			return v, nil
		default:
			return 0, ErrClosed
		}
	}
}

// Close wakes all waiters.
func (c *ChanBuffer) Close() { close(c.closed) }

// Result summarizes a producer/consumer run.
type Result struct {
	Produced int
	Consumed []int // every value consumed, in consumption order per run
}

// Run drives producers and consumers over a buffer: producers [0, nProd)
// each put items [id*perProd, (id+1)*perProd); consumers drain everything.
// It returns every consumed value, which tests check for exactly-once
// delivery.
func Run(buf Buffer, nProd, nCons, perProd int) (*Result, error) {
	if nProd < 1 || nCons < 1 || perProd < 1 {
		return nil, fmt.Errorf("prodcons: counts must be positive")
	}
	total := nProd * perProd

	producers := make([]*pthread.Thread, nProd)
	for id := 0; id < nProd; id++ {
		lo := id * perProd
		producers[id] = pthread.Create(func() interface{} {
			for i := 0; i < perProd; i++ {
				if err := buf.Put(lo + i); err != nil {
					return err
				}
			}
			return nil
		})
	}

	consumed := make(chan int, total)
	consumers := make([]*pthread.Thread, nCons)
	for id := 0; id < nCons; id++ {
		consumers[id] = pthread.Create(func() interface{} {
			for {
				v, err := buf.Get()
				if errors.Is(err, ErrClosed) {
					return nil
				}
				if err != nil {
					return err
				}
				consumed <- v
			}
		})
	}

	for _, p := range producers {
		v, err := p.Join()
		if err != nil {
			return nil, err
		}
		if e, ok := v.(error); ok && e != nil {
			return nil, e
		}
	}
	// Wait for all items to be consumed, then release the consumers.
	res := &Result{Produced: total}
	for len(res.Consumed) < total {
		res.Consumed = append(res.Consumed, <-consumed)
	}
	buf.Close()
	for _, c := range consumers {
		v, err := c.Join()
		if err != nil {
			return nil, err
		}
		if e, ok := v.(error); ok && e != nil {
			return nil, e
		}
	}
	return res, nil
}
