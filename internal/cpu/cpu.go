// Package cpu implements the simple CPU that CS 31 builds on top of the
// Lab 3 ALU: a register file, program counter, instruction register, and
// control circuitry that execute a small 16-bit instruction set through the
// fetch, decode, execute, store cycle, one clock phase at a time. It also
// provides the analytic pipelining model the course uses to show how
// pipelining improves instructions per cycle.
//
// Instruction word layout (16 bits):
//
//	op[15:12] rd[11:9] rs[8:6] rt[5:3] unused[2:0]   (register form)
//	op[15:12] rd[11:9] imm9[8:0]                      (immediate form)
//	op[15:12] target12[11:0]                          (jump form)
//
// The ALU operations reuse the exact opcode ordering of the Lab 3 ALU so
// the control unit can pass op[2:0] straight to the ALU select lines.
package cpu

import (
	"errors"
	"fmt"

	"cs31/internal/circuit"
)

// NumRegs is the number of general-purpose registers (r0..r7).
const NumRegs = 8

// MemWords is the size of instruction/data memory in 16-bit words.
const MemWords = 4096

// Opcode identifies one machine instruction.
type Opcode uint16

// The instruction set. The first eight opcodes are the ALU operations in
// Lab 3's opcode order, so Opcode&7 is the ALU select for those.
const (
	OpAdd   Opcode = iota // rd = rs + rt
	OpSub                 // rd = rs - rt
	OpAnd                 // rd = rs & rt
	OpOr                  // rd = rs | rt
	OpXor                 // rd = rs ^ rt
	OpNot                 // rd = ~rs
	OpShl                 // rd = rs << 1
	OpShr                 // rd = rs >> 1
	OpLoadI               // rd = signext(imm9)
	OpLoad                // rd = mem[rs]
	OpStore               // mem[rs] = rd
	OpBeqz                // if rd == 0 { pc += signext(imm9) }
	OpJmp                 // pc = target12
	OpHalt                // stop the clock
)

var opcodeNames = [...]string{
	"ADD", "SUB", "AND", "OR", "XOR", "NOT", "SHL", "SHR",
	"LOADI", "LOAD", "STORE", "BEQZ", "JMP", "HALT",
}

func (op Opcode) String() string {
	if int(op) < len(opcodeNames) {
		return opcodeNames[op]
	}
	return fmt.Sprintf("Opcode(%d)", uint16(op))
}

// Instr is a decoded instruction.
type Instr struct {
	Op         Opcode
	Rd, Rs, Rt int
	Imm        int16  // sign-extended 9-bit immediate
	Target     uint16 // 12-bit jump target
}

// Encode packs an instruction into a 16-bit word.
func Encode(in Instr) (uint16, error) {
	if in.Op > OpHalt {
		return 0, fmt.Errorf("cpu: invalid opcode %d", in.Op)
	}
	checkReg := func(r int) error {
		if r < 0 || r >= NumRegs {
			return fmt.Errorf("cpu: register r%d out of range", r)
		}
		return nil
	}
	w := uint16(in.Op) << 12
	switch in.Op {
	case OpJmp:
		if in.Target >= 1<<12 {
			return 0, fmt.Errorf("cpu: jump target %d out of range", in.Target)
		}
		return w | in.Target, nil
	case OpLoadI, OpBeqz:
		if err := checkReg(in.Rd); err != nil {
			return 0, err
		}
		if in.Imm < -256 || in.Imm > 255 {
			return 0, fmt.Errorf("cpu: immediate %d out of 9-bit range", in.Imm)
		}
		return w | uint16(in.Rd)<<9 | uint16(in.Imm)&0x1ff, nil
	case OpHalt:
		return w, nil
	default: // register form
		for _, r := range []int{in.Rd, in.Rs, in.Rt} {
			if err := checkReg(r); err != nil {
				return 0, err
			}
		}
		return w | uint16(in.Rd)<<9 | uint16(in.Rs)<<6 | uint16(in.Rt)<<3, nil
	}
}

// Decode unpacks a 16-bit word into an instruction.
func Decode(w uint16) (Instr, error) {
	op := Opcode(w >> 12)
	if op > OpHalt {
		return Instr{}, fmt.Errorf("cpu: invalid opcode %d in word %#04x", op, w)
	}
	in := Instr{Op: op}
	switch op {
	case OpJmp:
		in.Target = w & 0xfff
	case OpLoadI, OpBeqz:
		in.Rd = int(w >> 9 & 7)
		imm := w & 0x1ff
		if imm&0x100 != 0 { // sign-extend 9 bits
			in.Imm = int16(imm) - 512
		} else {
			in.Imm = int16(imm)
		}
	case OpHalt:
	default:
		in.Rd = int(w >> 9 & 7)
		in.Rs = int(w >> 6 & 7)
		in.Rt = int(w >> 3 & 7)
	}
	return in, nil
}

// String renders the instruction in assembly form.
func (in Instr) String() string {
	switch in.Op {
	case OpJmp:
		return fmt.Sprintf("JMP %d", in.Target)
	case OpLoadI:
		return fmt.Sprintf("LOADI r%d, %d", in.Rd, in.Imm)
	case OpBeqz:
		return fmt.Sprintf("BEQZ r%d, %d", in.Rd, in.Imm)
	case OpHalt:
		return "HALT"
	case OpNot, OpShl, OpShr:
		return fmt.Sprintf("%s r%d, r%d", in.Op, in.Rd, in.Rs)
	case OpLoad, OpStore:
		return fmt.Sprintf("%s r%d, r%d", in.Op, in.Rd, in.Rs)
	default:
		return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.Rd, in.Rs, in.Rt)
	}
}

// Stage is one of the four instruction execution stages the course teaches.
type Stage int

// The four stages of the instruction execution cycle.
const (
	Fetch Stage = iota
	DecodeStage
	Execute
	Store
)

func (s Stage) String() string {
	return [...]string{"Fetch", "Decode", "Execute", "Store"}[s]
}

// ErrHalted is returned by Step once the CPU has executed HALT.
var ErrHalted = errors.New("cpu: halted")

// Machine is the simple CPU: registers, PC, IR, memory, and a clock that
// drives the four-stage execution cycle. When GateALU is true the execute
// stage routes arithmetic through the gate-level circuit ALU instead of the
// functional reference — slower, but it demonstrates that the Lab 3 circuit
// really is the datapath.
type Machine struct {
	Regs  [NumRegs]uint16
	PC    uint16
	IR    uint16
	Mem   [MemWords]uint16
	Flags circuit.Flags

	Cycles  int64 // clock cycles consumed (4 per instruction)
	Retired int64 // instructions completed
	Halted  bool

	GateALU bool

	gateCkt *circuit.Circuit
	gateALU *circuit.ALU

	stage   Stage
	current Instr
	aluOut  uint16
	memOut  uint16
	nextPC  uint16
}

// New returns a machine with zeroed state.
func New() *Machine { return &Machine{} }

// EnableGateALU switches the execute stage onto a gate-level 16-bit ALU.
func (m *Machine) EnableGateALU() {
	m.gateCkt = circuit.New()
	m.gateALU = circuit.NewALU(m.gateCkt, 16)
	m.gateCkt.Compile() // front-load plan construction off the Step hot path
	m.GateALU = true
}

// LoadProgram encodes and writes a program into memory starting at word 0
// and resets the PC.
func (m *Machine) LoadProgram(prog []Instr) error {
	if len(prog) > MemWords {
		return fmt.Errorf("cpu: program of %d words exceeds memory", len(prog))
	}
	for i, in := range prog {
		w, err := Encode(in)
		if err != nil {
			return fmt.Errorf("cpu: instruction %d (%v): %w", i, in, err)
		}
		m.Mem[i] = w
	}
	m.PC = 0
	m.Halted = false
	m.stage = Fetch
	return nil
}

// alu dispatches to the gate-level or reference ALU.
func (m *Machine) alu(op circuit.ALUOp, a, b uint16) (uint16, circuit.Flags, error) {
	if m.GateALU {
		res, f, err := m.gateALU.Run(m.gateCkt, op, uint64(a), uint64(b))
		return uint16(res), f, err
	}
	res, f := circuit.RefALU(op, uint64(a), uint64(b), 16)
	return uint16(res), f, nil
}

// Tick advances the clock one cycle, performing the current stage of the
// current instruction. Four ticks complete one instruction.
func (m *Machine) Tick() error {
	if m.Halted {
		return ErrHalted
	}
	m.Cycles++
	switch m.stage {
	case Fetch:
		m.IR = m.Mem[m.PC%MemWords]
		m.nextPC = m.PC + 1
		m.stage = DecodeStage
	case DecodeStage:
		in, err := Decode(m.IR)
		if err != nil {
			m.Halted = true
			return err
		}
		m.current = in
		m.stage = Execute
	case Execute:
		if err := m.execute(); err != nil {
			m.Halted = true
			return err
		}
		m.stage = Store
	case Store:
		m.store()
		m.PC = m.nextPC
		m.Retired++
		m.stage = Fetch
		if m.Halted {
			return ErrHalted
		}
	}
	return nil
}

func (m *Machine) execute() error {
	in := m.current
	switch in.Op {
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpNot, OpShl, OpShr:
		a := m.Regs[in.Rs]
		b := m.Regs[in.Rt]
		out, f, err := m.alu(circuit.ALUOp(in.Op&7), a, b)
		if err != nil {
			return err
		}
		m.aluOut = out
		m.Flags = f
	case OpLoadI:
		m.aluOut = uint16(in.Imm)
	case OpLoad:
		m.memOut = m.Mem[m.Regs[in.Rs]%MemWords]
	case OpStore:
		// effective address computed here; write happens in store stage
	case OpBeqz:
		if m.Regs[in.Rd] == 0 {
			m.nextPC = uint16(int32(m.nextPC) + int32(in.Imm))
		}
	case OpJmp:
		m.nextPC = in.Target
	case OpHalt:
	}
	return nil
}

func (m *Machine) store() {
	in := m.current
	switch in.Op {
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpNot, OpShl, OpShr, OpLoadI:
		m.Regs[in.Rd] = m.aluOut
	case OpLoad:
		m.Regs[in.Rd] = m.memOut
	case OpStore:
		m.Mem[m.Regs[in.Rs]%MemWords] = m.Regs[in.Rd]
	case OpHalt:
		m.Halted = true
	}
	// r0 is hardwired to zero, like many teaching ISAs.
	m.Regs[0] = 0
}

// StepInstr runs the four clock phases of one complete instruction.
func (m *Machine) StepInstr() error {
	for i := 0; i < 4; i++ {
		if err := m.Tick(); err != nil {
			return err
		}
	}
	return nil
}

// Run executes until HALT or the instruction budget is exhausted.
func (m *Machine) Run(maxInstrs int64) error {
	for i := int64(0); i < maxInstrs; i++ {
		if err := m.StepInstr(); err != nil {
			if errors.Is(err, ErrHalted) {
				return nil
			}
			return err
		}
	}
	if !m.Halted {
		return fmt.Errorf("cpu: exceeded budget of %d instructions", maxInstrs)
	}
	return nil
}

// IPC reports retired instructions per clock cycle — 0.25 for this
// unpipelined four-stage machine, the number the pipelining discussion
// starts from.
func (m *Machine) IPC() float64 {
	if m.Cycles == 0 {
		return 0
	}
	return float64(m.Retired) / float64(m.Cycles)
}
