package cpu

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Instr{
		{Op: OpAdd, Rd: 1, Rs: 2, Rt: 3},
		{Op: OpSub, Rd: 7, Rs: 0, Rt: 7},
		{Op: OpNot, Rd: 4, Rs: 5},
		{Op: OpLoadI, Rd: 3, Imm: -256},
		{Op: OpLoadI, Rd: 3, Imm: 255},
		{Op: OpBeqz, Rd: 2, Imm: -4},
		{Op: OpJmp, Target: 4095},
		{Op: OpHalt},
		{Op: OpLoad, Rd: 1, Rs: 2},
		{Op: OpStore, Rd: 1, Rs: 2},
	}
	for _, in := range cases {
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("Encode(%v): %v", in, err)
		}
		got, err := Decode(w)
		if err != nil {
			t.Fatalf("Decode(%#04x): %v", w, err)
		}
		if got != in {
			t.Errorf("round trip %v -> %#04x -> %v", in, w, got)
		}
	}
}

func TestEncodeErrors(t *testing.T) {
	cases := []Instr{
		{Op: Opcode(15)},
		{Op: OpAdd, Rd: 8},
		{Op: OpAdd, Rs: -1},
		{Op: OpLoadI, Rd: 0, Imm: 256},
		{Op: OpLoadI, Rd: 0, Imm: -257},
		{Op: OpJmp, Target: 4096},
		{Op: OpBeqz, Rd: 9},
	}
	for _, in := range cases {
		if _, err := Encode(in); err == nil {
			t.Errorf("Encode(%+v): expected error", in)
		}
	}
	if _, err := Decode(0xf000); err == nil {
		t.Error("Decode(0xf000): expected invalid opcode error")
	}
}

// Property: every valid register-form instruction round-trips.
func TestEncodeDecodeProperty(t *testing.T) {
	f := func(opRaw, rd, rs, rt uint8) bool {
		in := Instr{
			Op: Opcode(opRaw % 8),
			Rd: int(rd % 8), Rs: int(rs % 8), Rt: int(rt % 8),
		}
		w, err := Encode(in)
		if err != nil {
			return false
		}
		got, err := Decode(w)
		return err == nil && got == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInstrString(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpAdd, Rd: 1, Rs: 2, Rt: 3}, "ADD r1, r2, r3"},
		{Instr{Op: OpLoadI, Rd: 2, Imm: -5}, "LOADI r2, -5"},
		{Instr{Op: OpJmp, Target: 10}, "JMP 10"},
		{Instr{Op: OpHalt}, "HALT"},
		{Instr{Op: OpNot, Rd: 1, Rs: 2}, "NOT r1, r2"},
		{Instr{Op: OpLoad, Rd: 1, Rs: 2}, "LOAD r1, r2"},
		{Instr{Op: OpBeqz, Rd: 3, Imm: 7}, "BEQZ r3, 7"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
	if !strings.Contains(Opcode(99).String(), "99") {
		t.Error("unknown opcode String")
	}
}

// sumProgram computes 1+2+...+n in r1 using a loop.
func sumProgram(n int16) []Instr {
	return []Instr{
		{Op: OpLoadI, Rd: 1, Imm: 0}, // r1 = acc
		{Op: OpLoadI, Rd: 2, Imm: n}, // r2 = counter
		{Op: OpLoadI, Rd: 3, Imm: 1}, // r3 = 1
		// loop:
		{Op: OpBeqz, Rd: 2, Imm: 3},      // if r2 == 0 -> done
		{Op: OpAdd, Rd: 1, Rs: 1, Rt: 2}, // acc += counter
		{Op: OpSub, Rd: 2, Rs: 2, Rt: 3}, // counter--
		{Op: OpJmp, Target: 3},           // goto loop
		{Op: OpHalt},                     // done
	}
}

func TestMachineSumLoop(t *testing.T) {
	m := New()
	if err := m.LoadProgram(sumProgram(10)); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(1000); err != nil {
		t.Fatal(err)
	}
	if m.Regs[1] != 55 {
		t.Errorf("sum 1..10 = %d, want 55", m.Regs[1])
	}
	if !m.Halted {
		t.Error("machine should be halted")
	}
	if m.Cycles != 4*m.Retired {
		t.Errorf("cycles=%d retired=%d: expected 4 cycles per instruction", m.Cycles, m.Retired)
	}
	if ipc := m.IPC(); ipc != 0.25 {
		t.Errorf("unpipelined IPC = %v, want 0.25", ipc)
	}
}

func TestMachineLoadStore(t *testing.T) {
	prog := []Instr{
		{Op: OpLoadI, Rd: 1, Imm: 100}, // address
		{Op: OpLoadI, Rd: 2, Imm: 42},  // value
		{Op: OpStore, Rd: 2, Rs: 1},    // mem[100] = 42
		{Op: OpLoad, Rd: 3, Rs: 1},     // r3 = mem[100]
		{Op: OpHalt},
	}
	m := New()
	if err := m.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if m.Mem[100] != 42 || m.Regs[3] != 42 {
		t.Errorf("mem[100]=%d r3=%d, want 42, 42", m.Mem[100], m.Regs[3])
	}
}

func TestMachineR0Hardwired(t *testing.T) {
	prog := []Instr{
		{Op: OpLoadI, Rd: 0, Imm: 99},
		{Op: OpHalt},
	}
	m := New()
	if err := m.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(10); err != nil {
		t.Fatal(err)
	}
	if m.Regs[0] != 0 {
		t.Errorf("r0 = %d, want 0 (hardwired)", m.Regs[0])
	}
}

func TestMachineALUFlagsAndOps(t *testing.T) {
	prog := []Instr{
		{Op: OpLoadI, Rd: 1, Imm: 5},
		{Op: OpLoadI, Rd: 2, Imm: 5},
		{Op: OpSub, Rd: 3, Rs: 1, Rt: 2}, // 0 -> zero flag
		{Op: OpHalt},
	}
	m := New()
	if err := m.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(10); err != nil {
		t.Fatal(err)
	}
	if !m.Flags.Zero || !m.Flags.Equal {
		t.Errorf("flags after 5-5: %+v", m.Flags)
	}
}

func TestMachineHaltThenTick(t *testing.T) {
	m := New()
	if err := m.LoadProgram([]Instr{{Op: OpHalt}}); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(10); err != nil {
		t.Fatal(err)
	}
	if err := m.Tick(); !errors.Is(err, ErrHalted) {
		t.Errorf("Tick after halt: %v", err)
	}
}

func TestMachineBudgetExceeded(t *testing.T) {
	m := New()
	// Infinite loop.
	if err := m.LoadProgram([]Instr{{Op: OpJmp, Target: 0}}); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(10); err == nil {
		t.Error("expected budget error")
	}
}

func TestMachineInvalidOpcodeInMemory(t *testing.T) {
	m := New()
	m.Mem[0] = 0xf000 // opcode 15
	m.PC = 0
	err := m.Run(10)
	if err == nil {
		t.Error("expected decode error")
	}
}

func TestLoadProgramTooLarge(t *testing.T) {
	m := New()
	if err := m.LoadProgram(make([]Instr, MemWords+1)); err == nil {
		t.Error("oversize program should fail")
	}
	if err := m.LoadProgram([]Instr{{Op: Opcode(14)}}); err == nil {
		t.Error("bad instruction should fail at load")
	}
}

// The gate-level datapath check: the same program produces the same result
// whether the execute stage uses the circuit ALU or the functional one.
func TestMachineGateALUAgreement(t *testing.T) {
	progs := [][]Instr{
		sumProgram(7),
		{
			{Op: OpLoadI, Rd: 1, Imm: 0xff},
			{Op: OpLoadI, Rd: 2, Imm: 0x0f},
			{Op: OpAnd, Rd: 3, Rs: 1, Rt: 2},
			{Op: OpOr, Rd: 4, Rs: 1, Rt: 2},
			{Op: OpXor, Rd: 5, Rs: 1, Rt: 2},
			{Op: OpNot, Rd: 6, Rs: 1},
			{Op: OpShl, Rd: 7, Rs: 1},
			{Op: OpHalt},
		},
	}
	for pi, prog := range progs {
		ref := New()
		gate := New()
		gate.EnableGateALU()
		for _, m := range []*Machine{ref, gate} {
			if err := m.LoadProgram(prog); err != nil {
				t.Fatal(err)
			}
			if err := m.Run(1000); err != nil {
				t.Fatal(err)
			}
		}
		if ref.Regs != gate.Regs {
			t.Errorf("program %d: reference regs %v != gate-level regs %v", pi, ref.Regs, gate.Regs)
		}
		if ref.Flags != gate.Flags {
			t.Errorf("program %d: flags %+v != %+v", pi, ref.Flags, gate.Flags)
		}
	}
}

func TestIPCZeroCycles(t *testing.T) {
	if New().IPC() != 0 {
		t.Error("IPC with no cycles should be 0")
	}
}
