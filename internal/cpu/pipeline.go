package cpu

import "fmt"

// PipelineModel is the analytic model CS 31 uses to show how pipelining
// improves instruction throughput: a laundry-style pipeline of equal-length
// stages. An unpipelined machine takes Stages cycles per instruction; a
// pipelined one retires (ideally) one instruction per cycle after filling,
// minus stall cycles for hazards.
type PipelineModel struct {
	Stages        int     // pipeline depth (e.g., 4 for fetch/decode/execute/store)
	BranchFreq    float64 // fraction of instructions that are taken branches
	BranchPenalty int     // cycles lost per taken branch (flushed stages)
	MemStallFreq  float64 // fraction of instructions that stall for memory
	MemStallCost  int     // cycles lost per memory stall
}

// Validate reports whether the model's parameters are sensible.
func (p PipelineModel) Validate() error {
	if p.Stages < 1 {
		return fmt.Errorf("cpu: pipeline needs at least 1 stage, got %d", p.Stages)
	}
	if p.BranchFreq < 0 || p.BranchFreq > 1 || p.MemStallFreq < 0 || p.MemStallFreq > 1 {
		return fmt.Errorf("cpu: frequencies must be in [0,1]")
	}
	if p.BranchPenalty < 0 || p.MemStallCost < 0 {
		return fmt.Errorf("cpu: penalties must be non-negative")
	}
	return nil
}

// UnpipelinedCycles is the cycle count to run n instructions with no
// overlap: every instruction occupies all stages serially.
func (p PipelineModel) UnpipelinedCycles(n int64) int64 {
	return int64(p.Stages) * n
}

// PipelinedCycles is the cycle count with full overlap: fill latency of
// (Stages-1) cycles, then one instruction per cycle, plus expected hazard
// stalls.
func (p PipelineModel) PipelinedCycles(n int64) int64 {
	if n == 0 {
		return 0
	}
	base := int64(p.Stages-1) + n
	stalls := float64(n) * (p.BranchFreq*float64(p.BranchPenalty) +
		p.MemStallFreq*float64(p.MemStallCost))
	return base + int64(stalls+0.5)
}

// IPC is the pipelined instructions-per-cycle for a run of n instructions.
func (p PipelineModel) IPC(n int64) float64 {
	c := p.PipelinedCycles(n)
	if c == 0 {
		return 0
	}
	return float64(n) / float64(c)
}

// Speedup is the ratio of unpipelined to pipelined cycles for n
// instructions; it approaches Stages as n grows and hazards vanish.
func (p PipelineModel) Speedup(n int64) float64 {
	pc := p.PipelinedCycles(n)
	if pc == 0 {
		return 0
	}
	return float64(p.UnpipelinedCycles(n)) / float64(pc)
}

// CorePart is one CPU component in the multicore duplication discussion.
type CorePart struct {
	Name       string
	PerCore    bool // duplicated in every core
	SharedNote string
}

// MulticoreParts is the course's inventory of which CPU components each
// core duplicates and which the cores share.
var MulticoreParts = []CorePart{
	{Name: "ALU", PerCore: true},
	{Name: "register file", PerCore: true},
	{Name: "program counter", PerCore: true},
	{Name: "instruction register", PerCore: true},
	{Name: "control unit", PerCore: true},
	{Name: "L1 cache", PerCore: true},
	{Name: "L2/L3 cache", PerCore: false, SharedNote: "shared last-level cache"},
	{Name: "memory bus", PerCore: false, SharedNote: "shared path to RAM"},
	{Name: "RAM", PerCore: false, SharedNote: "single shared physical memory"},
}
