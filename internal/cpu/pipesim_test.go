package cpu

import (
	"testing"
)

func TestCollectTrace(t *testing.T) {
	trace, err := CollectTrace(sumProgram(3), 1000)
	if err != nil {
		t.Fatal(err)
	}
	// 3 setup + 3 iterations * (beqz, add, sub, jmp) + final beqz + halt.
	if len(trace) != 3+3*4+1+1 {
		t.Fatalf("trace length %d", len(trace))
	}
	// The JMPs are always taken; the final BEQZ is taken.
	takenJmps := 0
	for _, e := range trace {
		if e.Op == OpJmp && e.Taken {
			takenJmps++
		}
	}
	if takenJmps != 3 {
		t.Errorf("taken jumps = %d, want 3", takenJmps)
	}
	last := trace[len(trace)-1]
	if last.Op != OpHalt {
		t.Errorf("trace should end at HALT, got %v", last.Op)
	}
}

func TestCollectTraceBudget(t *testing.T) {
	if _, err := CollectTrace([]Instr{{Op: OpJmp, Target: 0}}, 50); err == nil {
		t.Error("infinite loop should exhaust the budget")
	}
}

func TestPipeSimIndependentInstructions(t *testing.T) {
	// Independent writes: no stalls, IPC approaches 1.
	trace := make([]TraceEntry, 100)
	for i := range trace {
		trace[i] = TraceEntry{Op: OpLoadI, Writes: i % 8}
	}
	sim := &PipeSim{Forwarding: false}
	res := sim.Run(trace)
	if res.StallCycles != 0 || res.FlushCycles != 0 {
		t.Errorf("independent stream stalled: %+v", res)
	}
	if res.Cycles != 100+3 {
		t.Errorf("cycles = %d, want 103", res.Cycles)
	}
	if ipc := res.IPC(); ipc < 0.96 {
		t.Errorf("IPC = %v", ipc)
	}
}

func TestPipeSimRAWHazards(t *testing.T) {
	// Each instruction consumes the previous one's result.
	trace := []TraceEntry{
		{Op: OpLoadI, Writes: 1},
		{Op: OpAdd, Reads: []int{1, 1}, Writes: 2},
		{Op: OpAdd, Reads: []int{2, 2}, Writes: 3},
	}
	noFwd := (&PipeSim{Forwarding: false}).Run(trace)
	fwd := (&PipeSim{Forwarding: true}).Run(trace)
	if noFwd.StallCycles == 0 {
		t.Error("dependent chain should stall without forwarding")
	}
	if fwd.StallCycles != 0 {
		t.Errorf("ALU-to-ALU forwarding should erase stalls: %+v", fwd)
	}
	if fwd.Cycles >= noFwd.Cycles {
		t.Errorf("forwarding should be faster: %d vs %d", fwd.Cycles, noFwd.Cycles)
	}
}

func TestPipeSimLoadUseHazard(t *testing.T) {
	trace := []TraceEntry{
		{Op: OpLoad, Reads: []int{1}, Writes: 2, IsLoad: true},
		{Op: OpAdd, Reads: []int{2, 3}, Writes: 4},
	}
	fwd := (&PipeSim{Forwarding: true}).Run(trace)
	if fwd.StallCycles != 1 {
		t.Errorf("load-use should cost exactly one bubble with forwarding: %+v", fwd)
	}
}

func TestPipeSimBranchFlush(t *testing.T) {
	trace := []TraceEntry{
		{Op: OpLoadI, Writes: 1},
		{Op: OpJmp, Taken: true},
		{Op: OpLoadI, Writes: 2},
	}
	res := (&PipeSim{Forwarding: true}).Run(trace)
	if res.FlushCycles != 2 {
		t.Errorf("taken branch should flush 2 slots: %+v", res)
	}
	res3 := (&PipeSim{Forwarding: true, BranchPenalty: 3}).Run(trace)
	if res3.FlushCycles != 3 {
		t.Errorf("penalty override: %+v", res3)
	}
}

func TestPipeSimEmpty(t *testing.T) {
	res := (&PipeSim{}).Run(nil)
	if res.Cycles != 0 || res.IPC() != 0 {
		t.Errorf("empty trace: %+v", res)
	}
}

// End to end: the simulated pipeline beats the unpipelined machine's 0.25
// IPC on a real program and never exceeds 1; forwarding strictly helps a
// dependence-heavy loop.
func TestPipeSimOnRealProgram(t *testing.T) {
	trace, err := CollectTrace(sumProgram(20), 10000)
	if err != nil {
		t.Fatal(err)
	}
	noFwd := (&PipeSim{Forwarding: false}).Run(trace)
	fwd := (&PipeSim{Forwarding: true}).Run(trace)
	for name, r := range map[string]PipeResult{"nofwd": noFwd, "fwd": fwd} {
		if ipc := r.IPC(); ipc <= 0.25 || ipc > 1 {
			t.Errorf("%s: IPC %v outside (0.25, 1]", name, ipc)
		}
	}
	if fwd.Cycles >= noFwd.Cycles {
		t.Errorf("forwarding should help the sum loop: %d vs %d", fwd.Cycles, noFwd.Cycles)
	}
	// The analytic model with the measured branch statistics lands in the
	// same neighbourhood as the simulation.
	taken := 0
	for _, e := range trace {
		if e.Taken {
			taken++
		}
	}
	model := PipelineModel{
		Stages:     4,
		BranchFreq: float64(taken) / float64(len(trace)), BranchPenalty: 2,
	}
	analytic := model.IPC(int64(len(trace)))
	simulated := fwd.IPC()
	if diff := analytic - simulated; diff > 0.25 || diff < -0.25 {
		t.Errorf("analytic %.3f vs simulated %.3f differ too much", analytic, simulated)
	}
}

func BenchmarkPipeSimForwardingAblation(b *testing.B) {
	trace, err := CollectTrace(sumProgram(100), 100000)
	if err != nil {
		b.Fatal(err)
	}
	for _, fwd := range []bool{false, true} {
		fwd := fwd
		name := "nofwd"
		if fwd {
			name = "fwd"
		}
		b.Run(name, func(b *testing.B) {
			var ipc float64
			for i := 0; i < b.N; i++ {
				res := (&PipeSim{Forwarding: fwd}).Run(trace)
				ipc = res.IPC()
			}
			b.ReportMetric(ipc, "ipc")
		})
	}
}
