package cpu

import (
	"math/rand"
	"testing"

	"cs31/internal/circuit"
)

func TestDatapathBasics(t *testing.T) {
	d, err := NewDatapath(3, 16)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumGates() == 0 {
		t.Error("datapath should contain gates")
	}
	if err := d.WriteReg(1, 6); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteReg(2, 7); err != nil {
		t.Fatal(err)
	}
	if err := d.Execute(circuit.OpAdd, 3, 1, 2); err != nil {
		t.Fatal(err)
	}
	v, err := d.ReadReg(3)
	if err != nil {
		t.Fatal(err)
	}
	if v != 13 {
		t.Errorf("6+7 through the gates = %d", v)
	}
	// Source registers untouched.
	if v, _ := d.ReadReg(1); v != 6 {
		t.Errorf("r1 = %d", v)
	}
}

func TestDatapathFlags(t *testing.T) {
	d, err := NewDatapath(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	d.WriteReg(0, 5)
	d.WriteReg(1, 5)
	if err := d.Execute(circuit.OpSub, 2, 0, 1); err != nil {
		t.Fatal(err)
	}
	f := d.Flags()
	if !f.Zero || !f.Equal {
		t.Errorf("5-5 flags: %+v", f)
	}
}

func TestDatapathValidation(t *testing.T) {
	if _, err := NewDatapath(0, 8); err == nil {
		t.Error("0 select bits should fail")
	}
	if _, err := NewDatapath(5, 8); err == nil {
		t.Error("5 select bits should fail")
	}
	if _, err := NewDatapath(2, 0); err == nil {
		t.Error("0 width should fail")
	}
	if _, err := NewDatapath(2, 64); err == nil {
		t.Error("64-bit datapath should fail (32 max)")
	}
	d, _ := NewDatapath(2, 8)
	if err := d.RunRType([]Instr{{Op: OpJmp}}); err == nil {
		t.Error("control flow is not datapath-executable")
	}
}

// The crown equivalence test: a random straight-line R-type program gives
// the same register file contents on the functional Machine and on the
// pure-gates Datapath.
func TestDatapathMatchesMachine(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 5; trial++ {
		var prog []Instr
		// Seed registers with immediates, then random ALU traffic.
		for r := 1; r < NumRegs; r++ {
			prog = append(prog, Instr{Op: OpLoadI, Rd: r, Imm: int16(rng.Intn(200))})
		}
		for i := 0; i < 12; i++ {
			prog = append(prog, Instr{
				Op: Opcode(rng.Intn(8)), // the eight ALU ops
				Rd: rng.Intn(NumRegs),
				Rs: rng.Intn(NumRegs),
				Rt: rng.Intn(NumRegs),
			})
		}

		// Functional machine.
		m := New()
		if err := m.LoadProgram(append(append([]Instr{}, prog...), Instr{Op: OpHalt})); err != nil {
			t.Fatal(err)
		}
		if err := m.Run(1000); err != nil {
			t.Fatal(err)
		}

		// Gate-level datapath (r0 is not hardwired there, so skip writes to
		// r0 in comparison by re-zeroing, mirroring the machine).
		d, err := NewDatapath(3, 16)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < NumRegs; r++ {
			if err := d.WriteReg(r, 0); err != nil {
				t.Fatal(err)
			}
		}
		for _, in := range prog {
			if err := d.RunRType([]Instr{in}); err != nil {
				t.Fatal(err)
			}
			// Mirror the machine's hardwired r0.
			if err := d.WriteReg(0, 0); err != nil {
				t.Fatal(err)
			}
		}
		for r := 0; r < NumRegs; r++ {
			gv, err := d.ReadReg(r)
			if err != nil {
				t.Fatal(err)
			}
			if uint16(gv) != m.Regs[r] {
				t.Errorf("trial %d: r%d gates=%#x machine=%#x", trial, r, gv, m.Regs[r])
			}
		}
	}
}

func BenchmarkDatapathExecute(b *testing.B) {
	d, err := NewDatapath(3, 16)
	if err != nil {
		b.Fatal(err)
	}
	d.WriteReg(1, 3)
	d.WriteReg(2, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Execute(circuit.OpAdd, 3, 1, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDatapathExecuteZeroAlloc guards the gate-level hot path: once the
// circuit's plan is compiled (NewDatapath does so eagerly), a full Execute
// — two register reads, an ALU settle, a two-phase register write — must
// not allocate.
func TestDatapathExecuteZeroAlloc(t *testing.T) {
	d, err := NewDatapath(3, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteReg(1, 0x1234); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteReg(2, 0x0fed); err != nil {
		t.Fatal(err)
	}
	if err := d.Execute(circuit.OpAdd, 3, 1, 2); err != nil { // warm
		t.Fatal(err)
	}
	i := 0
	allocs := testing.AllocsPerRun(100, func() {
		i++
		if err := d.Execute(circuit.ALUOp(i%8), 3, 1, 2); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Execute allocated %.1f per run, want 0", allocs)
	}
}
