package cpu

import (
	"fmt"

	"cs31/internal/circuit"
)

// Datapath is the Lab 3 endpoint: the register file AND the ALU built
// entirely from gates, wired the way the lab's Logisim canvas wires them.
// Executing an R-type instruction reads both operands from the gate-level
// register file, runs them through the gate-level ALU, and writes the
// result back through the register file's decoder and write port — every
// bit of state lives in gated D latches.
type Datapath struct {
	ckt *circuit.Circuit
	rf  *circuit.RegisterFile
	alu *circuit.ALU

	width int
	flags circuit.Flags
}

// NewDatapath builds a gate-level datapath with 2^selBits registers of the
// given width (the lab uses 8 registers of 16 bits).
func NewDatapath(selBits, width int) (*Datapath, error) {
	if selBits < 1 || selBits > 4 {
		return nil, fmt.Errorf("cpu: register select bits %d out of range", selBits)
	}
	if width < 1 || width > 32 {
		return nil, fmt.Errorf("cpu: datapath width %d out of range", width)
	}
	ckt := circuit.New()
	d := &Datapath{
		ckt:   ckt,
		rf:    circuit.NewRegisterFile(ckt, selBits, width),
		alu:   circuit.NewALU(ckt, width),
		width: width,
	}
	ckt.Compile() // front-load plan construction off the Execute hot path
	return d, nil
}

// NumGates reports the total gate count — the "cost" of the lab design.
func (d *Datapath) NumGates() int { return d.ckt.NumGates() }

// WriteReg loads a value into a register through the gate-level write port.
func (d *Datapath) WriteReg(reg int, v uint64) error {
	return d.rf.Write(d.ckt, reg, v)
}

// ReadReg reads a register through the gate-level read port.
func (d *Datapath) ReadReg(reg int) (uint64, error) {
	return d.rf.Read(d.ckt, reg)
}

// Flags returns the ALU flags latched by the last Execute.
func (d *Datapath) Flags() circuit.Flags { return d.flags }

// Execute runs rd = rs OP rt through the gates: two register-file reads,
// one ALU evaluation, one register-file write.
func (d *Datapath) Execute(op circuit.ALUOp, rd, rs, rt int) error {
	a, err := d.rf.Read(d.ckt, rs)
	if err != nil {
		return err
	}
	b, err := d.rf.Read(d.ckt, rt)
	if err != nil {
		return err
	}
	res, flags, err := d.alu.Run(d.ckt, op, a, b)
	if err != nil {
		return err
	}
	d.flags = flags
	return d.rf.Write(d.ckt, rd, res)
}

// RunRType executes a sequence of register-form instructions (the ALU
// subset of the cpu ISA) entirely on the gate-level datapath.
func (d *Datapath) RunRType(prog []Instr) error {
	for i, in := range prog {
		switch in.Op {
		case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpNot, OpShl, OpShr:
			if err := d.Execute(circuit.ALUOp(in.Op&7), in.Rd, in.Rs, in.Rt); err != nil {
				return fmt.Errorf("cpu: instruction %d (%v): %w", i, in, err)
			}
		case OpLoadI:
			if err := d.WriteReg(in.Rd, uint64(uint16(in.Imm))); err != nil {
				return fmt.Errorf("cpu: instruction %d (%v): %w", i, in, err)
			}
		default:
			return fmt.Errorf("cpu: instruction %d (%v) is not datapath-executable", i, in)
		}
	}
	return nil
}
