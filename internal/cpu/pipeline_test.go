package cpu

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPipelineValidate(t *testing.T) {
	good := PipelineModel{Stages: 4}
	if err := good.Validate(); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
	bad := []PipelineModel{
		{Stages: 0},
		{Stages: 4, BranchFreq: -0.1},
		{Stages: 4, BranchFreq: 1.1},
		{Stages: 4, MemStallFreq: 2},
		{Stages: 4, BranchPenalty: -1},
		{Stages: 4, MemStallCost: -1},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("model %+v should be invalid", m)
		}
	}
}

func TestPipelineIdealCounts(t *testing.T) {
	p := PipelineModel{Stages: 4}
	if got := p.UnpipelinedCycles(100); got != 400 {
		t.Errorf("unpipelined = %d, want 400", got)
	}
	if got := p.PipelinedCycles(100); got != 103 {
		t.Errorf("pipelined = %d, want 103", got)
	}
	if got := p.PipelinedCycles(0); got != 0 {
		t.Errorf("0 instructions = %d cycles", got)
	}
	if s := p.Speedup(0); s != 0 {
		t.Errorf("speedup at 0 = %v", s)
	}
}

func TestPipelineIPCApproachesOne(t *testing.T) {
	p := PipelineModel{Stages: 4}
	ipc := p.IPC(1_000_000)
	if ipc < 0.999 || ipc > 1.0 {
		t.Errorf("ideal IPC for long run = %v, want ~1", ipc)
	}
	if p.IPC(0) != 0 {
		t.Error("IPC(0) should be 0")
	}
}

func TestPipelineSpeedupApproachesDepth(t *testing.T) {
	for _, stages := range []int{2, 3, 4, 5} {
		p := PipelineModel{Stages: stages}
		s := p.Speedup(1_000_000)
		if math.Abs(s-float64(stages)) > 0.01 {
			t.Errorf("depth %d: asymptotic speedup %v, want ~%d", stages, s, stages)
		}
	}
}

func TestPipelineHazardsReduceIPC(t *testing.T) {
	ideal := PipelineModel{Stages: 4}
	hazard := PipelineModel{Stages: 4, BranchFreq: 0.2, BranchPenalty: 3}
	n := int64(100000)
	if hazard.IPC(n) >= ideal.IPC(n) {
		t.Errorf("hazards should reduce IPC: %v >= %v", hazard.IPC(n), ideal.IPC(n))
	}
	// Expected IPC with 20% branches costing 3 cycles: 1/(1+0.6) ~ 0.625.
	got := hazard.IPC(n)
	if math.Abs(got-0.625) > 0.01 {
		t.Errorf("hazard IPC = %v, want ~0.625", got)
	}
}

// Property: pipelining never slows a run down, and speedup never exceeds the
// pipeline depth.
func TestPipelineSpeedupBounds(t *testing.T) {
	f := func(stagesRaw uint8, nRaw uint16, bf, mf float64) bool {
		stages := int(stagesRaw%8) + 1
		n := int64(nRaw) + 1
		p := PipelineModel{
			Stages:        stages,
			BranchFreq:    math.Abs(math.Mod(bf, 1)),
			BranchPenalty: stages - 1,
			MemStallFreq:  math.Abs(math.Mod(mf, 1)),
			MemStallCost:  2,
		}
		s := p.Speedup(n)
		// Hazard stalls can make a 1-stage "pipeline" slower than serial, but
		// penalties are bounded by stages-1 flushes plus memory stalls, and
		// speedup can never exceed depth.
		return s <= float64(stages)+1e-9 && s > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulticorePartsInventory(t *testing.T) {
	perCore := 0
	shared := 0
	for _, part := range MulticoreParts {
		if part.PerCore {
			perCore++
			if part.SharedNote != "" {
				t.Errorf("%s: per-core part with shared note", part.Name)
			}
		} else {
			shared++
			if part.SharedNote == "" {
				t.Errorf("%s: shared part missing note", part.Name)
			}
		}
	}
	if perCore < 4 || shared < 2 {
		t.Errorf("inventory too small: %d per-core, %d shared", perCore, shared)
	}
}
