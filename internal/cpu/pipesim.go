package cpu

import "fmt"

// Trace-driven pipeline timing simulation: the functional machine executes
// a program and emits its dynamic instruction stream; PipeSim then replays
// that stream through an in-order pipeline cycle by cycle, modeling RAW
// hazards (with or without forwarding) and taken-branch flushes. Where
// PipelineModel is the lecture's analytic formula, PipeSim is the
// measurement it approximates.

// TraceEntry is one retired instruction with the facts timing needs.
type TraceEntry struct {
	Op     Opcode
	Reads  []int // register numbers read
	Writes int   // register written, -1 if none
	Taken  bool  // taken control transfer
	IsLoad bool  // memory load (for load-use hazards)
}

// CollectTrace runs prog on a fresh machine and returns its dynamic
// instruction stream.
func CollectTrace(prog []Instr, maxInstrs int64) ([]TraceEntry, error) {
	m := New()
	if err := m.LoadProgram(prog); err != nil {
		return nil, err
	}
	var trace []TraceEntry
	for i := int64(0); i < maxInstrs && !m.Halted; i++ {
		in, err := Decode(m.Mem[m.PC%MemWords])
		if err != nil {
			return nil, err
		}
		prevPC := m.PC
		if err := m.StepInstr(); err != nil && !m.Halted {
			return nil, err
		}
		e := classify(in)
		// A control transfer is "taken" when the next PC is not the
		// fall-through.
		if in.Op == OpJmp || in.Op == OpBeqz {
			e.Taken = m.PC != prevPC+1
		}
		trace = append(trace, e)
		if in.Op == OpHalt {
			break
		}
	}
	if !m.Halted {
		return nil, fmt.Errorf("cpu: trace collection exceeded %d instructions", maxInstrs)
	}
	return trace, nil
}

// classify extracts register usage from a decoded instruction.
func classify(in Instr) TraceEntry {
	e := TraceEntry{Op: in.Op, Writes: -1}
	switch in.Op {
	case OpAdd, OpSub, OpAnd, OpOr, OpXor:
		e.Reads = []int{in.Rs, in.Rt}
		e.Writes = in.Rd
	case OpNot, OpShl, OpShr:
		e.Reads = []int{in.Rs}
		e.Writes = in.Rd
	case OpLoadI:
		e.Writes = in.Rd
	case OpLoad:
		e.Reads = []int{in.Rs}
		e.Writes = in.Rd
		e.IsLoad = true
	case OpStore:
		e.Reads = []int{in.Rd, in.Rs}
	case OpBeqz:
		e.Reads = []int{in.Rd}
	}
	return e
}

// PipeSim is a four-stage in-order pipeline timing model (fetch, decode,
// execute, store) replaying a dynamic trace.
type PipeSim struct {
	// Forwarding bypasses results from execute/store back to decode,
	// reducing RAW stalls to the single load-use bubble.
	Forwarding bool
	// BranchPenalty is the number of fetched-wrong-path cycles squashed on
	// a taken branch (resolved in execute: 2 for this pipeline).
	BranchPenalty int
}

// PipeResult reports the simulated timing.
type PipeResult struct {
	Instructions int64
	Cycles       int64
	StallCycles  int64 // RAW hazard bubbles
	FlushCycles  int64 // squashed fetches after taken branches
}

// IPC is instructions per cycle.
func (r PipeResult) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// Run replays the trace through the pipeline.
//
// Timing rules for the 4-stage pipeline, issuing at most one instruction
// per cycle:
//   - Without forwarding, an instruction that reads a register written by
//     either of the two preceding instructions stalls until the writer has
//     left the store stage (2 bubbles behind the writer, 1 behind the one
//     before).
//   - With forwarding, only a load followed immediately by a consumer
//     stalls, for one bubble (the classic load-use hazard).
//   - A taken branch squashes BranchPenalty fetch slots.
func (p *PipeSim) Run(trace []TraceEntry) PipeResult {
	penalty := p.BranchPenalty
	if penalty <= 0 {
		penalty = 2
	}
	res := PipeResult{Instructions: int64(len(trace))}
	if len(trace) == 0 {
		return res
	}
	// issueCycle[i]: cycle instruction i enters execute. Completion
	// (register write visible without forwarding) is issueCycle+2 (store
	// stage done); with forwarding the value is available at issueCycle+1.
	cycle := int64(0)
	writerReady := map[int]int64{} // register -> cycle its value is readable
	for _, e := range trace {
		issue := cycle
		// Hazards: delay issue until operands are ready.
		for _, r := range e.Reads {
			if ready, ok := writerReady[r]; ok && ready > issue {
				issue = ready
			}
		}
		res.StallCycles += issue - cycle
		cycle = issue + 1 // next instruction can issue the following cycle

		if e.Writes >= 0 {
			var ready int64
			if p.Forwarding {
				ready = issue + 1 // bypass from execute
				if e.IsLoad {
					ready = issue + 2 // load data arrives a stage later
				}
			} else {
				ready = issue + 3 // wait for write-back through store
			}
			writerReady[e.Writes] = ready
		}
		if e.Taken {
			res.FlushCycles += int64(penalty)
			cycle += int64(penalty)
		}
	}
	// Drain: the last instruction still needs to traverse the remaining 3
	// stages after issue.
	res.Cycles = cycle + 3
	return res
}
