package debug

import (
	"strings"
	"testing"

	"cs31/internal/asm"
)

const testProg = `
.data
counter: .long 0
.text
helper:
    pushl %ebp
    movl %esp, %ebp
    movl 8(%ebp), %eax
    addl $1, %eax
    movl %eax, counter
    leave
    ret
main:
    pushl %ebp
    movl %esp, %ebp
    movl $41, %eax
    pushl %eax
    call helper
    addl $4, %esp
    leave
    ret
`

func attach(t *testing.T) *Debugger {
	t.Helper()
	p, err := asm.Assemble(testProg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := asm.NewMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	return New(m, 0)
}

func TestBreakpointAndContinue(t *testing.T) {
	d := attach(t)
	if err := d.Break("helper"); err != nil {
		t.Fatal(err)
	}
	s := d.Continue()
	if s.Reason != StopBreakpoint {
		t.Fatalf("stop: %+v", s)
	}
	if s.Addr != d.M.Prog.Symbols["helper"] {
		t.Errorf("stopped at %#x, want helper %#x", s.Addr, d.M.Prog.Symbols["helper"])
	}
	// At the breakpoint the argument 41 is on the stack above the return
	// address.
	arg, err := d.Examine(d.M.Regs[asm.ESP]+4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if arg[0] != 41 {
		t.Errorf("stack argument = %d, want 41", arg[0])
	}
	s = d.Continue()
	if s.Reason != StopExited {
		t.Fatalf("second continue: %+v", s)
	}
	if d.M.Regs[asm.EAX] != 42 {
		t.Errorf("helper result = %d", d.M.Regs[asm.EAX])
	}
}

func TestBreakErrors(t *testing.T) {
	d := attach(t)
	if err := d.Break("nonexistent"); err == nil {
		t.Error("break on missing symbol should fail")
	}
	if err := d.BreakAddr(3); err == nil {
		t.Error("break on non-instruction address should fail")
	}
	if err := d.ClearBreak("nonexistent"); err == nil {
		t.Error("clear of missing symbol should fail")
	}
	if err := d.Break("main"); err != nil {
		t.Fatal(err)
	}
	if got := d.Breakpoints(); len(got) != 1 {
		t.Errorf("breakpoints: %v", got)
	}
	if err := d.ClearBreak("main"); err != nil {
		t.Fatal(err)
	}
	if got := d.Breakpoints(); len(got) != 0 {
		t.Errorf("after clear: %v", got)
	}
}

func TestStepI(t *testing.T) {
	d := attach(t)
	s := d.StepI()
	if s.Reason != StopStep {
		t.Fatalf("step: %+v", s)
	}
	// After "pushl %ebp" at main, esp dropped by 4.
	if d.M.Steps != 1 {
		t.Errorf("steps = %d", d.M.Steps)
	}
}

func TestNextStepsOverCall(t *testing.T) {
	d := attach(t)
	// Step to the call instruction.
	callAddr := uint32(0)
	for i, in := range d.M.Prog.Instrs {
		if in.Mn == asm.CALL {
			callAddr = d.M.Prog.TextBase + uint32(i)*asm.InstrBytes
		}
	}
	if err := d.BreakAddr(callAddr); err != nil {
		t.Fatal(err)
	}
	if s := d.Continue(); s.Reason != StopBreakpoint {
		t.Fatalf("continue to call: %+v", s)
	}
	s := d.Next()
	if s.Reason != StopStep {
		t.Fatalf("next: %+v", s)
	}
	if s.Addr != callAddr+asm.InstrBytes {
		t.Errorf("next stopped at %#x, want %#x", s.Addr, callAddr+asm.InstrBytes)
	}
	// helper already ran: eax holds 42.
	if d.M.Regs[asm.EAX] != 42 {
		t.Errorf("after next, eax = %d", d.M.Regs[asm.EAX])
	}
}

func TestWatchpoint(t *testing.T) {
	d := attach(t)
	addr := d.M.Prog.Symbols["counter"]
	if err := d.Watch(addr); err != nil {
		t.Fatal(err)
	}
	s := d.Continue()
	if s.Reason != StopWatchpoint {
		t.Fatalf("stop: %+v", s)
	}
	if s.Watch != addr || s.Old != 0 || s.New != 42 {
		t.Errorf("watch event: %+v", s)
	}
	d.Unwatch(addr)
	if s := d.Continue(); s.Reason != StopExited {
		t.Errorf("after unwatch: %+v", s)
	}
}

func TestWatchBadAddress(t *testing.T) {
	d := attach(t)
	if err := d.Watch(0); err == nil {
		t.Error("watch on NULL should fail")
	}
}

func TestRegAndInfoRegisters(t *testing.T) {
	d := attach(t)
	d.Continue()
	v, err := d.Reg("eax")
	if err != nil {
		t.Fatal(err)
	}
	if v != 42 {
		t.Errorf("eax = %d", v)
	}
	if _, err := d.Reg("xyz"); err == nil {
		t.Error("bad register name should fail")
	}
	info := d.InfoRegisters()
	if !strings.Contains(info, "eax  0x0000002a") || !strings.Contains(info, "eflags") {
		t.Errorf("info registers:\n%s", info)
	}
}

func TestDisassembleView(t *testing.T) {
	d := attach(t)
	out := d.Disassemble(3)
	if !strings.HasPrefix(out, "=> ") {
		t.Errorf("disassembly should mark current instruction:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 3 {
		t.Errorf("want 3 lines:\n%s", out)
	}
}

func TestBacktrace(t *testing.T) {
	d := attach(t)
	if err := d.Break("helper"); err != nil {
		t.Fatal(err)
	}
	if s := d.Continue(); s.Reason != StopBreakpoint {
		t.Fatal("did not reach helper")
	}
	// Step through the prologue so the frame is established.
	d.StepI()
	d.StepI()
	frames := d.Backtrace(10)
	if len(frames) < 2 {
		t.Fatalf("backtrace: %+v", frames)
	}
	if frames[0].Func != "main" {
		// Innermost return site is inside main.
		t.Errorf("frame 0 func %q, want main (frames %+v)", frames[0].Func, frames)
	}
}

func TestExamineString(t *testing.T) {
	p, err := asm.Assemble(`
.data
msg: .asciz "hi there"
.text
main:
    ret
`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := asm.NewMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	d := New(m, 0)
	s, err := d.ExamineString(p.Symbols["msg"])
	if err != nil {
		t.Fatal(err)
	}
	if s != "hi there" {
		t.Errorf("string = %q", s)
	}
	if _, err := d.Examine(0, 1); err == nil {
		t.Error("examine NULL should fail")
	}
}

func TestContinueBudget(t *testing.T) {
	p, err := asm.Assemble("spin: jmp spin")
	if err != nil {
		t.Fatal(err)
	}
	m, err := asm.NewMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	d := New(m, 100)
	s := d.Continue()
	if s.Reason != StopError {
		t.Errorf("infinite loop: %+v", s)
	}
}

func TestStopOnRuntimeError(t *testing.T) {
	p, err := asm.Assemble("main:\n movl 0(%eax), %ebx\n ret")
	if err != nil {
		t.Fatal(err)
	}
	m, err := asm.NewMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	d := New(m, 0)
	s := d.Continue()
	if s.Reason != StopError || s.Err == nil {
		t.Errorf("fault stop: %+v", s)
	}
}

func TestStopReasonString(t *testing.T) {
	if StopBreakpoint.String() != "breakpoint" || StopExited.String() != "exited" {
		t.Error("StopReason names")
	}
}
