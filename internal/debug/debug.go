// Package debug is the course's GDB stand-in: a machine-level debugger for
// asm programs supporting breakpoints, single-stepping, stepping over calls,
// watchpoints, register and memory inspection, and backtraces through saved
// frame pointers. Lab 5 (the binary maze) is solved with exactly these
// operations.
package debug

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"cs31/internal/asm"
)

// StopReason explains why control returned to the debugger.
type StopReason int

// Reasons execution stopped.
const (
	StopNone       StopReason = iota
	StopBreakpoint            // hit a breakpoint
	StopWatchpoint            // a watched word changed
	StopStep                  // single step completed
	StopExited                // program exited
	StopError                 // runtime fault
)

func (r StopReason) String() string {
	return [...]string{"none", "breakpoint", "watchpoint", "step", "exited", "error"}[r]
}

// Stop describes a debugger stop event.
type Stop struct {
	Reason StopReason
	Addr   uint32 // PC address at the stop
	Watch  uint32 // watchpoint address, if Reason == StopWatchpoint
	Old    uint32 // watched word's previous value
	New    uint32 // watched word's new value
	Err    error  // fault, if Reason == StopError
}

// Debugger drives an asm.Machine under breakpoint control.
type Debugger struct {
	M *asm.Machine

	breakpoints map[uint32]bool
	watchpoints map[uint32]uint32 // addr -> last seen value
	stepBudget  int64
}

// New attaches a debugger to a machine. stepBudget bounds every Continue
// (0 means the default of 10 million steps).
func New(m *asm.Machine, stepBudget int64) *Debugger {
	if stepBudget <= 0 {
		stepBudget = 10_000_000
	}
	return &Debugger{
		M:           m,
		breakpoints: make(map[uint32]bool),
		watchpoints: make(map[uint32]uint32),
		stepBudget:  stepBudget,
	}
}

// BreakAddr sets a breakpoint at a text address.
func (d *Debugger) BreakAddr(addr uint32) error {
	if _, err := d.M.Prog.InstrAt(addr); err != nil {
		return err
	}
	d.breakpoints[addr] = true
	return nil
}

// Break sets a breakpoint at a label ("break main").
func (d *Debugger) Break(label string) error {
	addr, ok := d.M.Prog.Symbols[label]
	if !ok {
		return fmt.Errorf("debug: no symbol %q", label)
	}
	return d.BreakAddr(addr)
}

// ClearBreak removes a breakpoint by label or leaves silently if absent.
func (d *Debugger) ClearBreak(label string) error {
	addr, ok := d.M.Prog.Symbols[label]
	if !ok {
		return fmt.Errorf("debug: no symbol %q", label)
	}
	delete(d.breakpoints, addr)
	return nil
}

// Breakpoints lists the active breakpoint addresses in ascending order.
func (d *Debugger) Breakpoints() []uint32 {
	out := make([]uint32, 0, len(d.breakpoints))
	for a := range d.breakpoints {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Watch sets a watchpoint on a 32-bit word of memory.
func (d *Debugger) Watch(addr uint32) error {
	v, err := d.M.Load32(addr)
	if err != nil {
		return err
	}
	d.watchpoints[addr] = v
	return nil
}

// Unwatch removes a watchpoint.
func (d *Debugger) Unwatch(addr uint32) { delete(d.watchpoints, addr) }

// pc returns the current PC address.
func (d *Debugger) pc() uint32 {
	if in, ok := d.M.CurrentInstr(); ok {
		return in.Addr
	}
	return 0
}

func (d *Debugger) checkWatch() (Stop, bool) {
	for addr, old := range d.watchpoints {
		v, err := d.M.Load32(addr)
		if err != nil {
			continue
		}
		if v != old {
			d.watchpoints[addr] = v
			return Stop{Reason: StopWatchpoint, Addr: d.pc(), Watch: addr, Old: old, New: v}, true
		}
	}
	return Stop{}, false
}

// StepI executes exactly one instruction ("stepi").
func (d *Debugger) StepI() Stop {
	err := d.M.Step()
	switch {
	case err != nil && !errors.Is(err, asm.ErrExited):
		return Stop{Reason: StopError, Addr: d.pc(), Err: err}
	case err != nil || d.M.Exited:
		return Stop{Reason: StopExited, Addr: d.pc()}
	}
	if s, hit := d.checkWatch(); hit {
		return s
	}
	return Stop{Reason: StopStep, Addr: d.pc()}
}

// Next executes one instruction, stepping over calls: if the instruction is
// a call, it runs until the matching return ("nexti").
func (d *Debugger) Next() Stop {
	in, ok := d.M.CurrentInstr()
	if !ok {
		return Stop{Reason: StopExited}
	}
	if in.Mn != asm.CALL {
		return d.StepI()
	}
	retAddr := in.Addr + asm.InstrBytes
	s := d.StepI()
	if s.Reason != StopStep {
		return s
	}
	for i := int64(0); i < d.stepBudget; i++ {
		if d.pc() == retAddr {
			return Stop{Reason: StopStep, Addr: retAddr}
		}
		s = d.StepI()
		if s.Reason != StopStep && s.Reason != StopBreakpoint {
			return s
		}
	}
	return Stop{Reason: StopError, Err: fmt.Errorf("debug: next exceeded step budget")}
}

// Continue runs until a breakpoint, watchpoint, exit, or fault.
func (d *Debugger) Continue() Stop {
	for i := int64(0); i < d.stepBudget; i++ {
		s := d.StepI()
		if s.Reason != StopStep {
			return s
		}
		if d.breakpoints[d.pc()] {
			return Stop{Reason: StopBreakpoint, Addr: d.pc()}
		}
	}
	return Stop{Reason: StopError, Err: fmt.Errorf("debug: continue exceeded step budget")}
}

// Reg reads a register by name ("eax").
func (d *Debugger) Reg(name string) (uint32, error) {
	r, ok := asm.RegisterByName(name)
	if !ok {
		return 0, fmt.Errorf("debug: unknown register %q", name)
	}
	return d.M.Regs[r], nil
}

// InfoRegisters renders all registers and flags, GDB "info registers" style.
func (d *Debugger) InfoRegisters() string {
	var sb strings.Builder
	names := []string{"eax", "ebx", "ecx", "edx", "esi", "edi", "ebp", "esp"}
	for _, n := range names {
		r, _ := asm.RegisterByName(n)
		fmt.Fprintf(&sb, "%-4s 0x%08x %12d\n", n, d.M.Regs[r], int32(d.M.Regs[r]))
	}
	f := d.M.Flags
	fmt.Fprintf(&sb, "eflags [ZF=%v SF=%v CF=%v OF=%v]\n", f.ZF, f.SF, f.CF, f.OF)
	return sb.String()
}

// Examine reads n 32-bit words starting at addr ("x/Nw addr").
func (d *Debugger) Examine(addr uint32, n int) ([]uint32, error) {
	out := make([]uint32, n)
	for i := 0; i < n; i++ {
		v, err := d.M.Load32(addr + uint32(4*i))
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// ExamineString reads a NUL-terminated string ("x/s addr").
func (d *Debugger) ExamineString(addr uint32) (string, error) {
	return d.M.ReadCString(addr, 4096)
}

// Disassemble renders count instructions starting at the PC, marking the
// current one — what students see around a breakpoint.
func (d *Debugger) Disassemble(count int) string {
	var sb strings.Builder
	for i := 0; i < count; i++ {
		idx := d.M.PC + i
		if idx < 0 || idx >= len(d.M.Prog.Instrs) {
			break
		}
		in := d.M.Prog.Instrs[idx]
		marker := "   "
		if i == 0 {
			marker = "=> "
		}
		fmt.Fprintf(&sb, "%s0x%08x:\t%s\n", marker, in.Addr, in.String())
	}
	return sb.String()
}

// Frame is one stack frame found by walking saved %ebp links.
type Frame struct {
	FP      uint32 // frame pointer (%ebp) for the frame
	RetAddr uint32 // saved return address (0 for the outermost frame)
	Func    string // nearest preceding text symbol for the return site
}

// Backtrace walks the saved-%ebp chain, the way students draw stack diagrams.
// It requires the conventional prologue (pushl %ebp; movl %esp, %ebp).
func (d *Debugger) Backtrace(max int) []Frame {
	var frames []Frame
	fp := d.M.Regs[asm.EBP]
	for i := 0; i < max && fp != 0; i++ {
		ret, err := d.M.Load32(fp + 4)
		if err != nil {
			break
		}
		frames = append(frames, Frame{FP: fp, RetAddr: ret, Func: d.funcFor(ret)})
		next, err := d.M.Load32(fp)
		if err != nil || next <= fp {
			break
		}
		fp = next
	}
	return frames
}

// funcFor finds the nearest text symbol at or below addr.
func (d *Debugger) funcFor(addr uint32) string {
	best := ""
	var bestAddr uint32
	for name, a := range d.M.Prog.Symbols {
		if a <= addr && a >= d.M.Prog.TextBase && a < d.M.Prog.TextEnd() && (best == "" || a > bestAddr) {
			best, bestAddr = name, a
		}
	}
	return best
}
