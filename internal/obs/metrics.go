package obs

import (
	"bufio"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. Safe on a nil receiver.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous metric. Safe on a nil receiver.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by d.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value reads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of power-of-two buckets: bucket i counts
// observations v (nanoseconds) with v <= 2^i, i.e. i = bits.Len64(v-1);
// bucket 0 holds v <= 1 and the last bucket everything else.
const histBuckets = 64

// histShard is one contention domain of a Histogram, padded so shards
// never share a cache line.
type histShard struct {
	counts [histBuckets + 1]atomic.Int64
	sum    atomic.Int64
	count  atomic.Int64
	_      [40]byte
}

// Histogram is a sharded power-of-two latency histogram. Hot paths that
// know a small integer identity (worker id, rank) call ObserveShard to
// stay contention-free; Observe round-robins across shards. Shards
// merge at snapshot time, so recording is a few atomic adds with no
// lock. Safe on a nil receiver.
type Histogram struct {
	shards []histShard
	mask   uint64
	_      [56]byte
	rr     atomic.Uint64
}

// NewHistogram builds a histogram with the given shard count (rounded
// up to a power of two; <=0 selects 8).
func NewHistogram(shards int) *Histogram {
	if shards <= 0 {
		shards = 8
	}
	shards = ceilPow2(shards)
	return &Histogram{shards: make([]histShard, shards), mask: uint64(shards - 1)}
}

func bucketFor(ns int64) int {
	if ns <= 1 {
		return 0
	}
	b := bits.Len64(uint64(ns - 1))
	if b > histBuckets {
		return histBuckets
	}
	return b
}

// Observe records a nanosecond value on a round-robin shard.
func (h *Histogram) Observe(ns int64) {
	if h == nil {
		return
	}
	h.observe(int(h.rr.Add(1)), ns)
}

// ObserveShard records a nanosecond value on the shard selected by id
// (reduced modulo the shard count) — the zero-contention path for
// callers with a stable small identity.
func (h *Histogram) ObserveShard(id int, ns int64) {
	if h == nil {
		return
	}
	h.observe(id, ns)
}

func (h *Histogram) observe(id int, ns int64) {
	sh := &h.shards[uint64(id)&h.mask]
	sh.counts[bucketFor(ns)].Add(1)
	sh.sum.Add(ns)
	sh.count.Add(1)
}

// HistogramSnapshot is the merged view of a histogram's shards.
type HistogramSnapshot struct {
	Counts [histBuckets + 1]int64 // per-bucket counts; bucket i holds ns <= 2^i
	Count  int64
	Sum    int64 // ns
}

// Snapshot merges every shard into one consistent-enough view (each
// counter is read atomically; cross-counter skew is bounded by
// in-flight observations).
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	for i := range h.shards {
		sh := &h.shards[i]
		for b := range sh.counts {
			s.Counts[b] += sh.counts[b].Load()
		}
		s.Sum += sh.sum.Load()
		s.Count += sh.count.Load()
	}
	return s
}

// Prometheus exposition renders a fixed, bounded subset of the 65
// power-of-two bucket bounds so every scrape has a stable schema:
// 2^promBucketLo ns up to 2^promBucketHi ns every promBucketStep
// exponents, then +Inf. 2^8 ns = 256ns, 2^36 ns ~= 68.7s.
const (
	promBucketLo   = 8
	promBucketHi   = 36
	promBucketStep = 2
)

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

type series struct {
	labels  string // rendered label pairs without braces, "" for none
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() int64
}

type family struct {
	name   string
	help   string
	kind   metricKind
	series []*series
}

// Registry is a set of named metric families rendered by
// WritePrometheus. Registration is mutex-guarded get-or-create keyed
// by (name, labels); reads of registered metrics are lock-free.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// Label renders one escaped label pair for the labels argument of the
// registration methods; join several with commas.
func Label(key, value string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return key + `="` + r.Replace(value) + `"`
}

func (r *Registry) family(name, help string, kind metricKind) *family {
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind}
		r.byName[name] = f
		r.families = append(r.families, f)
	}
	return f
}

func (f *family) find(labels string) *series {
	for _, s := range f.series {
		if s.labels == labels {
			return s
		}
	}
	return nil
}

// Counter registers (or finds) a counter series.
func (r *Registry) Counter(name, help, labels string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindCounter)
	if s := f.find(labels); s != nil {
		return s.counter
	}
	s := &series{labels: labels, counter: &Counter{}}
	f.series = append(f.series, s)
	return s.counter
}

// Gauge registers (or finds) a gauge series.
func (r *Registry) Gauge(name, help, labels string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindGauge)
	if s := f.find(labels); s != nil {
		return s.gauge
	}
	s := &series{labels: labels, gauge: &Gauge{}}
	f.series = append(f.series, s)
	return s.gauge
}

// CounterFunc registers a counter series whose value is read from fn
// at scrape time.
func (r *Registry) CounterFunc(name, help, labels string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindCounter)
	if f.find(labels) != nil {
		return
	}
	f.series = append(f.series, &series{labels: labels, fn: fn})
}

// GaugeFunc registers a gauge series whose value is read from fn at
// scrape time.
func (r *Registry) GaugeFunc(name, help, labels string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindGauge)
	if f.find(labels) != nil {
		return
	}
	f.series = append(f.series, &series{labels: labels, fn: fn})
}

// Histogram registers (or finds) a histogram series observing
// nanoseconds and rendered in seconds (name it *_seconds).
func (r *Registry) Histogram(name, help, labels string, shards int) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindHistogram)
	if s := f.find(labels); s != nil {
		return s.hist
	}
	s := &series{labels: labels, hist: NewHistogram(shards)}
	f.series = append(f.series, s)
	return s.hist
}

func wrapLabels(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

func joinLabels(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return "{" + labels + "," + extra + "}"
}

func formatFloat(v float64) string {
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders every family in Prometheus text exposition
// format (version 0.0.4): # HELP and # TYPE per family, series sorted
// by label string, histograms as cumulative _bucket/_sum/_count in
// seconds.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		r.mu.Lock()
		ss := make([]*series, len(f.series))
		copy(ss, f.series)
		r.mu.Unlock()
		sort.Slice(ss, func(i, j int) bool { return ss[i].labels < ss[j].labels })

		typ := "counter"
		switch f.kind {
		case kindGauge:
			typ = "gauge"
		case kindHistogram:
			typ = "histogram"
		}
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, typ)
		for _, s := range ss {
			switch {
			case s.hist != nil:
				snap := s.hist.Snapshot()
				var cum int64
				next := 0
				for i := promBucketLo; i <= promBucketHi; i += promBucketStep {
					for ; next <= i; next++ {
						cum += snap.Counts[next]
					}
					le := formatFloat(float64(uint64(1)<<uint(i)) / 1e9)
					fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name, joinLabels(s.labels, `le="`+le+`"`), cum)
				}
				fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name, joinLabels(s.labels, `le="+Inf"`), snap.Count)
				fmt.Fprintf(bw, "%s_sum%s %s\n", f.name, wrapLabels(s.labels), formatFloat(float64(snap.Sum)/1e9))
				fmt.Fprintf(bw, "%s_count%s %d\n", f.name, wrapLabels(s.labels), snap.Count)
			case s.counter != nil:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, wrapLabels(s.labels), s.counter.Value())
			case s.gauge != nil:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, wrapLabels(s.labels), s.gauge.Value())
			case s.fn != nil:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, wrapLabels(s.labels), s.fn())
			}
		}
	}
	return bw.Flush()
}
